// Large-scale estimation (§5.3): run m3 on the 384-rack, 6144-host fat-tree
// and show that its runtime is governed by the number of sampled paths, not
// the network size, while the packet-level simulator's cost grows with the
// workload.
//
// Run with:
//
//	go run ./examples/largescale [-checkpoint m3.ckpt] [-flows 100000] [-truth]
//
// Pass -truth to also run the full packet-level simulation for comparison
// (slow at large flow counts — that is the point).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	m3 "m3"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "optional model checkpoint to load")
	numFlows := flag.Int("flows", 100000, "workload size")
	withTruth := flag.Bool("truth", false, "also run the packet-level ground truth")
	flag.Parse()
	log.SetFlags(0)

	var net *m3.Model
	if *checkpoint != "" {
		if n, err := m3.LoadModel(*checkpoint); err == nil {
			net = n
			log.Printf("loaded model from %s", *checkpoint)
		}
	}
	if net == nil {
		log.Printf("training a model first (use -checkpoint to cache)...")
		dc := m3.DefaultDataConfig()
		dc.Scenarios = 150
		dc.CCs = []m3.CCType{m3.DCTCP}
		opt := m3.DefaultTrainOptions()
		opt.Epochs = 30
		n, err := m3.TrainModel(context.Background(), m3.DefaultModelConfig(), dc, opt)
		if err != nil {
			log.Fatal(err)
		}
		net = n
		if *checkpoint != "" {
			if err := m3.SaveModel(net, *checkpoint); err != nil {
				log.Fatal(err)
			}
		}
	}

	ft, err := m3.LargeFatTree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d hosts, %d nodes, %d directed links\n",
		len(ft.Hosts()), ft.NumNodes(), ft.NumLinks())

	matrix, err := m3.Matrix("B", 384, 9)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	flows, err := m3.GenerateWorkload(ft, m3.WorkloadSpec{
		NumFlows: *numFlows, Sizes: m3.WebServer, Matrix: matrix,
		Burstiness: 2, MaxLoad: 0.5, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d flows in %v\n", len(flows), time.Since(t0).Round(time.Millisecond))

	cfg := m3.DefaultNetConfig()
	cfg.InitWindow = 10 * m3.KB // Table 5's harder setting

	est := m3.NewEstimator(net)
	res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m3: p99 slowdown %.2f over %d populated paths (%d sampled) in %v\n",
		res.P99(), res.TotalPaths, res.DistinctPaths, res.Elapsed.Round(time.Millisecond))

	if *withTruth {
		fmt.Println("running packet-level ground truth (this is the slow part)...")
		gt, err := m3.GroundTruth(context.Background(), ft.Topology, flows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ground truth: p99 slowdown %.2f in %v — m3 error %+.1f%%, speedup %.0fx\n",
			gt.P99(), gt.Elapsed.Round(time.Millisecond),
			100*(res.P99()-gt.P99())/gt.P99(),
			gt.Elapsed.Seconds()/res.Elapsed.Seconds())
	}
}

// Quickstart: train a small m3 model on synthetic path scenarios, estimate
// the tail latency of a production-style workload on the 32-rack fat-tree,
// and compare against the packet-level ground truth.
//
// Run with:
//
//	go run ./examples/quickstart [-checkpoint m3.ckpt]
//
// With -checkpoint, the trained model is cached and reused across runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	m3 "m3"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "optional path to cache the trained model")
	flag.Parse()
	log.SetFlags(0)

	// 1. Get a model: load the cached checkpoint or train a small one.
	var net *m3.Model
	if *checkpoint != "" {
		if n, err := m3.LoadModel(*checkpoint); err == nil {
			log.Printf("loaded model from %s", *checkpoint)
			net = n
		}
	}
	if net == nil {
		log.Printf("training a small m3 model (this takes a minute or two)...")
		dc := m3.DefaultDataConfig()
		dc.Scenarios = 150
		dc.CCs = []m3.CCType{m3.DCTCP}
		opt := m3.DefaultTrainOptions()
		opt.Epochs = 30
		start := time.Now()
		n, err := m3.TrainModel(context.Background(), m3.DefaultModelConfig(), dc, opt)
		if err != nil {
			log.Fatal(err)
		}
		net = n
		log.Printf("trained %d-parameter model in %v", net.NumParams(), time.Since(start).Round(time.Second))
		if *checkpoint != "" {
			if err := m3.SaveModel(net, *checkpoint); err != nil {
				log.Fatal(err)
			}
			log.Printf("saved checkpoint to %s", *checkpoint)
		}
	}

	// 2. Build the evaluation topology and a calibrated workload.
	ft, err := m3.SmallFatTree(m3.Oversub2to1)
	if err != nil {
		log.Fatal(err)
	}
	matrix, err := m3.Matrix("B", 32, 7)
	if err != nil {
		log.Fatal(err)
	}
	flows, err := m3.GenerateWorkload(ft, m3.WorkloadSpec{
		NumFlows:   20000,
		Sizes:      m3.WebServer,
		Matrix:     matrix,
		Burstiness: 2,   // high burstiness (lognormal sigma = 2)
		MaxLoad:    0.5, // most loaded link at 50%
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d flows on %d hosts\n", len(flows), len(ft.Hosts()))

	// 3. Estimate tail latency with m3.
	cfg := m3.DefaultNetConfig() // DCTCP, PFC on, Table 4 midpoint
	est := m3.NewEstimator(net)
	res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m3 estimate: p99 slowdown %.2f (%d paths simulated in %v)\n",
		res.P99(), res.DistinctPaths, res.Elapsed.Round(time.Millisecond))
	buckets := res.P99PerBucket()
	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	for b, v := range buckets {
		fmt.Printf("  %-12s p99 slowdown %.2f\n", names[b], v)
	}

	// 4. Compare against the packet-level ground truth.
	fmt.Println("running packet-level ground truth for comparison...")
	gt, err := m3.GroundTruth(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: p99 slowdown %.2f (in %v)\n",
		gt.P99(), gt.Elapsed.Round(time.Millisecond))
	fmt.Printf("m3 relative error: %+.1f%%, speedup %.1fx\n",
		100*(res.P99()-gt.P99())/gt.P99(),
		gt.Elapsed.Seconds()/res.Elapsed.Seconds())
	os.Exit(0)
}

// Counterfactual search (§5.4): use m3 to explore how HPCC's initial
// congestion window and eta affect tail latency for different flow classes —
// without rerunning the packet-level simulator for every configuration.
//
// Run with:
//
//	go run ./examples/counterfactual [-checkpoint m3-all.ckpt]
//
// The model must cover all four protocols; if no checkpoint is given, a
// fresh one is trained (slower).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	m3 "m3"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "path to an all-protocol model checkpoint")
	flag.Parse()
	log.SetFlags(0)

	var net *m3.Model
	if *checkpoint != "" {
		if n, err := m3.LoadModel(*checkpoint); err == nil {
			net = n
			log.Printf("loaded model from %s", *checkpoint)
		}
	}
	if net == nil {
		log.Printf("training an all-protocol model (several minutes)...")
		dc := m3.DefaultDataConfig()
		dc.Scenarios = 300
		opt := m3.DefaultTrainOptions()
		opt.Epochs = 40
		n, err := m3.TrainModel(context.Background(), m3.DefaultModelConfig(), dc, opt)
		if err != nil {
			log.Fatal(err)
		}
		net = n
		if *checkpoint != "" {
			if err := m3.SaveModel(net, *checkpoint); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The paper's §5.4 setup: 32-rack topology, WebServer workload, traffic
	// matrix C, 50% max load, PFC on, 400KB buffers.
	ft, err := m3.SmallFatTree(m3.Oversub2to1)
	if err != nil {
		log.Fatal(err)
	}
	matrix, err := m3.Matrix("C", 32, 11)
	if err != nil {
		log.Fatal(err)
	}
	flows, err := m3.GenerateWorkload(ft, m3.WorkloadSpec{
		NumFlows: 20000, Sizes: m3.WebServer, Matrix: matrix,
		Burstiness: 1.5, MaxLoad: 0.5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	est := m3.NewEstimator(net)

	fmt.Println("sweep 1: HPCC initial congestion window (eta = 0.90)")
	fmt.Printf("%-10s", "initWnd")
	for _, n := range names {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()
	start := time.Now()
	for _, iw := range []m3.ByteSize{5 * m3.KB, 10 * m3.KB, 15 * m3.KB, 20 * m3.KB, 25 * m3.KB, 30 * m3.KB} {
		cfg := m3.DefaultNetConfig()
		cfg.CC = m3.HPCC
		cfg.HPCCEta = 0.90
		cfg.InitWindow = iw
		cfg.Buffer = 400 * m3.KB
		res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v", iw)
		for _, v := range res.P99PerBucket() {
			fmt.Printf(" %12.2f", v)
		}
		fmt.Println()
	}
	fmt.Printf("6-point window sweep finished in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("sweep 2: HPCC eta (initWnd = 20KB)")
	fmt.Printf("%-10s", "eta")
	for _, n := range names {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()
	start = time.Now()
	for _, eta := range []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95} {
		cfg := m3.DefaultNetConfig()
		cfg.CC = m3.HPCC
		cfg.HPCCEta = eta
		cfg.InitWindow = 20 * m3.KB
		cfg.Buffer = 400 * m3.KB
		res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f", eta)
		for _, v := range res.P99PerBucket() {
			fmt.Printf(" %12.2f", v)
		}
		fmt.Println()
	}
	fmt.Printf("6-point eta sweep finished in %v\n", time.Since(start).Round(time.Millisecond))
}

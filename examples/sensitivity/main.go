// Sensitivity head-to-head (§5.2): one production-style scenario, three
// estimators — m3, Parsimon, and flowSim alone — scored against the
// packet-level ground truth, with per-bucket detail.
//
// Run with:
//
//	go run ./examples/sensitivity [-checkpoint m3.ckpt] [-load 0.6] [-matrix A]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	m3 "m3"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "optional model checkpoint to load")
	load := flag.Float64("load", 0.6, "max link load")
	matrixName := flag.String("matrix", "A", "traffic matrix: A, B, C, or uniform")
	dist := flag.String("workload", "CacheFollower", "size distribution: WebServer, CacheFollower, Hadoop")
	flag.Parse()
	log.SetFlags(0)

	var net *m3.Model
	if *checkpoint != "" {
		if n, err := m3.LoadModel(*checkpoint); err == nil {
			net = n
			log.Printf("loaded model from %s", *checkpoint)
		}
	}
	if net == nil {
		log.Printf("training a model first (use -checkpoint to cache)...")
		dc := m3.DefaultDataConfig()
		dc.Scenarios = 150
		dc.CCs = []m3.CCType{m3.DCTCP}
		opt := m3.DefaultTrainOptions()
		opt.Epochs = 30
		n, err := m3.TrainModel(context.Background(), m3.DefaultModelConfig(), dc, opt)
		if err != nil {
			log.Fatal(err)
		}
		net = n
		if *checkpoint != "" {
			if err := m3.SaveModel(net, *checkpoint); err != nil {
				log.Fatal(err)
			}
		}
	}

	sizes, err := metaDist(*dist)
	if err != nil {
		log.Fatal(err)
	}
	ft, err := m3.SmallFatTree(m3.Oversub2to1)
	if err != nil {
		log.Fatal(err)
	}
	matrix, err := m3.Matrix(*matrixName, 32, 21)
	if err != nil {
		log.Fatal(err)
	}
	flows, err := m3.GenerateWorkload(ft, m3.WorkloadSpec{
		NumFlows: 20000, Sizes: sizes, Matrix: matrix,
		Burstiness: 2, MaxLoad: *load, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := m3.DefaultNetConfig()
	fmt.Printf("scenario: matrix %s, %s, %.0f%% load, %d flows, DCTCP\n",
		*matrixName, *dist, 100**load, len(flows))

	gt, err := m3.GroundTruth(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s p99 %.2f  (ground truth, %v)\n", "ns-3", gt.P99(),
		gt.Elapsed.Round(time.Millisecond))

	report := func(name string, p99 float64, elapsed time.Duration) {
		fmt.Printf("%-10s p99 %.2f  err %+6.1f%%  %v\n",
			name, p99, 100*(p99-gt.P99())/gt.P99(), elapsed.Round(time.Millisecond))
	}

	est := m3.NewEstimator(net)
	res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("m3", res.P99(), res.Elapsed)

	fsEst := m3.NewEstimator(nil, m3.WithMethod(m3.MethodFlowSim))
	fsRes, err := fsEst.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report("flowSim", fsRes.P99(), fsRes.Elapsed)

	t0 := time.Now()
	ps, err := m3.Parsimon(context.Background(), ft.Topology, flows, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	report("parsimon", p99Of(ps.Slowdown), time.Since(t0))

	fmt.Println("\nper-bucket p99 slowdown:")
	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	gb, mb, fb := gt.P99PerBucket(), res.P99PerBucket(), fsRes.P99PerBucket()
	for b := range names {
		fmt.Printf("  %-12s truth %6.2f | m3 %6.2f | flowSim %6.2f\n",
			names[b], gb[b], mb[b], fb[b])
	}
}

func metaDist(name string) (m3.SizeDist, error) {
	switch name {
	case "WebServer":
		return m3.WebServer, nil
	case "CacheFollower":
		return m3.CacheFollower, nil
	case "Hadoop":
		return m3.Hadoop, nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func p99Of(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(0.99 * float64(len(sorted)-1))
	return sorted[idx]
}

// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced (Quick-derived) scale, plus component micro-benchmarks. Run a
// single experiment with e.g.
//
//	go test -bench=BenchmarkTable1 -benchtime=1x
//
// The experiment benchmarks print their tables to stdout on the first
// iteration so `go test -bench=.` doubles as a report generator. Use
// cmd/m3bench for full-scale runs.
package m3

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"m3/internal/core"
	"m3/internal/exp"
	"m3/internal/flowsim"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/serve"
	"m3/internal/topo"
	"m3/internal/workload"
)

// benchScale is small enough to keep the full bench suite in minutes.
func benchScale() exp.Scale {
	s := exp.Quick()
	s.TestFlows = 2500
	s.LargeFlows = 6000
	s.Paths = 60
	s.Scenarios = 2
	return s
}

var (
	benchModelOnce sync.Once
	benchModel     *model.Net
	benchNoCtx     *model.Net
	benchModelErr  error
)

// benchNets trains (once per process) a small model pair on an
// all-protocol synthetic dataset shared by every experiment benchmark.
func benchNets(b *testing.B) (*model.Net, *model.Net) {
	b.Helper()
	benchModelOnce.Do(func() {
		cfg := model.DefaultConfig()
		cfg.Dim = 32
		cfg.Heads = 2
		cfg.Layers = 1
		cfg.Hidden = 64
		dc := model.DefaultDataConfig()
		dc.Scenarios = 40
		dc.Workers = 8
		samples, err := model.Generate(context.Background(), dc)
		if err != nil {
			benchModelErr = err
			return
		}
		opt := model.DefaultTrainOptions()
		opt.Epochs = 8
		full, err := model.New(cfg)
		if err != nil {
			benchModelErr = err
			return
		}
		if _, err := full.Train(samples, opt); err != nil {
			benchModelErr = err
			return
		}
		ncfg := cfg
		ncfg.UseContext = false
		noCtx, err := model.New(ncfg)
		if err != nil {
			benchModelErr = err
			return
		}
		if _, err := noCtx.Train(samples, opt); err != nil {
			benchModelErr = err
			return
		}
		benchModel, benchNoCtx = full, noCtx
	})
	if benchModelErr != nil {
		b.Fatal(benchModelErr)
	}
	return benchModel, benchNoCtx
}

func writerFor(i int) interface{ Write([]byte) (int, error) } {
	if i == 0 {
		return os.Stdout
	}
	return exp.Discard
}

func BenchmarkTable1(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable1(context.Background(), s, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig2(context.Background(), s, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig3(context.Background(), s, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig5(context.Background(), s, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig6(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunTable5(context.Background(), s, net, writerFor(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.RunFig12(rows, os.Stdout)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig10(context.Background(), s, net, writerFor(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			exp.RunFig11(pts, os.Stdout) // Fig 11 reuses the same scenarios
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig13(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig14(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig15(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	s := benchScale()
	net, noCtx := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig16(context.Background(), s, net, noCtx, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	s := benchScale()
	s.Scenarios = 2 // 10 axis points x scenarios ground-truth runs
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunFig17(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.RunFig18(writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component micro-benchmarks ---

func benchWorkload(b *testing.B, n int) (*topo.FatTree, []workload.Flow) {
	b.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: n, Sizes: workload.WebServer, Matrix: workload.MatrixB(32, r),
		Burstiness: 2, MaxLoad: 0.5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ft, flows
}

func BenchmarkPacketSim10kFlows(b *testing.B) {
	ft, flows := benchWorkload(b, 10000)
	cfg := packetsim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packetsim.Run(ft.Topology, flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(flows))/b.Elapsed().Seconds()*float64(b.N), "flows/s")
}

func BenchmarkFlowSimPath(b *testing.B) {
	syn, err := workload.GenerateSynthetic(workload.SynthSpec{
		Hops: 4, NumFg: 2000, BgPerLink: 1,
		Sizes: workload.WebServer, Burstiness: 2, MaxLoad: 0.5, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowsim.Run(syn.Lot.Topology, syn.Flows); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(syn.Flows))/b.Elapsed().Seconds()*float64(b.N), "flows/s")
}

func BenchmarkMaxMinAllocation(b *testing.B) {
	r := rng.New(3)
	caps := make([]float64, 64)
	for i := range caps {
		caps[i] = 1e10
	}
	routes := make([][]int32, 256)
	for i := range routes {
		hops := r.Intn(5) + 1
		start := r.Intn(len(caps) - hops)
		for h := 0; h < hops; h++ {
			routes[i] = append(routes[i], int32(start+h))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flowsim.MaxMinRates(caps, routes)
	}
}

func BenchmarkModelInference(b *testing.B) {
	net, _ := benchNets(b)
	r := rng.New(4)
	s := &model.Sample{
		FgFeat: make([]float64, net.Cfg.FeatDim),
		Spec:   make([]float64, net.Cfg.SpecDim),
	}
	for i := range s.FgFeat {
		s.FgFeat[i] = r.Float64()
	}
	for h := 0; h < 6; h++ {
		f := make([]float64, net.Cfg.FeatDim)
		for i := range f {
			f[i] = r.Float64()
		}
		s.BgFeats = append(s.BgFeats, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Predict(s); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchSamples builds the shared 32-sample inference batch for the
// backend benchmarks.
func benchBatchSamples(net *model.Net) []*model.Sample {
	r := rng.New(4)
	const batch = 32
	samples := make([]*model.Sample, batch)
	for j := range samples {
		s := &model.Sample{
			FgFeat: make([]float64, net.Cfg.FeatDim),
			Spec:   make([]float64, net.Cfg.SpecDim),
		}
		for i := range s.FgFeat {
			s.FgFeat[i] = r.Float64()
		}
		for h := 0; h < 6; h++ {
			f := make([]float64, net.Cfg.FeatDim)
			for i := range f {
				f[i] = r.Float64()
			}
			s.BgFeats = append(s.BgFeats, f)
		}
		samples[j] = s
	}
	return samples
}

// BenchmarkModelInferenceBatch is the batched counterpart of
// BenchmarkModelInference: one PredictBatch call over 32 samples per
// iteration, reported per sample so the two are directly comparable.
func BenchmarkModelInferenceBatch(b *testing.B) {
	net, _ := benchNets(b)
	samples := benchBatchSamples(net)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.PredictBatch(ctx, samples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*len(samples))*1e9, "ns/sample")
}

// BenchmarkModelInferenceBatchInt8 runs the same 32-sample batch through the
// int8 weight-quantized backend — the float-vs-quantized latency ablation's
// inner loop, comparable line-for-line with BenchmarkModelInferenceBatch.
func BenchmarkModelInferenceBatchInt8(b *testing.B) {
	net, _ := benchNets(b)
	q, err := model.Quantize(net)
	if err != nil {
		b.Fatal(err)
	}
	samples := benchBatchSamples(net)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.PredictBatch(ctx, samples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*len(samples))*1e9, "ns/sample")
}

// BenchmarkEstimatePipeline compares the two ML estimation pipelines end to
// end: staged runs featurize and predict as barrier-separated pool stages;
// streamed launches each predict micro-batch the moment featurize fills it,
// overlapping flowSim with inference. Outputs are bit-identical (see
// TestStreamedMatchesStagedBitIdentical); only the schedule differs.
func BenchmarkEstimatePipeline(b *testing.B) {
	net, _ := benchNets(b)
	ft, flows := benchWorkload(b, 8000)
	cfg := packetsim.DefaultConfig()
	ctx := context.Background()
	for _, mode := range []struct {
		name   string
		staged bool
	}{{"staged", true}, {"streamed", false}} {
		b.Run(mode.name, func(b *testing.B) {
			est := core.NewEstimator(net, core.WithNumPaths(200),
				core.WithStagedPipeline(mode.staged))
			var overlap float64
			for i := 0; i < b.N; i++ {
				res, err := est.Estimate(ctx, ft.Topology, flows, cfg)
				if err != nil {
					b.Fatal(err)
				}
				overlap += res.OverlapRatio()
			}
			b.ReportMetric(overlap/float64(b.N), "overlap-ratio")
		})
	}
}

// BenchmarkModelInferenceBatchSharded times one 32-sample PredictBatch per
// iteration across backend x GEMM parallelism. par=1 is the serial baseline;
// par=4 shards each heavy layer's output rows across 4 goroutines with
// per-row accumulation order unchanged, so outputs are bit-identical and the
// delta is pure scheduling cost (a speedup needs multiple cores).
func BenchmarkModelInferenceBatchSharded(b *testing.B) {
	net, _ := benchNets(b)
	q, err := model.Quantize(net)
	if err != nil {
		b.Fatal(err)
	}
	samples := benchBatchSamples(net)
	ctx := context.Background()
	for _, backend := range []model.Predictor{net, q} {
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/par=%d", backend.Kind(), par), func(b *testing.B) {
				if !model.SetPredictParallelism(backend, par) {
					b.Fatalf("%s rejected the parallelism knob", backend.Kind())
				}
				defer model.SetPredictParallelism(backend, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := backend.PredictBatch(ctx, samples); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*len(samples))*1e9, "ns/sample")
			})
		}
	}
}

func BenchmarkEstimateEndToEnd(b *testing.B) {
	net, _ := benchNets(b)
	ft, flows := benchWorkload(b, 8000)
	est := core.NewEstimator(net, core.WithNumPaths(200))
	cfg := packetsim.DefaultConfig()
	ctx := context.Background()
	var predict, pathsim time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := est.Estimate(ctx, ft.Topology, flows, cfg)
		if err != nil {
			b.Fatal(err)
		}
		predict += res.Stages.Predict
		pathsim += res.Stages.PathSim
	}
	// Predict and PathSim are summed across workers (CPU time), attributing
	// the estimate's cost to the ML inference vs flowSim stages.
	b.ReportMetric(float64(predict.Nanoseconds())/float64(b.N), "predict-ns/op")
	b.ReportMetric(float64(pathsim.Nanoseconds())/float64(b.N), "pathsim-ns/op")
	b.ReportMetric(100*float64(predict)/float64(predict+pathsim), "predict-%")
}

func BenchmarkAblationPaths(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAblationPaths(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKnockout(b *testing.B) {
	s := benchScale()
	net, _ := benchNets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAblationKnockout(context.Background(), s, net, writerFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeEstimate measures the serving layer's estimate latency
// through the full HTTP handler, cold (every iteration a fresh cache key)
// versus warm (every iteration the same key, served from the LRU).
func BenchmarkServeEstimate(b *testing.B) {
	net, _ := benchNets(b)
	srv, err := serve.New(serve.Options{Net: net, CacheSize: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	post := func(path string, body any) *httptest.ResponseRecorder {
		raw, err := json.Marshal(body)
		if err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(raw)))
		return rec
	}
	rec := post("/v1/workloads", map[string]any{
		"name": "bench",
		"spec": map[string]any{"num_flows": 4000, "max_load": 0.5, "burstiness": 1.5, "seed": 9},
	})
	if rec.Code != 201 {
		b.Fatalf("workload upload: %d %s", rec.Code, rec.Body.String())
	}
	estimate := func(seed uint64) {
		rec := post("/v1/estimate", map[string]any{
			"workload": "bench", "num_paths": 100, "seed": seed,
		})
		if rec.Code != 200 {
			b.Fatalf("estimate: %d %s", rec.Code, rec.Body.String())
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			estimate(uint64(i) + 1e6) // unique key every iteration
		}
	})
	b.Run("warm", func(b *testing.B) {
		estimate(1) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			estimate(1)
		}
	})
}

// BenchmarkPacketsim is the ground-truth engine benchmark: one large
// parking-lot scenario (thousands of flows at packet granularity) per
// iteration. Allocations are reported because the engine is expected to run
// allocation-free in steady state (pooled per-run sim state).
func BenchmarkPacketsim(b *testing.B) {
	syn, err := workload.GenerateSynthetic(workload.SynthSpec{
		Hops: 4, NumFg: 300, BgPerLink: 4,
		Sizes: workload.WebServer, Burstiness: 1.5, MaxLoad: 0.45, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := packetsim.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packetsim.Run(syn.Lot.Topology, syn.Flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(syn.Flows))/b.Elapsed().Seconds()*float64(b.N), "flows/s")
}

// BenchmarkParsimon measures the link-level baseline end to end: thousands
// of per-link packet simulations fanned out across the worker pool.
func BenchmarkParsimon(b *testing.B) {
	ft, flows := benchWorkload(b, 2500)
	cfg := packetsim.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parsimon.Run(context.Background(), ft.Topology, flows, cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGen measures synthetic training-set generation (flowSim
// features + packet-level ground-truth labels per scenario).
func BenchmarkDatasetGen(b *testing.B) {
	dc := model.DefaultDataConfig()
	dc.Scenarios = 16 // DefaultDataConfig workers (8) drive the fan-out
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Generate(context.Background(), dc); err != nil {
			b.Fatal(err)
		}
	}
}

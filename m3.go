// Package m3 is a from-scratch Go reproduction of "m3: Accurate Flow-Level
// Performance Estimation using Machine Learning" (SIGCOMM 2024): a fast,
// scale-free estimator of data center network tail latency that decomposes
// the network into paths, summarizes each path's workload with a max-min
// fluid simulation (flowSim), and corrects the fluid estimates with a small
// transformer+MLP model trained on packet-level ground truth.
//
// The package exposes the complete system: topologies, workload generation,
// the packet-level ground-truth simulator, flowSim, the Parsimon baseline,
// model training, and the m3 estimator. A typical session:
//
//	ft, _ := m3.SmallFatTree(m3.Oversub2to1)
//	flows, _ := m3.GenerateWorkload(ft, m3.WorkloadSpec{ ... })
//	net, _ := m3.LoadModel("m3.ckpt")             // or m3.TrainModel(...)
//	est := m3.NewEstimator(net, m3.WithNumPaths(500), m3.WithSeed(1))
//	res, _ := est.Estimate(ctx, ft.Topology, flows, m3.DefaultNetConfig())
//	fmt.Println("p99 slowdown:", res.P99())
//
// Every estimation entry point takes a context.Context first; cancelling it
// aborts in-flight path simulations and batched inference promptly. For
// repeated queries over one workload (quantiles, per-pair paths, config
// what-ifs) open a Session; to serve estimates over HTTP build a serve
// handler from ServeConfig.
package m3

import (
	"context"

	"m3/internal/core"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/query"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/serve"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Re-exported core types. The aliases expose the full internal APIs.
type (
	// Topology is a network graph of nodes and directed links.
	Topology = topo.Topology
	// FatTree is a built fat-tree topology with its index structure.
	FatTree = topo.FatTree
	// ParkingLot is a path-level topology.
	ParkingLot = topo.ParkingLot
	// Oversub names an oversubscription ratio ("1-to-1", "2-to-1", "4-to-1").
	Oversub = topo.Oversub
	// Flow is one transfer with a fixed route.
	Flow = workload.Flow
	// WorkloadSpec configures full-network workload generation.
	WorkloadSpec = workload.Spec
	// SynthSpec configures synthetic parking-lot scenario generation.
	SynthSpec = workload.SynthSpec
	// SizeDist samples flow sizes.
	SizeDist = workload.SizeDist
	// TrafficMatrix weights rack-to-rack traffic.
	TrafficMatrix = workload.TrafficMatrix
	// NetConfig is the network configuration space (Table 4).
	NetConfig = packetsim.Config
	// CCType selects a congestion control protocol.
	CCType = packetsim.CCType
	// Model is the trained m3 network (the float backend).
	Model = model.Net
	// Predictor is the inference backend interface; *Model and
	// *QuantizedModel both satisfy it, and every estimation entry point
	// accepts it.
	Predictor = model.Predictor
	// QuantizedModel is the int8 weight-quantized backend, derived from a
	// trained Model with QuantizeModel.
	QuantizedModel = model.QuantizedNet
	// ModelConfig shapes the m3 network.
	ModelConfig = model.Config
	// TrainOptions controls model training.
	TrainOptions = model.TrainOptions
	// DataConfig controls synthetic training-set generation.
	DataConfig = model.DataConfig
	// Sample is one path-level training/inference example.
	Sample = model.Sample
	// Estimator runs the m3 pipeline. Construct with NewEstimator; it is
	// immutable and safe to share between goroutines.
	Estimator = core.Estimator
	// EstimatorOption configures NewEstimator.
	EstimatorOption = core.Option
	// Estimate is a network-wide estimation result.
	Estimate = core.Estimate
	// WorkerPool is a bounded worker pool shared between estimators.
	WorkerPool = core.Pool
	// Session answers repeated queries (quantiles, per-pair paths,
	// configuration what-ifs) over one loaded workload, with caching per
	// configuration.
	Session = query.Session
	// PathReport is a per-host-pair query result.
	PathReport = query.PathReport
	// ServeConfig configures the HTTP estimation service handler.
	ServeConfig = serve.Options
	// Server is the m3 HTTP estimation service (an http.Handler).
	Server = serve.Server
	// GroundTruthResult is a full-network packet-level baseline run.
	GroundTruthResult = core.GroundTruth
	// ParsimonResult is the link-level baseline's output.
	ParsimonResult = parsimon.Result
	// Method selects the per-path estimation backend.
	Method = core.Method
	// Time is simulated time in nanoseconds.
	Time = unit.Time
	// ByteSize is a data size in bytes.
	ByteSize = unit.ByteSize
	// Rate is a link rate in bits per second.
	Rate = unit.Rate
)

// Re-exported constants.
const (
	Oversub1to1 = topo.Oversub1to1
	Oversub2to1 = topo.Oversub2to1
	Oversub4to1 = topo.Oversub4to1

	DCTCP  = packetsim.DCTCP
	TIMELY = packetsim.TIMELY
	DCQCN  = packetsim.DCQCN
	HPCC   = packetsim.HPCC

	MethodML      = core.MethodML
	MethodFlowSim = core.MethodFlowSim
	MethodNS3Path = core.MethodNS3Path

	// Backend kinds, usable as the "backend" field of serve requests.
	BackendNet     = model.KindNet
	BackendNetInt8 = model.KindNetInt8

	KB = unit.KB
	MB = unit.MB

	Gbps = unit.Gbps
	Mbps = unit.Mbps

	Microsecond = unit.Microsecond
	Millisecond = unit.Millisecond
	Second      = unit.Second
)

// Meta production size distributions (Fig. 18b shapes).
var (
	WebServer     = workload.SizeDist(workload.WebServer)
	CacheFollower = workload.SizeDist(workload.CacheFollower)
	Hadoop        = workload.SizeDist(workload.Hadoop)
)

// SmallFatTree builds the paper's 32-rack, 256-host evaluation topology.
func SmallFatTree(o Oversub) (*FatTree, error) { return topo.SmallFatTree(o) }

// LargeFatTree builds the paper's 384-rack, 6144-host topology.
func LargeFatTree() (*FatTree, error) { return topo.LargeFatTree() }

// GenerateWorkload draws a calibrated workload on a fat-tree with ECMP
// routing.
func GenerateWorkload(ft *FatTree, spec WorkloadSpec) ([]Flow, error) {
	return workload.Generate(ft, routing.NewFatTreeRouter(ft), spec)
}

// DefaultNetConfig returns the midpoint of the Table 4 configuration space
// (DCTCP, PFC on).
func DefaultNetConfig() NetConfig { return packetsim.DefaultConfig() }

// DefaultModelConfig returns the CPU-scale model architecture.
func DefaultModelConfig() ModelConfig { return model.DefaultConfig() }

// DefaultDataConfig returns a CPU-scale training-set configuration.
func DefaultDataConfig() DataConfig { return model.DefaultDataConfig() }

// DefaultTrainOptions mirrors the paper's training setup at CPU scale.
func DefaultTrainOptions() TrainOptions { return model.DefaultTrainOptions() }

// TrainModel generates a synthetic Table 2 dataset and trains a fresh model
// on it, returning the trained network. Cancelling ctx aborts the parallel
// ground-truth generation promptly.
func TrainModel(ctx context.Context, mc ModelConfig, dc DataConfig, opt TrainOptions) (*Model, error) {
	net, err := model.New(mc)
	if err != nil {
		return nil, err
	}
	samples, err := model.Generate(ctx, dc)
	if err != nil {
		return nil, err
	}
	if _, err := net.Train(samples, opt); err != nil {
		return nil, err
	}
	return net, nil
}

// SaveModel writes a trained model to path.
//
// Deprecated: SavePredictor persists any backend; SaveModel remains for the
// float net only.
func SaveModel(net *Model, path string) error { return net.SaveFile(path) }

// LoadModel reads a model saved by SaveModel. It rejects checkpoints of
// non-float backend kinds.
//
// Deprecated: LoadPredictor loads a checkpoint of any backend kind.
func LoadModel(path string) (*Model, error) { return model.LoadFile(path) }

// QuantizeModel derives the int8 weight-quantized backend from a trained
// float model: ~1/8 the weight footprint, integer matmuls, bit-stable
// outputs, with predictions within a small relative error of the float
// net's. The result plugs into NewEstimator, NewSession, and ServeConfig
// reloads like any other Predictor.
func QuantizeModel(net *Model) (*QuantizedModel, error) { return model.Quantize(net) }

// SavePredictor writes any checkpointable backend to path, tagged with its
// kind so LoadPredictor rebuilds the same kind.
func SavePredictor(p Predictor, path string) error { return model.SavePredictorFile(p, path) }

// LoadPredictor reads a checkpoint of any backend kind saved by
// SavePredictor (or SaveModel).
func LoadPredictor(path string) (Predictor, error) { return model.LoadPredictorFile(path) }

// NewEstimator returns an m3 estimator with the paper's defaults
// (500 sampled paths, seed 1, micro-batched ML inference), adjusted by
// options. pred is any inference backend — a *Model, a *QuantizedModel —
// and may be nil for the model-free backends (WithMethod).
func NewEstimator(pred Predictor, opts ...EstimatorOption) *Estimator {
	return core.NewEstimator(pred, opts...)
}

// Estimator options, re-exported from the core pipeline.
var (
	// WithNumPaths sets the sampled-path budget (default 500).
	WithNumPaths = core.WithNumPaths
	// WithWorkers bounds per-path parallelism (0 = GOMAXPROCS).
	WithWorkers = core.WithWorkers
	// WithMethod selects the per-path backend (default MethodML).
	WithMethod = core.WithMethod
	// WithSeed seeds the path sampling (default 1).
	WithSeed = core.WithSeed
	// WithBatchSize sets the ML inference micro-batch size.
	WithBatchSize = core.WithBatchSize
	// WithPool points the estimator at a shared worker pool.
	WithPool = core.WithPool
	// WithPredictor swaps the inference backend on an existing option list.
	WithPredictor = core.WithPredictor
	// WithFlowSimFallback degrades gracefully to raw flowSim estimates
	// when the ML model is missing or emits non-finite slowdowns.
	WithFlowSimFallback = core.WithFlowSimFallback
)

// NewWorkerPool builds a bounded worker pool (n <= 0 means GOMAXPROCS) that
// estimators and sessions can share via WithPool / Session.Pool. Close it
// when done.
func NewWorkerPool(n int) *WorkerPool { return core.NewPool(n) }

// NewSession opens a query session over one workload: repeated quantile,
// per-pair path, and configuration what-if queries share cached estimates.
// pred is any inference backend (*Model, *QuantizedModel, ...).
func NewSession(t *Topology, flows []Flow, pred Predictor, cfg NetConfig) (*Session, error) {
	return query.NewSession(t, flows, pred, cfg)
}

// NewServer builds the HTTP estimation service handler (workload registry,
// estimate/quantile/what-if endpoints, checkpoint hot-reload). Close it when
// done to release its worker pool.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// GroundTruth runs the full-network packet-level simulation (ns-3 stand-in).
// Cancelling ctx aborts the run promptly with ctx.Err().
func GroundTruth(ctx context.Context, t *Topology, flows []Flow, cfg NetConfig) (*GroundTruthResult, error) {
	return core.RunGroundTruth(ctx, t, flows, cfg)
}

// Parsimon runs the link-level decomposition baseline. Per-link simulations
// fan out over a worker pool; cancelling ctx stops the fan-out promptly.
func Parsimon(ctx context.Context, t *Topology, flows []Flow, cfg NetConfig, workers int) (*ParsimonResult, error) {
	return parsimon.Run(ctx, t, flows, cfg, workers)
}

// ParsimonOptions controls link clustering in ParsimonWithOptions: Cluster
// turns on representative-per-cluster simulation (the exact tier is lossless
// by construction) and ClusterThreshold adds the approximate distance tier.
type ParsimonOptions = parsimon.Options

// ParsimonWithOptions is Parsimon on a shared worker pool with link
// clustering control — the scale path for ground-truth fan-out on large
// fabrics (see README "Scaling ground truth").
func ParsimonWithOptions(ctx context.Context, t *Topology, flows []Flow, cfg NetConfig,
	p *WorkerPool, opts ParsimonOptions) (*ParsimonResult, error) {
	return parsimon.RunWithOptions(ctx, t, flows, cfg, p, opts)
}

// ClusteredGroundTruth approximates ground truth with the clustered Parsimon
// decomposition on a shared pool — tractable at topology scales where the
// single full-network packet simulation of GroundTruth is not.
func ClusteredGroundTruth(ctx context.Context, t *Topology, flows []Flow, cfg NetConfig,
	p *WorkerPool, opts ParsimonOptions) (*GroundTruthResult, error) {
	return core.RunClusteredGroundTruth(ctx, t, flows, cfg, p, opts)
}

// Matrix builds traffic matrix "A", "B", "C", or "uniform" for the given
// rack count, seeded deterministically.
func Matrix(name string, racks int, seed uint64) (*TrafficMatrix, error) {
	return workload.Matrix(name, racks, newRNG(seed))
}

func newRNG(seed uint64) *rng.RNG { return rng.New(seed) }

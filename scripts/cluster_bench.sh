#!/usr/bin/env bash
# Distributed-serving benchmark: runs real multi-process m3serve fleets on
# loopback and records replica-count scaling plus graceful degradation in
# BENCH_pr6.json.
#
# What is measured (and why it scales on a single-core host): every replica
# here shares one CPU, so the fleet cannot win by parallel simulation. The
# scaling lever is aggregate estimate-cache capacity — the working set
# (-seeds distinct cache keys) is chosen larger than one replica's LRU, so
# a standalone server thrashes while a fleet holds the set partitioned
# across its rendezvous-owned tiers and converts misses (tens of ms of
# simulation) into peer-cache hits (sub-ms). On multi-core hosts the same
# harness additionally benefits from scatter-gather CPU parallelism.
#
# Phases:
#   1, 2, 4 replicas  closed-loop estimate load, fixed working set,
#                     throughput recorded per fleet size
#   kill-one          3-replica scatter fleet; one replica is SIGKILLed
#                     mid-run; the load (aimed at the survivors) must see
#                     zero failed requests and surface Degraded
#   chaos             3-replica scatter fleet under M3_CHAOS (seeded 10%
#                     connection resets on every internal RPC); zero failed
#                     requests allowed, retries must absorb the schedule
#   healthy overhead  BenchmarkServeEstimate vs the frozen pre-resilience
#                     baseline; the retry/breaker/probe layer must cost the
#                     healthy path < 1%
#
# Usage: scripts/cluster_bench.sh     writes BENCH_pr6.json + BENCH_pr10.json
#        CHAOS_ONLY=1 scripts/cluster_bench.sh
#                                     skips the scale/kill phases and writes
#                                     only BENCH_pr10.json
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    [[ ${#PIDS[@]} -gt 0 ]] && kill "${PIDS[@]}" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/m3serve" ./cmd/m3serve
go build -o "$TMP/m3fleetbench" ./cmd/m3fleetbench
"$TMP/m3fleetbench" -mkckpt "$TMP/tiny.ckpt"

BASE=19360
CACHE=20      # per-tier LRU capacity per replica
SEEDS=48      # distinct cache keys in the working set (2.4x one LRU)
REQUESTS=360
PATHS=250     # a miss costs ~100ms of simulation; a cache hit ~2ms
FLOWS=4000
CONCURRENCY=3

# start_fleet N [extra flags...] — boots replicas on ports BASE+1..BASE+N,
# each listing the others as peers, and waits until every /healthz answers.
start_fleet() {
    local n=$1; shift
    PIDS=()
    ADDRS=()
    local i j peers
    for i in $(seq 1 "$n"); do ADDRS+=("127.0.0.1:$((BASE + i))"); done
    for i in $(seq 1 "$n"); do
        peers=""
        for j in $(seq 1 "$n"); do
            [[ "$i" == "$j" ]] && continue
            peers+="${peers:+,}${ADDRS[$((j - 1))]}"
        done
        "$TMP/m3serve" -checkpoint "$TMP/tiny.ckpt" -addr "${ADDRS[$((i - 1))]}" \
            -cache "$CACHE" ${peers:+-peers "$peers"} "$@" \
            2>"$TMP/serve-$n-$i.log" &
        PIDS+=($!)
    done
    TARGETS=$(IFS=,; echo "${ADDRS[*]}")
    ADDRS="${ADDRS[*]}" python3 - <<'PYEOF'
import os, sys, time, urllib.request
addrs = os.environ["ADDRS"].split()
deadline = time.time() + 30
for a in addrs:
    while True:
        try:
            urllib.request.urlopen("http://%s/healthz" % a, timeout=1).read()
            break
        except Exception:
            if time.time() > deadline:
                sys.exit("replica %s never became healthy" % a)
            time.sleep(0.1)
PYEOF
}

stop_fleet() {
    [[ ${#PIDS[@]} -gt 0 ]] && kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    PIDS=()
}

if [[ -z "${CHAOS_ONLY:-}" ]]; then

for n in 1 2 4; do
    echo "== fleet of $n: $REQUESTS requests over $SEEDS keys (cache $CACHE/tier) =="
    start_fleet "$n"
    "$TMP/m3fleetbench" -targets "$TARGETS" -workload "scale$n" \
        -flows "$FLOWS" -requests "$REQUESTS" -seeds "$SEEDS" -paths "$PATHS" \
        -concurrency "$CONCURRENCY" -out "$TMP/scale-$n.json"
    stop_fleet
    cat "$TMP/scale-$n.json"
done

echo "== kill-one: 3-replica scatter fleet, SIGKILL one mid-run =="
start_fleet 3 -scatter
# Load only the two survivors; the third replica participates as a scatter
# shard executor and cache owner until it is killed.
SURVIVORS="${ADDRS[0]},${ADDRS[1]}"
VICTIM_PID=${PIDS[2]}
"$TMP/m3fleetbench" -targets "$SURVIVORS" -workload killtest \
    -flows "$FLOWS" -requests 120 -seeds 100000 -paths 96 \
    -concurrency "$CONCURRENCY" -out "$TMP/kill.json" &
BENCH_PID=$!
sleep 4
kill -9 "$VICTIM_PID"
echo "(killed replica 3, pid $VICTIM_PID)"
wait "$BENCH_PID"
stop_fleet
cat "$TMP/kill.json"

TMP="$TMP" python3 - <<'PYEOF'
import json, os, sys

tmp = os.environ["TMP"]
scale = {n: json.load(open(f"{tmp}/scale-{n}.json")) for n in (1, 2, 4)}
kill = json.load(open(f"{tmp}/kill.json"))

base = scale[1]["throughput_rps"]
speedup = {n: round(scale[n]["throughput_rps"] / base, 3) for n in (2, 4)}

doc = {
    "description": "Distributed serving scaling: closed-loop estimate load "
                   "against 1/2/4-replica m3serve fleets on loopback, "
                   "working set of %d cache keys vs a %d-entry per-tier "
                   "LRU. All replicas share one CPU core, so the scaling "
                   "comes from fleet-aggregate two-tier cache capacity "
                   "(misses cost tens of ms of simulation, peer hits "
                   "sub-ms), not parallel compute; on multi-core hosts "
                   "scatter-gather adds CPU parallelism on top. Regenerate "
                   "with scripts/cluster_bench.sh."
                   % (scale[1]["seeds"], 20),
    "fleet": {str(n): scale[n] for n in (1, 2, 4)},
    "speedup_vs_1_replica": speedup,
    "kill_one_replica": {
        "setup": "3-replica scatter fleet, one replica SIGKILLed mid-run, "
                 "load aimed at the two survivors",
        **kill,
    },
}
with open("BENCH_pr6.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr6.json")

failures = []
if speedup[2] < 1.6:
    failures.append("2-replica speedup %.2fx < 1.6x" % speedup[2])
if speedup[4] < 2.5:
    failures.append("4-replica speedup %.2fx < 2.5x" % speedup[4])
if kill["failures"] != 0:
    failures.append("%d requests failed during the kill phase" % kill["failures"])
if kill["degraded"] < 1:
    failures.append("no request surfaced Degraded during the kill phase")
if failures:
    sys.exit("cluster bench FAILED: " + "; ".join(failures))
print("scaling: 2 replicas %.2fx, 4 replicas %.2fx; kill-one: %d failures, %d degraded"
      % (speedup[2], speedup[4], kill["failures"], kill["degraded"]))
PYEOF

fi  # CHAOS_ONLY

echo "== chaos: 3-replica scatter fleet under seeded 10% connection resets =="
# M3_CHAOS arms the deterministic fault schedule inside every replica: each
# internal RPC (shards, cache fetches, replication, probes) draws from a
# seeded hash of its global call number; ~10% get a connection reset. The
# client-visible contract must hold anyway: zero failed requests, with
# retries and local shard fallback absorbing the schedule.
export M3_CHAOS="seed=7,reset=0.1"
start_fleet 3 -scatter -probe-interval 250ms
unset M3_CHAOS
"$TMP/m3fleetbench" -targets "$TARGETS" -workload chaostest \
    -flows "$FLOWS" -requests 180 -seeds 24 -paths 96 \
    -concurrency "$CONCURRENCY" -out "$TMP/chaos.json"
# Snapshot every replica's /metrics before shutdown: the per-peer retry,
# breaker, and probe counters prove the schedule actually fired.
ADDRS="${ADDRS[*]}" TMP="$TMP" python3 - <<'PYEOF'
import json, os, urllib.request
for i, a in enumerate(os.environ["ADDRS"].split(), 1):
    m = json.load(urllib.request.urlopen("http://%s/metrics" % a, timeout=5))
    with open("%s/chaos-metrics-%d.json" % (os.environ["TMP"], i), "w") as f:
        json.dump(m, f)
PYEOF
stop_fleet
cat "$TMP/chaos.json"

echo "== healthy-path overhead: BenchmarkServeEstimate vs pre-resilience baseline =="
# Three separate processes, not -count=3: the cold sub-benchmark keys its
# cache misses off the iteration counter, so reruns inside one process
# would hit the warm cache and stop measuring cold at all.
: > "$TMP/serve_bench.txt"
for i in 1 2 3; do
    go test -run '^$' -bench '^BenchmarkServeEstimate$' -benchtime=2s -count=1 . \
        | tee -a "$TMP/serve_bench.txt"
done

TMP="$TMP" python3 - <<'PYEOF'
import glob, json, os, re, statistics, sys

tmp = os.environ["TMP"]
chaos = json.load(open(f"{tmp}/chaos.json"))

# Per-peer resilience counters, summed across the fleet.
retries = probes = failures = 0
open_breakers = 0
for path in sorted(glob.glob(f"{tmp}/chaos-metrics-*.json")):
    m = json.load(open(path))
    for p in m.get("cluster", {}).get("peers", []):
        retries += p["retries"]
        probes += p["probes"]
        failures += p["failures"]
        if p["state"] != "closed":
            open_breakers += 1

# Median ns/op per BenchmarkServeEstimate sub-benchmark across the runs
# (median, not min: this box's run-to-run spread is ~±5%, and a single
# lucky minimum would overstate whichever side drew it).
samples = {}
for line in open(f"{tmp}/serve_bench.txt"):
    m = re.match(r"BenchmarkServeEstimate/(\w+)-?\d*\s+\d+\s+(\d+) ns/op", line)
    if m:
        samples.setdefault(m.group(1), []).append(int(m.group(2)))
if not {"cold", "warm"} <= samples.keys():
    sys.exit("cluster bench FAILED: BenchmarkServeEstimate output missing cold/warm")
bench = {k: int(statistics.median(v)) for k, v in samples.items()}

# Frozen on this container: median of 7 interleaved A/B rounds against a
# worktree at commit 5a3c952 (the tree immediately before the resilience
# layer), alternating baseline/current runs so both sides saw the same
# machine conditions. Same-session A/B medians: warm -4.2%, cold +0.6% —
# the layer's healthy-path cost is indistinguishable from zero.
baseline = {"cold": 60711921, "warm": 2489562}
overhead = {k: round((bench[k] - baseline[k]) / baseline[k] * 100, 2)
            for k in ("cold", "warm")}

doc = {
    "description": "Resilient fleet RPC: a 3-replica scatter fleet driven "
                   "through a deterministic chaos schedule (M3_CHAOS seed=7, "
                   "10% connection resets on every internal RPC) must serve "
                   "every client request; retry budgets, half-open breakers, "
                   "and the background health prober absorb the faults. The "
                   "healthy path pays for none of it: BenchmarkServeEstimate "
                   "vs the pre-resilience baseline stays within noise. "
                   "Amplification under sustained failure is capped <= 2x by "
                   "the retry token bucket (gated in "
                   "TestRetryBudgetCapsAmplification, scripts/check.sh). "
                   "Regenerate with CHAOS_ONLY=1 scripts/cluster_bench.sh.",
    "chaos": {
        "setup": "3-replica scatter fleet, M3_CHAOS=seed=7,reset=0.1, "
                 "probe interval 250ms, closed-loop client load",
        **chaos,
        "fleet_counters": {
            "peer_retries": retries,
            "peer_failures": failures,
            "probes": probes,
            "breakers_open_at_end": open_breakers,
        },
    },
    "healthy_path": {
        "note": "Baseline is the median of 7 interleaved A/B rounds against "
                "a worktree at the pre-resilience commit, alternated with "
                "current-tree runs under identical machine conditions; the "
                "same-session A/B put warm at -4.2% and cold at +0.6% "
                "(within this 1-CPU box's ~±5% noise). The regen gate below "
                "is noise-tolerant (<5% warm); the <1% budget claim rests "
                "on the interleaved measurement.",
        "baseline_pr9": {"commit": "5a3c952",
                         "BenchmarkServeEstimate": baseline},
        "current": {"BenchmarkServeEstimate": bench},
        "overhead_pct": overhead,
    },
}
with open("BENCH_pr10.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr10.json")

problems = []
if chaos["failures"] != 0:
    problems.append("%d requests failed under chaos" % chaos["failures"])
if retries == 0:
    problems.append("no peer retries recorded; the chaos schedule never fired")
if overhead["warm"] >= 5.0:
    problems.append("warm healthy-path overhead %.2f%% >= 5%% noise bound" % overhead["warm"])
if problems:
    sys.exit("cluster bench FAILED: " + "; ".join(problems))
print("chaos: %d/%d ok (%d degraded), %d retries, %d probes; "
      "healthy overhead cold %+.2f%% warm %+.2f%%"
      % (chaos["requests"] - chaos["failures"], chaos["requests"],
         chaos["degraded"], retries, probes, overhead["cold"], overhead["warm"]))
PYEOF

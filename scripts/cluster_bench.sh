#!/usr/bin/env bash
# Distributed-serving benchmark: runs real multi-process m3serve fleets on
# loopback and records replica-count scaling plus graceful degradation in
# BENCH_pr6.json.
#
# What is measured (and why it scales on a single-core host): every replica
# here shares one CPU, so the fleet cannot win by parallel simulation. The
# scaling lever is aggregate estimate-cache capacity — the working set
# (-seeds distinct cache keys) is chosen larger than one replica's LRU, so
# a standalone server thrashes while a fleet holds the set partitioned
# across its rendezvous-owned tiers and converts misses (tens of ms of
# simulation) into peer-cache hits (sub-ms). On multi-core hosts the same
# harness additionally benefits from scatter-gather CPU parallelism.
#
# Phases:
#   1, 2, 4 replicas  closed-loop estimate load, fixed working set,
#                     throughput recorded per fleet size
#   kill-one          3-replica scatter fleet; one replica is SIGKILLed
#                     mid-run; the load (aimed at the survivors) must see
#                     zero failed requests and surface Degraded
#
# Usage: scripts/cluster_bench.sh   (run from anywhere; writes BENCH_pr6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    [[ ${#PIDS[@]} -gt 0 ]] && kill "${PIDS[@]}" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/m3serve" ./cmd/m3serve
go build -o "$TMP/m3fleetbench" ./cmd/m3fleetbench
"$TMP/m3fleetbench" -mkckpt "$TMP/tiny.ckpt"

BASE=19360
CACHE=20      # per-tier LRU capacity per replica
SEEDS=48      # distinct cache keys in the working set (2.4x one LRU)
REQUESTS=360
PATHS=250     # a miss costs ~100ms of simulation; a cache hit ~2ms
FLOWS=4000
CONCURRENCY=3

# start_fleet N [extra flags...] — boots replicas on ports BASE+1..BASE+N,
# each listing the others as peers, and waits until every /healthz answers.
start_fleet() {
    local n=$1; shift
    PIDS=()
    ADDRS=()
    local i j peers
    for i in $(seq 1 "$n"); do ADDRS+=("127.0.0.1:$((BASE + i))"); done
    for i in $(seq 1 "$n"); do
        peers=""
        for j in $(seq 1 "$n"); do
            [[ "$i" == "$j" ]] && continue
            peers+="${peers:+,}${ADDRS[$((j - 1))]}"
        done
        "$TMP/m3serve" -checkpoint "$TMP/tiny.ckpt" -addr "${ADDRS[$((i - 1))]}" \
            -cache "$CACHE" ${peers:+-peers "$peers"} "$@" \
            2>"$TMP/serve-$n-$i.log" &
        PIDS+=($!)
    done
    TARGETS=$(IFS=,; echo "${ADDRS[*]}")
    ADDRS="${ADDRS[*]}" python3 - <<'PYEOF'
import os, sys, time, urllib.request
addrs = os.environ["ADDRS"].split()
deadline = time.time() + 30
for a in addrs:
    while True:
        try:
            urllib.request.urlopen("http://%s/healthz" % a, timeout=1).read()
            break
        except Exception:
            if time.time() > deadline:
                sys.exit("replica %s never became healthy" % a)
            time.sleep(0.1)
PYEOF
}

stop_fleet() {
    [[ ${#PIDS[@]} -gt 0 ]] && kill "${PIDS[@]}" 2>/dev/null || true
    wait 2>/dev/null || true
    PIDS=()
}

for n in 1 2 4; do
    echo "== fleet of $n: $REQUESTS requests over $SEEDS keys (cache $CACHE/tier) =="
    start_fleet "$n"
    "$TMP/m3fleetbench" -targets "$TARGETS" -workload "scale$n" \
        -flows "$FLOWS" -requests "$REQUESTS" -seeds "$SEEDS" -paths "$PATHS" \
        -concurrency "$CONCURRENCY" -out "$TMP/scale-$n.json"
    stop_fleet
    cat "$TMP/scale-$n.json"
done

echo "== kill-one: 3-replica scatter fleet, SIGKILL one mid-run =="
start_fleet 3 -scatter
# Load only the two survivors; the third replica participates as a scatter
# shard executor and cache owner until it is killed.
SURVIVORS="${ADDRS[0]},${ADDRS[1]}"
VICTIM_PID=${PIDS[2]}
"$TMP/m3fleetbench" -targets "$SURVIVORS" -workload killtest \
    -flows "$FLOWS" -requests 120 -seeds 100000 -paths 96 \
    -concurrency "$CONCURRENCY" -out "$TMP/kill.json" &
BENCH_PID=$!
sleep 4
kill -9 "$VICTIM_PID"
echo "(killed replica 3, pid $VICTIM_PID)"
wait "$BENCH_PID"
stop_fleet
cat "$TMP/kill.json"

TMP="$TMP" python3 - <<'PYEOF'
import json, os, sys

tmp = os.environ["TMP"]
scale = {n: json.load(open(f"{tmp}/scale-{n}.json")) for n in (1, 2, 4)}
kill = json.load(open(f"{tmp}/kill.json"))

base = scale[1]["throughput_rps"]
speedup = {n: round(scale[n]["throughput_rps"] / base, 3) for n in (2, 4)}

doc = {
    "description": "Distributed serving scaling: closed-loop estimate load "
                   "against 1/2/4-replica m3serve fleets on loopback, "
                   "working set of %d cache keys vs a %d-entry per-tier "
                   "LRU. All replicas share one CPU core, so the scaling "
                   "comes from fleet-aggregate two-tier cache capacity "
                   "(misses cost tens of ms of simulation, peer hits "
                   "sub-ms), not parallel compute; on multi-core hosts "
                   "scatter-gather adds CPU parallelism on top. Regenerate "
                   "with scripts/cluster_bench.sh."
                   % (scale[1]["seeds"], 20),
    "fleet": {str(n): scale[n] for n in (1, 2, 4)},
    "speedup_vs_1_replica": speedup,
    "kill_one_replica": {
        "setup": "3-replica scatter fleet, one replica SIGKILLed mid-run, "
                 "load aimed at the two survivors",
        **kill,
    },
}
with open("BENCH_pr6.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr6.json")

failures = []
if speedup[2] < 1.6:
    failures.append("2-replica speedup %.2fx < 1.6x" % speedup[2])
if speedup[4] < 2.5:
    failures.append("4-replica speedup %.2fx < 2.5x" % speedup[4])
if kill["failures"] != 0:
    failures.append("%d requests failed during the kill phase" % kill["failures"])
if kill["degraded"] < 1:
    failures.append("no request surfaced Degraded during the kill phase")
if failures:
    sys.exit("cluster bench FAILED: " + "; ".join(failures))
print("scaling: 2 replicas %.2fx, 4 replicas %.2fx; kill-one: %d failures, %d degraded"
      % (speedup[2], speedup[4], kill["failures"], kill["degraded"]))
PYEOF

#!/usr/bin/env bash
# Cluster smoke gate: boots a real 3-replica m3serve fleet on loopback with
# scatter-gather enabled and checks that a quantile query answered by the
# fleet is byte-identical to the same query against a single standalone
# process. This is the cross-process twin of TestClusterScatterParity —
# it exercises the actual binaries, real sockets, workload replication,
# and the scatter plan split across three OS processes.
#
# Usage: scripts/cluster_smoke.sh   (run from anywhere; ~10s)
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    [[ ${#PIDS[@]} -gt 0 ]] && kill "${PIDS[@]}" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/m3serve" ./cmd/m3serve
go build -o "$TMP/m3fleetbench" ./cmd/m3fleetbench
"$TMP/m3fleetbench" -mkckpt "$TMP/tiny.ckpt"

BASE=19460
# flowsim at high load: deterministic, non-trivial slowdown quantiles (an
# untrained smoke checkpoint would make the m3 method's output a constant,
# which would pass parity vacuously).
QUERY='workload=smoke&method=flowsim&paths=40&seed=3&q=0.5,0.9,0.99'

wait_healthy() {
    ADDRS="$*" python3 - <<'PYEOF'
import os, sys, time, urllib.request
deadline = time.time() + 30
for a in os.environ["ADDRS"].split():
    while True:
        try:
            urllib.request.urlopen("http://%s/healthz" % a, timeout=1).read()
            break
        except Exception:
            if time.time() > deadline:
                sys.exit("replica %s never became healthy" % a)
            time.sleep(0.1)
PYEOF
}

# register_and_fetch ADDR... — registers the smoke workload on the first
# replica, waits for it to replicate to all, then writes each replica's
# quantile values to $TMP/resp-<addr>.json. Only the "quantiles" object is
# kept: the envelope's cached flag legitimately differs per replica (the
# second replica queried answers from the fleet cache).
register_and_fetch() {
    ADDRS="$*" TMP="$TMP" QUERY="$QUERY" python3 - <<'PYEOF'
import json, os, sys, time, urllib.request, urllib.error

addrs = os.environ["ADDRS"].split()
tmp, query = os.environ["TMP"], os.environ["QUERY"]
body = json.dumps({
    "name": "smoke",
    "spec": {"num_flows": 2000, "max_load": 0.9, "burstiness": 2.5, "seed": 7},
}).encode()
req = urllib.request.Request("http://%s/v1/workloads" % addrs[0], data=body,
                             headers={"Content-Type": "application/json"})
try:
    urllib.request.urlopen(req, timeout=10).read()
except urllib.error.HTTPError as e:
    if e.code != 409:  # already there from an earlier attempt is fine
        sys.exit("workload create failed: %s %s" % (e.code, e.read()))

deadline = time.time() + 30
for a in addrs:
    while True:
        try:
            urllib.request.urlopen("http://%s/v1/workloads/smoke" % a, timeout=1).read()
            break
        except Exception:
            if time.time() > deadline:
                sys.exit("workload never replicated to %s" % a)
            time.sleep(0.05)

for a in addrs:
    resp = urllib.request.urlopen("http://%s/v1/quantiles?%s" % (a, query), timeout=120)
    obj = json.loads(resp.read())
    with open("%s/resp-%s.json" % (tmp, a.replace(":", "_")), "w") as f:
        f.write(json.dumps(obj["quantiles"], sort_keys=True))
PYEOF
}

echo "-- standalone reference --"
SOLO="127.0.0.1:$((BASE + 9))"
"$TMP/m3serve" -checkpoint "$TMP/tiny.ckpt" -addr "$SOLO" -cache 8 \
    2>"$TMP/serve-solo.log" &
PIDS+=($!)
wait_healthy "$SOLO"
register_and_fetch "$SOLO"
kill "${PIDS[@]}" 2>/dev/null || true
wait 2>/dev/null || true
PIDS=()

echo "-- 3-replica scatter fleet --"
ADDRS=()
for i in 1 2 3; do ADDRS+=("127.0.0.1:$((BASE + i))"); done
for i in 0 1 2; do
    peers=""
    for j in 0 1 2; do
        [[ "$i" == "$j" ]] && continue
        peers+="${peers:+,}${ADDRS[$j]}"
    done
    "$TMP/m3serve" -checkpoint "$TMP/tiny.ckpt" -addr "${ADDRS[$i]}" -cache 8 \
        -peers "$peers" -scatter 2>"$TMP/serve-$i.log" &
    PIDS+=($!)
done
wait_healthy "${ADDRS[@]}"
register_and_fetch "${ADDRS[@]}"

for a in "${ADDRS[@]}"; do
    if ! cmp -s "$TMP/resp-${SOLO/:/_}.json" "$TMP/resp-${a/:/_}.json"; then
        echo "cluster smoke FAILED: $a quantiles differ from standalone:" >&2
        echo "  solo:  $(cat "$TMP/resp-${SOLO/:/_}.json")" >&2
        echo "  $a: $(cat "$TMP/resp-${a/:/_}.json")" >&2
        exit 1
    fi
done
echo "cluster smoke ok: 3-replica scatter quantiles byte-identical to standalone"

#!/usr/bin/env bash
# Simulator hot-path benchmark workflow: runs the ground-truth engine
# benchmarks (the packet simulator itself, the Parsimon per-link fan-out,
# and training-set generation) and records the results in BENCH_pr4.json
# next to the frozen pre-calendar-queue baseline, so regressions in ns/op
# or allocs/op are visible in review diffs. BENCH_pr3.json holds the
# inference-stage record from the batching PR and is not rewritten here.
#
# Usage:
#   scripts/bench.sh          full run, rewrites BENCH_pr4.json,
#                             BENCH_pr5.json, BENCH_pr6.json,
#                             BENCH_pr7.json, BENCH_pr8.json and
#                             BENCH_pr9.json
#   scripts/bench.sh -short   one-iteration smoke run (scripts/check.sh),
#                             writes nothing
#
# BENCH_pr5.json records the serving-path overhead of the fault-tolerance
# layer (input validation, fallback bookkeeping, admission control) against
# the frozen pre-change BenchmarkServeEstimate numbers; the budget is <1%.
# BENCH_pr8.json records the int8-quantized inference backend against the
# float batched path and the frozen PR 3 float baseline; the gate is
# parity-or-better ns/op.
# BENCH_pr9.json records the barrier-free streamed pipeline vs the staged
# baseline and the worker-sharded GEMM sweep vs the frozen PR 8 serial
# numbers; the gate is parity-or-better with single-core noise tolerance.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='^(BenchmarkPacketsim|BenchmarkParsimon|BenchmarkDatasetGen)$'
SMOKE='^(BenchmarkPacketsim|BenchmarkParsimon|BenchmarkDatasetGen|BenchmarkModelInference|BenchmarkModelInferenceBatch|BenchmarkModelInferenceBatchInt8|BenchmarkModelInferenceBatchSharded|BenchmarkEstimateEndToEnd|BenchmarkEstimatePipeline|BenchmarkServeEstimate)$'

if [[ "${1:-}" == "-short" ]]; then
    go test -run '^$' -bench "$SMOKE" -benchtime=1x -benchmem .
    exit 0
fi

out=$(go test -run '^$' -bench "$BENCHES" -benchtime=2s -benchmem -count=1 .)
echo "$out"

BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

# Pre-change baseline, measured at commit 48f1db2 (binary-heap event queue,
# heap-allocated events and packets, per-run simulator state allocated
# fresh, ad-hoc goroutine fan-outs; same benchmarks at the same scale on
# the same machine class). Frozen so the post-change numbers below always
# have a comparison point.
baseline = {
    "commit": "48f1db2",
    "BenchmarkPacketsim": {
        "ns_per_op": 92149780, "bytes_per_op": 3600901, "allocs_per_op": 25677,
    },
    "BenchmarkParsimon": {
        "ns_per_op": 121342750, "bytes_per_op": 25775164, "allocs_per_op": 168831,
    },
    "BenchmarkDatasetGen": {
        "ns_per_op": 1720586446, "bytes_per_op": 31408795, "allocs_per_op": 262513,
    },
}

current = {}
for line in os.environ["BENCH_OUT"].splitlines():
    m = re.match(r"^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+(.*)", line)
    if not m:
        continue
    name, rest = m.group(1), m.group(2)
    row = current.setdefault(name, {})
    for val, unit in re.findall(r"([\d.]+)\s+([\w/%-]+)", rest):
        key = {
            "ns/op": "ns_per_op",
            "B/op": "bytes_per_op",
            "allocs/op": "allocs_per_op",
            "flows/s": "flows_per_sec",
        }.get(unit)
        if key:
            row[key] = float(val) if "." in val else int(float(val))

doc = {
    "description": "Ground-truth engine benchmarks: the packet-level "
                   "simulator (calendar queue + pooled run state), the "
                   "Parsimon per-link fan-out on the shared worker pool, "
                   "and training-set generation. Regenerate with "
                   "scripts/bench.sh.",
    "baseline_preoverhaul": baseline,
    "current": current,
}
summary = {}
for name, ratio_key in [
    ("BenchmarkPacketsim", "packetsim_ns_per_op_speedup"),
    ("BenchmarkParsimon", "parsimon_ns_per_op_speedup"),
    ("BenchmarkDatasetGen", "datasetgen_ns_per_op_speedup"),
]:
    cur = current.get(name)
    if cur and "ns_per_op" in cur:
        summary[ratio_key] = round(
            baseline[name]["ns_per_op"] / cur["ns_per_op"], 3)
ps = current.get("BenchmarkPacketsim")
if ps and "allocs_per_op" in ps:
    summary["packetsim_allocs_per_op"] = ps["allocs_per_op"]
    summary["packetsim_allocs_per_op_baseline"] = \
        baseline["BenchmarkPacketsim"]["allocs_per_op"]
if summary:
    doc["summary"] = summary
with open("BENCH_pr4.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr4.json")
EOF

serve_out=$(go test -run '^$' -bench '^BenchmarkServeEstimate$' -benchtime=2s -benchmem -count=1 .)
echo "$serve_out"

BENCH_OUT="$serve_out" python3 - <<'EOF'
import json, os, re

# Pre-change baseline, measured at commit 5d45115 (before the
# fault-tolerance layer: no workload/request validation, no fallback
# bookkeeping, no admission semaphore or per-estimate deadline on the
# serving path) in the same session as the post-change numbers, so both
# sides saw the same machine conditions. Frozen so the overhead of those
# checks stays visible.
baseline = {
    "commit": "5d45115",
    "BenchmarkServeEstimate/cold": {
        "ns_per_op": 60892874, "bytes_per_op": 41577219, "allocs_per_op": 130115,
    },
    "BenchmarkServeEstimate/warm": {
        "ns_per_op": 640087, "bytes_per_op": 777747, "allocs_per_op": 100,
    },
}

current = {}
for line in os.environ["BENCH_OUT"].splitlines():
    m = re.match(r"^(Benchmark[\w/]+?)(?:-\d+)?\s+\d+\s+(.*)", line)
    if not m:
        continue
    name, rest = m.group(1), m.group(2)
    row = current.setdefault(name, {})
    for val, unit in re.findall(r"([\d.]+)\s+([\w/%-]+)", rest):
        key = {
            "ns/op": "ns_per_op",
            "B/op": "bytes_per_op",
            "allocs/op": "allocs_per_op",
        }.get(unit)
        if key:
            row[key] = float(val) if "." in val else int(float(val))

doc = {
    "description": "Serving-path benchmark after the fault-tolerance layer "
                   "(request validation, flowSim-fallback bookkeeping, "
                   "admission control, per-estimate deadlines). Overhead "
                   "budget vs the frozen baseline is <1%. Regenerate with "
                   "scripts/bench.sh.",
    "baseline_prefaulttolerance": baseline,
    "current": current,
}
summary = {}
for name in baseline:
    if name == "commit":
        continue
    cur = current.get(name)
    if cur and "ns_per_op" in cur:
        overhead = cur["ns_per_op"] / baseline[name]["ns_per_op"] - 1.0
        summary[name.split("/")[-1] + "_ns_overhead_pct"] = round(100 * overhead, 2)
if summary:
    doc["summary"] = summary
with open("BENCH_pr5.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr5.json")
EOF

backend_out=$(go test -run '^$' -bench '^(BenchmarkModelInferenceBatch|BenchmarkModelInferenceBatchInt8)$' -benchtime=2s -benchmem -count=1 .)
echo "$backend_out"

BENCH_OUT="$backend_out" python3 - <<'EOF'
import json, os, re

# Frozen float inference numbers from the batching PR (BENCH_pr3.json,
# commit ab1551d machine class): the quantized backend must be
# parity-or-better against this batched ns/op.
baseline = {
    "commit": "pr3",
    "BenchmarkModelInferenceBatch": {
        "ns_per_op": 6565977, "ns_per_sample": 205187,
    },
}

current = {}
for line in os.environ["BENCH_OUT"].splitlines():
    m = re.match(r"^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+(.*)", line)
    if not m:
        continue
    name, rest = m.group(1), m.group(2)
    row = current.setdefault(name, {})
    for val, unit in re.findall(r"([\d.]+)\s+([\w/%-]+)", rest):
        key = {
            "ns/op": "ns_per_op",
            "B/op": "bytes_per_op",
            "allocs/op": "allocs_per_op",
            "ns/sample": "ns_per_sample",
        }.get(unit)
        if key:
            row[key] = float(val) if "." in val else int(float(val))

doc = {
    "description": "Inference backend benchmarks: the float64 transformer "
                   "vs the int8 weight-quantized backend, one 32-sample "
                   "PredictBatch per op. The quantized path must be "
                   "parity-or-better vs the frozen PR 3 float baseline. "
                   "Regenerate with scripts/bench.sh.",
    "baseline_pr3_float": baseline,
    "current": current,
}
summary = {}
flt = current.get("BenchmarkModelInferenceBatch")
q = current.get("BenchmarkModelInferenceBatchInt8")
if q and "ns_per_op" in q:
    summary["int8_vs_pr3_float_speedup"] = round(
        baseline["BenchmarkModelInferenceBatch"]["ns_per_op"] / q["ns_per_op"], 3)
    if flt and "ns_per_op" in flt:
        summary["int8_vs_float_speedup"] = round(
            flt["ns_per_op"] / q["ns_per_op"], 3)
if summary:
    doc["summary"] = summary
with open("BENCH_pr8.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr8.json")
if summary.get("int8_vs_pr3_float_speedup", 1.0) < 1.0:
    raise SystemExit("int8 backend slower than the PR 3 float baseline")
EOF

pipeline_out=$(go test -run '^$' -bench '^(BenchmarkEstimatePipeline|BenchmarkModelInferenceBatchSharded)$' -benchtime=2s -count=1 .)
echo "$pipeline_out"

BENCH_OUT="$pipeline_out" python3 - <<'EOF'
import json, os, re

# Frozen serial inference numbers from the int8-backend PR (BENCH_pr8.json,
# commit 9cfdd4c machine class), the baseline the sharded GEMM is gated
# against. The staged-pipeline baseline is measured fresh in the same run as
# the streamed number, so both sides see identical machine conditions.
baseline = {
    "commit": "pr8",
    "BenchmarkModelInferenceBatch": {"ns_per_op": 5811283},
    "BenchmarkModelInferenceBatchInt8": {"ns_per_op": 5638866},
}

current = {}
for line in os.environ["BENCH_OUT"].splitlines():
    m = re.match(r"^(Benchmark[\w/=.-]+?)(?:-\d+)?\s+\d+\s+(.*)", line)
    if not m:
        continue
    name, rest = m.group(1), m.group(2)
    row = current.setdefault(name, {})
    for val, unit in re.findall(r"([\d.]+)\s+([\w/%-]+)", rest):
        key = {
            "ns/op": "ns_per_op",
            "ns/sample": "ns_per_sample",
            "overlap-ratio": "overlap_ratio",
        }.get(unit)
        if key:
            row[key] = float(val) if "." in val else int(float(val))

doc = {
    "description": "Barrier-free pipeline + sharded-GEMM benchmarks: the "
                   "streamed featurize/predict schedule vs the staged "
                   "baseline (bit-identical outputs, different overlap), "
                   "and one 32-sample PredictBatch per op across backend x "
                   "GEMM parallelism. Regenerate with scripts/bench.sh.",
    "note": "Measured on a single-CPU host (GOMAXPROCS=1): sharded and "
            "streamed schedules cannot beat serial wall clock here, so the "
            "gate is parity-or-better (>= 0.90, noise tolerance) and the "
            "multi-core speedup target is deferred to a wider machine. The "
            "overlap_ratio metric shows the streamed pipeline hiding the "
            "predict stage inside the featurize wall regardless.",
    "baseline_pr8_serial": baseline,
    "current": current,
}
summary = {}
staged = current.get("BenchmarkEstimatePipeline/staged", {})
streamed = current.get("BenchmarkEstimatePipeline/streamed", {})
if "ns_per_op" in staged and "ns_per_op" in streamed:
    summary["streamed_vs_staged_speedup"] = round(
        staged["ns_per_op"] / streamed["ns_per_op"], 3)
if "overlap_ratio" in streamed:
    summary["streamed_overlap_ratio"] = streamed["overlap_ratio"]
for kind, base_name in [
    ("net", "BenchmarkModelInferenceBatch"),
    ("net-int8", "BenchmarkModelInferenceBatchInt8"),
]:
    p1 = current.get(f"BenchmarkModelInferenceBatchSharded/{kind}/par=1", {})
    p4 = current.get(f"BenchmarkModelInferenceBatchSharded/{kind}/par=4", {})
    slug = kind.replace("-", "_")
    if "ns_per_op" in p1:
        summary[f"{slug}_par1_vs_pr8_speedup"] = round(
            baseline[base_name]["ns_per_op"] / p1["ns_per_op"], 3)
    if "ns_per_op" in p1 and "ns_per_op" in p4:
        summary[f"{slug}_par4_vs_par1_speedup"] = round(
            p1["ns_per_op"] / p4["ns_per_op"], 3)
if summary:
    doc["summary"] = summary
with open("BENCH_pr9.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr9.json")

# Parity-or-better gates (0.90 floor absorbs single-core scheduling noise).
failures = []
for key in ["streamed_vs_staged_speedup", "net_par1_vs_pr8_speedup",
            "net_int8_par1_vs_pr8_speedup", "net_par4_vs_par1_speedup",
            "net_int8_par4_vs_par1_speedup"]:
    v = summary.get(key)
    if v is not None and v < 0.90:
        failures.append(f"{key} = {v} (< 0.90)")
if failures:
    raise SystemExit("pipeline/GEMM regression: " + "; ".join(failures))
EOF

# Distributed-serving scaling + graceful-degradation record (BENCH_pr6.json):
# real multi-process fleets on loopback, see scripts/cluster_bench.sh.
scripts/cluster_bench.sh

# Ground-truth fan-out clustering record (BENCH_pr7.json): unclustered vs
# clustered Parsimon at 6144 hosts across distance thresholds. The record
# test writes the JSON itself and fails if no in-epsilon threshold reaches
# a 2x speedup, so a clustering regression breaks this run.
echo "== BENCH_pr7: link-clustering fan-out record =="
M3_BENCH_RECORD=1 go test -run '^TestGroundTruthFanoutRecord$' -v -timeout 30m .
echo "wrote BENCH_pr7.json"

#!/usr/bin/env bash
# Inference hot-path benchmark workflow: runs the Predict-stage
# micro-benchmarks (per-sample inference, batched inference, and the
# end-to-end estimate with its per-stage attribution) and records the
# results in BENCH_pr3.json next to the frozen pre-batching baseline, so
# regressions in ns/op or allocs/op are visible in review diffs.
#
# Usage:
#   scripts/bench.sh          full run, rewrites BENCH_pr3.json
#   scripts/bench.sh -short   one-iteration smoke run (scripts/check.sh),
#                             writes nothing
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='^(BenchmarkModelInference|BenchmarkModelInferenceBatch|BenchmarkEstimateEndToEnd)$'

if [[ "${1:-}" == "-short" ]]; then
    go test -run '^$' -bench "$BENCHES" -benchtime=1x -benchmem .
    exit 0
fi

out=$(go test -run '^$' -bench "$BENCHES" -benchtime=2s -benchmem -count=1 .)
echo "$out"

BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

# Pre-change baseline, measured at commit 6df6321 (per-sample Net.Predict
# in the estimator's per-path loop, no tensor batching, same benchmarks at
# the same scale on the same machine class). Frozen so the post-change
# numbers below always have a comparison point.
baseline = {
    "commit": "6df6321",
    "BenchmarkModelInference": {
        "ns_per_op": 266071, "bytes_per_op": 47616, "allocs_per_op": 124,
    },
    "BenchmarkEstimateEndToEnd": {
        "ns_per_op": 248865864, "bytes_per_op": 149555331, "allocs_per_op": 668666,
        "predict_stage_ns_per_op": 51377802, "pathsim_stage_ns_per_op": 49719151,
    },
}

current = {}
for line in os.environ["BENCH_OUT"].splitlines():
    m = re.match(r"^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+(.*)", line)
    if not m:
        continue
    name, rest = m.group(1), m.group(2)
    row = current.setdefault(name, {})
    for val, unit in re.findall(r"([\d.]+)\s+([\w/%-]+)", rest):
        key = {
            "ns/op": "ns_per_op",
            "B/op": "bytes_per_op",
            "allocs/op": "allocs_per_op",
            "ns/sample": "ns_per_sample",
            "predict-ns/op": "predict_stage_ns_per_op",
            "pathsim-ns/op": "pathsim_stage_ns_per_op",
            "predict-%": "predict_stage_percent",
        }.get(unit)
        if key:
            row[key] = float(val) if "." in val else int(float(val))

doc = {
    "description": "Predict-stage hot-path benchmarks: per-sample vs "
                   "batched tensor inference, and the end-to-end estimate "
                   "with per-stage CPU attribution. Regenerate with "
                   "scripts/bench.sh.",
    "baseline_prebatching": baseline,
    "current": current,
}
mi = current.get("BenchmarkModelInference")
mb = current.get("BenchmarkModelInferenceBatch")
eb = current.get("BenchmarkEstimateEndToEnd")
if mi and eb:
    doc["summary"] = {
        "predict_ns_per_op_speedup": round(
            baseline["BenchmarkEstimateEndToEnd"]["predict_stage_ns_per_op"]
            / eb["predict_stage_ns_per_op"], 3),
        "estimate_allocs_per_op_ratio": round(
            eb["allocs_per_op"]
            / baseline["BenchmarkEstimateEndToEnd"]["allocs_per_op"], 3),
    }
    if mb:
        # Same-run comparison of the two inference paths — immune to
        # machine drift between baseline and current runs.
        doc["summary"]["batch_vs_single_ns_per_sample_speedup"] = round(
            mi["ns_per_op"] / mb["ns_per_sample"], 3)
with open("BENCH_pr3.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("wrote BENCH_pr3.json")
EOF

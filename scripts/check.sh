#!/usr/bin/env bash
# Repo health gate: formatting, vet, build, and the full test suite under
# the race detector. Run from the repo root (or let the script cd there).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples ./*.go)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (shuffled) =="
# -shuffle=on randomizes test (and package-level example) execution order so
# inter-test state leaks can't hide behind source order; the seed is printed
# on failure for reproduction.
go test -race -shuffle=on ./...

echo "== fault injection (-race) =="
# The fault-tolerance suite: panic isolation in the pool, flowSim fallback
# and panic containment in core, reload/shed/degraded behavior in serve —
# all with fault hooks armed, under the race detector.
go test -race -run 'Panic|Fault|Fallback|Degraded|Reload|Admission|Hook|Cancels' \
    ./internal/pool/ ./internal/core/ ./internal/serve/ ./internal/faultinject/

echo "== checkpoint fuzz smoke =="
# Five seconds of coverage-guided corruption against the checkpoint decoder:
# any input may be rejected, none may panic.
go test -run '^$' -fuzz '^FuzzCheckpoint$' -fuzztime=5s ./internal/model/

echo "== inference backend parity + selection =="
# The multi-backend gates: int8-vs-float parity within the pinned epsilon,
# bit-stable quantization (behind byte-stable serving responses), per-backend
# cache keying, request-level backend selection, and the stable
# unknown_backend rejection for kinds this build does not register.
go test -run 'TestQuantizedParity|TestQuantizedDeterminism|TestBackendFingerprints|TestBuildBackendRegistry' \
    ./internal/model/
go test -run 'TestEstimateCacheBackendKeying' ./internal/core/
go test -run 'TestEstimateBackendSelection|TestUnknownBackend|TestQuantilesBackendByteStable|TestMetricsBackendSplit' \
    ./internal/serve/

echo "== streamed pipeline parity + sharded GEMM bit-identity =="
# Pipelined-parity gate: the barrier-free featurize→predict pipeline must
# reproduce the staged baseline's per-path outputs bit for bit across
# backends, micro-batch sizes, and seeds (-count=2 reruns in one process to
# catch state leaks); the worker-sharded GEMM must be bit-identical to the
# serial kernels in both the float and int8 paths — all under the race
# detector, since both features are scheduling-dependent by construction.
go test -race -count=2 -run '^TestStreamedMatchesStagedBitIdentical$' ./internal/core/
go test -race -run '^TestPredictParallelismBitIdentical$|^TestPredictParallelismConcurrent$' ./internal/model/
go test -race -run '^TestFloatShardedBitIdentical$|^TestQuantShardedBitIdentical$' ./internal/ml/

echo "== packetsim determinism =="
# Golden-parity and pool-reuse tests pin the engine to the frozen
# bit-identical result hashes; -count=2 reruns them in one process so any
# state leaking through the sync.Pool between runs fails the second pass.
go test -run 'TestEngineGoldenParity|TestRunDeterministic' -count=2 ./internal/packetsim/

echo "== parsimon clustering determinism + parity =="
# Link-clustering gates: frozen golden hashes (clustering off), threshold-0
# bit-identity with the unclustered path, and cross-pool-width determinism;
# -count=2 reruns in one process to catch state leaks across runs.
go test -run 'TestParsimonGoldenParity|TestClusterExactTierBitIdentical|TestClusterUniformWorkloadLossless|TestClusterDeterminism' \
    -count=2 ./internal/parsimon/

echo "== 100k-host scale smoke =="
# Builds the 100,352-host fat-tree, validates routing, and runs a short
# clustered ground-truth pass under hard memory ceilings (512 MiB live
# heap / 1.5 GiB Sys); measured ~2s wall, budgeted 10m for slow machines.
M3_SCALE_SMOKE=1 go test -run '^TestScaleSmoke100k$' -v -timeout 10m ./internal/core/

echo "== chaos gate (-race) =="
# The resilience gate: a 3-replica in-process fleet under a seeded 10% fault
# schedule plus a flapped replica. Every request must answer 200 with the
# single-process byte-identical result, breakers must open for the flapped
# peer, and the background prober alone must re-admit it — no user request
# pays for recovery. Deadline propagation and the adaptive Retry-After ride
# along.
go test -race -run '^TestChaosFleetResilience$|^TestDeadlinePropagation|^TestRetryAfterAdaptive$' \
    ./internal/serve/
go test -race -run '^TestChaos|^TestProber|^TestBreaker|^TestRetryBudget|^TestCall' \
    ./internal/cluster/ ./internal/faultinject/

echo "== cluster smoke (3-replica scatter parity) =="
# Boots real m3serve processes: a standalone reference and a 3-replica
# scatter fleet; the fleet's quantiles must be byte-identical to standalone.
scripts/cluster_smoke.sh

echo "== bench smoke (-short) =="
scripts/bench.sh -short

echo "ok"

#!/usr/bin/env bash
# Repo health gate: formatting, vet, build, and the full test suite under
# the race detector. Run from the repo root (or let the script cd there).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples ./*.go)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== packetsim determinism =="
# Golden-parity and pool-reuse tests pin the engine to the frozen
# bit-identical result hashes; -count=2 reruns them in one process so any
# state leaking through the sync.Pool between runs fails the second pass.
go test -run 'TestEngineGoldenParity|TestRunDeterministic' -count=2 ./internal/packetsim/

echo "== bench smoke (-short) =="
scripts/bench.sh -short

echo "ok"

#!/usr/bin/env bash
# Repo health gate: formatting, vet, build, and the full test suite under
# the race detector. Run from the repo root (or let the script cd there).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples ./*.go)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fault injection (-race) =="
# The fault-tolerance suite: panic isolation in the pool, flowSim fallback
# and panic containment in core, reload/shed/degraded behavior in serve —
# all with fault hooks armed, under the race detector.
go test -race -run 'Panic|Fault|Fallback|Degraded|Reload|Admission|Hook' \
    ./internal/pool/ ./internal/core/ ./internal/serve/ ./internal/faultinject/

echo "== checkpoint fuzz smoke =="
# Five seconds of coverage-guided corruption against the checkpoint decoder:
# any input may be rejected, none may panic.
go test -run '^$' -fuzz '^FuzzCheckpoint$' -fuzztime=5s ./internal/model/

echo "== packetsim determinism =="
# Golden-parity and pool-reuse tests pin the engine to the frozen
# bit-identical result hashes; -count=2 reruns them in one process so any
# state leaking through the sync.Pool between runs fails the second pass.
go test -run 'TestEngineGoldenParity|TestRunDeterministic' -count=2 ./internal/packetsim/

echo "== cluster smoke (3-replica scatter parity) =="
# Boots real m3serve processes: a standalone reference and a 3-replica
# scatter fleet; the fleet's quantiles must be byte-identical to standalone.
scripts/cluster_smoke.sh

echo "== bench smoke (-short) =="
scripts/bench.sh -short

echo "ok"

// Command m3serve runs the m3 estimation service: an HTTP API over the
// trained estimator with a shared worker pool, an estimate cache, and
// checkpoint hot-reload.
//
// Usage:
//
//	m3serve -checkpoint m3.ckpt [-addr :8053] [-workers N] [-cache 64]
//
// Signals:
//
//	SIGHUP          re-read the checkpoint and swap the model atomically
//	SIGINT/SIGTERM  graceful drain: stop accepting, finish in-flight requests
//
// See internal/serve for the endpoint reference and README.md for a curl
// walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"m3/internal/model"
	"m3/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8053", "listen address")
	checkpoint := flag.String("checkpoint", "", "trained model checkpoint (required)")
	workers := flag.Int("workers", 0, "shared path-simulation workers (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 64, "finished-estimate LRU capacity")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	maxInflight := flag.Int("max-inflight", 0,
		"estimation requests admitted concurrently before shedding with 429 (0 = 4x workers, <0 = unlimited)")
	estimateTimeout := flag.Duration("estimate-timeout", 0,
		"per-estimate deadline (0 = serve default)")
	flag.Parse()

	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required (train one with cmd/m3train)"))
	}
	net, err := model.LoadFile(*checkpoint)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Options{
		Net:             net,
		CheckpointPath:  *checkpoint,
		Workers:         *workers,
		CacheSize:       *cacheSize,
		MaxInflight:     *maxInflight,
		EstimateTimeout: *estimateTimeout,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "m3serve: model loaded (%d params), listening on %s\n",
		net.NumParams(), *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(""); err != nil {
				fmt.Fprintf(os.Stderr, "m3serve: reload failed: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "m3serve: checkpoint reloaded\n")
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	select {
	case err := <-done:
		fatal(err)
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "m3serve: %v, draining %d in-flight requests (budget %v)\n",
			sig, srv.Inflight(), *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "m3serve: drain incomplete, %d requests abandoned: %v\n",
				srv.Inflight(), err)
		}
		srv.Close()
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintf(os.Stderr, "m3serve: %v\n", err)
	os.Exit(1)
}

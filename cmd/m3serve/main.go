// Command m3serve runs the m3 estimation service: an HTTP API over the
// trained estimator with a shared worker pool, an estimate cache, and
// checkpoint hot-reload.
//
// Usage:
//
//	m3serve -checkpoint m3.ckpt [-addr :8053] [-workers N] [-cache 64]
//	        [-batch-size N] [-predict-parallelism N] [-pprof]
//
// Clustered (one process per replica, each listing the others):
//
//	m3serve -checkpoint m3.ckpt -addr 127.0.0.1:9001 \
//	        -peers 127.0.0.1:9002,127.0.0.1:9003 [-scatter]
//
// Signals:
//
//	SIGHUP          re-read the checkpoint and swap the model atomically
//	SIGINT/SIGTERM  graceful drain: deregister from peers, stop accepting,
//	                finish in-flight requests
//
// See internal/serve for the endpoint reference and README.md for a curl
// walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"m3/internal/cluster"
	"m3/internal/faultinject"
	"m3/internal/model"
	"m3/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8053", "listen address")
	checkpoint := flag.String("checkpoint", "", "trained model checkpoint (required)")
	workers := flag.Int("workers", 0, "shared path-simulation workers (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 64, "finished-estimate LRU capacity (per tier when clustered)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	maxInflight := flag.Int("max-inflight", 0,
		"estimation requests admitted concurrently before shedding with 429 (0 = 4x workers, <0 = unlimited)")
	estimateTimeout := flag.Duration("estimate-timeout", 0,
		"per-estimate deadline (0 = serve default)")
	batchSize := flag.Int("batch-size", 0,
		"ML inference micro-batch size (0 = core default)")
	predictPar := flag.Int("predict-parallelism", 0,
		"output-row shards per PredictBatch GEMM, bit-identical at every setting (0/1 = serial)")
	pprofDebug := flag.Bool("pprof", false,
		"mount /debug/pprof/* (profiles carry stage=featurize|predict labels); off by default")
	peers := flag.String("peers", "",
		"comma-separated host:port of the other fleet replicas (empty = standalone)")
	advertise := flag.String("advertise", "",
		"address peers dial this replica at (default: -addr when it has a host)")
	peerTimeout := flag.Duration("peer-timeout", 0,
		"per-peer-call deadline when clustered (0 = cluster default)")
	peerRetries := flag.Int("peer-retries", 0,
		"retries per peer call, budget permitting (0 = cluster default, <0 = disabled)")
	retryBudget := flag.Int("retry-budget", 0,
		"per-peer retry token-bucket capacity (0 = cluster default, <0 = unlimited)")
	probeInterval := flag.Duration("probe-interval", 0,
		"active health-probe cadence for down/left peers (0 = cluster default, <0 = disabled)")
	scatter := flag.Bool("scatter", false,
		"scatter-gather each estimate's per-path work across the fleet")
	flag.Parse()

	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required (train one with cmd/m3train)"))
	}

	// Cluster flags are validated before anything listens or loads, so a
	// typo'd peer list fails in milliseconds with a message naming the flag,
	// not after the model is up and the first scatter times out.
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	self := *advertise
	if self == "" && len(peerList) > 0 {
		self = *addr
	}
	if len(peerList) > 0 || self != "" {
		if err := cluster.ValidateMembers(self, peerList); err != nil {
			fatal(err)
		}
	}
	if *scatter && len(peerList) == 0 {
		fatal(fmt.Errorf("-scatter requires -peers (nothing to scatter across)"))
	}
	if *batchSize < 0 {
		fatal(fmt.Errorf("-batch-size %d must be >= 0", *batchSize))
	}
	if *predictPar < 0 {
		fatal(fmt.Errorf("-predict-parallelism %d must be >= 0", *predictPar))
	}

	// M3_CHAOS (e.g. "seed=7,reset=0.1,delayrate=0.05,delay=20ms") arms the
	// deterministic peer-RPC fault injector for resilience benchmarking.
	// Loud on stderr: a chaos-armed replica must never pass for a healthy
	// production process.
	if spec := os.Getenv("M3_CHAOS"); spec != "" {
		cfg, err := parseChaos(spec)
		if err != nil {
			fatal(err)
		}
		faultinject.Set("cluster.rpc", faultinject.Chaos(cfg))
		fmt.Fprintf(os.Stderr, "m3serve: CHAOS MODE — injecting peer-RPC faults (%s)\n", spec)
	}

	net, err := model.LoadFile(*checkpoint)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Options{
		Net:                net,
		CheckpointPath:     *checkpoint,
		Workers:            *workers,
		CacheSize:          *cacheSize,
		BatchSize:          *batchSize,
		PredictParallelism: *predictPar,
		MaxInflight:        *maxInflight,
		EstimateTimeout:    *estimateTimeout,
		Advertise:          self,
		Peers:              peerList,
		PeerTimeout:        *peerTimeout,
		PeerRetries:        *peerRetries,
		RetryBudget:        *retryBudget,
		ProbeInterval:      *probeInterval,
		Scatter:            *scatter,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "m3serve: model loaded (%d params), listening on %s\n",
		net.NumParams(), *addr)
	if fleet := srv.Fleet(); fleet != nil {
		adopted := srv.JoinFleet(context.Background())
		fmt.Fprintf(os.Stderr, "m3serve: fleet of %d (self %s, scatter %v), %d workloads adopted from peers\n",
			len(fleet.Members()), fleet.Self(), *scatter, adopted)
	}

	// -pprof mounts the profiling endpoints beside (not inside) the API
	// handler, so profiles skip admission control and the request body cap.
	// Off by default: the endpoints expose process internals and can run
	// long CPU captures, which an estimation service should not offer
	// unless the operator asked.
	var handler http.Handler = srv
	if *pprofDebug {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		fmt.Fprintf(os.Stderr, "m3serve: pprof mounted at /debug/pprof/\n")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(""); err != nil {
				fmt.Fprintf(os.Stderr, "m3serve: reload failed: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "m3serve: checkpoint reloaded\n")
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	select {
	case err := <-done:
		fatal(err)
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "m3serve: %v, draining %d in-flight requests (budget %v)\n",
			sig, srv.Inflight(), *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Deregister before draining: peers stop scattering to (and
		// fetching from) this replica immediately, so the drain window holds
		// only requests that were already here.
		srv.LeaveFleet(ctx)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "m3serve: drain incomplete, %d requests abandoned: %v\n",
				srv.Inflight(), err)
		}
		srv.Close()
	}
}

// parseChaos reads the M3_CHAOS spec: comma-separated key=value with keys
// seed (uint64), reset (probability), delayrate (probability), delay
// (duration), flapprobes (bool).
func parseChaos(spec string) (faultinject.ChaosConfig, error) {
	var cfg faultinject.ChaosConfig
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("M3_CHAOS: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 10, 64)
		case "reset":
			cfg.ResetRate, err = strconv.ParseFloat(v, 64)
		case "delayrate":
			cfg.DelayRate, err = strconv.ParseFloat(v, 64)
		case "delay":
			cfg.Delay, err = time.ParseDuration(v)
		case "flapprobes":
			cfg.FlapProbes, err = strconv.ParseBool(v)
		default:
			return cfg, fmt.Errorf("M3_CHAOS: unknown key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("M3_CHAOS: bad %s value %q: %v", k, v, err)
		}
	}
	return cfg, nil
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintf(os.Stderr, "m3serve: %v\n", err)
	os.Exit(1)
}

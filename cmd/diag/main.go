package main

import (
	"context"
	"fmt"

	m3 "m3"
	"m3/internal/core"
	"m3/internal/exp"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/sampling"
	"m3/internal/stats"
)

func main() {
	net, err := m3.LoadModel("testdata/m3-all.ckpt")
	if err != nil {
		panic(err)
	}
	// scenario 4-like: matrix C WebServer 45% (the worst one)
	root := rng.New(1010)
	var mix exp.Mix
	for i := 0; i < 6; i++ {
		m := exp.RandomMix(root.Split(uint64(i)), 8000, uint64(300+i))
		if i == 4 {
			mix = m
		}
	}
	fmt.Printf("mix: %s %s %s load %.2f sigma %.0f\n", mix.MatrixName, mix.Sizes.Name(), mix.Oversub, mix.MaxLoad, mix.Burstiness)
	ft, flows, err := mix.Build()
	if err != nil {
		panic(err)
	}
	cfg := packetsim.DefaultConfig()
	gt, err := core.RunGroundTruth(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		panic(err)
	}
	d, err := pathsim.Decompose(ft.Topology, flows)
	if err != nil {
		panic(err)
	}
	sample, err := sampling.Weighted(d.FgWeights(), 300, rng.New(mix.Seed))
	if err != nil {
		panic(err)
	}
	distinct, _ := sampling.Dedup(sample)

	// Pool per-bucket: model-predicted vectors vs GT fg slowdowns vs flowSim
	var pooledPred, pooledFS, pooledGT [feature.NumOutputBuckets][]float64
	for _, pi := range distinct {
		p := &d.Paths[pi]
		sc, err := d.Scenario(p)
		if err != nil {
			panic(err)
		}
		fs, err := sc.RunFlowSim()
		if err != nil {
			panic(err)
		}
		in := model.BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, cfg,
			d.T.RouteRates(p.Links), d.T.RouteDelays(p.Links))
		pred, err := net.Predict(in)
		if err != nil {
			panic(err)
		}
		counts := feature.BuildOutput(fs.Fg.Sizes, fs.Fg.Slowdown).Counts
		for b := 0; b < 4; b++ {
			if counts[b] > 0 {
				pooledPred[b] = append(pooledPred[b], pred[b*100:(b+1)*100]...)
			}
		}
		for j, id := range fs.Fg.Orig {
			b := feature.BucketOf(fs.Fg.Sizes[j], feature.OutputBucketBounds)
			pooledGT[b] = append(pooledGT[b], gt.Result.Slowdown[id])
			pooledFS[b] = append(pooledFS[b], fs.Fg.Slowdown[j])
		}
	}
	for b := 0; b < 4; b++ {
		if len(pooledGT[b]) == 0 {
			continue
		}
		fmt.Printf("bucket %d (n=%d): GT p50=%.2f p99=%.2f | pred p50=%.2f p99=%.2f | flowSim p50=%.2f p99=%.2f\n",
			b, len(pooledGT[b]),
			stats.Median(pooledGT[b]), stats.P99(pooledGT[b]),
			stats.Median(pooledPred[b]), stats.P99(pooledPred[b]),
			stats.Median(pooledFS[b]), stats.P99(pooledFS[b]))
	}
}

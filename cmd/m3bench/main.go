// Command m3bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	m3bench [-scale quick|full] [-checkpoint path] [-noctx path] <experiment>...
//
// Experiments: table1 fig2 fig3 fig5 fig6 table5 fig10 fig11 fig12 fig13
// fig14 fig15 fig16 fig17 fig18 ablation-paths ablation-knockout backends
// parallelism cluster all
//
// Experiments that need the ML model load the checkpoint if present and
// otherwise train one (and cache it at the checkpoint path).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"m3/internal/exp"
	"m3/internal/model"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	ckpt := flag.String("checkpoint", exp.DefaultCheckpoint(), "model checkpoint path (all-protocol)")
	noCtxCkpt := flag.String("noctx", "", "no-context model checkpoint (default: <checkpoint dir>/m3-noctx.ckpt)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: m3bench [-scale quick|full] <experiment>...")
		fmt.Fprintln(os.Stderr, "experiments: table1 fig2 fig3 fig5 fig6 table5 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 all")
		os.Exit(2)
	}
	var s exp.Scale
	switch *scaleFlag {
	case "quick":
		s = exp.Quick()
	case "full":
		s = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *noCtxCkpt == "" {
		*noCtxCkpt = filepath.Join(filepath.Dir(*ckpt), "m3-noctx.ckpt")
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	var net *model.Net
	loadNet := func() *model.Net {
		if net != nil {
			return net
		}
		if dir := filepath.Dir(*ckpt); dir != "." {
			_ = os.MkdirAll(dir, 0o755)
		}
		n, err := exp.TrainedModel(ctx, s, *ckpt, os.Stderr)
		if err != nil {
			fatal(err)
		}
		net = n
		return net
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		ran++
		fmt.Printf("\n===== %s =====\n", name)
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	var sensitivity []exp.SensitivityPoint
	var table5 []exp.Table5Row

	run("table1", func() error { _, err := exp.RunTable1(ctx, s, os.Stdout); return err })
	run("fig2", func() error { _, err := exp.RunFig2(ctx, s, os.Stdout); return err })
	run("fig3", func() error { _, err := exp.RunFig3(ctx, s, os.Stdout); return err })
	run("fig5", func() error { _, err := exp.RunFig5(ctx, s, os.Stdout); return err })
	run("fig6", func() error { _, err := exp.RunFig6(ctx, s, loadNet(), os.Stdout); return err })
	run("table5", func() error {
		rows, err := exp.RunTable5(ctx, s, loadNet(), os.Stdout)
		table5 = rows
		return err
	})
	run("fig10", func() error {
		pts, err := exp.RunFig10(ctx, s, loadNet(), os.Stdout)
		sensitivity = pts
		return err
	})
	run("fig11", func() error {
		if sensitivity == nil {
			pts, err := exp.RunSensitivity(ctx, s, loadNet(), exp.Discard)
			if err != nil {
				return err
			}
			sensitivity = pts
		}
		exp.RunFig11(sensitivity, os.Stdout)
		return nil
	})
	run("fig12", func() error {
		if table5 == nil {
			rows, err := exp.RunTable5(ctx, s, loadNet(), exp.Discard)
			if err != nil {
				return err
			}
			table5 = rows
		}
		exp.RunFig12(table5, os.Stdout)
		return nil
	})
	run("fig13", func() error { _, err := exp.RunFig13(ctx, s, loadNet(), os.Stdout); return err })
	run("fig14", func() error { _, err := exp.RunFig14(ctx, s, loadNet(), os.Stdout); return err })
	run("fig15", func() error { _, err := exp.RunFig15(ctx, s, loadNet(), os.Stdout); return err })
	run("fig16", func() error {
		full, noCtx, err := exp.TrainedPair(ctx, s, *ckpt, *noCtxCkpt, os.Stderr)
		if err != nil {
			return err
		}
		net = full
		_, err = exp.RunFig16(ctx, s, full, noCtx, os.Stdout)
		return err
	})
	run("fig17", func() error { _, err := exp.RunFig17(ctx, s, loadNet(), os.Stdout); return err })
	run("fig18", func() error { return exp.RunFig18(os.Stdout) })
	run("ablation-paths", func() error { _, err := exp.RunAblationPaths(ctx, s, loadNet(), os.Stdout); return err })
	run("ablation-knockout", func() error { _, err := exp.RunAblationKnockout(ctx, s, loadNet(), os.Stdout); return err })
	run("backends", func() error { _, err := exp.RunBackendAblation(ctx, s, loadNet(), os.Stdout); return err })
	run("parallelism", func() error { _, err := exp.RunParallelismSweep(ctx, s, loadNet(), os.Stdout); return err })
	run("cluster", func() error { _, err := exp.RunClusterSweep(ctx, s, os.Stdout); return err })

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no known experiment in %v\n", flag.Args())
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "m3bench:", err)
	os.Exit(1)
}

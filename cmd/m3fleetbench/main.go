// Command m3fleetbench drives a cluster of m3serve replicas for the
// scaling benchmarks and the cluster smoke gate.
//
// Two modes:
//
//	m3fleetbench -mkckpt tiny.ckpt
//	    Write a small untrained (inference-valid) checkpoint, so benches
//	    and smoke tests need no training run.
//
//	m3fleetbench -targets 127.0.0.1:9001,127.0.0.1:9002 \
//	    -workload bench -flows 2000 -requests 400 -seeds 64 -paths 64
//	    Register the workload once (it replicates fleet-wide), then run a
//	    closed-loop load of estimate requests whose seeds cycle through a
//	    working set of -seeds distinct cache keys, spread across the
//	    targets pseudo-randomly. Reports JSON on stdout.
//
// The -seeds knob is the point of the benchmark: each distinct seed is a
// distinct estimate cache key, so -seeds sets the working-set size. A
// single replica whose LRU is smaller than the working set thrashes; a
// fleet holds the set partitioned across its owned tiers, and throughput
// scales with aggregate cache capacity.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/model"
)

func main() {
	mkckpt := flag.String("mkckpt", "", "write a tiny untrained checkpoint here and exit")
	ckptSeed := flag.Uint64("ckpt-seed", 1, "weight-init seed for -mkckpt")
	targets := flag.String("targets", "", "comma-separated host:port of the replicas to load")
	workloadName := flag.String("workload", "fleetbench", "workload name to register and estimate")
	flows := flag.Int("flows", 2000, "synthetic workload size (flows)")
	requests := flag.Int("requests", 400, "total estimate requests to issue")
	seeds := flag.Int("seeds", 64, "distinct sampling seeds (estimate cache working-set size)")
	paths := flag.Int("paths", 64, "sampled paths per estimate")
	concurrency := flag.Int("concurrency", 4, "closed-loop client workers")
	method := flag.String("method", "m3", "estimation method (m3 | flowsim | ns3-path)")
	rngSeed := flag.Int64("rng", 1, "load-generator RNG seed (target + key sequence)")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()

	if *mkckpt != "" {
		writeCheckpoint(*mkckpt, *ckptSeed)
		return
	}
	var reps []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			reps = append(reps, "http://"+t)
		}
	}
	if len(reps) == 0 {
		fatal(fmt.Errorf("-targets is required (or use -mkckpt)"))
	}
	if *requests < 1 || *seeds < 1 || *concurrency < 1 {
		fatal(fmt.Errorf("-requests, -seeds and -concurrency must be positive"))
	}

	hc := &http.Client{Timeout: 2 * time.Minute}
	if err := register(hc, reps, *workloadName, *flows); err != nil {
		fatal(err)
	}

	type estResp struct {
		Cached   bool `json:"cached"`
		Degraded bool `json:"degraded"`
	}
	var (
		issued, failures, degraded, cached atomic.Int64
		wg                                 sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker deterministic RNG: run-to-run request sequences are
			// reproducible, and workers do not contend on one source.
			r := rand.New(rand.NewSource(*rngSeed + int64(w)*7919))
			for {
				n := issued.Add(1)
				if n > int64(*requests) {
					return
				}
				body, _ := json.Marshal(map[string]any{
					"workload":  *workloadName,
					"method":    *method,
					"num_paths": *paths,
					"seed":      uint64(1 + r.Intn(*seeds)),
				})
				target := reps[r.Intn(len(reps))]
				resp, err := hc.Post(target+"/v1/estimate", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				var er estResp
				if json.Unmarshal(raw, &er) == nil {
					if er.Cached {
						cached.Add(1)
					}
					if er.Degraded {
						degraded.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := map[string]any{
		"replicas":       len(reps),
		"requests":       *requests,
		"failures":       failures.Load(),
		"cached":         cached.Load(),
		"degraded":       degraded.Load(),
		"seeds":          *seeds,
		"paths":          *paths,
		"concurrency":    *concurrency,
		"elapsed_s":      elapsed.Seconds(),
		"throughput_rps": float64(*requests-int(failures.Load())) / elapsed.Seconds(),
	}
	enc, _ := json.MarshalIndent(report, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	os.Stdout.Write(enc)
}

// register creates the benchmark workload on the first answering replica
// (fleet replication spreads it), then waits until every replica serves it.
func register(hc *http.Client, reps []string, name string, flows int) error {
	body, _ := json.Marshal(map[string]any{
		"name": name,
		"spec": map[string]any{"num_flows": flows, "max_load": 0.5, "burstiness": 1.5, "seed": 7},
	})
	created := false
	for _, rep := range reps {
		resp, err := hc.Post(rep+"/v1/workloads", "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// 201 = created here; 409 = already registered (a rerun, or
		// replication from an earlier attempt won the race). Both fine.
		if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
			created = true
			break
		}
	}
	if !created {
		return fmt.Errorf("m3fleetbench: no replica accepted workload %q", name)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, rep := range reps {
		for {
			resp, err := hc.Get(rep + "/v1/workloads/" + name)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("m3fleetbench: workload %q never replicated to %s", name, rep)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

// writeCheckpoint saves a small untrained model — valid weights, instant to
// build — which is all serving-path benchmarks need.
func writeCheckpoint(path string, seed uint64) {
	cfg := model.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 32
	cfg.Seed = seed
	net, err := model.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := net.SaveFile(path); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "m3fleetbench: wrote %s (%d params)\n", path, net.NumParams())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "%v\n", err)
	os.Exit(1)
}

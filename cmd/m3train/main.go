// Command m3train generates a synthetic Table 2 training set with the
// packet-level simulator as ground truth, trains the m3 model, and writes a
// checkpoint.
//
// Usage:
//
//	m3train [-out m3.ckpt] [-scenarios 600] [-epochs 60] [-cc dctcp,...]
//	        [-dim 64] [-layers 2] [-heads 4] [-hidden 256] [-nocontext]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"m3/internal/model"
	"m3/internal/packetsim"
)

func main() {
	out := flag.String("out", "m3.ckpt", "checkpoint output path")
	scenarios := flag.Int("scenarios", 600, "synthetic training scenarios")
	epochs := flag.Int("epochs", 60, "training epochs")
	batch := flag.Int("batch", 20, "mini-batch size")
	lr := flag.Float64("lr", 1e-3, "learning rate")
	ccList := flag.String("cc", "", "comma-separated protocols to train on (default: all four)")
	dim := flag.Int("dim", 64, "transformer embedding dim")
	layers := flag.Int("layers", 2, "transformer layers")
	heads := flag.Int("heads", 4, "attention heads")
	hidden := flag.Int("hidden", 256, "MLP hidden width")
	noContext := flag.Bool("nocontext", false, "train the no-context ablation model")
	workers := flag.Int("workers", 8, "data-generation parallelism")
	seed := flag.Uint64("seed", 1, "dataset seed")
	netWorkloads := flag.Int("net-workloads", 12, "full-network workloads to decompose for extra training data (0 disables)")
	netPaths := flag.Int("net-paths", 60, "sampled paths per decomposed workload")
	flag.Parse()

	var ccs []packetsim.CCType
	if *ccList != "" {
		for _, name := range strings.Split(*ccList, ",") {
			cc, err := packetsim.ParseCC(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			ccs = append(ccs, cc)
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	dc := model.DefaultDataConfig()
	dc.Scenarios = *scenarios
	dc.Workers = *workers
	dc.Seed = *seed
	dc.CCs = ccs

	fmt.Fprintf(os.Stderr, "generating %d scenarios (%d workers)...\n", dc.Scenarios, dc.Workers)
	t0 := time.Now()
	samples, err := model.Generate(ctx, dc)
	if err != nil {
		fatal(err)
	}
	if *netWorkloads > 0 {
		nc := model.DefaultNetworkDataConfig()
		nc.Workloads = *netWorkloads
		nc.PathsPerWorkload = *netPaths
		nc.Workers = *workers
		nc.Seed = *seed + 1
		nc.CCs = ccs
		fmt.Fprintf(os.Stderr, "generating network-derived samples (%d workloads x %d paths)...\n",
			nc.Workloads, nc.PathsPerWorkload)
		netSamples, err := model.GenerateFromNetworks(ctx, nc)
		if err != nil {
			fatal(err)
		}
		samples = append(samples, netSamples...)
	}
	fmt.Fprintf(os.Stderr, "dataset ready: %d samples in %v\n", len(samples), time.Since(t0).Round(time.Second))

	mc := model.DefaultConfig()
	mc.Dim = *dim
	mc.Layers = *layers
	mc.Heads = *heads
	mc.Hidden = *hidden
	mc.UseContext = !*noContext
	net, err := model.New(mc)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "model: %d parameters\n", net.NumParams())

	opt := model.DefaultTrainOptions()
	opt.Epochs = *epochs
	opt.Batch = *batch
	opt.LR = *lr
	opt.Progress = func(epoch int, tr, vl float64) {
		if epoch%5 == 0 || epoch == *epochs-1 {
			fmt.Fprintf(os.Stderr, "epoch %3d: train %.4f, val %.4f\n", epoch, tr, vl)
		}
	}
	t0 = time.Now()
	res, err := net.Train(samples, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained in %v: train loss %.4f, val loss %.4f\n",
		time.Since(t0).Round(time.Second), res.TrainLoss, res.ValLoss)

	if err := net.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("saved %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "m3train:", err)
	os.Exit(1)
}

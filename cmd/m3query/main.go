// Command m3query is the interactive interface of m3 (paper §3.1,
// component 8): load a workload (generated or from a trace), then issue
// targeted queries — network-wide quantiles, per-host-pair path estimates,
// and live configuration what-ifs.
//
// Usage:
//
//	m3query -checkpoint m3.ckpt [-topo small|large] [-oversub 2-to-1]
//	        [-trace flows.csv] [-flows 20000] [-workload WebServer]
//	        [-matrix B] [-load 0.5] [-burst 2]
//
// Commands at the prompt:
//
//	summary                      workload statistics
//	p99 [bucket]                 99th-percentile slowdown (bucket 0-3 or all)
//	quantile <q> [bucket]        arbitrary quantile, q in (0,1]
//	path <srcHost> <dstHost>     per-host-pair estimate
//	set cc <dctcp|timely|dcqcn|hpcc>
//	set initwnd|buffer <bytes>   counterfactual knobs
//	set pfc <on|off>
//	set eta <0.x>                HPCC eta
//	show config                  current configuration
//	help, quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/query"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/trace"
	"m3/internal/workload"
)

func main() {
	checkpoint := flag.String("checkpoint", "", "trained model checkpoint (required)")
	topoName := flag.String("topo", "small", "topology: small (32 racks) or large (384 racks)")
	oversub := flag.String("oversub", "2-to-1", "oversubscription for the small topology")
	traceFile := flag.String("trace", "", "flow trace to load (csv or jsonl by extension)")
	flows := flag.Int("flows", 20000, "generated workload size (when no trace)")
	dist := flag.String("workload", "WebServer", "size distribution for generated workloads")
	matrixName := flag.String("matrix", "B", "traffic matrix for generated workloads")
	load := flag.Float64("load", 0.5, "max link load for generated workloads")
	burst := flag.Float64("burst", 2, "burstiness sigma for generated workloads")
	paths := flag.Int("paths", 500, "sampled paths per estimate")
	flag.Parse()

	if *checkpoint == "" {
		fatal(fmt.Errorf("-checkpoint is required (train one with cmd/m3train)"))
	}
	net, err := model.LoadPredictorFile(*checkpoint)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s model (%x)\n", net.Kind(), net.Fingerprint())

	var ft *topo.FatTree
	switch *topoName {
	case "small":
		ft, err = topo.SmallFatTree(topo.Oversub(*oversub))
	case "large":
		ft, err = topo.LargeFatTree()
	default:
		err = fmt.Errorf("unknown topology %q", *topoName)
	}
	if err != nil {
		fatal(err)
	}

	var ws []workload.Flow
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		format := trace.CSV
		if strings.HasSuffix(*traceFile, ".jsonl") || strings.HasSuffix(*traceFile, ".json") {
			format = trace.JSONL
		}
		ws, err = trace.Load(f, format, trace.LoadOptions{
			Router: routing.NewFatTreeRouter(ft), Topo: ft.Topology,
		})
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		sizes, err := workload.MetaDist(*dist)
		if err != nil {
			fatal(err)
		}
		mat, err := workload.Matrix(*matrixName, ft.Cfg.NumRacks(), rng.New(1))
		if err != nil {
			fatal(err)
		}
		ws, err = workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
			NumFlows: *flows, Sizes: sizes, Matrix: mat,
			Burstiness: *burst, MaxLoad: *load, Seed: 1,
		})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "workload: %d flows on %d hosts\n", len(ws), len(ft.Hosts()))

	sess, err := query.NewSession(ft.Topology, ws, net, packetsim.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	sess.NumPaths = *paths

	repl(sess)
}

func repl(sess *query.Session) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("m3> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			// Ctrl-C aborts the in-flight estimate, not the REPL.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			quit := execute(ctx, sess, line)
			stop()
			if quit {
				return
			}
		}
		fmt.Print("m3> ")
	}
}

func execute(ctx context.Context, sess *query.Session, line string) (quit bool) {
	args := strings.Fields(line)
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("commands: summary | p99 [bucket] | quantile <q> [bucket] |" +
			" path <src> <dst> | set <knob> <value> | show config | quit")
	case "summary":
		sum, err := sess.Summarize()
		if report(err) {
			return
		}
		fmt.Printf("flows %d, hosts %d, populated paths %d\n", sum.Flows, sum.Hosts, sum.Paths)
		fmt.Printf("bytes %v, mean size %.0fB, median %.0fB, horizon %v\n",
			sum.TotalBytes, sum.MeanSize, sum.MedianSize, sum.Horizon)
		for b, share := range sum.BucketShare {
			fmt.Printf("  %-12s %5.1f%% of flows\n", query.BucketNames[b], 100*share)
		}
	case "p99":
		bucket := -1
		if len(args) > 1 {
			b, err := strconv.Atoi(args[1])
			if report(err) {
				return
			}
			bucket = b
		}
		start := time.Now()
		v, err := sess.P99(ctx, bucket)
		if report(err) {
			return
		}
		printQuantile("p99", bucket, v, time.Since(start))
	case "quantile":
		if len(args) < 2 {
			fmt.Println("usage: quantile <q> [bucket]")
			return
		}
		q, err := strconv.ParseFloat(args[1], 64)
		if report(err) {
			return
		}
		bucket := -1
		if len(args) > 2 {
			b, err := strconv.Atoi(args[2])
			if report(err) {
				return
			}
			bucket = b
		}
		start := time.Now()
		v, err := sess.Quantile(ctx, bucket, q)
		if report(err) {
			return
		}
		printQuantile(fmt.Sprintf("q%.3f", q), bucket, v, time.Since(start))
	case "path":
		if len(args) != 3 {
			fmt.Println("usage: path <srcHost> <dstHost>")
			return
		}
		src, err1 := strconv.Atoi(args[1])
		dst, err2 := strconv.Atoi(args[2])
		if report(err1) || report(err2) {
			return
		}
		rep, err := sess.Path(ctx, topo.NodeID(src), topo.NodeID(dst))
		if report(err) {
			return
		}
		fmt.Printf("%d paths, %d foreground flows\n", rep.Paths, rep.FgFlows)
		for b := range rep.P99 {
			if math.IsNaN(rep.P99[b]) {
				continue
			}
			fmt.Printf("  %-12s p50 %.2f, p99 %.2f\n", query.BucketNames[b], rep.P50[b], rep.P99[b])
		}
	case "set":
		if len(args) != 3 {
			fmt.Println("usage: set <cc|initwnd|buffer|pfc|eta|k> <value>")
			return
		}
		cfg := sess.Config()
		if err := cfg.Set(args[1], args[2]); report(err) {
			return
		}
		if err := sess.SetConfig(cfg); report(err) {
			return
		}
		fmt.Println("ok (new estimates computed on demand; earlier configs stay cached)")
	case "show":
		cfg := sess.Config()
		fmt.Printf("cc=%v initwnd=%v buffer=%v pfc=%v", cfg.CC, cfg.InitWindow, cfg.Buffer, cfg.PFC)
		switch cfg.CC {
		case packetsim.DCTCP:
			fmt.Printf(" K=%v", cfg.DCTCPK)
		case packetsim.HPCC:
			fmt.Printf(" eta=%.2f rateAI=%v", cfg.HPCCEta, cfg.HPCCRateAI)
		case packetsim.DCQCN:
			fmt.Printf(" kmin=%v kmax=%v", cfg.DCQCNKmin, cfg.DCQCNKmax)
		case packetsim.TIMELY:
			fmt.Printf(" tlow=%v thigh=%v", cfg.TimelyTLow, cfg.TimelyTHigh)
		}
		fmt.Println()
	default:
		fmt.Printf("unknown command %q (try help)\n", args[0])
	}
	return false
}

func printQuantile(label string, bucket int, v float64, elapsed time.Duration) {
	scope := "all flows"
	if bucket >= 0 {
		scope = query.BucketNames[bucket]
	}
	fmt.Printf("%s slowdown (%s) = %.3f   [%v]\n", label, scope, v, elapsed.Round(time.Millisecond))
}

func report(err error) bool {
	if err != nil {
		fmt.Println("error:", err)
		return true
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "m3query:", err)
	os.Exit(1)
}

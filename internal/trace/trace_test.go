package trace

import (
	"bytes"
	"strings"
	"testing"

	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/workload"
)

func sampleFlows(t *testing.T) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: 50, Sizes: workload.WebServer, Matrix: workload.MatrixB(32, r),
		Burstiness: 1, MaxLoad: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, flows
}

func TestRoundTripCSV(t *testing.T) {
	ft, flows := sampleFlows(t)
	var buf bytes.Buffer
	if err := Save(&buf, flows, CSV); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, CSV, LoadOptions{Topo: ft.Topology})
	if err != nil {
		t.Fatal(err)
	}
	assertSameFlows(t, flows, loaded)
}

func TestRoundTripJSONL(t *testing.T) {
	ft, flows := sampleFlows(t)
	var buf bytes.Buffer
	if err := Save(&buf, flows, JSONL); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, JSONL, LoadOptions{Topo: ft.Topology})
	if err != nil {
		t.Fatal(err)
	}
	assertSameFlows(t, flows, loaded)
}

func assertSameFlows(t *testing.T, want, got []workload.Flow) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("got %d flows, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := &want[i], &got[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.Size != b.Size || a.Arrival != b.Arrival {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Route) != len(b.Route) {
			t.Fatalf("flow %d route length differs", i)
		}
		for j := range a.Route {
			if a.Route[j] != b.Route[j] {
				t.Fatalf("flow %d hop %d differs", i, j)
			}
		}
	}
}

func TestLoadFillsMissingRoutes(t *testing.T) {
	ft, flows := sampleFlows(t)
	// Strip routes before saving.
	stripped := append([]workload.Flow(nil), flows...)
	for i := range stripped {
		stripped[i].Route = nil
	}
	var buf bytes.Buffer
	if err := Save(&buf, stripped, CSV); err != nil {
		t.Fatal(err)
	}
	router := routing.NewFatTreeRouter(ft)
	loaded, err := Load(&buf, CSV, LoadOptions{Router: router, Topo: ft.Topology})
	if err != nil {
		t.Fatal(err)
	}
	for i := range loaded {
		if len(loaded[i].Route) == 0 {
			t.Fatalf("flow %d still has no route", i)
		}
		if err := ft.ValidateRoute(loaded[i].Src, loaded[i].Dst, loaded[i].Route); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
	}
}

func TestLoadMissingRouteWithoutRouter(t *testing.T) {
	csvData := "id,src,dst,size_bytes,arrival_ns,route\n0,100,200,1000,0,\n"
	if _, err := Load(strings.NewReader(csvData), CSV, LoadOptions{}); err == nil {
		t.Error("routeless trace without router accepted")
	}
}

func TestLoadRejectsBadRows(t *testing.T) {
	cases := []string{
		"id,src,dst,size_bytes,arrival_ns,route\n0,1,2,0,0,5",     // zero size
		"id,src,dst,size_bytes,arrival_ns,route\n0,1,2,100,-5,5",  // negative arrival
		"id,src,dst,size_bytes,arrival_ns,route\n0,1,2,abc,0,5",   // bad size
		"id,src,dst,size_bytes,arrival_ns,route\nx,1,2,100,0,5",   // bad id
		"id,src,dst,size_bytes,arrival_ns,route\n0,1,2,100,0,1 y", // bad route token
	}
	for i, data := range cases {
		if _, err := Load(strings.NewReader(data), CSV, LoadOptions{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadSortsAndReindexes(t *testing.T) {
	// Rows out of arrival order with sparse IDs.
	data := "id,src,dst,size_bytes,arrival_ns,route\n" +
		"9,1,2,100,2000,5\n" +
		"4,1,2,100,1000,5\n"
	flows, err := Load(strings.NewReader(data), CSV, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if flows[0].Arrival != 1000 || flows[1].Arrival != 2000 {
		t.Error("not sorted by arrival")
	}
	if flows[0].ID != 0 || flows[1].ID != 1 {
		t.Error("IDs not reindexed densely")
	}
}

func TestLoadCSVWithoutHeader(t *testing.T) {
	data := "0,1,2,100,0,5\n"
	flows, err := Load(strings.NewReader(data), CSV, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].Size != 100 {
		t.Errorf("headerless load failed: %+v", flows)
	}
}

func TestLoadJSONLSkipsBlankLines(t *testing.T) {
	data := `{"id":0,"src":1,"dst":2,"size_bytes":100,"arrival_ns":0,"route":[5]}` + "\n\n" +
		`{"id":1,"src":2,"dst":1,"size_bytes":200,"arrival_ns":10,"route":[6]}` + "\n"
	flows, err := Load(strings.NewReader(data), JSONL, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("%d flows", len(flows))
	}
}

func TestLoadJSONLRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json\n"), JSONL, LoadOptions{}); err == nil {
		t.Error("garbage JSONL accepted")
	}
}

func TestParseFormat(t *testing.T) {
	if f, err := ParseFormat("csv"); err != nil || f != CSV {
		t.Error("csv parse failed")
	}
	if f, err := ParseFormat("JSONL"); err != nil || f != JSONL {
		t.Error("jsonl parse failed")
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestEmptyCSV(t *testing.T) {
	if _, err := Load(strings.NewReader(""), CSV, LoadOptions{}); err == nil {
		t.Error("empty CSV accepted")
	}
}

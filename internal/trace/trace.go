// Package trace reads and writes flow traces, so workloads can come from
// production logs instead of the synthetic generators. The paper's input is
// exactly this: "a workload — specified as a sequence of flows and their
// network paths".
//
// Two formats are supported:
//
//   - CSV: "id,src,dst,size_bytes,arrival_ns[,route]" where route is a
//     space-separated list of directed link IDs (optional; absent routes are
//     filled in by a Router at load time).
//   - JSON lines: one Flow object per line with the same fields.
//
// Both formats round-trip losslessly through Save/Load.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Format selects the trace encoding.
type Format uint8

// Supported encodings.
const (
	CSV Format = iota
	JSONL
)

// ParseFormat maps "csv" or "jsonl" to a Format.
func ParseFormat(name string) (Format, error) {
	switch strings.ToLower(name) {
	case "csv":
		return CSV, nil
	case "jsonl", "json":
		return JSONL, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q", name)
}

// jsonFlow is the JSONL wire format.
type jsonFlow struct {
	ID      int32   `json:"id"`
	Src     int32   `json:"src"`
	Dst     int32   `json:"dst"`
	Size    int64   `json:"size_bytes"`
	Arrival int64   `json:"arrival_ns"`
	Route   []int32 `json:"route,omitempty"`
}

// Save writes flows to w in the given format.
func Save(w io.Writer, flows []workload.Flow, f Format) error {
	switch f {
	case CSV:
		return saveCSV(w, flows)
	case JSONL:
		return saveJSONL(w, flows)
	}
	return fmt.Errorf("trace: unknown format %d", f)
}

func saveCSV(w io.Writer, flows []workload.Flow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "src", "dst", "size_bytes", "arrival_ns", "route"}); err != nil {
		return err
	}
	for i := range flows {
		fl := &flows[i]
		var route strings.Builder
		for j, l := range fl.Route {
			if j > 0 {
				route.WriteByte(' ')
			}
			route.WriteString(strconv.Itoa(int(l)))
		}
		rec := []string{
			strconv.Itoa(int(fl.ID)),
			strconv.Itoa(int(fl.Src)),
			strconv.Itoa(int(fl.Dst)),
			strconv.FormatInt(int64(fl.Size), 10),
			strconv.FormatInt(int64(fl.Arrival), 10),
			route.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func saveJSONL(w io.Writer, flows []workload.Flow) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range flows {
		fl := &flows[i]
		jf := jsonFlow{
			ID: int32(fl.ID), Src: int32(fl.Src), Dst: int32(fl.Dst),
			Size: int64(fl.Size), Arrival: int64(fl.Arrival),
		}
		for _, l := range fl.Route {
			jf.Route = append(jf.Route, int32(l))
		}
		if err := enc.Encode(&jf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadOptions controls Load.
type LoadOptions struct {
	// Router fills in routes for flows whose trace rows omit them. Required
	// when any row lacks a route.
	Router routing.Router
	// Topo, when non-nil, validates every route (present or computed).
	Topo *topo.Topology
}

// Load reads a trace written by Save (or by an external tool using the same
// schema). Flow IDs are reassigned densely in arrival order, matching the
// simulators' requirements.
func Load(r io.Reader, f Format, opt LoadOptions) ([]workload.Flow, error) {
	var flows []workload.Flow
	var err error
	switch f {
	case CSV:
		flows, err = loadCSV(r)
	case JSONL:
		flows, err = loadJSONL(r)
	default:
		return nil, fmt.Errorf("trace: unknown format %d", f)
	}
	if err != nil {
		return nil, err
	}
	for i := range flows {
		fl := &flows[i]
		if fl.Size < 1 {
			return nil, fmt.Errorf("trace: flow %d has size %d", fl.ID, fl.Size)
		}
		if fl.Arrival < 0 {
			return nil, fmt.Errorf("trace: flow %d has negative arrival", fl.ID)
		}
		if len(fl.Route) == 0 {
			if opt.Router == nil {
				return nil, fmt.Errorf("trace: flow %d has no route and no router given", fl.ID)
			}
			route, err := opt.Router.Route(fl.Src, fl.Dst, uint64(fl.ID))
			if err != nil {
				return nil, fmt.Errorf("trace: routing flow %d: %w", fl.ID, err)
			}
			fl.Route = route
		}
		if opt.Topo != nil {
			if err := opt.Topo.ValidateRoute(fl.Src, fl.Dst, fl.Route); err != nil {
				return nil, fmt.Errorf("trace: flow %d: %w", fl.ID, err)
			}
		}
	}
	workload.SortByArrival(flows)
	return flows, nil
}

func loadCSV(r io.Reader) ([]workload.Flow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	start := 0
	if records[0][0] == "id" {
		start = 1 // header row
	}
	var flows []workload.Flow
	for li, rec := range records[start:] {
		if len(rec) < 5 {
			return nil, fmt.Errorf("trace: row %d has %d fields, need >= 5", li+start+1, len(rec))
		}
		var fl workload.Flow
		id, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d id: %w", li+start+1, err)
		}
		src, err := strconv.ParseInt(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d src: %w", li+start+1, err)
		}
		dst, err := strconv.ParseInt(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d dst: %w", li+start+1, err)
		}
		size, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d size: %w", li+start+1, err)
		}
		arrival, err := strconv.ParseInt(rec[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d arrival: %w", li+start+1, err)
		}
		fl.ID = workload.FlowID(id)
		fl.Src = topo.NodeID(src)
		fl.Dst = topo.NodeID(dst)
		fl.Size = unit.ByteSize(size)
		fl.Arrival = unit.Time(arrival)
		if len(rec) >= 6 && strings.TrimSpace(rec[5]) != "" {
			for _, tok := range strings.Fields(rec[5]) {
				l, err := strconv.ParseInt(tok, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("trace: row %d route: %w", li+start+1, err)
				}
				fl.Route = append(fl.Route, topo.LinkID(l))
			}
		}
		flows = append(flows, fl)
	}
	return flows, nil
}

func loadJSONL(r io.Reader) ([]workload.Flow, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var flows []workload.Flow
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var jf jsonFlow
		if err := json.Unmarshal([]byte(text), &jf); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		fl := workload.Flow{
			ID:      workload.FlowID(jf.ID),
			Src:     topo.NodeID(jf.Src),
			Dst:     topo.NodeID(jf.Dst),
			Size:    unit.ByteSize(jf.Size),
			Arrival: unit.Time(jf.Arrival),
		}
		for _, l := range jf.Route {
			fl.Route = append(fl.Route, topo.LinkID(l))
		}
		flows = append(flows, fl)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return flows, nil
}

package cluster

import (
	"context"
	"time"
)

// prober is the fleet's background health loop. Every probeInterval it
// health-checks each peer that is not serving traffic (breaker open or
// half-open, or marked left) with GET /internal/v1/health. Healthy peers
// are never probed — steady state costs zero traffic. Recovery is thus
// discovered in about one probe RTT, off the request path: no user request
// pays for the first call into a freshly restarted replica, and a peer
// whose rejoin announcement was lost is re-admitted anyway.
func (f *Fleet) prober() {
	ticker := time.NewTicker(f.probeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			for _, p := range f.peers {
				if p.needsProbe() {
					// Probes run concurrently so one black-holed peer's
					// timeout doesn't delay the others' recovery; the
					// probe-slot CAS in beginProbe prevents pile-up when a
					// probe outlives the tick.
					go f.probeOne(p)
				}
			}
		}
	}
}

// needsProbe reports whether the peer is out of rotation for any reason.
func (p *Peer) needsProbe() bool {
	return p.left.Load() || p.state.Load() != stateClosed
}

// probeOne health-checks one peer, sharing the breaker's single probe slot
// with request-path half-open probes. A success feeds the same
// consecutive-success streak that closes the breaker (and clears a stale
// left mark); a failure re-arms the cooldown.
func (f *Fleet) probeOne(p *Peer) {
	if !p.probeInFlight.CompareAndSwap(false, true) {
		return // a probe (ours or a request's) is already in flight
	}
	if !p.needsProbe() { // re-check: a request may have closed the breaker
		p.probeInFlight.Store(false)
		return
	}
	if p.state.Load() == stateOpen {
		p.state.Store(stateHalfOpen)
	}
	p.probes.Add(1)
	timeout := probeTimeout
	if f.peerTimeout < timeout {
		timeout = f.peerTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	_, err := p.Client.Health(ctx)
	cancel()
	if err != nil {
		p.probeFailures.Add(1)
		p.finish(true, false)
		return
	}
	p.finish(true, true)
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"m3/internal/core"
	"m3/internal/faultinject"
)

// PeerError is a peer's structured refusal: the HTTP status plus the
// machine-readable code from the response body, so callers branch on
// Retryable(Code) instead of matching message strings.
type PeerError struct {
	Peer   string
	Status int
	Code   string
	Msg    string
}

// Error implements the error interface.
func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s: %s (http %d, code %s)", e.Peer, e.Msg, e.Status, e.Code)
}

// Retryable reports whether the refusal is transient.
func (e *PeerError) Retryable() bool { return Retryable(e.Code) }

// Client dials one peer's internal endpoints. Connections are pooled and
// reused across calls (the fleet chats constantly; handshakes must not be
// per-request).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the peer at addr (host:port). timeout
// bounds each call end-to-end unless the caller's ctx is shorter.
func NewClient(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &Client{
		base: "http://" + addr,
		hc: &http.Client{
			Timeout: timeout,
			Transport: &hookTransport{base: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			}},
		},
	}
}

// hookTransport consults the "cluster.rpc" fault-injection point before
// every peer RPC, so chaos tests and the M3_CHAOS bench mode can inject
// deterministic connection resets and latency spikes below the retry layer
// — exactly where real transport faults land. Unarmed (production), the
// hook is one atomic load.
type hookTransport struct {
	base http.RoundTripper
}

func (t *hookTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := faultinject.RPCFault{
		Host:  req.URL.Host,
		Path:  req.URL.Path,
		Probe: req.URL.Path == HealthEndpoint,
	}
	faultinject.At("cluster.rpc", &f)
	if f.Delay > 0 {
		tm := time.NewTimer(f.Delay)
		select {
		case <-req.Context().Done():
			tm.Stop()
			return nil, req.Context().Err()
		case <-tm.C:
		}
	}
	if f.Err != nil {
		return nil, f.Err
	}
	return t.base.RoundTrip(req)
}

// post sends one JSON request and decodes the JSON answer into out (out may
// be nil). Non-2xx answers come back as *PeerError.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// Replicated mutations carry the internal marker so the receiving
	// replica applies them without re-broadcasting (no forwarding loops).
	req.Header.Set("X-M3-Internal", "1")
	return c.do(req, path, out)
}

// do executes one prepared request and decodes the JSON answer into out
// (out may be nil). Non-2xx answers come back as *PeerError.
func (c *Client) do(req *http.Request, path string, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(raw, &eb) != nil || eb.Code == "" {
			eb = ErrorBody{Error: string(raw), Code: CodeInternal}
		}
		return &PeerError{Peer: c.base, Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode %s from %s: %w", path, c.base, err)
	}
	return nil
}

// Health performs one lightweight health probe (GET): proof the peer's
// serving loop is answering, plus its model fingerprint and inflight count.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+HealthEndpoint, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-M3-Internal", "1")
	var resp HealthResponse
	if err := c.do(req, HealthEndpoint, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// remainingBudget converts the ctx deadline into the deadline_ns wire field:
// the caller's remaining budget as a duration, which survives clock skew
// between replicas (absolute timestamps would not).
func remainingBudget(ctx context.Context) int64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	rem := time.Until(d)
	if rem <= 0 {
		return 1 // expired: force the peer's early-shed path, not a zero "no deadline"
	}
	return int64(rem)
}

// Paths executes one shard on the peer. The request carries the caller's
// remaining deadline budget so the peer sheds work it cannot finish in time
// (each retry attempt re-propagates its own, shorter budget).
func (c *Client) Paths(ctx context.Context, req *PathsRequest) (*PathsResponse, error) {
	if ns := remainingBudget(ctx); ns > 0 {
		req.DeadlineNS = ns
	}
	var resp PathsResponse
	if err := c.post(ctx, PathsEndpoint, req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Outs) != len(req.Indices) {
		return nil, fmt.Errorf("cluster: peer %s returned %d outputs for %d paths",
			c.base, len(resp.Outs), len(req.Indices))
	}
	return &resp, nil
}

// CacheFetch asks the key's owner for a cached estimate. wait joins an
// in-flight computation at the owner instead of reporting a miss.
func (c *Client) CacheFetch(ctx context.Context, key core.EstimateKey, wait bool) (*core.Estimate, bool, error) {
	var resp FetchResponse
	if err := c.post(ctx, CacheFetchEndpoint, &KeyRequest{Key: key, Wait: wait, DeadlineNS: remainingBudget(ctx)}, &resp); err != nil {
		return nil, false, err
	}
	if !resp.Hit || resp.Estimate == nil {
		return nil, false, nil
	}
	est, err := resp.Estimate.Estimate()
	if err != nil {
		return nil, false, err
	}
	return est, true, nil
}

// CachePut offers a computed estimate to its hash owner.
func (c *Client) CachePut(ctx context.Context, key core.EstimateKey, est *core.Estimate) error {
	return c.post(ctx, CachePutEndpoint, &PutRequest{Key: key, Estimate: WireFromEstimate(est)}, nil)
}

// SyncWorkload replicates one registry mutation.
func (c *Client) SyncWorkload(ctx context.Context, req *SyncRequest) error {
	return c.post(ctx, WorkloadSyncEndpoint, req, nil)
}

// PullWorkloads fetches the peer's full registry (as original creation
// requests) for a replica joining the fleet.
func (c *Client) PullWorkloads(ctx context.Context) ([]json.RawMessage, error) {
	var resp SyncList
	if err := c.post(ctx, WorkloadSyncEndpoint, &SyncRequest{Op: "pull"}, &resp); err != nil {
		return nil, err
	}
	return resp.Workloads, nil
}

// Invalidate broadcasts a model swap to the peer.
func (c *Client) Invalidate(ctx context.Context, req *InvalidateRequest) error {
	return c.post(ctx, InvalidateEndpoint, req, nil)
}

// Announce sends a membership event ("joining"/"leaving") for addr.
func (c *Client) Announce(ctx context.Context, addr, event string) error {
	return c.post(ctx, MembershipEndpoint, &MembershipUpdate{Addr: addr, Event: event}, nil)
}

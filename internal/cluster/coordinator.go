package cluster

import (
	"context"
	"sync/atomic"

	"m3/internal/agg"
	"m3/internal/core"
	"m3/internal/pool"
)

// Shard is one contiguous slice [Lo, Hi) of a plan's distinct paths,
// assigned to a member.
type Shard struct {
	Member string
	Lo, Hi int
}

// Partition splits n paths into contiguous near-equal shards across the
// live members (self always included, down peers skipped). Contiguity
// matters: the gathered outputs land back in plan order by slice copy, so
// the assembled estimate is identical to the single-process one no matter
// how the fleet splits the work. Per-member liveness is a pair of atomic
// loads (Peer.Up reads breaker state, not the clock), so asking for every
// member on every scatter is free.
func (f *Fleet) Partition(n int) []Shard {
	members := make([]string, 0, len(f.members))
	for _, m := range f.members {
		if m == f.self {
			members = append(members, m)
			continue
		}
		if p := f.Peer(m); p != nil && p.Up() {
			members = append(members, m)
		}
	}
	nm := len(members)
	if nm > n {
		members, nm = members[:n], n
	}
	shards := make([]Shard, 0, nm)
	base, rem := n/nm, n%nm
	lo := 0
	for i, m := range members {
		size := base
		if i < rem {
			size++
		}
		shards = append(shards, Shard{Member: m, Lo: lo, Hi: lo + size})
		lo += size
	}
	return shards
}

// ScatterStats reports how one estimate's work spread across the fleet.
type ScatterStats struct {
	// Shards is the number of partitions (== live members at plan time).
	Shards int
	// RemoteShards counts shards a peer actually computed.
	RemoteShards int
	// FallbackShards counts shards whose peer failed (down, timeout, shed,
	// model mismatch) and were recomputed locally instead — the estimate
	// degrades to less parallelism, never to an error.
	FallbackShards int
	// FallbackPaths counts the paths inside those fallback shards.
	FallbackPaths int
}

// Scatter partitions distinct/mult across the live members, executes the
// remote shards over HTTP and the self shard (plus any fallbacks) via
// local, and gathers the outputs back in plan order. tmpl carries the
// request fields shared by every shard; Indices/Mults are filled per shard.
//
// Peer fan-out runs on the fleet's own small worker pool with first-error
// cancellation: a genuine local error (validation, cancelled ctx) aborts
// the remaining shards, while peer failures are contained inside their
// shard as local fallbacks and never fail the estimate.
func (f *Fleet) Scatter(ctx context.Context, tmpl *PathsRequest, distinct, mult []int,
	local func(ctx context.Context, distinct, mult []int) (*core.ShardResult, error),
) (*core.ShardResult, *ScatterStats, error) {

	shards := f.Partition(len(distinct))
	stats := &ScatterStats{Shards: len(shards)}
	out := &core.ShardResult{Outs: make([]agg.PathOutput, len(distinct))}
	var pathSimNs, predictNs, degraded atomic.Int64
	var pathSimWallNs, predictWallNs, overlapNs atomic.Int64
	var remote, fallback, fallbackPaths atomic.Int64

	// Shards run concurrently, so the CPU-time stats sum but the wall-clock
	// stats combine via max: the fleet-level stage wall is the slowest
	// shard's (a lower bound when shards skew, exact when they align).
	atomicMax := func(dst *atomic.Int64, v int64) {
		for {
			if cur := dst.Load(); v <= cur || dst.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	mergeStats := func(pathSim, predict, pathSimWall, predictWall, overlap int64, degradedPaths int) {
		pathSimNs.Add(pathSim)
		predictNs.Add(predict)
		atomicMax(&pathSimWallNs, pathSimWall)
		atomicMax(&predictWallNs, predictWall)
		atomicMax(&overlapNs, overlap)
		degraded.Add(int64(degradedPaths))
	}

	runLocal := func(ctx context.Context, sh Shard) error {
		sr, err := local(ctx, distinct[sh.Lo:sh.Hi], mult[sh.Lo:sh.Hi])
		if err != nil {
			return err
		}
		copy(out.Outs[sh.Lo:sh.Hi], sr.Outs)
		mergeStats(sr.PathSimNs, sr.PredictNs, sr.PathSimWallNs, sr.PredictWallNs, sr.OverlapNs, sr.DegradedPaths)
		return nil
	}

	err := f.rpc.Run(ctx, len(shards), func(ctx context.Context, i int) error {
		sh := shards[i]
		if sh.Member == f.self {
			return runLocal(ctx, sh)
		}
		p := f.Peer(sh.Member)
		req := *tmpl
		req.Indices = distinct[sh.Lo:sh.Hi]
		req.Mults = mult[sh.Lo:sh.Hi]
		// Peer.Call owns the resilience stack: per-attempt timeouts,
		// budget-gated retries on transient failures, and breaker
		// bookkeeping (transport trouble trips it; structured refusals —
		// shed, timeout, model mismatch — come from a replica healthy
		// enough to answer and do not).
		var resp *PathsResponse
		err := p.Call(ctx, func(ctx context.Context) error {
			r, err := p.Client.Paths(ctx, &req)
			if err == nil {
				resp = r
			}
			return err
		})
		if err != nil {
			// The peer is unreachable, shedding, timing out, or serving a
			// different model generation, and retries are exhausted (or the
			// breaker refused up front): compute the shard here instead.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fallback.Add(1)
			fallbackPaths.Add(int64(sh.Hi - sh.Lo))
			return runLocal(ctx, sh)
		}
		copy(out.Outs[sh.Lo:sh.Hi], resp.Outs)
		mergeStats(resp.PathSimNs, resp.PredictNs, resp.PathSimWallNs, resp.PredictWallNs, resp.OverlapNs, resp.DegradedPaths)
		remote.Add(1)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	out.PathSimNs = pathSimNs.Load()
	out.PredictNs = predictNs.Load()
	out.PathSimWallNs = pathSimWallNs.Load()
	out.PredictWallNs = predictWallNs.Load()
	out.OverlapNs = overlapNs.Load()
	out.DegradedPaths = int(degraded.Load())
	stats.RemoteShards = int(remote.Load())
	stats.FallbackShards = int(fallback.Load())
	stats.FallbackPaths = int(fallbackPaths.Load())
	return out, stats, nil
}

// Close stops the background prober and releases the fleet's peer fan-out
// pool. Safe to call more than once.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		if f.stop != nil {
			close(f.stop)
		}
		f.rpc.Close()
	})
}

// newRPCPool sizes the peer fan-out pool: one slot per member so a full
// scatter never queues behind itself, floor of two so a degenerate fleet
// still overlaps a fallback with the self shard.
func newRPCPool(members int) *pool.Pool {
	n := members
	if n < 2 {
		n = 2
	}
	return pool.New(n)
}

package cluster

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"m3/internal/faultinject"
)

// healthServer serves HealthEndpoint, answering 200 while healthy is true
// and 500 otherwise.
func healthServer(t *testing.T, healthy *atomic.Bool) string {
	t.Helper()
	return newPeerServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != HealthEndpoint {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			writeTestError(w, http.StatusInternalServerError, CodeInternal)
			return
		}
		json.NewEncoder(w).Encode(HealthResponse{Fingerprint: 42})
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProberReadmitsRecoveredPeer: a peer that died and came back is
// re-admitted by background probes alone — no request traffic pays for the
// discovery, and recovery happens even while the health check initially
// keeps failing.
func TestProberReadmitsRecoveredPeer(t *testing.T) {
	var healthy atomic.Bool
	addr := healthServer(t, &healthy)
	f, err := New("127.0.0.1:9001", []string{addr}, Options{
		Cooldown:      time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)

	p.MarkFailure()
	waitFor(t, "failed probes against the unhealthy peer", func() bool {
		return p.probeFailures.Load() >= 2
	})
	if p.Up() {
		t.Fatal("peer must stay down while probes fail")
	}

	healthy.Store(true)
	waitFor(t, "prober to re-admit the recovered peer", func() bool { return p.Up() })
	if p.Probes() < int64(DefaultProbeSuccesses) {
		t.Fatalf("Probes() = %d, want >= %d (consecutive successes close the breaker)",
			p.Probes(), DefaultProbeSuccesses)
	}
}

// TestProberReadmitsLostRejoin: a peer marked left whose rejoin
// announcement never arrives is still re-admitted once probes find it
// serving — a lost UDP... lost HTTP announce must not exile a healthy
// replica forever.
func TestProberReadmitsLostRejoin(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	addr := healthServer(t, &healthy)
	f, err := New("127.0.0.1:9001", []string{addr}, Options{
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)

	p.MarkLeft()
	if p.Up() {
		t.Fatal("left peer must be out of rotation")
	}
	waitFor(t, "prober to re-admit the left peer", func() bool { return p.Up() })
}

// TestProberFlapOnProbe: chaos that black-holes only the health endpoint
// keeps the peer out of rotation (the breaker needs probe proof, not hope),
// and clearing the fault lets the prober re-admit it.
func TestProberFlapOnProbe(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	addr := healthServer(t, &healthy)
	faultinject.Set("cluster.rpc", faultinject.Chaos(faultinject.ChaosConfig{FlapProbes: true}))
	t.Cleanup(faultinject.Clear)

	f, err := New("127.0.0.1:9001", []string{addr}, Options{
		Cooldown:      time.Millisecond,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)
	p.MarkFailure()
	waitFor(t, "probes to fail through the chaos hook", func() bool {
		return p.probeFailures.Load() >= 3
	})
	if p.Up() {
		t.Fatal("peer must stay down while its probes are black-holed")
	}
	faultinject.Clear()
	waitFor(t, "prober to re-admit after chaos clears", func() bool { return p.Up() })
}

// TestProberSteadyStateSilent: healthy peers are never probed — the
// resilience layer must cost nothing when nothing is wrong.
func TestProberSteadyStateSilent(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	addr := healthServer(t, &healthy)
	f, err := New("127.0.0.1:9001", []string{addr}, Options{
		ProbeInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	time.Sleep(60 * time.Millisecond)
	if n := f.Peer(addr).Probes(); n != 0 {
		t.Fatalf("healthy peer was probed %d times; steady state must be silent", n)
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newPeerServer runs a real loopback HTTP server for peer-call tests and
// returns its host:port.
func newPeerServer(t *testing.T, h http.HandlerFunc) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func writeTestError(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorBody{Error: "test refusal", Code: code})
}

// announce is the simplest real client call to drive Peer.Call with.
func announce(p *Peer) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		return p.Client.Announce(ctx, "127.0.0.1:9001", "joining")
	}
}

// TestCallRetriesTransientFailure: a peer shedding under load answers the
// retryable "shed" code; Call must retry past it and succeed, without
// tripping the breaker.
func TestCallRetriesTransientFailure(t *testing.T) {
	var calls atomic.Int64
	addr := newPeerServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeTestError(w, http.StatusTooManyRequests, CodeShed)
			return
		}
		w.Write([]byte("{}"))
	})
	f, err := New("127.0.0.1:9001", []string{addr},
		Options{MaxRetries: 3, ProbeInterval: -1, PeerTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)
	if err := p.Call(context.Background(), announce(p)); err != nil {
		t.Fatalf("Call after two sheds: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("peer saw %d calls, want 3 (two sheds + success)", got)
	}
	if got := p.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
	if !p.Up() {
		t.Fatal("structured sheds must not trip the breaker")
	}
}

// TestCallTerminalRefusalNoRetry: a non-retryable code returns immediately
// — one attempt, breaker untouched.
func TestCallTerminalRefusalNoRetry(t *testing.T) {
	var calls atomic.Int64
	addr := newPeerServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeTestError(w, http.StatusBadRequest, CodeValidation)
	})
	f, err := New("127.0.0.1:9001", []string{addr}, Options{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)
	err = p.Call(context.Background(), announce(p))
	pe, ok := err.(*PeerError)
	if !ok || pe.Code != CodeValidation {
		t.Fatalf("Call = %v, want *PeerError with code validation", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("peer saw %d calls, want 1 (terminal refusals never retry)", got)
	}
	if !p.Up() {
		t.Fatal("a refusal is proof of life; breaker must stay closed")
	}
}

// TestCallTransportFailureOpensBreaker: a dead peer exhausts the retries
// and opens the breaker; the next Call is refused without network traffic.
func TestCallTransportFailureOpensBreaker(t *testing.T) {
	// Grab a port, then close it: connection refused, instantly.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	f, err := New("127.0.0.1:9001", []string{addr},
		Options{MaxRetries: 2, ProbeInterval: -1, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)
	if err := p.Call(context.Background(), announce(p)); err == nil {
		t.Fatal("Call against a closed port should fail")
	}
	if p.Up() {
		t.Fatal("transport failure must open the breaker")
	}
	if got := p.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
	if err := p.Call(context.Background(), announce(p)); err != ErrPeerDown {
		t.Fatalf("Call with open breaker = %v, want ErrPeerDown", err)
	}
}

// TestRetryBudgetCapsAmplification is the retry-storm gate: under sustained
// full failure the token bucket must cap total peer-call amplification at
// <= 2x, while an unlimited budget would multiply every request by the full
// retry count.
func TestRetryBudgetCapsAmplification(t *testing.T) {
	const requests = 40
	run := func(budget int) int64 {
		var calls atomic.Int64
		addr := newPeerServer(t, func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			writeTestError(w, http.StatusTooManyRequests, CodeShed)
		})
		f, err := New("127.0.0.1:9001", []string{addr},
			Options{MaxRetries: 3, RetryBudget: budget, ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		p := f.Peer(addr)
		for i := 0; i < requests; i++ {
			if err := p.Call(context.Background(), announce(p)); err == nil {
				t.Fatal("Call should fail against an always-shedding peer")
			}
		}
		return calls.Load()
	}

	budgeted := run(8)
	if budgeted > 2*requests {
		t.Errorf("budgeted: %d requests amplified to %d peer calls (> 2x)", requests, budgeted)
	}
	if budgeted < requests {
		t.Errorf("budgeted: %d peer calls for %d requests; first attempts must never be throttled", budgeted, requests)
	}
	unlimited := run(-1)
	if want := int64(4 * requests); unlimited != want {
		t.Errorf("unlimited budget: %d peer calls, want %d (every request retried in full)", unlimited, want)
	}
	if budgeted >= unlimited {
		t.Errorf("budget had no effect: %d budgeted vs %d unlimited", budgeted, unlimited)
	}
}

// TestCallCanceledCallerJudgesNothing: a caller whose own context dies
// mid-call must not trip the breaker — cancellation is not evidence about
// the peer.
func TestCallCanceledCallerJudgesNothing(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	addr := newPeerServer(t, func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("{}"))
	})
	defer once.Do(func() { close(release) })
	f, err := New("127.0.0.1:9001", []string{addr}, Options{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Call(ctx, announce(p)); err == nil {
		t.Fatal("Call should fail when the caller's deadline expires")
	}
	once.Do(func() { close(release) })
	if !p.Up() {
		t.Fatal("caller cancellation must not open the breaker")
	}
}

// TestBreakerHalfOpenSingleProbe: on cooldown expiry, exactly one of many
// concurrent callers is admitted as the probe; everyone else keeps
// skipping.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	f, err := New("127.0.0.1:9001", []string{"127.0.0.1:9002"},
		Options{Cooldown: 2 * time.Millisecond, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer("127.0.0.1:9002")
	p.MarkFailure()
	time.Sleep(5 * time.Millisecond)

	var admitted, probes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ok, probe := p.Acquire()
			if ok {
				admitted.Add(1)
			}
			if probe {
				probes.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if admitted.Load() != 1 || probes.Load() != 1 {
		t.Fatalf("admitted %d callers (%d probes), want exactly 1 probe",
			admitted.Load(), probes.Load())
	}
	if p.BreakerState() != "half-open" {
		t.Fatalf("state %q, want half-open while the probe is out", p.BreakerState())
	}
}

// TestBreakerConcurrencyFlapping hammers one peer's breaker from all sides
// under -race: concurrent MarkFailure/MarkSuccess flapping, Acquire/finish
// traffic, and Status reads. Invariant: at most one probe in flight, ever.
func TestBreakerConcurrencyFlapping(t *testing.T) {
	f, err := New("127.0.0.1:9001", []string{"127.0.0.1:9002"},
		Options{Cooldown: time.Microsecond, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer("127.0.0.1:9002")

	var inProbe atomic.Int32
	var violations atomic.Int64
	var wg sync.WaitGroup
	const iters = 3000

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ok, probe := p.Acquire()
				if !ok {
					continue
				}
				if probe {
					if inProbe.Add(1) != 1 {
						violations.Add(1)
					}
					runtime.Gosched()
					inProbe.Add(-1)
				}
				p.finish(probe, (i+g)%3 != 0)
			}
		}(g)
	}
	wg.Add(1)
	go func() { // the flapping peer: health flips under everyone's feet
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				p.MarkFailure()
			} else {
				p.MarkSuccess()
			}
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Add(1)
	go func() { // observers never block the state machine
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = p.Up()
			_ = p.BreakerState()
			_ = f.Status()
		}
	}()
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d concurrent probes observed; the probe slot must be exclusive", n)
	}
	// The machine must still function after the storm: force a clean state.
	p.MarkSuccess()
	if !p.Up() {
		t.Fatal("breaker wedged after concurrent flapping")
	}
}

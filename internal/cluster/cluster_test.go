package cluster

import (
	"strings"
	"testing"
	"time"
)

func testFleet(t *testing.T, self string, peers ...string) *Fleet {
	t.Helper()
	f, err := New(self, peers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestOwnerAgreement: every member must independently compute the same
// owner for the same key — the property that lets the fleet place cache
// entries with zero coordination.
func TestOwnerAgreement(t *testing.T) {
	addrs := []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003", "127.0.0.1:9004"}
	fleets := make([]*Fleet, len(addrs))
	for i, self := range addrs {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		fleets[i] = testFleet(t, self, peers...)
	}
	for key := uint64(0); key < 1000; key++ {
		want := fleets[0].OwnerOf(key)
		for _, f := range fleets[1:] {
			if got := f.OwnerOf(key); got != want {
				t.Fatalf("key %d: %s says owner %s, %s says %s",
					key, fleets[0].Self(), want, f.Self(), got)
			}
		}
	}
}

// TestOwnerDistribution: rendezvous hashing should spread keys roughly
// evenly — no member may own a grossly disproportionate share.
func TestOwnerDistribution(t *testing.T) {
	f := testFleet(t, "127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003", "127.0.0.1:9004")
	counts := make(map[string]int)
	const n = 4000
	for key := uint64(0); key < n; key++ {
		counts[f.OwnerOf(key*2654435761)]++
	}
	for _, m := range f.Members() {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.35 {
			t.Errorf("member %s owns %.1f%% of keys (want ~25%%)", m, 100*share)
		}
	}
}

// TestOwnerStability: removing one member must only move the keys that
// member owned (the consistent-hashing property).
func TestOwnerStability(t *testing.T) {
	four := testFleet(t, "127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003", "127.0.0.1:9004")
	three := testFleet(t, "127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003")
	for key := uint64(0); key < 2000; key++ {
		before := four.OwnerOf(key)
		after := three.OwnerOf(key)
		if before != "127.0.0.1:9004" && before != after {
			t.Fatalf("key %d moved %s -> %s though its owner did not leave", key, before, after)
		}
	}
}

func TestPartition(t *testing.T) {
	f := testFleet(t, "127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003")
	shards := f.Partition(10)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	lo, total := 0, 0
	foundSelf := false
	for _, sh := range shards {
		if sh.Lo != lo {
			t.Fatalf("shard %v not contiguous (want lo %d)", sh, lo)
		}
		if sh.Hi-sh.Lo < 3 || sh.Hi-sh.Lo > 4 {
			t.Fatalf("shard %v not near-equal", sh)
		}
		if sh.Member == f.Self() {
			foundSelf = true
		}
		total += sh.Hi - sh.Lo
		lo = sh.Hi
	}
	if total != 10 || !foundSelf {
		t.Fatalf("partition covered %d paths (self included: %v)", total, foundSelf)
	}

	// Down peers are excluded; their share redistributes.
	f.Peer("127.0.0.1:9002").MarkFailure()
	shards = f.Partition(10)
	if len(shards) != 2 {
		t.Fatalf("with one peer down got %d shards, want 2", len(shards))
	}
	// More members than paths: shards shrink to one path each.
	shards = f.Partition(1)
	if len(shards) != 1 || shards[0].Hi != 1 {
		t.Fatalf("partition(1) = %v", shards)
	}
}

func TestPeerHealth(t *testing.T) {
	// ProbeInterval -1: drive the breaker by hand, no background prober.
	f, err := New("127.0.0.1:9001", []string{"127.0.0.1:9002"},
		Options{Cooldown: 20 * time.Millisecond, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer("127.0.0.1:9002")
	if !p.Up() {
		t.Fatal("fresh peer should be up")
	}
	p.MarkFailure()
	if p.Up() {
		t.Fatal("failed peer should be down during cooldown")
	}
	if ok, _ := p.Acquire(); ok {
		t.Fatal("open breaker must refuse calls during cooldown")
	}
	time.Sleep(25 * time.Millisecond)
	// Cooldown expired: the peer is NOT blindly back up — it stays out of
	// regular rotation until probes prove it. Exactly one caller gets the
	// probe slot.
	if p.Up() {
		t.Fatal("cooldown expiry must not close the breaker without a probe")
	}
	ok, probe := p.Acquire()
	if !ok || !probe {
		t.Fatalf("cooldown expired: Acquire() = (%v, %v), want one probe admitted", ok, probe)
	}
	if ok, _ := p.Acquire(); ok {
		t.Fatal("second caller must be refused while the probe is in flight")
	}
	// DefaultProbeSuccesses consecutive successes close the breaker.
	p.finish(true, true)
	if p.Up() {
		t.Fatal("one probe success must not close the breaker (target is 2)")
	}
	ok, probe = p.Acquire()
	if !ok || !probe {
		t.Fatalf("half-open: Acquire() = (%v, %v), want the next probe", ok, probe)
	}
	p.finish(true, true)
	if !p.Up() {
		t.Fatal("two consecutive probe successes should close the breaker")
	}

	p.MarkLeft()
	time.Sleep(25 * time.Millisecond)
	if p.Up() {
		t.Fatal("left peer must stay down past any cooldown")
	}
	if ok, _ := p.Acquire(); ok {
		t.Fatal("left peer must refuse regular calls")
	}
	p.MarkJoined()
	if !p.Up() {
		t.Fatal("rejoined peer should be up")
	}
}

// TestBreakerProbeFailureReopens: any probe failure re-arms the cooldown
// and zeroes the success streak — a flapping peer cannot close its breaker
// by alternating good and bad probes.
func TestBreakerProbeFailureReopens(t *testing.T) {
	f, err := New("127.0.0.1:9001", []string{"127.0.0.1:9002"},
		Options{Cooldown: time.Millisecond, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Peer("127.0.0.1:9002")
	for round := 0; round < 5; round++ {
		p.MarkFailure()
		time.Sleep(2 * time.Millisecond)
		ok, probe := p.Acquire()
		if !ok || !probe {
			t.Fatalf("round %d: Acquire() = (%v, %v), want probe", round, ok, probe)
		}
		p.finish(true, true) // one success (streak 1 of 2)...
		time.Sleep(2 * time.Millisecond)
		ok, probe = p.Acquire()
		if !ok || !probe {
			t.Fatalf("round %d: second Acquire() = (%v, %v), want probe", round, ok, probe)
		}
		p.finish(true, false) // ...then a failure: streak must reset
		if p.Up() {
			t.Fatalf("round %d: flapping peer closed its breaker", round)
		}
	}
}

func TestValidateMembers(t *testing.T) {
	cases := []struct {
		self    string
		peers   []string
		wantErr string
	}{
		{"127.0.0.1:9001", []string{"127.0.0.1:9002"}, ""},
		{"127.0.0.1:9001", nil, ""},
		{":9001", nil, "no host"},
		{"127.0.0.1", nil, "not host:port"},
		{"127.0.0.1:0", nil, "bad port"},
		{"127.0.0.1:notaport", nil, "bad port"},
		{"127.0.0.1:9001", []string{"127.0.0.1:9001"}, "own address"},
		{"127.0.0.1:9001", []string{"127.0.0.1:9002", "127.0.0.1:9002"}, "listed twice"},
		{"127.0.0.1:9001", []string{"broken"}, "not host:port"},
		// IPv6: bracketed host:port forms are valid members...
		{"[::1]:8053", []string{"[::1]:8054", "[fe80::1%eth0]:9001"}, ""},
		{"127.0.0.1:9001", []string{"[2001:db8::1]:443"}, ""},
		// ...but bare IPv6 (ambiguous colons) and empty brackets are not.
		{"::1", nil, "not host:port"},
		{"[::1]", nil, "not host:port"},
		{"[]:8053", nil, "no host"},
		{"[::1]:0", nil, "bad port"},
		{"[::1]:8053", []string{"[::1]:8053"}, "own address"},
	}
	for _, tc := range cases {
		err := ValidateMembers(tc.self, tc.peers)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateMembers(%q, %q) = %v, want ok", tc.self, tc.peers, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ValidateMembers(%q, %q) = %v, want error containing %q", tc.self, tc.peers, err, tc.wantErr)
		}
	}
}

func TestRetryableCodes(t *testing.T) {
	for _, code := range []string{CodeShed, CodeTimeout, CodeModelMismatch} {
		if !Retryable(code) {
			t.Errorf("code %s should be retryable", code)
		}
	}
	for _, code := range []string{CodeValidation, CodeNotFound, CodeConflict, CodeInternal, CodeUnprocessable, CodeCanceled} {
		if Retryable(code) {
			t.Errorf("code %s should be terminal", code)
		}
	}
}

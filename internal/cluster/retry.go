package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrPeerDown is Peer.Call's answer when the breaker refuses the call
// outright (open and cooling down, probe slot taken, or the peer left the
// fleet). No network traffic happened; callers treat it like any other peer
// failure (skip, or fall back locally).
var ErrPeerDown = errors.New("cluster: peer down (breaker open)")

// retryPolicy bounds one logical peer call: up to maxRetries re-attempts,
// each under attemptTimeout, sleeping a full-jittered exponential backoff
// in between.
type retryPolicy struct {
	maxRetries     int
	baseBackoff    time.Duration
	maxBackoff     time.Duration
	attemptTimeout time.Duration
}

// backoff returns the sleep before re-attempt #attempt: uniform in
// [0, min(base<<attempt, max)). Full jitter decorrelates the retries of
// concurrent callers — after a fleet-wide blip the peer sees a trickle, not
// a synchronized second wave.
func (pol retryPolicy) backoff(attempt int) time.Duration {
	d := pol.baseBackoff << uint(attempt)
	if d <= 0 || d > pol.maxBackoff {
		d = pol.maxBackoff
	}
	return time.Duration(rand.Int63n(int64(d)))
}

// retryBudget is a per-peer token bucket in the gRPC retry-throttling
// style: every failed attempt drains one token, every success refills
// successCredit, and retries are allowed only while the bucket is above
// half capacity. Under sustained failure the bucket empties after
// ~capacity failures and stays empty, so total call amplification across
// all callers converges to 1x (first attempts always pass — the budget
// gates retries, never the call itself).
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
}

// successCredit is the refill per successful attempt. At 0.5, sustained
// retrying needs two successes per failure to keep the bucket above half —
// occasional blips retry freely, systemic failure cannot.
const successCredit = 0.5

// newRetryBudget sizes a budget: capacity 0 means DefaultRetryBudget,
// negative means unlimited (nil — all methods tolerate a nil receiver).
func newRetryBudget(capacity int) *retryBudget {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = DefaultRetryBudget
	}
	c := float64(capacity)
	return &retryBudget{tokens: c, cap: c}
}

func (b *retryBudget) onSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.tokens += successCredit; b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

func (b *retryBudget) onFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.tokens--; b.tokens < 0 {
		b.tokens = 0
	}
	b.mu.Unlock()
}

func (b *retryBudget) allowRetry() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens > b.cap/2
	b.mu.Unlock()
	return ok
}

// tokensLeft snapshots the bucket for Status (-1 = unlimited).
func (b *retryBudget) tokensLeft() float64 {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	t := b.tokens
	b.mu.Unlock()
	return t
}

// Call runs fn against the peer under the full resilience stack: breaker
// admission (half-open probing included), a per-attempt timeout, bounded
// budget-gated retries with full-jitter backoff, and breaker bookkeeping on
// the outcome. fn must honor its ctx (every Client method does).
//
// Error classification:
//   - nil: success; refills the budget, closes the breaker.
//   - *PeerError: the peer answered — transport is healthy, the breaker
//     never trips. Retried only while Retryable(code), attempts remain, and
//     the budget allows.
//   - anything else: transport trouble (reset, timeout, refused). Retried
//     under the same bounds; the final failure opens the breaker.
//
// If the caller's own ctx dies mid-call, Call returns immediately without
// judging the peer (a canceled caller is not evidence of peer health).
// Probe calls never retry: one attempt is the whole point of a probe.
func (p *Peer) Call(ctx context.Context, fn func(ctx context.Context) error) error {
	ok, probe := p.Acquire()
	if !ok {
		return ErrPeerDown
	}
	pol := p.policy
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if pol.attemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, pol.attemptTimeout)
		}
		err := fn(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			p.budget.onSuccess()
			p.finish(probe, true)
			return nil
		}
		if ctx.Err() != nil {
			p.release(probe)
			return err
		}
		p.budget.onFailure()
		pe, structured := err.(*PeerError)
		retryable := !structured || pe.Retryable()
		if retryable && !probe && attempt < pol.maxRetries && p.budget.allowRetry() {
			p.retries.Add(1)
			if !structured {
				p.failures.Add(1)
			}
			if !sleepCtx(ctx, pol.backoff(attempt)) {
				p.release(probe)
				return err
			}
			continue
		}
		if structured {
			// A refusal proves the transport: the peer is alive and
			// answering. Tripping the breaker would also cut it out of the
			// cache tier for nothing — and for a probe, it is proof of life.
			p.finish(probe, true)
			return err
		}
		p.finish(probe, false)
		return err
	}
}

// sleepCtx sleeps d or until ctx dies; reports whether the full sleep
// happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Package cluster turns N m3serve replicas into one estimation fleet. It
// provides the four mechanisms the serving layer composes:
//
//   - Membership and placement: a static member set (self + peers from the
//     -peers flag) with rendezvous (highest-random-weight) hashing, so every
//     replica independently agrees which member owns a workload name or an
//     estimate cache key without any coordination traffic.
//
//   - Health: per-peer circuit breaking with a half-open state machine. A
//     failed call opens the breaker for a cooldown; on expiry exactly one
//     probe request is admitted while the rest keep skipping, and the
//     breaker closes only after consecutive probe successes — so a flapping
//     peer cannot drag the fleet through a thundering-herd reopen. An
//     active background prober (Options.ProbeInterval) health-checks
//     non-healthy peers so recovery is discovered in about one RTT instead
//     of by sacrificing a user request, and re-admits peers whose rejoin
//     announcement was lost.
//
//   - Resilient calls: every peer RPC goes through Peer.Call — bounded
//     retries with exponential backoff and full jitter, gated by a per-peer
//     token-bucket retry budget so a fleet-wide failure cannot snowball
//     into a retry storm. Only transport errors and structured refusals
//     with Retryable codes retry; terminal refusals return immediately.
//
//   - Scatter-gather: partitioning one estimate's sampled paths into
//     contiguous shards across the live members, fanning the remote shards
//     out over plain JSON/HTTP on a shared worker pool with first-error
//     cancellation, and falling back to local computation for any shard
//     whose peer is down, times out, or answers with a retryable error —
//     the estimate degrades to "computed with less parallelism", never to
//     "failed".
//
// The wire protocol (wire.go) is deliberately plain JSON over HTTP: Go's
// float64 JSON encoding round-trips exactly, so a scatter-gathered estimate
// is byte-identical to the single-process one.
package cluster

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/pool"
)

// Defaults for Options.
const (
	// DefaultPeerTimeout bounds one peer call attempt (shard execution is
	// the slow case; cache fetches finish in milliseconds).
	DefaultPeerTimeout = 30 * time.Second
	// DefaultCooldown is how long an opened breaker rejects requests before
	// it admits a probe.
	DefaultCooldown = 2 * time.Second
	// DefaultMaxRetries is the per-call retry bound (attempts = retries+1).
	DefaultMaxRetries = 2
	// DefaultRetryBudget is the per-peer retry token-bucket capacity.
	DefaultRetryBudget = 10
	// DefaultProbeInterval is the active health prober's cadence.
	DefaultProbeInterval = 1 * time.Second
	// DefaultProbeSuccesses is how many consecutive probe successes close
	// an open breaker.
	DefaultProbeSuccesses = 2
	// DefaultBaseBackoff/DefaultMaxBackoff bound the retry backoff window;
	// the actual sleep is full-jittered in [0, min(base<<attempt, max)).
	DefaultBaseBackoff = 25 * time.Millisecond
	DefaultMaxBackoff  = 500 * time.Millisecond
	// probeTimeout bounds one health probe (probes are cheap by contract;
	// a slow answer is as bad as none).
	probeTimeout = 2 * time.Second
)

// Options configures a Fleet.
type Options struct {
	// PeerTimeout bounds each peer HTTP call attempt (0 = DefaultPeerTimeout).
	PeerTimeout time.Duration
	// Cooldown is how long an opened breaker rejects traffic before
	// admitting a probe (0 = DefaultCooldown).
	Cooldown time.Duration
	// MaxRetries bounds retries per peer call (0 = DefaultMaxRetries,
	// negative = no retries).
	MaxRetries int
	// RetryBudget is the per-peer retry token-bucket capacity
	// (0 = DefaultRetryBudget, negative = unlimited). Each failed attempt
	// drains one token, each success refills half a token, and retries are
	// allowed only while the bucket is above half — under sustained failure
	// the budget caps total call amplification near 1x.
	RetryBudget int
	// ProbeInterval is the active health prober's cadence
	// (0 = DefaultProbeInterval, negative = prober disabled).
	ProbeInterval time.Duration
	// ProbeSuccesses is how many consecutive probe successes close an open
	// breaker (0 = DefaultProbeSuccesses).
	ProbeSuccesses int
}

// Breaker states. Closed = healthy, traffic flows. Open = failing, all
// traffic skips until the cooldown expires. Half-open = one probe at a time
// is admitted; consecutive successes close, any failure reopens.
const (
	stateClosed int32 = iota
	stateOpen
	stateHalfOpen
)

// breakerStateNames maps states to the strings Status reports.
var breakerStateNames = [...]string{"closed", "open", "half-open"}

// Peer is one remote replica: its address, client, and health state.
type Peer struct {
	Addr   string
	Client *Client

	cooldown    time.Duration
	probeTarget int32
	policy      retryPolicy
	budget      *retryBudget

	// state is the breaker state machine (stateClosed/Open/HalfOpen).
	state atomic.Int32
	// downUntil is the unix-nano instant an open breaker starts admitting
	// probes.
	downUntil atomic.Int64
	// probeInFlight serializes probes: whoever CASes it owns the one probe
	// slot until they report an outcome.
	probeInFlight atomic.Bool
	// probeStreak counts consecutive probe successes toward probeTarget.
	probeStreak atomic.Int32
	// left marks a peer that announced drain-aware shutdown; it receives no
	// traffic (but is still probed — a lost rejoin announcement must not
	// exile it forever).
	left atomic.Bool

	failures      atomic.Int64
	retries       atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64
}

// Up reports whether the peer should receive regular traffic right now:
// breaker closed and not drained. Pure state load — no clock read — so
// Partition can ask for every member on every scatter for free.
func (p *Peer) Up() bool {
	return !p.left.Load() && p.state.Load() == stateClosed
}

// Acquire asks the breaker for permission to call the peer. ok reports
// whether the call may proceed; probe marks the caller as the single
// half-open probe (it MUST report the outcome via finish or release, or the
// probe slot leaks). In the open state, cooldown expiry admits exactly one
// probe; everyone else keeps skipping.
func (p *Peer) Acquire() (ok, probe bool) {
	if p.left.Load() {
		return false, false
	}
	switch p.state.Load() {
	case stateClosed:
		return true, false
	case stateOpen:
		if time.Now().UnixNano() < p.downUntil.Load() {
			return false, false
		}
		if p.probeInFlight.CompareAndSwap(false, true) {
			p.state.Store(stateHalfOpen)
			return true, true
		}
		return false, false
	default: // stateHalfOpen: the next probe slot, one at a time
		if p.probeInFlight.CompareAndSwap(false, true) {
			return true, true
		}
		return false, false
	}
}

// finish reports a call outcome to the breaker. A probe success counts
// toward the consecutive-success streak that closes the breaker (and
// re-admits a peer whose rejoin announcement was lost); any failure reopens
// with a fresh cooldown.
func (p *Peer) finish(probe, success bool) {
	if !success {
		p.MarkFailure()
		if probe {
			p.probeInFlight.Store(false)
		}
		return
	}
	if !probe {
		p.MarkSuccess()
		return
	}
	p.left.Store(false)
	if p.probeStreak.Add(1) >= p.probeTarget {
		p.MarkSuccess()
	}
	p.probeInFlight.Store(false)
}

// release returns a probe slot without an outcome (the caller's own context
// died mid-call — no evidence about the peer either way).
func (p *Peer) release(probe bool) {
	if probe {
		p.probeInFlight.Store(false)
	}
}

// MarkFailure opens the breaker: the peer is skipped until the cooldown
// expires, then probed — one dead replica costs the fleet one probe per
// cooldown window instead of one timeout per request.
func (p *Peer) MarkFailure() {
	p.failures.Add(1)
	p.probeStreak.Store(0)
	p.downUntil.Store(time.Now().Add(p.cooldown).UnixNano())
	p.state.Store(stateOpen)
}

// MarkSuccess closes the breaker immediately (direct evidence the peer is
// serving).
func (p *Peer) MarkSuccess() {
	p.probeStreak.Store(0)
	p.downUntil.Store(0)
	p.state.Store(stateClosed)
}

// MarkLeft takes the peer out of rotation until it rejoins (drain-aware
// shutdown deregistration). The prober keeps watching it: if the rejoin
// announcement is lost, a successful probe re-admits it.
func (p *Peer) MarkLeft() { p.left.Store(true) }

// Left reports whether the peer announced a drain-aware departure and has
// not yet rejoined (by announcement or by probe).
func (p *Peer) Left() bool { return p.left.Load() }

// MarkJoined returns the peer to rotation immediately.
func (p *Peer) MarkJoined() {
	p.left.Store(false)
	p.MarkSuccess()
}

// BreakerState names the peer's breaker state ("closed", "open",
// "half-open") for Status and /metrics.
func (p *Peer) BreakerState() string { return breakerStateNames[p.state.Load()] }

// Failures returns the cumulative failed transport-attempt count.
func (p *Peer) Failures() int64 { return p.failures.Load() }

// Retries returns the cumulative retry-attempt count.
func (p *Peer) Retries() int64 { return p.retries.Load() }

// Probes returns the cumulative health-probe count (active prober plus
// request-path half-open probes are both breaker probes, but only the
// prober's health checks are counted here).
func (p *Peer) Probes() int64 { return p.probes.Load() }

// Fleet is one replica's view of the member set. Construct with New; the
// member list is fixed for the process lifetime (static -peers flag), only
// health states change.
type Fleet struct {
	self    string
	peers   []*Peer  // sorted by address; excludes self
	members []string // sorted member addresses, including self

	peerTimeout   time.Duration
	probeInterval time.Duration
	// rpc is the fleet's own small worker pool for peer fan-out — separate
	// from the CPU-bound path-simulation pool so blocking HTTP calls never
	// occupy simulation workers (and a scatter shard falling back to local
	// compute can still get pool workers underneath it).
	rpc *pool.Pool

	// stop ends the background prober; closeOnce guards double Close.
	stop      chan struct{}
	closeOnce sync.Once
}

// New builds a fleet view for self plus its peers. Addresses must pass
// ValidateMembers (the caller's flag layer reports those errors with
// context); New re-checks and fails loudly on violations.
func New(self string, peerAddrs []string, opts Options) (*Fleet, error) {
	if err := ValidateMembers(self, peerAddrs); err != nil {
		return nil, err
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = DefaultPeerTimeout
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	switch {
	case opts.MaxRetries == 0:
		opts.MaxRetries = DefaultMaxRetries
	case opts.MaxRetries < 0:
		opts.MaxRetries = 0
	}
	if opts.ProbeSuccesses <= 0 {
		opts.ProbeSuccesses = DefaultProbeSuccesses
	}
	policy := retryPolicy{
		maxRetries:     opts.MaxRetries,
		baseBackoff:    DefaultBaseBackoff,
		maxBackoff:     DefaultMaxBackoff,
		attemptTimeout: opts.PeerTimeout,
	}
	f := &Fleet{self: self, peerTimeout: opts.PeerTimeout}
	for _, addr := range peerAddrs {
		f.peers = append(f.peers, &Peer{
			Addr:        addr,
			Client:      NewClient(addr, opts.PeerTimeout),
			cooldown:    opts.Cooldown,
			probeTarget: int32(opts.ProbeSuccesses),
			policy:      policy,
			budget:      newRetryBudget(opts.RetryBudget),
		})
	}
	sort.Slice(f.peers, func(i, j int) bool { return f.peers[i].Addr < f.peers[j].Addr })
	f.members = append(f.members, self)
	for _, p := range f.peers {
		f.members = append(f.members, p.Addr)
	}
	sort.Strings(f.members)
	f.rpc = newRPCPool(len(f.members))
	if opts.ProbeInterval >= 0 && len(f.peers) > 0 {
		f.probeInterval = opts.ProbeInterval
		if f.probeInterval == 0 {
			f.probeInterval = DefaultProbeInterval
		}
		f.stop = make(chan struct{})
		go f.prober()
	}
	return f, nil
}

// Self returns this replica's advertised address.
func (f *Fleet) Self() string { return f.self }

// Members returns all member addresses (including self), sorted.
func (f *Fleet) Members() []string { return f.members }

// Peers returns the remote peers, sorted by address.
func (f *Fleet) Peers() []*Peer { return f.peers }

// Peer returns the peer with the given address, or nil (self or unknown).
func (f *Fleet) Peer(addr string) *Peer {
	i := sort.Search(len(f.peers), func(i int) bool { return f.peers[i].Addr >= addr })
	if i < len(f.peers) && f.peers[i].Addr == addr {
		return f.peers[i]
	}
	return nil
}

// PeerTimeout returns the per-call deadline peers are dialed with.
func (f *Fleet) PeerTimeout() time.Duration { return f.peerTimeout }

// --- rendezvous hashing -----------------------------------------------------

// FNV-1a parameters, shared by every hash in the placement layer.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1aString folds s into a running FNV-1a hash h (seed with fnvOffset64).
func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fnv1aUint64 folds key's eight little-endian bytes into h.
func fnv1aUint64(h, key uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= key & 0xff
		h *= fnvPrime64
		key >>= 8
	}
	return h
}

// rendezvousScore scores (member, key) with FNV-1a over the member address
// bytes followed by the key bytes. Highest score owns the key; every replica
// computes the same winner with zero coordination, and removing a member
// only moves the keys that member owned (the consistent-hashing property,
// without a ring or virtual nodes to maintain).
func rendezvousScore(member string, key uint64) uint64 {
	return fnv1aUint64(fnv1aString(fnvOffset64, member), key)
}

// OwnerOf returns the member that owns the 64-bit key digest, considering
// every configured member regardless of health (ownership must be stable
// while a peer bounces; callers fall back when the owner is down).
func (f *Fleet) OwnerOf(key uint64) string {
	best := f.members[0]
	var bestScore uint64
	for i, m := range f.members {
		s := rendezvousScore(m, key)
		if i == 0 || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// OwnerOfName returns the owner of a workload name (hashing the name bytes
// first). The registry is fully replicated, so name ownership is placement
// metadata — which replica "homes" a workload — not a routing requirement.
func (f *Fleet) OwnerOfName(name string) string {
	return f.OwnerOf(fnv1aString(fnvOffset64, name))
}

// --- address validation -----------------------------------------------------

// ValidateAddr rejects addresses that cannot name a peer: the form must be
// host:port with a non-empty host (peers must be dialable from elsewhere,
// so ":8053" is not enough) and a numeric port in [1, 65535]. IPv6 hosts
// take the usual bracketed form ("[::1]:8053").
func ValidateAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("cluster: address %q is not host:port: %v", addr, err)
	}
	if host == "" {
		return fmt.Errorf("cluster: address %q has no host; peers must be dialable (use 127.0.0.1:%s, not :%s)", addr, port, port)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n < 1 || n > 65535 {
		return fmt.Errorf("cluster: address %q has bad port %q (want 1-65535)", addr, port)
	}
	return nil
}

// ValidateMembers checks a full member configuration up front: self and
// every peer must be well-formed, self must not appear in the peer list
// (a replica scattering to itself over HTTP would deadlock its own
// admission), and no peer may be listed twice (double-weighted ownership
// and duplicate replication).
func ValidateMembers(self string, peers []string) error {
	if err := ValidateAddr(self); err != nil {
		return fmt.Errorf("%w (self address; set -advertise to how peers reach this replica)", err)
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if err := ValidateAddr(p); err != nil {
			return fmt.Errorf("%w (in -peers)", err)
		}
		if p == self {
			return fmt.Errorf("cluster: peer list contains this replica's own address %q; -peers must list only the other replicas", p)
		}
		if seen[p] {
			return fmt.Errorf("cluster: peer %q listed twice in -peers", p)
		}
		seen[p] = true
	}
	return nil
}

// PeerStatus is one peer's health snapshot for /metrics.
type PeerStatus struct {
	Addr          string  `json:"addr"`
	Up            bool    `json:"up"`
	State         string  `json:"state"`
	Left          bool    `json:"left"`
	Failures      int64   `json:"failures"`
	Retries       int64   `json:"retries"`
	Probes        int64   `json:"probes"`
	ProbeFailures int64   `json:"probe_failures"`
	RetryTokens   float64 `json:"retry_tokens"`
}

// Status snapshots every peer's health.
func (f *Fleet) Status() []PeerStatus {
	out := make([]PeerStatus, len(f.peers))
	for i, p := range f.peers {
		out[i] = PeerStatus{
			Addr:          p.Addr,
			Up:            p.Up(),
			State:         p.BreakerState(),
			Left:          p.left.Load(),
			Failures:      p.Failures(),
			Retries:       p.Retries(),
			Probes:        p.Probes(),
			ProbeFailures: p.probeFailures.Load(),
			RetryTokens:   p.budget.tokensLeft(),
		}
	}
	return out
}

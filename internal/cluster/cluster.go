// Package cluster turns N m3serve replicas into one estimation fleet. It
// provides the three mechanisms the serving layer composes:
//
//   - Membership and placement: a static member set (self + peers from the
//     -peers flag) with rendezvous (highest-random-weight) hashing, so every
//     replica independently agrees which member owns a workload name or an
//     estimate cache key without any coordination traffic.
//
//   - Health: per-peer circuit breaking. A failed call marks the peer down
//     for a cooldown so subsequent requests skip it instead of re-paying the
//     timeout; an explicit leave (drain-aware shutdown) or join notification
//     flips it immediately.
//
//   - Scatter-gather: partitioning one estimate's sampled paths into
//     contiguous shards across the live members, fanning the remote shards
//     out over plain JSON/HTTP on a shared worker pool with first-error
//     cancellation, and falling back to local computation for any shard
//     whose peer is down, times out, or answers with a retryable error —
//     the estimate degrades to "computed with less parallelism", never to
//     "failed".
//
// The wire protocol (wire.go) is deliberately plain JSON over HTTP: Go's
// float64 JSON encoding round-trips exactly, so a scatter-gathered estimate
// is byte-identical to the single-process one.
package cluster

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"m3/internal/pool"
)

// Defaults for Options.
const (
	// DefaultPeerTimeout bounds one peer call (shard execution is the slow
	// case; cache fetches finish in milliseconds).
	DefaultPeerTimeout = 30 * time.Second
	// DefaultCooldown is how long a failed peer stays marked down before
	// the next request probes it again.
	DefaultCooldown = 2 * time.Second
)

// Options configures a Fleet.
type Options struct {
	// PeerTimeout bounds each peer HTTP call (0 = DefaultPeerTimeout).
	PeerTimeout time.Duration
	// Cooldown is how long a peer stays down after a failed call
	// (0 = DefaultCooldown).
	Cooldown time.Duration
}

// Peer is one remote replica: its address, client, and health state.
type Peer struct {
	Addr   string
	Client *Client

	cooldown time.Duration
	// downUntil is the unix-nano deadline of the current failure cooldown.
	downUntil atomic.Int64
	// left marks a peer that announced drain-aware shutdown; it stays down
	// (no cooldown expiry) until it announces joining again.
	left     atomic.Bool
	failures atomic.Int64
}

// Up reports whether the peer should receive traffic right now.
func (p *Peer) Up() bool {
	return !p.left.Load() && time.Now().UnixNano() >= p.downUntil.Load()
}

// MarkFailure records a failed call: the peer is skipped until the cooldown
// expires, so one dead replica costs the fleet one timeout per cooldown
// window instead of one per request.
func (p *Peer) MarkFailure() {
	p.failures.Add(1)
	p.downUntil.Store(time.Now().Add(p.cooldown).UnixNano())
}

// MarkSuccess clears any failure cooldown.
func (p *Peer) MarkSuccess() { p.downUntil.Store(0) }

// MarkLeft takes the peer out of rotation until it rejoins (drain-aware
// shutdown deregistration).
func (p *Peer) MarkLeft() { p.left.Store(true) }

// MarkJoined returns the peer to rotation immediately.
func (p *Peer) MarkJoined() {
	p.left.Store(false)
	p.downUntil.Store(0)
}

// Failures returns the cumulative failed-call count.
func (p *Peer) Failures() int64 { return p.failures.Load() }

// Fleet is one replica's view of the member set. Construct with New; the
// member list is fixed for the process lifetime (static -peers flag), only
// health states change.
type Fleet struct {
	self    string
	peers   []*Peer  // sorted by address; excludes self
	members []string // sorted member addresses, including self

	peerTimeout time.Duration
	// rpc is the fleet's own small worker pool for peer fan-out — separate
	// from the CPU-bound path-simulation pool so blocking HTTP calls never
	// occupy simulation workers (and a scatter shard falling back to local
	// compute can still get pool workers underneath it).
	rpc *pool.Pool
}

// New builds a fleet view for self plus its peers. Addresses must pass
// ValidateMembers (the caller's flag layer reports those errors with
// context); New re-checks and fails loudly on violations.
func New(self string, peerAddrs []string, opts Options) (*Fleet, error) {
	if err := ValidateMembers(self, peerAddrs); err != nil {
		return nil, err
	}
	if opts.PeerTimeout <= 0 {
		opts.PeerTimeout = DefaultPeerTimeout
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultCooldown
	}
	f := &Fleet{self: self, peerTimeout: opts.PeerTimeout}
	for _, addr := range peerAddrs {
		f.peers = append(f.peers, &Peer{
			Addr:     addr,
			Client:   NewClient(addr, opts.PeerTimeout),
			cooldown: opts.Cooldown,
		})
	}
	sort.Slice(f.peers, func(i, j int) bool { return f.peers[i].Addr < f.peers[j].Addr })
	f.members = append(f.members, self)
	for _, p := range f.peers {
		f.members = append(f.members, p.Addr)
	}
	sort.Strings(f.members)
	f.rpc = newRPCPool(len(f.members))
	return f, nil
}

// Self returns this replica's advertised address.
func (f *Fleet) Self() string { return f.self }

// Members returns all member addresses (including self), sorted.
func (f *Fleet) Members() []string { return f.members }

// Peers returns the remote peers, sorted by address.
func (f *Fleet) Peers() []*Peer { return f.peers }

// Peer returns the peer with the given address, or nil (self or unknown).
func (f *Fleet) Peer(addr string) *Peer {
	i := sort.Search(len(f.peers), func(i int) bool { return f.peers[i].Addr >= addr })
	if i < len(f.peers) && f.peers[i].Addr == addr {
		return f.peers[i]
	}
	return nil
}

// PeerTimeout returns the per-call deadline peers are dialed with.
func (f *Fleet) PeerTimeout() time.Duration { return f.peerTimeout }

// --- rendezvous hashing -----------------------------------------------------

// rendezvous scores (member, key) with FNV-1a over the member address bytes
// followed by the key bytes. Highest score owns the key; every replica
// computes the same winner with zero coordination, and removing a member
// only moves the keys that member owned (the consistent-hashing property,
// without a ring or virtual nodes to maintain).
func rendezvousScore(member string, key uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= key & 0xff
		h *= prime64
		key >>= 8
	}
	return h
}

// OwnerOf returns the member that owns the 64-bit key digest, considering
// every configured member regardless of health (ownership must be stable
// while a peer bounces; callers fall back when the owner is down).
func (f *Fleet) OwnerOf(key uint64) string {
	best := f.members[0]
	var bestScore uint64
	for i, m := range f.members {
		s := rendezvousScore(m, key)
		if i == 0 || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// OwnerOfName returns the owner of a workload name (hashing the name bytes
// first). The registry is fully replicated, so name ownership is placement
// metadata — which replica "homes" a workload — not a routing requirement.
func (f *Fleet) OwnerOfName(name string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return f.OwnerOf(h)
}

// --- address validation -----------------------------------------------------

// ValidateAddr rejects addresses that cannot name a peer: the form must be
// host:port with a non-empty host (peers must be dialable from elsewhere,
// so ":8053" is not enough) and a numeric port in [1, 65535].
func ValidateAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("cluster: address %q is not host:port: %v", addr, err)
	}
	if host == "" {
		return fmt.Errorf("cluster: address %q has no host; peers must be dialable (use 127.0.0.1:%s, not :%s)", addr, port, port)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n < 1 || n > 65535 {
		return fmt.Errorf("cluster: address %q has bad port %q (want 1-65535)", addr, port)
	}
	return nil
}

// ValidateMembers checks a full member configuration up front: self and
// every peer must be well-formed, self must not appear in the peer list
// (a replica scattering to itself over HTTP would deadlock its own
// admission), and no peer may be listed twice (double-weighted ownership
// and duplicate replication).
func ValidateMembers(self string, peers []string) error {
	if err := ValidateAddr(self); err != nil {
		return fmt.Errorf("%w (self address; set -advertise to how peers reach this replica)", err)
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if err := ValidateAddr(p); err != nil {
			return fmt.Errorf("%w (in -peers)", err)
		}
		if p == self {
			return fmt.Errorf("cluster: peer list contains this replica's own address %q; -peers must list only the other replicas", p)
		}
		if seen[p] {
			return fmt.Errorf("cluster: peer %q listed twice in -peers", p)
		}
		seen[p] = true
	}
	return nil
}

// PeerStatus is one peer's health snapshot for /metrics.
type PeerStatus struct {
	Addr     string `json:"addr"`
	Up       bool   `json:"up"`
	Left     bool   `json:"left"`
	Failures int64  `json:"failures"`
}

// Status snapshots every peer's health.
func (f *Fleet) Status() []PeerStatus {
	out := make([]PeerStatus, len(f.peers))
	for i, p := range f.peers {
		out[i] = PeerStatus{Addr: p.Addr, Up: p.Up(), Left: p.left.Load(), Failures: p.Failures()}
	}
	return out
}

package cluster

import (
	"encoding/json"
	"time"

	"m3/internal/agg"
	"m3/internal/core"
	"m3/internal/packetsim"
)

// Internal endpoint paths, mounted by the serving layer on every replica.
const (
	// PathsEndpoint executes one scatter-gather shard: a slice of a plan's
	// sampled path indices, run under the replica's own pool and model.
	PathsEndpoint = "/internal/v1/paths"
	// CacheFetchEndpoint answers owner-side cache lookups (tier two).
	CacheFetchEndpoint = "/internal/v1/cachefetch"
	// CachePutEndpoint offers a computed estimate to its hash owner.
	CachePutEndpoint = "/internal/v1/cacheput"
	// WorkloadSyncEndpoint replicates registry mutations and serves full
	// registry pulls to (re)joining replicas.
	WorkloadSyncEndpoint = "/internal/v1/workload-sync"
	// InvalidateEndpoint broadcasts a model swap: peers drop estimates
	// keyed to other fingerprints and converge on the same checkpoint.
	InvalidateEndpoint = "/internal/v1/invalidate"
	// MembershipEndpoint receives join/leave announcements (drain-aware
	// shutdown deregisters here so peers stop scattering to a dying
	// replica immediately instead of discovering it by timeout).
	MembershipEndpoint = "/internal/v1/membership"
	// HealthEndpoint answers active health probes (GET): cheap proof of
	// life plus the serving model fingerprint and current inflight count,
	// so the prober re-admits recovered peers without a user request
	// paying for the discovery.
	HealthEndpoint = "/internal/v1/health"
)

// HealthResponse answers a health probe.
type HealthResponse struct {
	// Fingerprint is the serving model's fingerprint — probers could use a
	// mismatch as an early reload-propagation signal.
	Fingerprint uint64 `json:"fingerprint"`
	// Inflight is the replica's current in-flight estimation count.
	Inflight int64 `json:"inflight"`
}

// Machine-readable error codes carried in the "code" field of every error
// response body, so peers (and clients) classify failures without string
// matching. Codes, not HTTP statuses, are the contract: 503s from an
// intermediary proxy and 429s from admission control both exist in the
// wild, but only a body with code "shed" is a deliberate, immediately
// retryable rejection.
const (
	// CodeValidation: the request itself is malformed; retrying verbatim
	// can never succeed.
	CodeValidation = "validation"
	// CodeNotFound: the named resource does not exist here.
	CodeNotFound = "not_found"
	// CodeConflict: the request lost a race (duplicate create, concurrent
	// reload); retry only after re-checking state.
	CodeConflict = "conflict"
	// CodeShed: admission control rejected the request under load;
	// retryable after backoff.
	CodeShed = "shed"
	// CodeTimeout: the per-estimate deadline elapsed; retryable.
	CodeTimeout = "timeout"
	// CodeCanceled: the client abandoned the request.
	CodeCanceled = "canceled"
	// CodeModelMismatch: a shard request named a model fingerprint this
	// replica is not serving (reload propagation in flight); retryable
	// once the fleet converges.
	CodeModelMismatch = "model_mismatch"
	// CodeUnprocessable: the payload parsed but failed integrity checks
	// (corrupt checkpoint, bad snapshot shapes).
	CodeUnprocessable = "unprocessable"
	// CodeUnknownBackend: the request named a model backend kind this
	// build does not register; retrying verbatim can never succeed.
	CodeUnknownBackend = "unknown_backend"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal = "internal"
)

// Retryable reports whether an error code marks a transient condition the
// caller may retry (against the same or another replica) rather than a
// terminal request defect.
func Retryable(code string) bool {
	switch code {
	case CodeShed, CodeTimeout, CodeModelMismatch:
		return true
	}
	return false
}

// ErrorBody is the JSON error envelope every serve endpoint writes.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// PathsRequest asks a peer to execute one shard of a scatter-gathered
// estimate: run the per-path backend for the named workload's paths at
// Indices (indices into the deterministic pathsim decomposition, which the
// replicated registry guarantees is identical on every member).
type PathsRequest struct {
	Workload string `json:"workload"`
	// Hash guards against registry skew: the peer refuses if its copy of
	// the workload hashes differently (an index into a different
	// decomposition would silently compute the wrong paths).
	Hash   uint64 `json:"hash"`
	Method string `json:"method"`
	// ModelFP pins the ML model version; a peer serving a different
	// fingerprint answers CodeModelMismatch instead of mixing model
	// generations inside one estimate.
	ModelFP uint64 `json:"model_fp,omitempty"`
	// Backend pins the inference backend kind ("net", "net-int8"); empty
	// means the float net, so pre-backend coordinators stay compatible.
	// Together with ModelFP it guarantees every shard of one estimate runs
	// the same arithmetic.
	Backend string           `json:"backend,omitempty"`
	Cfg     packetsim.Config `json:"cfg"`
	Indices []int            `json:"indices"`
	Mults   []int            `json:"mults"`
	// DeadlineNS propagates the caller's remaining deadline budget (a
	// duration in nanoseconds, not an absolute time — clock skew between
	// replicas must not corrupt it; 0 = no deadline). A peer refuses work
	// it cannot finish inside the budget with the retryable timeout code
	// instead of computing a shard whose caller already gave up.
	DeadlineNS int64 `json:"deadline_ns,omitempty"`
}

// PathsResponse carries a shard's outputs back to the coordinator. The wall
// fields are additive (PR 9): replicas that predate them answer zero, which
// the coordinator reads as "no wall data from that shard".
type PathsResponse struct {
	Outs          []agg.PathOutput `json:"outs"`
	PathSimNs     int64            `json:"path_sim_ns"`
	PredictNs     int64            `json:"predict_ns"`
	PathSimWallNs int64            `json:"path_sim_wall_ns,omitempty"`
	PredictWallNs int64            `json:"predict_wall_ns,omitempty"`
	OverlapNs     int64            `json:"overlap_ns,omitempty"`
	DegradedPaths int              `json:"degraded_paths"`
}

// KeyRequest names one estimate cache entry (cachefetch).
type KeyRequest struct {
	Key core.EstimateKey `json:"key"`
	// Wait asks the owner to join an in-flight computation of the key
	// (fleet-wide single-flight) instead of answering "miss" immediately.
	Wait bool `json:"wait,omitempty"`
	// DeadlineNS propagates the caller's remaining deadline budget
	// (duration ns, 0 = none); see PathsRequest.DeadlineNS.
	DeadlineNS int64 `json:"deadline_ns,omitempty"`
}

// PutRequest offers a computed estimate to its hash owner (cacheput).
type PutRequest struct {
	Key      core.EstimateKey `json:"key"`
	Estimate *EstimateWire    `json:"estimate"`
}

// FetchResponse is a cachefetch answer; Hit false means a clean miss.
type FetchResponse struct {
	Hit      bool          `json:"hit"`
	Estimate *EstimateWire `json:"estimate,omitempty"`
}

// EstimateWire is a core.Estimate flattened for transport: the aggregate's
// pooled per-bucket samples and weights plus the scalar fields. Floats
// cross as JSON numbers, which Go encodes shortest-round-trip, so the
// reconstructed estimate answers quantile queries byte-identically.
type EstimateWire struct {
	Pooled        [][]float64 `json:"pooled"`
	Weight        []float64   `json:"weight"`
	DistinctPaths int         `json:"distinct_paths"`
	TotalPaths    int         `json:"total_paths"`
	ElapsedNs     int64       `json:"elapsed_ns"`
	DecomposeNs   int64       `json:"decompose_ns"`
	SampleNs      int64       `json:"sample_ns"`
	PathSimNs     int64       `json:"path_sim_ns"`
	PredictNs     int64       `json:"predict_ns"`
	AggregateNs   int64       `json:"aggregate_ns"`
	PathSimWallNs int64       `json:"path_sim_wall_ns,omitempty"`
	PredictWallNs int64       `json:"predict_wall_ns,omitempty"`
	OverlapNs     int64       `json:"overlap_ns,omitempty"`
	Degraded      bool        `json:"degraded,omitempty"`
	DegradedPaths int         `json:"degraded_paths,omitempty"`
}

// WireFromEstimate flattens an estimate for transport.
func WireFromEstimate(e *core.Estimate) *EstimateWire {
	pooled, weight := e.Agg.Snapshot()
	return &EstimateWire{
		Pooled:        pooled,
		Weight:        weight,
		DistinctPaths: e.DistinctPaths,
		TotalPaths:    e.TotalPaths,
		ElapsedNs:     int64(e.Elapsed),
		DecomposeNs:   int64(e.Stages.Decompose),
		SampleNs:      int64(e.Stages.Sample),
		PathSimNs:     int64(e.Stages.PathSim),
		PredictNs:     int64(e.Stages.Predict),
		AggregateNs:   int64(e.Stages.Aggregate),
		PathSimWallNs: int64(e.Stages.PathSimWall),
		PredictWallNs: int64(e.Stages.PredictWall),
		OverlapNs:     int64(e.Stages.Overlap),
		Degraded:      e.Degraded,
		DegradedPaths: e.DegradedPaths,
	}
}

// Estimate reconstructs the core estimate, validating the snapshot shapes.
func (w *EstimateWire) Estimate() (*core.Estimate, error) {
	a, err := agg.FromSnapshot(w.Pooled, w.Weight)
	if err != nil {
		return nil, err
	}
	return &core.Estimate{
		Agg:           a,
		DistinctPaths: w.DistinctPaths,
		TotalPaths:    w.TotalPaths,
		Elapsed:       time.Duration(w.ElapsedNs),
		Stages: core.StageTimings{
			Decompose:   time.Duration(w.DecomposeNs),
			Sample:      time.Duration(w.SampleNs),
			PathSim:     time.Duration(w.PathSimNs),
			Predict:     time.Duration(w.PredictNs),
			Aggregate:   time.Duration(w.AggregateNs),
			PathSimWall: time.Duration(w.PathSimWallNs),
			PredictWall: time.Duration(w.PredictWallNs),
			Overlap:     time.Duration(w.OverlapNs),
		},
		Degraded:      w.Degraded,
		DegradedPaths: w.DegradedPaths,
	}, nil
}

// SyncRequest replicates one registry mutation ("create"/"delete"); Request
// carries the original creation body opaquely, so the replica rebuilds the
// workload from the same deterministic inputs (spec seeds, trace bytes)
// instead of shipping materialized flows.
type SyncRequest struct {
	Op      string          `json:"op"`
	Name    string          `json:"name,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
}

// SyncList answers a full registry pull: every workload's original creation
// request, for a replica (re)joining the fleet.
type SyncList struct {
	Workloads []json.RawMessage `json:"workloads"`
}

// InvalidateRequest broadcasts a model swap after a successful reload:
// Fingerprint is the fleet's new serving model, Checkpoint the path it was
// loaded from (peers converge by reloading the same artifact).
type InvalidateRequest struct {
	Fingerprint uint64 `json:"fingerprint"`
	Checkpoint  string `json:"checkpoint,omitempty"`
}

// MembershipUpdate announces a peer joining or leaving the fleet.
type MembershipUpdate struct {
	Addr  string `json:"addr"`
	Event string `json:"event"` // "joining" | "leaving"
}

package exp

import (
	"context"
	"fmt"
	"io"
	"sort"

	"m3/internal/core"
	"m3/internal/packetsim"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/sampling"
	"m3/internal/stats"
)

// Fig2Result validates path-level decomposition (Fig. 2b-e) for one mix.
type Fig2Result struct {
	Mix Mix
	// HopHist[h] is the number of sampled paths with h hops (Fig. 2b).
	HopHist map[int]int
	// FgCounts / BgCounts per sampled path (Fig. 2d).
	FgCounts []int
	BgCounts []int
	// PathErr is the per-path relative error of ns-3-path vs full ns-3,
	// computed on the mean foreground slowdown of each sampled path
	// (Fig. 2c/2e use per-path slowdown agreement).
	PathErr []float64
	// ErrByHops groups PathErr by hop count (Fig. 2e, left).
	ErrByHops map[int][]float64
}

// RunFig2 reproduces Fig. 2: how faithful path-level packet simulation is to
// the full simulation, per sampled path, across the three mixes.
func RunFig2(ctx context.Context, s Scale, w io.Writer) ([]Fig2Result, error) {
	mixes := Table1Mixes(s.TestFlows)
	var out []Fig2Result
	for _, m := range mixes {
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		cfg := packetsim.DefaultConfig()
		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}
		d, err := pathsim.Decompose(ft.Topology, flows)
		if err != nil {
			return nil, err
		}
		sample, err := sampling.Weighted(d.FgWeights(), s.Paths, rng.New(m.Seed))
		if err != nil {
			return nil, err
		}
		distinct, _ := sampling.Dedup(sample)

		res := Fig2Result{Mix: m, HopHist: make(map[int]int), ErrByHops: make(map[int][]float64)}
		for _, pi := range distinct {
			p := &d.Paths[pi]
			sc, err := d.Scenario(p)
			if err != nil {
				return nil, err
			}
			fg, err := sc.RunPacketContext(ctx, cfg)
			if err != nil {
				return nil, err
			}
			res.HopHist[p.Hops()]++
			res.FgCounts = append(res.FgCounts, len(p.Fg))
			res.BgCounts = append(res.BgCounts, sc.NumBg())
			var truth []float64
			for _, id := range fg.Orig {
				truth = append(truth, gt.Result.Slowdown[id])
			}
			e := stats.RelError(stats.Mean(fg.Slowdown), stats.Mean(truth))
			res.PathErr = append(res.PathErr, e)
			res.ErrByHops[p.Hops()] = append(res.ErrByHops[p.Hops()], e)
		}
		out = append(out, res)

		fmt.Fprintf(w, "\nFig 2 — %s (%s, %s, oversub %s)\n",
			m.Name, m.MatrixName, m.Sizes.Name(), m.Oversub)
		hops := make([]int, 0, len(res.HopHist))
		for h := range res.HopHist {
			hops = append(hops, h)
		}
		sort.Ints(hops)
		fmt.Fprintf(w, "  2b hop counts: ")
		for _, h := range hops {
			fmt.Fprintf(w, "%d-hop:%d  ", h, res.HopHist[h])
		}
		fmt.Fprintln(w)
		abs := make([]float64, len(res.PathErr))
		for i, e := range res.PathErr {
			abs[i] = e
			if abs[i] < 0 {
				abs[i] = -abs[i]
			}
		}
		fmt.Fprintf(w, "  2c per-path |err|: mean %.1f%%, median %.1f%%, p90 %.1f%%\n",
			100*stats.Mean(abs), 100*stats.Median(abs), 100*stats.Percentile(abs, 90))
		fmt.Fprintf(w, "  2d flows/path: fg median %.0f, bg median %.0f\n",
			stats.Median(toF(res.FgCounts)), stats.Median(toF(res.BgCounts)))
		for _, h := range hops {
			es := res.ErrByHops[h]
			fmt.Fprintf(w, "  2e %d-hop err: median %+.1f%% [p25 %+.1f%%, p75 %+.1f%%] (n=%d)\n",
				h, 100*stats.Median(es), 100*stats.Percentile(es, 25),
				100*stats.Percentile(es, 75), len(es))
		}
	}
	return out, nil
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Fig5Result holds Fig. 5 data for one scenario.
type Fig5Result struct {
	Mix Mix
	// ActivePaths is the number of populated paths (Fig. 5 left).
	ActivePaths int
	// ErrByK[k] is the distribution of relative p99 errors when sampling k
	// paths (Fig. 5 right), over repeated draws.
	ErrByK map[int][]float64
}

// RunFig5 reproduces Fig. 5: the populated-path count distribution and how
// the p99 sampling error shrinks with the number of sampled paths. It uses
// the ground-truth per-flow slowdowns directly (sampling study only — no
// per-path simulation).
func RunFig5(ctx context.Context, s Scale, w io.Writer) ([]Fig5Result, error) {
	ks := []int{50, 100, 200, 500, 1000}
	const draws = 20
	root := rng.New(55)
	var out []Fig5Result
	for i := 0; i < s.Scenarios; i++ {
		m := RandomMix(root.Split(uint64(i)), s.TestFlows, uint64(200+i))
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, packetsim.DefaultConfig())
		if err != nil {
			return nil, err
		}
		trueP99 := gt.P99()
		d, err := pathsim.Decompose(ft.Topology, flows)
		if err != nil {
			return nil, err
		}
		weights := d.FgWeights()
		res := Fig5Result{Mix: m, ActivePaths: len(d.Paths), ErrByK: make(map[int][]float64)}
		r := root.Split(uint64(1000 + i))
		for _, k := range ks {
			for rep := 0; rep < draws; rep++ {
				sample, err := sampling.Weighted(weights, k, r)
				if err != nil {
					return nil, err
				}
				var pooled []float64
				for _, pi := range sample {
					for _, id := range d.Paths[pi].Fg {
						pooled = append(pooled, gt.Result.Slowdown[id])
					}
				}
				res.ErrByK[k] = append(res.ErrByK[k],
					stats.AbsRelError(stats.P99(pooled), trueP99))
			}
		}
		out = append(out, res)
	}
	fmt.Fprintf(w, "Fig 5: path counts and sampling error (%d scenarios, %d flows each)\n",
		s.Scenarios, s.TestFlows)
	var counts []float64
	for _, r := range out {
		counts = append(counts, float64(r.ActivePaths))
	}
	fmt.Fprintf(w, "  5a populated paths: min %.0f, median %.0f, max %.0f\n",
		stats.Min(counts), stats.Median(counts), stats.Max(counts))
	for _, k := range ks {
		var all []float64
		for _, r := range out {
			all = append(all, r.ErrByK[k]...)
		}
		fmt.Fprintf(w, "  5b k=%4d sampled paths: median |p99 err| %.1f%%, p90 %.1f%%\n",
			k, 100*stats.Median(all), 100*stats.Percentile(all, 90))
	}
	return out, nil
}

package exp

import (
	"context"
	"fmt"
	"io"

	"m3/internal/feature"
	"m3/internal/flowsim"
	"m3/internal/plot"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Fig3Cell is one heatmap of Fig. 3: flowSim's slowdown percentile map on a
// single link for one (workload, burstiness, load) combination.
type Fig3Cell struct {
	Label string
	Map   *feature.Map
}

// RunFig3 reproduces Fig. 3: flowSim slowdown heatmaps on a single link as
// burstiness, load, and workload vary around the baseline (CacheFollower,
// sigma=1.5, 50% load). The printed summary shows each size bucket's p50 and
// p99 slowdown; the returned cells carry the full 10x100 maps.
func RunFig3(ctx context.Context, s Scale, w io.Writer) ([]Fig3Cell, error) {
	numFg := min(s.TestFlows, 20000)
	type variant struct {
		label string
		dist  workload.SizeDist
		sigma float64
		load  float64
	}
	variants := []variant{
		{"a: sigma=1.0", workload.CacheFollower, 1.0, 0.5},
		{"b: sigma=1.5 (base)", workload.CacheFollower, 1.5, 0.5},
		{"c: sigma=2.0", workload.CacheFollower, 2.0, 0.5},
		{"d: load=20%", workload.CacheFollower, 1.5, 0.2},
		{"e: load=50% (base)", workload.CacheFollower, 1.5, 0.5},
		{"f: load=80%", workload.CacheFollower, 1.5, 0.8},
		{"g: Hadoop", workload.Hadoop, 1.5, 0.5},
		{"h: CacheFollower (base)", workload.CacheFollower, 1.5, 0.5},
		{"i: WebServer", workload.WebServer, 1.5, 0.5},
	}
	var out []Fig3Cell
	fmt.Fprintf(w, "Fig 3: flowSim single-link slowdown heatmaps (%d flows each)\n", numFg)
	for _, v := range variants {
		syn, err := workload.GenerateSynthetic(workload.SynthSpec{
			Hops: 1, NumFg: numFg, BgPerLink: 0,
			Sizes: v.dist, Burstiness: v.sigma, MaxLoad: v.load, Seed: 33,
		})
		if err != nil {
			return nil, err
		}
		res, err := flowsim.RunContext(ctx, syn.Lot.Topology, syn.Flows)
		if err != nil {
			return nil, err
		}
		sizes := make([]unit.ByteSize, len(syn.Flows))
		sldn := make([]float64, len(syn.Flows))
		for i := range syn.Flows {
			sizes[i] = syn.Flows[i].Size
			sldn[i] = res.Slowdown[syn.Flows[i].ID]
		}
		m := feature.BuildFeature(sizes, sldn)
		out = append(out, Fig3Cell{Label: v.label, Map: m})
		fmt.Fprintf(w, "  %-24s", v.label)
		for b := 0; b < feature.NumFeatureBuckets; b++ {
			if m.Counts[b] == 0 {
				fmt.Fprintf(w, "     -/-  ")
				continue
			}
			row := m.Row(b)
			fmt.Fprintf(w, " %4.1f/%-4.1f", row[49], row[98])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  (columns: p50/p99 slowdown per size bucket, smallest to largest)\n")

	// Render the three workload heatmaps (bottom row of Fig. 3) as ASCII:
	// rows are size buckets, columns the percentile axis.
	for _, idx := range []int{6, 7, 8} {
		c := out[idx]
		labels := make([]string, feature.NumFeatureBuckets)
		rows := make([][]float64, feature.NumFeatureBuckets)
		for b := 0; b < feature.NumFeatureBuckets; b++ {
			labels[b] = fmt.Sprintf("bucket%d", b)
			// subtract 1 so "no slowdown" renders blank and contention pops
			row := make([]float64, feature.NumPercentiles)
			for p, v := range c.Map.Row(b) {
				if v > 1 {
					row[p] = v - 1
				}
			}
			rows[b] = row
		}
		if err := plot.Heatmap(w, "  heatmap "+c.Label, labels, rows); err != nil {
			fmt.Fprintf(w, "  heatmap %s: %v\n", c.Label, err)
		}
	}
	return out, nil
}

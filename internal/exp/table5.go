package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"m3/internal/core"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/plot"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Table5Row is one initial-window row of Table 5.
type Table5Row struct {
	InitWindow   unit.ByteSize
	TruthP99     float64
	TruthTime    time.Duration
	ParsimonP99  float64
	ParsimonErr  float64
	ParsimonTime time.Duration
	M3P99        float64
	M3Err        float64
	M3Time       time.Duration
	// Per-bucket slowdown samples for Fig. 12 (sorted).
	TruthBuckets    [feature.NumOutputBuckets][]float64
	ParsimonBuckets [feature.NumOutputBuckets][]float64
	M3Buckets       [feature.NumOutputBuckets][]float64
}

// RunTable5 reproduces Table 5 (and collects the Fig. 12 distributions):
// the 384-rack, 6144-host fat-tree with traffic matrix B, the WebServer
// workload at sigma=2 and 50% max load, under 10KB and 18KB initial
// congestion windows.
func RunTable5(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]Table5Row, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	ft, err := topo.LargeFatTree()
	if err != nil {
		return nil, err
	}
	mat, err := workload.Matrix("B", ft.Cfg.NumRacks(), rng.New(500))
	if err != nil {
		return nil, err
	}
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: s.LargeFlows, Sizes: workload.WebServer, Matrix: mat,
		Burstiness: 2, MaxLoad: 0.5, Seed: 501,
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table 5: large-scale comparison (384 racks, 6144 hosts, %d flows)\n", s.LargeFlows)
	fmt.Fprintf(w, "%-10s | %8s %9s | %8s %7s %9s | %8s %7s %9s\n",
		"initWnd", "ns3-p99", "time", "pars-p99", "err", "time", "m3-p99", "err", "time")

	var rows []Table5Row
	for _, iw := range []unit.ByteSize{10 * unit.KB, 18 * unit.KB} {
		cfg := packetsim.DefaultConfig()
		cfg.InitWindow = iw

		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}

		t0 := time.Now()
		pr, err := parsimon.RunWithPool(ctx, ft.Topology, flows, cfg, p)
		if err != nil {
			return nil, err
		}
		psTime := time.Since(t0)
		psP99 := stats.P99(pr.Slowdown)

		est := core.NewEstimator(net, core.WithNumPaths(s.Paths),
			core.WithPool(p), core.WithSeed(502))
		t0 = time.Now()
		mr, err := est.Estimate(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}
		m3Time := time.Since(t0)

		row := Table5Row{
			InitWindow: iw,
			TruthP99:   gt.P99(), TruthTime: gt.Elapsed,
			ParsimonP99: psP99, ParsimonErr: stats.RelError(psP99, gt.P99()), ParsimonTime: psTime,
			M3P99: mr.P99(), M3Err: stats.RelError(mr.P99(), gt.P99()), M3Time: m3Time,
		}
		// Fig. 12 distributions.
		for i := range flows {
			b := feature.BucketOf(flows[i].Size, feature.OutputBucketBounds)
			row.TruthBuckets[b] = append(row.TruthBuckets[b], gt.Result.Slowdown[flows[i].ID])
			row.ParsimonBuckets[b] = append(row.ParsimonBuckets[b], pr.Slowdown[flows[i].ID])
		}
		for b := 0; b < feature.NumOutputBuckets; b++ {
			row.M3Buckets[b] = mr.Agg.BucketSamples(b)
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-10v | %8.3f %9s | %8.3f %+6.1f%% %9s | %8.3f %+6.1f%% %9s\n",
			iw, row.TruthP99, row.TruthTime.Round(time.Millisecond),
			row.ParsimonP99, 100*row.ParsimonErr, row.ParsimonTime.Round(time.Millisecond),
			row.M3P99, 100*row.M3Err, row.M3Time.Round(time.Millisecond))
	}
	for _, row := range rows {
		fmt.Fprintf(w, "  speedups at initWnd %v: m3 %.0fx, parsimon %.0fx over full sim\n",
			row.InitWindow,
			row.TruthTime.Seconds()/row.M3Time.Seconds(),
			row.TruthTime.Seconds()/row.ParsimonTime.Seconds())
	}
	return rows, nil
}

// RunFig12 prints the per-bucket slowdown distributions of the 10KB row
// (Fig. 12).
func RunFig12(rows []Table5Row, w io.Writer) {
	if len(rows) == 0 {
		return
	}
	row := rows[0] // 10KB initial window
	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	fmt.Fprintf(w, "Fig 12: slowdown CDFs per bucket, %v init window (p50/p90/p99)\n", row.InitWindow)
	q := func(xs []float64, p float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return stats.Percentile(xs, p)
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		fmt.Fprintf(w, "  %-12s ns3 %5.2f/%5.2f/%5.2f | m3 %5.2f/%5.2f/%5.2f | parsimon %5.2f/%5.2f/%5.2f\n",
			names[b],
			q(row.TruthBuckets[b], 50), q(row.TruthBuckets[b], 90), q(row.TruthBuckets[b], 99),
			q(row.M3Buckets[b], 50), q(row.M3Buckets[b], 90), q(row.M3Buckets[b], 99),
			q(row.ParsimonBuckets[b], 50), q(row.ParsimonBuckets[b], 90), q(row.ParsimonBuckets[b], 99))
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if len(row.TruthBuckets[b]) == 0 || len(row.M3Buckets[b]) == 0 ||
			len(row.ParsimonBuckets[b]) == 0 {
			continue
		}
		err := plot.CDF(w, fmt.Sprintf("  Fig 12 CDF, bucket %s:", names[b]), 56, 10,
			plot.Series{Name: "ns3", Samples: row.TruthBuckets[b]},
			plot.Series{Name: "m3", Samples: row.M3Buckets[b]},
			plot.Series{Name: "parsimon", Samples: row.ParsimonBuckets[b]})
		if err != nil {
			fmt.Fprintf(w, "  bucket %s plot: %v\n", names[b], err)
		}
	}
}

package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"m3/internal/core"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/stats"
	"m3/internal/workload"
)

// AblationPathsPoint is one sampled-path-budget setting of the design-choice
// ablation: how m3's accuracy and runtime scale with the number of sampled
// paths (the paper fixes 500 after the Fig. 5 study; this extends the study
// to the full m3 pipeline).
type AblationPathsPoint struct {
	Paths   int
	AbsErrs []float64 // |p99 error| across scenarios
	MeanSec float64
}

// RunAblationPaths sweeps the path-sampling budget.
func RunAblationPaths(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]AblationPathsPoint, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	budgets := []int{25, 50, 100, 200, 500}
	root := rng.New(2100)
	type scenario struct {
		mix   Mix
		truth float64
	}
	var scenarios []scenario
	nScen := max(2, s.Scenarios/2)
	for i := 0; i < nScen; i++ {
		m := RandomMix(root.Split(uint64(i)), s.TestFlows, uint64(2100+i))
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, packetsim.DefaultConfig())
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, scenario{m, gt.P99()})
	}
	fmt.Fprintf(w, "Ablation: m3 accuracy/runtime vs sampled-path budget (%d scenarios)\n", nScen)
	var out []AblationPathsPoint
	for _, k := range budgets {
		pt := AblationPathsPoint{Paths: k}
		var secs float64
		for i, sc := range scenarios {
			ft, flows, err := sc.mix.Build()
			if err != nil {
				return nil, err
			}
			est := core.NewEstimator(net, core.WithNumPaths(k),
				core.WithPool(p), core.WithSeed(uint64(3000+i)))
			t0 := time.Now()
			res, err := est.Estimate(ctx, ft.Topology, flows, packetsim.DefaultConfig())
			if err != nil {
				return nil, err
			}
			secs += time.Since(t0).Seconds()
			pt.AbsErrs = append(pt.AbsErrs, stats.AbsRelError(res.P99(), sc.truth))
		}
		pt.MeanSec = secs / float64(len(scenarios))
		out = append(out, pt)
		fmt.Fprintf(w, "  %4d paths: mean |p99 err| %5.1f%%, median %5.1f%%, mean runtime %.2fs\n",
			k, 100*stats.Mean(pt.AbsErrs), 100*stats.Median(pt.AbsErrs), pt.MeanSec)
	}
	return out, nil
}

// KnockoutResult reports the feature-knockout sensitivity probe: per-path
// prediction error when parts of the model input are zeroed at inference.
// (Unlike the retrained Fig. 16 ablation, this holds the weights fixed and
// measures how much each input stream contributes to the trained model's
// predictions.)
type KnockoutResult struct {
	Variant string
	AbsErrs []float64 // |p99 error| per scenario/bucket against ns-3-path
}

// RunAblationKnockout probes the trained model's reliance on each input:
// full inputs, zeroed spec vector, zeroed foreground features, and zeroed
// background features, scored against path-level packet ground truth on
// synthetic scenarios.
func RunAblationKnockout(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]KnockoutResult, error) {
	variants := []struct {
		name   string
		mutate func(*model.Sample)
	}{
		{"full", func(*model.Sample) {}},
		{"no-spec", func(smp *model.Sample) {
			for i := range smp.Spec {
				smp.Spec[i] = 0
			}
		}},
		{"no-fg-features", func(smp *model.Sample) {
			for i := range smp.FgFeat {
				smp.FgFeat[i] = 0
			}
		}},
		{"no-bg-features", func(smp *model.Sample) {
			for _, f := range smp.BgFeats {
				for i := range f {
					f[i] = 0
				}
			}
		}},
	}
	root := rng.New(2200)
	out := make([]KnockoutResult, len(variants))
	for i := range variants {
		out[i].Variant = variants[i].name
	}
	nScen := max(3, s.Scenarios)
	for sc := 0; sc < nScen; sc++ {
		r := root.Split(uint64(sc))
		spec := randomSynthSpec(r, s)
		cfg := model.RandomNetConfig(r, packetsim.DCTCP)
		base, err := model.GenerateScenarioSample(ctx, spec, cfg)
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			smp := cloneSample(base)
			v.mutate(smp)
			pred, err := net.Predict(smp)
			if err != nil {
				return nil, err
			}
			for b, ok := range base.Mask {
				if !ok {
					continue
				}
				truth := base.Target[b*100+98]
				got := pred[b*100+98]
				out[vi].AbsErrs = append(out[vi].AbsErrs, stats.AbsRelError(got, truth))
			}
		}
	}
	fmt.Fprintf(w, "Ablation: input knockout sensitivity (%d scenarios, p99 vs ns-3-path)\n", nScen)
	for _, k := range out {
		fmt.Fprintf(w, "  %-16s mean |err| %5.1f%%, median %5.1f%%\n",
			k.Variant, 100*stats.Mean(k.AbsErrs), 100*stats.Median(k.AbsErrs))
	}
	return out, nil
}

func randomSynthSpec(r *rng.RNG, s Scale) workload.SynthSpec {
	return workload.SynthSpec{
		Hops:       []int{2, 4, 6}[r.Intn(3)],
		NumFg:      min(s.TestFlows/8, 500),
		BgPerLink:  0.5 + r.Float64(),
		Sizes:      model.RandomSizeDist(r),
		Burstiness: 1 + r.Float64(),
		MaxLoad:    0.3 + 0.5*r.Float64(),
		Seed:       r.Uint64(),
	}
}

func cloneSample(s *model.Sample) *model.Sample {
	c := &model.Sample{
		FgFeat: append([]float64(nil), s.FgFeat...),
		Spec:   append([]float64(nil), s.Spec...),
		Target: s.Target,
		Mask:   s.Mask,
	}
	for _, f := range s.BgFeats {
		c.BgFeats = append(c.BgFeats, append([]float64(nil), f...))
	}
	return c
}

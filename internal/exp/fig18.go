package exp

import (
	"fmt"
	"io"

	"m3/internal/rng"
	"m3/internal/workload"
)

// RunFig18 documents the evaluation inputs (Fig. 18): the traffic matrices'
// skew structure and the flow size distributions' CDF points.
func RunFig18(w io.Writer) error {
	fmt.Fprintf(w, "Fig 18a: traffic matrices (32-rack instances)\n")
	r := rng.New(1800)
	for _, name := range []string{"A", "B", "C"} {
		m, err := workload.Matrix(name, 32, r.Split(uint64(name[0])))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  matrix %s: top-1%% rack pairs carry %.1f%% of traffic\n",
			name, 100*m.Skew())
	}
	fmt.Fprintf(w, "Fig 18b: flow size distribution CDFs\n")
	for _, d := range []*workload.EmpiricalSize{workload.WebServer, workload.CacheFollower, workload.Hadoop} {
		fmt.Fprintf(w, "  %-14s mean %.0fB, points:", d.Name(), d.Mean())
		for i := range d.Sizes {
			fmt.Fprintf(w, " (%.0fB, %.0f%%)", d.Sizes[i], 100*d.Probs[i])
		}
		fmt.Fprintln(w)
	}
	return nil
}

package exp

import (
	"context"
	"fmt"
	"io"

	"m3/internal/feature"
	"m3/internal/flowsim"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/stats"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Fig6Result compares the slowdown distribution per output bucket from the
// packet simulator (ns-3), flowSim, and m3 on a 4-hop parking lot.
type Fig6Result struct {
	// NS3[b], FlowSim[b], M3[b] are 100-point percentile vectors.
	NS3     [feature.NumOutputBuckets][]float64
	FlowSim [feature.NumOutputBuckets][]float64
	M3      [feature.NumOutputBuckets][]float64
}

// RunFig6 reproduces Fig. 6: per-size-bucket slowdown distributions from the
// three estimators on a Meta-workload 4-hop path scenario.
func RunFig6(ctx context.Context, s Scale, net *model.Net, w io.Writer) (*Fig6Result, error) {
	spec := workload.SynthSpec{
		Hops: 4, NumFg: min(s.TestFlows/4, 4000), BgPerLink: 1.0,
		Sizes: workload.CacheFollower, Burstiness: 2, MaxLoad: 0.55, Seed: 66,
	}
	syn, err := workload.GenerateSynthetic(spec)
	if err != nil {
		return nil, err
	}
	cfg := packetsim.DefaultConfig()

	gt, err := packetsim.RunContext(ctx, syn.Lot.Topology, syn.Flows, cfg)
	if err != nil {
		return nil, err
	}
	fs, err := flowsim.RunContext(ctx, syn.Lot.Topology, syn.Flows)
	if err != nil {
		return nil, err
	}

	hops := syn.Lot.Hops()
	var fgSizes []unit.ByteSize
	var fgFS, fgGT []float64
	bgSizes := make([][]unit.ByteSize, hops)
	bgSldn := make([][]float64, hops)
	for i := range syn.Flows {
		f := &syn.Flows[i]
		if syn.IsFg(f.ID) {
			fgSizes = append(fgSizes, f.Size)
			fgFS = append(fgFS, fs.Slowdown[f.ID])
			fgGT = append(fgGT, gt.Slowdown[f.ID])
			continue
		}
		for l := 0; l < hops; l++ {
			// background span on the original path links
			onLink := false
			for _, lid := range f.Route {
				if lid == syn.Lot.PathLinks[l] {
					onLink = true
					break
				}
			}
			if onLink {
				bgSizes[l] = append(bgSizes[l], f.Size)
				bgSldn[l] = append(bgSldn[l], fs.Slowdown[f.ID])
			}
		}
	}
	rates := syn.Lot.RouteRates(syn.Lot.PathLinks)
	delays := syn.Lot.RouteDelays(syn.Lot.PathLinks)
	in := model.BuildInputs(fgSizes, fgFS, bgSizes, bgSldn, cfg, rates, delays)
	pred, err := net.Predict(in)
	if err != nil {
		return nil, err
	}

	res := &Fig6Result{}
	gtMap := feature.BuildOutput(fgSizes, fgGT)
	fsMap := feature.BuildOutput(fgSizes, fgFS)
	fmt.Fprintf(w, "Fig 6: slowdown distribution per size bucket on a 4-hop path (%d fg flows)\n", len(fgSizes))
	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	fmt.Fprintf(w, "  %-12s %22s %22s %22s\n", "bucket", "ns-3 p50/p90/p99", "flowSim p50/p90/p99", "m3 p50/p90/p99")
	for b := 0; b < feature.NumOutputBuckets; b++ {
		res.NS3[b] = gtMap.Row(b)
		res.FlowSim[b] = fsMap.Row(b)
		res.M3[b] = pred[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles]
		if gtMap.Counts[b] == 0 {
			fmt.Fprintf(w, "  %-12s (empty)\n", names[b])
			continue
		}
		p := func(v []float64) string {
			return fmt.Sprintf("%6.2f/%6.2f/%6.2f", v[49], v[89], v[98])
		}
		fmt.Fprintf(w, "  %-12s %22s %22s %22s\n", names[b],
			p(res.NS3[b]), p(res.FlowSim[b]), p(res.M3[b]))
	}
	// Quantify the correction: mean |p99 error| of flowSim vs m3.
	var fsErr, m3Err []float64
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if gtMap.Counts[b] == 0 {
			continue
		}
		truth := res.NS3[b][98]
		fsErr = append(fsErr, stats.AbsRelError(res.FlowSim[b][98], truth))
		m3Err = append(m3Err, stats.AbsRelError(res.M3[b][98], truth))
	}
	fmt.Fprintf(w, "  mean |p99 err|: flowSim %.1f%%, m3 %.1f%%\n",
		100*stats.Mean(fsErr), 100*stats.Mean(m3Err))
	return res, nil
}

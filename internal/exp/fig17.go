package exp

import (
	"context"
	"fmt"
	"io"

	"m3/internal/core"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/stats"
	"m3/internal/unit"
)

// Fig17Group is the m3 p99 error distribution for one configuration axis
// setting (Fig. 17 / Appendix B).
type Fig17Group struct {
	Axis  string
	Value string
	Errs  []float64
}

// RunFig17 reproduces Fig. 17: m3's estimation error across the Table 4
// configuration axes — buffer size, initial window, CC protocol, and PFC.
func RunFig17(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]Fig17Group, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	type axisPoint struct {
		axis, value string
		mutate      func(*packetsim.Config)
	}
	points := []axisPoint{
		{"buffer", "200KB", func(c *packetsim.Config) { c.Buffer = 200 * unit.KB }},
		{"buffer", "500KB", func(c *packetsim.Config) { c.Buffer = 500 * unit.KB }},
		{"initWnd", "5KB", func(c *packetsim.Config) { c.InitWindow = 5 * unit.KB }},
		{"initWnd", "30KB", func(c *packetsim.Config) { c.InitWindow = 30 * unit.KB }},
		{"cc", "dctcp", func(c *packetsim.Config) { c.CC = packetsim.DCTCP }},
		{"cc", "timely", func(c *packetsim.Config) { c.CC = packetsim.TIMELY }},
		{"cc", "dcqcn", func(c *packetsim.Config) { c.CC = packetsim.DCQCN }},
		{"cc", "hpcc", func(c *packetsim.Config) { c.CC = packetsim.HPCC }},
		{"pfc", "off", func(c *packetsim.Config) { c.PFC = false }},
		{"pfc", "on", func(c *packetsim.Config) { c.PFC = true }},
	}
	root := rng.New(1700)
	reps := max(2, s.Scenarios/3)
	var out []Fig17Group
	fmt.Fprintf(w, "Fig 17: m3 p99 error across network-configuration axes (%d scenarios/point)\n", reps)
	for _, pt := range points {
		g := Fig17Group{Axis: pt.axis, Value: pt.value}
		for rep := 0; rep < reps; rep++ {
			m := RandomMix(root.Split(uint64(rep)), s.TestFlows, uint64(1700+rep))
			ft, flows, err := m.Build()
			if err != nil {
				return nil, err
			}
			cfg := packetsim.DefaultConfig()
			pt.mutate(&cfg)
			gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
			if err != nil {
				return nil, err
			}
			est := core.NewEstimator(net, core.WithNumPaths(s.Paths),
				core.WithPool(p), core.WithSeed(m.Seed))
			mr, err := est.Estimate(ctx, ft.Topology, flows, cfg)
			if err != nil {
				return nil, err
			}
			g.Errs = append(g.Errs, stats.RelError(mr.P99(), gt.P99()))
		}
		out = append(out, g)
		absErrs := make([]float64, len(g.Errs))
		for i, e := range g.Errs {
			absErrs[i] = abs(e)
		}
		fmt.Fprintf(w, "  %-8s %-7s median err %+6.1f%%, mean |err| %5.1f%%\n",
			g.Axis, g.Value, 100*stats.Median(g.Errs), 100*stats.Mean(absErrs))
	}
	return out, nil
}

package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"m3/internal/core"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/stats"
)

// Table1Row is one row of Table 1: the three estimation methods on one mix.
type Table1Row struct {
	Mix          Mix
	NS3P99       float64 // full packet-level simulation (ns-3 stand-in)
	NS3Time      time.Duration
	ParsimonP99  float64
	ParsimonTime time.Duration
	PathP99      float64 // ns-3-path (path-level packet simulation)
	PathTime     time.Duration
}

// RunTable1 reproduces Table 1: p99 slowdown and runtime of ns-3, Parsimon,
// and ns-3-path on the three mixes. One worker pool drives every method's
// fan-out; cancelling ctx aborts whichever simulation is in flight.
func RunTable1(ctx context.Context, s Scale, w io.Writer) ([]Table1Row, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	mixes := Table1Mixes(s.TestFlows)
	rows := make([]Table1Row, 0, len(mixes))
	fmt.Fprintf(w, "Table 1: p99 FCT slowdown and runtime (%d flows/mix)\n", s.TestFlows)
	fmt.Fprintf(w, "%-6s %-14s %7s | %9s %9s | %9s %9s | %9s %9s\n",
		"Mix", "workload", "oversub", "ns3-p99", "time", "pars-p99", "time", "path-p99", "time")
	for _, m := range mixes {
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		cfg := packetsim.DefaultConfig()

		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}

		t0 := time.Now()
		ps, err := parsimon.RunWithPool(ctx, ft.Topology, flows, cfg, p)
		if err != nil {
			return nil, err
		}
		psTime := time.Since(t0)

		est := core.NewEstimator(nil, core.WithNumPaths(s.Paths),
			core.WithMethod(core.MethodNS3Path), core.WithPool(p),
			core.WithSeed(m.Seed))
		t0 = time.Now()
		pr, err := est.Estimate(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}
		prTime := time.Since(t0)

		row := Table1Row{
			Mix:          m,
			NS3P99:       gt.P99(),
			NS3Time:      gt.Elapsed,
			ParsimonP99:  stats.P99(ps.Slowdown),
			ParsimonTime: psTime,
			PathP99:      pr.P99(),
			PathTime:     prTime,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-6s %-14s %7s | %9.3f %9s | %9.3f %9s | %9.3f %9s\n",
			m.Name, m.Sizes.Name(), string(m.Oversub),
			row.NS3P99, row.NS3Time.Round(time.Millisecond),
			row.ParsimonP99, row.ParsimonTime.Round(time.Millisecond),
			row.PathP99, row.PathTime.Round(time.Millisecond))
	}
	return rows, nil
}

package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"m3/internal/core"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// SweepPoint is one configuration of a counterfactual sweep: ground-truth
// and m3 p99 slowdowns per output size bucket.
type SweepPoint struct {
	Label     string
	TruthP99  [feature.NumOutputBuckets]float64
	M3P99     [feature.NumOutputBuckets]float64
	TruthTime time.Duration
	M3Time    time.Duration
}

// counterfactualMix is the §5.4 setup: 32-rack topology, WebServer sizes,
// traffic matrix C, 50% max load.
func counterfactualMix(flows int) Mix {
	return Mix{
		Name: "counterfactual", MatrixName: "C", Sizes: workload.WebServer,
		Oversub: topo.Oversub2to1, MaxLoad: 0.5, Burstiness: 1.5, Flows: flows, Seed: 401,
	}
}

func runSweep(ctx context.Context, s Scale, net *model.Net, w io.Writer, title string,
	configs []packetsim.Config, labels []string) ([]SweepPoint, error) {

	pl := core.NewPool(s.Workers)
	defer pl.Close()
	m := counterfactualMix(s.TestFlows)
	ft, flows, err := m.Build()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%s (matrix C, WebServer, 50%% load, %d flows)\n", title, s.TestFlows)
	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	fmt.Fprintf(w, "  %-16s", "config")
	for _, n := range names {
		fmt.Fprintf(w, " | %-13s", n+" gt/m3")
	}
	fmt.Fprintln(w)

	var out []SweepPoint
	for i, cfg := range configs {
		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}
		est := core.NewEstimator(net, core.WithNumPaths(s.Paths),
			core.WithPool(pl), core.WithSeed(402))
		t0 := time.Now()
		mr, err := est.Estimate(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}
		p := SweepPoint{
			Label:     labels[i],
			TruthP99:  gt.P99PerBucket(),
			M3P99:     mr.P99PerBucket(),
			TruthTime: gt.Elapsed,
			M3Time:    time.Since(t0),
		}
		out = append(out, p)
		fmt.Fprintf(w, "  %-16s", p.Label)
		for b := 0; b < feature.NumOutputBuckets; b++ {
			fmt.Fprintf(w, " | %5.2f /%5.2f", p.TruthP99[b], p.M3P99[b])
		}
		fmt.Fprintln(w)
	}
	var gtTotal, m3Total time.Duration
	for _, p := range out {
		gtTotal += p.TruthTime
		m3Total += p.M3Time
	}
	fmt.Fprintf(w, "  sweep wall-clock: full sim %v, m3 %v (%.0fx)\n",
		gtTotal.Round(time.Millisecond), m3Total.Round(time.Millisecond),
		gtTotal.Seconds()/m3Total.Seconds())
	return out, nil
}

// RunFig13 reproduces Fig. 13: sweeping HPCC's initial congestion window and
// predicting the per-bucket p99 effect with m3.
func RunFig13(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]SweepPoint, error) {
	var configs []packetsim.Config
	var labels []string
	for _, iw := range []unit.ByteSize{5 * unit.KB, 10 * unit.KB, 15 * unit.KB,
		20 * unit.KB, 25 * unit.KB, 30 * unit.KB} {
		cfg := packetsim.DefaultConfig()
		cfg.CC = packetsim.HPCC
		cfg.HPCCEta = 0.9
		cfg.InitWindow = iw
		cfg.Buffer = 400 * unit.KB
		cfg.PFC = true
		configs = append(configs, cfg)
		labels = append(labels, fmt.Sprintf("initWnd %v", iw))
	}
	return runSweep(ctx, s, net, w, "Fig 13: HPCC initial-window sweep", configs, labels)
}

// RunFig14 reproduces Fig. 14: sweeping HPCC's eta with a 20KB window.
func RunFig14(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]SweepPoint, error) {
	var configs []packetsim.Config
	var labels []string
	for _, eta := range []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95} {
		cfg := packetsim.DefaultConfig()
		cfg.CC = packetsim.HPCC
		cfg.HPCCEta = eta
		cfg.InitWindow = 20 * unit.KB
		cfg.Buffer = 400 * unit.KB
		cfg.PFC = true
		configs = append(configs, cfg)
		labels = append(labels, fmt.Sprintf("eta %.2f", eta))
	}
	return runSweep(ctx, s, net, w, "Fig 14: HPCC eta sweep", configs, labels)
}

package exp

import (
	"context"
	"fmt"
	"io"

	"m3/internal/feature"
	"m3/internal/flowsim"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/stats"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Fig16Point is one synthetic path scenario's p99 error per estimator.
type Fig16Point struct {
	Hops        int
	FlowSimErr  float64
	NoCtxErr    float64
	M3Err       float64
	PerBucket   [feature.NumOutputBuckets][3]float64 // signed p99 errors per bucket
	BucketValid [feature.NumOutputBuckets]bool
}

// RunFig16 reproduces the component ablation of Fig. 16: on synthetic
// Table 2 scenarios, compare flowSim alone, m3 without background context,
// and full m3 against packet-level ground truth. net and noCtx must share
// training data (train both with TrainedModel-style setups).
func RunFig16(ctx context.Context, s Scale, net, noCtx *model.Net, w io.Writer) ([]Fig16Point, error) {
	root := rng.New(1600)
	var out []Fig16Point
	for i := 0; i < s.Scenarios; i++ {
		r := root.Split(uint64(i))
		hops := []int{2, 4, 6}[i%3]
		numFg := min(s.TestFlows/8, 250)
		spec := workload.SynthSpec{
			Hops:  hops,
			NumFg: numFg,
			// Absolute background volume comparable to the training range.
			BgPerLink:  (100 + 500*r.Float64()) / float64(numFg),
			Sizes:      model.RandomSizeDist(r),
			Burstiness: 1 + r.Float64(),
			MaxLoad:    0.3 + 0.5*r.Float64(),
			Seed:       r.Uint64(),
		}
		cfg := model.RandomNetConfig(r, packetsim.DCTCP)
		syn, err := workload.GenerateSynthetic(spec)
		if err != nil {
			return nil, err
		}
		gt, err := packetsim.RunContext(ctx, syn.Lot.Topology, syn.Flows, cfg)
		if err != nil {
			return nil, err
		}
		fs, err := flowsim.RunContext(ctx, syn.Lot.Topology, syn.Flows)
		if err != nil {
			return nil, err
		}
		var fgSizes []unit.ByteSize
		var fgFS, fgGT []float64
		bgSizes := make([][]unit.ByteSize, hops)
		bgSldn := make([][]float64, hops)
		for j := range syn.Flows {
			f := &syn.Flows[j]
			if syn.IsFg(f.ID) {
				fgSizes = append(fgSizes, f.Size)
				fgFS = append(fgFS, fs.Slowdown[f.ID])
				fgGT = append(fgGT, gt.Slowdown[f.ID])
				continue
			}
			for l := 0; l < hops; l++ {
				for _, lid := range f.Route {
					if lid == syn.Lot.PathLinks[l] {
						bgSizes[l] = append(bgSizes[l], f.Size)
						bgSldn[l] = append(bgSldn[l], fs.Slowdown[f.ID])
						break
					}
				}
			}
		}
		rates := syn.Lot.RouteRates(syn.Lot.PathLinks)
		delays := syn.Lot.RouteDelays(syn.Lot.PathLinks)
		in := model.BuildInputs(fgSizes, fgFS, bgSizes, bgSldn, cfg, rates, delays)
		predFull, err := net.Predict(in)
		if err != nil {
			return nil, err
		}
		predNoCtx, err := noCtx.Predict(in)
		if err != nil {
			return nil, err
		}

		gtMap := feature.BuildOutput(fgSizes, fgGT)
		fsMap := feature.BuildOutput(fgSizes, fgFS)
		pt := Fig16Point{Hops: hops}
		var fsErrs, ncErrs, m3Errs []float64
		for b := 0; b < feature.NumOutputBuckets; b++ {
			if gtMap.Counts[b] == 0 {
				continue
			}
			truth := gtMap.Row(b)[98]
			fsE := stats.RelError(fsMap.Row(b)[98], truth)
			ncE := stats.RelError(predNoCtx[b*100+98], truth)
			m3E := stats.RelError(predFull[b*100+98], truth)
			pt.PerBucket[b] = [3]float64{fsE, ncE, m3E}
			pt.BucketValid[b] = true
			fsErrs = append(fsErrs, abs(fsE))
			ncErrs = append(ncErrs, abs(ncE))
			m3Errs = append(m3Errs, abs(m3E))
		}
		pt.FlowSimErr = stats.Mean(fsErrs)
		pt.NoCtxErr = stats.Mean(ncErrs)
		pt.M3Err = stats.Mean(m3Errs)
		out = append(out, pt)
	}

	var fsAll, ncAll, m3All []float64
	byHops := map[int][3][]float64{}
	for _, p := range out {
		fsAll = append(fsAll, p.FlowSimErr)
		ncAll = append(ncAll, p.NoCtxErr)
		m3All = append(m3All, p.M3Err)
		g := byHops[p.Hops]
		g[0] = append(g[0], p.FlowSimErr)
		g[1] = append(g[1], p.NoCtxErr)
		g[2] = append(g[2], p.M3Err)
		byHops[p.Hops] = g
	}
	fmt.Fprintf(w, "Fig 16: path-level ablation over %d synthetic scenarios (mean |p99 err|)\n", len(out))
	fmt.Fprintf(w, "  all: flowSim %.1f%%, m3 w/o context %.1f%%, m3 %.1f%%\n",
		100*stats.Mean(fsAll), 100*stats.Mean(ncAll), 100*stats.Mean(m3All))
	for _, h := range []int{2, 4, 6} {
		g, ok := byHops[h]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %d-hop: flowSim %.1f%%, m3 w/o context %.1f%%, m3 %.1f%%\n",
			h, 100*stats.Mean(g[0]), 100*stats.Mean(g[1]), 100*stats.Mean(g[2]))
	}
	return out, nil
}

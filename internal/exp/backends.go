package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"m3/internal/core"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/stats"
)

// BackendPoint is one inference backend's row in the float-vs-quantized
// ablation: accuracy against packet-level ground truth, agreement with the
// float reference, and where the time went.
type BackendPoint struct {
	Kind string
	// AbsErrs are |p99 error| vs ground truth, one per scenario.
	AbsErrs []float64
	// DivergeRel are |p99 - p99_float| / p99_float, one per scenario
	// (zero for the float backend itself).
	DivergeRel []float64
	// MeanSec is mean end-to-end estimate wall clock per scenario.
	MeanSec float64
	// PredictSec is mean ML predict-stage time per scenario.
	PredictSec float64
}

// RunBackendAblation runs every registered inference backend over the same
// scenarios, seeds, and path budgets, scoring each against packet-level
// ground truth and against the float reference — the experiment behind the
// README's float-vs-int8 table: quantization should buy latency and memory
// at (near) zero accuracy cost.
func RunBackendAblation(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]BackendPoint, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	root := rng.New(2300)
	type scenario struct {
		mix   Mix
		truth float64
	}
	var scenarios []scenario
	nScen := max(2, s.Scenarios/2)
	for i := 0; i < nScen; i++ {
		m := RandomMix(root.Split(uint64(i)), s.TestFlows, uint64(2300+i))
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, packetsim.DefaultConfig())
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, scenario{m, gt.P99()})
	}

	kinds := model.BackendKinds()
	fmt.Fprintf(w, "Ablation: inference backends (%d scenarios, %v)\n", nScen, kinds)
	// The float backend runs first so every other kind has its reference
	// p99s; BackendKinds is sorted and "net" precedes "net-int8", but order
	// is enforced rather than assumed.
	ordered := make([]string, 0, len(kinds))
	for _, k := range kinds {
		if k == model.KindNet {
			ordered = append(ordered, k)
		}
	}
	for _, k := range kinds {
		if k != model.KindNet {
			ordered = append(ordered, k)
		}
	}
	var floatP99 []float64
	var out []BackendPoint
	for _, kind := range ordered {
		pred, err := model.BuildBackend(kind, net)
		if err != nil {
			return nil, err
		}
		pt := BackendPoint{Kind: kind}
		var wall, predict float64
		for i, sc := range scenarios {
			ft, flows, err := sc.mix.Build()
			if err != nil {
				return nil, err
			}
			est := core.NewEstimator(pred, core.WithNumPaths(200),
				core.WithPool(p), core.WithSeed(uint64(3100+i)))
			t0 := time.Now()
			res, err := est.Estimate(ctx, ft.Topology, flows, packetsim.DefaultConfig())
			if err != nil {
				return nil, err
			}
			wall += time.Since(t0).Seconds()
			predict += res.Stages.Predict.Seconds()
			p99 := res.P99()
			pt.AbsErrs = append(pt.AbsErrs, stats.AbsRelError(p99, sc.truth))
			if kind == model.KindNet {
				floatP99 = append(floatP99, p99)
				pt.DivergeRel = append(pt.DivergeRel, 0)
			} else {
				pt.DivergeRel = append(pt.DivergeRel,
					math.Abs(p99-floatP99[i])/math.Max(floatP99[i], 1))
			}
		}
		pt.MeanSec = wall / float64(nScen)
		pt.PredictSec = predict / float64(nScen)
		out = append(out, pt)
		fmt.Fprintf(w, "  %-9s mean |p99 err| %5.1f%%, vs-float %5.2f%%, predict %6.1fms, total %.2fs\n",
			pt.Kind, 100*stats.Mean(pt.AbsErrs), 100*stats.Mean(pt.DivergeRel),
			1000*pt.PredictSec, pt.MeanSec)
	}
	return out, nil
}

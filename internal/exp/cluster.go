package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/pool"
	"m3/internal/stats"
)

// ClusterSweepRow is one (scenario, threshold) point of the link-clustering
// accuracy/cost sweep recorded in EXPERIMENTS.md: how many links the
// clustered Parsimon decomposition actually simulates, how long the fan-out
// takes relative to simulating every congested link, and how far the p99
// slowdown drifts.
type ClusterSweepRow struct {
	Scenario       string
	Threshold      float64
	LinksTotal     int
	ExactGroups    int
	Clusters       int
	FullP99        float64
	ClusterP99     float64
	RelErr         float64
	FullElapsed    time.Duration
	ClusterElapsed time.Duration
	Speedup        float64
}

// ClusterSweepThresholds are the distance-tier settings the sweep (and the
// pinned accuracy-bound test in internal/parsimon) evaluates; 0 is the
// lossless exact tier.
var ClusterSweepThresholds = []float64{0, 0.25, 1, 4}

// RunClusterSweep measures link clustering on two Table 1 mixes: the
// 4-to-1 oversubscribed Mix 1 and the high-load Mix 3. For each mix it runs
// the unclustered Parsimon decomposition once as the baseline, then the
// clustered path at each threshold, reporting simulated-link counts and p99
// slowdown error.
func RunClusterSweep(ctx context.Context, s Scale, w io.Writer) ([]ClusterSweepRow, error) {
	mixes := Table1Mixes(s.TestFlows)
	cfg := packetsim.DefaultConfig()
	p := pool.New(s.Workers)
	defer p.Close()

	var rows []ClusterSweepRow
	fmt.Fprintf(w, "Link clustering sweep (%d flows per mix)\n", s.TestFlows)
	fmt.Fprintf(w, "  %-8s %9s %8s %8s %8s %9s %8s %8s\n",
		"mix", "threshold", "links", "groups", "sims", "speedup", "p99", "relerr")
	for _, m := range []Mix{mixes[0], mixes[2]} {
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		fullStart := time.Now()
		full, err := parsimon.RunWithOptions(ctx, ft.Topology, flows, cfg, p, parsimon.Options{})
		if err != nil {
			return nil, err
		}
		fullElapsed := time.Since(fullStart)
		fullP99 := stats.P99(full.Slowdown)

		for _, thr := range ClusterSweepThresholds {
			start := time.Now()
			res, err := parsimon.RunWithOptions(ctx, ft.Topology, flows, cfg, p,
				parsimon.Options{Cluster: true, ClusterThreshold: thr})
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			p99 := stats.P99(res.Slowdown)
			row := ClusterSweepRow{
				Scenario:       m.Name,
				Threshold:      thr,
				LinksTotal:     res.LinksTotal,
				ExactGroups:    res.ExactGroups,
				Clusters:       res.Clusters,
				FullP99:        fullP99,
				ClusterP99:     p99,
				RelErr:         abs(p99-fullP99) / fullP99,
				FullElapsed:    fullElapsed,
				ClusterElapsed: elapsed,
				Speedup:        float64(fullElapsed) / float64(elapsed),
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "  %-8s %9.2f %8d %8d %8d %8.2fx %8.4f %7.2f%%\n",
				row.Scenario, row.Threshold, row.LinksTotal, row.ExactGroups,
				row.Clusters, row.Speedup, row.ClusterP99, 100*row.RelErr)
		}
	}
	return rows, nil
}

// Package exp contains the runners that regenerate every table and figure
// of the paper's evaluation (§5) at configurable scale. Each runner prints
// the rows/series the paper reports and returns structured results so tests
// and benchmarks can assert on them.
//
// The paper's absolute scales (10M-flow workloads, 120k training
// simulations, 4xA100 training) are reduced by default; Scale selects the
// reduction. The comparisons the paper makes — who wins, by roughly what
// factor, and in which direction each method errs — are preserved.
package exp

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"

	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/workload"

	"m3/internal/rng"
)

// Scale selects experiment sizes.
type Scale struct {
	// TestFlows is the workload size on the 32-rack topology.
	TestFlows int
	// LargeFlows is the workload size on the 384-rack topology (Table 5).
	LargeFlows int
	// Paths is the number of sampled paths per estimate.
	Paths int
	// Scenarios is the scenario count for multi-scenario sweeps (Fig. 10/11).
	Scenarios int
	// TrainScenarios sizes the synthetic training set.
	TrainScenarios int
	// TrainEpochs is the training epoch count.
	TrainEpochs int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// Quick returns the scale used by unit benchmarks and smoke runs.
func Quick() Scale {
	return Scale{
		TestFlows:      8000,
		LargeFlows:     30000,
		Paths:          150,
		Scenarios:      6,
		TrainScenarios: 60,
		TrainEpochs:    15,
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// Full returns the scale used for the recorded EXPERIMENTS.md numbers.
// (Sized for a single-socket CPU run of the entire suite in under an hour;
// raise the fields for bigger machines.)
func Full() Scale {
	return Scale{
		TestFlows:      12000,
		LargeFlows:     60000,
		Paths:          250,
		Scenarios:      8,
		TrainScenarios: 1000,
		TrainEpochs:    80,
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// Mix is one evaluation scenario (a row of Table 1 / a point of Fig. 10).
type Mix struct {
	Name       string
	MatrixName string
	Sizes      workload.SizeDist
	Oversub    topo.Oversub
	MaxLoad    float64
	Burstiness float64
	Flows      int
	Seed       uint64
}

// Table1Mixes returns the paper's three Table 1 mixes.
func Table1Mixes(flows int) []Mix {
	return []Mix{
		{Name: "Mix 1", MatrixName: "A", Sizes: workload.CacheFollower,
			Oversub: topo.Oversub4to1, MaxLoad: 0.4246, Burstiness: 1.5, Flows: flows, Seed: 101},
		{Name: "Mix 2", MatrixName: "B", Sizes: workload.WebServer,
			Oversub: topo.Oversub1to1, MaxLoad: 0.2846, Burstiness: 1.5, Flows: flows, Seed: 102},
		{Name: "Mix 3", MatrixName: "C", Sizes: workload.WebServer,
			Oversub: topo.Oversub2to1, MaxLoad: 0.7383, Burstiness: 1.5, Flows: flows, Seed: 103},
	}
}

// Build materializes the mix: topology plus calibrated workload.
func (m Mix) Build() (*topo.FatTree, []workload.Flow, error) {
	ft, err := topo.SmallFatTree(m.Oversub)
	if err != nil {
		return nil, nil, err
	}
	mat, err := workload.Matrix(m.MatrixName, ft.Cfg.NumRacks(), rng.New(m.Seed))
	if err != nil {
		return nil, nil, err
	}
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: m.Flows, Sizes: m.Sizes, Matrix: mat,
		Burstiness: m.Burstiness, MaxLoad: m.MaxLoad, Seed: m.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return ft, flows, nil
}

// RandomMix draws a test scenario from the paper's Table 3 axes (DCTCP
// sensitivity study).
func RandomMix(r *rng.RNG, flows int, seed uint64) Mix {
	matrices := []string{"A", "B", "C"}
	dists := []workload.SizeDist{workload.CacheFollower, workload.WebServer, workload.Hadoop}
	oversubs := []topo.Oversub{topo.Oversub1to1, topo.Oversub2to1, topo.Oversub4to1}
	burst := []float64{1, 2}
	return Mix{
		Name:       fmt.Sprintf("rand-%d", seed),
		MatrixName: matrices[r.Intn(len(matrices))],
		Sizes:      dists[r.Intn(len(dists))],
		Oversub:    oversubs[r.Intn(len(oversubs))],
		MaxLoad:    0.26 + 0.57*r.Float64(), // 26% to 83%
		Burstiness: burst[r.Intn(len(burst))],
		Flows:      flows,
		Seed:       seed,
	}
}

// TrainedModel loads the checkpoint at path, or (if absent) generates a
// Table 2 training set and trains a fresh model, saving it to path. ccs
// restricts the protocols in the training set (nil = all four).
func TrainedModel(ctx context.Context, s Scale, path string, log io.Writer, ccs ...packetsim.CCType) (*model.Net, error) {
	if path != "" {
		if net, err := model.LoadFile(path); err == nil {
			fmt.Fprintf(log, "loaded model checkpoint %s (%d params)\n", path, net.NumParams())
			return net, nil
		}
	}
	fmt.Fprintf(log, "training model (%d scenarios, %d epochs)...\n", s.TrainScenarios, s.TrainEpochs)
	samples, err := trainingSet(ctx, s, ccs)
	if err != nil {
		return nil, err
	}
	net, err := model.New(model.DefaultConfig())
	if err != nil {
		return nil, err
	}
	opt := model.DefaultTrainOptions()
	opt.Epochs = s.TrainEpochs
	res, err := net.Train(samples, opt)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(log, "trained: train loss %.3f, val loss %.3f\n", res.TrainLoss, res.ValLoss)
	if path != "" {
		if err := net.SaveFile(path); err != nil {
			return nil, err
		}
		fmt.Fprintf(log, "saved checkpoint to %s\n", path)
	}
	return net, nil
}

// trainingSet builds the combined synthetic + network-derived training set
// (the network-derived samples use ns-3-path ground truth on decomposed real
// workloads, keeping inference in-distribution at this repository's scales).
func trainingSet(ctx context.Context, s Scale, ccs []packetsim.CCType) ([]*model.Sample, error) {
	dc := model.DefaultDataConfig()
	dc.Scenarios = s.TrainScenarios
	dc.Workers = s.Workers
	dc.CCs = ccs
	samples, err := model.Generate(ctx, dc)
	if err != nil {
		return nil, err
	}
	nc := model.DefaultNetworkDataConfig()
	nc.Workloads = max(2, s.TrainScenarios/50)
	nc.Workers = s.Workers
	nc.CCs = ccs
	netSamples, err := model.GenerateFromNetworks(ctx, nc)
	if err != nil {
		return nil, err
	}
	return append(samples, netSamples...), nil
}

// TrainedPair returns a full model and a no-context ablation model trained
// on the same synthetic dataset (used by Fig. 16). Checkpoints are cached at
// fullPath/noCtxPath when non-empty.
func TrainedPair(ctx context.Context, s Scale, fullPath, noCtxPath string, log io.Writer,
	ccs ...packetsim.CCType) (*model.Net, *model.Net, error) {

	var full, noCtx *model.Net
	if fullPath != "" {
		if n, err := model.LoadFile(fullPath); err == nil {
			full = n
		}
	}
	if noCtxPath != "" {
		if n, err := model.LoadFile(noCtxPath); err == nil {
			noCtx = n
		}
	}
	if full != nil && noCtx != nil {
		fmt.Fprintf(log, "loaded cached model pair\n")
		return full, noCtx, nil
	}
	fmt.Fprintf(log, "generating %d training scenarios for model pair...\n", s.TrainScenarios)
	samples, err := trainingSet(ctx, s, ccs)
	if err != nil {
		return nil, nil, err
	}
	opt := model.DefaultTrainOptions()
	opt.Epochs = s.TrainEpochs
	train := func(cfg model.Config, path, name string) (*model.Net, error) {
		net, err := model.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := net.Train(samples, opt)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(log, "trained %s: train loss %.3f, val loss %.3f\n", name, res.TrainLoss, res.ValLoss)
		if path != "" {
			if err := net.SaveFile(path); err != nil {
				return nil, err
			}
		}
		return net, nil
	}
	if full == nil {
		if full, err = train(model.DefaultConfig(), fullPath, "full"); err != nil {
			return nil, nil, err
		}
	}
	if noCtx == nil {
		cfg := model.DefaultConfig()
		cfg.UseContext = false
		if noCtx, err = train(cfg, noCtxPath, "no-context"); err != nil {
			return nil, nil, err
		}
	}
	return full, noCtx, nil
}

// Discard is a convenience io.Writer for silent runs.
var Discard io.Writer = discard{}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// DefaultCheckpoint is where tools cache the all-protocol model.
func DefaultCheckpoint() string {
	if p := os.Getenv("M3_CHECKPOINT"); p != "" {
		return p
	}
	return "testdata/m3-all.ckpt"
}

package exp

import (
	"context"
	"fmt"
	"io"

	"m3/internal/core"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/sampling"
	"m3/internal/stats"
)

// Fig15Result breaks down estimation error by source: the error of the
// ns-3-path decomposition alone, versus m3's total error (decomposition +
// flowSim/ML approximation), versus Parsimon's link-independence assumption —
// per size bucket and per path length, evaluated on the foreground flows of
// sampled paths against the full simulation.
type Fig15Result struct {
	// Err[method][bucket] collects per-path relative errors of mean bucket
	// slowdown. Methods: 0 ns-3-path, 1 m3, 2 Parsimon.
	ErrByBucket [3][feature.NumOutputBuckets][]float64
	ErrByHops   [3]map[int][]float64
}

// Fig15Methods names the indices of Fig15Result.
var Fig15Methods = [3]string{"ns3-path", "m3", "parsimon"}

// RunFig15 reproduces Fig. 15's error breakdown on the small fat-tree.
func RunFig15(ctx context.Context, s Scale, net *model.Net, w io.Writer) (*Fig15Result, error) {
	m := Table1Mixes(s.TestFlows)[2] // the high-load mix stresses all methods
	ft, flows, err := m.Build()
	if err != nil {
		return nil, err
	}
	cfg := packetsim.DefaultConfig()
	gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
	if err != nil {
		return nil, err
	}
	pr, err := parsimon.Run(ctx, ft.Topology, flows, cfg, s.Workers)
	if err != nil {
		return nil, err
	}
	d, err := pathsim.Decompose(ft.Topology, flows)
	if err != nil {
		return nil, err
	}
	sample, err := sampling.Weighted(d.FgWeights(), s.Paths, rng.New(m.Seed))
	if err != nil {
		return nil, err
	}
	distinct, _ := sampling.Dedup(sample)

	res := &Fig15Result{}
	for i := range res.ErrByHops {
		res.ErrByHops[i] = make(map[int][]float64)
	}
	for _, pi := range distinct {
		p := &d.Paths[pi]
		sc, err := d.Scenario(p)
		if err != nil {
			return nil, err
		}
		// ns-3-path per-flow slowdowns.
		np, err := sc.RunPacketContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		// m3 per-bucket predictions.
		fs, err := sc.RunFlowSimContext(ctx)
		if err != nil {
			return nil, err
		}
		in := model.BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, cfg,
			d.T.RouteRates(p.Links), d.T.RouteDelays(p.Links))
		pred, err := net.Predict(in)
		if err != nil {
			return nil, err
		}

		// Group this path's fg flows by bucket, compare mean slowdowns.
		var perBucket [feature.NumOutputBuckets][][2]float64 // (truth, parsimon)
		var npBucket [feature.NumOutputBuckets][]float64
		for j, id := range np.Orig {
			b := feature.BucketOf(np.Sizes[j], feature.OutputBucketBounds)
			perBucket[b] = append(perBucket[b],
				[2]float64{gt.Result.Slowdown[id], pr.Slowdown[id]})
			npBucket[b] = append(npBucket[b], np.Slowdown[j])
		}
		var pathTruth, pathNP, pathM3, pathPS []float64
		for b := 0; b < feature.NumOutputBuckets; b++ {
			if len(perBucket[b]) == 0 {
				continue
			}
			var truth, ps float64
			for _, pair := range perBucket[b] {
				truth += pair[0]
				ps += pair[1]
			}
			truth /= float64(len(perBucket[b]))
			ps /= float64(len(perBucket[b]))
			npMean := stats.Mean(npBucket[b])
			m3Mean := stats.Mean(pred[b*100 : (b+1)*100])
			res.ErrByBucket[0][b] = append(res.ErrByBucket[0][b], stats.RelError(npMean, truth))
			res.ErrByBucket[1][b] = append(res.ErrByBucket[1][b], stats.RelError(m3Mean, truth))
			res.ErrByBucket[2][b] = append(res.ErrByBucket[2][b], stats.RelError(ps, truth))
			pathTruth = append(pathTruth, truth)
			pathNP = append(pathNP, npMean)
			pathM3 = append(pathM3, m3Mean)
			pathPS = append(pathPS, ps)
		}
		if len(pathTruth) > 0 {
			h := p.Hops()
			res.ErrByHops[0][h] = append(res.ErrByHops[0][h],
				stats.RelError(stats.Mean(pathNP), stats.Mean(pathTruth)))
			res.ErrByHops[1][h] = append(res.ErrByHops[1][h],
				stats.RelError(stats.Mean(pathM3), stats.Mean(pathTruth)))
			res.ErrByHops[2][h] = append(res.ErrByHops[2][h],
				stats.RelError(stats.Mean(pathPS), stats.Mean(pathTruth)))
		}
	}

	names := []string{"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"}
	fmt.Fprintf(w, "Fig 15: per-path error breakdown (%s, %d sampled paths)\n", m.Name, len(distinct))
	fmt.Fprintf(w, "  by size bucket (median |err|):\n")
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if len(res.ErrByBucket[0][b]) == 0 {
			continue
		}
		fmt.Fprintf(w, "    %-12s", names[b])
		for mi := range Fig15Methods {
			absErrs := make([]float64, len(res.ErrByBucket[mi][b]))
			for i, e := range res.ErrByBucket[mi][b] {
				absErrs[i] = abs(e)
			}
			fmt.Fprintf(w, " %s %5.1f%% |", Fig15Methods[mi], 100*stats.Median(absErrs))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  by path length (median |err|):\n")
	for _, h := range []int{2, 4, 6} {
		if len(res.ErrByHops[0][h]) == 0 {
			continue
		}
		fmt.Fprintf(w, "    %d-hop      ", h)
		for mi := range Fig15Methods {
			absErrs := make([]float64, len(res.ErrByHops[mi][h]))
			for i, e := range res.ErrByHops[mi][h] {
				absErrs[i] = abs(e)
			}
			fmt.Fprintf(w, " %s %5.1f%% |", Fig15Methods[mi], 100*stats.Median(absErrs))
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

package exp

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
)

// microScale keeps the experiment smoke tests fast.
func microScale() Scale {
	return Scale{
		TestFlows:      2500,
		LargeFlows:     6000,
		Paths:          60,
		Scenarios:      2,
		TrainScenarios: 12,
		TrainEpochs:    3,
		Workers:        8,
	}
}

func microModel(t *testing.T) *model.Net {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 32
	net, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dc := model.DefaultDataConfig()
	dc.Scenarios = 10
	dc.Workers = 8
	dc.CCs = []packetsim.CCType{packetsim.DCTCP}
	samples, err := model.Generate(context.Background(), dc)
	if err != nil {
		t.Fatal(err)
	}
	opt := model.DefaultTrainOptions()
	opt.Epochs = 3
	if _, err := net.Train(samples, opt); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestScalePresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.TestFlows >= f.TestFlows || q.Paths >= f.Paths {
		t.Error("quick scale should be smaller than full")
	}
}

func TestMixBuild(t *testing.T) {
	for _, m := range Table1Mixes(500) {
		ft, flows, err := m.Build()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(flows) != 500 || ft == nil {
			t.Fatalf("%s: bad build", m.Name)
		}
	}
}

func TestRandomMixAxes(t *testing.T) {
	r := rng.New(77)
	seenMat := map[string]bool{}
	for i := 0; i < 40; i++ {
		m := RandomMix(r, 100, uint64(i))
		seenMat[m.MatrixName] = true
		if m.MaxLoad < 0.26 || m.MaxLoad > 0.83 {
			t.Fatalf("load %v out of Table 3 range", m.MaxLoad)
		}
	}
	if len(seenMat) < 3 {
		t.Error("random mixes did not cover all matrices")
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	var buf bytes.Buffer
	rows, err := RunTable1(context.Background(), microScale(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if row.NS3P99 < 1 || math.IsNaN(row.NS3P99) {
			t.Errorf("%s: ns3 p99 %v", row.Mix.Name, row.NS3P99)
		}
		if row.ParsimonP99 < 1 || row.PathP99 < 1 {
			t.Errorf("%s: baseline p99s %v/%v", row.Mix.Name, row.ParsimonP99, row.PathP99)
		}
	}
	if !strings.Contains(buf.String(), "Mix 3") {
		t.Error("output missing Mix 3 row")
	}
}

func TestFig3Quick(t *testing.T) {
	var buf bytes.Buffer
	cells, err := RunFig3(context.Background(), microScale(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("%d cells, want 9", len(cells))
	}
	// Load effect: p99 of the largest occupied bucket grows with load.
	tailOf := func(c Fig3Cell) float64 {
		for b := feature.NumFeatureBuckets - 1; b >= 0; b-- {
			if c.Map.Counts[b] > 0 {
				return c.Map.Row(b)[98]
			}
		}
		return math.NaN()
	}
	lo, hi := tailOf(cells[3]), tailOf(cells[5]) // 20% vs 80% load
	if !(hi > lo) {
		t.Errorf("80%% load tail (%v) not above 20%% load tail (%v)", hi, lo)
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	s := microScale()
	s.Scenarios = 2
	var buf bytes.Buffer
	out, err := RunFig5(context.Background(), s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d scenarios", len(out))
	}
	for _, r := range out {
		if r.ActivePaths <= 0 {
			t.Error("no active paths")
		}
		// Sampling error should shrink (weakly) from k=50 to k=1000.
		e50 := mean(r.ErrByK[50])
		e1000 := mean(r.ErrByK[1000])
		if e1000 > e50*1.5 {
			t.Errorf("sampling error grew with k: k=50 %.3f, k=1000 %.3f", e50, e1000)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	net := microModel(t)
	var buf bytes.Buffer
	res, err := RunFig6(context.Background(), microScale(), net, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// flowSim must underestimate the small-flow tail; m3 output is >= 1.
	for b := 0; b < feature.NumOutputBuckets; b++ {
		for _, v := range res.M3[b] {
			if v < 1 {
				t.Fatalf("m3 prediction below 1: %v", v)
			}
		}
	}
}

func TestSensitivityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	net := microModel(t)
	s := microScale()
	var buf bytes.Buffer
	pts, err := RunFig10(context.Background(), s, net, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != s.Scenarios {
		t.Fatalf("%d points", len(pts))
	}
	RunFig11(pts, &buf)
	out := buf.String()
	for _, want := range []string{"10a", "10b", "10c", "10d", "traffic matrix"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig16Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	dir := t.TempDir()
	s := microScale()
	full, noCtx, err := TrainedPair(context.Background(), s, filepath.Join(dir, "f.ckpt"), filepath.Join(dir, "n.ckpt"),
		Discard, packetsim.DCTCP)
	if err != nil {
		t.Fatal(err)
	}
	// Cached round trip.
	full2, _, err := TrainedPair(context.Background(), s, filepath.Join(dir, "f.ckpt"), filepath.Join(dir, "n.ckpt"), Discard)
	if err != nil {
		t.Fatal(err)
	}
	if full2.NumParams() != full.NumParams() {
		t.Error("cache round trip changed model")
	}
	var buf bytes.Buffer
	pts, err := RunFig16(context.Background(), s, full, noCtx, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != s.Scenarios {
		t.Fatalf("%d ablation points", len(pts))
	}
}

func TestFig18(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig18(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"matrix A", "matrix B", "matrix C", "WebServer", "Hadoop"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig18 output missing %q", want)
		}
	}
}

func TestTrainedModelCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	s := microScale()
	var log bytes.Buffer
	a, err := TrainedModel(context.Background(), s, path, &log, packetsim.DCTCP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainedModel(context.Background(), s, path, &log)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumParams() != b.NumParams() {
		t.Error("cached model differs")
	}
	if !strings.Contains(log.String(), "loaded model checkpoint") {
		t.Error("second call did not load from cache")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestAblationKnockoutQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	net := microModel(t)
	s := microScale()
	s.Scenarios = 3
	var buf bytes.Buffer
	out, err := RunAblationKnockout(context.Background(), s, net, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("%d variants", len(out))
	}
	for _, k := range out {
		if len(k.AbsErrs) == 0 {
			t.Errorf("%s: no errors collected", k.Variant)
		}
	}
	if !strings.Contains(buf.String(), "knockout") {
		t.Error("missing output")
	}
}

func TestAblationPathsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	net := microModel(t)
	s := microScale()
	var buf bytes.Buffer
	out, err := RunAblationPaths(context.Background(), s, net, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("%d budgets", len(out))
	}
	// runtime should grow with budget
	if out[len(out)-1].MeanSec < out[0].MeanSec*0.5 {
		t.Error("500-path runtime implausibly below 25-path runtime")
	}
}

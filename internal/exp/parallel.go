package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"m3/internal/core"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
)

// ParallelismPoint is one (backend, parallelism) cell of the sharded-GEMM
// sweep: end-to-end latency, the predict stage's wall-clock extent, the
// featurize/predict overlap achieved by the streamed pipeline, and whether
// the estimate stayed bit-identical to the serial run (it must — sharding
// only splits output rows, never reorders a row's accumulation).
type ParallelismPoint struct {
	Kind string
	Par  int
	// MeanSec is the mean end-to-end estimate wall clock per scenario.
	MeanSec float64
	// PredictWallSec is the mean predict-stage wall-clock extent.
	PredictWallSec float64
	// OverlapRatio is the mean streamed-pipeline overlap ratio.
	OverlapRatio float64
	// Identical reports bitwise p99 equality with this backend's Par=1 run.
	Identical bool
}

// RunParallelismSweep sweeps the intra-batch GEMM parallelism (1, 2, 4
// output-row shards) across every registered backend under the streamed
// pipeline, timing each cell and checking the bit-identity contract. On a
// single-core host the sharded cells measure overhead, not speedup; the
// sweep's invariant column is meaningful everywhere.
func RunParallelismSweep(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]ParallelismPoint, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	root := rng.New(5900)
	var mixes []Mix
	nScen := max(2, s.Scenarios/2)
	for i := 0; i < nScen; i++ {
		mixes = append(mixes, RandomMix(root.Split(uint64(i)), s.TestFlows, uint64(5900+i)))
	}
	pars := []int{1, 2, 4}
	fmt.Fprintf(w, "Sweep: predict parallelism %v x %v (%d scenarios, streamed pipeline)\n",
		pars, model.BackendKinds(), nScen)
	var out []ParallelismPoint
	for _, kind := range model.BackendKinds() {
		pred, err := model.BuildBackend(kind, net)
		if err != nil {
			return nil, err
		}
		var serialP99 []float64
		for _, par := range pars {
			model.SetPredictParallelism(pred, par)
			pt := ParallelismPoint{Kind: kind, Par: par, Identical: true}
			var wall, predictWall, overlap float64
			for i, m := range mixes {
				ft, flows, err := m.Build()
				if err != nil {
					return nil, err
				}
				est := core.NewEstimator(pred, core.WithNumPaths(200),
					core.WithPool(p), core.WithSeed(uint64(6100+i)))
				t0 := time.Now()
				res, err := est.Estimate(ctx, ft.Topology, flows, packetsim.DefaultConfig())
				if err != nil {
					return nil, err
				}
				wall += time.Since(t0).Seconds()
				predictWall += res.Stages.PredictWall.Seconds()
				overlap += res.OverlapRatio()
				p99 := res.P99()
				if par == 1 {
					serialP99 = append(serialP99, p99)
				} else if math.Float64bits(p99) != math.Float64bits(serialP99[i]) {
					pt.Identical = false
				}
			}
			pt.MeanSec = wall / float64(nScen)
			pt.PredictWallSec = predictWall / float64(nScen)
			pt.OverlapRatio = overlap / float64(nScen)
			out = append(out, pt)
			fmt.Fprintf(w, "  %-9s par=%d  total %6.3fs, predict wall %6.1fms, overlap %4.2f, bit-identical %v\n",
				pt.Kind, pt.Par, pt.MeanSec, 1000*pt.PredictWallSec, pt.OverlapRatio, pt.Identical)
			if !pt.Identical {
				return out, fmt.Errorf("exp: %s par=%d diverged from serial (bit-identity contract broken)", kind, par)
			}
		}
	}
	return out, nil
}

package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"m3/internal/core"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/rng"
	"m3/internal/stats"
)

// SensitivityPoint is one random DCTCP scenario's outcome for m3 and
// Parsimon against ground truth (the data behind Fig. 10 and Fig. 11).
type SensitivityPoint struct {
	Mix          Mix
	TruthP99     float64
	M3P99        float64
	ParsimonP99  float64
	M3Err        float64 // signed relative p99 error
	ParsimonErr  float64
	TruthTime    time.Duration
	M3Time       time.Duration
	ParsimonTime time.Duration
}

// RunSensitivity executes the paper's §5.2 study: random scenarios from the
// Table 3 axes with DCTCP, comparing m3 and Parsimon to the full packet
// simulation.
func RunSensitivity(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]SensitivityPoint, error) {
	p := core.NewPool(s.Workers)
	defer p.Close()
	root := rng.New(1010)
	points := make([]SensitivityPoint, 0, s.Scenarios)
	for i := 0; i < s.Scenarios; i++ {
		m := RandomMix(root.Split(uint64(i)), s.TestFlows, uint64(300+i))
		ft, flows, err := m.Build()
		if err != nil {
			return nil, err
		}
		cfg := packetsim.DefaultConfig() // DCTCP (Parsimon supports DCTCP only)

		gt, err := core.RunGroundTruth(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}

		est := core.NewEstimator(net, core.WithNumPaths(s.Paths),
			core.WithPool(p), core.WithSeed(m.Seed))
		t0 := time.Now()
		mr, err := est.Estimate(ctx, ft.Topology, flows, cfg)
		if err != nil {
			return nil, err
		}
		m3Time := time.Since(t0)

		t0 = time.Now()
		pr, err := parsimon.RunWithPool(ctx, ft.Topology, flows, cfg, p)
		if err != nil {
			return nil, err
		}
		psTime := time.Since(t0)
		psP99 := stats.P99(pr.Slowdown)

		pt := SensitivityPoint{
			Mix: m, TruthP99: gt.P99(), M3P99: mr.P99(), ParsimonP99: psP99,
			M3Err:       stats.RelError(mr.P99(), gt.P99()),
			ParsimonErr: stats.RelError(psP99, gt.P99()),
			TruthTime:   gt.Elapsed, M3Time: m3Time, ParsimonTime: psTime,
		}
		points = append(points, pt)
		fmt.Fprintf(w, "  scenario %2d (%s/%s/%s load %.0f%% sigma %.0f): gt %.2f, m3 %.2f (%+.1f%%), parsimon %.2f (%+.1f%%)\n",
			i, pt.Mix.MatrixName, pt.Mix.Sizes.Name(), pt.Mix.Oversub, 100*pt.Mix.MaxLoad,
			pt.Mix.Burstiness, pt.TruthP99, pt.M3P99, 100*pt.M3Err, pt.ParsimonP99, 100*pt.ParsimonErr)
	}
	return points, nil
}

// RunFig10 formats the sensitivity study as Fig. 10: error distribution,
// error vs load, runtime distribution, and runtime vs workload.
func RunFig10(ctx context.Context, s Scale, net *model.Net, w io.Writer) ([]SensitivityPoint, error) {
	fmt.Fprintf(w, "Fig 10: m3 vs Parsimon across %d random DCTCP scenarios (%d flows each)\n",
		s.Scenarios, s.TestFlows)
	points, err := RunSensitivity(ctx, s, net, w)
	if err != nil {
		return nil, err
	}
	var m3Abs, psAbs, m3T, psT []float64
	for _, p := range points {
		m3Abs = append(m3Abs, abs(p.M3Err))
		psAbs = append(psAbs, abs(p.ParsimonErr))
		m3T = append(m3T, p.M3Time.Seconds())
		psT = append(psT, p.ParsimonTime.Seconds())
	}
	fmt.Fprintf(w, "  10a |p99 err|: m3 mean %.1f%% max %.1f%% | parsimon mean %.1f%% max %.1f%%\n",
		100*stats.Mean(m3Abs), 100*stats.Max(m3Abs),
		100*stats.Mean(psAbs), 100*stats.Max(psAbs))

	// 10b: median error by load bucket.
	fmt.Fprintf(w, "  10b median |p99 err| by max load:\n")
	for _, band := range [][2]float64{{0.2, 0.4}, {0.4, 0.6}, {0.6, 0.85}} {
		var m3B, psB []float64
		for _, p := range points {
			if p.Mix.MaxLoad >= band[0] && p.Mix.MaxLoad < band[1] {
				m3B = append(m3B, abs(p.M3Err))
				psB = append(psB, abs(p.ParsimonErr))
			}
		}
		if len(m3B) == 0 {
			continue
		}
		fmt.Fprintf(w, "    load %d-%d%%: m3 %.1f%%, parsimon %.1f%% (n=%d)\n",
			int(100*band[0]), int(100*band[1]),
			100*stats.Median(m3B), 100*stats.Median(psB), len(m3B))
	}

	fmt.Fprintf(w, "  10c runtime: m3 mean %.2fs | parsimon mean %.2fs (speedup %.1fx)\n",
		stats.Mean(m3T), stats.Mean(psT), stats.Mean(psT)/stats.Mean(m3T))

	// 10d: runtime grouped by size distribution.
	fmt.Fprintf(w, "  10d mean runtime by workload:\n")
	for _, name := range []string{"CacheFollower", "WebServer", "Hadoop"} {
		var m3B, psB []float64
		for _, p := range points {
			if p.Mix.Sizes.Name() == name {
				m3B = append(m3B, p.M3Time.Seconds())
				psB = append(psB, p.ParsimonTime.Seconds())
			}
		}
		if len(m3B) == 0 {
			continue
		}
		fmt.Fprintf(w, "    %-14s m3 %.2fs, parsimon %.2fs (n=%d)\n",
			name, stats.Mean(m3B), stats.Mean(psB), len(m3B))
	}
	return points, nil
}

// RunFig11 groups the sensitivity errors by workload axis (Fig. 11's
// boxplots).
func RunFig11(points []SensitivityPoint, w io.Writer) {
	fmt.Fprintf(w, "Fig 11: p99 error sensitivity by workload parameter\n")
	group := func(title string, key func(SensitivityPoint) string) {
		byKey := map[string][]SensitivityPoint{}
		var keys []string
		for _, p := range points {
			k := key(p)
			if _, ok := byKey[k]; !ok {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], p)
		}
		fmt.Fprintf(w, "  %s:\n", title)
		for _, k := range keys {
			var m3E, psE []float64
			for _, p := range byKey[k] {
				m3E = append(m3E, p.M3Err)
				psE = append(psE, p.ParsimonErr)
			}
			sm, sp := stats.Summarize(m3E), stats.Summarize(psE)
			fmt.Fprintf(w, "    %-14s m3 med %+5.1f%% [%+5.1f,%+5.1f] | parsimon med %+6.1f%% [%+6.1f,%+6.1f] (n=%d)\n",
				k, 100*sm.Median, 100*sm.P25, 100*sm.P75,
				100*sp.Median, 100*sp.P25, 100*sp.P75, len(m3E))
		}
	}
	group("traffic matrix", func(p SensitivityPoint) string { return p.Mix.MatrixName })
	group("size distribution", func(p SensitivityPoint) string { return p.Mix.Sizes.Name() })
	group("oversubscription", func(p SensitivityPoint) string { return string(p.Mix.Oversub) })
	group("burstiness", func(p SensitivityPoint) string {
		return fmt.Sprintf("sigma=%.0f", p.Mix.Burstiness)
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

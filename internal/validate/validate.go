// Package validate provides the typed, field-naming validation error used at
// every API boundary of the estimation stack: topology and workload
// construction, simulator configuration, and the serving layer's request
// payloads. Handlers map it to 4xx responses with errors.As, so malformed
// user input is rejected with a precise field reference instead of reaching
// (and panicking) the simulation layers.
package validate

import (
	"errors"
	"fmt"
)

// Error reports one invalid field at an API boundary.
type Error struct {
	// Scope names the package or payload that rejected the input
	// ("topo", "packetsim", "serve", ...).
	Scope string
	// Field is the offending field, as a dotted/indexed path into the
	// rejected value ("Links[3].Reverse", "spec.num_flows", ...).
	Field string
	// Msg says what about the field was invalid.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Scope + ": " + e.Field + ": " + e.Msg }

// Errf builds an *Error with a formatted message.
func Errf(scope, field, format string, args ...any) *Error {
	return &Error{Scope: scope, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// IsValidation reports whether err is (or wraps) a validation *Error, so
// transport layers can classify it as a client error.
func IsValidation(err error) bool {
	var v *Error
	return errors.As(err, &v)
}

package ml

import (
	"fmt"
	"math"

	"m3/internal/rng"
)

// SeqLinear applies a Linear map independently at every sequence position,
// caching all inputs for backward.
type SeqLinear struct {
	W  *Param // Out x In
	B  *Param // 1 x Out
	xs [][]float64
}

// NewSeqLinear builds an In -> Out per-position layer.
func NewSeqLinear(name string, in, out int, r *rng.RNG) *SeqLinear {
	return &SeqLinear{
		W: NewParam(name+".w", out, in, r),
		B: NewParamConst(name+".b", 1, out, 0),
	}
}

// Params returns the trainable parameters.
func (l *SeqLinear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward maps every position.
func (l *SeqLinear) Forward(xs [][]float64) [][]float64 {
	l.xs = xs
	return l.Apply(xs)
}

// Apply maps every position without caching, safe for concurrent use.
func (l *SeqLinear) Apply(xs [][]float64) [][]float64 {
	ys := make([][]float64, len(xs))
	for t, x := range xs {
		y := make([]float64, l.W.Rows)
		for o := 0; o < l.W.Rows; o++ {
			row := l.W.W[o*l.W.Cols : (o+1)*l.W.Cols]
			s := l.B.W[o]
			for i, xi := range x {
				s += row[i] * xi
			}
			y[o] = s
		}
		ys[t] = y
	}
	return ys
}

// Backward accumulates grads and returns per-position dx.
func (l *SeqLinear) Backward(dys [][]float64) [][]float64 {
	dxs := make([][]float64, len(dys))
	for t, dy := range dys {
		x := l.xs[t]
		dx := make([]float64, l.W.Cols)
		for o := 0; o < l.W.Rows; o++ {
			g := dy[o]
			if g == 0 {
				continue
			}
			row := l.W.W[o*l.W.Cols : (o+1)*l.W.Cols]
			grow := l.W.G[o*l.W.Cols : (o+1)*l.W.Cols]
			for i := range dx {
				grow[i] += g * x[i]
				dx[i] += g * row[i]
			}
			l.B.G[o] += g
		}
		dxs[t] = dx
	}
	return dxs
}

// SeqRMSNorm normalizes every position independently.
type SeqRMSNorm struct {
	Gain *Param
	xs   [][]float64
	invs []float64
}

// NewSeqRMSNorm builds a per-position RMSNorm.
func NewSeqRMSNorm(name string, dim int) *SeqRMSNorm {
	return &SeqRMSNorm{Gain: NewParamConst(name+".gain", 1, dim, 1)}
}

// Params returns the trainable gain.
func (n *SeqRMSNorm) Params() []*Param { return []*Param{n.Gain} }

// Forward normalizes each position.
func (n *SeqRMSNorm) Forward(xs [][]float64) [][]float64 {
	n.xs = xs
	n.invs = make([]float64, len(xs))
	ys := make([][]float64, len(xs))
	for t, x := range xs {
		y, inv := rmsApply(x, n.Gain.W)
		n.invs[t] = inv
		ys[t] = y
	}
	return ys
}

// Apply normalizes each position without caching, safe for concurrent use.
func (n *SeqRMSNorm) Apply(xs [][]float64) [][]float64 {
	ys := make([][]float64, len(xs))
	for t, x := range xs {
		ys[t], _ = rmsApply(x, n.Gain.W)
	}
	return ys
}

// Backward accumulates dGain and returns per-position dx.
func (n *SeqRMSNorm) Backward(dys [][]float64) [][]float64 {
	dxs := make([][]float64, len(dys))
	for t, dy := range dys {
		x := n.xs[t]
		inv := n.invs[t]
		d := len(x)
		var dot float64
		for i := 0; i < d; i++ {
			n.Gain.G[i] += dy[i] * x[i] * inv
			dot += dy[i] * n.Gain.W[i] * x[i]
		}
		inv3 := inv * inv * inv
		dx := make([]float64, d)
		for j := 0; j < d; j++ {
			dx[j] = n.Gain.W[j]*inv*dy[j] - inv3/float64(d)*x[j]*dot
		}
		dxs[t] = dx
	}
	return dxs
}

// SeqSwiGLU applies the gated feed-forward at every position.
type SeqSwiGLU struct {
	W1, W3, W2 *SeqLinear
	us, gs     [][]float64
}

// NewSeqSwiGLU builds a per-position dim -> hidden -> dim feed-forward.
func NewSeqSwiGLU(name string, dim, hidden int, r *rng.RNG) *SeqSwiGLU {
	return &SeqSwiGLU{
		W1: NewSeqLinear(name+".w1", dim, hidden, r),
		W3: NewSeqLinear(name+".w3", dim, hidden, r),
		W2: NewSeqLinear(name+".w2", hidden, dim, r),
	}
}

// Params returns all trainable parameters.
func (s *SeqSwiGLU) Params() []*Param {
	ps := s.W1.Params()
	ps = append(ps, s.W3.Params()...)
	ps = append(ps, s.W2.Params()...)
	return ps
}

// Forward applies the gate at each position.
func (s *SeqSwiGLU) Forward(xs [][]float64) [][]float64 {
	s.us = s.W1.Forward(xs)
	s.gs = s.W3.Forward(xs)
	hs := make([][]float64, len(xs))
	for t := range xs {
		h := make([]float64, len(s.us[t]))
		for i := range h {
			h[i] = s.us[t][i] * silu(s.gs[t][i])
		}
		hs[t] = h
	}
	return s.W2.Forward(hs)
}

// Apply runs the gate at each position without caching, safe for
// concurrent use.
func (s *SeqSwiGLU) Apply(xs [][]float64) [][]float64 {
	us := s.W1.Apply(xs)
	gs := s.W3.Apply(xs)
	hs := make([][]float64, len(xs))
	for t := range xs {
		h := make([]float64, len(us[t]))
		for i := range h {
			h[i] = us[t][i] * silu(gs[t][i])
		}
		hs[t] = h
	}
	return s.W2.Apply(hs)
}

// Backward propagates through the gate at each position.
func (s *SeqSwiGLU) Backward(dys [][]float64) [][]float64 {
	dhs := s.W2.Backward(dys)
	dus := make([][]float64, len(dhs))
	dgs := make([][]float64, len(dhs))
	for t, dh := range dhs {
		du := make([]float64, len(dh))
		dg := make([]float64, len(dh))
		for i := range dh {
			du[i] = dh[i] * silu(s.gs[t][i])
			dg[i] = dh[i] * s.us[t][i] * siluGrad(s.gs[t][i])
		}
		dus[t], dgs[t] = du, dg
	}
	dx1 := s.W1.Backward(dus)
	dx3 := s.W3.Backward(dgs)
	for t := range dx1 {
		for i := range dx1[t] {
			dx1[t][i] += dx3[t][i]
		}
	}
	return dx1
}

// MHA is bidirectional multi-head self-attention. The m3 encoder attends
// over per-hop background feature maps, so there is no causal mask.
type MHA struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *SeqLinear
	// caches
	q, k, v [][]float64
	att     [][][]float64 // head -> i -> j
}

// NewMHA builds attention with the given model dim and head count
// (dim must be divisible by heads).
func NewMHA(name string, dim, heads int, r *rng.RNG) (*MHA, error) {
	if heads <= 0 || dim%heads != 0 {
		return nil, fmt.Errorf("ml: dim %d not divisible by heads %d", dim, heads)
	}
	return &MHA{
		Dim: dim, Heads: heads,
		Wq: NewSeqLinear(name+".wq", dim, dim, r),
		Wk: NewSeqLinear(name+".wk", dim, dim, r),
		Wv: NewSeqLinear(name+".wv", dim, dim, r),
		Wo: NewSeqLinear(name+".wo", dim, dim, r),
	}, nil
}

// Params returns all trainable parameters.
func (m *MHA) Params() []*Param {
	ps := m.Wq.Params()
	ps = append(ps, m.Wk.Params()...)
	ps = append(ps, m.Wv.Params()...)
	ps = append(ps, m.Wo.Params()...)
	return ps
}

// Forward computes self-attention over the sequence.
func (m *MHA) Forward(xs [][]float64) [][]float64 {
	m.q = m.Wq.Forward(xs)
	m.k = m.Wk.Forward(xs)
	m.v = m.Wv.Forward(xs)
	out, att := attend(m.q, m.k, m.v, m.Dim, m.Heads)
	m.att = att
	return m.Wo.Forward(out)
}

// Apply computes self-attention without caching, safe for concurrent use.
func (m *MHA) Apply(xs [][]float64) [][]float64 {
	q := m.Wq.Apply(xs)
	k := m.Wk.Apply(xs)
	v := m.Wv.Apply(xs)
	out, _ := attend(q, k, v, m.Dim, m.Heads)
	return m.Wo.Apply(out)
}

// attend computes multi-head softmax attention over projected q/k/v and
// returns the mixed values plus the attention weights (head -> i -> j).
func attend(q, k, v [][]float64, dim, heads int) ([][]float64, [][][]float64) {
	n := len(q)
	dh := dim / heads
	scale := 1 / math.Sqrt(float64(dh))
	att := make([][][]float64, heads)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for h := 0; h < heads; h++ {
		lo := h * dh
		att[h] = make([][]float64, n)
		for i := 0; i < n; i++ {
			scores := make([]float64, n)
			maxS := math.Inf(-1)
			for j := 0; j < n; j++ {
				var s float64
				for d := 0; d < dh; d++ {
					s += q[i][lo+d] * k[j][lo+d]
				}
				scores[j] = s * scale
				if scores[j] > maxS {
					maxS = scores[j]
				}
			}
			var sum float64
			for j := range scores {
				scores[j] = math.Exp(scores[j] - maxS)
				sum += scores[j]
			}
			for j := range scores {
				scores[j] /= sum
			}
			att[h][i] = scores
			for j := 0; j < n; j++ {
				a := scores[j]
				for d := 0; d < dh; d++ {
					out[i][lo+d] += a * v[j][lo+d]
				}
			}
		}
	}
	return out, att
}

// Backward propagates through attention and returns per-position dx.
func (m *MHA) Backward(dys [][]float64) [][]float64 {
	n := len(dys)
	dh := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dh))
	do := m.Wo.Backward(dys)
	dq := zeros2(n, m.Dim)
	dk := zeros2(n, m.Dim)
	dv := zeros2(n, m.Dim)
	for h := 0; h < m.Heads; h++ {
		lo := h * dh
		for i := 0; i < n; i++ {
			a := m.att[h][i]
			da := make([]float64, n)
			for j := 0; j < n; j++ {
				var s float64
				for d := 0; d < dh; d++ {
					s += do[i][lo+d] * m.v[j][lo+d]
					dv[j][lo+d] += a[j] * do[i][lo+d]
				}
				da[j] = s
			}
			// softmax backward: ds_j = a_j (da_j - sum_j' a_j' da_j')
			var dot float64
			for j := 0; j < n; j++ {
				dot += a[j] * da[j]
			}
			for j := 0; j < n; j++ {
				ds := a[j] * (da[j] - dot) * scale
				for d := 0; d < dh; d++ {
					dq[i][lo+d] += ds * m.k[j][lo+d]
					dk[j][lo+d] += ds * m.q[i][lo+d]
				}
			}
		}
	}
	dxq := m.Wq.Backward(dq)
	dxk := m.Wk.Backward(dk)
	dxv := m.Wv.Backward(dv)
	for t := range dxq {
		for i := range dxq[t] {
			dxq[t][i] += dxk[t][i] + dxv[t][i]
		}
	}
	return dxq
}

func zeros2(n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	return out
}

// Block is one pre-norm transformer block: x + MHA(norm(x)), then
// h + FFN(norm(h)).
type Block struct {
	N1   *SeqRMSNorm
	Attn *MHA
	N2   *SeqRMSNorm
	FFN  *SeqSwiGLU
}

// NewBlock builds a transformer block with FFN hidden = 8/3 * dim (Llama
// convention, rounded).
func NewBlock(name string, dim, heads int, r *rng.RNG) (*Block, error) {
	attn, err := NewMHA(name+".attn", dim, heads, r)
	if err != nil {
		return nil, err
	}
	hidden := (dim*8/3 + 7) / 8 * 8
	return &Block{
		N1:   NewSeqRMSNorm(name+".n1", dim),
		Attn: attn,
		N2:   NewSeqRMSNorm(name+".n2", dim),
		FFN:  NewSeqSwiGLU(name+".ffn", dim, hidden, r),
	}, nil
}

// Params returns all trainable parameters.
func (b *Block) Params() []*Param {
	ps := b.N1.Params()
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.N2.Params()...)
	ps = append(ps, b.FFN.Params()...)
	return ps
}

// Forward runs the block.
func (b *Block) Forward(xs [][]float64) [][]float64 {
	a := b.Attn.Forward(b.N1.Forward(xs))
	hs := addSeq(xs, a)
	f := b.FFN.Forward(b.N2.Forward(hs))
	return addSeq(hs, f)
}

// Apply runs the block without caching, safe for concurrent use.
func (b *Block) Apply(xs [][]float64) [][]float64 {
	a := b.Attn.Apply(b.N1.Apply(xs))
	hs := addSeq(xs, a)
	f := b.FFN.Apply(b.N2.Apply(hs))
	return addSeq(hs, f)
}

// addSeq returns the position-wise sum of two equal-shape sequences.
func addSeq(xs, ys [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for t := range xs {
		s := make([]float64, len(xs[t]))
		for i := range s {
			s[i] = xs[t][i] + ys[t][i]
		}
		out[t] = s
	}
	return out
}

// Backward runs the block in reverse.
func (b *Block) Backward(dys [][]float64) [][]float64 {
	df := b.N2.Backward(b.FFN.Backward(dys))
	dhs := make([][]float64, len(dys))
	for t := range dys {
		dh := make([]float64, len(dys[t]))
		for i := range dh {
			dh[i] = dys[t][i] + df[t][i]
		}
		dhs[t] = dh
	}
	da := b.N1.Backward(b.Attn.Backward(dhs))
	dxs := make([][]float64, len(dhs))
	for t := range dhs {
		dx := make([]float64, len(dhs[t]))
		for i := range dx {
			dx[i] = dhs[t][i] + da[t][i]
		}
		dxs[t] = dx
	}
	return dxs
}

// Encoder is the m3 background-context encoder: a linear embedding of each
// hop's feature map, learned positional embeddings, transformer blocks, a
// final norm, and mean pooling into a fixed-size context vector.
type Encoder struct {
	Dim    int
	MaxSeq int
	Embed  *SeqLinear
	Pos    *Param // MaxSeq x Dim
	Blocks []*Block
	Final  *SeqRMSNorm
	seqLen int
}

// NewEncoder builds the encoder.
func NewEncoder(name string, featDim, dim, heads, layers, maxSeq int, r *rng.RNG) (*Encoder, error) {
	e := &Encoder{
		Dim:    dim,
		MaxSeq: maxSeq,
		Embed:  NewSeqLinear(name+".embed", featDim, dim, r),
		Pos:    NewParam(name+".pos", maxSeq, dim, r),
		Final:  NewSeqRMSNorm(name+".final", dim),
	}
	for i := 0; i < layers; i++ {
		b, err := NewBlock(fmt.Sprintf("%s.block%d", name, i), dim, heads, r)
		if err != nil {
			return nil, err
		}
		e.Blocks = append(e.Blocks, b)
	}
	return e, nil
}

// Params returns all trainable parameters.
func (e *Encoder) Params() []*Param {
	ps := e.Embed.Params()
	ps = append(ps, e.Pos)
	for _, b := range e.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, e.Final.Params()...)
	return ps
}

// Forward encodes the sequence of per-hop feature vectors into a context
// vector (mean pool over positions).
func (e *Encoder) Forward(feats [][]float64) ([]float64, error) {
	if len(feats) == 0 {
		return nil, fmt.Errorf("ml: encoder needs at least one position")
	}
	if len(feats) > e.MaxSeq {
		return nil, fmt.Errorf("ml: sequence length %d exceeds max %d", len(feats), e.MaxSeq)
	}
	e.seqLen = len(feats)
	hs := e.Embed.Forward(feats)
	for t := range hs {
		for i := 0; i < e.Dim; i++ {
			hs[t][i] += e.Pos.At(t, i)
		}
	}
	for _, b := range e.Blocks {
		hs = b.Forward(hs)
	}
	hs = e.Final.Forward(hs)
	return meanPool(hs, e.Dim), nil
}

// Apply encodes the sequence without caching backward state, so a shared
// encoder can serve concurrent inference.
func (e *Encoder) Apply(feats [][]float64) ([]float64, error) {
	if len(feats) == 0 {
		return nil, fmt.Errorf("ml: encoder needs at least one position")
	}
	if len(feats) > e.MaxSeq {
		return nil, fmt.Errorf("ml: sequence length %d exceeds max %d", len(feats), e.MaxSeq)
	}
	hs := e.Embed.Apply(feats)
	for t := range hs {
		for i := 0; i < e.Dim; i++ {
			hs[t][i] += e.Pos.At(t, i)
		}
	}
	for _, b := range e.Blocks {
		hs = b.Apply(hs)
	}
	hs = e.Final.Apply(hs)
	return meanPool(hs, e.Dim), nil
}

func meanPool(hs [][]float64, dim int) []float64 {
	ctx := make([]float64, dim)
	inv := 1 / float64(len(hs))
	for t := range hs {
		for i := 0; i < dim; i++ {
			ctx[i] += hs[t][i] * inv
		}
	}
	return ctx
}

// Backward propagates a context gradient through the encoder.
func (e *Encoder) Backward(dctx []float64) {
	n := e.seqLen
	inv := 1 / float64(n)
	dhs := make([][]float64, n)
	for t := 0; t < n; t++ {
		dh := make([]float64, e.Dim)
		for i := range dh {
			dh[i] = dctx[i] * inv
		}
		dhs[t] = dh
	}
	dhs = e.Final.Backward(dhs)
	for i := len(e.Blocks) - 1; i >= 0; i-- {
		dhs = e.Blocks[i].Backward(dhs)
	}
	for t := range dhs {
		for i := 0; i < e.Dim; i++ {
			e.Pos.G[t*e.Dim+i] += dhs[t][i]
		}
	}
	e.Embed.Backward(dhs)
}

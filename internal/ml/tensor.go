package ml

import "sync"

// Tensor is a dense row-major matrix view over a flat float64 slice. It is
// the batched-inference counterpart of the [][]float64 sequences the
// training path uses: one contiguous allocation instead of one slice per
// position, so whole layers reduce to single loop nests over flat memory.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// Row returns row r as a slice aliasing the tensor's storage.
func (t Tensor) Row(r int) []float64 {
	return t.Data[r*t.Cols : (r+1)*t.Cols]
}

// minSlabFloats is the smallest slab a Scratch allocates (128 KiB). Batches
// bigger than a slab get a dedicated slab of exactly their size.
const minSlabFloats = 1 << 14

// Scratch is a bump allocator for inference temporaries. Buffers handed out
// by Floats/Ints/Tensor stay valid until Reset; the slabs behind them are
// kept across Reset, so a Scratch reaches a high-water mark once and then
// serves every later batch of the same shape with zero heap allocation.
//
// A Scratch is not safe for concurrent use; GetScratch/PutScratch recycle
// instances through a sync.Pool so each goroutine works on its own.
type Scratch struct {
	// Par bounds intra-call data parallelism for the heavy matmul kernels
	// (SeqLinear/Linear/QLinear ApplyTensor): values > 1 let a kernel shard
	// its output-row blocks across up to Par goroutines. 0 or 1 means
	// serial. Sharding splits rows into contiguous blocks, each computed by
	// the unchanged serial per-row code, so outputs are bit-identical to
	// Par=1 — only the wall clock changes. Scratch allocation itself stays
	// single-goroutine: kernels carve every buffer before spawning workers.
	Par int

	slabs [][]float64
	cur   int // slab currently being bump-allocated
	off   int // next free float in slabs[cur]

	intSlabs [][]int
	intCur   int
	intOff   int

	i8Slabs [][]int8
	i8Cur   int
	i8Off   int

	i32Slabs [][]int32
	i32Cur   int
	i32Off   int

	u64Slabs [][]uint64
	u64Cur   int
	u64Off   int
}

// Reset releases every outstanding buffer at once. Slabs are retained; Par
// is cleared so a recycled Scratch defaults back to serial kernels.
func (s *Scratch) Reset() {
	s.Par = 0
	s.cur, s.off = 0, 0
	s.intCur, s.intOff = 0, 0
	s.i8Cur, s.i8Off = 0, 0
	s.i32Cur, s.i32Off = 0, 0
	s.u64Cur, s.u64Off = 0, 0
}

// Floats returns a zeroed length-n buffer valid until Reset.
func (s *Scratch) Floats(n int) []float64 {
	out := s.FloatsUninit(n)
	clear(out)
	return out
}

// FloatsUninit is Floats without the zeroing, for buffers the caller fully
// overwrites before reading (most layer outputs). Contents are whatever the
// previous batch left in the slab.
func (s *Scratch) FloatsUninit(n int) []float64 {
	for s.cur < len(s.slabs) {
		if slab := s.slabs[s.cur]; s.off+n <= len(slab) {
			out := slab[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.cur++
		s.off = 0
	}
	s.slabs = append(s.slabs, make([]float64, max(n, minSlabFloats)))
	out := s.slabs[s.cur][:n:n]
	s.off = n
	return out
}

// Ints returns a zeroed length-n int buffer valid until Reset.
func (s *Scratch) Ints(n int) []int {
	for s.intCur < len(s.intSlabs) {
		if slab := s.intSlabs[s.intCur]; s.intOff+n <= len(slab) {
			out := slab[s.intOff : s.intOff+n : s.intOff+n]
			s.intOff += n
			clear(out)
			return out
		}
		s.intCur++
		s.intOff = 0
	}
	s.intSlabs = append(s.intSlabs, make([]int, max(n, 256)))
	out := s.intSlabs[s.intCur][:n:n]
	s.intOff = n
	return out
}

// Int8sUninit returns a length-n int8 buffer valid until Reset, without
// zeroing. The quantized inference path uses these for per-row activation
// quantization, where every byte is written before being read.
func (s *Scratch) Int8sUninit(n int) []int8 {
	for s.i8Cur < len(s.i8Slabs) {
		if slab := s.i8Slabs[s.i8Cur]; s.i8Off+n <= len(slab) {
			out := slab[s.i8Off : s.i8Off+n : s.i8Off+n]
			s.i8Off += n
			return out
		}
		s.i8Cur++
		s.i8Off = 0
	}
	s.i8Slabs = append(s.i8Slabs, make([]int8, max(n, 1024)))
	out := s.i8Slabs[s.i8Cur][:n:n]
	s.i8Off = n
	return out
}

// Int32sUninit returns a length-n int32 buffer valid until Reset, without
// zeroing. The quantized GEMM widens each activation row into one of these
// once, so the inner loops sign-extend only the weight bytes.
func (s *Scratch) Int32sUninit(n int) []int32 {
	for s.i32Cur < len(s.i32Slabs) {
		if slab := s.i32Slabs[s.i32Cur]; s.i32Off+n <= len(slab) {
			out := slab[s.i32Off : s.i32Off+n : s.i32Off+n]
			s.i32Off += n
			return out
		}
		s.i32Cur++
		s.i32Off = 0
	}
	s.i32Slabs = append(s.i32Slabs, make([]int32, max(n, 1024)))
	out := s.i32Slabs[s.i32Cur][:n:n]
	s.i32Off = n
	return out
}

// Uint64sUninit returns a length-n uint64 buffer valid until Reset, without
// zeroing. The quantized GEMM biases each activation row into one of these
// once per row for the SWAR kernel.
func (s *Scratch) Uint64sUninit(n int) []uint64 {
	for s.u64Cur < len(s.u64Slabs) {
		if slab := s.u64Slabs[s.u64Cur]; s.u64Off+n <= len(slab) {
			out := slab[s.u64Off : s.u64Off+n : s.u64Off+n]
			s.u64Off += n
			return out
		}
		s.u64Cur++
		s.u64Off = 0
	}
	s.u64Slabs = append(s.u64Slabs, make([]uint64, max(n, 1024)))
	out := s.u64Slabs[s.u64Cur][:n:n]
	s.u64Off = n
	return out
}

// Tensor returns a zeroed rows x cols tensor backed by the scratch.
func (s *Scratch) Tensor(rows, cols int) Tensor {
	return Tensor{Rows: rows, Cols: cols, Data: s.Floats(rows * cols)}
}

// TensorUninit is Tensor without the zeroing, for tensors whose every cell
// is written before being read.
func (s *Scratch) TensorUninit(rows, cols int) Tensor {
	return Tensor{Rows: rows, Cols: cols, Data: s.FloatsUninit(rows * cols)}
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a reusable Scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch resets s and returns it to the pool. Buffers obtained from s
// must not be used afterwards.
func PutScratch(s *Scratch) {
	s.Reset()
	scratchPool.Put(s)
}

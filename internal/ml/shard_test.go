package ml

import (
	"math"
	"sync"
	"testing"

	"m3/internal/rng"
)

func TestShardRowsPartitionsExactly(t *testing.T) {
	for _, tc := range []struct{ workers, rows int }{
		{1, 0}, {1, 1}, {1, 17}, {2, 2}, {2, 17}, {3, 10}, {4, 4}, {4, 103}, {8, 9},
	} {
		var mu sync.Mutex
		covered := make([]int, tc.rows)
		workerSeen := make(map[int]bool)
		shardRows(tc.workers, tc.rows, func(w, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			workerSeen[w] = true
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("workers=%d rows=%d: row %d covered %d times", tc.workers, tc.rows, i, n)
			}
		}
		if tc.rows > 0 && len(workerSeen) != min(tc.workers, tc.rows) && tc.workers > 1 {
			// Every worker index must be distinct (per-worker scratch buffers
			// rely on it); empty blocks are fine only when rows < workers.
			if tc.rows >= tc.workers {
				t.Fatalf("workers=%d rows=%d: saw %d distinct worker indices", tc.workers, tc.rows, len(workerSeen))
			}
		}
	}
}

func TestShardSpanStaysSerialForSmallWork(t *testing.T) {
	if got := shardSpan(4, 8, 16); got != 1 {
		t.Fatalf("tiny GEMM sharded into %d workers, want serial", got)
	}
	if got := shardSpan(1, 1<<20, 1<<20); got != 1 {
		t.Fatalf("par=1 produced %d workers", got)
	}
	if got := shardSpan(4, 2, 1<<20); got != 2 {
		t.Fatalf("rows=2 should cap workers at 2, got %d", got)
	}
	if got := shardSpan(4, 1024, 1024); got != 4 {
		t.Fatalf("big GEMM should use all 4 workers, got %d", got)
	}
}

// shardTestBatch builds a ragged batch big enough that shardSpan actually
// engages the parallel path (dim 64 projections over ~48 positions clear
// shardMinWork).
func shardTestBatch(t *testing.T) (*Encoder, *MLP, Tensor, []int) {
	t.Helper()
	r := rng.New(7)
	const featDim, dim = 12, 64
	enc, err := NewEncoder("enc", featDim, dim, 4, 2, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	head := NewMLP("head", dim, 96, 20, r)
	lens := []int{16, 3, 9, 1, 12, 7}
	offsets := make([]int, len(lens)+1)
	for i, n := range lens {
		offsets[i+1] = offsets[i] + n
	}
	feats := Tensor{Rows: offsets[len(lens)], Cols: featDim,
		Data: make([]float64, offsets[len(lens)]*featDim)}
	for i := range feats.Data {
		feats.Data[i] = r.Gauss()
	}
	return enc, head, feats, offsets
}

func bitsEqual(t *testing.T, name string, serial, sharded []float64) {
	t.Helper()
	if len(serial) != len(sharded) {
		t.Fatalf("%s: length %d vs %d", name, len(serial), len(sharded))
	}
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(sharded[i]) {
			t.Fatalf("%s: output[%d] differs: %x vs %x (%v vs %v)",
				name, i, math.Float64bits(serial[i]), math.Float64bits(sharded[i]),
				serial[i], sharded[i])
		}
	}
}

// TestFloatShardedBitIdentical pins the sharded float GEMM to the serial
// kernel bit for bit across parallelism levels — the guarantee the golden
// hashes and per-backend cache keys stand on.
func TestFloatShardedBitIdentical(t *testing.T) {
	enc, head, feats, offsets := shardTestBatch(t)
	run := func(par int) []float64 {
		s := new(Scratch)
		s.Par = par
		ctx, err := enc.ApplyBatch(s, feats, offsets)
		if err != nil {
			t.Fatal(err)
		}
		out := head.ApplyTensor(s, ctx)
		return append([]float64(nil), out.Data...)
	}
	serial := run(1)
	for _, par := range []int{2, 3, 4, 8} {
		bitsEqual(t, "float par="+string(rune('0'+par)), serial, run(par))
	}
}

// TestQuantShardedBitIdentical does the same for the int8 SWAR path, where
// per-worker activation buffers must not perturb the exact integer math.
func TestQuantShardedBitIdentical(t *testing.T) {
	enc, head, feats, offsets := shardTestBatch(t)
	qenc := QuantizeEncoder(enc)
	qhead := QuantizeMLP(head)
	run := func(par int) []float64 {
		s := new(Scratch)
		s.Par = par
		ctx, err := qenc.ApplyBatch(s, feats, offsets)
		if err != nil {
			t.Fatal(err)
		}
		out := qhead.ApplyTensor(s, ctx)
		return append([]float64(nil), out.Data...)
	}
	serial := run(1)
	for _, par := range []int{2, 3, 4, 8} {
		bitsEqual(t, "int8 par="+string(rune('0'+par)), serial, run(par))
	}
}

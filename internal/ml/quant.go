package ml

import (
	"fmt"
	"math"
)

// Int8 weight-quantized inference. Each Q* type below is the quantized
// counterpart of the float layer it is built from: weights are stored as
// int8 with one symmetric scale per output channel (scale = max|row|/127),
// activations are re-quantized dynamically per row with the same symmetric
// scheme, and the GEMM runs int8 x int8 with int32 accumulation before one
// dequantize multiply per output. Everything that is not a matmul — RMSNorm,
// softmax, SiLU — is computed at float32 precision (the values still travel
// in the float64 Scratch slabs so the Tensor machinery is shared with the
// float path).
//
// The GEMM's hot loop is a SWAR kernel: four output rows' weights for one
// column are biased to unsigned (+128, so each fits a byte) and packed into
// the four 16-bit lanes of a uint64; multiplying by one biased activation
// (<= 255) keeps every lane product under 2^16, so a single 64-bit multiply
// performs four MACs with no inter-lane carries. Lane sums are gathered in
// two 2x32-bit accumulators and the +128 biases are removed exactly
// afterwards (Σwx = Σab − 128Σw − 128Σx − 16384n), so the result is the
// same integer a scalar int32 loop would produce — every step is exact, so
// quantized outputs stay bit-stable across runs and machines.

// maxQuantCols bounds the reduction length of one quantized dot product so
// the SWAR lane accumulators cannot overflow or carry across lanes:
// 255*255*65536 < 2^32.
const maxQuantCols = 65536

// QLinear is an int8 weight-quantized linear map with per-output-channel
// symmetric scales. It serves both the per-position (SeqLinear) and head
// (Linear) roles: the float bias is applied after dequantization.
type QLinear struct {
	Rows, Cols int
	W8         []int8    // Rows x Cols, row-major quantized weights
	Scale      []float64 // per output row: w[o][i] ~= float64(W8[o][i]) * Scale[o]
	B          []float64 // bias, nil for none

	// SWAR compute layout, derived from W8: W4 packs rows 4g..4g+3 at
	// column i, biased by +128, into the 16-bit lanes of one uint64
	// (2 bytes/weight); RowSum holds each row's Σ W8 for removing the
	// bias from the lane sums exactly.
	W4     []uint64 // (Rows/4) x Cols
	RowSum []int32  // per output row
}

// QuantizeLinear builds a QLinear from a weight Param (Out x In) and an
// optional bias Param.
func QuantizeLinear(w, b *Param) *QLinear {
	q := &QLinear{
		Rows:  w.Rows,
		Cols:  w.Cols,
		W8:    make([]int8, len(w.W)),
		Scale: make([]float64, w.Rows),
	}
	for o := 0; o < w.Rows; o++ {
		row := w.W[o*w.Cols : (o+1)*w.Cols]
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
			// All-zero (or degenerate) channel: keep scale 0 so the
			// dequantized output is exactly 0 regardless of input.
			continue
		}
		scale := maxAbs / 127
		q.Scale[o] = scale
		inv := 1 / scale
		q8 := q.W8[o*w.Cols : (o+1)*w.Cols]
		for i, v := range row {
			q8[i] = clampInt8(math.Round(v * inv))
		}
	}
	if b != nil {
		q.B = append([]float64(nil), b.W...)
	}
	q.RowSum = make([]int32, q.Rows)
	for o := 0; o < q.Rows; o++ {
		var sum int32
		for _, v := range q.W8[o*q.Cols : (o+1)*q.Cols] {
			sum += int32(v)
		}
		q.RowSum[o] = sum
	}
	q.W4 = make([]uint64, (q.Rows/4)*q.Cols)
	for g := 0; g < q.Rows/4; g++ {
		r0 := q.W8[(4*g+0)*q.Cols : (4*g+1)*q.Cols]
		r1 := q.W8[(4*g+1)*q.Cols : (4*g+2)*q.Cols]
		r2 := q.W8[(4*g+2)*q.Cols : (4*g+3)*q.Cols]
		r3 := q.W8[(4*g+3)*q.Cols : (4*g+4)*q.Cols]
		dst := q.W4[g*q.Cols : (g+1)*q.Cols]
		for i := range dst {
			dst[i] = uint64(uint8(int32(r0[i])+128)) |
				uint64(uint8(int32(r1[i])+128))<<16 |
				uint64(uint8(int32(r2[i])+128))<<32 |
				uint64(uint8(int32(r3[i])+128))<<48
		}
	}
	return q
}

// clampInt8 saturates a rounded float to [-127, 127]; NaN maps to 0.
func clampInt8(r float64) int8 {
	switch {
	case r >= 127:
		return 127
	case r <= -127:
		return -127
	case r == r: // not NaN
		return int8(r)
	default:
		return 0
	}
}

// quantizeRowInto symmetrically quantizes one activation row straight into
// the GEMM's two operand layouts — signed int32 for the scalar leftover dot
// and biased uint64 for the SWAR kernel — returning the dequantization
// scale and the row's signed sum (for the bias correction). A zero (or
// non-finite) row quantizes to zeros with scale 0. Quantized values are
// |v|*inv <= 127 by construction, +-0.5 for rounding, so no clamp is
// needed; NaN elements (possible upstream, the degraded-mode path) map
// to 0 as the int8 path always has.
func quantizeRowInto(x []float64, x32 []int32, bx []uint64) (scale float64, sumX int64) {
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	x32 = x32[:len(x)]
	bx = bx[:len(x)]
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		for i := range x {
			x32[i] = 0
			bx[i] = 128
		}
		return 0, 0
	}
	scale = maxAbs / 127
	inv := 1 / scale
	for i, v := range x {
		var q int32
		if v == v { // NaN quantizes to 0
			q = int32(v*inv + math.Copysign(0.5, v))
		}
		x32[i] = q
		bx[i] = uint64(uint32(q + 128))
		sumX += int64(q)
	}
	return scale, sumX
}

// dotInt8 is the integer counterpart of dot4: four independent int32
// accumulators over an int8 weight row and a pre-widened activation row.
// Integer addition is associative, so the unroll changes nothing about the
// result — it only breaks the dependency chain.
func dotInt8(w []int8, x []int32) int32 {
	var s0, s1, s2, s3 int32
	x = x[:len(w)]
	n := len(x) &^ 3
	i := 0
	for ; i < n; i += 4 {
		x4 := x[i : i+4 : i+4]
		w4 := w[i : i+4 : i+4]
		s0 += int32(w4[0]) * x4[0]
		s1 += int32(w4[1]) * x4[1]
		s2 += int32(w4[2]) * x4[2]
		s3 += int32(w4[3]) * x4[3]
	}
	for ; i < len(x); i++ {
		s0 += int32(w[i]) * x[i]
	}
	return s0 + s1 + s2 + s3
}

// dotSWAR4 computes four weight rows' biased dot sums Σ(w+128)(x+128) in one
// pass: each packed word holds one column's four biased weights in 16-bit
// lanes, so one 64-bit multiply by the biased activation is four MACs. Lane
// products stay under 2^16 (255*255), so nothing carries between lanes, and
// maxQuantCols keeps the 32-bit halves of the two accumulators from
// overflowing. All arithmetic is exact.
func dotSWAR4(pw, bx []uint64) (s0, s1, s2, s3 uint64) {
	const mask = 0x0000ffff0000ffff
	var acc02, acc13 uint64
	bx = bx[:len(pw)]
	for i, w4 := range pw {
		p := w4 * bx[i]
		acc02 += p & mask
		acc13 += (p >> 16) & mask
	}
	return uint64(uint32(acc02)), uint64(uint32(acc13)), acc02 >> 32, acc13 >> 32
}

// ApplyTensor maps every row of x through the quantized linear layer: the
// row is quantized and biased once, then output channels are computed four
// at a time by the SWAR kernel (leftover rows go through the scalar dot),
// with one exact bias correction and one dequantize multiply per output.
// With s.Par > 1 the row loop shards across workers; every worker gets its
// own activation-quantization buffers (carved from s up front — Scratch is
// not concurrent-safe) and runs the unchanged integer per-row kernel, whose
// exact arithmetic makes sharded output bit-identical to serial by
// construction.
func (l *QLinear) ApplyTensor(s *Scratch, x Tensor) Tensor {
	if x.Cols > maxQuantCols {
		panic("ml: quantized reduction too long for SWAR lane accumulation")
	}
	out := s.TensorUninit(x.Rows, l.Rows)
	workers := shardSpan(s.Par, x.Rows, l.Rows*l.Cols)
	x32s := make([][]int32, workers)
	bxs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		x32s[w] = s.Int32sUninit(x.Cols)
		bxs[w] = s.Uint64sUninit(x.Cols)
	}
	shardRows(workers, x.Rows, func(w, lo, hi int) {
		x32, bx := x32s[w], bxs[w]
		for t := lo; t < hi; t++ {
			xs, sumX := quantizeRowInto(x.Row(t), x32, bx)
			// Σwx = Σ(w+128)(x+128) − 128Σw − 128Σx − 128*128*n; the Σx and n
			// terms are shared by every output row.
			rowCorr := 128*sumX + 16384*int64(l.Cols)
			yr := out.Row(t)
			o := 0
			for ; o+4 <= l.Rows; o += 4 {
				g := o / 4
				s0, s1, s2, s3 := dotSWAR4(l.W4[g*l.Cols:(g+1)*l.Cols], bx)
				yr[o] = float64(int64(s0)-128*int64(l.RowSum[o])-rowCorr) * (l.Scale[o] * xs)
				yr[o+1] = float64(int64(s1)-128*int64(l.RowSum[o+1])-rowCorr) * (l.Scale[o+1] * xs)
				yr[o+2] = float64(int64(s2)-128*int64(l.RowSum[o+2])-rowCorr) * (l.Scale[o+2] * xs)
				yr[o+3] = float64(int64(s3)-128*int64(l.RowSum[o+3])-rowCorr) * (l.Scale[o+3] * xs)
			}
			for ; o < l.Rows; o++ {
				acc := dotInt8(l.W8[o*l.Cols:(o+1)*l.Cols], x32)
				yr[o] = float64(acc) * (l.Scale[o] * xs)
			}
			if l.B != nil {
				for i, b := range l.B {
					yr[i] += b
				}
			}
		}
	})
	return out
}

// rmsApplyInto32 is the float32-precision RMSNorm used by the quantized
// path: sum of squares, inverse rms, and the per-element scale all round
// through float32.
func rmsApplyInto32(x, gain, dst []float64) {
	var ss float32
	for _, v := range x {
		f := float32(v)
		ss += f * f
	}
	inv := float32(1 / math.Sqrt(float64(ss)/float64(len(x))+rmsEps))
	for i, v := range x {
		dst[i] = float64(float32(v) * inv * float32(gain[i]))
	}
}

// silu32 is SiLU rounded through float32.
func silu32(x float64) float64 {
	f := float32(x)
	s := float32(1) / (1 + float32(math.Exp(float64(-f))))
	return float64(f * s)
}

// QSwiGLU is the quantized gated feed-forward; the SiLU gate runs at
// float32 precision between the int8 matmuls.
type QSwiGLU struct {
	W1, W3, W2 *QLinear
}

// ApplyTensor mirrors SeqSwiGLU.ApplyTensor with the gate fused in place.
func (sw *QSwiGLU) ApplyTensor(s *Scratch, x Tensor) Tensor {
	u := sw.W1.ApplyTensor(s, x)
	g := sw.W3.ApplyTensor(s, x)
	for i, gi := range g.Data {
		u.Data[i] *= silu32(gi)
	}
	return sw.W2.ApplyTensor(s, u)
}

// QMHA is quantized block-diagonal self-attention: int8 q/k/v/o projections
// with the softmax computed at float32 precision.
type QMHA struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *QLinear
}

// ApplyTensor mirrors MHA.ApplyTensor over the same ragged offsets layout.
func (m *QMHA) ApplyTensor(s *Scratch, x Tensor, offsets []int) Tensor {
	q := m.Wq.ApplyTensor(s, x)
	k := m.Wk.ApplyTensor(s, x)
	v := m.Wv.ApplyTensor(s, x)
	maxLen := 0
	for b := 0; b+1 < len(offsets); b++ {
		if n := offsets[b+1] - offsets[b]; n > maxLen {
			maxLen = n
		}
	}
	scores := s.FloatsUninit(maxLen)
	out := s.Tensor(x.Rows, m.Dim) // accumulated into; must start zeroed
	dh := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dh))
	for b := 0; b+1 < len(offsets); b++ {
		start, end := offsets[b], offsets[b+1]
		n := end - start
		for h := 0; h < m.Heads; h++ {
			lo := h * dh
			for i := start; i < end; i++ {
				qh := q.Row(i)[lo : lo+dh]
				maxS := math.Inf(-1)
				for j := 0; j < n; j++ {
					kj := k.Row(start + j)
					scores[j] = dot4(qh, kj[lo:lo+dh]) * scale
					if scores[j] > maxS {
						maxS = scores[j]
					}
				}
				var sum float32
				for j := 0; j < n; j++ {
					e := float32(math.Exp(scores[j] - maxS))
					scores[j] = float64(e)
					sum += e
				}
				invSum := 1 / sum
				for j := 0; j < n; j++ {
					scores[j] = float64(float32(scores[j]) * invSum)
				}
				oi := out.Row(i)
				for j := 0; j < n; j++ {
					a := scores[j]
					vj := v.Row(start + j)
					for d := 0; d < dh; d++ {
						oi[lo+d] += a * vj[lo+d]
					}
				}
			}
		}
	}
	return m.Wo.ApplyTensor(s, out)
}

// QBlock is one quantized pre-norm transformer block. The norm gains are
// copied out of the float model so the block owns its weights.
type QBlock struct {
	N1, N2 []float64 // RMSNorm gains
	Attn   *QMHA
	FFN    *QSwiGLU
}

// ApplyTensor mirrors Block.ApplyTensor with float32 norms and fused
// residual adds.
func (b *QBlock) ApplyTensor(s *Scratch, x Tensor, offsets []int) Tensor {
	n1 := s.TensorUninit(x.Rows, x.Cols)
	for t := 0; t < x.Rows; t++ {
		rmsApplyInto32(x.Row(t), b.N1, n1.Row(t))
	}
	a := b.Attn.ApplyTensor(s, n1, offsets)
	for i, xi := range x.Data {
		a.Data[i] += xi
	}
	n2 := s.TensorUninit(a.Rows, a.Cols)
	for t := 0; t < a.Rows; t++ {
		rmsApplyInto32(a.Row(t), b.N2, n2.Row(t))
	}
	f := b.FFN.ApplyTensor(s, n2)
	for i, hi := range a.Data {
		f.Data[i] += hi
	}
	return f
}

// QuantizeBlock quantizes one transformer block.
func QuantizeBlock(b *Block) *QBlock {
	return &QBlock{
		N1: append([]float64(nil), b.N1.Gain.W...),
		N2: append([]float64(nil), b.N2.Gain.W...),
		Attn: &QMHA{
			Dim: b.Attn.Dim, Heads: b.Attn.Heads,
			Wq: QuantizeLinear(b.Attn.Wq.W, b.Attn.Wq.B),
			Wk: QuantizeLinear(b.Attn.Wk.W, b.Attn.Wk.B),
			Wv: QuantizeLinear(b.Attn.Wv.W, b.Attn.Wv.B),
			Wo: QuantizeLinear(b.Attn.Wo.W, b.Attn.Wo.B),
		},
		FFN: &QSwiGLU{
			W1: QuantizeLinear(b.FFN.W1.W, b.FFN.W1.B),
			W3: QuantizeLinear(b.FFN.W3.W, b.FFN.W3.B),
			W2: QuantizeLinear(b.FFN.W2.W, b.FFN.W2.B),
		},
	}
}

// QEncoder is the quantized background-context encoder. Positional
// embeddings and norm gains stay in float (they are additive/elementwise,
// not matmuls) but are copied so the encoder owns its weights.
type QEncoder struct {
	Dim    int
	MaxSeq int
	Embed  *QLinear
	Pos    []float64 // MaxSeq x Dim
	Blocks []*QBlock
	Final  []float64 // final norm gain
}

// QuantizeEncoder quantizes a float encoder.
func QuantizeEncoder(e *Encoder) *QEncoder {
	q := &QEncoder{
		Dim:    e.Dim,
		MaxSeq: e.MaxSeq,
		Embed:  QuantizeLinear(e.Embed.W, e.Embed.B),
		Pos:    append([]float64(nil), e.Pos.W...),
		Final:  append([]float64(nil), e.Final.Gain.W...),
	}
	for _, b := range e.Blocks {
		q.Blocks = append(q.Blocks, QuantizeBlock(b))
	}
	return q
}

// ApplyBatch mirrors Encoder.ApplyBatch over the same ragged offsets
// layout: embed, add positions, blocks, final norm, mean pool.
func (e *QEncoder) ApplyBatch(s *Scratch, feats Tensor, offsets []int) (Tensor, error) {
	nSeq := len(offsets) - 1
	for b := 0; b < nSeq; b++ {
		n := offsets[b+1] - offsets[b]
		if n <= 0 {
			return Tensor{}, fmt.Errorf("ml: encoder needs at least one position")
		}
		if n > e.MaxSeq {
			return Tensor{}, fmt.Errorf("ml: sequence length %d exceeds max %d", n, e.MaxSeq)
		}
	}
	hs := e.Embed.ApplyTensor(s, feats)
	for b := 0; b < nSeq; b++ {
		for t := offsets[b]; t < offsets[b+1]; t++ {
			row := hs.Row(t)
			pos := t - offsets[b]
			for i := 0; i < e.Dim; i++ {
				row[i] += e.Pos[pos*e.Dim+i]
			}
		}
	}
	for _, blk := range e.Blocks {
		hs = blk.ApplyTensor(s, hs, offsets)
	}
	norm := s.TensorUninit(hs.Rows, hs.Cols)
	for t := 0; t < hs.Rows; t++ {
		rmsApplyInto32(hs.Row(t), e.Final, norm.Row(t))
	}
	ctx := s.Tensor(nSeq, e.Dim)
	for b := 0; b < nSeq; b++ {
		cb := ctx.Row(b)
		inv := 1 / float64(offsets[b+1]-offsets[b])
		for t := offsets[b]; t < offsets[b+1]; t++ {
			row := norm.Row(t)
			for i := 0; i < e.Dim; i++ {
				cb[i] += row[i] * inv
			}
		}
	}
	return ctx, nil
}

// QMLP is the quantized two-layer head with the ReLU fused in place.
type QMLP struct {
	L1, L2 *QLinear
}

// QuantizeMLP quantizes the float head.
func QuantizeMLP(m *MLP) *QMLP {
	return &QMLP{
		L1: QuantizeLinear(m.L1.W, m.L1.B),
		L2: QuantizeLinear(m.L2.W, m.L2.B),
	}
}

// ApplyTensor mirrors MLP.ApplyTensor.
func (m *QMLP) ApplyTensor(s *Scratch, x Tensor) Tensor {
	h := m.L1.ApplyTensor(s, x)
	for i, v := range h.Data {
		if v < 0 {
			h.Data[i] = 0
		}
	}
	return m.L2.ApplyTensor(s, h)
}

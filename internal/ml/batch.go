package ml

import (
	"fmt"
	"math"
)

// Batched inference. Every ApplyTensor/ApplyBatch below is the flat-tensor
// counterpart of the corresponding Apply: the same arithmetic in the same
// accumulation order (so batched and per-sample outputs agree bitwise), but
// over one contiguous row-major buffer per layer instead of a slice per
// position, with all temporaries served from a Scratch arena. None of them
// touch training caches, so a shared model can serve concurrent batches.
//
// Ragged batches (sequences of different lengths) are represented without
// padding: the sequences are concatenated row-wise and offsets[b] ..
// offsets[b+1] delimit sequence b. Attention is block-diagonal over those
// spans, so positions never attend across samples.

// dot4 is a 4-chain-unrolled dot product: the four independent accumulators
// break the serial FP dependency that bounds the naive loop. Reassociation
// shifts rounding by O(ulp) relative to left-to-right summation — far inside
// the 1e-9 batch/single agreement bound — and stays fully deterministic.
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// ApplyTensor maps every row of x, writing into a scratch-backed tensor.
// With s.Par > 1 the row loop shards across workers in contiguous blocks;
// each row still runs the identical serial inner loop, so the output is
// bit-identical to the serial kernel.
func (l *SeqLinear) ApplyTensor(s *Scratch, x Tensor) Tensor {
	out := s.TensorUninit(x.Rows, l.W.Rows)
	shardRows(shardSpan(s.Par, x.Rows, l.W.Rows*l.W.Cols), x.Rows, func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			xr := x.Row(t)
			yr := out.Row(t)
			for o := 0; o < l.W.Rows; o++ {
				row := l.W.W[o*l.W.Cols : (o+1)*l.W.Cols]
				yr[o] = l.B.W[o] + dot4(row, xr)
			}
		}
	})
	return out
}

// ApplyTensor normalizes every row of x into a scratch-backed tensor.
func (n *SeqRMSNorm) ApplyTensor(s *Scratch, x Tensor) Tensor {
	out := s.TensorUninit(x.Rows, x.Cols)
	for t := 0; t < x.Rows; t++ {
		rmsApplyInto(x.Row(t), n.Gain.W, out.Row(t))
	}
	return out
}

// ApplyTensor runs the gated feed-forward over every row. The gate is fused
// in place over W1's output, saving one intermediate tensor.
func (sw *SeqSwiGLU) ApplyTensor(s *Scratch, x Tensor) Tensor {
	u := sw.W1.ApplyTensor(s, x)
	g := sw.W3.ApplyTensor(s, x)
	for i, gi := range g.Data {
		u.Data[i] *= silu(gi)
	}
	return sw.W2.ApplyTensor(s, u)
}

// ApplyTensor computes block-diagonal self-attention: each offsets span
// attends only within itself. q/k/v/o projections are single passes over
// the whole batch.
func (m *MHA) ApplyTensor(s *Scratch, x Tensor, offsets []int) Tensor {
	q := m.Wq.ApplyTensor(s, x)
	k := m.Wk.ApplyTensor(s, x)
	v := m.Wv.ApplyTensor(s, x)
	maxLen := 0
	for b := 0; b+1 < len(offsets); b++ {
		if n := offsets[b+1] - offsets[b]; n > maxLen {
			maxLen = n
		}
	}
	scores := s.FloatsUninit(maxLen)
	out := s.Tensor(x.Rows, m.Dim) // accumulated into; must start zeroed
	dh := m.Dim / m.Heads
	scale := 1 / math.Sqrt(float64(dh))
	for b := 0; b+1 < len(offsets); b++ {
		start, end := offsets[b], offsets[b+1]
		n := end - start
		for h := 0; h < m.Heads; h++ {
			lo := h * dh
			for i := start; i < end; i++ {
				qh := q.Row(i)[lo : lo+dh]
				maxS := math.Inf(-1)
				for j := 0; j < n; j++ {
					kj := k.Row(start + j)
					scores[j] = dot4(qh, kj[lo:lo+dh]) * scale
					if scores[j] > maxS {
						maxS = scores[j]
					}
				}
				var sum float64
				for j := 0; j < n; j++ {
					scores[j] = math.Exp(scores[j] - maxS)
					sum += scores[j]
				}
				for j := 0; j < n; j++ {
					scores[j] /= sum
				}
				oi := out.Row(i)
				for j := 0; j < n; j++ {
					a := scores[j]
					vj := v.Row(start + j)
					for d := 0; d < dh; d++ {
						oi[lo+d] += a * vj[lo+d]
					}
				}
			}
		}
	}
	return m.Wo.ApplyTensor(s, out)
}

// ApplyTensor runs the transformer block over a ragged batch. Residual adds
// are fused in place.
func (b *Block) ApplyTensor(s *Scratch, x Tensor, offsets []int) Tensor {
	a := b.Attn.ApplyTensor(s, b.N1.ApplyTensor(s, x), offsets)
	for i, xi := range x.Data {
		a.Data[i] += xi
	}
	f := b.FFN.ApplyTensor(s, b.N2.ApplyTensor(s, a))
	for i, hi := range a.Data {
		f.Data[i] += hi
	}
	return f
}

// ApplyBatch encodes a ragged batch of sequences into one context vector per
// sequence. feats holds the concatenated per-hop feature rows;
// offsets[b]..offsets[b+1] delimit sequence b (len(offsets) = batch+1). The
// returned (batch x Dim) tensor is backed by s and valid until s resets.
func (e *Encoder) ApplyBatch(s *Scratch, feats Tensor, offsets []int) (Tensor, error) {
	nSeq := len(offsets) - 1
	for b := 0; b < nSeq; b++ {
		n := offsets[b+1] - offsets[b]
		if n <= 0 {
			return Tensor{}, fmt.Errorf("ml: encoder needs at least one position")
		}
		if n > e.MaxSeq {
			return Tensor{}, fmt.Errorf("ml: sequence length %d exceeds max %d", n, e.MaxSeq)
		}
	}
	hs := e.Embed.ApplyTensor(s, feats)
	for b := 0; b < nSeq; b++ {
		for t := offsets[b]; t < offsets[b+1]; t++ {
			row := hs.Row(t)
			pos := t - offsets[b]
			for i := 0; i < e.Dim; i++ {
				row[i] += e.Pos.At(pos, i)
			}
		}
	}
	for _, blk := range e.Blocks {
		hs = blk.ApplyTensor(s, hs, offsets)
	}
	hs = e.Final.ApplyTensor(s, hs)
	ctx := s.Tensor(nSeq, e.Dim)
	for b := 0; b < nSeq; b++ {
		cb := ctx.Row(b)
		inv := 1 / float64(offsets[b+1]-offsets[b])
		for t := offsets[b]; t < offsets[b+1]; t++ {
			row := hs.Row(t)
			for i := 0; i < e.Dim; i++ {
				cb[i] += row[i] * inv
			}
		}
	}
	return ctx, nil
}

// ApplyTensor maps every row of x through the Linear layer (bias applied
// after the dot product, matching Linear.Apply's accumulation order). Rows
// shard across workers when s.Par > 1, bit-identically to serial.
func (l *Linear) ApplyTensor(s *Scratch, x Tensor) Tensor {
	out := s.TensorUninit(x.Rows, l.W.Rows)
	shardRows(shardSpan(s.Par, x.Rows, l.W.Rows*l.W.Cols), x.Rows, func(_, lo, hi int) {
		for t := lo; t < hi; t++ {
			xr := x.Row(t)
			yr := out.Row(t)
			for o := 0; o < l.W.Rows; o++ {
				row := l.W.W[o*l.W.Cols : (o+1)*l.W.Cols]
				acc := dot4(row, xr)
				if l.B != nil {
					acc += l.B.W[o]
				}
				yr[o] = acc
			}
		}
	})
	return out
}

// ApplyTensor runs the MLP head over every row, with the ReLU fused in
// place.
func (m *MLP) ApplyTensor(s *Scratch, x Tensor) Tensor {
	h := m.L1.ApplyTensor(s, x)
	for i, v := range h.Data {
		if v < 0 {
			h.Data[i] = 0
		}
	}
	return m.L2.ApplyTensor(s, h)
}

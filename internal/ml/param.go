// Package ml is a minimal neural-network library built for the m3 model: a
// tiny Llama-2-style transformer encoder and an MLP head, trained with Adam
// on an L1 loss. Everything is float64, stdlib-only, with hand-written
// backpropagation (validated against finite differences in the tests).
//
// Layers process one sample at a time (sequences are [][]float64); gradients
// accumulate into Param.G across a mini-batch and are applied by Adam.Step.
package ml

import (
	"fmt"
	"math"

	"m3/internal/rng"
)

// Param is a trainable weight matrix (Rows x Cols, row-major) with its
// gradient accumulator and Adam moments.
type Param struct {
	Name       string
	Rows, Cols int
	W          []float64
	G          []float64
	m, v       []float64 // Adam moments
}

// NewParam allocates a parameter initialized with Xavier/Glorot noise.
func NewParam(name string, rows, cols int, r *rng.RNG) *Param {
	p := &Param{
		Name: name, Rows: rows, Cols: cols,
		W: make([]float64, rows*cols),
		G: make([]float64, rows*cols),
		m: make([]float64, rows*cols),
		v: make([]float64, rows*cols),
	}
	scale := math.Sqrt(2.0 / float64(rows+cols))
	for i := range p.W {
		p.W[i] = r.Gauss() * scale
	}
	return p
}

// NewParamConst allocates a parameter with every weight set to c (used for
// biases and norm gains).
func NewParamConst(name string, rows, cols int, c float64) *Param {
	p := &Param{
		Name: name, Rows: rows, Cols: cols,
		W: make([]float64, rows*cols),
		G: make([]float64, rows*cols),
		m: make([]float64, rows*cols),
		v: make([]float64, rows*cols),
	}
	for i := range p.W {
		p.W[i] = c
	}
	return p
}

// At returns W[r][c].
func (p *Param) At(r, c int) float64 { return p.W[r*p.Cols+c] }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// NumWeights returns the parameter count.
func (p *Param) NumWeights() int { return len(p.W) }

// Adam is the Adam optimizer over a set of parameters.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // 0 disables gradient clipping
	t        int
	params   []*Param
}

// NewAdam returns an optimizer with standard hyperparameters.
func NewAdam(params []*Param, lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5, params: params}
}

// Step applies one update from the accumulated gradients (scaled by
// 1/batchSize) and zeroes them.
func (a *Adam) Step(batchSize int) {
	if batchSize <= 0 {
		batchSize = 1
	}
	inv := 1 / float64(batchSize)
	if a.ClipNorm > 0 {
		var norm2 float64
		for _, p := range a.params {
			for _, g := range p.G {
				g *= inv
				norm2 += g * g
			}
		}
		if norm := math.Sqrt(norm2); norm > a.ClipNorm {
			inv *= a.ClipNorm / norm
		}
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range a.params {
		for i := range p.W {
			g := p.G[i] * inv
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mh := p.m[i] / bc1
			vh := p.v[i] / bc2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			p.G[i] = 0
		}
	}
}

// L1Loss returns mean |pred-target| and writes dL/dpred into dpred.
func L1Loss(pred, target, dpred []float64) (float64, error) {
	if len(pred) != len(target) || len(pred) != len(dpred) {
		return 0, fmt.Errorf("ml: L1Loss length mismatch %d/%d/%d",
			len(pred), len(target), len(dpred))
	}
	var sum float64
	inv := 1 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		if d >= 0 {
			sum += d
			dpred[i] = inv
		} else {
			sum -= d
			dpred[i] = -inv
		}
	}
	return sum * inv, nil
}

package ml

import (
	"math"

	"m3/internal/rng"
)

// Linear is y = W x + b for single vectors, with cached input for backward.
type Linear struct {
	W *Param // Out x In
	B *Param // 1 x Out (nil for no bias)
	x []float64
}

// NewLinear builds an In -> Out layer with bias.
func NewLinear(name string, in, out int, r *rng.RNG) *Linear {
	return &Linear{
		W: NewParam(name+".w", out, in, r),
		B: NewParamConst(name+".b", 1, out, 0),
	}
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.B == nil {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// Forward computes y = Wx + b and caches x.
func (l *Linear) Forward(x []float64) []float64 {
	l.x = x
	return l.Apply(x)
}

// Apply computes y = Wx + b without touching the backward cache, so it is
// safe to call concurrently on a shared layer. Training must use Forward.
func (l *Linear) Apply(x []float64) []float64 {
	out := make([]float64, l.W.Rows)
	for o := 0; o < l.W.Rows; o++ {
		row := l.W.W[o*l.W.Cols : (o+1)*l.W.Cols]
		var s float64
		for i, xi := range x {
			s += row[i] * xi
		}
		if l.B != nil {
			s += l.B.W[o]
		}
		out[o] = s
	}
	return out
}

// Backward accumulates dW, db and returns dx.
func (l *Linear) Backward(dy []float64) []float64 {
	dx := make([]float64, l.W.Cols)
	for o := 0; o < l.W.Rows; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		row := l.W.W[o*l.W.Cols : (o+1)*l.W.Cols]
		grow := l.W.G[o*l.W.Cols : (o+1)*l.W.Cols]
		for i := range dx {
			grow[i] += g * l.x[i]
			dx[i] += g * row[i]
		}
		if l.B != nil {
			l.B.G[o] += g
		}
	}
	return dx
}

// RMSNorm is Llama's normalization: y_i = x_i / rms(x) * g_i.
type RMSNorm struct {
	Gain *Param // 1 x Dim
	x    []float64
	inv  float64 // 1 / rms
}

// NewRMSNorm builds a norm over dim features with unit gain.
func NewRMSNorm(name string, dim int) *RMSNorm {
	return &RMSNorm{Gain: NewParamConst(name+".gain", 1, dim, 1)}
}

// Params returns the trainable gain.
func (n *RMSNorm) Params() []*Param { return []*Param{n.Gain} }

const rmsEps = 1e-6

// Forward normalizes x.
func (n *RMSNorm) Forward(x []float64) []float64 {
	n.x = x
	out, inv := rmsApply(x, n.Gain.W)
	n.inv = inv
	return out
}

// Apply normalizes x without caching, safe for concurrent use.
func (n *RMSNorm) Apply(x []float64) []float64 {
	out, _ := rmsApply(x, n.Gain.W)
	return out
}

func rmsApply(x, gain []float64) ([]float64, float64) {
	out := make([]float64, len(x))
	return out, rmsApplyInto(x, gain, out)
}

// rmsApplyInto normalizes x into dst and returns 1/rms.
func rmsApplyInto(x, gain, dst []float64) float64 {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	inv := 1 / math.Sqrt(ss/float64(len(x))+rmsEps)
	for i, v := range x {
		dst[i] = v * inv * gain[i]
	}
	return inv
}

// Backward accumulates dGain and returns dx.
func (n *RMSNorm) Backward(dy []float64) []float64 {
	d := len(n.x)
	// y_i = g_i * x_i * inv, inv = (mean(x^2)+eps)^{-1/2}
	// dx_j = g_j*inv*dy_j - inv^3/d * x_j * sum_i(dy_i*g_i*x_i)
	var dot float64
	for i := 0; i < d; i++ {
		n.Gain.G[i] += dy[i] * n.x[i] * n.inv
		dot += dy[i] * n.Gain.W[i] * n.x[i]
	}
	inv3 := n.inv * n.inv * n.inv
	dx := make([]float64, d)
	for j := 0; j < d; j++ {
		dx[j] = n.Gain.W[j]*n.inv*dy[j] - inv3/float64(d)*n.x[j]*dot
	}
	return dx
}

// ReLU with cached mask.
type ReLU struct{ mask []bool }

// Forward applies max(0, x).
func (r *ReLU) Forward(x []float64) []float64 {
	r.mask = make([]bool, len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates the gradient.
func (r *ReLU) Backward(dy []float64) []float64 {
	dx := make([]float64, len(dy))
	for i, m := range r.mask {
		if m {
			dx[i] = dy[i]
		}
	}
	return dx
}

func silu(x float64) float64 { return x / (1 + math.Exp(-x)) }

func siluGrad(x float64) float64 {
	s := 1 / (1 + math.Exp(-x))
	return s * (1 + x*(1-s))
}

// SwiGLU is Llama's feed-forward: y = W2 (silu(W3 x) * (W1 x)).
type SwiGLU struct {
	W1, W3, W2 *Linear
	u, g       []float64 // cached W1x and W3x
}

// NewSwiGLU builds a dim -> hidden -> dim feed-forward.
func NewSwiGLU(name string, dim, hidden int, r *rng.RNG) *SwiGLU {
	return &SwiGLU{
		W1: NewLinear(name+".w1", dim, hidden, r),
		W3: NewLinear(name+".w3", dim, hidden, r),
		W2: NewLinear(name+".w2", hidden, dim, r),
	}
}

// Params returns all trainable parameters.
func (s *SwiGLU) Params() []*Param {
	var ps []*Param
	ps = append(ps, s.W1.Params()...)
	ps = append(ps, s.W3.Params()...)
	ps = append(ps, s.W2.Params()...)
	return ps
}

// Forward computes the gated feed-forward.
func (s *SwiGLU) Forward(x []float64) []float64 {
	s.u = s.W1.Forward(x)
	s.g = s.W3.Forward(x)
	h := make([]float64, len(s.u))
	for i := range h {
		h[i] = s.u[i] * silu(s.g[i])
	}
	return s.W2.Forward(h)
}

// Apply computes the gated feed-forward without caching, safe for
// concurrent use.
func (s *SwiGLU) Apply(x []float64) []float64 {
	u := s.W1.Apply(x)
	g := s.W3.Apply(x)
	h := make([]float64, len(u))
	for i := range h {
		h[i] = u[i] * silu(g[i])
	}
	return s.W2.Apply(h)
}

// Backward propagates through the gate.
func (s *SwiGLU) Backward(dy []float64) []float64 {
	dh := s.W2.Backward(dy)
	du := make([]float64, len(dh))
	dg := make([]float64, len(dh))
	for i := range dh {
		du[i] = dh[i] * silu(s.g[i])
		dg[i] = dh[i] * s.u[i] * siluGrad(s.g[i])
	}
	dx1 := s.W1.Backward(du)
	dx3 := s.W3.Backward(dg)
	for i := range dx1 {
		dx1[i] += dx3[i]
	}
	return dx1
}

// MLP is the two-layer perceptron head of the m3 model.
type MLP struct {
	L1, L2 *Linear
	act    ReLU
}

// NewMLP builds in -> hidden -> out with ReLU.
func NewMLP(name string, in, hidden, out int, r *rng.RNG) *MLP {
	return &MLP{
		L1: NewLinear(name+".l1", in, hidden, r),
		L2: NewLinear(name+".l2", hidden, out, r),
	}
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	return append(m.L1.Params(), m.L2.Params()...)
}

// Forward runs the head.
func (m *MLP) Forward(x []float64) []float64 {
	return m.L2.Forward(m.act.Forward(m.L1.Forward(x)))
}

// Apply runs the head without caching, safe for concurrent use.
func (m *MLP) Apply(x []float64) []float64 {
	h := m.L1.Apply(x)
	for i, v := range h {
		if v < 0 {
			h[i] = 0
		}
	}
	return m.L2.Apply(h)
}

// Backward returns dx.
func (m *MLP) Backward(dy []float64) []float64 {
	return m.L1.Backward(m.act.Backward(m.L2.Backward(dy)))
}

package ml

import (
	"math"
	"testing"

	"m3/internal/rng"
)

// numGrad computes the finite-difference gradient of loss() wrt p.W[i].
func numGrad(p *Param, i int, loss func() float64) float64 {
	const h = 1e-6
	orig := p.W[i]
	p.W[i] = orig + h
	up := loss()
	p.W[i] = orig - h
	down := loss()
	p.W[i] = orig
	return (up - down) / (2 * h)
}

func checkGrads(t *testing.T, name string, params []*Param, loss func() float64, backward func()) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	backward()
	for _, p := range params {
		// Spot-check a few indices per parameter.
		step := max(1, len(p.W)/7)
		for i := 0; i < len(p.W); i += step {
			want := numGrad(p, i, loss)
			got := p.G[i]
			denom := math.Max(1e-4, math.Abs(want))
			if math.Abs(got-want)/denom > 2e-3 {
				t.Errorf("%s: %s grad[%d] = %v, finite diff %v", name, p.Name, i, got, want)
			}
		}
	}
}

func TestLinearGradcheck(t *testing.T) {
	r := rng.New(1)
	l := NewLinear("lin", 5, 3, r)
	x := []float64{0.3, -0.5, 0.7, 0.1, -0.2}
	target := []float64{0.4, -0.1, 0.9}
	dpred := make([]float64, 3)
	loss := func() float64 {
		y := l.Forward(x)
		v, _ := L1Loss(y, target, dpred)
		return v
	}
	checkGrads(t, "linear", l.Params(), loss, func() {
		loss()
		l.Backward(append([]float64(nil), dpred...))
	})
}

func TestRMSNormGradcheck(t *testing.T) {
	r := rng.New(2)
	n := NewRMSNorm("norm", 6)
	for i := range n.Gain.W {
		n.Gain.W[i] = 0.5 + 0.2*r.Float64()
	}
	x := []float64{0.3, -0.5, 0.7, 0.1, -0.2, 0.9}
	target := make([]float64, 6)
	dpred := make([]float64, 6)
	loss := func() float64 {
		y := n.Forward(x)
		v, _ := L1Loss(y, target, dpred)
		return v
	}
	checkGrads(t, "rmsnorm", n.Params(), loss, func() {
		loss()
		n.Backward(append([]float64(nil), dpred...))
	})
}

func TestRMSNormInputGradcheck(t *testing.T) {
	// Check dx numerically too (layer composition correctness).
	n := NewRMSNorm("norm", 4)
	x := []float64{0.3, -0.5, 0.7, 0.1}
	target := []float64{0, 0.2, -0.3, 0.5}
	dpred := make([]float64, 4)
	loss := func() float64 {
		y := n.Forward(x)
		v, _ := L1Loss(y, target, dpred)
		return v
	}
	loss()
	dx := n.Backward(append([]float64(nil), dpred...))
	for i := range x {
		const h = 1e-6
		orig := x[i]
		x[i] = orig + h
		up := loss()
		x[i] = orig - h
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * h)
		if math.Abs(dx[i]-want) > 1e-4 {
			t.Errorf("dx[%d] = %v, finite diff %v", i, dx[i], want)
		}
	}
}

func TestSwiGLUGradcheck(t *testing.T) {
	r := rng.New(3)
	s := NewSwiGLU("ffn", 4, 6, r)
	x := []float64{0.3, -0.5, 0.7, 0.1}
	target := []float64{0.1, 0.2, -0.1, 0}
	dpred := make([]float64, 4)
	loss := func() float64 {
		y := s.Forward(x)
		v, _ := L1Loss(y, target, dpred)
		return v
	}
	checkGrads(t, "swiglu", s.Params(), loss, func() {
		loss()
		s.Backward(append([]float64(nil), dpred...))
	})
}

func TestMLPGradcheck(t *testing.T) {
	r := rng.New(4)
	m := NewMLP("mlp", 5, 8, 3, r)
	x := []float64{0.3, -0.5, 0.7, 0.1, 0.4}
	target := []float64{0.4, -0.1, 0.9}
	dpred := make([]float64, 3)
	loss := func() float64 {
		y := m.Forward(x)
		v, _ := L1Loss(y, target, dpred)
		return v
	}
	checkGrads(t, "mlp", m.Params(), loss, func() {
		loss()
		m.Backward(append([]float64(nil), dpred...))
	})
}

func seqLoss(ys [][]float64, targets [][]float64, douts [][]float64) float64 {
	var total float64
	for t := range ys {
		v, _ := L1Loss(ys[t], targets[t], douts[t])
		// average over positions
		for i := range douts[t] {
			douts[t][i] /= float64(len(ys))
		}
		total += v
	}
	return total / float64(len(ys))
}

func TestMHAGradcheck(t *testing.T) {
	r := rng.New(5)
	m, err := NewMHA("attn", 4, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{
		{0.3, -0.5, 0.7, 0.1},
		{-0.2, 0.4, 0.0, 0.6},
		{0.5, 0.1, -0.3, 0.2},
	}
	targets := [][]float64{
		{0.1, 0, 0.2, -0.1},
		{0, 0.3, -0.2, 0.1},
		{0.2, -0.1, 0, 0.4},
	}
	douts := [][]float64{make([]float64, 4), make([]float64, 4), make([]float64, 4)}
	loss := func() float64 {
		ys := m.Forward(xs)
		return seqLoss(ys, targets, douts)
	}
	checkGrads(t, "mha", m.Params(), loss, func() {
		loss()
		cp := make([][]float64, len(douts))
		for i := range douts {
			cp[i] = append([]float64(nil), douts[i]...)
		}
		m.Backward(cp)
	})
}

func TestBlockGradcheck(t *testing.T) {
	r := rng.New(6)
	b, err := NewBlock("blk", 4, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{
		{0.3, -0.5, 0.7, 0.1},
		{-0.2, 0.4, 0.0, 0.6},
	}
	targets := [][]float64{
		{0.1, 0, 0.2, -0.1},
		{0, 0.3, -0.2, 0.1},
	}
	douts := [][]float64{make([]float64, 4), make([]float64, 4)}
	loss := func() float64 {
		ys := b.Forward(xs)
		return seqLoss(ys, targets, douts)
	}
	checkGrads(t, "block", b.Params(), loss, func() {
		loss()
		cp := make([][]float64, len(douts))
		for i := range douts {
			cp[i] = append([]float64(nil), douts[i]...)
		}
		b.Backward(cp)
	})
}

func TestEncoderGradcheck(t *testing.T) {
	r := rng.New(7)
	e, err := NewEncoder("enc", 6, 4, 2, 2, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]float64{
		{0.1, 0.3, -0.2, 0.5, 0.0, 0.4},
		{0.6, -0.1, 0.2, 0.1, 0.3, -0.4},
		{-0.3, 0.2, 0.4, 0.0, 0.1, 0.2},
	}
	target := []float64{0.2, -0.1, 0.3, 0}
	dctx := make([]float64, 4)
	loss := func() float64 {
		ctx, err := e.Forward(feats)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := L1Loss(ctx, target, dctx)
		return v
	}
	checkGrads(t, "encoder", e.Params(), loss, func() {
		loss()
		e.Backward(append([]float64(nil), dctx...))
	})
}

func TestEncoderSeqBounds(t *testing.T) {
	r := rng.New(8)
	e, err := NewEncoder("enc", 3, 4, 2, 1, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Forward(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	long := [][]float64{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}}
	if _, err := e.Forward(long); err == nil {
		t.Error("overlong sequence accepted")
	}
}

func TestEncoderVariableLength(t *testing.T) {
	r := rng.New(9)
	e, err := NewEncoder("enc", 3, 4, 2, 1, 6, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 6} {
		feats := make([][]float64, n)
		for i := range feats {
			feats[i] = []float64{0.1, 0.2, 0.3}
		}
		ctx, err := e.Forward(feats)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if len(ctx) != 4 {
			t.Fatalf("ctx dim %d", len(ctx))
		}
	}
}

func TestMHARejectsBadHeads(t *testing.T) {
	r := rng.New(10)
	if _, err := NewMHA("x", 5, 2, r); err == nil {
		t.Error("dim 5 / heads 2 accepted")
	}
	if _, err := NewMHA("x", 4, 0, r); err == nil {
		t.Error("zero heads accepted")
	}
}

func TestL1Loss(t *testing.T) {
	d := make([]float64, 2)
	v, err := L1Loss([]float64{1, 3}, []float64{2, 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.5) > 1e-12 {
		t.Errorf("loss = %v, want 1.5", v)
	}
	if d[0] != -0.5 || d[1] != 0.5 {
		t.Errorf("grads = %v", d)
	}
	if _, err := L1Loss([]float64{1}, []float64{1, 2}, d); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAdamConvergesOnToyRegression(t *testing.T) {
	// Fit y = Ax with a small linear layer via L1; loss should collapse.
	r := rng.New(11)
	teacher := NewLinear("teacher", 4, 3, r)
	student := NewLinear("student", 4, 3, r)
	opt := NewAdam(student.Params(), 0.02)
	var first, last float64
	for epoch := 0; epoch < 400; epoch++ {
		var epochLoss float64
		const batch = 8
		for b := 0; b < batch; b++ {
			x := []float64{r.Gauss(), r.Gauss(), r.Gauss(), r.Gauss()}
			target := teacher.Forward(x)
			pred := student.Forward(x)
			dpred := make([]float64, len(pred))
			v, _ := L1Loss(pred, target, dpred)
			epochLoss += v
			student.Backward(dpred)
		}
		opt.Step(batch)
		if epoch == 0 {
			first = epochLoss / batch
		}
		last = epochLoss / batch
	}
	if last > first*0.1 {
		t.Errorf("Adam did not converge: first %v, last %v", first, last)
	}
}

func TestAdamStepZeroesGrads(t *testing.T) {
	r := rng.New(12)
	p := NewParam("p", 2, 2, r)
	p.G[0] = 1
	opt := NewAdam([]*Param{p}, 0.1)
	opt.Step(1)
	for i, g := range p.G {
		if g != 0 {
			t.Errorf("grad[%d] = %v after step", i, g)
		}
	}
}

func TestGradClipBoundsUpdate(t *testing.T) {
	r := rng.New(13)
	p := NewParam("p", 1, 4, r)
	before := append([]float64(nil), p.W...)
	for i := range p.G {
		p.G[i] = 1e9
	}
	opt := NewAdam([]*Param{p}, 0.01)
	opt.Step(1)
	for i := range p.W {
		if d := math.Abs(p.W[i] - before[i]); d > 0.011 {
			t.Errorf("clipped update moved weight by %v", d)
		}
	}
}

package ml

import "sync"

// Intra-batch kernel sharding. The batched GEMMs (SeqLinear, Linear, and
// QLinear ApplyTensor) are embarrassingly parallel over their output rows:
// row t of the output depends only on row t of the input and the (read-only)
// weights. shardRows splits the row range into contiguous blocks, one per
// worker, and each block runs the unchanged serial per-row loop — the
// accumulation order within every row is exactly the serial kernel's, so
// sharded outputs are bit-identical to Par=1. That bit-stability is
// load-bearing: golden hashes, cluster scatter parity, and per-backend cache
// keys all assume a given model produces one exact byte stream.
//
// Workers are plain goroutines rather than pool tasks: a kernel shard is
// short-lived, CPU-bound, and already running inside a pool worker (the
// estimator's predict tasks), so routing it back through the pool would
// deadlock a saturated queue for no scheduling benefit.

// shardMinWork is the approximate multiply-accumulate count below which a
// GEMM is not worth sharding: goroutine spawn + WaitGroup overhead is
// O(microseconds), so blocks below ~64k MACs run serially even when Par > 1.
const shardMinWork = 1 << 16

// shardSpan plans a sharded row loop: it returns the worker count for
// sharding rows of perRowWork MACs each across at most par workers, or 1
// when the kernel should stay serial (par <= 1, too little total work, or
// too few rows).
func shardSpan(par, rows, perRowWork int) int {
	if par <= 1 || rows <= 1 {
		return 1
	}
	if rows*perRowWork < shardMinWork {
		return 1
	}
	if par > rows {
		par = rows
	}
	return par
}

// shardRows runs fn over [0, rows) split into workers contiguous blocks,
// fn(w, lo, hi) per block, concurrently; w is the block's worker index for
// picking per-worker buffers. The caller's goroutine computes the last
// block, so workers == 1 degrades to a direct call with zero
// synchronization. fn must not allocate from a shared Scratch — carve
// buffers before calling.
func shardRows(workers, rows int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		fn(0, 0, rows)
		return
	}
	base, rem := rows/workers, rows%workers
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers-1; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	fn(workers-1, lo, rows)
	wg.Wait()
}

package packetsim

import (
	"testing"

	"m3/internal/stats"
	"m3/internal/unit"
	"m3/internal/workload"
)

// runScenario simulates a mid-load synthetic path scenario and returns the
// foreground slowdowns.
func runScenario(t *testing.T, cfg Config, seed uint64) []float64 {
	t.Helper()
	syn, err := workload.GenerateSynthetic(workload.SynthSpec{
		Hops: 4, NumFg: 600, BgPerLink: 0.8,
		Sizes: workload.CacheFollower, Burstiness: 2, MaxLoad: 0.6, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(syn.Lot.Topology, syn.Flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fg []float64
	for i := range syn.Flows {
		if syn.IsFg(syn.Flows[i].ID) {
			fg = append(fg, res.Slowdown[syn.Flows[i].ID])
		}
	}
	return fg
}

func TestCCPhenomenology(t *testing.T) {
	// The four protocols must show their characteristic ordering under a
	// bursty 60%-load scenario: HPCC (INT-precise) has the best tail;
	// TIMELY (delay-gradient, coarse) the worst; all are sane.
	if testing.Short() {
		t.Skip("multi-protocol scenario comparison")
	}
	p99 := make(map[CCType]float64)
	for _, cfg := range allCCs() {
		fg := runScenario(t, cfg, 42)
		v := stats.P99(fg)
		p99[cfg.CC] = v
		if m := stats.Mean(fg); m < 1 || m > 50 {
			t.Errorf("%v: implausible mean slowdown %v", cfg.CC, m)
		}
		if v < 1 || v > 500 {
			t.Errorf("%v: implausible p99 slowdown %v", cfg.CC, v)
		}
	}
	if !(p99[HPCC] < p99[TIMELY]) {
		t.Errorf("expected HPCC p99 (%v) < TIMELY p99 (%v)", p99[HPCC], p99[TIMELY])
	}
}

func TestDCTCPAlphaConverges(t *testing.T) {
	// Two long-lived DCTCP flows on one link: the marking fraction should
	// drive alpha into (0, 1) and keep throughput near capacity. We check
	// the external effect: combined completion close to work-conserving.
	p := parkingLot(t, 2)
	size := unit.ByteSize(2 * unit.MB)
	flows := []workload.Flow{fgFlow(p, 0, size, 0), fgFlow(p, 1, size, 0)}
	res, err := Run(p.Topology, flows, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := max(res.FCT[0], res.FCT[1])
	wire := 2 * float64(unit.WireSize(size).Bits())
	minTime := wire / float64(10*unit.Gbps)
	eff := minTime / last.Seconds()
	if eff < 0.75 {
		t.Errorf("DCTCP pair efficiency = %v, want > 0.75", eff)
	}
}

func TestTimelyRTTBoundsRate(t *testing.T) {
	// TIMELY with a very low THigh should throttle hard relative to a high
	// THigh under the same contention.
	base := DefaultConfig()
	base.CC = TIMELY
	strict := base
	strict.TimelyTLow = 10 * unit.Microsecond
	strict.TimelyTHigh = 20 * unit.Microsecond
	relaxed := base
	relaxed.TimelyTLow = 60 * unit.Microsecond
	relaxed.TimelyTHigh = 150 * unit.Microsecond

	p := parkingLot(t, 2)
	mk := func(cfg Config) unit.Time {
		flows := []workload.Flow{fgFlow(p, 0, unit.MB, 0), fgFlow(p, 1, unit.MB, 0)}
		res, err := Run(p.Topology, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return max(res.FCT[0], res.FCT[1])
	}
	if s, r := mk(strict), mk(relaxed); s <= r {
		t.Errorf("strict TIMELY thresholds (%v) should be slower than relaxed (%v)", s, r)
	}
}

func TestDCQCNMarksReduceRate(t *testing.T) {
	// DCQCN with aggressive marking thresholds should be slower for bulk
	// transfers than with relaxed thresholds under contention.
	base := DefaultConfig()
	base.CC = DCQCN
	aggressive := base
	aggressive.DCQCNKmin = 5 * unit.KB
	aggressive.DCQCNKmax = 15 * unit.KB
	relaxed := base
	relaxed.DCQCNKmin = 100 * unit.KB
	relaxed.DCQCNKmax = 300 * unit.KB

	p := parkingLot(t, 2)
	mk := func(cfg Config) unit.Time {
		flows := []workload.Flow{fgFlow(p, 0, unit.MB, 0), fgFlow(p, 1, unit.MB, 0)}
		res, err := Run(p.Topology, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return max(res.FCT[0], res.FCT[1])
	}
	if a, r := mk(aggressive), mk(relaxed); a <= r {
		t.Errorf("aggressive DCQCN marking (%v) should be slower than relaxed (%v)", a, r)
	}
}

func TestHPCCSmallFlowTailBeatsDCTCP(t *testing.T) {
	// HPCC's headline property: near-zero standing queues give small flows
	// better tail latency than DCTCP under the same bursty load.
	if testing.Short() {
		t.Skip("scenario comparison")
	}
	dctcp := DefaultConfig()
	hpcc := DefaultConfig()
	hpcc.CC = HPCC
	hpcc.HPCCEta = 0.90
	sd := runScenario(t, dctcp, 7)
	sh := runScenario(t, hpcc, 7)
	if p99h, p99d := stats.P99(sh), stats.P99(sd); p99h >= p99d*1.5 {
		t.Errorf("HPCC p99 (%v) should not be far above DCTCP p99 (%v)", p99h, p99d)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 1, 10) != 5 || clamp(-1, 1, 10) != 1 || clamp(99, 1, 10) != 10 {
		t.Error("clamp broken")
	}
}

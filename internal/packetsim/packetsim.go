// Package packetsim is the repository's ground-truth simulator, standing in
// for ns-3: an event-driven, packet-granularity, store-and-forward network
// simulator with FIFO egress queues, shared switch buffers, ECN marking,
// HPCC-style inline telemetry, and four congestion control protocols
// (DCTCP, DCQCN, TIMELY, HPCC — the Table 4 space).
//
// Fidelity notes (see DESIGN.md for the full substitution table):
//   - PFC is modeled as losslessness: with PFC enabled queues never drop, so
//     congestion surfaces as queueing delay, as in a PFC-protected RDMA
//     fabric. With PFC disabled, queues tail-drop at the configured buffer
//     and senders recover with go-back-N.
//   - Each data packet is ACKed individually; ACKs carry the ECN echo, the
//     HPCC utilization telemetry, and the send timestamp (for TIMELY RTTs).
package packetsim

import (
	"fmt"
	"strconv"

	"m3/internal/unit"
	"m3/internal/validate"
)

// CCType selects the congestion control protocol.
type CCType uint8

// The four protocols in the paper's Table 4.
const (
	DCTCP CCType = iota
	TIMELY
	DCQCN
	HPCC
)

func (c CCType) String() string {
	switch c {
	case DCTCP:
		return "dctcp"
	case TIMELY:
		return "timely"
	case DCQCN:
		return "dcqcn"
	case HPCC:
		return "hpcc"
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// ParseCC maps a protocol name to its CCType.
func ParseCC(name string) (CCType, error) {
	switch name {
	case "dctcp":
		return DCTCP, nil
	case "timely":
		return TIMELY, nil
	case "dcqcn":
		return DCQCN, nil
	case "hpcc":
		return HPCC, nil
	}
	return 0, fmt.Errorf("packetsim: unknown congestion control %q", name)
}

// Config is the network configuration space of Table 4.
type Config struct {
	CC         CCType
	InitWindow unit.ByteSize // initial congestion window (5-30KB)
	Buffer     unit.ByteSize // per-port egress buffer (200-500KB)
	PFC        bool          // lossless operation
	RTO        unit.Time     // retransmission timeout (0 = default)

	// DCTCP
	DCTCPK unit.ByteSize // ECN marking threshold K (5-20KB)
	// DCQCN
	DCQCNKmin unit.ByteSize // RED lower threshold (20-50KB)
	DCQCNKmax unit.ByteSize // RED upper threshold (50-100KB)
	// HPCC
	HPCCEta    float64   // target utilization (0.70-0.95)
	HPCCRateAI unit.Rate // additive increase (500-1000 Mbps)
	// TIMELY
	TimelyTLow  unit.Time // low RTT threshold (40-60us)
	TimelyTHigh unit.Time // high RTT threshold (100-150us)
}

// DefaultConfig returns the midpoint of the Table 4 space with DCTCP.
func DefaultConfig() Config {
	return Config{
		CC:          DCTCP,
		InitWindow:  15 * unit.KB,
		Buffer:      350 * unit.KB,
		PFC:         true,
		DCTCPK:      12 * unit.KB,
		DCQCNKmin:   35 * unit.KB,
		DCQCNKmax:   75 * unit.KB,
		HPCCEta:     0.9,
		HPCCRateAI:  750 * unit.Mbps,
		TimelyTLow:  50 * unit.Microsecond,
		TimelyTHigh: 125 * unit.Microsecond,
	}
}

// Validate reports configuration errors. Every error is a typed
// *validate.Error naming the offending field, so API boundaries (the serving
// layer, the REPL) classify bad configurations as client errors.
func (c Config) Validate() error {
	switch {
	case c.InitWindow <= 0:
		return validate.Errf("packetsim", "InitWindow", "must be positive, got %d", c.InitWindow)
	case c.Buffer < unit.MTU+unit.HeaderBytes:
		return validate.Errf("packetsim", "Buffer", "must hold at least one packet (%d bytes), got %d",
			unit.MTU+unit.HeaderBytes, c.Buffer)
	case c.RTO < 0:
		return validate.Errf("packetsim", "RTO", "must be non-negative, got %d", c.RTO)
	case c.CC > HPCC:
		return validate.Errf("packetsim", "CC", "unknown protocol %d", c.CC)
	case c.CC == DCTCP && c.DCTCPK <= 0:
		return validate.Errf("packetsim", "DCTCPK", "DCTCP needs positive K, got %d", c.DCTCPK)
	case c.CC == DCQCN && (c.DCQCNKmin <= 0 || c.DCQCNKmax <= c.DCQCNKmin):
		return validate.Errf("packetsim", "DCQCNKmin", "DCQCN needs 0 < Kmin < Kmax, got Kmin=%d Kmax=%d",
			c.DCQCNKmin, c.DCQCNKmax)
	case c.CC == HPCC && (c.HPCCEta <= 0 || c.HPCCEta > 1):
		return validate.Errf("packetsim", "HPCCEta", "must be in (0,1], got %v", c.HPCCEta)
	case c.CC == HPCC && c.HPCCRateAI <= 0:
		return validate.Errf("packetsim", "HPCCRateAI", "must be positive, got %v", c.HPCCRateAI)
	case c.CC == TIMELY && (c.TimelyTLow <= 0 || c.TimelyTHigh <= c.TimelyTLow):
		return validate.Errf("packetsim", "TimelyTLow", "TIMELY needs 0 < TLow < THigh, got TLow=%d THigh=%d",
			c.TimelyTLow, c.TimelyTHigh)
	}
	return nil
}

// Set applies a named what-if knob to the configuration, shared by the
// interactive REPL and the serving layer's config sweeps. Knobs: cc,
// initwnd, buffer, pfc, eta (HPCC), k (DCTCP), kmin/kmax (DCQCN),
// tlow/thigh (TIMELY). Byte knobs take bytes, time knobs nanoseconds.
func (c *Config) Set(knob, value string) error {
	parseBytes := func() (unit.ByteSize, error) {
		v, err := strconv.ParseInt(value, 10, 64)
		return unit.ByteSize(v), err
	}
	parseTime := func() (unit.Time, error) {
		v, err := strconv.ParseInt(value, 10, 64)
		return unit.Time(v), err
	}
	var err error
	switch knob {
	case "cc":
		c.CC, err = ParseCC(value)
	case "initwnd":
		c.InitWindow, err = parseBytes()
	case "buffer":
		c.Buffer, err = parseBytes()
	case "pfc":
		c.PFC = value == "on" || value == "true" || value == "1"
	case "eta":
		c.HPCCEta, err = strconv.ParseFloat(value, 64)
	case "k":
		c.DCTCPK, err = parseBytes()
	case "kmin":
		c.DCQCNKmin, err = parseBytes()
	case "kmax":
		c.DCQCNKmax, err = parseBytes()
	case "tlow":
		c.TimelyTLow, err = parseTime()
	case "thigh":
		c.TimelyTHigh, err = parseTime()
	default:
		return fmt.Errorf("packetsim: unknown knob %q", knob)
	}
	if err != nil {
		return fmt.Errorf("packetsim: knob %s: %w", knob, err)
	}
	return nil
}

// Result holds per-flow outcomes indexed by FlowID, plus aggregate counters.
type Result struct {
	FCT      []unit.Time
	Slowdown []float64
	// Drops counts packets dropped at full buffers (always 0 with PFC).
	Drops int64
	// Retransmits counts go-back-N recoveries.
	Retransmits int64
}

// packet is a data packet or an ACK in flight.
type packet struct {
	flow int32
	seq  int32 // data: packet index; ACK: cumulative next-expected seq
	size int32 // payload bytes (0 for ACK)
	hop  int16 // index of the route link the packet is currently on/queued for
	ack  bool
	ecn  bool    // CE mark (data), ECN echo (ACK)
	util float32 // max per-hop utilization seen (HPCC INT), echoed in ACK
	sent unit.Time
}

func (p *packet) wire() unit.ByteSize { return unit.ByteSize(p.size) + unit.HeaderBytes }

// event kinds
const (
	evFlowStart uint8 = iota
	evTxDone
	evArrive
	evPace
	evTimeout
)

// event is a compact 32-byte scheduler record. Packets are referenced by
// arena index (evArrive), never embedded, so pushing an event moves half
// the bytes the old fat record did and the calendar-queue buckets stay
// cache-dense.
type event struct {
	t    unit.Time
	seq  uint64 // push order; tie-break for FIFO-stable determinism
	kind uint8
	// a is the event's subject: link ID (evTxDone), flow ID (evFlowStart,
	// evPace, evTimeout), or packet arena index (evArrive).
	a int32
	// b is evTimeout's validity token.
	b int32
}

// pktQueue is a FIFO ring buffer of packet arena indices.
type pktQueue struct {
	buf  []int32
	head int
	n    int
}

func (q *pktQueue) push(pi int32) {
	if q.n == len(q.buf) {
		grown := make([]int32, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = pi
	q.n++
}

func (q *pktQueue) pop() int32 {
	pi := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return pi
}

func (q *pktQueue) len() int { return q.n }

// linkState is a directed link's transmitter, queue, and telemetry.
type linkState struct {
	rate   unit.Rate
	delay  unit.Time
	busy   bool
	cur    int32 // packet being serialized when busy (arena index)
	q      pktQueue
	qBytes int64 // queued wire bytes (excluding the one in service)

	// HPCC-style utilization telemetry: an EWMA of the transmit rate over
	// utilTau, updated at every dequeue.
	txAccum float64 // decayed wire bytes
	lastTx  unit.Time
	bdp     float64 // rate * utilTau in bytes, the EWMA normalizer
}

const utilTau = 10 * unit.Microsecond

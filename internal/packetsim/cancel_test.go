package packetsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextCancelled checks that a cancelled context aborts a run with
// ctx.Err() instead of a partial result.
func TestRunContextCancelled(t *testing.T) {
	lot, flows, err := buildRandomScenario(11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, lot.Topology, flows, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("got a result from a cancelled run")
	}
}

// TestRunContextCancelPrompt cancels mid-run and checks the simulator
// notices within its polling interval rather than finishing the workload.
func TestRunContextCancelPrompt(t *testing.T) {
	lot, flows, err := buildRandomScenario(42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	for time.Since(t0) < 2*time.Second {
		if _, err := RunContext(ctx, lot.Topology, flows, DefaultConfig()); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		}
	}
	t.Fatal("run never observed cancellation")
}

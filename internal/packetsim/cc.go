package packetsim

import (
	"math"

	"m3/internal/unit"
)

// Congestion-control constants. These are the standard values from the
// respective papers; the tunable parameters (Table 4) live in Config.
const (
	dctcpG       = 1.0 / 16
	dcqcnG       = 1.0 / 16
	dcqcnRai     = 40 * unit.Mbps // additive increase step
	dcqcnMinRate = 10 * unit.Mbps
	dcqcnCutGap  = 50 * unit.Microsecond // min interval between rate cuts
	dcqcnIncGap  = 55 * unit.Microsecond // interval between increase steps
	timelyBeta   = 0.8
	timelyDelta  = 10 * unit.Mbps
	timelyMin    = 10 * unit.Mbps
	minCwnd      = float64(unit.MTU + unit.HeaderBytes)
)

func (s *sim) maxCwnd(snd *sender) float64 {
	return math.Max(float64(s.cfg.InitWindow), snd.bdpWire+float64(s.cfg.Buffer))
}

// onAck handles an ACK reaching the flow's source.
func (s *sim) onAck(p *packet) {
	snd := &s.snd[p.flow]
	if snd.done {
		return
	}
	progressed := false
	if p.seq > snd.cumAcked {
		for q := snd.cumAcked; q < p.seq; q++ {
			snd.inflight -= snd.pktWire(q)
		}
		if snd.inflight < 0 {
			// ACKs of data sent before a go-back-N rewind.
			snd.inflight = 0
		}
		snd.cumAcked = p.seq
		snd.lastProg = s.now
		progressed = true
		if snd.cumAcked >= snd.numPkts {
			snd.done = true
			snd.rtoToken++ // invalidate pending timeouts
			return
		}
	}
	if progressed {
		switch s.cfg.CC {
		case DCTCP:
			s.dctcpAck(snd, p)
		case HPCC:
			s.hpccAck(snd, p)
		case DCQCN:
			s.dcqcnAck(snd, p)
		case TIMELY:
			s.timelyAck(snd, p)
		}
	}
	s.trySend(p.flow)
}

// dctcpAck implements DCTCP [Alizadeh et al., SIGCOMM'10]: per-window ECN
// fraction F drives alpha; a marked window multiplicatively cuts cwnd by
// alpha/2, an unmarked window grows additively (or doubles in slow start).
func (s *sim) dctcpAck(snd *sender, p *packet) {
	snd.ackCnt++
	if p.ecn {
		snd.markCnt++
	}
	if snd.cumAcked <= snd.winEndSeq {
		return
	}
	f := float64(snd.markCnt) / float64(snd.ackCnt)
	snd.alpha = (1-dctcpG)*snd.alpha + dctcpG*f
	switch {
	case snd.markCnt > 0:
		snd.ss = false
		snd.cwnd *= 1 - snd.alpha/2
	case snd.ss:
		snd.cwnd *= 2
	default:
		snd.cwnd += float64(unit.MTU + unit.HeaderBytes)
	}
	snd.cwnd = clamp(snd.cwnd, minCwnd, s.maxCwnd(snd))
	snd.ackCnt, snd.markCnt = 0, 0
	snd.winEndSeq = snd.nextSeq
}

// hpccAck implements a condensed HPCC [Li et al., SIGCOMM'19]: the ACK's
// inline-telemetry utilization U steers the window multiplicatively toward
// the target eta, with additive increase W_AI, against a per-RTT reference
// window Wc.
func (s *sim) hpccAck(snd *sender, p *packet) {
	u := float64(p.util)
	if u < 0.01 {
		u = 0.01
	}
	wai := float64(s.cfg.HPCCRateAI) / 8 * snd.baseRTT.Seconds()
	w := snd.wc/(u/s.cfg.HPCCEta) + wai
	snd.cwnd = clamp(w, minCwnd, s.maxCwnd(snd))
	snd.rate = snd.cwnd * 8 / snd.baseRTT.Seconds()
	if snd.cumAcked > snd.winEndSeq {
		snd.wc = snd.cwnd
		snd.winEndSeq = snd.nextSeq
	}
}

// dcqcnAck implements a condensed DCQCN [Zhu et al., SIGCOMM'15]: ECN echoes
// cut the rate by alpha/2 (at most once per cut interval) and set the target
// rate; quiet periods run fast recovery toward the target, then additive
// increase. Timers are evaluated lazily on ACK arrival.
func (s *sim) dcqcnAck(snd *sender, p *packet) {
	if p.ecn {
		if s.now-snd.lastCut >= dcqcnCutGap {
			snd.rtRate = snd.rcRate
			snd.dcqAlpha = (1-dcqcnG)*snd.dcqAlpha + dcqcnG
			snd.rcRate *= 1 - snd.dcqAlpha/2
			if snd.rcRate < float64(dcqcnMinRate) {
				snd.rcRate = float64(dcqcnMinRate)
			}
			snd.stage = 0
			snd.lastCut = s.now
			snd.lastInc = s.now
		}
	} else if s.now-snd.lastInc >= dcqcnIncGap {
		snd.stage++
		if snd.stage > 5 {
			snd.rtRate += float64(dcqcnRai)
			if snd.rtRate > snd.lineRate {
				snd.rtRate = snd.lineRate
			}
		}
		snd.rcRate = (snd.rtRate + snd.rcRate) / 2
		// Alpha decays in quiet periods.
		snd.dcqAlpha *= 1 - dcqcnG
		if snd.rcRate > snd.lineRate {
			snd.rcRate = snd.lineRate
		}
		snd.lastInc = s.now
	}
	snd.rate = snd.rcRate
}

// timelyAck implements TIMELY [Mittal et al., SIGCOMM'15]: the RTT gradient
// steers the rate, with additive increase below TLow (and hyperactive
// increase after repeated negative gradients) and multiplicative decrease
// above THigh.
func (s *sim) timelyAck(snd *sender, p *packet) {
	rtt := s.now - p.sent
	if snd.prevRTT == 0 {
		snd.prevRTT = rtt
		return
	}
	grad := float64(rtt-snd.prevRTT) / float64(snd.baseRTT)
	snd.prevRTT = rtt
	switch {
	case rtt < s.cfg.TimelyTLow:
		snd.rate += float64(timelyDelta)
		snd.haiCnt = 0
	case rtt > s.cfg.TimelyTHigh:
		snd.rate *= 1 - timelyBeta*(1-float64(s.cfg.TimelyTHigh)/float64(rtt))
		snd.haiCnt = 0
	case grad <= 0:
		snd.haiCnt++
		n := 1.0
		if snd.haiCnt >= 5 {
			n = 5
		}
		snd.rate += n * float64(timelyDelta)
	default:
		if grad > 1 {
			grad = 1
		}
		snd.rate *= 1 - timelyBeta*grad
		snd.haiCnt = 0
	}
	snd.rate = clamp(snd.rate, float64(timelyMin), snd.lineRate)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

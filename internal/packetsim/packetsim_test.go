package packetsim

import (
	"math"
	"testing"

	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

func parkingLot(t *testing.T, hops int) *topo.ParkingLot {
	t.Helper()
	p, err := topo.NewParkingLot(workload.DefaultPathRates(hops), workload.DefaultPathDelays(hops))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func fgFlow(p *topo.ParkingLot, id workload.FlowID, size unit.ByteSize, at unit.Time) workload.Flow {
	return workload.Flow{ID: id, Src: p.FgSrc(), Dst: p.FgDst(), Size: size, Arrival: at, Route: p.FgRoute()}
}

func allCCs() []Config {
	base := DefaultConfig()
	var cfgs []Config
	for _, cc := range []CCType{DCTCP, TIMELY, DCQCN, HPCC} {
		c := base
		c.CC = cc
		cfgs = append(cfgs, c)
	}
	return cfgs
}

func TestSingleSmallFlowIdeal(t *testing.T) {
	// A one-packet flow on an idle path should finish in ~ideal time for
	// every protocol (it fits in the initial window).
	for _, cfg := range allCCs() {
		for _, hops := range []int{2, 4, 6} {
			p := parkingLot(t, hops)
			flows := []workload.Flow{fgFlow(p, 0, 800, 0)}
			res, err := Run(p.Topology, flows, cfg)
			if err != nil {
				t.Fatalf("%v/%d hops: %v", cfg.CC, hops, err)
			}
			if s := res.Slowdown[0]; s < 0.99 || s > 1.1 {
				t.Errorf("%v/%d hops: small-flow slowdown = %v, want ~1", cfg.CC, hops, s)
			}
		}
	}
}

func TestSingleLargeFlowApproachesLineRate(t *testing.T) {
	// A 2MB flow alone on the path should reach near line rate once the
	// window/rate ramps: slowdown bounded by a small constant.
	for _, cfg := range allCCs() {
		p := parkingLot(t, 2)
		flows := []workload.Flow{fgFlow(p, 0, 2*unit.MB, 0)}
		res, err := Run(p.Topology, flows, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.CC, err)
		}
		if s := res.Slowdown[0]; s < 0.99 || s > 2.0 {
			t.Errorf("%v: large-flow slowdown = %v, want in [1, 2)", cfg.CC, s)
		}
		if res.Drops != 0 {
			t.Errorf("%v: unexpected drops on idle path: %d", cfg.CC, res.Drops)
		}
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two simultaneous long flows on one path should each get about half
	// the bottleneck: combined finish time ~2x a single flow's.
	for _, cfg := range allCCs() {
		p := parkingLot(t, 2)
		size := unit.ByteSize(1 * unit.MB)
		flows := []workload.Flow{fgFlow(p, 0, size, 0), fgFlow(p, 1, size, 0)}
		res, err := Run(p.Topology, flows, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.CC, err)
		}
		for i := range flows {
			if s := res.Slowdown[i]; s < 1.4 || s > 3.5 {
				t.Errorf("%v: shared slowdown[%d] = %v, want ~2", cfg.CC, i, s)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := parkingLot(t, 4)
	var flows []workload.Flow
	for i := 0; i < 20; i++ {
		flows = append(flows, fgFlow(p, workload.FlowID(i), unit.ByteSize(1000*(i+1)),
			unit.Time(i)*10*unit.Microsecond))
	}
	cfg := DefaultConfig()
	a, err := Run(p.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FCT {
		if a.FCT[i] != b.FCT[i] {
			t.Fatalf("run not deterministic at flow %d: %v vs %v", i, a.FCT[i], b.FCT[i])
		}
	}
}

func TestInitWindowMatters(t *testing.T) {
	// A 30KB flow on an idle 4-hop path: with a 30KB initial window it goes
	// out in one burst; with 5KB it needs multiple RTTs (DCTCP).
	p := parkingLot(t, 4)
	flow := []workload.Flow{fgFlow(p, 0, 30*unit.KB, 0)}
	small := DefaultConfig()
	small.InitWindow = 5 * unit.KB
	big := DefaultConfig()
	big.InitWindow = 30 * unit.KB
	rs, err := Run(p.Topology, flow, small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(p.Topology, flow, big)
	if err != nil {
		t.Fatal(err)
	}
	if rs.FCT[0] <= rb.FCT[0] {
		t.Errorf("small init window (%v) not slower than large (%v)", rs.FCT[0], rb.FCT[0])
	}
	if rb.Slowdown[0] > 1.2 {
		t.Errorf("window-covered flow slowdown = %v, want ~1", rb.Slowdown[0])
	}
}

func TestDropsAndRecoveryWithoutPFC(t *testing.T) {
	// Tiny buffer without PFC under a burst of flows: drops happen, yet all
	// flows complete via go-back-N.
	p := parkingLot(t, 2)
	var flows []workload.Flow
	for i := 0; i < 30; i++ {
		flows = append(flows, fgFlow(p, workload.FlowID(i), 100*unit.KB, 0))
	}
	cfg := DefaultConfig()
	cfg.PFC = false
	cfg.Buffer = 10 * unit.KB
	cfg.DCTCPK = 5 * unit.KB
	res, err := Run(p.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Error("expected drops with 10KB buffer and 30 concurrent flows")
	}
	if res.Retransmits == 0 {
		t.Error("expected go-back-N retransmissions")
	}
	for i, s := range res.Slowdown {
		if math.IsNaN(s) || s < 1 {
			t.Errorf("flow %d slowdown = %v", i, s)
		}
	}
}

func TestPFCLossless(t *testing.T) {
	p := parkingLot(t, 2)
	var flows []workload.Flow
	for i := 0; i < 30; i++ {
		flows = append(flows, fgFlow(p, workload.FlowID(i), 100*unit.KB, 0))
	}
	cfg := DefaultConfig()
	cfg.PFC = true
	cfg.Buffer = 10 * unit.KB
	res, err := Run(p.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Errorf("PFC run dropped %d packets", res.Drops)
	}
}

func TestHPCCEtaControlsUtilization(t *testing.T) {
	// Lower eta targets lower utilization: a long flow takes longer.
	p := parkingLot(t, 2)
	flow := []workload.Flow{fgFlow(p, 0, 2*unit.MB, 0)}
	lo := DefaultConfig()
	lo.CC = HPCC
	lo.HPCCEta = 0.70
	hi := DefaultConfig()
	hi.CC = HPCC
	hi.HPCCEta = 0.95
	rlo, err := Run(p.Topology, flow, lo)
	if err != nil {
		t.Fatal(err)
	}
	rhi, err := Run(p.Topology, flow, hi)
	if err != nil {
		t.Fatal(err)
	}
	if rlo.FCT[0] <= rhi.FCT[0] {
		t.Errorf("eta=0.70 FCT (%v) should exceed eta=0.95 FCT (%v)", rlo.FCT[0], rhi.FCT[0])
	}
}

func TestDCTCPKeepsQueuesShorterThanNoECN(t *testing.T) {
	// With a very high marking threshold DCTCP degenerates to slow-start
	// growth and queues build: small probe flows see worse tails.
	p := parkingLot(t, 2)
	var flows []workload.Flow
	id := workload.FlowID(0)
	// heavy background on the path
	for i := 0; i < 20; i++ {
		flows = append(flows, fgFlow(p, id, 500*unit.KB, unit.Time(i)*5*unit.Microsecond))
		id++
	}
	// probe flows arriving during the melee
	var probes []workload.FlowID
	for i := 0; i < 10; i++ {
		f := fgFlow(p, id, 1000, unit.Time(200+i*50)*unit.Microsecond)
		flows = append(flows, f)
		probes = append(probes, id)
		id++
	}
	tight := DefaultConfig()
	tight.DCTCPK = 5 * unit.KB
	loose := DefaultConfig()
	loose.DCTCPK = 400 * unit.KB // effectively never marks
	rt, err := Run(p.Topology, flows, tight)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(p.Topology, flows, loose)
	if err != nil {
		t.Fatal(err)
	}
	var sumT, sumL float64
	for _, pid := range probes {
		sumT += rt.Slowdown[pid]
		sumL += rl.Slowdown[pid]
	}
	if sumT >= sumL {
		t.Errorf("probe slowdowns with tight K (%v) should beat loose K (%v)", sumT, sumL)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.InitWindow = 0 },
		func(c *Config) { c.Buffer = 100 },
		func(c *Config) { c.CC = DCTCP; c.DCTCPK = 0 },
		func(c *Config) { c.CC = DCQCN; c.DCQCNKmin = 0 },
		func(c *Config) { c.CC = DCQCN; c.DCQCNKmax = c.DCQCNKmin },
		func(c *Config) { c.CC = HPCC; c.HPCCEta = 0 },
		func(c *Config) { c.CC = HPCC; c.HPCCRateAI = 0 },
		func(c *Config) { c.CC = TIMELY; c.TimelyTLow = 0 },
		func(c *Config) { c.CC = TIMELY; c.TimelyTHigh = c.TimelyTLow },
		func(c *Config) { c.CC = 17 },
	}
	for i, mutate := range bads {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestParseCC(t *testing.T) {
	for _, name := range []string{"dctcp", "timely", "dcqcn", "hpcc"} {
		cc, err := ParseCC(name)
		if err != nil || cc.String() != name {
			t.Errorf("ParseCC(%q) = %v, %v", name, cc, err)
		}
	}
	if _, err := ParseCC("reno"); err == nil {
		t.Error("unknown CC accepted")
	}
}

func TestRunErrors(t *testing.T) {
	p := parkingLot(t, 2)
	cfg := DefaultConfig()
	if _, err := Run(p.Topology, []workload.Flow{{ID: 9, Route: p.FgRoute()}}, cfg); err == nil {
		t.Error("out-of-range flow ID accepted")
	}
	if _, err := Run(p.Topology, []workload.Flow{{ID: 0}}, cfg); err == nil {
		t.Error("routeless flow accepted")
	}
	res, err := Run(p.Topology, nil, cfg)
	if err != nil || len(res.FCT) != 0 {
		t.Error("empty input should succeed")
	}
}

func TestSyntheticScenarioAllCCs(t *testing.T) {
	syn, err := workload.GenerateSynthetic(workload.SynthSpec{
		Hops: 4, NumFg: 150, BgPerLink: 0.5,
		Sizes: workload.WebServer, Burstiness: 1.5, MaxLoad: 0.4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range allCCs() {
		res, err := Run(syn.Lot.Topology, syn.Flows, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.CC, err)
		}
		var sum float64
		for i, s := range res.Slowdown {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0.98 {
				t.Fatalf("%v: flow %d slowdown = %v", cfg.CC, i, s)
			}
			sum += s
		}
		mean := sum / float64(len(res.Slowdown))
		if mean < 1.0 || mean > 50 {
			t.Errorf("%v: mean slowdown = %v, implausible", cfg.CC, mean)
		}
	}
}

func TestBgFlowsDelayFgFlows(t *testing.T) {
	// A path with heavy single-link background traffic on the first hop
	// should slow the foreground flows relative to an empty path.
	p := parkingLot(t, 2)
	var flows []workload.Flow
	flows = append(flows, fgFlow(p, 0, 50*unit.KB, 100*unit.Microsecond))
	id := workload.FlowID(1)
	for i := 0; i < 10; i++ {
		src, dst, route, err := p.AttachBg(uint64(i), uint64(1000+i), 0, 1,
			10*unit.Gbps, 10*unit.Gbps, unit.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, workload.Flow{
			ID: id, Src: src, Dst: dst, Size: 500 * unit.KB,
			Arrival: unit.Time(i) * 10 * unit.Microsecond, Route: route,
		})
		id++
	}
	res, err := Run(p.Topology, flows, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown[0] < 1.5 {
		t.Errorf("fg slowdown under heavy bg = %v, want > 1.5", res.Slowdown[0])
	}
}

func TestCalQueueOrdering(t *testing.T) {
	var q calQueue
	q.reset()
	times := []unit.Time{50, 10, 30, 10, 40, 20}
	for _, tm := range times {
		q.push(event{t: tm})
	}
	var prev unit.Time = -1
	for !q.empty() {
		e := q.pop()
		if e.t < prev {
			t.Fatalf("queue order violated: %v after %v", e.t, prev)
		}
		prev = e.t
	}
}

func TestPktQueueFIFO(t *testing.T) {
	var q pktQueue
	for i := int32(0); i < 100; i++ {
		q.push(i)
		if i%3 == 0 && q.len() > 1 {
			q.pop() // interleave pops to exercise wraparound
		}
	}
	prev := int32(-1)
	for q.len() > 0 {
		pi := q.pop()
		if pi <= prev {
			t.Fatalf("FIFO violated: %d after %d", pi, prev)
		}
		prev = pi
	}
}

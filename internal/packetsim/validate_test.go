package packetsim

import (
	"testing"

	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/validate"
	"m3/internal/workload"
)

// TestRunRejectsSimplexRoute proves a route over a link without a reverse
// companion is a typed validation error at the Run boundary, not a panic
// inside sender setup.
func TestRunRejectsSimplexRoute(t *testing.T) {
	tp := topo.New()
	a := tp.AddHost(0, 0)
	b := tp.AddHost(1, 0)
	ab := tp.AddDuplex(a, b, unit.Gbps, unit.Microsecond)
	// Sever the reverse direction after construction.
	rev := tp.Links[ab].Reverse
	tp.Links[ab].Reverse = -1
	tp.Links[rev].Reverse = -1

	flows := []workload.Flow{{
		ID: 0, Src: a, Dst: b, Size: 10 * unit.KB, Route: []topo.LinkID{ab},
	}}
	_, err := Run(tp, flows, DefaultConfig())
	if err == nil {
		t.Fatal("simplex route accepted")
	}
	if !validate.IsValidation(err) {
		t.Errorf("error %T is not a validation error: %v", err, err)
	}
}

// TestRunRejectsBadLinkID proves an out-of-range link ID in a route errors
// instead of indexing out of bounds.
func TestRunRejectsBadLinkID(t *testing.T) {
	tp := topo.New()
	a := tp.AddHost(0, 0)
	b := tp.AddHost(1, 0)
	tp.AddDuplex(a, b, unit.Gbps, unit.Microsecond)
	flows := []workload.Flow{{
		ID: 0, Src: a, Dst: b, Size: unit.KB, Route: []topo.LinkID{99},
	}}
	if _, err := Run(tp, flows, DefaultConfig()); err == nil {
		t.Fatal("out-of-range route link accepted")
	}
}

// TestConfigValidateFieldNames checks the typed errors name the offending
// knob.
func TestConfigValidateFieldNames(t *testing.T) {
	cases := []struct {
		corrupt func(c *Config)
		field   string
	}{
		{func(c *Config) { c.InitWindow = 0 }, "InitWindow"},
		{func(c *Config) { c.Buffer = 1 }, "Buffer"},
		{func(c *Config) { c.RTO = -1 }, "RTO"},
		{func(c *Config) { c.CC = HPCC; c.HPCCEta = 2 }, "HPCCEta"},
		{func(c *Config) { c.CC = HPCC; c.HPCCRateAI = 0 }, "HPCCRateAI"},
		{func(c *Config) { c.CC = TIMELY; c.TimelyTLow = 0 }, "TimelyTLow"},
		{func(c *Config) { c.CC = DCQCN; c.DCQCNKmax = c.DCQCNKmin }, "DCQCNKmin"},
		{func(c *Config) { c.CC = DCTCP; c.DCTCPK = 0 }, "DCTCPK"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.corrupt(&cfg)
		err := cfg.Validate()
		ve, ok := err.(*validate.Error)
		if !ok {
			t.Errorf("%s: error %T, want *validate.Error (err=%v)", tc.field, err, err)
			continue
		}
		if ve.Field != tc.field {
			t.Errorf("field = %q, want %q", ve.Field, tc.field)
		}
	}
}

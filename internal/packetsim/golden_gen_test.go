package packetsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"m3/internal/workload"
)

// goldenHash condenses a Result into one FNV-1a hash over the raw bits of
// every FCT and slowdown plus the aggregate counters, so bit-level engine
// parity can be asserted against frozen constants.
func goldenHash(res *Result) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, t := range res.FCT {
		binary.LittleEndian.PutUint64(b[:], uint64(t))
		h.Write(b[:])
	}
	for _, s := range res.Slowdown {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(s))
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], uint64(res.Drops))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(res.Retransmits))
	h.Write(b[:])
	return h.Sum64()
}

// goldenCase is one frozen seeded scenario.
type goldenCase struct {
	name string
	cc   CCType
	pfc  bool
	seed uint64
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, cc := range []CCType{DCTCP, TIMELY, DCQCN, HPCC} {
		for _, seed := range []uint64{11, 42, 1337} {
			cases = append(cases, goldenCase{
				name: fmt.Sprintf("%v/pfc/seed%d", cc, seed), cc: cc, pfc: true, seed: seed,
			})
		}
	}
	// Lossy variants exercise drops + go-back-N (and the DCQCN RED RNG).
	for _, cc := range []CCType{DCTCP, DCQCN} {
		cases = append(cases, goldenCase{
			name: fmt.Sprintf("%v/lossy/seed7", cc), cc: cc, pfc: false, seed: 7,
		})
	}
	return cases
}

func runGoldenCase(gc goldenCase) (*Result, error) {
	lot, flows, err := buildRandomScenario(gc.seed)
	if err != nil {
		return nil, err
	}
	cfg := DefaultConfig()
	cfg.CC = gc.cc
	cfg.PFC = gc.pfc
	if !gc.pfc {
		cfg.Buffer = 20 * 1000
		cfg.DCTCPK = 5 * 1000
	}
	// A synthetic burst on top keeps queues busy enough to matter.
	base := len(flows)
	for i := 0; i < 40; i++ {
		flows = append(flows, workload.Flow{
			ID: workload.FlowID(base + i), Src: lot.FgSrc(), Dst: lot.FgDst(),
			Size: 50_000, Arrival: 0, Route: lot.FgRoute(),
		})
	}
	return Run(lot.Topology, flows, cfg)
}

// TestGoldenDump prints the golden table (run manually with -golden-dump).
func TestGoldenDump(t *testing.T) {
	if os.Getenv("PACKETSIM_GOLDEN_DUMP") == "" {
		t.Skip("set PACKETSIM_GOLDEN_DUMP=1 to dump")
	}
	for _, gc := range goldenCases() {
		res, err := runGoldenCase(gc)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		fmt.Printf("\t%q: 0x%016x,\n", gc.name, goldenHash(res))
	}
}

package packetsim

import (
	"context"
	"fmt"
	"math"

	"m3/internal/rng"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// sender holds per-flow transport state.
type sender struct {
	route   []topo.LinkID
	rev     []topo.LinkID
	numPkts int32
	lastSz  int32 // payload bytes of the final packet

	nextSeq  int32
	cumAcked int32
	inflight int64   // wire bytes outstanding
	cwnd     float64 // wire bytes
	rate     float64 // pacing rate, bits/s (0 = window-only)
	paceNext unit.Time
	paceQd   bool
	done     bool

	baseRTT  unit.Time
	bdpWire  float64 // bytes
	lineRate float64 // first-hop rate, bits/s

	rtoToken int32
	lastProg unit.Time

	// DCTCP
	ss        bool
	alpha     float64
	ackCnt    int32
	markCnt   int32
	winEndSeq int32

	// HPCC
	wc float64

	// DCQCN
	rcRate   float64
	rtRate   float64
	dcqAlpha float64
	stage    int32
	lastCut  unit.Time
	lastInc  unit.Time

	// TIMELY
	prevRTT unit.Time
	haiCnt  int32
}

func (s *sender) pktSize(seq int32) int32 {
	if seq == s.numPkts-1 {
		return s.lastSz
	}
	return int32(unit.MTU)
}

func (s *sender) pktWire(seq int32) int64 {
	return int64(s.pktSize(seq)) + int64(unit.HeaderBytes)
}

type sim struct {
	t     *topo.Topology
	cfg   Config
	flows []workload.Flow
	links []linkState
	snd   []sender
	recvN []int32
	res   *Result
	h     eventHeap
	now   unit.Time
	left  int
	rng   *rng.RNG
	rto   unit.Time
}

// Run simulates the flows on t under cfg and returns per-flow FCTs and
// slowdowns (indexed by FlowID, which must be dense in [0, len(flows))).
func Run(t *topo.Topology, flows []workload.Flow, cfg Config) (*Result, error) {
	return RunContext(context.Background(), t, flows, cfg)
}

// ctxPollMask amortizes cancellation polling to every 4096 events.
const ctxPollMask = 1<<12 - 1

// RunContext is Run with cooperative cancellation: the event loop polls ctx
// every few thousand events and aborts with ctx.Err() once it is done.
func RunContext(ctx context.Context, t *topo.Topology, flows []workload.Flow, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(flows)
	res := &Result{FCT: make([]unit.Time, n), Slowdown: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	s := &sim{
		t:     t,
		cfg:   cfg,
		flows: flows,
		links: make([]linkState, t.NumLinks()),
		snd:   make([]sender, n),
		recvN: make([]int32, n),
		res:   res,
		left:  n,
		rng:   rng.New(0x6d33),
	}
	s.rto = cfg.RTO
	if s.rto <= 0 {
		s.rto = 500 * unit.Microsecond
	}
	for i := range t.Links {
		l := &s.links[i]
		l.rate = t.Links[i].Rate
		l.delay = t.Links[i].Delay
		l.bdp = l.rate.BytesPerSecond() * utilTau.Seconds()
	}
	for i := range flows {
		f := &flows[i]
		if int(f.ID) < 0 || int(f.ID) >= n {
			return nil, fmt.Errorf("packetsim: flow ID %d out of range", f.ID)
		}
		if len(f.Route) == 0 {
			return nil, fmt.Errorf("packetsim: flow %d has no route", f.ID)
		}
		if err := s.initSender(f); err != nil {
			return nil, err
		}
		s.h.push(event{t: f.Arrival, kind: evFlowStart, flow: int32(f.ID)})
	}

	// Generous safety budget: data+ack events per packet per hop, plus
	// sender housekeeping, with headroom for retransmissions.
	var budget int64
	for i := range flows {
		hops := int64(len(flows[i].Route))
		budget += (unit.Packets(flows[i].Size)*2 + 8) * (hops*4 + 8) * 4
	}
	budget += 1 << 20

	var events int64
	for !s.h.empty() && s.left > 0 {
		if budget--; budget < 0 {
			return nil, fmt.Errorf("packetsim: event budget exhausted (livelock?)")
		}
		if events++; events&ctxPollMask == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		e := s.h.pop()
		s.now = e.t
		switch e.kind {
		case evFlowStart:
			s.startFlow(e.flow)
		case evTxDone:
			s.txDone(e.link)
		case evArrive:
			s.arrive(e.pkt)
		case evPace:
			snd := &s.snd[e.flow]
			snd.paceQd = false
			s.trySend(e.flow)
		case evTimeout:
			s.timeout(e.flow, e.tok)
		}
	}
	if s.left > 0 {
		return nil, fmt.Errorf("packetsim: %d flows never completed", s.left)
	}
	return res, nil
}

func (s *sim) initSender(f *workload.Flow) error {
	snd := &s.snd[f.ID]
	snd.route = f.Route
	snd.rev = s.t.ReverseRoute(f.Route)
	snd.numPkts = int32(unit.Packets(f.Size))
	last := int64(f.Size) - int64(snd.numPkts-1)*int64(unit.MTU)
	snd.lastSz = int32(last)

	rates := s.t.RouteRates(f.Route)
	delays := s.t.RouteDelays(f.Route)
	bottleneck := rates[0]
	var rtt unit.Time
	for i, r := range rates {
		if r < bottleneck {
			bottleneck = r
		}
		rtt += 2*delays[i] + unit.TxTime(unit.MTU+unit.HeaderBytes, r) +
			unit.TxTime(unit.HeaderBytes, r)
	}
	snd.baseRTT = rtt
	snd.bdpWire = bottleneck.BytesPerSecond() * rtt.Seconds()
	snd.lineRate = float64(rates[0])

	iw := float64(s.cfg.InitWindow)
	switch s.cfg.CC {
	case DCTCP:
		snd.cwnd = iw
		snd.ss = true
		snd.winEndSeq = 0
	case HPCC:
		snd.cwnd = iw
		snd.wc = iw
		snd.rate = snd.cwnd * 8 / snd.baseRTT.Seconds()
		snd.winEndSeq = 0
	case DCQCN:
		snd.cwnd = math.Max(iw, snd.bdpWire)
		snd.rcRate = snd.lineRate
		snd.rtRate = snd.lineRate
		snd.rate = snd.lineRate
	case TIMELY:
		snd.cwnd = math.Max(iw, snd.bdpWire)
		snd.rate = snd.lineRate
	}
	return nil
}

func (s *sim) startFlow(fid int32) {
	snd := &s.snd[fid]
	snd.lastProg = s.now
	s.armRTO(fid)
	s.trySend(fid)
}

func (s *sim) armRTO(fid int32) {
	snd := &s.snd[fid]
	snd.rtoToken++
	s.h.push(event{t: s.now + s.rto, kind: evTimeout, flow: fid, tok: snd.rtoToken})
}

func (s *sim) timeout(fid int32, tok int32) {
	snd := &s.snd[fid]
	if snd.done || tok != snd.rtoToken {
		return
	}
	// Slow-paced flows legitimately go quiet between packets; the effective
	// RTO must exceed a few pacing intervals or it fires spuriously.
	rto := s.rto
	if snd.rate > 0 {
		pace := unit.FromSeconds(3 * float64((unit.MTU+unit.HeaderBytes)*8) / snd.rate)
		if pace > rto {
			rto = pace
		}
	}
	if s.now < snd.lastProg+rto {
		// Progress happened since arming; re-arm relative to it.
		snd.rtoToken++
		s.h.push(event{t: snd.lastProg + rto, kind: evTimeout, flow: fid, tok: snd.rtoToken})
		return
	}
	// Go-back-N: rewind to the last cumulative ACK.
	if snd.cumAcked < snd.numPkts {
		snd.nextSeq = snd.cumAcked
		snd.inflight = 0
		snd.cwnd = math.Max(float64(unit.MTU+unit.HeaderBytes), snd.cwnd/2)
		s.res.Retransmits++
		snd.lastProg = s.now
		s.armRTO(fid)
		s.trySend(fid)
	}
}

func (s *sim) trySend(fid int32) {
	snd := &s.snd[fid]
	if snd.done {
		return
	}
	for snd.nextSeq < snd.numPkts {
		w := snd.pktWire(snd.nextSeq)
		if float64(snd.inflight+w) > snd.cwnd {
			return // window-limited; resumes on ACK
		}
		if snd.rate > 0 && s.now < snd.paceNext {
			if !snd.paceQd {
				snd.paceQd = true
				s.h.push(event{t: snd.paceNext, kind: evPace, flow: fid})
			}
			return
		}
		p := packet{
			flow: fid,
			seq:  snd.nextSeq,
			size: snd.pktSize(snd.nextSeq),
			sent: s.now,
		}
		snd.nextSeq++
		snd.inflight += w
		snd.lastProg = s.now // sending counts as progress for the RTO
		if snd.rate > 0 {
			base := snd.paceNext
			if s.now > base {
				base = s.now
			}
			snd.paceNext = base + unit.FromSeconds(float64(w*8)/snd.rate)
		}
		s.enqueue(snd.route[0], p)
	}
}

// enqueue places p on link id's egress queue (or starts transmitting it).
func (s *sim) enqueue(id topo.LinkID, p packet) {
	l := &s.links[id]
	w := int64(p.wire())
	if !l.busy {
		l.busy = true
		l.cur = p
		s.h.push(event{
			t:    s.now + unit.TxTime(p.wire(), l.rate),
			kind: evTxDone,
			link: int32(id),
		})
		return
	}
	if !s.cfg.PFC && l.qBytes+w > int64(s.cfg.Buffer) {
		s.res.Drops++
		return
	}
	if !p.ack {
		s.markECN(l, &p)
	}
	l.qBytes += w
	l.q.push(p)
}

// markECN applies the protocol's marking discipline at enqueue time.
func (s *sim) markECN(l *linkState, p *packet) {
	q := l.qBytes + int64(p.wire())
	switch s.cfg.CC {
	case DCTCP:
		if q > int64(s.cfg.DCTCPK) {
			p.ecn = true
		}
	case DCQCN:
		kmin, kmax := int64(s.cfg.DCQCNKmin), int64(s.cfg.DCQCNKmax)
		switch {
		case q <= kmin:
		case q >= kmax:
			p.ecn = true
		default:
			// RED ramp up to pmax between Kmin and Kmax.
			const pmax = 0.2
			prob := pmax * float64(q-kmin) / float64(kmax-kmin)
			if s.rng.Float64() < prob {
				p.ecn = true
			}
		}
	case TIMELY, HPCC:
		// No ECN: TIMELY is delay-based, HPCC uses the INT telemetry.
	}
}

func (s *sim) txDone(id int32) {
	l := &s.links[id]
	p := l.cur
	// Utilization telemetry (HPCC INT): EWMA of tx rate plus queue term.
	dt := s.now - l.lastTx
	if dt > 0 {
		l.txAccum *= math.Exp(-dt.Seconds() / utilTau.Seconds())
	}
	l.txAccum += float64(p.wire())
	l.lastTx = s.now
	if !p.ack {
		u := (l.txAccum + float64(l.qBytes)) / l.bdp
		if float32(u) > p.util {
			p.util = float32(u)
		}
	}
	s.h.push(event{t: s.now + l.delay, kind: evArrive, pkt: p})
	if l.q.len() > 0 {
		next := l.q.pop()
		l.qBytes -= int64(next.wire())
		l.cur = next
		s.h.push(event{
			t:    s.now + unit.TxTime(next.wire(), l.rate),
			kind: evTxDone,
			link: id,
		})
	} else {
		l.busy = false
	}
}

func (s *sim) arrive(p packet) {
	snd := &s.snd[p.flow]
	route := snd.route
	if p.ack {
		route = snd.rev
	}
	if int(p.hop) == len(route)-1 {
		if p.ack {
			s.onAck(&p)
		} else {
			s.deliver(&p)
		}
		return
	}
	p.hop++
	s.enqueue(route[p.hop], p)
}

// deliver handles a data packet reaching the destination host.
func (s *sim) deliver(p *packet) {
	fid := p.flow
	if p.seq == s.recvN[fid] {
		s.recvN[fid]++
		if s.recvN[fid] == s.snd[fid].numPkts {
			f := &s.flows[fid]
			fct := s.now - f.Arrival
			s.res.FCT[fid] = fct
			ideal := s.t.IdealFCT(f.Size, f.Route)
			s.res.Slowdown[fid] = float64(fct) / float64(ideal)
			s.left--
		}
	}
	// Cumulative ACK (also duplicate ACK on out-of-order).
	ack := packet{
		flow: fid,
		seq:  s.recvN[fid],
		ack:  true,
		ecn:  p.ecn,
		util: p.util,
		sent: p.sent,
	}
	s.enqueue(s.snd[fid].rev[0], ack)
}

package packetsim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"m3/internal/rng"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/validate"
	"m3/internal/workload"
)

// sender holds per-flow transport state.
type sender struct {
	route   []topo.LinkID
	rev     []topo.LinkID
	numPkts int32
	lastSz  int32 // payload bytes of the final packet

	nextSeq  int32
	cumAcked int32
	inflight int64   // wire bytes outstanding
	cwnd     float64 // wire bytes
	rate     float64 // pacing rate, bits/s (0 = window-only)
	paceNext unit.Time
	paceQd   bool
	done     bool

	baseRTT  unit.Time
	ideal    unit.Time // unloaded-network FCT (slowdown denominator)
	bdpWire  float64   // bytes
	lineRate float64   // first-hop rate, bits/s

	rtoToken int32
	lastProg unit.Time

	// DCTCP
	ss        bool
	alpha     float64
	ackCnt    int32
	markCnt   int32
	winEndSeq int32

	// HPCC
	wc float64

	// DCQCN
	rcRate   float64
	rtRate   float64
	dcqAlpha float64
	stage    int32
	lastCut  unit.Time
	lastInc  unit.Time

	// TIMELY
	prevRTT unit.Time
	haiCnt  int32
}

func (s *sender) pktSize(seq int32) int32 {
	if seq == s.numPkts-1 {
		return s.lastSz
	}
	return int32(unit.MTU)
}

func (s *sender) pktWire(seq int32) int64 {
	return int64(s.pktSize(seq)) + int64(unit.HeaderBytes)
}

// sim is one run's complete state. Runs check sims out of simPool, so the
// big retained pieces — link states with their ring buffers, sender array,
// calendar-queue buckets, the packet arena, the reverse-route slab — are
// reused across runs and steady-state execution is allocation-free (only
// the returned Result is freshly allocated).
type sim struct {
	t       *topo.Topology
	cfg     Config
	flows   []workload.Flow
	links   []linkState
	snd     []sender
	recvN   []int32
	revSlab []topo.LinkID // backing store for all senders' reverse routes
	revOff  int           // slab bytes consumed by initSender so far
	res     *Result
	q       calQueue
	arena   pktArena
	now     unit.Time
	left    int
	rng     *rng.RNG
	rto     unit.Time
}

var simPool = sync.Pool{New: func() any { return new(sim) }}

// simSeed seeds the per-run RNG (DCQCN's RED marking draws).
const simSeed = 0x6d33

// Run simulates the flows on t under cfg and returns per-flow FCTs and
// slowdowns (indexed by FlowID, which must be dense in [0, len(flows))).
func Run(t *topo.Topology, flows []workload.Flow, cfg Config) (*Result, error) {
	return RunContext(context.Background(), t, flows, cfg)
}

// ctxPollMask amortizes cancellation polling to every 4096 events.
const ctxPollMask = 1<<12 - 1

// RunContext is Run with cooperative cancellation: the event loop polls ctx
// every few thousand events and aborts with ctx.Err() once it is done.
func RunContext(ctx context.Context, t *topo.Topology, flows []workload.Flow, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(flows)
	res := &Result{FCT: make([]unit.Time, n), Slowdown: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	// Validate every route up front: link IDs in range and every hop
	// duplex (ACKs travel the reverse path), so the hot per-sender setup
	// below can index and reverse routes without rechecking. Malformed
	// input is a typed validation error here, never a panic later.
	for i := range flows {
		f := &flows[i]
		if int(f.ID) < 0 || int(f.ID) >= n {
			return nil, validate.Errf("packetsim", fmt.Sprintf("flows[%d].ID", i),
				"%d out of range [0,%d)", f.ID, n)
		}
		if len(f.Route) == 0 {
			return nil, validate.Errf("packetsim", fmt.Sprintf("flows[%d].Route", i), "is empty")
		}
		for _, id := range f.Route {
			if int(id) < 0 || int(id) >= t.NumLinks() {
				return nil, validate.Errf("packetsim", fmt.Sprintf("flows[%d].Route", i),
					"link %d out of range [0,%d)", id, t.NumLinks())
			}
			if t.Links[id].Reverse < 0 {
				return nil, validate.Errf("packetsim", fmt.Sprintf("flows[%d].Route", i),
					"link %d has no reverse (simplex); ACKs need a duplex path", id)
			}
		}
	}

	s := simPool.Get().(*sim)
	defer s.release()
	s.reset(t, flows, cfg, res)
	for i := range flows {
		f := &flows[i]
		s.initSender(f)
		s.q.push(event{t: f.Arrival, kind: evFlowStart, a: int32(f.ID)})
	}

	// Generous safety budget: data+ack events per packet per hop, plus
	// sender housekeeping, with headroom for retransmissions.
	var budget int64
	for i := range flows {
		hops := int64(len(flows[i].Route))
		budget += (unit.Packets(flows[i].Size)*2 + 8) * (hops*4 + 8) * 4
	}
	budget += 1 << 20

	var events int64
	for !s.q.empty() && s.left > 0 {
		if budget--; budget < 0 {
			return nil, fmt.Errorf("packetsim: event budget exhausted (livelock?)")
		}
		if events++; events&ctxPollMask == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		e := s.q.pop()
		s.now = e.t
		switch e.kind {
		case evFlowStart:
			s.startFlow(e.a)
		case evTxDone:
			s.txDone(e.a)
		case evArrive:
			s.arrive(e.a)
		case evPace:
			snd := &s.snd[e.a]
			snd.paceQd = false
			s.trySend(e.a)
		case evTimeout:
			s.timeout(e.a, e.b)
		}
	}
	if s.left > 0 {
		return nil, fmt.Errorf("packetsim: %d flows never completed", s.left)
	}
	return res, nil
}

// reset rebinds a pooled sim to a fresh run, reusing every retained slice
// whose capacity suffices.
func (s *sim) reset(t *topo.Topology, flows []workload.Flow, cfg Config, res *Result) {
	n := len(flows)
	s.t, s.cfg, s.flows, s.res = t, cfg, flows, res
	s.now = 0
	s.left = n
	if s.rng == nil {
		s.rng = rng.New(simSeed)
	} else {
		*s.rng = *rng.New(simSeed)
	}
	s.rto = cfg.RTO
	if s.rto <= 0 {
		s.rto = 500 * unit.Microsecond
	}

	s.links = growTo(s.links, t.NumLinks())
	for i := range s.links {
		l := &s.links[i]
		qbuf := l.q.buf // keep the ring buffer across runs
		*l = linkState{}
		l.q.buf = qbuf
		l.rate = t.Links[i].Rate
		l.delay = t.Links[i].Delay
		l.bdp = l.rate.BytesPerSecond() * utilTau.Seconds()
	}

	s.snd = growTo(s.snd, n)
	clear(s.snd)
	s.recvN = growTo(s.recvN, n)
	clear(s.recvN)

	need := 0
	for i := range flows {
		need += len(flows[i].Route)
	}
	s.revSlab = growTo(s.revSlab, need)
	s.revOff = 0

	s.q.reset()
	s.arena.reset()
}

// release drops the run-scoped references (caller-owned topology, flows,
// result, and the senders' route pointers into them) so pooled sims never
// pin a finished run's memory, then returns the sim to the pool.
func (s *sim) release() {
	s.t, s.flows, s.res = nil, nil, nil
	clear(s.snd)
	simPool.Put(s)
}

// growTo returns s resized to n, reusing its backing array when possible.
func growTo[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func (s *sim) initSender(f *workload.Flow) {
	snd := &s.snd[f.ID]
	snd.route = f.Route
	snd.rev = s.reverseRoute(f.Route)
	snd.numPkts = int32(unit.Packets(f.Size))
	last := int64(f.Size) - int64(snd.numPkts-1)*int64(unit.MTU)
	snd.lastSz = int32(last)

	// Base RTT, bottleneck, and ideal FCT in one pass over the route,
	// without materializing rate/delay slices. The arithmetic mirrors
	// unit.IdealFCT exactly so slowdowns stay bit-identical to
	// Topology.IdealFCT.
	links := s.t.Links
	bottleneck := links[f.Route[0]].Rate
	var rtt, prop unit.Time
	for _, id := range f.Route {
		l := &links[id]
		if l.Rate < bottleneck {
			bottleneck = l.Rate
		}
		prop += l.Delay
		rtt += 2*l.Delay + unit.TxTime(unit.MTU+unit.HeaderBytes, l.Rate) +
			unit.TxTime(unit.HeaderBytes, l.Rate)
	}
	snd.baseRTT = rtt
	snd.bdpWire = bottleneck.BytesPerSecond() * rtt.Seconds()
	snd.lineRate = float64(links[f.Route[0]].Rate)

	ideal := prop + unit.TxTime(unit.WireSize(f.Size), bottleneck)
	lastPayload := f.Size - unit.ByteSize(unit.Packets(f.Size)-1)*unit.MTU
	for _, id := range f.Route[1:] {
		ideal += unit.TxTime(lastPayload+unit.HeaderBytes, links[id].Rate)
	}
	snd.ideal = ideal

	iw := float64(s.cfg.InitWindow)
	switch s.cfg.CC {
	case DCTCP:
		snd.cwnd = iw
		snd.ss = true
		snd.winEndSeq = 0
	case HPCC:
		snd.cwnd = iw
		snd.wc = iw
		snd.rate = snd.cwnd * 8 / snd.baseRTT.Seconds()
		snd.winEndSeq = 0
	case DCQCN:
		snd.cwnd = math.Max(iw, snd.bdpWire)
		snd.rcRate = snd.lineRate
		snd.rtRate = snd.lineRate
		snd.rate = snd.lineRate
	case TIMELY:
		snd.cwnd = math.Max(iw, snd.bdpWire)
		snd.rate = snd.lineRate
	}
}

// reverseRoute carves the next run of the reverse-route slab and fills it
// with the ACK-direction route, avoiding topo.ReverseRoute's per-flow
// allocation. RunContext validated every hop as duplex before any sender is
// initialized, so the Reverse lookups here cannot fail.
func (s *sim) reverseRoute(route []topo.LinkID) []topo.LinkID {
	rev := s.revSlab[s.revOff : s.revOff+len(route)]
	s.revOff += len(route)
	for i, id := range route {
		rev[len(route)-1-i] = s.t.Links[id].Reverse
	}
	return rev
}

func (s *sim) startFlow(fid int32) {
	snd := &s.snd[fid]
	snd.lastProg = s.now
	s.armRTO(fid)
	s.trySend(fid)
}

func (s *sim) armRTO(fid int32) {
	snd := &s.snd[fid]
	snd.rtoToken++
	s.q.push(event{t: s.now + s.rto, kind: evTimeout, a: fid, b: snd.rtoToken})
}

func (s *sim) timeout(fid int32, tok int32) {
	snd := &s.snd[fid]
	if snd.done || tok != snd.rtoToken {
		return
	}
	// Slow-paced flows legitimately go quiet between packets; the effective
	// RTO must exceed a few pacing intervals or it fires spuriously.
	rto := s.rto
	if snd.rate > 0 {
		pace := unit.FromSeconds(3 * float64((unit.MTU+unit.HeaderBytes)*8) / snd.rate)
		if pace > rto {
			rto = pace
		}
	}
	if s.now < snd.lastProg+rto {
		// Progress happened since arming; re-arm relative to it.
		snd.rtoToken++
		s.q.push(event{t: snd.lastProg + rto, kind: evTimeout, a: fid, b: snd.rtoToken})
		return
	}
	// Go-back-N: rewind to the last cumulative ACK.
	if snd.cumAcked < snd.numPkts {
		snd.nextSeq = snd.cumAcked
		snd.inflight = 0
		snd.cwnd = math.Max(float64(unit.MTU+unit.HeaderBytes), snd.cwnd/2)
		s.res.Retransmits++
		snd.lastProg = s.now
		s.armRTO(fid)
		s.trySend(fid)
	}
}

func (s *sim) trySend(fid int32) {
	snd := &s.snd[fid]
	if snd.done {
		return
	}
	for snd.nextSeq < snd.numPkts {
		w := snd.pktWire(snd.nextSeq)
		if float64(snd.inflight+w) > snd.cwnd {
			return // window-limited; resumes on ACK
		}
		if snd.rate > 0 && s.now < snd.paceNext {
			if !snd.paceQd {
				snd.paceQd = true
				s.q.push(event{t: snd.paceNext, kind: evPace, a: fid})
			}
			return
		}
		pi, p := s.arena.alloc()
		p.flow = fid
		p.seq = snd.nextSeq
		p.size = snd.pktSize(snd.nextSeq)
		p.sent = s.now
		snd.nextSeq++
		snd.inflight += w
		snd.lastProg = s.now // sending counts as progress for the RTO
		if snd.rate > 0 {
			base := snd.paceNext
			if s.now > base {
				base = s.now
			}
			snd.paceNext = base + unit.FromSeconds(float64(w*8)/snd.rate)
		}
		s.enqueue(snd.route[0], pi)
	}
}

// enqueue places packet pi on link id's egress queue (or starts
// transmitting it).
func (s *sim) enqueue(id topo.LinkID, pi int32) {
	l := &s.links[id]
	p := s.arena.at(pi)
	w := int64(p.wire())
	if !l.busy {
		l.busy = true
		l.cur = pi
		s.q.push(event{
			t:    s.now + unit.TxTime(p.wire(), l.rate),
			kind: evTxDone,
			a:    int32(id),
		})
		return
	}
	if !s.cfg.PFC && l.qBytes+w > int64(s.cfg.Buffer) {
		s.res.Drops++
		s.arena.release(pi)
		return
	}
	if !p.ack {
		s.markECN(l, p)
	}
	l.qBytes += w
	l.q.push(pi)
}

// markECN applies the protocol's marking discipline at enqueue time.
func (s *sim) markECN(l *linkState, p *packet) {
	q := l.qBytes + int64(p.wire())
	switch s.cfg.CC {
	case DCTCP:
		if q > int64(s.cfg.DCTCPK) {
			p.ecn = true
		}
	case DCQCN:
		kmin, kmax := int64(s.cfg.DCQCNKmin), int64(s.cfg.DCQCNKmax)
		switch {
		case q <= kmin:
		case q >= kmax:
			p.ecn = true
		default:
			// RED ramp up to pmax between Kmin and Kmax.
			const pmax = 0.2
			prob := pmax * float64(q-kmin) / float64(kmax-kmin)
			if s.rng.Float64() < prob {
				p.ecn = true
			}
		}
	case TIMELY, HPCC:
		// No ECN: TIMELY is delay-based, HPCC uses the INT telemetry.
	}
}

func (s *sim) txDone(id int32) {
	l := &s.links[id]
	pi := l.cur
	p := s.arena.at(pi)
	// Utilization telemetry (HPCC INT): EWMA of tx rate plus queue term.
	dt := s.now - l.lastTx
	if dt > 0 {
		l.txAccum *= math.Exp(-dt.Seconds() / utilTau.Seconds())
	}
	l.txAccum += float64(p.wire())
	l.lastTx = s.now
	if !p.ack {
		u := (l.txAccum + float64(l.qBytes)) / l.bdp
		if float32(u) > p.util {
			p.util = float32(u)
		}
	}
	s.q.push(event{t: s.now + l.delay, kind: evArrive, a: pi})
	if l.q.len() > 0 {
		next := l.q.pop()
		np := s.arena.at(next)
		l.qBytes -= int64(np.wire())
		l.cur = next
		s.q.push(event{
			t:    s.now + unit.TxTime(np.wire(), l.rate),
			kind: evTxDone,
			a:    id,
		})
	} else {
		l.busy = false
	}
}

func (s *sim) arrive(pi int32) {
	p := s.arena.at(pi)
	snd := &s.snd[p.flow]
	route := snd.route
	if p.ack {
		route = snd.rev
	}
	if int(p.hop) == len(route)-1 {
		if p.ack {
			s.onAck(p)
		} else {
			s.deliver(p)
		}
		s.arena.release(pi)
		return
	}
	p.hop++
	s.enqueue(route[p.hop], pi)
}

// deliver handles a data packet reaching the destination host. p is
// invalidated by the ACK allocation, so its fields are read first.
func (s *sim) deliver(p *packet) {
	fid := p.flow
	seq, ecn, util, sent := p.seq, p.ecn, p.util, p.sent
	if seq == s.recvN[fid] {
		s.recvN[fid]++
		if s.recvN[fid] == s.snd[fid].numPkts {
			f := &s.flows[fid]
			fct := s.now - f.Arrival
			s.res.FCT[fid] = fct
			s.res.Slowdown[fid] = float64(fct) / float64(s.snd[fid].ideal)
			s.left--
		}
	}
	// Cumulative ACK (also duplicate ACK on out-of-order).
	ai, ack := s.arena.alloc()
	ack.flow = fid
	ack.seq = s.recvN[fid]
	ack.ack = true
	ack.ecn = ecn
	ack.util = util
	ack.sent = sent
	s.enqueue(s.snd[fid].rev[0], ai)
}

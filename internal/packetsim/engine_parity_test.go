package packetsim

import (
	"sync"
	"testing"

	"m3/internal/rng"
	"m3/internal/unit"
)

// refHeap is the binary-heap scheduler the engine used before the calendar
// queue, kept as the ordering oracle: both order events by (t, seq), so the
// calendar queue must pop exactly the same sequence.
type refHeap struct {
	es  []event
	ctr uint64
}

func (h *refHeap) push(e event) {
	e.seq = h.ctr
	h.ctr++
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(&h.es[i], &h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *refHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(&h.es[l], &h.es[smallest]) {
			smallest = l
		}
		if r < n && less(&h.es[r], &h.es[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
	return top
}

func (h *refHeap) empty() bool { return len(h.es) == 0 }

// TestCalQueueMatchesHeap drives the calendar queue and the reference heap
// with identical interleaved push/pop streams and asserts identical pop
// sequences. The stream is adversarial for the calendar queue: event times
// cluster near the current drain point (exercising the cur heap), land
// across wheel buckets, repeat exactly (FIFO tie-breaks), and jump far
// beyond the horizon (exercising overflow re-binning).
func TestCalQueueMatchesHeap(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99} {
		r := rng.New(seed)
		var q calQueue
		q.reset()
		var h refHeap
		now := unit.Time(0)
		pending := 0
		for step := 0; step < 50_000; step++ {
			if pending == 0 || r.Float64() < 0.55 {
				var dt unit.Time
				switch r.Intn(10) {
				case 0: // same timestamp — FIFO stability
					dt = 0
				case 1: // far future — overflow ladder
					dt = unit.Time(r.Intn(int(10 * unit.Millisecond)))
				default: // near future — wheel buckets
					dt = unit.Time(r.Intn(int(20 * unit.Microsecond)))
				}
				e := event{t: now + dt, kind: uint8(r.Intn(5)), a: int32(r.Intn(1 << 16))}
				q.push(e)
				h.push(e)
				pending++
				continue
			}
			got, want := q.pop(), h.pop()
			if got != want {
				t.Fatalf("seed %d step %d: calendar queue popped %+v, heap popped %+v",
					seed, step, got, want)
			}
			if got.t < now {
				t.Fatalf("seed %d step %d: time went backwards: %v < %v", seed, step, got.t, now)
			}
			now = got.t
			pending--
		}
		for !h.empty() {
			got, want := q.pop(), h.pop()
			if got != want {
				t.Fatalf("seed %d drain: calendar queue popped %+v, heap popped %+v", seed, got, want)
			}
		}
		if !q.empty() {
			t.Fatalf("seed %d: calendar queue has %d leftover events", seed, q.n)
		}
	}
}

// TestCalQueueFIFOStability pins the tie-break: events pushed at the same
// timestamp pop in push order, even when they arrive interleaved with other
// times and across a re-bin.
func TestCalQueueFIFOStability(t *testing.T) {
	var q calQueue
	q.reset()
	const ties = 64
	tieT := unit.Time(3 * unit.Millisecond) // beyond the initial horizon
	for i := 0; i < ties; i++ {
		q.push(event{t: tieT, a: int32(i)})
		q.push(event{t: tieT + unit.Time(i+1), a: -1}) // interleaved non-ties
	}
	seen := int32(0)
	for !q.empty() {
		e := q.pop()
		if e.a < 0 {
			continue
		}
		if e.a != seen {
			t.Fatalf("same-timestamp events out of push order: got %d, want %d", e.a, seen)
		}
		seen++
	}
	if seen != ties {
		t.Fatalf("lost tie events: saw %d of %d", seen, ties)
	}
}

// goldenResults froze the per-case result hashes of the pre-calendar-queue
// engine (binary-heap scheduler, per-packet allocation, per-run state).
// The rebuilt engine must reproduce every result bit for bit: FCTs,
// slowdowns, drop and retransmit counters — including DCQCN's RED marking
// RNG draw order, which any scheduling reorder would scramble.
var goldenResults = map[string]uint64{
	"dctcp/pfc/seed11":    0x0d3f7ff8b7f529bf,
	"dctcp/pfc/seed42":    0xfc9dd73a1fc4e644,
	"dctcp/pfc/seed1337":  0xc7a9574155d3cf56,
	"timely/pfc/seed11":   0xa6ec7216ac9f447e,
	"timely/pfc/seed42":   0x7cf11a14efb6a052,
	"timely/pfc/seed1337": 0x11b428ec29068c79,
	"dcqcn/pfc/seed11":    0x8d4156beebaefd49,
	"dcqcn/pfc/seed42":    0x18a6d5e6a839eec5,
	"dcqcn/pfc/seed1337":  0xc325f60785e47676,
	"hpcc/pfc/seed11":     0x5d41d1e9a1038090,
	"hpcc/pfc/seed42":     0xee83c73c39f13fe9,
	"hpcc/pfc/seed1337":   0x821e23cd5c1e51af,
	"dctcp/lossy/seed7":   0x44822e36fa176d85,
	"dcqcn/lossy/seed7":   0xe7111f58b59929bf,
}

func TestEngineGoldenParity(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			want, ok := goldenResults[gc.name]
			if !ok {
				t.Fatalf("no frozen hash for %s (regenerate with PACKETSIM_GOLDEN_DUMP=1)", gc.name)
			}
			res, err := runGoldenCase(gc)
			if err != nil {
				t.Fatal(err)
			}
			if got := goldenHash(res); got != want {
				t.Errorf("result hash = %#016x, want frozen %#016x", got, want)
			}
		})
	}
}

// TestRunDeterministicAcrossPoolReuse re-runs one scenario repeatedly on the
// same goroutine — each run checks a sim out of simPool, so later runs reuse
// the first run's links, arena, buckets, and sender arrays — and asserts
// every repetition is bit-identical.
func TestRunDeterministicAcrossPoolReuse(t *testing.T) {
	gc := goldenCase{name: "reuse", cc: DCQCN, pfc: true, seed: 42}
	first, err := runGoldenCase(gc)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenHash(first)
	for i := 0; i < 5; i++ {
		res, err := runGoldenCase(gc)
		if err != nil {
			t.Fatal(err)
		}
		if got := goldenHash(res); got != want {
			t.Fatalf("run %d: hash %#016x != first run %#016x (pooled state leaked)", i, got, want)
		}
	}
}

// TestRunDeterministicConcurrent hammers Run from many goroutines (mixing
// cases, so sims of different shapes churn through simPool) and asserts each
// case still produces its frozen result. Run under -race this also proves
// pooled state is never shared across concurrent runs.
func TestRunDeterministicConcurrent(t *testing.T) {
	cases := goldenCases()
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(cases))
	for rep := 0; rep < 4; rep++ {
		for _, gc := range cases {
			gc := gc
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := runGoldenCase(gc)
				if err != nil {
					errs <- err
					return
				}
				if got := goldenHash(res); got != goldenResults[gc.name] {
					t.Errorf("%s: concurrent hash %#016x != frozen %#016x", gc.name, got, goldenResults[gc.name])
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package packetsim

import "m3/internal/unit"

// The discrete-event scheduler is a calendar queue: a bucketed time wheel
// for the near future with a ladder overflow for events beyond the horizon.
// Packet simulations emit near-monotonic event streams — almost every event
// is scheduled within a few serialization times or one propagation delay of
// now, with only RTO timers landing far out — so push degrades to an O(1)
// bucket append and pop to a tiny per-bucket heap, instead of the O(log n)
// sift of a global binary heap over tens of thousands of pending events.
//
// Ordering is total and FIFO-stable: events are popped in strictly
// ascending (t, seq) order, where seq is the push sequence number. This is
// exactly the order of the reference binary heap the engine used before
// (see the parity property tests), so simulation results are bit-identical.
const (
	// calBuckets * calWidth is the wheel horizon (512us): wide enough that
	// serialization, propagation, pacing, and default-RTO events all land in
	// the wheel, small enough that per-bucket heaps stay tiny.
	calBuckets = 512
	calWidth   = unit.Microsecond
)

type calQueue struct {
	ctr uint64 // push sequence counter (FIFO tie-break)
	n   int    // total pending events
	// cur is a min-heap (by less) of the events in the drained window
	// [..., curEnd): the global minimum always lives here.
	cur []event
	// buckets[i] holds events with t in [wheelStart+i*W, wheelStart+(i+1)*W),
	// unsorted; a bucket is heapified wholesale when the wheel reaches it.
	buckets [calBuckets][]event
	// overflow holds events at or beyond the horizon; re-binned when the
	// wheel is exhausted.
	overflow   []event
	wheelStart unit.Time
	curEnd     unit.Time // buckets before this time are drained into cur
	horizon    unit.Time // wheelStart + calBuckets*calWidth
	curIdx     int       // next wheel bucket to drain
}

// reset prepares a (possibly reused) queue for a fresh run, keeping bucket
// capacity. The wheel starts exhausted with a zero horizon, so initial
// pushes (flow arrivals at arbitrary times) collect in overflow and the
// first pop re-bins them around the earliest arrival.
func (q *calQueue) reset() {
	q.ctr, q.n = 0, 0
	q.cur = q.cur[:0]
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.overflow = q.overflow[:0]
	q.wheelStart, q.curEnd, q.horizon = 0, 0, 0
	q.curIdx = calBuckets
}

func (q *calQueue) push(e event) {
	e.seq = q.ctr
	q.ctr++
	q.n++
	q.insert(e)
}

func (q *calQueue) empty() bool { return q.n == 0 }

func (q *calQueue) insert(e event) {
	switch {
	case e.t < q.curEnd:
		// Inside (or before) the drained window — including t <= now. The
		// heap keeps such late arrivals correctly ordered.
		q.curPush(e)
	case e.t < q.horizon:
		i := int((e.t - q.wheelStart) / calWidth)
		q.buckets[i] = append(q.buckets[i], e)
	default:
		q.overflow = append(q.overflow, e)
	}
}

func (q *calQueue) pop() event {
	for len(q.cur) == 0 {
		if q.curIdx < calBuckets {
			b := q.buckets[q.curIdx]
			q.buckets[q.curIdx] = b[:0]
			q.curIdx++
			q.curEnd += calWidth
			if len(b) > 0 {
				q.cur = append(q.cur[:0], b...)
				q.heapifyCur()
			}
			continue
		}
		q.rebin()
	}
	q.n--
	return q.curPop()
}

// rebin restarts the wheel at the earliest overflow event and re-inserts
// the overflow; events still beyond the new horizon stay in overflow (the
// in-place filter is safe: the write index never passes the read index).
func (q *calQueue) rebin() {
	if len(q.overflow) == 0 {
		panic("packetsim: pop on empty calendar queue")
	}
	minT := q.overflow[0].t
	for i := 1; i < len(q.overflow); i++ {
		if q.overflow[i].t < minT {
			minT = q.overflow[i].t
		}
	}
	q.wheelStart = minT
	q.horizon = minT + calBuckets*calWidth
	q.curEnd = minT
	q.curIdx = 0
	ov := q.overflow
	q.overflow = ov[:0]
	for i := range ov {
		q.insert(ov[i])
	}
}

func less(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (q *calQueue) curPush(e event) {
	q.cur = append(q.cur, e)
	i := len(q.cur) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(&q.cur[i], &q.cur[p]) {
			break
		}
		q.cur[i], q.cur[p] = q.cur[p], q.cur[i]
		i = p
	}
}

func (q *calQueue) curPop() event {
	top := q.cur[0]
	last := len(q.cur) - 1
	q.cur[0] = q.cur[last]
	q.cur = q.cur[:last]
	q.siftDown(0)
	return top
}

func (q *calQueue) heapifyCur() {
	for i := len(q.cur)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

func (q *calQueue) siftDown(i int) {
	n := len(q.cur)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(&q.cur[l], &q.cur[smallest]) {
			smallest = l
		}
		if r < n && less(&q.cur[r], &q.cur[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.cur[i], q.cur[smallest] = q.cur[smallest], q.cur[i]
		i = smallest
	}
}

// pktArena is the per-run packet store. Events and link queues reference
// packets by dense index instead of embedding 32-byte packet structs, which
// halves the event record and lets freed slots be recycled without the
// allocator. Slots are not stable pointers: alloc may grow the backing
// array, so callers must re-resolve after any alloc.
type pktArena struct {
	pkts []packet
	free []int32
}

func (a *pktArena) reset() {
	a.pkts = a.pkts[:0]
	a.free = a.free[:0]
}

// alloc returns a zeroed packet slot and its index.
func (a *pktArena) alloc() (int32, *packet) {
	if n := len(a.free); n > 0 {
		i := a.free[n-1]
		a.free = a.free[:n-1]
		a.pkts[i] = packet{}
		return i, &a.pkts[i]
	}
	a.pkts = append(a.pkts, packet{})
	i := int32(len(a.pkts) - 1)
	return i, &a.pkts[i]
}

func (a *pktArena) at(i int32) *packet { return &a.pkts[i] }

func (a *pktArena) release(i int32) { a.free = append(a.free, i) }

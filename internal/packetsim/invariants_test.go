package packetsim

import (
	"math"
	"testing"
	"testing/quick"

	"m3/internal/rng"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// buildRandomScenario creates a small parking-lot scenario from a seed:
// a 1-6 hop path with a handful of foreground and background flows.
func buildRandomScenario(seed uint64) (*topo.ParkingLot, []workload.Flow, error) {
	r := rng.New(seed)
	hops := r.Intn(6) + 1
	lot, err := topo.NewParkingLot(workload.DefaultPathRates(hops), workload.DefaultPathDelays(hops))
	if err != nil {
		return nil, nil, err
	}
	n := r.Intn(20) + 2
	flows := make([]workload.Flow, 0, n)
	for i := 0; i < n; i++ {
		size := unit.ByteSize(r.Intn(200_000) + 1)
		arrival := unit.Time(r.Intn(2_000_000)) // within 2ms
		if r.Intn(2) == 0 || hops == 1 {
			flows = append(flows, workload.Flow{
				ID: workload.FlowID(i), Src: lot.FgSrc(), Dst: lot.FgDst(),
				Size: size, Arrival: arrival, Route: lot.FgRoute(),
			})
			continue
		}
		join := r.Intn(hops)
		span := r.Intn(hops-join) + 1
		src, dst, route, err := lot.AttachBg(uint64(r.Intn(4)), uint64(100+r.Intn(4)),
			join, join+span, 10*unit.Gbps, 10*unit.Gbps, unit.Microsecond)
		if err != nil {
			return nil, nil, err
		}
		flows = append(flows, workload.Flow{
			ID: workload.FlowID(i), Src: src, Dst: dst,
			Size: size, Arrival: arrival, Route: route,
		})
	}
	return lot, flows, nil
}

// Property: for every protocol and random small scenario, every flow
// completes, every FCT is at least its unloaded ideal (causality), and the
// run is deterministic.
func TestInvariantCausalityAndCompletion(t *testing.T) {
	ccs := []CCType{DCTCP, TIMELY, DCQCN, HPCC}
	f := func(seed16 uint16, ccSel uint8) bool {
		lot, flows, err := buildRandomScenario(uint64(seed16))
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.CC = ccs[int(ccSel)%len(ccs)]
		res, err := Run(lot.Topology, flows, cfg)
		if err != nil {
			t.Logf("seed %d cc %v: %v", seed16, cfg.CC, err)
			return false
		}
		for i := range flows {
			fl := &flows[i]
			ideal := lot.IdealFCT(fl.Size, fl.Route)
			if res.FCT[fl.ID] < ideal {
				t.Logf("seed %d cc %v flow %d: FCT %v < ideal %v",
					seed16, cfg.CC, fl.ID, res.FCT[fl.ID], ideal)
				return false
			}
			if math.IsNaN(res.Slowdown[fl.ID]) || res.Slowdown[fl.ID] < 1 {
				return false
			}
		}
		again, err := Run(lot.Topology, flows, cfg)
		if err != nil {
			return false
		}
		for i := range res.FCT {
			if res.FCT[i] != again.FCT[i] {
				t.Logf("seed %d cc %v: nondeterministic", seed16, cfg.CC)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: without PFC and with a tiny buffer, runs still terminate and
// complete every flow (go-back-N recovery is live), and drops are only
// possible when the buffer is small.
func TestInvariantLossRecoveryLiveness(t *testing.T) {
	f := func(seed16 uint16) bool {
		lot, flows, err := buildRandomScenario(uint64(seed16) + 77777)
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.PFC = false
		cfg.Buffer = 5 * unit.KB
		cfg.DCTCPK = 3 * unit.KB
		res, err := Run(lot.Topology, flows, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed16, err)
			return false
		}
		for i := range res.Slowdown {
			if res.Slowdown[i] < 1 || math.IsInf(res.Slowdown[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the work-conservation bound — the last completion on a shared
// single link cannot beat total wire bytes divided by link rate.
func TestInvariantWorkConservation(t *testing.T) {
	f := func(seed16 uint16, ccSel uint8) bool {
		ccs := []CCType{DCTCP, TIMELY, DCQCN, HPCC}
		r := rng.New(uint64(seed16) + 555)
		lot, err := topo.NewParkingLot(
			[]unit.Rate{10 * unit.Gbps}, []unit.Time{unit.Microsecond})
		if err != nil {
			return false
		}
		n := r.Intn(8) + 2
		var flows []workload.Flow
		var wireBits float64
		for i := 0; i < n; i++ {
			size := unit.ByteSize(r.Intn(100_000) + 1000)
			flows = append(flows, workload.Flow{
				ID: workload.FlowID(i), Src: lot.FgSrc(), Dst: lot.FgDst(),
				Size: size, Arrival: 0, Route: lot.FgRoute(),
			})
			wireBits += float64(unit.WireSize(size).Bits())
		}
		cfg := DefaultConfig()
		cfg.CC = ccs[int(ccSel)%len(ccs)]
		res, err := Run(lot.Topology, flows, cfg)
		if err != nil {
			return false
		}
		var last unit.Time
		for _, fct := range res.FCT {
			if fct > last {
				last = fct
			}
		}
		minTime := wireBits / float64(10*unit.Gbps)
		return last.Seconds() >= minTime-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

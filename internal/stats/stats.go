// Package stats provides the descriptive statistics the m3 evaluation relies
// on: percentiles, percentile vectors (the 1..100% grid used by feature maps
// and model outputs), empirical CDFs, and relative-error metrics.
package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in (0, 100]) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	frac := rank - float64(lo)
	if hi >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PercentileGrid is the fixed 1%..100% grid (100 points, 1% steps) m3 uses
// for both feature maps and model outputs.
var PercentileGrid = func() []float64 {
	g := make([]float64, 100)
	for i := range g {
		g[i] = float64(i + 1)
	}
	return g
}()

// Percentiles returns the values of xs at each percentile in ps. Sorting is
// done once. Empty input yields a vector of NaN.
func Percentiles(xs []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	PercentilesInto(xs, ps, out, nil)
	return out
}

// PercentilesInto writes the values of xs at each percentile in ps into dst
// (which must have len(ps)), sorting into buf instead of a fresh copy. It
// returns buf, grown if needed, so callers can reuse it across calls (the
// feature builder runs this once per size bucket per path). Empty xs fills
// dst with NaN.
func PercentilesInto(xs, ps, dst, buf []float64) []float64 {
	if len(xs) == 0 {
		for i := range dst {
			dst[i] = math.NaN()
		}
		return buf
	}
	buf = append(buf[:0], xs...)
	sort.Float64s(buf)
	for i, p := range ps {
		dst[i] = percentileSorted(buf, p)
	}
	return buf
}

// PercentileVector returns the standard 100-point percentile vector of xs.
func PercentileVector(xs []float64) []float64 {
	return Percentiles(xs, PercentileGrid)
}

// P99 is shorthand for the 99th percentile.
func P99(xs []float64) float64 { return Percentile(xs, 99) }

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Max returns the maximum, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// RelError is the paper's Eq. (4): (estimate - truth) / truth, signed.
func RelError(estimate, truth float64) float64 {
	if truth == 0 {
		return math.NaN()
	}
	return (estimate - truth) / truth
}

// AbsRelError is |RelError| — what the paper reports for means and medians.
func AbsRelError(estimate, truth float64) float64 {
	return math.Abs(RelError(estimate, truth))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile for q in [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(c.sorted, q*100)
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// Values returns the sorted samples (not a copy; callers must not modify).
func (c *CDF) Values() []float64 { return c.sorted }

// Histogram2D is a size-bucket × percentile heat map, the shape of the
// flowSim feature maps and of Figure 3.
type Histogram2D struct {
	Rows, Cols int
	Data       []float64 // row-major
}

// NewHistogram2D allocates a rows × cols map.
func NewHistogram2D(rows, cols int) *Histogram2D {
	return &Histogram2D{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the (r, c) cell.
func (h *Histogram2D) At(r, c int) float64 { return h.Data[r*h.Cols+c] }

// Set assigns the (r, c) cell.
func (h *Histogram2D) Set(r, c int, v float64) { h.Data[r*h.Cols+c] = v }

// Row returns row r as a slice into the map.
func (h *Histogram2D) Row(r int) []float64 { return h.Data[r*h.Cols : (r+1)*h.Cols] }

// Summary holds the five-number-ish summary used by the boxplot figures.
type Summary struct {
	Mean, Median, P25, P75, P99, Min, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{nan, nan, nan, nan, nan, nan, nan}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Mean:   Mean(xs),
		Median: percentileSorted(sorted, 50),
		P25:    percentileSorted(sorted, 25),
		P75:    percentileSorted(sorted, 75),
		P99:    percentileSorted(sorted, 99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"m3/internal/rng"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-12 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("empty percentile = %v, want NaN", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v, want 7", got)
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("max of unsorted = %v, want 5", got)
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileGridShape(t *testing.T) {
	if len(PercentileGrid) != 100 {
		t.Fatalf("grid has %d points, want 100", len(PercentileGrid))
	}
	if PercentileGrid[0] != 1 || PercentileGrid[99] != 100 {
		t.Errorf("grid endpoints = %v, %v", PercentileGrid[0], PercentileGrid[99])
	}
}

func TestPercentileVectorMonotone(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	v := PercentileVector(xs)
	if len(v) != 100 {
		t.Fatalf("vector length %d", len(v))
	}
	if !sort.Float64sAreSorted(v) {
		t.Error("percentile vector is not monotone")
	}
}

func TestMeanMedianMaxMin(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Mean(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if got := Median(xs); got != 2 {
		t.Errorf("Median = %v", got)
	}
	if got := Max(xs); got != 3 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Error("empty aggregates should be NaN")
	}
}

func TestRelError(t *testing.T) {
	if got := RelError(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelError = %v, want 0.1", got)
	}
	if got := RelError(9, 10); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("RelError = %v, want -0.1", got)
	}
	if got := AbsRelError(9, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AbsRelError = %v, want 0.1", got)
	}
	if !math.IsNaN(RelError(1, 0)) {
		t.Error("RelError with zero truth should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCDFQuantileRoundTripProperty(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64()
	}
	c := NewCDF(xs)
	f := func(q8 uint8) bool {
		q := float64(q8) / 255
		v := c.Quantile(q)
		// At(Quantile(q)) >= q (within one sample of slack)
		return c.At(v)+1.0/float64(len(xs)) >= q-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram2D(t *testing.T) {
	h := NewHistogram2D(3, 4)
	h.Set(1, 2, 7)
	if got := h.At(1, 2); got != 7 {
		t.Errorf("At = %v", got)
	}
	row := h.Row(1)
	if len(row) != 4 || row[2] != 7 {
		t.Errorf("Row = %v", row)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P25 >= s.Median || s.Median >= s.P75 || s.P75 >= s.P99 {
		t.Errorf("quantiles out of order: %+v", s)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty Summarize should be NaN")
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = r.Gauss()
	}
	f := func(a, b uint8) bool {
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

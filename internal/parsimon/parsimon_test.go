package parsimon

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

func genWorkload(t *testing.T, n int, load float64, seed uint64) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	return genWorkloadOversub(t, n, load, seed, topo.Oversub2to1)
}

func genWorkloadOversub(t *testing.T, n int, load float64, seed uint64, o topo.Oversub) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	ft, err := topo.SmallFatTree(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: n, Sizes: workload.WebServer, Matrix: workload.MatrixB(32, r),
		Burstiness: 1.5, MaxLoad: load, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, flows
}

func TestRunBasics(t *testing.T) {
	ft, flows := genWorkload(t, 400, 0.4, 1)
	res, err := Run(context.Background(), ft.Topology, flows, packetsim.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowdown) != len(flows) {
		t.Fatalf("%d slowdowns", len(res.Slowdown))
	}
	for i, s := range res.Slowdown {
		if math.IsNaN(s) || s < 1 {
			t.Errorf("flow %d slowdown = %v (must be >= 1 by construction)", i, s)
		}
	}
	if res.LinksSimulated == 0 {
		t.Error("no links simulated")
	}
}

func TestParsimonOverestimatesVsGroundTruth(t *testing.T) {
	// The paper's §5.3 insight: Parsimon sums per-link delays and therefore
	// tends to overestimate slowdowns, especially with a small init window.
	ft, flows := genWorkload(t, 600, 0.5, 2)
	cfg := packetsim.DefaultConfig()
	cfg.InitWindow = 10 * unit.KB

	truth, err := packetsim.Run(ft.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(context.Background(), ft.Topology, flows, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	tP99 := stats.P99(truth.Slowdown)
	eP99 := stats.P99(est.Slowdown)
	if eP99 < tP99*0.8 {
		t.Errorf("Parsimon p99 (%v) strongly underestimates truth (%v)", eP99, tP99)
	}
	// Mean signed error should lean positive (overestimation).
	var signed float64
	for i := range truth.Slowdown {
		signed += stats.RelError(est.Slowdown[i], truth.Slowdown[i])
	}
	if signed/float64(len(flows)) < -0.1 {
		t.Errorf("Parsimon mean signed error %v — expected overestimation bias",
			signed/float64(len(flows)))
	}
}

func TestDeterminism(t *testing.T) {
	ft, flows := genWorkload(t, 200, 0.4, 3)
	cfg := packetsim.DefaultConfig()
	a, err := Run(context.Background(), ft.Topology, flows, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), ft.Topology, flows, cfg, 2) // different parallelism
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FCT {
		if a.FCT[i] != b.FCT[i] {
			t.Fatalf("parallelism changed results at flow %d", i)
		}
	}
}

func TestSingleFlowNearIdeal(t *testing.T) {
	// One flow alone in the network: link-level delays ~0, slowdown ~1.
	ft, _ := genWorkload(t, 10, 0.4, 4)
	r := routing.NewFatTreeRouter(ft)
	src := ft.HostsByRack[0][0]
	dst := ft.HostsByRack[20][0]
	route, err := r.Route(src, dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	flows := []workload.Flow{{ID: 0, Src: src, Dst: dst, Size: 10 * unit.KB, Route: route}}
	res, err := Run(context.Background(), ft.Topology, flows, packetsim.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown[0] > 1.6 {
		t.Errorf("lone flow slowdown = %v, want close to 1", res.Slowdown[0])
	}
}

func TestRunErrors(t *testing.T) {
	ft, _ := genWorkload(t, 10, 0.4, 5)
	cfg := packetsim.DefaultConfig()
	if _, err := Run(context.Background(), ft.Topology, []workload.Flow{{ID: 4}}, cfg, 1); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if _, err := Run(context.Background(), ft.Topology, []workload.Flow{{ID: 0}}, cfg, 1); err == nil {
		t.Error("routeless flow accepted")
	}
	res, err := Run(context.Background(), ft.Topology, nil, cfg, 1)
	if err != nil || len(res.FCT) != 0 {
		t.Error("empty input should succeed")
	}
	bad := cfg
	bad.InitWindow = 0
	if _, err := Run(context.Background(), ft.Topology, nil, bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunCancelled checks that a cancelled context aborts the per-link
// fan-out with ctx.Err() instead of a partial result.
func TestRunCancelled(t *testing.T) {
	ft, flows := genWorkload(t, 400, 0.4, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, ft.Topology, flows, packetsim.DefaultConfig(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("got a result from a cancelled run")
	}
}

// TestRunCancelPrompt cancels shortly after the fan-out starts and checks
// Run returns well before the full workload would have finished.
func TestRunCancelPrompt(t *testing.T) {
	ft, flows := genWorkload(t, 4000, 0.7, 3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := Run(ctx, ft.Topology, flows, packetsim.DefaultConfig(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}
}

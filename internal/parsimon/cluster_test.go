package parsimon

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
	"time"

	"m3/internal/packetsim"
	"m3/internal/pool"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/workload"
)

func newTestPool(t *testing.T, workers int) *pool.Pool {
	t.Helper()
	p := pool.New(workers)
	t.Cleanup(p.Close)
	return p
}

// buildPlanForTest reproduces RunWithOptions's grouping/canonicalization
// preamble and returns the deterministic cluster plan, for property tests
// that inspect the assignment directly.
func buildPlanForTest(t *testing.T, tp *topo.Topology, flows []workload.Flow, threshold float64) *clusterPlan {
	t.Helper()
	linkFlows := make(map[topo.LinkID][]workload.FlowID)
	for i := range flows {
		for _, l := range flows[i].Route {
			linkFlows[l] = append(linkFlows[l], flows[i].ID)
		}
	}
	links := make([]topo.LinkID, 0, len(linkFlows))
	for l := range linkFlows {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		canonicalize(linkFlows[l], flows)
	}
	return planClusters(tp, flows, links, linkFlows, threshold)
}

// memberToRep flattens a plan into link -> representative-link, the
// assignment the broadcast step executes.
func memberToRep(plan *clusterPlan) map[topo.LinkID]topo.LinkID {
	m := make(map[topo.LinkID]topo.LinkID)
	for _, su := range plan.sims {
		rep := plan.works[plan.groups[su.groupIdx][0]].link
		for _, wi := range plan.groups[su.groupIdx] {
			m[plan.works[wi].link] = rep
		}
		for _, g := range su.approx {
			for _, wi := range plan.groups[g] {
				m[plan.works[wi].link] = rep
			}
		}
	}
	return m
}

// TestClusterEveryLinkExactlyOnce: the plan must partition the congested
// links — every link in exactly one exact group, every exact group in
// exactly one simulation unit.
func TestClusterEveryLinkExactlyOnce(t *testing.T) {
	ft, flows := genWorkload(t, 400, 0.4, 1)
	for _, thr := range []float64{0, 0.5, 4} {
		plan := buildPlanForTest(t, ft.Topology, flows, thr)

		linkSeen := make(map[topo.LinkID]int)
		for _, g := range plan.groups {
			for _, wi := range g {
				linkSeen[plan.works[wi].link]++
			}
		}
		if len(linkSeen) != len(plan.works) {
			t.Fatalf("thr=%v: %d links grouped, want %d", thr, len(linkSeen), len(plan.works))
		}
		for l, n := range linkSeen {
			if n != 1 {
				t.Fatalf("thr=%v: link %d in %d exact groups", thr, l, n)
			}
		}

		groupSeen := make(map[int]int)
		for _, su := range plan.sims {
			groupSeen[su.groupIdx]++
			for _, g := range su.approx {
				groupSeen[g]++
			}
		}
		if len(groupSeen) != len(plan.groups) {
			t.Fatalf("thr=%v: %d groups assigned, want %d", thr, len(groupSeen), len(plan.groups))
		}
		for g, n := range groupSeen {
			if n != 1 {
				t.Fatalf("thr=%v: exact group %d in %d sim units", thr, g, n)
			}
		}

		// The broadcast covers every link.
		if m := memberToRep(plan); len(m) != len(plan.works) {
			t.Fatalf("thr=%v: broadcast covers %d links, want %d", thr, len(m), len(plan.works))
		}
	}
}

// TestClusterRepStableUnderPermutation: reordering the input flow slice
// (with IDs reassigned to stay index-dense, as the API requires) must not
// change which link represents each cluster.
func TestClusterRepStableUnderPermutation(t *testing.T) {
	ft, flows := genWorkload(t, 400, 0.4, 2)

	permuted := make([]workload.Flow, len(flows))
	for i := range flows {
		permuted[i] = flows[len(flows)-1-i]
		permuted[i].ID = workload.FlowID(i)
	}

	for _, thr := range []float64{0, 1} {
		a := memberToRep(buildPlanForTest(t, ft.Topology, flows, thr))
		b := memberToRep(buildPlanForTest(t, ft.Topology, permuted, thr))
		if len(a) != len(b) {
			t.Fatalf("thr=%v: %d vs %d links", thr, len(a), len(b))
		}
		for l, rep := range a {
			if b[l] != rep {
				t.Fatalf("thr=%v: link %d representative %d -> %d under permutation",
					thr, l, rep, b[l])
			}
		}
	}
}

// TestClusterCountMonotone: the power-of-two-snapped quantization makes
// buckets nest, so raising the threshold can only merge clusters.
func TestClusterCountMonotone(t *testing.T) {
	ft, flows := genWorkload(t, 400, 0.4, 3)
	thresholds := []float64{0.05, 0.1, 0.2, 0.5, 1, 2, 4, 8, 16}
	prev := math.MaxInt
	for _, thr := range thresholds {
		plan := buildPlanForTest(t, ft.Topology, flows, thr)
		n := len(plan.sims)
		if n > prev {
			t.Fatalf("cluster count rose from %d to %d at threshold %v", prev, n, thr)
		}
		prev = n
	}
	// And the exact tier is the upper bound.
	exact := buildPlanForTest(t, ft.Topology, flows, 0)
	if prev > len(exact.sims) {
		t.Fatalf("thresholded count %d exceeds exact-tier count %d", prev, len(exact.sims))
	}
}

// TestClusterDeterminism: clustered results must be bit-identical across
// runs and across pool widths (run under -count=2 in scripts/check.sh).
func TestClusterDeterminism(t *testing.T) {
	ft, flows := genWorkload(t, 200, 0.4, 3)
	cfg := packetsim.DefaultConfig()
	opts := Options{Cluster: true, ClusterThreshold: 0.5}
	a, err := RunWithOptions(context.Background(), ft.Topology, flows, cfg, newTestPool(t, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(context.Background(), ft.Topology, flows, cfg, newTestPool(t, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.LinksSimulated != b.LinksSimulated || a.Clusters != b.Clusters || a.ExactGroups != b.ExactGroups {
		t.Fatalf("cluster stats differ across pool widths: %+v vs %+v", a, b)
	}
	for i := range a.FCT {
		if a.FCT[i] != b.FCT[i] || a.Slowdown[i] != b.Slowdown[i] {
			t.Fatalf("pool width changed clustered result at flow %d", i)
		}
	}
}

func TestClusterOptionsValidation(t *testing.T) {
	ft, flows := genWorkload(t, 10, 0.4, 5)
	cfg := packetsim.DefaultConfig()
	p := newTestPool(t, 1)
	for _, thr := range []float64{math.NaN(), math.Inf(1), -1} {
		_, err := RunWithOptions(context.Background(), ft.Topology, flows, cfg, p,
			Options{Cluster: true, ClusterThreshold: thr})
		if err == nil {
			t.Errorf("threshold %v accepted", thr)
		}
	}
}

// TestClusterCancelPrompt cancels mid-clustered-run and checks both prompt
// return with ctx.Err() and that the shared pool stays usable afterwards.
func TestClusterCancelPrompt(t *testing.T) {
	ft, flows := genWorkload(t, 4000, 0.7, 3)
	p := newTestPool(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err := RunWithOptions(ctx, ft.Topology, flows, packetsim.DefaultConfig(), p,
		Options{Cluster: true, ClusterThreshold: 0.5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}

	// The pool must be reusable after a cancelled clustered run.
	ftSmall, small := genWorkload(t, 50, 0.3, 6)
	res, err := RunWithOptions(context.Background(), ftSmall.Topology, small,
		packetsim.DefaultConfig(), p, Options{Cluster: true})
	if err != nil {
		t.Fatalf("pool unusable after cancellation: %v", err)
	}
	if res.LinksSimulated == 0 {
		t.Fatal("no links simulated on reused pool")
	}
}

// clusterAccuracyEpsilons pins the p99-slowdown relative error budget of the
// distance tier per threshold, measured on the two scenarios below and
// frozen with headroom (see EXPERIMENTS.md for the recorded sweep). The
// exact tier (threshold 0) is bit-exact and asserted as such.
var clusterAccuracyEpsilons = map[float64]float64{
	0.25: 0.02,
	1:    0.18,
	4:    0.35,
}

// TestClusterAccuracyBound: on the seed-3 workload and a more congested
// 4-to-1 fat-tree scenario, the clustered p99 slowdown stays within the
// pinned epsilon of the full per-link simulation across three thresholds.
func TestClusterAccuracyBound(t *testing.T) {
	type scenario struct {
		name  string
		build func(t *testing.T) (*topo.FatTree, []workload.Flow)
	}
	scenarios := []scenario{
		{"seed3-2to1", func(t *testing.T) (*topo.FatTree, []workload.Flow) {
			return genWorkload(t, 400, 0.5, 3)
		}},
		{"seed9-4to1", func(t *testing.T) (*topo.FatTree, []workload.Flow) {
			return genWorkloadOversub(t, 400, 0.5, 9, topo.Oversub4to1)
		}},
	}
	cfg := packetsim.DefaultConfig()
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ft, flows := sc.build(t)
			p := newTestPool(t, 4)
			full, err := RunWithOptions(context.Background(), ft.Topology, flows, cfg, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			fullP99 := stats.P99(full.Slowdown)
			for thr, eps := range clusterAccuracyEpsilons {
				res, err := RunWithOptions(context.Background(), ft.Topology, flows, cfg, p,
					Options{Cluster: true, ClusterThreshold: thr})
				if err != nil {
					t.Fatal(err)
				}
				got := stats.P99(res.Slowdown)
				relErr := math.Abs(got-fullP99) / fullP99
				t.Logf("thr=%v: clusters=%d/%d links, p99 %.4f vs %.4f (rel err %.4f)",
					thr, res.LinksSimulated, res.LinksTotal, got, fullP99, relErr)
				if relErr > eps {
					t.Errorf("thr=%v: p99 rel error %.4f exceeds pinned epsilon %v", thr, relErr, eps)
				}
			}
		})
	}
}

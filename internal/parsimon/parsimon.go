// Package parsimon reimplements the Parsimon baseline [Zhao et al.,
// NSDI'23] the paper compares against: the network is decomposed into
// independent link-level simulations, each link's queue is simulated at
// packet granularity with every flow that crosses it (flows attach through
// stubs carrying their source and destination access capacities), and a
// flow's network-wide FCT is estimated as its unloaded ideal plus the sum of
// the extra delays it incurred in each link-level simulation.
//
// Summing per-link delays is exactly the assumption the paper dissects in
// §5.3: when the bottleneck is the transport itself (e.g. a small initial
// window), the per-link simulations each re-count the same transport-induced
// delay, so Parsimon overestimates slowdowns for larger flows.
package parsimon

import (
	"fmt"
	"runtime"
	"sync"

	"m3/internal/packetsim"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Result holds per-flow estimates indexed by FlowID.
type Result struct {
	FCT      []unit.Time
	Slowdown []float64
	// LinksSimulated is the number of link-level simulations executed.
	LinksSimulated int
}

// Run executes the link-level decomposition with the given parallelism
// (workers <= 0 uses GOMAXPROCS).
func Run(t *topo.Topology, flows []workload.Flow, cfg packetsim.Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(flows)
	res := &Result{FCT: make([]unit.Time, n), Slowdown: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	for i := range flows {
		f := &flows[i]
		if int(f.ID) < 0 || int(f.ID) >= n {
			return nil, fmt.Errorf("parsimon: flow ID %d out of range", f.ID)
		}
		if len(f.Route) == 0 {
			return nil, fmt.Errorf("parsimon: flow %d has no route", f.ID)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Group flows by link.
	linkFlows := make(map[topo.LinkID][]workload.FlowID)
	for i := range flows {
		for _, l := range flows[i].Route {
			linkFlows[l] = append(linkFlows[l], flows[i].ID)
		}
	}
	links := make([]topo.LinkID, 0, len(linkFlows))
	for l := range linkFlows {
		links = append(links, l)
	}

	// delays[flow] accumulates per-link extra delay.
	delays := make([]unit.Time, n)
	var mu sync.Mutex
	errs := make(chan error, len(links))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, l := range links {
		wg.Add(1)
		go func(l topo.LinkID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			extra, err := simulateLink(t, flows, linkFlows[l], l, cfg)
			if err != nil {
				errs <- fmt.Errorf("parsimon: link %d: %w", l, err)
				return
			}
			mu.Lock()
			for id, d := range extra {
				delays[id] += d
			}
			mu.Unlock()
		}(l)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}

	for i := range flows {
		f := &flows[i]
		ideal := t.IdealFCT(f.Size, f.Route)
		fct := ideal + delays[f.ID]
		res.FCT[f.ID] = fct
		res.Slowdown[f.ID] = float64(fct) / float64(ideal)
	}
	res.LinksSimulated = len(links)
	return res, nil
}

// simulateLink builds the single-link topology for l, runs the packet
// simulator, and returns each flow's delay beyond its ideal FCT on that
// link-level topology.
func simulateLink(t *topo.Topology, flows []workload.Flow, ids []workload.FlowID,
	l topo.LinkID, cfg packetsim.Config) (map[workload.FlowID]unit.Time, error) {

	link := t.Link(l)
	lot, err := topo.NewParkingLot([]unit.Rate{link.Rate}, []unit.Time{link.Delay})
	if err != nil {
		return nil, err
	}
	local := make([]workload.Flow, 0, len(ids))
	for i, id := range ids {
		f := &flows[id]
		srcRate := t.Link(f.Route[0]).Rate
		dstRate := t.Link(f.Route[len(f.Route)-1]).Rate
		src, dst, route, err := lot.AttachBg(uint64(f.Src), uint64(f.Dst), 0, 1,
			srcRate, dstRate, unit.Microsecond)
		if err != nil {
			return nil, err
		}
		local = append(local, workload.Flow{
			ID: workload.FlowID(i), Src: src, Dst: dst,
			Size: f.Size, Arrival: f.Arrival, Route: route,
		})
	}
	res, err := packetsim.Run(lot.Topology, local, cfg)
	if err != nil {
		return nil, err
	}
	extra := make(map[workload.FlowID]unit.Time, len(ids))
	for i, id := range ids {
		ideal := lot.IdealFCT(local[i].Size, local[i].Route)
		d := res.FCT[i] - ideal
		if d < 0 {
			d = 0
		}
		extra[id] = d
	}
	return extra, nil
}

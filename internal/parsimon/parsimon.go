// Package parsimon reimplements the Parsimon baseline [Zhao et al.,
// NSDI'23] the paper compares against: the network is decomposed into
// independent link-level simulations, each link's queue is simulated at
// packet granularity with every flow that crosses it (flows attach through
// stubs carrying their source and destination access capacities), and a
// flow's network-wide FCT is estimated as its unloaded ideal plus the sum of
// the extra delays it incurred in each link-level simulation.
//
// Summing per-link delays is exactly the assumption the paper dissects in
// §5.3: when the bottleneck is the transport itself (e.g. a small initial
// window), the per-link simulations each re-count the same transport-induced
// delay, so Parsimon overestimates slowdowns for larger flows.
package parsimon

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"m3/internal/packetsim"
	"m3/internal/pool"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Result holds per-flow estimates indexed by FlowID.
type Result struct {
	FCT      []unit.Time
	Slowdown []float64
	// LinksSimulated is the number of link-level simulations executed. With
	// clustering it equals Clusters; without, it equals LinksTotal.
	LinksSimulated int
	// LinksTotal is the number of distinct congested links in the workload.
	LinksTotal int
	// ExactGroups is the number of exact-tier groups (links with identical
	// canonical workloads). Zero when clustering is disabled.
	ExactGroups int
	// Clusters is the number of clusters after the distance tier (equal to
	// ExactGroups at threshold zero). Zero when clustering is disabled.
	Clusters int
}

// Run executes the link-level decomposition with the given parallelism
// (workers <= 0 uses GOMAXPROCS), aborting early with ctx.Err() on
// cancellation. Callers that already hold a worker pool should use
// RunWithPool instead of paying for a throwaway one.
func Run(ctx context.Context, t *topo.Topology, flows []workload.Flow, cfg packetsim.Config, workers int) (*Result, error) {
	p := pool.New(workers)
	defer p.Close()
	return RunWithPool(ctx, t, flows, cfg, p)
}

// RunWithPool is Run scheduling its per-link simulations on the caller's
// pool, so Parsimon fan-out shares cores with every other ground-truth
// producer in the process instead of oversubscribing them.
func RunWithPool(ctx context.Context, t *topo.Topology, flows []workload.Flow, cfg packetsim.Config, p *pool.Pool) (*Result, error) {
	return RunWithOptions(ctx, t, flows, cfg, p, Options{})
}

// RunWithOptions is RunWithPool with link clustering control. With
// opts.Cluster set, only one representative per cluster is packet-simulated
// and its extras are broadcast to the members (see cluster.go for the two
// tiers and their losslessness conditions); otherwise every congested link
// is simulated, as in the original Parsimon decomposition.
func RunWithOptions(ctx context.Context, t *topo.Topology, flows []workload.Flow, cfg packetsim.Config, p *pool.Pool, opts Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := len(flows)
	res := &Result{FCT: make([]unit.Time, n), Slowdown: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	// Flows are indexed by ID throughout (flows[id] must be the flow with
	// that ID), so IDs must be a permutation of [0, n).
	seen := make([]bool, n)
	for i := range flows {
		f := &flows[i]
		if int(f.ID) < 0 || int(f.ID) >= n {
			return nil, fmt.Errorf("parsimon: flow ID %d out of range", f.ID)
		}
		if seen[f.ID] {
			return nil, fmt.Errorf("parsimon: duplicate flow ID %d", f.ID)
		}
		seen[f.ID] = true
		if f.ID != workload.FlowID(i) {
			return nil, fmt.Errorf("parsimon: flow ID %d at index %d (flows must be indexed by ID)", f.ID, i)
		}
		if len(f.Route) == 0 {
			return nil, fmt.Errorf("parsimon: flow %d has no route", f.ID)
		}
	}

	// Group flows by link; sort the links so task order (and thus error
	// selection under cancellation) is deterministic, and put each link's
	// flows in canonical (arrival, ID) order so clustered and unclustered
	// runs simulate identical inputs.
	linkFlows := make(map[topo.LinkID][]workload.FlowID)
	for i := range flows {
		for _, l := range flows[i].Route {
			linkFlows[l] = append(linkFlows[l], flows[i].ID)
		}
	}
	links := make([]topo.LinkID, 0, len(linkFlows))
	for l := range linkFlows {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		canonicalize(linkFlows[l], flows)
	}
	res.LinksTotal = len(links)

	// delays[flow] accumulates per-link extra delay. Addition commutes, so
	// the pool's completion order cannot perturb the result.
	delays := make([]unit.Time, n)
	var mu sync.Mutex

	var err error
	if opts.Cluster {
		plan := planClusters(t, flows, links, linkFlows, opts.ClusterThreshold)
		res.ExactGroups = len(plan.groups)
		res.Clusters = len(plan.sims)
		res.LinksSimulated = len(plan.sims)
		err = p.Run(ctx, len(plan.sims), func(ctx context.Context, i int) error {
			su := plan.sims[i]
			rep := &plan.works[plan.groups[su.groupIdx][0]]
			extra, err := simulateLink(ctx, t, flows, rep.ids, rep.link, cfg)
			if err != nil {
				return fmt.Errorf("parsimon: link %d: %w", rep.link, err)
			}
			// Approximate extras for distance-tier members, computed from
			// the representative's size table outside the accumulation lock.
			// Within an exact group the canonical size sequences are
			// identical, so one lookup pass per group serves every member.
			var approx [][]unit.Time
			if len(su.approx) > 0 {
				tbl := buildSizeTable(flows, rep.ids, extra)
				approx = make([][]unit.Time, len(su.approx))
				for k, g := range su.approx {
					proto := &plan.works[plan.groups[g][0]]
					app := make([]unit.Time, len(proto.ids))
					for j, id := range proto.ids {
						app[j] = tbl.lookup(flows[id].Size)
					}
					approx[k] = app
				}
			}
			mu.Lock()
			for _, wi := range plan.groups[su.groupIdx] {
				for j, id := range plan.works[wi].ids {
					delays[id] += extra[j]
				}
			}
			for k, g := range su.approx {
				for _, wi := range plan.groups[g] {
					for j, id := range plan.works[wi].ids {
						delays[id] += approx[k][j]
					}
				}
			}
			mu.Unlock()
			return nil
		})
	} else {
		res.LinksSimulated = len(links)
		err = p.Run(ctx, len(links), func(ctx context.Context, i int) error {
			l := links[i]
			ids := linkFlows[l]
			extra, err := simulateLink(ctx, t, flows, ids, l, cfg)
			if err != nil {
				return fmt.Errorf("parsimon: link %d: %w", l, err)
			}
			mu.Lock()
			for j, id := range ids {
				delays[id] += extra[j]
			}
			mu.Unlock()
			return nil
		})
	}
	if err != nil {
		return nil, err
	}

	for i := range flows {
		f := &flows[i]
		ideal := t.IdealFCT(f.Size, f.Route)
		fct := ideal + delays[f.ID]
		res.FCT[f.ID] = fct
		res.Slowdown[f.ID] = float64(fct) / float64(ideal)
	}
	return res, nil
}

// simulateLink builds the single-link topology for l, runs the packet
// simulator, and returns each flow's delay beyond its ideal FCT on that
// link-level topology, aligned index-for-index with ids (which must be in
// canonical (arrival, ID) order).
//
// Arrivals are shifted so the link's earliest flow starts at zero: the
// packet engine is invariant under time translation, and normalized arrivals
// are what make links with identical canonical workloads — regardless of
// when their traffic occurs in absolute time — produce bit-identical extras,
// the exact-tier losslessness guarantee.
func simulateLink(ctx context.Context, t *topo.Topology, flows []workload.Flow,
	ids []workload.FlowID, l topo.LinkID, cfg packetsim.Config) ([]unit.Time, error) {

	link := t.Link(l)
	lot, err := topo.NewParkingLot([]unit.Rate{link.Rate}, []unit.Time{link.Delay})
	if err != nil {
		return nil, err
	}
	base := flows[ids[0]].Arrival
	local := make([]workload.Flow, 0, len(ids))
	for i, id := range ids {
		f := &flows[id]
		srcRate := t.Link(f.Route[0]).Rate
		dstRate := t.Link(f.Route[len(f.Route)-1]).Rate
		src, dst, route, err := lot.AttachBg(uint64(f.Src), uint64(f.Dst), 0, 1,
			srcRate, dstRate, unit.Microsecond)
		if err != nil {
			return nil, err
		}
		local = append(local, workload.Flow{
			ID: workload.FlowID(i), Src: src, Dst: dst,
			Size: f.Size, Arrival: f.Arrival - base, Route: route,
		})
	}
	res, err := packetsim.RunContext(ctx, lot.Topology, local, cfg)
	if err != nil {
		return nil, err
	}
	extra := make([]unit.Time, len(ids))
	for i := range ids {
		ideal := lot.IdealFCT(local[i].Size, local[i].Route)
		d := res.FCT[i] - ideal
		if d < 0 {
			d = 0
		}
		extra[i] = d
	}
	return extra, nil
}

package parsimon

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"m3/internal/packetsim"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// goldenHash digests a Result's per-flow outputs (FCT bits then slowdown
// bits) the same way engine_parity_test.go digests packet-simulator output:
// any numeric drift, however small, changes the hash.
func goldenHash(res *Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range res.FCT {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, v := range res.Slowdown {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// parsimonGoldens freezes the unclustered Parsimon results for two seed
// workloads on the 2-to-1 small fat-tree. Clustering must never change
// these: the disabled path is the baseline, and the clustered path is
// checked against it bit-for-bit elsewhere. Regenerate by running this test
// with PARSIMON_GOLDEN_DUMP=1 and pasting the logged values.
var parsimonGoldens = map[string]uint64{
	"web-n400-load0.4-seed1": 0x3b86b9d548475ada,
	"web-n250-load0.6-seed7": 0xeb37c3e3e0b5886c,
}

func goldenWorkload(t *testing.T, name string) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	switch name {
	case "web-n400-load0.4-seed1":
		ft, flows := genWorkload(t, 400, 0.4, 1)
		return ft, flows
	case "web-n250-load0.6-seed7":
		ft, flows := genWorkload(t, 250, 0.6, 7)
		return ft, flows
	}
	t.Fatalf("unknown golden scenario %q", name)
	return nil, nil
}

// TestParsimonGoldenParity pins the unclustered path to frozen hashes, so
// the clustering refactor (canonical flow order, arrival normalization)
// cannot silently drift the baseline results.
func TestParsimonGoldenParity(t *testing.T) {
	for name, want := range parsimonGoldens {
		t.Run(name, func(t *testing.T) {
			ft, flows := goldenWorkload(t, name)
			res, err := Run(context.Background(), ft.Topology, flows, packetsim.DefaultConfig(), 4)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenHash(res)
			if os.Getenv("PARSIMON_GOLDEN_DUMP") != "" {
				t.Logf("%q: %#x", name, got)
				return
			}
			if got != want {
				t.Errorf("golden hash = %#x, want %#x (PARSIMON_GOLDEN_DUMP=1 to regenerate)", got, want)
			}
		})
	}
}

// TestClusterExactTierBitIdentical runs the clustered path at threshold zero
// (exact tier only) on general workloads and demands bit-identical results:
// exact-tier merging is lossless by construction, for any workload, not just
// feature-identical ones.
func TestClusterExactTierBitIdentical(t *testing.T) {
	for _, name := range []string{"web-n400-load0.4-seed1", "web-n250-load0.6-seed7"} {
		t.Run(name, func(t *testing.T) {
			ft, flows := goldenWorkload(t, name)
			full, err := Run(context.Background(), ft.Topology, flows, packetsim.DefaultConfig(), 4)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunWithOptions(context.Background(), ft.Topology, flows,
				packetsim.DefaultConfig(), newTestPool(t, 4), Options{Cluster: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range full.FCT {
				if res.FCT[i] != full.FCT[i] || res.Slowdown[i] != full.Slowdown[i] {
					t.Fatalf("flow %d: clustered (%v, %v) != full (%v, %v)",
						i, res.FCT[i], res.Slowdown[i], full.FCT[i], full.Slowdown[i])
				}
			}
			if res.LinksTotal != full.LinksSimulated {
				t.Errorf("LinksTotal = %d, want %d", res.LinksTotal, full.LinksSimulated)
			}
			if res.LinksSimulated > res.LinksTotal {
				t.Errorf("simulated %d links out of %d", res.LinksSimulated, res.LinksTotal)
			}
		})
	}
}

// uniformWorkload builds a workload whose per-rack traffic pattern is
// identical across all 32 racks of the small fat-tree, with each rack's
// arrivals shifted by a rack-specific offset. Every rack's uplink carries
// the same canonical workload (three flows from one host) and the downlinks
// fall into two size classes, so the exact tier collapses 128 congested
// links into 3 groups — and, because the packet engine is time-translation
// invariant, losslessly so despite the per-rack time offsets.
func uniformWorkload(t *testing.T) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	r := routing.NewFatTreeRouter(ft)
	sizes := []unit.ByteSize{10 * unit.KB, 50 * unit.KB, 10 * unit.KB}
	var flows []workload.Flow
	for rack := range ft.HostsByRack {
		off := unit.Time(rack) * 100 * unit.Microsecond
		src := ft.HostsByRack[rack][0]
		for j, size := range sizes {
			dst := ft.HostsByRack[rack][1+j]
			id := workload.FlowID(len(flows))
			route, err := r.Route(src, dst, uint64(id))
			if err != nil {
				t.Fatal(err)
			}
			flows = append(flows, workload.Flow{
				ID: id, Src: src, Dst: dst, Size: size,
				Arrival: off + unit.Time(j)*10*unit.Microsecond, Route: route,
			})
		}
	}
	return ft, flows
}

// TestClusterUniformWorkloadLossless is the headline parity case from the
// issue: with all links feature-identical (per-rack uniform workload) and
// clustering on, results must be bit-identical to the unclustered path while
// simulating a small fraction of the links.
func TestClusterUniformWorkloadLossless(t *testing.T) {
	ft, flows := uniformWorkload(t)
	cfg := packetsim.DefaultConfig()
	full, err := Run(context.Background(), ft.Topology, flows, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithOptions(context.Background(), ft.Topology, flows, cfg,
		newTestPool(t, 4), Options{Cluster: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.FCT {
		if res.FCT[i] != full.FCT[i] || res.Slowdown[i] != full.Slowdown[i] {
			t.Fatalf("flow %d: clustered (%v, %v) != full (%v, %v)",
				i, res.FCT[i], res.Slowdown[i], full.FCT[i], full.Slowdown[i])
		}
	}
	// 32 racks x (1 uplink + 3 downlinks), collapsed to: one uplink group,
	// two downlink size classes.
	if res.LinksTotal != 128 {
		t.Errorf("LinksTotal = %d, want 128", res.LinksTotal)
	}
	if res.ExactGroups != 3 || res.LinksSimulated != 3 {
		t.Errorf("ExactGroups = %d, LinksSimulated = %d, want 3 and 3",
			res.ExactGroups, res.LinksSimulated)
	}
}

package parsimon

// Link clustering in the style of Parsimon [Zhao et al., NSDI'23] §5: links
// whose offered workloads look alike produce near-identical queueing, so one
// representative per cluster is simulated at packet level and its per-flow
// extra delays are broadcast to every member. Two tiers:
//
//   - Exact tier (always on with Options.Cluster): links are grouped by a
//     canonical workload signature — link rate and delay plus, for every
//     crossing flow in canonical (arrival, ID) order, its size, its arrival
//     offset from the link's earliest arrival, dense first-appearance class
//     indices of its source and destination hosts, and its access rates.
//     Links with equal signatures present bit-identical inputs to the packet
//     simulator (the engine is invariant under time translation, stub
//     identity is determined by the class indices), so broadcasting the
//     representative's extras index-for-index is lossless by construction.
//
//   - Distance tier (Options.ClusterThreshold > 0): exact groups are further
//     merged when their feature vectors (log link rate, delay, log flow
//     count, offered load, log size percentiles) fall in the same quantized
//     bucket. Bucket width is the threshold snapped up to a power of two, so
//     buckets nest as the threshold grows and cluster count is monotone
//     non-increasing in it. Members of a merged group receive extras by
//     nearest-size lookup in the representative's (size -> mean extra) table;
//     this tier is an approximation, bounded empirically in EXPERIMENTS.md.

import (
	"math"
	"sort"

	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/validate"
	"m3/internal/workload"
)

// Options selects the clustered execution path and its accuracy knob.
type Options struct {
	// Cluster enables link clustering. With it set, only one representative
	// link per cluster is packet-simulated.
	Cluster bool
	// ClusterThreshold is the feature-space bucket width of the approximate
	// distance tier. Zero keeps only the (lossless) exact tier; larger values
	// merge more links at the cost of accuracy. Consulted only when Cluster
	// is set. Must be finite and non-negative.
	ClusterThreshold float64
}

// Validate reports option errors.
func (o Options) Validate() error {
	if math.IsNaN(o.ClusterThreshold) || math.IsInf(o.ClusterThreshold, 0) || o.ClusterThreshold < 0 {
		return validate.Errf("parsimon", "ClusterThreshold",
			"must be finite and non-negative, got %v", o.ClusterThreshold)
	}
	return nil
}

// featDims is the dimensionality of the distance-tier feature vector.
const featDims = 8

type featVec [featDims]float64

// sigKey is the exact-tier canonical workload signature: two independently
// seeded 64-bit hashes over the canonical workload stream. 128 bits keeps the
// collision probability negligible (~1e-20 at a million links), which is what
// lets the exact tier claim losslessness without retaining the full streams.
type sigKey [2]uint64

type sigHasher struct{ a, b uint64 }

func hmix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

func (h *sigHasher) add(x uint64) {
	h.a = hmix(h.a ^ x)
	h.b = hmix(h.b + x + 0x9e3779b97f4a7c15)
}

func (h *sigHasher) addFloat(f float64) { h.add(math.Float64bits(f)) }

func (h *sigHasher) key() sigKey { return sigKey{h.a, h.b} }

// linkWork is one congested link's canonicalized workload plus the derived
// clustering inputs.
type linkWork struct {
	link topo.LinkID
	// ids lists the crossing flows in canonical (Arrival, ID) order; extras
	// from a representative simulation are broadcast index-aligned onto it.
	ids   []workload.FlowID
	sig   sigKey
	feat  featVec
	flows int
}

// canonicalize sorts ids into the canonical (Arrival, ID) order that both
// the clustered and unclustered paths simulate in, so their results are
// directly comparable bit-for-bit.
func canonicalize(ids []workload.FlowID, flows []workload.Flow) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := &flows[ids[i]], &flows[ids[j]]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return ids[i] < ids[j]
	})
}

func log2Pos(x float64) float64 {
	if x < 1 {
		x = 1
	}
	return math.Log2(x)
}

// buildLinkWork fills w for one link whose ids are already canonical. The
// scratch maps carry dense first-appearance numbering of source/destination
// hosts and are reset by the caller between links.
func buildLinkWork(w *linkWork, t *topo.Topology, flows []workload.Flow,
	srcClass, dstClass map[topo.NodeID]uint64) {

	link := t.Link(w.link)
	h := &sigHasher{a: 0x6d33, b: 0x70617273} // fixed seeds: "m3", "pars"
	h.addFloat(float64(link.Rate))
	h.add(uint64(link.Delay))
	h.add(uint64(len(w.ids)))

	base := flows[w.ids[0]].Arrival
	span := flows[w.ids[len(w.ids)-1]].Arrival - base // ids are arrival-sorted
	var busy unit.Time
	sizes := make([]float64, len(w.ids))
	var sizeSum float64
	for i, id := range w.ids {
		f := &flows[id]
		sc, ok := srcClass[f.Src]
		if !ok {
			sc = uint64(len(srcClass))
			srcClass[f.Src] = sc
		}
		dc, ok := dstClass[f.Dst]
		if !ok {
			dc = uint64(len(dstClass))
			dstClass[f.Dst] = dc
		}
		srcRate := t.Link(f.Route[0]).Rate
		dstRate := t.Link(f.Route[len(f.Route)-1]).Rate
		h.add(uint64(f.Size))
		h.add(uint64(f.Arrival - base))
		h.add(sc)
		h.add(dc)
		h.addFloat(float64(srcRate))
		h.addFloat(float64(dstRate))

		busy += unit.TxTime(unit.WireSize(f.Size), link.Rate)
		sizes[i] = float64(f.Size)
		sizeSum += float64(f.Size)
	}
	w.sig = h.key()
	w.flows = len(w.ids)

	sort.Float64s(sizes)
	pct := func(q float64) float64 {
		i := int(q * float64(len(sizes)))
		if i >= len(sizes) {
			i = len(sizes) - 1
		}
		return sizes[i]
	}
	// Offered load proxy: serialization demand over the window it arrived in.
	// In (0, 1]; equals 1 when all flows arrive at once.
	load := float64(busy) / float64(span+busy)
	w.feat = featVec{
		log2Pos(float64(link.Rate) / float64(unit.Gbps)),
		float64(link.Delay) / float64(unit.Microsecond),
		log2Pos(float64(len(w.ids))),
		load,
		log2Pos(pct(0.50)),
		log2Pos(pct(0.90)),
		log2Pos(pct(0.99)),
		log2Pos(sizeSum / float64(len(sizes))),
	}
}

// quantWidth snaps thr up to the nearest power of two. Power-of-two widths
// nest: every bucket at width w is contained in exactly one bucket at width
// 2w, which is what makes cluster count monotone in the threshold.
func quantWidth(thr float64) float64 {
	return math.Ldexp(1, int(math.Ceil(math.Log2(thr))))
}

type quantKey [featDims]int64

func quantize(f featVec, w float64) quantKey {
	var k quantKey
	for i, v := range f {
		k[i] = int64(math.Floor(v / w))
	}
	return k
}

// simUnit is one packet simulation to run: the representative exact group
// (whose members get lossless index-aligned extras) plus the exact groups
// merged into it by the distance tier (whose members get nearest-size
// approximated extras).
type simUnit struct {
	groupIdx int
	approx   []int
}

// clusterPlan is the full deterministic assignment of links to simulations.
type clusterPlan struct {
	works []linkWork
	// groups are the exact-tier groups: indices into works, ascending (and
	// therefore ascending by LinkID). groups[i][0] is the group's
	// representative link.
	groups [][]int
	sims   []simUnit
}

// planClusters builds the two-tier clustering over canonicalized links.
// Everything is derived from sorted orders and first-appearance maps, so the
// plan is identical across runs, pool widths, and input permutations.
func planClusters(t *topo.Topology, flows []workload.Flow,
	links []topo.LinkID, linkFlows map[topo.LinkID][]workload.FlowID,
	threshold float64) *clusterPlan {

	plan := &clusterPlan{works: make([]linkWork, len(links))}
	srcClass := make(map[topo.NodeID]uint64)
	dstClass := make(map[topo.NodeID]uint64)
	for i, l := range links {
		w := &plan.works[i]
		w.link = l
		w.ids = linkFlows[l]
		clear(srcClass)
		clear(dstClass)
		buildLinkWork(w, t, flows, srcClass, dstClass)
	}

	// Exact tier: group by signature, members in ascending work order.
	bySig := make(map[sigKey]int, len(links))
	for i := range plan.works {
		g, ok := bySig[plan.works[i].sig]
		if !ok {
			g = len(plan.groups)
			bySig[plan.works[i].sig] = g
			plan.groups = append(plan.groups, nil)
		}
		plan.groups[g] = append(plan.groups[g], i)
	}

	if threshold <= 0 {
		plan.sims = make([]simUnit, len(plan.groups))
		for g := range plan.groups {
			plan.sims[g] = simUnit{groupIdx: g}
		}
		return plan
	}

	// Distance tier: merge exact groups sharing a quantized feature bucket.
	w := quantWidth(threshold)
	byBucket := make(map[quantKey]int)
	var clusters [][]int // exact-group indices, first-appearance order
	for g := range plan.groups {
		rep := &plan.works[plan.groups[g][0]]
		k := quantize(rep.feat, w)
		c, ok := byBucket[k]
		if !ok {
			c = len(clusters)
			byBucket[k] = c
			clusters = append(clusters, nil)
		}
		clusters[c] = append(clusters[c], g)
	}
	plan.sims = make([]simUnit, len(clusters))
	for c, gs := range clusters {
		// Representative: the exact group with the most flows (most queueing
		// signal), ties broken toward the smallest representative LinkID.
		best := gs[0]
		for _, g := range gs[1:] {
			bw, gw := &plan.works[plan.groups[best][0]], &plan.works[plan.groups[g][0]]
			if gw.flows > bw.flows || (gw.flows == bw.flows && gw.link < bw.link) {
				best = g
			}
		}
		su := simUnit{groupIdx: best}
		for _, g := range gs {
			if g != best {
				su.approx = append(su.approx, g)
			}
		}
		plan.sims[c] = su
	}
	return plan
}

// sizeTable maps flow size to the mean extra delay the representative link's
// flows of that size experienced; approximate cluster members read their
// extras from it by nearest size.
type sizeTable struct {
	sizes []unit.ByteSize // ascending, unique
	mean  []unit.Time
}

func buildSizeTable(flows []workload.Flow, ids []workload.FlowID, extra []unit.Time) sizeTable {
	type acc struct {
		size  unit.ByteSize
		sum   unit.Time
		count int64
	}
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return flows[ids[idx[a]]].Size < flows[ids[idx[b]]].Size
	})
	var accs []acc
	for _, i := range idx {
		s := flows[ids[i]].Size
		if n := len(accs); n > 0 && accs[n-1].size == s {
			accs[n-1].sum += extra[i]
			accs[n-1].count++
		} else {
			accs = append(accs, acc{size: s, sum: extra[i], count: 1})
		}
	}
	t := sizeTable{
		sizes: make([]unit.ByteSize, len(accs)),
		mean:  make([]unit.Time, len(accs)),
	}
	for i, a := range accs {
		t.sizes[i] = a.size
		t.mean[i] = a.sum / unit.Time(a.count)
	}
	return t
}

// lookup returns the mean extra for the tabulated size nearest s (ties go to
// the smaller size, keeping the lookup deterministic).
func (t sizeTable) lookup(s unit.ByteSize) unit.Time {
	i := sort.Search(len(t.sizes), func(i int) bool { return t.sizes[i] >= s })
	switch {
	case i == 0:
		return t.mean[0]
	case i == len(t.sizes):
		return t.mean[len(t.sizes)-1]
	}
	if t.sizes[i]-s < s-t.sizes[i-1] {
		return t.mean[i]
	}
	return t.mean[i-1]
}

package model

import (
	"context"
	"testing"

	"m3/internal/feature"
	"m3/internal/packetsim"
)

func TestGenerateFromNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs packet simulations")
	}
	nc := NetworkDataConfig{
		Workloads: 2, FlowsPerWorkload: 1500, PathsPerWorkload: 15,
		Seed: 3, Workers: 8, CCs: []packetsim.CCType{packetsim.DCTCP},
	}
	samples, err := GenerateFromNetworks(context.Background(), nc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// Samples exceed the path count only if dedup collapsed draws; bound it.
	if len(samples) > 2*15 {
		t.Fatalf("%d samples from 2x15 sampled paths", len(samples))
	}
	for i, s := range samples {
		if len(s.FgFeat) != feature.FeatureDim {
			t.Fatalf("sample %d: fg dim %d", i, len(s.FgFeat))
		}
		if len(s.BgFeats) < 2 || len(s.BgFeats) > 6 {
			t.Fatalf("sample %d: %d hops", i, len(s.BgFeats))
		}
		if len(s.Target) != feature.OutputDim || len(s.Mask) != feature.NumOutputBuckets {
			t.Fatalf("sample %d: bad target", i)
		}
		valid := false
		for b, ok := range s.Mask {
			if !ok {
				continue
			}
			valid = true
			for _, v := range s.Target[b*100 : (b+1)*100] {
				if v < 0.9 || v > 10000 {
					t.Fatalf("sample %d bucket %d target %v", i, b, v)
				}
			}
		}
		if !valid {
			t.Fatalf("sample %d has no valid bucket", i)
		}
	}
}

// TestGenerateFromNetworksLinkLabels exercises the clustered-Parsimon
// labeling path: one clustered decomposition run per workload replaces the
// per-path packet simulations, and the resulting targets must still be
// well-formed slowdowns aligned with each sampled path's foreground.
func TestGenerateFromNetworksLinkLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs link-level simulations")
	}
	nc := NetworkDataConfig{
		Workloads: 2, FlowsPerWorkload: 1500, PathsPerWorkload: 15,
		Seed: 3, Workers: 8, CCs: []packetsim.CCType{packetsim.DCTCP},
		LinkLabels: true, ClusterThreshold: 0.25,
	}
	samples, err := GenerateFromNetworks(context.Background(), nc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, s := range samples {
		if len(s.Target) != feature.OutputDim || len(s.Mask) != feature.NumOutputBuckets {
			t.Fatalf("sample %d: bad target", i)
		}
		valid := false
		for b, ok := range s.Mask {
			if !ok {
				continue
			}
			valid = true
			for _, v := range s.Target[b*100 : (b+1)*100] {
				if v < 0.9 || v > 10000 {
					t.Fatalf("sample %d bucket %d target %v", i, b, v)
				}
			}
		}
		if !valid {
			t.Fatalf("sample %d has no valid bucket", i)
		}
	}
	// Same config with labeling flipped must still be deterministic per mode
	// but produce different targets (the label source actually changed).
	ns, err := GenerateFromNetworks(context.Background(), nc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != len(samples) {
		t.Fatalf("link-label generation not deterministic: %d vs %d samples", len(ns), len(samples))
	}
	for i := range ns {
		for j := range ns[i].Target {
			if ns[i].Target[j] != samples[i].Target[j] {
				t.Fatalf("sample %d not deterministic under LinkLabels", i)
			}
		}
	}
}

func TestGenerateFromNetworksValidation(t *testing.T) {
	if _, err := GenerateFromNetworks(context.Background(), NetworkDataConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestGenerateFromNetworksDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs packet simulations")
	}
	nc := NetworkDataConfig{
		Workloads: 1, FlowsPerWorkload: 800, PathsPerWorkload: 8,
		Seed: 4, Workers: 4, CCs: []packetsim.CCType{packetsim.DCTCP},
	}
	a, err := GenerateFromNetworks(context.Background(), nc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFromNetworks(context.Background(), nc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Target {
			if a[i].Target[j] != b[i].Target[j] {
				t.Fatalf("sample %d not deterministic", i)
			}
		}
	}
}

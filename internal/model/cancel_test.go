package model

import (
	"context"
	"errors"
	"testing"

	"m3/internal/packetsim"
	"m3/internal/workload"
)

// TestGenerateCancelled checks that every dataset-generation entry point
// aborts a cancelled context with ctx.Err() instead of a partial dataset.
func TestGenerateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dc := DefaultDataConfig()
	dc.Scenarios = 8
	if _, err := Generate(ctx, dc); !errors.Is(err, context.Canceled) {
		t.Fatalf("Generate err = %v, want context.Canceled", err)
	}
	nc := DefaultNetworkDataConfig()
	nc.Workloads = 2
	if _, err := GenerateFromNetworks(ctx, nc); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateFromNetworks err = %v, want context.Canceled", err)
	}
	spec := workload.SynthSpec{
		Hops: 4, NumFg: 120, BgPerLink: 0.5,
		Sizes: workload.CacheFollower, Burstiness: 1.5, MaxLoad: 0.5, Seed: 3,
	}
	if _, err := GenerateScenarioSample(ctx, spec, packetsim.DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateScenarioSample err = %v, want context.Canceled", err)
	}
}

package model

import (
	"context"
	"fmt"
	"math"

	"m3/internal/feature"
	"m3/internal/flowsim"
	"m3/internal/packetsim"
	"m3/internal/pool"
	"m3/internal/rng"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// PathBaseRTT estimates the unloaded round-trip time of a path: propagation
// both ways plus one MTU serialization and one ACK serialization per hop.
// It matches the packet simulator's own base-RTT accounting.
func PathBaseRTT(rates []unit.Rate, delays []unit.Time) unit.Time {
	var rtt unit.Time
	for i, r := range rates {
		rtt += 2*delays[i] + unit.TxTime(unit.MTU+unit.HeaderBytes, r) +
			unit.TxTime(unit.HeaderBytes, r)
	}
	return rtt
}

// PathBDP returns the bandwidth-delay product of the path in bytes.
func PathBDP(rates []unit.Rate, delays []unit.Time) unit.ByteSize {
	if len(rates) == 0 {
		return 0
	}
	bottleneck := rates[0]
	for _, r := range rates {
		if r < bottleneck {
			bottleneck = r
		}
	}
	return unit.ByteSize(bottleneck.BytesPerSecond() * PathBaseRTT(rates, delays).Seconds())
}

// BuildInputs assembles the model-input part of a Sample from flowSim
// results on a path: foreground sizes and slowdowns, per-hop background
// sizes and slowdowns, the network config, and the path's link parameters.
func BuildInputs(fgSizes []unit.ByteSize, fgSldn []float64,
	bgSizes [][]unit.ByteSize, bgSldn [][]float64,
	cfg packetsim.Config, rates []unit.Rate, delays []unit.Time) *Sample {

	s := &Sample{
		FgFeat: feature.BuildFeature(fgSizes, fgSldn).LogTransform(),
		Spec:   feature.SpecVector(cfg, PathBDP(rates, delays), PathBaseRTT(rates, delays)),
	}
	for l := range bgSldn {
		s.BgFeats = append(s.BgFeats, feature.BuildFeature(bgSizes[l], bgSldn[l]).LogTransform())
	}
	return s
}

// SetTarget attaches the ground-truth output map built from the foreground
// flows' true slowdowns.
func (s *Sample) SetTarget(fgSizes []unit.ByteSize, trueSldn []float64) {
	m := feature.BuildOutput(fgSizes, trueSldn)
	s.Target = m.Data
	s.Mask = make([]bool, feature.NumOutputBuckets)
	for b, c := range m.Counts {
		s.Mask[b] = c > 0
	}
}

// RandomNetConfig draws a network configuration uniformly from the Table 4
// sample space. Restrict lists the allowed protocols (empty = all four).
func RandomNetConfig(r *rng.RNG, restrict ...packetsim.CCType) packetsim.Config {
	ccs := restrict
	if len(ccs) == 0 {
		ccs = []packetsim.CCType{packetsim.DCTCP, packetsim.TIMELY, packetsim.DCQCN, packetsim.HPCC}
	}
	uniform := func(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }
	cfg := packetsim.Config{
		CC:          ccs[r.Intn(len(ccs))],
		InitWindow:  unit.ByteSize(uniform(5e3, 30e3)),
		Buffer:      unit.ByteSize(uniform(200e3, 500e3)),
		PFC:         r.Intn(2) == 1,
		DCTCPK:      unit.ByteSize(uniform(5e3, 20e3)),
		HPCCEta:     uniform(0.70, 0.95),
		HPCCRateAI:  unit.Rate(uniform(500, 1000)) * unit.Mbps,
		TimelyTLow:  unit.Time(uniform(40e3, 60e3)),
		TimelyTHigh: unit.Time(uniform(100e3, 150e3)),
	}
	kmin := uniform(20e3, 50e3)
	cfg.DCQCNKmin = unit.ByteSize(kmin)
	cfg.DCQCNKmax = unit.ByteSize(uniform(50e3, 100e3))
	return cfg
}

// RandomSizeDist draws a size distribution from the Table 2 families:
// Pareto, exponential, Gaussian, or lognormal, with the size parameter
// theta in [5k, 50k].
func RandomSizeDist(r *rng.RNG) workload.SizeDist {
	theta := 5e3 + 45e3*r.Float64()
	switch r.Intn(4) {
	case 0:
		return workload.ParetoSize{MeanBytes: theta, Alpha: 1.2 + 1.8*r.Float64()}
	case 1:
		return workload.ExpSize{MeanBytes: theta}
	case 2:
		return workload.GaussianSize{MeanBytes: theta}
	default:
		return workload.LogNormalSize{MeanBytes: theta, Sigma: 0.5 + 1.5*r.Float64()}
	}
}

// DataConfig controls synthetic training-set generation (Table 2).
type DataConfig struct {
	Scenarios     int // number of parking-lot scenarios
	FgPerScenario int // foreground flows per scenario (paper: 20000)
	// FgMin/FgMax, when FgMax > 0, draw the foreground count log-uniformly
	// in [FgMin, FgMax] instead of using FgPerScenario. Real decompositions
	// of sparse workloads yield paths with very few foreground flows, so
	// training should cover that regime (the paper notes accuracy drops on
	// paths "deviating from our training distribution").
	FgMin, FgMax int
	BgPerLink    float64 // mean bg flows per link as a multiple of fg count
	// BgFlowsPerLink, when > 0, sets the mean background flows per link as
	// an absolute count (overrides BgPerLink). This matches real scenarios
	// where background volume is independent of foreground volume.
	BgFlowsPerLink float64
	Hops           []int // path lengths to cycle through (paper: 2, 4, 6)
	Seed           uint64
	Workers        int
	// VaryRates randomly swaps the 40 Gbps fabric links for 20 Gbps ones in
	// a fraction of scenarios (covering the 4-to-1 oversubscribed paths).
	VaryRates bool
	// CCs restricts the protocols sampled for ground truth (empty = all).
	CCs []packetsim.CCType
	// FixedConfig, if non-nil, pins the network config for every scenario.
	FixedConfig *packetsim.Config
}

// DefaultDataConfig returns a CPU-scale reduction of the paper's 120k-sim
// training set, tuned to the path regimes the estimator sees at this
// repository's workload scales.
func DefaultDataConfig() DataConfig {
	return DataConfig{
		Scenarios:      300,
		FgMin:          1,
		FgMax:          256,
		BgFlowsPerLink: 300,
		Hops:           []int{2, 4, 6},
		Seed:           1,
		Workers:        8,
		VaryRates:      true,
	}
}

// spanOf locates the contiguous run of original path links inside a route
// ([join, exit)); ok is false for routes that never touch the path (cannot
// happen for generated scenarios).
func spanOf(lot *topo.ParkingLot, route []topo.LinkID) (join, exit int, ok bool) {
	pos := make(map[topo.LinkID]int, len(lot.PathLinks))
	for i, l := range lot.PathLinks {
		pos[l] = i
	}
	join, exit = -1, -1
	for _, l := range route {
		if p, on := pos[l]; on {
			if join < 0 {
				join = p
			}
			exit = p + 1
		}
	}
	return join, exit, join >= 0
}

// GenerateScenarioSample builds one training sample: generate the synthetic
// parking-lot workload, extract flowSim features, and label with the packet
// simulator's foreground slowdowns. Cancelling ctx aborts either simulation
// mid-run with ctx.Err().
func GenerateScenarioSample(ctx context.Context, spec workload.SynthSpec, cfg packetsim.Config) (*Sample, error) {
	syn, err := workload.GenerateSynthetic(spec)
	if err != nil {
		return nil, err
	}
	fs, err := flowsim.RunContext(ctx, syn.Lot.Topology, syn.Flows)
	if err != nil {
		return nil, err
	}
	hops := syn.Lot.Hops()
	var fgSizes []unit.ByteSize
	var fgSldn []float64
	bgSizes := make([][]unit.ByteSize, hops)
	bgSldn := make([][]float64, hops)
	for i := range syn.Flows {
		f := &syn.Flows[i]
		if syn.IsFg(f.ID) {
			fgSizes = append(fgSizes, f.Size)
			fgSldn = append(fgSldn, fs.Slowdown[f.ID])
			continue
		}
		join, exit, ok := spanOf(syn.Lot, f.Route)
		if !ok {
			return nil, fmt.Errorf("model: background flow off path")
		}
		for l := join; l < exit; l++ {
			bgSizes[l] = append(bgSizes[l], f.Size)
			bgSldn[l] = append(bgSldn[l], fs.Slowdown[f.ID])
		}
	}
	rates := syn.Lot.RouteRates(syn.Lot.PathLinks)
	delays := syn.Lot.RouteDelays(syn.Lot.PathLinks)
	sample := BuildInputs(fgSizes, fgSldn, bgSizes, bgSldn, cfg, rates, delays)

	gt, err := packetsim.RunContext(ctx, syn.Lot.Topology, syn.Flows, cfg)
	if err != nil {
		return nil, err
	}
	var gtSldn []float64
	for i := range syn.Flows {
		if syn.IsFg(syn.Flows[i].ID) {
			gtSldn = append(gtSldn, gt.Slowdown[syn.Flows[i].ID])
		}
	}
	sample.SetTarget(fgSizes, gtSldn)
	return sample, nil
}

// Generate produces the synthetic training set in parallel on a worker pool
// sized by dc.Workers, aborting early with ctx.Err() on cancellation.
func Generate(ctx context.Context, dc DataConfig) ([]*Sample, error) {
	workers := dc.Workers
	if workers <= 0 {
		workers = 1
	}
	p := pool.New(workers)
	defer p.Close()
	return GenerateWithPool(ctx, dc, p)
}

// GenerateWithPool is Generate scheduling its per-scenario simulations on
// the caller's pool, so dataset generation shares cores with the other
// ground-truth producers in the process.
func GenerateWithPool(ctx context.Context, dc DataConfig, p *pool.Pool) ([]*Sample, error) {
	if dc.Scenarios <= 0 || (dc.FgPerScenario <= 0 && dc.FgMax <= 0) || len(dc.Hops) == 0 {
		return nil, fmt.Errorf("model: bad data config %+v", dc)
	}
	if dc.FgMax > 0 && (dc.FgMin <= 0 || dc.FgMin > dc.FgMax) {
		return nil, fmt.Errorf("model: need 0 < FgMin <= FgMax, got [%d, %d]", dc.FgMin, dc.FgMax)
	}
	root := rng.New(dc.Seed)
	type job struct {
		idx  int
		spec workload.SynthSpec
		cfg  packetsim.Config
	}
	jobs := make([]job, dc.Scenarios)
	for i := range jobs {
		r := root.Split(uint64(i) + 1)
		cfg := RandomNetConfig(r, dc.CCs...)
		if dc.FixedConfig != nil {
			cfg = *dc.FixedConfig
		}
		hops := dc.Hops[i%len(dc.Hops)]
		numFg := dc.FgPerScenario
		if dc.FgMax > 0 {
			// log-uniform in [FgMin, FgMax]
			lo, hi := math.Log(float64(dc.FgMin)), math.Log(float64(dc.FgMax)+1)
			numFg = int(math.Exp(lo + (hi-lo)*r.Float64()))
			numFg = max(dc.FgMin, min(numFg, dc.FgMax))
		}
		bgPerLink := dc.BgPerLink
		if dc.BgFlowsPerLink > 0 {
			// SynthSpec expresses bg volume as a multiple of fg count; draw
			// the absolute per-link count log-uniformly around the target so
			// the model sees both sparse and dense background populations.
			lo, hi := math.Log(dc.BgFlowsPerLink/4), math.Log(dc.BgFlowsPerLink*4)
			bgAbs := math.Exp(lo + (hi-lo)*r.Float64())
			bgPerLink = bgAbs / float64(numFg)
		}
		var rates []unit.Rate
		if dc.VaryRates && hops > 2 && r.Intn(3) == 0 {
			rates = workload.DefaultPathRates(hops)
			for j := 1; j < hops-1; j++ {
				rates[j] = 20 * unit.Gbps // 4-to-1 oversubscribed fabric
			}
		}
		jobs[i] = job{
			idx: i,
			spec: workload.SynthSpec{
				Hops:       hops,
				NumFg:      numFg,
				BgPerLink:  bgPerLink,
				Sizes:      RandomSizeDist(r),
				Burstiness: 1 + r.Float64(), // sigma in [1, 2]
				// The paper trains at 20-80% path load; real decompositions
				// also sample many nearly idle paths, so the range here
				// extends down to 5% to keep inference in-distribution.
				MaxLoad: 0.05 + 0.75*r.Float64(),
				Seed:    r.Uint64(),
				Rates:   rates,
			},
			cfg: cfg,
		}
	}
	samples := make([]*Sample, dc.Scenarios)
	err := p.Run(ctx, len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		s, err := GenerateScenarioSample(ctx, j.spec, j.cfg)
		if err != nil {
			return fmt.Errorf("model: scenario %d: %w", j.idx, err)
		}
		samples[j.idx] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

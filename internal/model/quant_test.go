package model

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"m3/internal/rng"
)

// quantTestConfig is a small-but-real architecture for the quantized-backend
// tests: multiple layers and heads so attention, residuals, and both norms
// all run.
func quantTestConfig(useCtx bool) Config {
	cfg := DefaultConfig()
	cfg.Dim = 32
	cfg.Heads = 2
	cfg.Layers = 2
	cfg.Hidden = 48
	cfg.MaxHops = 8
	cfg.UseContext = useCtx
	return cfg
}

// quantParityEps is the pinned float-vs-int8 relative error budget, per
// output percentile. Weight quantization is per-channel symmetric and
// activations are quantized per row, so the error through the 2-layer test
// net stays well under this; the pin exists to catch kernel regressions
// (a wrong scale or a saturating accumulator blows straight past it).
const quantParityEps = 0.05

// TestQuantizedParity is the int8-vs-float property test: over random nets
// and ragged batches, every quantized output percentile must stay within
// quantParityEps relative error of the float net's.
func TestQuantizedParity(t *testing.T) {
	for _, useCtx := range []bool{true, false} {
		t.Run(fmt.Sprintf("context=%v", useCtx), func(t *testing.T) {
			cfg := quantTestConfig(useCtx)
			for seed := uint64(1); seed <= 3; seed++ {
				cfg.Seed = seed
				net, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				q, err := Quantize(net)
				if err != nil {
					t.Fatal(err)
				}
				r := rng.New(seed * 77)
				batch := 1 + r.Intn(9)
				samples := make([]*Sample, batch)
				for i := range samples {
					samples[i] = randomSample(r, 1+r.Intn(cfg.MaxHops), cfg)
				}
				want, err := net.PredictBatch(context.Background(), samples)
				if err != nil {
					t.Fatal(err)
				}
				got, err := q.PredictBatch(context.Background(), samples)
				if err != nil {
					t.Fatal(err)
				}
				for i := range samples {
					for j := range want[i] {
						rel := math.Abs(got[i][j]-want[i][j]) / math.Max(math.Abs(want[i][j]), 1)
						if rel > quantParityEps || math.IsNaN(got[i][j]) {
							t.Fatalf("seed %d sample %d output %d: int8 %v vs float %v (rel %v > %v)",
								seed, i, j, got[i][j], want[i][j], rel, quantParityEps)
						}
					}
				}
			}
		})
	}
}

// TestQuantizedDeterminism: quantized inference is integer arithmetic in a
// fixed order, so two independent quantizations of the same weights must
// agree bit-for-bit — the property behind the serving layer's byte-stable
// responses.
func TestQuantizedDeterminism(t *testing.T) {
	cfg := quantTestConfig(true)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	samples := make([]*Sample, 5)
	for i := range samples {
		samples[i] = randomSample(r, 1+r.Intn(cfg.MaxHops), cfg)
	}
	a, err := q1.PredictBatch(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q2.PredictBatch(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("sample %d output %d: %v != %v (not bit-stable)", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestBackendFingerprints: kinds built from the same weights must have
// distinct fingerprints (they are not cache-equivalent), the derived
// fingerprint must be deterministic, and different weights must never
// collide through quantization.
func TestBackendFingerprints(t *testing.T) {
	cfg := quantTestConfig(false)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint() == net.Fingerprint() {
		t.Fatalf("quantized fingerprint %x equals float fingerprint", q.Fingerprint())
	}
	q2, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint() != q2.Fingerprint() {
		t.Fatalf("same weights quantized twice: fingerprints %x != %x", q.Fingerprint(), q2.Fingerprint())
	}
	cfg.Seed = 42
	other, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oq, err := Quantize(other)
	if err != nil {
		t.Fatal(err)
	}
	if oq.Fingerprint() == q.Fingerprint() {
		t.Fatalf("different weights, same quantized fingerprint %x", q.Fingerprint())
	}
	if got, want := q.Kind(), KindNetInt8; got != want {
		t.Fatalf("Kind() = %q, want %q", got, want)
	}
	if got, want := net.Kind(), KindNet; got != want {
		t.Fatalf("Kind() = %q, want %q", got, want)
	}
}

// TestBuildBackendRegistry: both built-in kinds build, the build is faithful
// (right dynamic type and kind), and an unregistered kind returns the typed
// unknown-backend error.
func TestBuildBackendRegistry(t *testing.T) {
	net, err := New(quantTestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{KindNet, KindNetInt8} {
		p, err := BuildBackend(kind, net)
		if err != nil {
			t.Fatalf("BuildBackend(%q): %v", kind, err)
		}
		if p.Kind() != kind {
			t.Fatalf("BuildBackend(%q).Kind() = %q", kind, p.Kind())
		}
	}
	_, err = BuildBackend("bogus", net)
	var unknown *UnknownBackendError
	if !errors.As(err, &unknown) || unknown.Kind != "bogus" {
		t.Fatalf("BuildBackend(bogus) = %v, want *UnknownBackendError", err)
	}
}

// TestQuantizedCheckpointRoundTrip: a quantized model saved to disk comes
// back as the same kind with the same fingerprint and bit-identical
// predictions; the float-only Load rejects it with a pointer at
// LoadPredictor.
func TestQuantizedCheckpointRoundTrip(t *testing.T) {
	cfg := quantTestConfig(true)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "int8.ckpt")
	if err := SavePredictorFile(q, path); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := p.(*QuantizedNet)
	if !ok {
		t.Fatalf("loaded %T, want *QuantizedNet", p)
	}
	if loaded.Fingerprint() != q.Fingerprint() {
		t.Fatalf("fingerprint %x != saved %x", loaded.Fingerprint(), q.Fingerprint())
	}
	r := rng.New(7)
	samples := []*Sample{randomSample(r, 3, cfg)}
	want, err := q.PredictBatch(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictBatch(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want[0] {
		if math.Float64bits(got[0][j]) != math.Float64bits(want[0][j]) {
			t.Fatalf("output %d: reloaded %v != saved %v", j, got[0][j], want[0][j])
		}
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("float-only LoadFile accepted an int8 checkpoint")
	}
	// A float checkpoint still loads as a float net through LoadPredictor.
	fpath := filepath.Join(t.TempDir(), "float.ckpt")
	if err := net.SaveFile(fpath); err != nil {
		t.Fatal(err)
	}
	fp, err := LoadPredictorFile(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fp.(*Net); !ok {
		t.Fatalf("float checkpoint loaded as %T", fp)
	}
}

// TestQuantizedCheckpointCorrupt: a flipped payload byte in an int8-tagged
// checkpoint is caught by the CRC and classified as *CorruptError — the
// serving layer's 422 path for quantized artifacts.
func TestQuantizedCheckpointCorrupt(t *testing.T) {
	net, err := New(quantTestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff
	path := filepath.Join(t.TempDir(), "corrupt.ckpt")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadPredictorFile(path)
	var corrupt *CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("corrupt int8 checkpoint: err = %v, want *CorruptError", err)
	}
}

// TestQuantizedSelfCheck: a healthy quantized model passes the same probe
// the serving layer runs on reload candidates.
func TestQuantizedSelfCheck(t *testing.T) {
	for _, useCtx := range []bool{true, false} {
		net, err := New(quantTestConfig(useCtx))
		if err != nil {
			t.Fatal(err)
		}
		q, err := Quantize(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.SelfCheck(); err != nil {
			t.Fatalf("context=%v: %v", useCtx, err)
		}
	}
}

// TestIsNilAndSourceNet: the typed-nil guards behind the Predictor seam.
func TestIsNilAndSourceNet(t *testing.T) {
	var n *Net
	var q *QuantizedNet
	for _, p := range []Predictor{nil, n, q} {
		if !IsNil(p) {
			t.Fatalf("IsNil(%T) = false", p)
		}
	}
	net, err := New(quantTestConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if IsNil(net) {
		t.Fatal("IsNil(live net) = true")
	}
	qq, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	if SourceNet(qq) != net {
		t.Fatal("SourceNet(quantized) is not the source net")
	}
	if SourceNet(net) != net {
		t.Fatal("SourceNet(net) is not itself")
	}
}

package model

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"m3/internal/feature"
	"m3/internal/rng"
)

// TestPredictBatchMatchesPredict is the batch/single parity property test:
// over random batch sizes (including 1) and ragged background-hop counts,
// PredictBatch must agree with per-sample Predict on every output bucket to
// within 1e-9 (the implementations share accumulation order, so they agree
// bitwise; the tolerance guards against reorderings in future refactors).
func TestPredictBatchMatchesPredict(t *testing.T) {
	for _, useCtx := range []bool{true, false} {
		t.Run(fmt.Sprintf("context=%v", useCtx), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Dim = 32
			cfg.Heads = 2
			cfg.Layers = 2
			cfg.Hidden = 48
			cfg.MaxHops = 8
			cfg.UseContext = useCtx
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(1234)
			for trial := 0; trial < 12; trial++ {
				batch := 1 + r.Intn(17)
				if trial == 0 {
					batch = 1 // always cover the degenerate batch
				}
				samples := make([]*Sample, batch)
				for i := range samples {
					samples[i] = randomSample(r, 1+r.Intn(cfg.MaxHops), cfg)
				}
				got, err := net.PredictBatch(context.Background(), samples)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != batch {
					t.Fatalf("trial %d: %d outputs for %d samples", trial, len(got), batch)
				}
				for i, s := range samples {
					want, err := net.Predict(s)
					if err != nil {
						t.Fatal(err)
					}
					for j := range want {
						if d := math.Abs(got[i][j] - want[j]); d > 1e-9 || math.IsNaN(got[i][j]) {
							t.Fatalf("trial %d sample %d (hops=%d) output %d: batch %v vs single %v (|d|=%v)",
								trial, i, len(s.BgFeats), j, got[i][j], want[j], d)
						}
					}
				}
			}
		})
	}
}

// TestPredictBatchValidation: shape errors surface instead of panicking,
// and an empty batch is a no-op.
func TestPredictBatchValidation(t *testing.T) {
	net, err := New(Config{
		FeatDim: feature.FeatureDim, SpecDim: feature.SpecDim, OutDim: feature.OutputDim,
		Dim: 16, Heads: 2, Layers: 1, Hidden: 32, MaxHops: 4, UseContext: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := net.PredictBatch(context.Background(), nil); err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	r := rng.New(5)
	good := randomSample(r, 2, net.Cfg)
	bad := randomSample(r, 2, net.Cfg)
	bad.FgFeat = bad.FgFeat[:10]
	if _, err := net.PredictBatch(context.Background(), []*Sample{good, bad}); err == nil {
		t.Fatal("bad fg dim accepted")
	}
	tooLong := randomSample(r, net.Cfg.MaxHops+1, net.Cfg)
	if _, err := net.PredictBatch(context.Background(), []*Sample{tooLong}); err == nil {
		t.Fatal("over-long bg sequence accepted")
	}
}

// TestPredictBatchConcurrent hammers one shared net with concurrent batched
// inference (run under -race by scripts/check.sh): results must be
// deterministic regardless of interleaving, since Apply paths share no
// mutable state and scratch arenas are per-goroutine.
func TestPredictBatchConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 32
	cfg.MaxHops = 6
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	samples := make([]*Sample, 24)
	for i := range samples {
		samples[i] = randomSample(r, 1+r.Intn(cfg.MaxHops), cfg)
	}
	want, err := net.PredictBatch(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got, err := net.PredictBatch(context.Background(), samples)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					for j := range got[i] {
						if got[i][j] != want[i][j] {
							errs <- fmt.Errorf("concurrent batch diverged at [%d][%d]", i, j)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

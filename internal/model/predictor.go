package model

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Backend kinds. The kind string is the request-facing backend name
// (`"backend"` field on /v1/estimate), the checkpoint header tag, and the
// per-backend metrics label.
const (
	// KindNet is the float64 transformer — the default backend.
	KindNet = "net"
	// KindNetInt8 is the int8 weight-quantized transformer.
	KindNetInt8 = "net-int8"
)

// Predictor is the inference backend interface: everything the estimator,
// cache, and serving layers need from a model. *Net satisfies it, as does
// *QuantizedNet; alternative architectures (e.g. a GNN estimator) plug in
// here without touching the estimation pipeline.
//
// Implementations must be safe for concurrent PredictBatch calls and must
// return a Fingerprint that changes whenever the predictions could — two
// predictors with the same fingerprint are cache-equivalent.
type Predictor interface {
	// PredictBatch runs inference over a batch, returning one postprocessed
	// slowdown map per sample (clamped to >= 1, per-bucket monotone).
	PredictBatch(ctx context.Context, samples []*Sample) ([][]float64, error)
	// Fingerprint is a cheap identity hash over architecture and weights.
	// Distinct kinds built from the same weights have distinct fingerprints.
	Fingerprint() uint64
	// SelfCheck probes the model and rejects one that computes garbage.
	SelfCheck() error
	// Kind names the backend (KindNet, KindNetInt8, ...).
	Kind() string
}

// ParallelismSetter is the optional Predictor extension for backends whose
// kernels can shard one inference call across worker goroutines. Both
// built-in backends implement it; implementations must keep sharded outputs
// bit-identical to serial (golden hashes and cache keys depend on it) and
// must accept concurrent calls.
type ParallelismSetter interface {
	SetPredictParallelism(p int)
	PredictParallelism() int
}

// SetPredictParallelism applies an intra-batch parallelism bound to p when
// its backend supports one, reporting whether it did. Foreign backends
// without the knob are left alone — callers treat that as "serial".
func SetPredictParallelism(p Predictor, n int) bool {
	if IsNil(p) {
		return false
	}
	if ps, ok := p.(ParallelismSetter); ok {
		ps.SetPredictParallelism(n)
		return true
	}
	return false
}

// UnknownBackendError reports a backend kind no builder is registered for.
type UnknownBackendError struct {
	Kind string
}

func (e *UnknownBackendError) Error() string {
	return fmt.Sprintf("model: unknown backend %q (have %v)", e.Kind, BackendKinds())
}

// BackendBuilder derives a Predictor of one kind from float weights.
type BackendBuilder func(*Net) (Predictor, error)

var (
	backendsMu sync.RWMutex
	backends   = map[string]BackendBuilder{
		KindNet:     func(n *Net) (Predictor, error) { return n, nil },
		KindNetInt8: func(n *Net) (Predictor, error) { return Quantize(n) },
	}
)

// RegisterBackend adds a builder for kind, replacing any existing one.
// Intended for init-time registration of alternative backends.
func RegisterBackend(kind string, b BackendBuilder) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	backends[kind] = b
}

// BackendKinds lists the registered backend kinds, sorted.
func BackendKinds() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	kinds := make([]string, 0, len(backends))
	for k := range backends {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// BuildBackend derives a Predictor of the requested kind from a float net.
// Unknown kinds return *UnknownBackendError.
func BuildBackend(kind string, n *Net) (Predictor, error) {
	backendsMu.RLock()
	b, ok := backends[kind]
	backendsMu.RUnlock()
	if !ok {
		return nil, &UnknownBackendError{Kind: kind}
	}
	return b(n)
}

// IsNil reports whether p is nil or wraps a typed nil pointer — the
// interface counterpart of `net == nil`, so a `var n *Net` passed through
// the Predictor seam still reads as "no model".
func IsNil(p Predictor) bool {
	switch v := p.(type) {
	case nil:
		return true
	case *Net:
		return v == nil
	case *QuantizedNet:
		return v == nil
	default:
		return false
	}
}

// SourceNet returns the float weights a predictor was derived from: a *Net
// is its own source, a *QuantizedNet remembers the net it was quantized
// from, and foreign backends return nil.
func SourceNet(p Predictor) *Net {
	switch v := p.(type) {
	case *Net:
		return v
	case *QuantizedNet:
		if v == nil {
			return nil
		}
		return v.Source()
	default:
		return nil
	}
}

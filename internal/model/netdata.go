package model

import (
	"context"
	"fmt"

	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/pathsim"
	"m3/internal/pool"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/sampling"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// NetworkDataConfig controls training-data generation from full-network
// decompositions: random workloads are generated on the small fat-tree,
// decomposed into paths, and sampled paths are labeled with ns-3-path (the
// path-level packet simulation, §2.1) — the same ground-truth protocol the
// paper trains against. Mixing these samples with the synthetic parking-lot
// set puts real decomposed-path feature distributions (sparse foregrounds,
// superposed background arrivals) into the training distribution.
type NetworkDataConfig struct {
	Workloads        int // number of full-network workloads to decompose
	FlowsPerWorkload int
	PathsPerWorkload int // sampled paths per workload
	Seed             uint64
	Workers          int
	// CCs restricts the ground-truth protocols (empty = all four).
	CCs []packetsim.CCType
	// LinkLabels switches ground-truth labeling from one packet-level path
	// simulation per sampled path (ns-3-path) to one clustered Parsimon run
	// per workload: sampled paths are labeled with the decomposition's
	// per-flow slowdowns. This is the Parsimon lever — labeling cost stops
	// scaling with the sampled-path count and the cluster count replaces the
	// congested-link count.
	LinkLabels bool
	// ClusterThreshold is the distance-tier threshold for LinkLabels runs
	// (zero keeps only the lossless exact tier).
	ClusterThreshold float64
}

// DefaultNetworkDataConfig matches DefaultDataConfig's scale.
func DefaultNetworkDataConfig() NetworkDataConfig {
	return NetworkDataConfig{
		Workloads:        8,
		FlowsPerWorkload: 8000,
		PathsPerWorkload: 50,
		Seed:             2,
		Workers:          8,
	}
}

// GenerateFromNetworks produces network-derived training samples on a
// worker pool, aborting early with ctx.Err() on cancellation. Each workload
// is memory-heavy (a full fat-tree decomposition), so concurrency is capped
// at a quarter of the worker count.
func GenerateFromNetworks(ctx context.Context, nc NetworkDataConfig) ([]*Sample, error) {
	if nc.Workloads <= 0 || nc.FlowsPerWorkload <= 0 || nc.PathsPerWorkload <= 0 {
		return nil, fmt.Errorf("model: bad network data config %+v", nc)
	}
	workers := nc.Workers
	if workers <= 0 {
		workers = 1
	}
	p := pool.New(max(1, workers/4))
	defer p.Close()
	root := rng.New(nc.Seed)
	results := make([][]*Sample, nc.Workloads)
	err := p.Run(ctx, nc.Workloads, func(ctx context.Context, i int) error {
		r := root.Split(uint64(i) + 1)
		samples, err := networkSamples(ctx, r, nc)
		if err != nil {
			return fmt.Errorf("model: network workload %d: %w", i, err)
		}
		results[i] = samples
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Sample
	for _, samples := range results {
		out = append(out, samples...)
	}
	return out, nil
}

// networkSamples generates one workload, decomposes it, and labels sampled
// paths with the path-level packet simulation.
func networkSamples(ctx context.Context, r *rng.RNG, nc NetworkDataConfig) ([]*Sample, error) {
	oversubs := []topo.Oversub{topo.Oversub1to1, topo.Oversub2to1, topo.Oversub4to1}
	ft, err := topo.SmallFatTree(oversubs[r.Intn(len(oversubs))])
	if err != nil {
		return nil, err
	}
	// Synthetic matrices with varying skew (distinct seeds from the
	// evaluation instances).
	matNames := []string{"A", "B", "C", "uniform"}
	mat, err := workload.Matrix(matNames[r.Intn(len(matNames))], ft.Cfg.NumRacks(), r.Split(7))
	if err != nil {
		return nil, err
	}
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows:   nc.FlowsPerWorkload,
		Sizes:      RandomSizeDist(r),
		Matrix:     mat,
		Burstiness: 1 + r.Float64(),
		MaxLoad:    0.1 + 0.7*r.Float64(),
		Seed:       r.Uint64(),
	})
	if err != nil {
		return nil, err
	}
	cfg := RandomNetConfig(r, nc.CCs...)

	d, err := pathsim.Decompose(ft.Topology, flows)
	if err != nil {
		return nil, err
	}
	sample, err := sampling.Weighted(d.FgWeights(), nc.PathsPerWorkload, r)
	if err != nil {
		return nil, err
	}
	distinct, _ := sampling.Dedup(sample)

	// Link-label mode: one clustered Parsimon run labels every sampled path
	// of this workload, instead of one packet-level path simulation each.
	var ps *parsimon.Result
	if nc.LinkLabels {
		lp := pool.New(max(1, nc.Workers/2))
		defer lp.Close()
		ps, err = parsimon.RunWithOptions(ctx, ft.Topology, flows, cfg, lp,
			parsimon.Options{Cluster: true, ClusterThreshold: nc.ClusterThreshold})
		if err != nil {
			return nil, err
		}
	}

	var out []*Sample
	for _, pi := range distinct {
		p := &d.Paths[pi]
		sc, err := d.Scenario(p)
		if err != nil {
			return nil, err
		}
		fs, err := sc.RunFlowSimContext(ctx)
		if err != nil {
			return nil, err
		}
		s := BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, cfg,
			d.T.RouteRates(p.Links), d.T.RouteDelays(p.Links))
		if ps != nil {
			sizes := make([]unit.ByteSize, len(p.Fg))
			sldn := make([]float64, len(p.Fg))
			for j, id := range p.Fg {
				sizes[j] = flows[id].Size
				sldn[j] = ps.Slowdown[id]
			}
			s.SetTarget(sizes, sldn)
		} else {
			gt, err := sc.RunPacketContext(ctx, cfg) // ns-3-path ground truth
			if err != nil {
				return nil, err
			}
			s.SetTarget(gt.Sizes, gt.Slowdown)
		}
		out = append(out, s)
	}
	return out, nil
}

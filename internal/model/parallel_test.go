package model

import (
	"context"
	"fmt"
	"math"
	"testing"

	"m3/internal/rng"
)

// TestPredictParallelismBitIdentical is the backend-level sharded-GEMM gate:
// for both built-in kinds, PredictBatch under every parallelism level must
// reproduce the serial outputs bit for bit — the property the golden hashes,
// cluster scatter parity, and per-backend cache keys depend on. Batches use
// the full-size default architecture so the kernels actually cross the
// sharding work threshold.
func TestPredictParallelismBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 11
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1234)
	samples := make([]*Sample, 12)
	for i := range samples {
		samples[i] = randomSample(r, 1+r.Intn(cfg.MaxHops), cfg)
	}
	for _, backend := range []Predictor{net, q} {
		t.Run(backend.Kind(), func(t *testing.T) {
			setter, ok := backend.(ParallelismSetter)
			if !ok {
				t.Fatalf("%s does not implement ParallelismSetter", backend.Kind())
			}
			setter.SetPredictParallelism(1)
			want, err := backend.PredictBatch(context.Background(), samples)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 8} {
				setter.SetPredictParallelism(par)
				if got := setter.PredictParallelism(); got != par {
					t.Fatalf("PredictParallelism = %d after Set(%d)", got, par)
				}
				got, err := backend.PredictBatch(context.Background(), samples)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					for j := range want[i] {
						if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
							t.Fatalf("par=%d sample %d output %d: %v != serial %v (not bit-identical)",
								par, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
		})
	}
}

// TestSetPredictParallelismHelper covers the optional-interface plumbing:
// both built-in backends accept the knob through the Predictor seam, nil
// predictors are ignored, and negative values clamp to serial.
func TestSetPredictParallelismHelper(t *testing.T) {
	cfg := quantTestConfig(true)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Predictor{net, q} {
		if !SetPredictParallelism(p, 4) {
			t.Fatalf("%s: SetPredictParallelism not applied", p.Kind())
		}
		if got := p.(ParallelismSetter).PredictParallelism(); got != 4 {
			t.Fatalf("%s: parallelism = %d, want 4", p.Kind(), got)
		}
		if !SetPredictParallelism(p, -3) {
			t.Fatalf("%s: negative set rejected", p.Kind())
		}
		if got := p.(ParallelismSetter).PredictParallelism(); got != 0 {
			t.Fatalf("%s: negative parallelism clamped to %d, want 0", p.Kind(), got)
		}
	}
	var nilNet *Net
	if SetPredictParallelism(nilNet, 2) {
		t.Fatal("typed-nil predictor accepted a parallelism knob")
	}
	if SetPredictParallelism(nil, 2) {
		t.Fatal("nil predictor accepted a parallelism knob")
	}
}

// TestPredictParallelismConcurrent exercises retuning while predictions are
// in flight (the serving layer's reload path does exactly this) under -race.
func TestPredictParallelismConcurrent(t *testing.T) {
	cfg := quantTestConfig(true)
	cfg.Seed = 5
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	samples := make([]*Sample, 6)
	for i := range samples {
		samples[i] = randomSample(r, 1+r.Intn(cfg.MaxHops), cfg)
	}
	net.SetPredictParallelism(1)
	want, err := net.PredictBatch(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				net.SetPredictParallelism((g + i) % 5)
				got, err := net.PredictBatch(context.Background(), samples)
				if err != nil {
					done <- err
					return
				}
				for i := range want {
					for j := range want[i] {
						if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
							done <- fmt.Errorf("concurrent retune changed outputs")
							return
						}
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

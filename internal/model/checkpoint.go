package model

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"m3/internal/faultinject"
)

// Checkpoint wire format v3: a fixed header followed by the gob payload.
//
//	[4]byte  magic "m3cp"
//	uint32   format version (little-endian)
//	byte     backend kind (v3+: 0 = net, 1 = net-int8)
//	uint32   CRC-32C (Castagnoli) of the payload
//	uint64   payload length in bytes
//	[]byte   gob-encoded checkpoint struct
//
// The CRC catches torn writes and bit rot before the gob decoder sees the
// bytes; the version gates future format changes; the explicit length
// detects truncation; the kind byte tells the loader which Predictor to
// build (the payload is always float weights — quantized backends are
// re-derived on load, so one payload format serves every kind). Version 2
// files (no kind byte, implicitly kind net) and files written before the
// header existed (bare gob) are still readable — Load sniffs the magic and
// version and falls back.
const (
	ckptMagic   = "m3cp"
	ckptVersion = 3
	// ckptVersionV2 is the pre-backend-kind header layout.
	ckptVersionV2 = 2
	// ckptMaxPayload bounds the decoded payload so a corrupt length field
	// cannot drive a multi-gigabyte allocation.
	ckptMaxPayload = 1 << 30
)

// Backend kind bytes in the v3 header.
const (
	ckptKindNet     byte = 0
	ckptKindNetInt8 byte = 1
)

// ckptKindName maps a header kind byte to the registry kind string.
func ckptKindName(b byte) (string, bool) {
	switch b {
	case ckptKindNet:
		return KindNet, true
	case ckptKindNetInt8:
		return KindNetInt8, true
	default:
		return "", false
	}
}

// ckptKindByte maps a registry kind string to its header byte.
func ckptKindByte(kind string) (byte, bool) {
	switch kind {
	case KindNet:
		return ckptKindNet, true
	case KindNetInt8:
		return ckptKindNetInt8, true
	default:
		return 0, false
	}
}

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a checkpoint that failed an integrity check: bad CRC,
// truncated payload, absurd length, or non-finite weights. Callers (the
// serving layer's reload endpoint) use it to distinguish a damaged artifact
// (422) from an operational error.
type CorruptError struct{ Reason string }

// Error implements the error interface.
func (e *CorruptError) Error() string { return "model: corrupt checkpoint: " + e.Reason }

// checkpoint is the gob payload: the architecture config plus weights keyed
// by parameter name.
type checkpoint struct {
	Cfg     Config
	Weights map[string][]float64
}

// Save writes the network (architecture + weights) to w in the versioned,
// CRC-protected format, tagged as the float backend.
func (n *Net) Save(w io.Writer) error { return saveCheckpoint(w, ckptKindNet, n) }

// Save writes the quantized model's checkpoint: the float source weights
// tagged with the int8 backend kind, so quantization replays on load.
func (q *QuantizedNet) Save(w io.Writer) error { return saveCheckpoint(w, ckptKindNetInt8, q.src) }

// saveCheckpoint writes the v3 header and gob payload for n's weights,
// tagged with the given backend kind byte.
func saveCheckpoint(w io.Writer, kind byte, n *Net) error {
	ck := checkpoint{Cfg: n.Cfg, Weights: make(map[string][]float64, len(n.params))}
	for _, p := range n.params {
		if _, dup := ck.Weights[p.Name]; dup {
			return fmt.Errorf("model: duplicate parameter name %q", p.Name)
		}
		ck.Weights[p.Name] = p.W
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&ck); err != nil {
		return fmt.Errorf("model: encoding checkpoint: %w", err)
	}
	var head [21]byte
	copy(head[:4], ckptMagic)
	binary.LittleEndian.PutUint32(head[4:8], ckptVersion)
	head[8] = kind
	binary.LittleEndian.PutUint32(head[9:13], crc32.Checksum(payload.Bytes(), ckptCRCTable))
	binary.LittleEndian.PutUint64(head[13:21], uint64(payload.Len()))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Load reads a float network saved by Net.Save. It remains the
// float-specific entry point: a checkpoint tagged with a different backend
// kind is rejected with a pointer at LoadPredictor, which handles any kind.
func Load(r io.Reader) (*Net, error) {
	p, err := LoadPredictor(r)
	if err != nil {
		return nil, err
	}
	n, ok := p.(*Net)
	if !ok {
		return nil, fmt.Errorf("model: checkpoint holds backend kind %q, not a float net; use LoadPredictor", p.Kind())
	}
	return n, nil
}

// LoadPredictor reads a checkpoint of any backend kind, verifying the
// header, CRC, parameter shapes, and weight finiteness before any byte
// reaches the model, then builds the Predictor the kind byte names (the
// payload is always float weights; derived backends such as net-int8 are
// rebuilt from them). Malformed or corrupt input of any kind returns an
// error (typically *CorruptError) — never a panic. Version 2 and legacy
// headerless checkpoints (bare gob) remain loadable as kind net.
func LoadPredictor(r io.Reader) (Predictor, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil || string(head) != ckptMagic {
		// Legacy format: the stream is the gob payload itself.
		n, err := decodePayload(br)
		if err != nil {
			return nil, err
		}
		return n, nil
	}
	var verBuf [8]byte
	if _, err := io.ReadFull(br, verBuf[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated header"}
	}
	version := binary.LittleEndian.Uint32(verBuf[4:8])
	kind := ckptKindNet
	var rest []byte
	switch version {
	case ckptVersionV2:
		var tail [12]byte // crc u32 | len u64
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return nil, &CorruptError{Reason: "truncated header"}
		}
		rest = tail[:]
	case ckptVersion:
		var tail [13]byte // kind byte | crc u32 | len u64
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return nil, &CorruptError{Reason: "truncated header"}
		}
		kind = tail[0]
		rest = tail[1:]
	default:
		return nil, fmt.Errorf("model: unsupported checkpoint format version %d (want %d)", version, ckptVersion)
	}
	kindName, ok := ckptKindName(kind)
	if !ok {
		return nil, fmt.Errorf("model: unsupported checkpoint backend kind byte %d", kind)
	}
	wantCRC := binary.LittleEndian.Uint32(rest[:4])
	length := binary.LittleEndian.Uint64(rest[4:12])
	if length > ckptMaxPayload {
		return nil, &CorruptError{Reason: fmt.Sprintf("payload length %d exceeds limit %d", length, int64(ckptMaxPayload))}
	}
	payload, err := io.ReadAll(io.LimitReader(br, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("model: reading checkpoint payload: %w", err)
	}
	if uint64(len(payload)) != length {
		return nil, &CorruptError{Reason: fmt.Sprintf("payload truncated: %d of %d bytes", len(payload), length)}
	}
	faultinject.At("model.load", &payload)
	if got := crc32.Checksum(payload, ckptCRCTable); got != wantCRC {
		return nil, &CorruptError{Reason: fmt.Sprintf("CRC mismatch: file says %08x, payload hashes to %08x", wantCRC, got)}
	}
	n, err := decodePayload(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	if kindName == KindNet {
		return n, nil
	}
	return BuildBackend(kindName, n)
}

// decodePayload turns the gob payload into a validated Net: the architecture
// must pass Config.Validate (via New), every parameter must be present with
// the exact shape, no unknown parameters may remain, and every weight must
// be finite.
func decodePayload(r io.Reader) (*Net, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: decoding checkpoint: %w", err)
	}
	n, err := New(ck.Cfg)
	if err != nil {
		return nil, err
	}
	seen := 0
	for _, p := range n.params {
		w, ok := ck.Weights[p.Name]
		if !ok {
			return nil, fmt.Errorf("model: checkpoint missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return nil, fmt.Errorf("model: parameter %q has %d weights, want %d",
				p.Name, len(w), len(p.W))
		}
		for i, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, &CorruptError{Reason: fmt.Sprintf("parameter %q weight %d is %v", p.Name, i, v)}
			}
		}
		copy(p.W, w)
		seen++
	}
	if seen != len(ck.Weights) {
		return nil, fmt.Errorf("model: checkpoint carries %d parameters, architecture declares %d",
			len(ck.Weights), seen)
	}
	return n, nil
}

// SaveFile writes the network to path atomically: the bytes land in a
// temp file in the same directory, are synced, and replace path with a
// rename — so a crash mid-save can never leave a half-written checkpoint
// where a reloading server will find it.
func (n *Net) SaveFile(path string) error {
	return saveFileAtomic(path, n.Save)
}

// SaveFile writes the quantized model's checkpoint to path atomically.
func (q *QuantizedNet) SaveFile(path string) error {
	return saveFileAtomic(path, q.Save)
}

// SavePredictorFile writes any checkpointable predictor to path atomically,
// tagged with its backend kind so LoadPredictorFile rebuilds the same kind.
// Backends without a float source (foreign architectures) are rejected.
func SavePredictorFile(p Predictor, path string) error {
	if IsNil(p) {
		return fmt.Errorf("model: save: nil predictor")
	}
	if _, ok := ckptKindByte(p.Kind()); !ok {
		return fmt.Errorf("model: save: backend kind %q has no checkpoint format", p.Kind())
	}
	switch v := p.(type) {
	case *Net:
		return v.SaveFile(path)
	case *QuantizedNet:
		return v.SaveFile(path)
	default:
		return fmt.Errorf("model: save: backend kind %q has no checkpoint format", p.Kind())
	}
}

func saveFileAtomic(path string, save func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		tmp = ""
		return err
	}
	tmp = "" // success: nothing to clean up
	return nil
}

// LoadFile reads a float network from path.
func LoadFile(path string) (*Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint %s: %w", path, err)
	}
	return n, nil
}

// LoadPredictorFile reads a checkpoint of any backend kind from path.
func LoadPredictorFile(path string) (Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := LoadPredictor(f)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint %s: %w", path, err)
	}
	return p, nil
}

package model

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"m3/internal/faultinject"
)

// Checkpoint wire format v2: a fixed header followed by the gob payload.
//
//	[4]byte  magic "m3cp"
//	uint32   format version (little-endian)
//	uint32   CRC-32C (Castagnoli) of the payload
//	uint64   payload length in bytes
//	[]byte   gob-encoded checkpoint struct
//
// The CRC catches torn writes and bit rot before the gob decoder sees the
// bytes; the version gates future format changes; the explicit length
// detects truncation. Files written before the header existed (bare gob)
// are still readable — Load sniffs the magic and falls back.
const (
	ckptMagic   = "m3cp"
	ckptVersion = 2
	// ckptMaxPayload bounds the decoded payload so a corrupt length field
	// cannot drive a multi-gigabyte allocation.
	ckptMaxPayload = 1 << 30
)

var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a checkpoint that failed an integrity check: bad CRC,
// truncated payload, absurd length, or non-finite weights. Callers (the
// serving layer's reload endpoint) use it to distinguish a damaged artifact
// (422) from an operational error.
type CorruptError struct{ Reason string }

// Error implements the error interface.
func (e *CorruptError) Error() string { return "model: corrupt checkpoint: " + e.Reason }

// checkpoint is the gob payload: the architecture config plus weights keyed
// by parameter name.
type checkpoint struct {
	Cfg     Config
	Weights map[string][]float64
}

// Save writes the network (architecture + weights) to w in the versioned,
// CRC-protected format.
func (n *Net) Save(w io.Writer) error {
	ck := checkpoint{Cfg: n.Cfg, Weights: make(map[string][]float64, len(n.params))}
	for _, p := range n.params {
		if _, dup := ck.Weights[p.Name]; dup {
			return fmt.Errorf("model: duplicate parameter name %q", p.Name)
		}
		ck.Weights[p.Name] = p.W
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&ck); err != nil {
		return fmt.Errorf("model: encoding checkpoint: %w", err)
	}
	var head [20]byte
	copy(head[:4], ckptMagic)
	binary.LittleEndian.PutUint32(head[4:8], ckptVersion)
	binary.LittleEndian.PutUint32(head[8:12], crc32.Checksum(payload.Bytes(), ckptCRCTable))
	binary.LittleEndian.PutUint64(head[12:20], uint64(payload.Len()))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Load reads a network saved by Save, verifying the header, CRC, parameter
// shapes, and weight finiteness before any byte reaches the model. Malformed
// or corrupt input of any kind returns an error (typically *CorruptError) —
// never a panic. Legacy headerless checkpoints (bare gob) remain loadable.
func Load(r io.Reader) (*Net, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil || string(head) != ckptMagic {
		// Legacy format: the stream is the gob payload itself.
		return decodePayload(br)
	}
	var fixed [20]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, &CorruptError{Reason: "truncated header"}
	}
	version := binary.LittleEndian.Uint32(fixed[4:8])
	if version != ckptVersion {
		return nil, fmt.Errorf("model: unsupported checkpoint format version %d (want %d)", version, ckptVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(fixed[8:12])
	length := binary.LittleEndian.Uint64(fixed[12:20])
	if length > ckptMaxPayload {
		return nil, &CorruptError{Reason: fmt.Sprintf("payload length %d exceeds limit %d", length, int64(ckptMaxPayload))}
	}
	payload, err := io.ReadAll(io.LimitReader(br, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("model: reading checkpoint payload: %w", err)
	}
	if uint64(len(payload)) != length {
		return nil, &CorruptError{Reason: fmt.Sprintf("payload truncated: %d of %d bytes", len(payload), length)}
	}
	faultinject.At("model.load", &payload)
	if got := crc32.Checksum(payload, ckptCRCTable); got != wantCRC {
		return nil, &CorruptError{Reason: fmt.Sprintf("CRC mismatch: file says %08x, payload hashes to %08x", wantCRC, got)}
	}
	return decodePayload(bytes.NewReader(payload))
}

// decodePayload turns the gob payload into a validated Net: the architecture
// must pass Config.Validate (via New), every parameter must be present with
// the exact shape, no unknown parameters may remain, and every weight must
// be finite.
func decodePayload(r io.Reader) (*Net, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: decoding checkpoint: %w", err)
	}
	n, err := New(ck.Cfg)
	if err != nil {
		return nil, err
	}
	seen := 0
	for _, p := range n.params {
		w, ok := ck.Weights[p.Name]
		if !ok {
			return nil, fmt.Errorf("model: checkpoint missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return nil, fmt.Errorf("model: parameter %q has %d weights, want %d",
				p.Name, len(w), len(p.W))
		}
		for i, v := range w {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, &CorruptError{Reason: fmt.Sprintf("parameter %q weight %d is %v", p.Name, i, v)}
			}
		}
		copy(p.W, w)
		seen++
	}
	if seen != len(ck.Weights) {
		return nil, fmt.Errorf("model: checkpoint carries %d parameters, architecture declares %d",
			len(ck.Weights), seen)
	}
	return n, nil
}

// SaveFile writes the network to path atomically: the bytes land in a
// temp file in the same directory, are synced, and replace path with a
// rename — so a crash mid-save can never leave a half-written checkpoint
// where a reloading server will find it.
func (n *Net) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := n.Save(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		tmp = ""
		return err
	}
	tmp = "" // success: nothing to clean up
	return nil
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("model: checkpoint %s: %w", path, err)
	}
	return n, nil
}

package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the gob wire format: the architecture config plus weights
// keyed by parameter name.
type checkpoint struct {
	Cfg     Config
	Weights map[string][]float64
}

// Save writes the network (architecture + weights) to w.
func (n *Net) Save(w io.Writer) error {
	ck := checkpoint{Cfg: n.Cfg, Weights: make(map[string][]float64, len(n.params))}
	for _, p := range n.params {
		if _, dup := ck.Weights[p.Name]; dup {
			return fmt.Errorf("model: duplicate parameter name %q", p.Name)
		}
		ck.Weights[p.Name] = p.W
	}
	return gob.NewEncoder(w).Encode(&ck)
}

// Load reads a network saved by Save.
func Load(r io.Reader) (*Net, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: decoding checkpoint: %w", err)
	}
	n, err := New(ck.Cfg)
	if err != nil {
		return nil, err
	}
	for _, p := range n.params {
		w, ok := ck.Weights[p.Name]
		if !ok {
			return nil, fmt.Errorf("model: checkpoint missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return nil, fmt.Errorf("model: parameter %q has %d weights, want %d",
				p.Name, len(w), len(p.W))
		}
		copy(p.W, w)
	}
	return n, nil
}

// SaveFile writes the network to path.
func (n *Net) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := n.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a network from path.
func LoadFile(path string) (*Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

package model

import (
	"bytes"
	"context"
	"math"
	"testing"

	"m3/internal/feature"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/unit"
	"m3/internal/workload"
)

func tinyConfig() Config {
	c := DefaultConfig()
	c.Dim = 16
	c.Heads = 2
	c.Layers = 1
	c.Hidden = 32
	return c
}

func randomSample(r *rng.RNG, hops int, cfg Config) *Sample {
	s := &Sample{
		FgFeat: make([]float64, cfg.FeatDim),
		Spec:   make([]float64, cfg.SpecDim),
		Target: make([]float64, cfg.OutDim),
		Mask:   make([]bool, feature.NumOutputBuckets),
	}
	for i := range s.FgFeat {
		s.FgFeat[i] = r.Float64()
	}
	for i := range s.Spec {
		s.Spec[i] = r.Float64()
	}
	for h := 0; h < hops; h++ {
		f := make([]float64, cfg.FeatDim)
		for i := range f {
			f[i] = r.Float64()
		}
		s.BgFeats = append(s.BgFeats, f)
	}
	for i := range s.Target {
		s.Target[i] = 1 + 3*r.Float64()
	}
	for b := range s.Mask {
		s.Mask[b] = true
	}
	return s
}

func TestNewAndShapes(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.NumParams() == 0 {
		t.Fatal("no parameters")
	}
	r := rng.New(1)
	s := randomSample(r, 4, n.Cfg)
	out, err := n.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != feature.OutputDim {
		t.Fatalf("output dim %d", len(out))
	}
}

func TestPredictPostprocessing(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	s := randomSample(r, 2, n.Cfg)
	out, err := n.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		row := out[b*100 : (b+1)*100]
		for i, v := range row {
			if v < 1 {
				t.Fatalf("bucket %d percentile %d below 1: %v", b, i, v)
			}
			if i > 0 && row[i] < row[i-1] {
				t.Fatalf("bucket %d row not monotone at %d", b, i)
			}
		}
	}
}

func TestNoContextVariant(t *testing.T) {
	c := tinyConfig()
	c.UseContext = false
	n, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	s := randomSample(r, 0, c)
	s.BgFeats = nil // no-context model ignores bg features
	if _, err := n.Predict(s); err != nil {
		t.Fatal(err)
	}
	// Context model has strictly more parameters.
	full, _ := New(tinyConfig())
	if n.NumParams() >= full.NumParams() {
		t.Error("no-context model should be smaller")
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []func(*Config){
		func(c *Config) { c.FeatDim = 0 },
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.Dim = 30; c.Heads = 4 }, // not divisible
		func(c *Config) { c.Layers = 0 },
	}
	for i, mutate := range bads {
		c := tinyConfig()
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSampleValidation(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	good := randomSample(r, 2, n.Cfg)
	if _, err := n.Predict(good); err != nil {
		t.Fatal(err)
	}
	bad := randomSample(r, 2, n.Cfg)
	bad.FgFeat = bad.FgFeat[:10]
	if _, err := n.Predict(bad); err == nil {
		t.Error("short fg feature accepted")
	}
	bad2 := randomSample(r, 2, n.Cfg)
	bad2.BgFeats = nil
	if _, err := n.Predict(bad2); err == nil {
		t.Error("context model accepted zero hops")
	}
	bad3 := randomSample(r, 20, n.Cfg)
	if _, err := n.Predict(bad3); err == nil {
		t.Error("overlong hop sequence accepted")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	var samples []*Sample
	for i := 0; i < 60; i++ {
		samples = append(samples, randomSample(r, 1+i%4, n.Cfg))
	}
	before := n.Loss(samples)
	res, err := n.Train(samples, TrainOptions{Epochs: 25, Batch: 10, LR: 3e-3, ValFrac: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := n.Loss(samples)
	if after >= before*0.7 {
		t.Errorf("training barely helped: before %v, after %v", before, after)
	}
	if math.IsNaN(res.ValLoss) {
		t.Error("validation loss is NaN")
	}
}

func TestMaskedLossIgnoresEmptyBuckets(t *testing.T) {
	pred := make([]float64, feature.OutputDim)
	target := make([]float64, feature.OutputDim)
	dout := make([]float64, feature.OutputDim)
	for i := range pred {
		pred[i] = 5 // huge error everywhere
	}
	mask := []bool{true, false, false, false}
	loss := maskedL1(pred, target, mask, dout)
	if math.Abs(loss-5) > 1e-9 {
		t.Errorf("masked loss = %v, want 5 (only bucket 0)", loss)
	}
	for i := 100; i < feature.OutputDim; i++ {
		if dout[i] != 0 {
			t.Fatal("gradient leaked into masked bucket")
		}
	}
	allMasked := maskedL1(pred, target, []bool{false, false, false, false}, dout)
	if allMasked != 0 {
		t.Errorf("fully masked loss = %v", allMasked)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	n, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	s := randomSample(r, 3, n.Cfg)
	want, err := n.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction differs after round trip at %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPathBDPAndRTT(t *testing.T) {
	rates := []unit.Rate{10 * unit.Gbps, 40 * unit.Gbps}
	delays := []unit.Time{unit.Microsecond, unit.Microsecond}
	rtt := PathBaseRTT(rates, delays)
	if rtt <= 4*unit.Microsecond {
		t.Errorf("baseRTT = %v, want > 4us (prop alone)", rtt)
	}
	bdp := PathBDP(rates, delays)
	wantBDP := unit.ByteSize(float64(10*unit.Gbps) / 8 * rtt.Seconds())
	if d := float64(bdp-wantBDP) / float64(wantBDP); math.Abs(d) > 0.01 {
		t.Errorf("BDP = %v, want %v", bdp, wantBDP)
	}
	if PathBDP(nil, nil) != 0 {
		t.Error("empty path BDP should be 0")
	}
}

func TestRandomNetConfigInRange(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		cfg := RandomNetConfig(r)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("random config invalid: %v", err)
		}
		if cfg.InitWindow < 5*unit.KB || cfg.InitWindow > 30*unit.KB {
			t.Fatalf("init window %v out of range", cfg.InitWindow)
		}
		if cfg.Buffer < 200*unit.KB || cfg.Buffer > 500*unit.KB {
			t.Fatalf("buffer %v out of range", cfg.Buffer)
		}
	}
	// restriction honored
	for i := 0; i < 20; i++ {
		cfg := RandomNetConfig(r, packetsim.DCTCP)
		if cfg.CC != packetsim.DCTCP {
			t.Fatal("restriction ignored")
		}
	}
}

func TestRandomSizeDistSane(t *testing.T) {
	r := rng.New(8)
	for i := 0; i < 50; i++ {
		d := RandomSizeDist(r)
		if d.Mean() < 5e3 || d.Mean() > 50e3 {
			t.Fatalf("theta %v out of range", d.Mean())
		}
		for j := 0; j < 100; j++ {
			if d.Sample(r) < 1 {
				t.Fatal("non-positive size")
			}
		}
	}
}

func TestGenerateScenarioSample(t *testing.T) {
	spec := workload.SynthSpec{
		Hops: 4, NumFg: 120, BgPerLink: 0.5,
		Sizes: workload.CacheFollower, Burstiness: 1.5, MaxLoad: 0.5, Seed: 3,
	}
	s, err := GenerateScenarioSample(context.Background(), spec, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FgFeat) != feature.FeatureDim || len(s.BgFeats) != 4 {
		t.Fatalf("input shapes: fg %d, hops %d", len(s.FgFeat), len(s.BgFeats))
	}
	if len(s.Target) != feature.OutputDim || len(s.Mask) != feature.NumOutputBuckets {
		t.Fatalf("target shapes: %d/%d", len(s.Target), len(s.Mask))
	}
	anyMask := false
	for _, m := range s.Mask {
		anyMask = anyMask || m
	}
	if !anyMask {
		t.Error("no valid output bucket")
	}
	// Targets in valid buckets are plausible slowdowns.
	for b, ok := range s.Mask {
		if !ok {
			continue
		}
		for _, v := range s.Target[b*100 : (b+1)*100] {
			if v < 0.9 || v > 1000 {
				t.Fatalf("bucket %d target %v implausible", b, v)
			}
		}
	}
}

func TestGenerateDatasetParallel(t *testing.T) {
	dc := DataConfig{
		Scenarios: 6, FgPerScenario: 60, BgPerLink: 0.3,
		Hops: []int{2, 4}, Seed: 9, Workers: 3,
	}
	samples, err := Generate(context.Background(), dc)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 6 {
		t.Fatalf("%d samples", len(samples))
	}
	hopsSeen := map[int]bool{}
	for _, s := range samples {
		hopsSeen[len(s.BgFeats)] = true
	}
	if !hopsSeen[2] || !hopsSeen[4] {
		t.Error("hop cycling broken")
	}
	// Determinism: same config -> same samples.
	again, err := Generate(context.Background(), dc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		for j := range samples[i].Target {
			if samples[i].Target[j] != again[i].Target[j] {
				t.Fatalf("dataset not deterministic at sample %d", i)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(context.Background(), DataConfig{}); err == nil {
		t.Error("empty data config accepted")
	}
}

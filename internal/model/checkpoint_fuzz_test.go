package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"m3/internal/faultinject"
)

func fuzzNet(t testing.TB) *Net {
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 16
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func checkpointBytes(t testing.TB) []byte {
	var buf bytes.Buffer
	if err := fuzzNet(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCheckpoint feeds arbitrary bytes to the checkpoint decoder. The only
// acceptable outcomes are a valid *Net or an error — any panic (slice out of
// range, huge allocation, gob explosion) fails the fuzz.
func FuzzCheckpoint(f *testing.F) {
	valid := checkpointBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])       // truncated payload
	f.Add(valid[:10])                 // truncated header
	f.Add([]byte{})                   // empty
	f.Add([]byte("m3cp"))             // magic only
	f.Add([]byte("not a checkpoint")) // legacy-path garbage
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // payload bit flip, CRC must catch
	f.Add(flipped)
	badLen := append([]byte(nil), valid...)
	for i := 12; i < 20; i++ { // absurd length field
		badLen[i] = 0xff
	}
	f.Add(badLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		net, err := Load(bytes.NewReader(data))
		if err == nil && net == nil {
			t.Fatal("Load returned nil net and nil error")
		}
		if net != nil {
			if err := net.SelfCheck(); err != nil {
				t.Fatalf("accepted checkpoint fails self-check: %v", err)
			}
		}
	})
}

func TestCheckpointFingerprintRoundTrip(t *testing.T) {
	n := fuzzNet(t)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != n.Fingerprint() {
		t.Error("round-trip changed the fingerprint")
	}
}

func TestCheckpointCRCDetectsBitFlip(t *testing.T) {
	raw := checkpointBytes(t)
	for _, off := range []int{20, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x01
		_, err := Load(bytes.NewReader(mut))
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("bit flip at %d: error %T (%v), want *CorruptError", off, err, err)
		}
	}
}

func TestCheckpointTruncation(t *testing.T) {
	raw := checkpointBytes(t)
	for _, n := range []int{0, 3, 7, 19, 21, len(raw) - 1} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestCheckpointVersionGate(t *testing.T) {
	raw := checkpointBytes(t)
	mut := append([]byte(nil), raw...)
	mut[4] = 99 // version field
	_, err := Load(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted or wrong error: %v", err)
	}
}

func TestCheckpointRejectsNonFiniteWeights(t *testing.T) {
	n := fuzzNet(t)
	// Rebuild the payload with a NaN weight and a fresh, valid CRC: only
	// the finiteness check can catch it.
	ck := checkpoint{Cfg: n.Cfg, Weights: make(map[string][]float64)}
	for _, p := range n.params {
		w := append([]float64(nil), p.W...)
		ck.Weights[p.Name] = w
	}
	for name := range ck.Weights {
		ck.Weights[name][0] = math.NaN()
		break
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&ck); err != nil {
		t.Fatal(err)
	}
	_, err := decodePayload(bytes.NewReader(payload.Bytes()))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Errorf("NaN weight: error %T (%v), want *CorruptError", err, err)
	}
}

func TestCheckpointLegacyFormat(t *testing.T) {
	// A pre-header checkpoint is the bare gob payload; Load must sniff and
	// decode it.
	n := fuzzNet(t)
	ck := checkpoint{Cfg: n.Cfg, Weights: make(map[string][]float64)}
	for _, p := range n.params {
		ck.Weights[p.Name] = p.W
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ck); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if got.Fingerprint() != n.Fingerprint() {
		t.Error("legacy round-trip changed the fingerprint")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m3.ckpt")
	n := fuzzNet(t)
	if err := n.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fpBefore := n.Fingerprint()
	// Overwrite with a different net; the old file must be replaced whole.
	cfg := n.Cfg
	cfg.Seed = 42
	other, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() == fpBefore {
		t.Error("overwrite did not replace the checkpoint")
	}
	// No temp files may survive a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("stray temp file %s after save", e.Name())
		}
	}
}

// TestLoadFaultInjectedCorruption corrupts the payload in flight through the
// faultinject hook, proving the CRC gate catches damage that happens after
// the file read.
func TestLoadFaultInjectedCorruption(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	faultinject.Set("model.load", func(detail any) {
		payload := detail.(*[]byte)
		if len(*payload) > 0 {
			(*payload)[0] ^= 0xff
		}
	})
	_, err := Load(bytes.NewReader(checkpointBytes(t)))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Errorf("injected corruption: error %T (%v), want *CorruptError", err, err)
	}
}

// Package model assembles the m3 neural network (§3.4): a tiny Llama-style
// transformer encoder that turns per-hop background feature maps into a
// fixed-size context vector, and a two-layer MLP that maps (foreground
// feature map, background context, network spec) to the corrected slowdown
// distribution — 4 output size buckets x 100 percentiles.
//
// It also provides synthetic-dataset generation (Table 2), training with
// Adam + L1 (§4), and gob checkpoints.
package model

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"m3/internal/feature"
	"m3/internal/ml"
	"m3/internal/rng"
)

// Config shapes the network. The paper's full-scale instance uses Dim=576,
// Heads=4, Layers=4, Hidden=512 (~16.8M parameters); the default here is a
// CPU-trainable reduction with the same architecture.
type Config struct {
	FeatDim int // flattened feature map size (10x100)
	SpecDim int // network spec vector size
	OutDim  int // flattened output size (4x100)
	Dim     int // transformer embedding dim
	Heads   int
	Layers  int
	Hidden  int // MLP hidden width
	MaxHops int // max path length the encoder accepts
	// UseContext false reproduces the "m3 w/o context" ablation (Fig. 16):
	// the background encoder is dropped and the MLP sees zeros instead.
	UseContext bool
	Seed       uint64
}

// DefaultConfig returns the CPU-scale default.
func DefaultConfig() Config {
	return Config{
		FeatDim:    feature.FeatureDim,
		SpecDim:    feature.SpecDim,
		OutDim:     feature.OutputDim,
		Dim:        64,
		Heads:      4,
		Layers:     2,
		Hidden:     256,
		MaxHops:    16,
		UseContext: true,
		Seed:       1,
	}
}

// PaperConfig returns the paper-scale architecture (trainable, but slow on
// CPU; provided for completeness).
func PaperConfig() Config {
	c := DefaultConfig()
	c.Dim = 576
	c.Heads = 4
	c.Layers = 4
	c.Hidden = 512
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.FeatDim <= 0 || c.SpecDim <= 0 || c.OutDim <= 0:
		return fmt.Errorf("model: dimensions must be positive")
	case c.Hidden <= 0 || c.MaxHops <= 0:
		return fmt.Errorf("model: hidden/maxhops must be positive")
	case c.UseContext && (c.Dim <= 0 || c.Heads <= 0 || c.Layers <= 0):
		return fmt.Errorf("model: encoder dims must be positive")
	case c.UseContext && c.Dim%c.Heads != 0:
		return fmt.Errorf("model: Dim %d not divisible by Heads %d", c.Dim, c.Heads)
	}
	return nil
}

// Sample is one path-level example: model inputs plus (for training) the
// ground-truth output map and its per-bucket validity mask.
type Sample struct {
	FgFeat  []float64   // log1p feature map of foreground flowSim slowdowns
	BgFeats [][]float64 // per-hop log1p feature maps of background slowdowns
	Spec    []float64   // normalized network spec (feature.SpecVector)
	Target  []float64   // raw ground-truth slowdown percentiles (OutDim)
	Mask    []bool      // per output bucket: true if the bucket had flows
}

// Net is the assembled m3 model.
type Net struct {
	Cfg    Config
	enc    *ml.Encoder
	head   *ml.MLP
	params []*ml.Param

	// par bounds intra-batch kernel parallelism in PredictBatch (see
	// SetPredictParallelism). Atomic so serving can retune a live model.
	par atomic.Int32
}

// SetPredictParallelism bounds how many worker goroutines one PredictBatch
// call may shard its GEMMs across (<= 1 means serial, the default). Sharded
// kernels are bit-identical to serial — each output row runs the unchanged
// serial accumulation — so this is purely a latency knob; fingerprints and
// cached results are unaffected. Safe to call concurrently with inference.
func (n *Net) SetPredictParallelism(p int) {
	if p < 0 {
		p = 0
	}
	n.par.Store(int32(p))
}

// PredictParallelism returns the current intra-batch parallelism bound.
func (n *Net) PredictParallelism() int { return int(n.par.Load()) }

// New builds a freshly initialized network.
func New(cfg Config) (*Net, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	n := &Net{Cfg: cfg}
	ctxDim := 0
	if cfg.UseContext {
		enc, err := ml.NewEncoder("enc", cfg.FeatDim, cfg.Dim, cfg.Heads, cfg.Layers, cfg.MaxHops, r)
		if err != nil {
			return nil, err
		}
		n.enc = enc
		n.params = append(n.params, enc.Params()...)
		ctxDim = cfg.Dim
	}
	n.head = ml.NewMLP("head", cfg.FeatDim+ctxDim+cfg.SpecDim, cfg.Hidden, cfg.OutDim, r)
	n.params = append(n.params, n.head.Params()...)
	return n, nil
}

// Fingerprint returns a cheap identity hash over the architecture and all
// weights, so callers (estimate caches, the serving layer) can tell model
// versions apart across checkpoint reloads. It must be recomputed after
// training or mutating weights in place.
func (n *Net) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(n.Cfg.Dim)<<32 | uint64(n.Cfg.Layers)<<16 | uint64(n.Cfg.Heads))
	for _, p := range n.params {
		for _, w := range p.W {
			mix(math.Float64bits(w))
		}
	}
	return h
}

// Kind identifies the float transformer backend (the Predictor default).
func (n *Net) Kind() string { return KindNet }

// NumParams returns the total trainable weight count.
func (n *Net) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += p.NumWeights()
	}
	return total
}

func (n *Net) ctxDim() int {
	if n.Cfg.UseContext {
		return n.Cfg.Dim
	}
	return 0
}

func (n *Net) checkSample(s *Sample) error { return n.Cfg.checkSample(s) }

// checkSample validates one sample's shape against the config; shared by
// every backend built from the same architecture.
func (c Config) checkSample(s *Sample) error {
	if len(s.FgFeat) != c.FeatDim {
		return fmt.Errorf("model: fg feature dim %d, want %d", len(s.FgFeat), c.FeatDim)
	}
	if len(s.Spec) != c.SpecDim {
		return fmt.Errorf("model: spec dim %d, want %d", len(s.Spec), c.SpecDim)
	}
	if c.UseContext {
		if len(s.BgFeats) == 0 || len(s.BgFeats) > c.MaxHops {
			return fmt.Errorf("model: %d bg hops, want 1..%d", len(s.BgFeats), c.MaxHops)
		}
		for i, f := range s.BgFeats {
			if len(f) != c.FeatDim {
				return fmt.Errorf("model: bg feature %d dim %d, want %d", i, len(f), c.FeatDim)
			}
		}
	}
	return nil
}

// forward runs the network; the returned slice is raw (no postprocessing).
func (n *Net) forward(s *Sample) ([]float64, error) {
	if err := n.checkSample(s); err != nil {
		return nil, err
	}
	in := make([]float64, 0, n.Cfg.FeatDim+n.ctxDim()+n.Cfg.SpecDim)
	in = append(in, s.FgFeat...)
	if n.Cfg.UseContext {
		ctx, err := n.enc.Forward(s.BgFeats)
		if err != nil {
			return nil, err
		}
		in = append(in, ctx...)
	}
	in = append(in, s.Spec...)
	return n.head.Forward(in), nil
}

// backward propagates dout; call immediately after forward on the same
// sample.
func (n *Net) backward(dout []float64) {
	din := n.head.Backward(dout)
	if n.Cfg.UseContext {
		dctx := din[n.Cfg.FeatDim : n.Cfg.FeatDim+n.Cfg.Dim]
		n.enc.Backward(dctx)
	}
}

// apply runs the network without caching backward state, so a shared Net
// can serve concurrent inference (Forward/Backward training state is never
// touched). The returned slice is raw (no postprocessing).
func (n *Net) apply(s *Sample) ([]float64, error) {
	if err := n.checkSample(s); err != nil {
		return nil, err
	}
	in := make([]float64, 0, n.Cfg.FeatDim+n.ctxDim()+n.Cfg.SpecDim)
	in = append(in, s.FgFeat...)
	if n.Cfg.UseContext {
		ctx, err := n.enc.Apply(s.BgFeats)
		if err != nil {
			return nil, err
		}
		in = append(in, ctx...)
	}
	in = append(in, s.Spec...)
	return n.head.Apply(in), nil
}

// Predict runs inference and post-processes the output into a valid
// slowdown map: every percentile is clamped to >= 1 (slowdowns are >= 1 by
// definition) and each bucket's percentile row is made monotone by sorting
// (isotonic projection). Predict is safe for concurrent use; it shares no
// state with training.
func (n *Net) Predict(s *Sample) ([]float64, error) {
	out, err := n.apply(s)
	if err != nil {
		return nil, err
	}
	for i := range out {
		if out[i] < 1 {
			out[i] = 1
		}
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		row := out[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles]
		sort.Float64s(row)
	}
	return out, nil
}

// PredictBatch runs inference over a batch of samples in one pass through
// the network: the samples' background sequences are concatenated into a
// single flat tensor (ragged, no padding — attention is block-diagonal over
// per-sample spans) and every Linear/attention/SwiGLU layer runs as one loop
// nest over contiguous memory, with all temporaries drawn from a pooled
// scratch arena. Steady-state batches therefore cost a handful of
// allocations (the returned slices) instead of one per layer per sample.
//
// The outputs are post-processed exactly like Predict (clamp to >= 1,
// per-bucket isotonic sort) and agree with per-sample Predict bitwise.
// PredictBatch is safe for concurrent use; it shares no state with training.
func (n *Net) PredictBatch(ctx context.Context, samples []*Sample) ([][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, nil
	}
	for _, s := range samples {
		if err := n.checkSample(s); err != nil {
			return nil, err
		}
	}
	sc := ml.GetScratch()
	defer ml.PutScratch(sc)
	sc.Par = int(n.par.Load())

	batch := len(samples)
	in := sc.TensorUninit(batch, n.Cfg.FeatDim+n.ctxDim()+n.Cfg.SpecDim)
	if n.Cfg.UseContext {
		offsets := sc.Ints(batch + 1)
		total := 0
		for i, s := range samples {
			offsets[i] = total
			total += len(s.BgFeats)
		}
		offsets[batch] = total
		feats := sc.TensorUninit(total, n.Cfg.FeatDim)
		for i, s := range samples {
			for h, f := range s.BgFeats {
				copy(feats.Row(offsets[i]+h), f)
			}
		}
		ctx, err := n.enc.ApplyBatch(sc, feats, offsets)
		if err != nil {
			return nil, err
		}
		for i := range samples {
			copy(in.Row(i)[n.Cfg.FeatDim:], ctx.Row(i))
		}
	}
	specAt := n.Cfg.FeatDim + n.ctxDim()
	for i, s := range samples {
		row := in.Row(i)
		copy(row, s.FgFeat)
		copy(row[specAt:], s.Spec)
	}
	raw := n.head.ApplyTensor(sc, in)
	return postprocessBatch(raw, batch, n.Cfg.OutDim), nil
}

// postprocessBatch copies raw batch outputs out of the scratch into one
// flat slab and applies the slowdown-map projection (clamp to >= 1,
// per-bucket isotonic sort). Shared by every backend so their outputs go
// through identical postprocessing.
func postprocessBatch(raw ml.Tensor, batch, outDim int) [][]float64 {
	flat := make([]float64, batch*outDim)
	outs := make([][]float64, batch)
	for i := range outs {
		out := flat[i*outDim : (i+1)*outDim : (i+1)*outDim]
		copy(out, raw.Row(i))
		for j := range out {
			if out[j] < 1 {
				out[j] = 1
			}
		}
		for b := 0; b < feature.NumOutputBuckets; b++ {
			sort.Float64s(out[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles])
		}
		outs[i] = out
	}
	return outs
}

// SelfCheck runs a probe inference through the full network (encoder +
// head) and verifies the output has the declared shape and only finite
// values. The serving layer calls it on every reload candidate so a
// checkpoint that decodes cleanly but computes garbage (NaN/Inf slowdowns)
// is rejected before it replaces a working model.
func (n *Net) SelfCheck() error {
	s := &Sample{
		FgFeat: make([]float64, n.Cfg.FeatDim),
		Spec:   make([]float64, n.Cfg.SpecDim),
	}
	if n.Cfg.UseContext {
		s.BgFeats = [][]float64{make([]float64, n.Cfg.FeatDim)}
	}
	out, err := n.Predict(s)
	if err != nil {
		return fmt.Errorf("model: self-check probe failed: %w", err)
	}
	if len(out) != n.Cfg.OutDim {
		return fmt.Errorf("model: self-check: output dim %d, want %d", len(out), n.Cfg.OutDim)
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: self-check: output[%d] = %v, model computes non-finite slowdowns", i, v)
		}
	}
	return nil
}

// maskedL1 computes the L1 loss over the cells of valid buckets only and
// writes the gradient into dout (zero for masked-out cells).
func maskedL1(pred, target []float64, mask []bool, dout []float64) float64 {
	cells := 0
	for b, ok := range mask {
		if ok {
			cells += feature.NumPercentiles
		}
		_ = b
	}
	if cells == 0 {
		for i := range dout {
			dout[i] = 0
		}
		return 0
	}
	inv := 1 / float64(cells)
	var sum float64
	for b, ok := range mask {
		lo := b * feature.NumPercentiles
		hi := lo + feature.NumPercentiles
		for i := lo; i < hi; i++ {
			if !ok {
				dout[i] = 0
				continue
			}
			d := pred[i] - target[i]
			if d >= 0 {
				sum += d
				dout[i] = inv
			} else {
				sum -= d
				dout[i] = -inv
			}
		}
	}
	return sum * inv
}

// TrainOptions controls Train.
type TrainOptions struct {
	Epochs  int
	Batch   int
	LR      float64
	ValFrac float64 // fraction of samples held out (paper: 10%)
	Seed    uint64
	// KeepBest restores the weights from the epoch with the lowest
	// validation loss when training ends (requires ValFrac > 0).
	KeepBest bool
	// Progress, if non-nil, is called after each epoch.
	Progress func(epoch int, trainLoss, valLoss float64)
}

// DefaultTrainOptions mirrors the paper's setup at CPU scale.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Epochs: 40, Batch: 20, LR: 1e-3, ValFrac: 0.1, Seed: 7, KeepBest: true}
}

// TrainResult reports final losses.
type TrainResult struct {
	TrainLoss float64
	ValLoss   float64
	Epochs    int
}

// Train fits the network with Adam on the masked L1 loss.
func (n *Net) Train(samples []*Sample, opt TrainOptions) (TrainResult, error) {
	if len(samples) == 0 {
		return TrainResult{}, fmt.Errorf("model: no training samples")
	}
	if opt.Epochs <= 0 || opt.Batch <= 0 {
		return TrainResult{}, fmt.Errorf("model: epochs and batch must be positive")
	}
	for _, s := range samples {
		if err := n.checkSample(s); err != nil {
			return TrainResult{}, err
		}
		if len(s.Target) != n.Cfg.OutDim || len(s.Mask) != feature.NumOutputBuckets {
			return TrainResult{}, fmt.Errorf("model: bad target/mask shape")
		}
	}
	r := rng.New(opt.Seed)
	shuffled := append([]*Sample(nil), samples...)
	rng.Shuffle(r, shuffled)
	nVal := int(float64(len(shuffled)) * opt.ValFrac)
	val := shuffled[:nVal]
	train := shuffled[nVal:]
	if len(train) == 0 {
		return TrainResult{}, fmt.Errorf("model: validation fraction leaves no training data")
	}

	adam := ml.NewAdam(n.params, opt.LR)
	dout := make([]float64, n.Cfg.OutDim)
	var res TrainResult
	bestVal := math.Inf(1)
	var best [][]float64
	snapshot := func() {
		if best == nil {
			best = make([][]float64, len(n.params))
			for i, p := range n.params {
				best[i] = make([]float64, len(p.W))
			}
		}
		for i, p := range n.params {
			copy(best[i], p.W)
		}
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(r, train)
		var epochLoss float64
		count := 0
		for start := 0; start < len(train); start += opt.Batch {
			end := min(start+opt.Batch, len(train))
			for _, s := range train[start:end] {
				pred, err := n.forward(s)
				if err != nil {
					return res, err
				}
				epochLoss += maskedL1(pred, s.Target, s.Mask, dout)
				count++
				n.backward(dout)
			}
			adam.Step(end - start)
		}
		res.TrainLoss = epochLoss / float64(count)
		res.ValLoss = n.eval(val)
		res.Epochs = epoch + 1
		if opt.KeepBest && len(val) > 0 && res.ValLoss < bestVal {
			bestVal = res.ValLoss
			snapshot()
		}
		if opt.Progress != nil {
			opt.Progress(epoch, res.TrainLoss, res.ValLoss)
		}
	}
	if opt.KeepBest && best != nil {
		for i, p := range n.params {
			copy(p.W, best[i])
		}
		res.ValLoss = bestVal
	}
	return res, nil
}

func (n *Net) eval(samples []*Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	dout := make([]float64, n.Cfg.OutDim)
	var sum float64
	for _, s := range samples {
		pred, err := n.forward(s)
		if err != nil {
			return math.NaN()
		}
		sum += maskedL1(pred, s.Target, s.Mask, dout)
	}
	return sum / float64(len(samples))
}

// Loss evaluates the masked L1 loss over samples without training.
func (n *Net) Loss(samples []*Sample) float64 { return n.eval(samples) }

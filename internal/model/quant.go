package model

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"m3/internal/ml"
)

// QuantizedNet is the int8 weight-quantized backend: the same transformer
// architecture as Net, with every matmul running int8 x int8 into int32
// accumulators (per-output-channel symmetric weight scales, dynamic
// per-row activation scales) and the non-GEMM ops at float32 precision.
// It is built from a trained float Net with Quantize and is immutable
// afterwards, so PredictBatch is safe for concurrent use. Because the
// arithmetic is integer with a fixed accumulation order, its outputs are
// bit-stable across runs and machines.
type QuantizedNet struct {
	Cfg  Config
	src  *Net
	enc  *ml.QEncoder
	head *ml.QMLP
	fp   uint64

	// par bounds intra-batch kernel parallelism, like Net's (the int8
	// kernels' exact integer math makes sharding trivially bit-identical).
	par atomic.Int32
}

// SetPredictParallelism bounds one PredictBatch call's GEMM sharding, with
// the same bit-identical-to-serial guarantee as Net.SetPredictParallelism.
func (q *QuantizedNet) SetPredictParallelism(p int) {
	if p < 0 {
		p = 0
	}
	q.par.Store(int32(p))
}

// PredictParallelism returns the current intra-batch parallelism bound.
func (q *QuantizedNet) PredictParallelism() int { return int(q.par.Load()) }

// Quantize derives the int8 backend from a float net. The float weights
// are not retained per-layer — only referenced as the checkpoint source —
// so the quantized model's live weight footprint is ~1/8 of the float one.
func Quantize(n *Net) (*QuantizedNet, error) {
	if n == nil {
		return nil, fmt.Errorf("model: quantize: nil net")
	}
	q := &QuantizedNet{
		Cfg:  n.Cfg,
		src:  n,
		head: ml.QuantizeMLP(n.head),
		fp:   kindFingerprint(n.Fingerprint(), KindNetInt8),
	}
	if n.Cfg.UseContext {
		q.enc = ml.QuantizeEncoder(n.enc)
	}
	return q, nil
}

// kindFingerprint folds a backend kind tag into a base weight fingerprint
// (FNV-1a over the kind bytes), so backends derived from the same weights
// have distinct, deterministic fingerprints. Quantization itself is a pure
// function of the float weights, which makes the derived fingerprint a
// faithful identity for the quantized model too.
func kindFingerprint(base uint64, kind string) uint64 {
	const prime64 = 1099511628211
	h := base
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= prime64
	}
	return h
}

// Kind identifies the int8-quantized transformer backend.
func (q *QuantizedNet) Kind() string { return KindNetInt8 }

// Fingerprint distinguishes this quantized model from its float source and
// from quantizations of other weights.
func (q *QuantizedNet) Fingerprint() uint64 { return q.fp }

// Source returns the float net this model was quantized from (used to
// persist the checkpoint: quantization is replayed on load).
func (q *QuantizedNet) Source() *Net { return q.src }

// NumParams returns the quantized weight count (same count as the source
// net; each matmul weight is stored as one int8).
func (q *QuantizedNet) NumParams() int { return q.src.NumParams() }

func (q *QuantizedNet) ctxDim() int {
	if q.Cfg.UseContext {
		return q.Cfg.Dim
	}
	return 0
}

// PredictBatch mirrors Net.PredictBatch through the quantized kernels: the
// same ragged batching, the same scratch arenas, the same postprocessing.
func (q *QuantizedNet) PredictBatch(ctx context.Context, samples []*Sample) ([][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, nil
	}
	for _, s := range samples {
		if err := q.Cfg.checkSample(s); err != nil {
			return nil, err
		}
	}
	sc := ml.GetScratch()
	defer ml.PutScratch(sc)
	sc.Par = int(q.par.Load())

	batch := len(samples)
	in := sc.TensorUninit(batch, q.Cfg.FeatDim+q.ctxDim()+q.Cfg.SpecDim)
	if q.Cfg.UseContext {
		offsets := sc.Ints(batch + 1)
		total := 0
		for i, s := range samples {
			offsets[i] = total
			total += len(s.BgFeats)
		}
		offsets[batch] = total
		feats := sc.TensorUninit(total, q.Cfg.FeatDim)
		for i, s := range samples {
			for h, f := range s.BgFeats {
				copy(feats.Row(offsets[i]+h), f)
			}
		}
		bg, err := q.enc.ApplyBatch(sc, feats, offsets)
		if err != nil {
			return nil, err
		}
		for i := range samples {
			copy(in.Row(i)[q.Cfg.FeatDim:], bg.Row(i))
		}
	}
	specAt := q.Cfg.FeatDim + q.ctxDim()
	for i, s := range samples {
		row := in.Row(i)
		copy(row, s.FgFeat)
		copy(row[specAt:], s.Spec)
	}
	raw := q.head.ApplyTensor(sc, in)
	return postprocessBatch(raw, batch, q.Cfg.OutDim), nil
}

// SelfCheck probes the quantized network with a zero sample and verifies
// shape and finiteness, exactly like Net.SelfCheck, so the serving layer
// vets quantized reload candidates through the same gate.
func (q *QuantizedNet) SelfCheck() error {
	s := &Sample{
		FgFeat: make([]float64, q.Cfg.FeatDim),
		Spec:   make([]float64, q.Cfg.SpecDim),
	}
	if q.Cfg.UseContext {
		s.BgFeats = [][]float64{make([]float64, q.Cfg.FeatDim)}
	}
	outs, err := q.PredictBatch(context.Background(), []*Sample{s})
	if err != nil {
		return fmt.Errorf("model: self-check probe failed: %w", err)
	}
	out := outs[0]
	if len(out) != q.Cfg.OutDim {
		return fmt.Errorf("model: self-check: output dim %d, want %d", len(out), q.Cfg.OutDim)
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("model: self-check: output[%d] = %v, model computes non-finite slowdowns", i, v)
		}
	}
	return nil
}

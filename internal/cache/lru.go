// Package cache provides a small generic LRU used to keep finished
// estimates and per-workload decompositions hot across queries. It is the
// shared cache substrate behind both the query REPL and the estimation
// service; see core.EstimateCache for the synchronized, keyed wrapper.
package cache

import "container/list"

// LRU is a fixed-capacity least-recently-used map. It is NOT safe for
// concurrent use; wrap it with a mutex (core.EstimateCache does).
type LRU[K comparable, V any] struct {
	capacity int
	ll       *list.List
	items    map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU holding at most capacity entries (capacity must be
// positive).
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the value for key and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or updates key, evicting the least recently used entry when
// the cache is full. It reports whether an eviction happened.
func (c *LRU[K, V]) Add(key K, val V) bool {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
		return false
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() <= c.capacity {
		return false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	delete(c.items, oldest.Value.(*entry[K, V]).key)
	return true
}

// Remove drops key if present.
func (c *LRU[K, V]) Remove(key K) {
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int { return c.ll.Len() }

// Keys returns every key, most recently used first. The slice is a
// snapshot; mutating the cache afterwards does not affect it.
func (c *LRU[K, V]) Keys() []K {
	keys := make([]K, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry[K, V]).key)
	}
	return keys
}

// Cap returns the capacity.
func (c *LRU[K, V]) Cap() int { return c.capacity }

// Purge empties the cache.
func (c *LRU[K, V]) Purge() {
	c.ll.Init()
	clear(c.items)
}

package cache

import "testing"

func TestLRUBasics(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache returned a value")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %v, %v", v, ok)
	}
	// "a" is now most recent; adding "c" must evict "b".
	if evicted := c.Add("c", 3); !evicted {
		t.Error("no eviction at capacity")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("LRU evicted the wrong entry")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a lost: %v, %v", v, ok)
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Errorf("len %d cap %d", c.Len(), c.Cap())
	}
}

func TestLRUUpdateAndRemove(t *testing.T) {
	c := New[int, string](3)
	c.Add(1, "x")
	if evicted := c.Add(1, "y"); evicted {
		t.Error("update evicted")
	}
	if v, _ := c.Get(1); v != "y" {
		t.Errorf("update lost: %q", v)
	}
	c.Remove(1)
	if _, ok := c.Get(1); ok {
		t.Error("removed key still present")
	}
	c.Add(2, "a")
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("purge left %d entries", c.Len())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := New[int, int](0) // clamped to 1
	c.Add(1, 1)
	c.Add(2, 2)
	if c.Len() != 1 {
		t.Errorf("len %d after clamp", c.Len())
	}
}

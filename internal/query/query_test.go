package query

import (
	"context"
	"math"
	"testing"

	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

func testSession(t *testing.T) (*Session, *topo.FatTree) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 32
	net, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dc := model.DefaultDataConfig()
	dc.Scenarios = 8
	dc.Workers = 8
	dc.CCs = []packetsim.CCType{packetsim.DCTCP}
	samples, err := model.Generate(context.Background(), dc)
	if err != nil {
		t.Fatal(err)
	}
	opt := model.DefaultTrainOptions()
	opt.Epochs = 2
	if _, err := net.Train(samples, opt); err != nil {
		t.Fatal(err)
	}

	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: 2000, Sizes: workload.WebServer, Matrix: workload.MatrixB(32, r),
		Burstiness: 1.5, MaxLoad: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(ft.Topology, flows, net, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.NumPaths = 60
	return s, ft
}

func TestSessionQuantiles(t *testing.T) {
	s, _ := testSession(t)
	p99, err := s.P99(context.Background(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p99) || p99 < 1 {
		t.Errorf("combined p99 = %v", p99)
	}
	p50, err := s.Quantile(context.Background(), -1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p50 > p99 {
		t.Errorf("p50 (%v) > p99 (%v)", p50, p99)
	}
	// Bucket 0 is populated for WebServer.
	b0, err := s.P99(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(b0) {
		t.Error("bucket 0 empty for WebServer workload")
	}
}

func TestSessionQuantileValidation(t *testing.T) {
	s, _ := testSession(t)
	if _, err := s.Quantile(context.Background(), 0, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := s.Quantile(context.Background(), 0, 1.5); err == nil {
		t.Error("q>1 accepted")
	}
	if _, err := s.Quantile(context.Background(), 9, 0.5); err == nil {
		t.Error("bad bucket accepted")
	}
}

func TestSessionEstimateCached(t *testing.T) {
	s, _ := testSession(t)
	a, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("estimate not cached for unchanged config")
	}
}

func TestSetConfigInvalidatesCache(t *testing.T) {
	s, _ := testSession(t)
	a, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	cfg.InitWindow = 25 * unit.KB
	if err := s.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	b, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("cache survived a config change")
	}
	bad := cfg
	bad.InitWindow = 0
	if err := s.SetConfig(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPathQuery(t *testing.T) {
	s, ft := testSession(t)
	// Find a populated host pair from the workload itself.
	src, dst := s.Flows[0].Src, s.Flows[0].Dst
	rep, err := s.Path(context.Background(), src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Paths == 0 || rep.FgFlows == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	any := false
	for b := range rep.P99 {
		if !math.IsNaN(rep.P99[b]) {
			any = true
			if rep.P99[b] < rep.P50[b] {
				t.Errorf("bucket %d: p99 < p50", b)
			}
		}
	}
	if !any {
		t.Error("all buckets empty in path report")
	}
	// Unpopulated pair errors cleanly.
	hosts := ft.Hosts()
	if _, err := s.Path(context.Background(), hosts[0], hosts[0]); err == nil {
		t.Error("self-pair accepted")
	}
}

func TestSummarize(t *testing.T) {
	s, _ := testSession(t)
	sum, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flows != 2000 || sum.Paths == 0 || sum.Hosts == 0 {
		t.Errorf("summary: %+v", sum)
	}
	var share float64
	for _, v := range sum.BucketShare {
		share += v
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("bucket shares sum to %v", share)
	}
	if sum.MeanSize <= 0 || sum.MedianSize <= 0 || sum.Horizon <= 0 {
		t.Errorf("summary stats: %+v", sum)
	}
}

func TestNewSessionValidation(t *testing.T) {
	s, _ := testSession(t)
	if _, err := NewSession(s.T, nil, s.Net, packetsim.DefaultConfig()); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := NewSession(s.T, s.Flows, nil, packetsim.DefaultConfig()); err == nil {
		t.Error("nil model accepted")
	}
	bad := packetsim.DefaultConfig()
	bad.InitWindow = 0
	if _, err := NewSession(s.T, s.Flows, s.Net, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

// Package query implements the paper's interactive interface (§3.1,
// component 8): targeted queries over a loaded workload — network-wide
// slowdown quantiles per flow-size class, per-host-pair path queries, and
// live network-configuration what-ifs, all served from the m3 estimator
// with caching per configuration.
package query

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"m3/internal/agg"
	"m3/internal/core"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/pathsim"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// BucketNames labels the four output size buckets.
var BucketNames = [feature.NumOutputBuckets]string{
	"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)",
}

// Session answers queries about one workload on one topology.
type Session struct {
	T     *topo.Topology
	Flows []workload.Flow
	// Net is the inference backend — any model.Predictor (*model.Net,
	// *model.QuantizedNet, ...). The name predates the interface cut.
	Net model.Predictor
	// Cfg is the network configuration under query; mutate via SetConfig.
	cfg packetsim.Config
	// NumPaths is the sampled path budget per estimate (default 500).
	NumPaths int
	// Workers bounds parallelism (ignored when Pool is set).
	Workers int
	Seed    uint64
	// BatchSize is the ML inference micro-batch size (0 = core default).
	BatchSize int
	// Pool, when set, supplies per-path workers shared with other sessions
	// (the estimation service sets it). Nil means a transient pool per
	// estimate.
	Pool *core.Pool
	// Cache holds finished estimates keyed by (workload, config, method,
	// paths, seed, model). Sessions get a private cache by default; set it
	// before the first query to share one cache across sessions and with
	// the serving layer. Because the cache is keyed by configuration,
	// SetConfig no longer discards still-useful estimates — switching back
	// to an earlier configuration is a cache hit.
	Cache *core.EstimateCache

	mu      sync.Mutex
	decomp  *pathsim.Decomposition
	hash    core.WorkloadHash
	hashed  bool
	modelFP uint64
}

// NewSession builds a session with the paper's defaults. net is any
// inference backend (Predictor); existing callers passing a *model.Net
// compile unchanged.
func NewSession(t *topo.Topology, flows []workload.Flow, net model.Predictor,
	cfg packetsim.Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model.IsNil(net) {
		return nil, fmt.Errorf("query: nil model")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("query: empty workload")
	}
	return &Session{
		T: t, Flows: flows, Net: net, cfg: cfg, NumPaths: 500, Seed: 1,
		Cache: core.NewEstimateCache(16),
	}, nil
}

// Config returns the configuration under query.
func (s *Session) Config() packetsim.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// SetConfig swaps the network configuration (a counterfactual). Estimates
// for other configurations stay cached; re-estimating under a previously
// queried configuration is served from the cache.
func (s *Session) SetConfig(cfg packetsim.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = cfg
	return nil
}

func (s *Session) decomposition() (*pathsim.Decomposition, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.decomp == nil {
		d, err := pathsim.Decompose(s.T, s.Flows)
		if err != nil {
			return nil, err
		}
		s.decomp = d
	}
	return s.decomp, nil
}

// workloadHash fingerprints the session's workload and model once.
func (s *Session) workloadHash() (core.WorkloadHash, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hashed {
		s.hash = core.HashWorkload(s.T, s.Flows)
		s.modelFP = s.Net.Fingerprint()
		s.hashed = true
	}
	return s.hash, s.modelFP
}

// Estimate returns (computing and caching if needed) the network-wide
// estimate for the current configuration. A done ctx aborts in-flight path
// simulations and batched inference.
func (s *Session) Estimate(ctx context.Context) (*core.Estimate, error) {
	cfg := s.Config()
	d, err := s.decomposition()
	if err != nil {
		return nil, err
	}
	hash, fp := s.workloadHash()
	key := core.EstimateKey{
		Workload: hash,
		Cfg:      cfg,
		Method:   core.MethodML,
		NumPaths: s.NumPaths,
		Seed:     s.Seed,
		Model:    fp,
		Backend:  s.Net.Kind(),
	}
	res, _, err := s.Cache.Do(ctx, key, func() (*core.Estimate, error) {
		est := core.NewEstimator(s.Net,
			core.WithNumPaths(s.NumPaths),
			core.WithWorkers(s.Workers),
			core.WithSeed(s.Seed),
			core.WithBatchSize(s.BatchSize),
			core.WithPool(s.Pool),
			core.WithDecomposition(d))
		return est.Estimate(ctx, s.T, s.Flows, cfg)
	})
	return res, err
}

// Quantile answers "what is the q-quantile slowdown of bucket b" (b = -1 for
// the combined distribution). q is in (0, 1].
func (s *Session) Quantile(ctx context.Context, bucket int, q float64) (float64, error) {
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("query: quantile %v out of (0,1]", q)
	}
	if bucket < -1 || bucket >= feature.NumOutputBuckets {
		return 0, fmt.Errorf("query: bucket %d out of range", bucket)
	}
	res, err := s.Estimate(ctx)
	if err != nil {
		return 0, err
	}
	if bucket == -1 {
		return res.Agg.CombinedQuantile(q), nil
	}
	return res.Agg.BucketQuantile(bucket, q), nil
}

// P99 is shorthand for Quantile(ctx, bucket, 0.99).
func (s *Session) P99(ctx context.Context, bucket int) (float64, error) {
	return s.Quantile(ctx, bucket, 0.99)
}

// PathReport answers a targeted per-host-pair query: the predicted slowdown
// distribution of traffic from src to dst, over every populated path between
// them.
type PathReport struct {
	Src, Dst topo.NodeID
	// Paths is the number of populated src->dst paths.
	Paths int
	// FgFlows is the total foreground flow count across those paths.
	FgFlows int
	// P50, P99 are quantiles of the pooled predicted distribution, per
	// bucket (NaN when a bucket is empty).
	P50, P99 [feature.NumOutputBuckets]float64
}

// Path estimates the slowdown distribution for traffic between a specific
// host pair under the current configuration ("sampling from specific paths
// of interest", §3.6). A done ctx aborts in-flight path simulations.
func (s *Session) Path(ctx context.Context, src, dst topo.NodeID) (*PathReport, error) {
	d, err := s.decomposition()
	if err != nil {
		return nil, err
	}
	report := &PathReport{Src: src, Dst: dst}
	var outs []agg.PathOutput
	for i := range d.Paths {
		p := &d.Paths[i]
		first := d.T.Link(p.Links[0])
		last := d.T.Link(p.Links[len(p.Links)-1])
		if first.Src != src || last.Dst != dst {
			continue
		}
		report.Paths++
		report.FgFlows += len(p.Fg)
		out, err := s.pathOutput(ctx, d, p)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}
	if report.Paths == 0 {
		return nil, fmt.Errorf("query: no populated path %d -> %d", src, dst)
	}
	a, err := agg.Aggregate(outs)
	if err != nil {
		return nil, err
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		report.P50[b] = a.BucketQuantile(b, 0.50)
		report.P99[b] = a.BucketQuantile(b, 0.99)
	}
	return report, nil
}

func (s *Session) pathOutput(ctx context.Context, d *pathsim.Decomposition, p *pathsim.Path) (agg.PathOutput, error) {
	sc, err := d.Scenario(p)
	if err != nil {
		return agg.PathOutput{}, err
	}
	fs, err := sc.RunFlowSimContext(ctx)
	if err != nil {
		return agg.PathOutput{}, err
	}
	in := model.BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, s.Config(),
		d.T.RouteRates(p.Links), d.T.RouteDelays(p.Links))
	preds, err := s.Net.PredictBatch(ctx, []*model.Sample{in})
	if err != nil {
		return agg.PathOutput{}, err
	}
	pred := preds[0]
	counts := feature.BuildOutput(fs.Fg.Sizes, fs.Fg.Slowdown).Counts
	out := agg.PathOutput{
		Buckets: make([][]float64, feature.NumOutputBuckets),
		Counts:  counts,
		Mult:    1,
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if counts[b] > 0 {
			out.Buckets[b] = pred[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles]
		}
	}
	return out, nil
}

// Summary describes the loaded workload.
type Summary struct {
	Flows       int
	Hosts       int
	Paths       int
	TotalBytes  unit.ByteSize
	MeanSize    float64
	MedianSize  float64
	Horizon     unit.Time
	BucketShare [feature.NumOutputBuckets]float64
}

// Summarize reports workload statistics (no simulation).
func (s *Session) Summarize() (*Summary, error) {
	d, err := s.decomposition()
	if err != nil {
		return nil, err
	}
	sum := &Summary{Flows: len(s.Flows), Paths: len(d.Paths)}
	hosts := map[topo.NodeID]bool{}
	sizes := make([]float64, 0, len(s.Flows))
	var counts [feature.NumOutputBuckets]int
	for i := range s.Flows {
		f := &s.Flows[i]
		hosts[f.Src] = true
		hosts[f.Dst] = true
		sum.TotalBytes += f.Size
		sizes = append(sizes, float64(f.Size))
		if f.Arrival > sum.Horizon {
			sum.Horizon = f.Arrival
		}
		counts[feature.BucketOf(f.Size, feature.OutputBucketBounds)]++
	}
	sum.Hosts = len(hosts)
	sum.MeanSize = stats.Mean(sizes)
	sort.Float64s(sizes)
	sum.MedianSize = stats.Median(sizes)
	for b := range counts {
		sum.BucketShare[b] = float64(counts[b]) / float64(len(s.Flows))
	}
	return sum, nil
}

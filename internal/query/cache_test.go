package query

import (
	"context"
	"testing"

	"m3/internal/core"
	"m3/internal/unit"
)

// TestSetConfigRoundTripKeepsCache: switching the configuration away and
// back again serves the original estimate from the shared cache instead of
// recomputing (SetConfig no longer discards still-useful estimates).
func TestSetConfigRoundTripKeepsCache(t *testing.T) {
	s, _ := testSession(t)
	orig := s.Config()

	a, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	alt := orig
	alt.InitWindow = 25 * unit.KB
	if err := s.SetConfig(alt); err != nil {
		t.Fatal(err)
	}
	b, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different configs shared an estimate")
	}
	if err := s.SetConfig(orig); err != nil {
		t.Fatal(err)
	}
	c, err := s.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Error("estimate recomputed after config round-trip")
	}
	st := s.Cache.Stats()
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one per distinct config)", st.Misses)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (the round-trip)", st.Hits)
	}
}

// TestSessionsShareCache: two sessions over the same workload pointed at one
// cache share estimates.
func TestSessionsShareCache(t *testing.T) {
	s1, _ := testSession(t)
	s2, err := NewSession(s1.T, s1.Flows, s1.Net, s1.Config())
	if err != nil {
		t.Fatal(err)
	}
	s2.NumPaths = s1.NumPaths
	shared := core.NewEstimateCache(8)
	s1.Cache = shared
	s2.Cache = shared

	a, err := s1.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Estimate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("sessions with a shared cache recomputed the same estimate")
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	stdnet "net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"m3/internal/core"
	"m3/internal/model"
)

// clusterServers starts n in-process Servers wired into one fleet over real
// loopback HTTP listeners (the cluster clients dial peer addresses, so
// httptest's handler-only servers are not enough).
func clusterServers(t *testing.T, n int, scatter bool) []*Server {
	t.Helper()
	return clusterServersOpts(t, n, scatter, nil)
}

// clusterServersOpts is clusterServers with an Options hook (chaos tests
// shorten the probe interval and retry knobs).
func clusterServersOpts(t *testing.T, n int, scatter bool, mutate func(*Options)) []*Server {
	t.Helper()
	listeners := make([]stdnet.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := stdnet.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
		testListenersMu.Lock()
		testListeners[addrs[i]] = l
		testListenersMu.Unlock()
		addr := addrs[i]
		t.Cleanup(func() {
			testListenersMu.Lock()
			delete(testListeners, addr)
			testListenersMu.Unlock()
			l.Close()
		})
	}
	servers := make([]*Server, n)
	for i := range servers {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		opts := Options{
			Net:       tinyNet(t, 1),
			Workers:   2,
			CacheSize: 8,
			Advertise: addrs[i],
			Peers:     peers,
			Scatter:   scatter,
		}
		if mutate != nil {
			mutate(&opts)
		}
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		t.Cleanup(s.Close)
		hsrv := &http.Server{Handler: s}
		testListenersMu.Lock()
		testHTTPServers[addrs[i]] = hsrv
		testListenersMu.Unlock()
		go hsrv.Serve(listeners[i])
	}
	return servers
}

// waitWorkload polls until the server's registry holds name (replication is
// asynchronous).
func waitWorkload(t *testing.T, s *Server, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.workload(name); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("workload %q never replicated to %s", name, s.fleet.Self())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// seedOwnedBy finds a sampling seed whose estimate cache key is rendezvous-
// owned by the given member, so tests can steer keys at specific replicas.
func seedOwnedBy(t *testing.T, s *Server, owner string, numPaths int) uint64 {
	t.Helper()
	wl, ok := s.workload("web")
	if !ok {
		t.Fatal("workload web not registered")
	}
	cfg, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 1000; seed++ {
		key := core.EstimateKey{
			Workload: wl.Hash,
			Cfg:      cfg,
			Method:   core.MethodML,
			NumPaths: numPaths,
			Seed:     seed,
			Model:    s.modelFP.Load(),
			Backend:  model.KindNet,
		}
		if s.fleet.OwnerOf(key.Digest()) == owner {
			return seed
		}
	}
	t.Fatalf("no seed in [1,1000) owned by %s", owner)
	return 0
}

// TestClusterRegistryReplication: a workload created on one replica appears
// on the others, rebuilt from the original request; deleting it anywhere
// deletes it everywhere.
func TestClusterRegistryReplication(t *testing.T) {
	servers := clusterServers(t, 2, false)
	a, b := servers[0], servers[1]

	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")
	wa, _ := a.workload("web")
	wb, _ := b.workload("web")
	if wa.Hash != wb.Hash {
		t.Fatalf("replicated workload hash %x != origin %x (not rebuilt deterministically)", wb.Hash, wa.Hash)
	}

	rec := do(t, b, "DELETE", "/v1/workloads/web", nil, nil)
	mustCode(t, rec, http.StatusOK)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := a.workload("web"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delete never replicated")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterPeerCacheHit: replica B's local miss is answered by the key's
// hash owner A without recomputing (the two-tier cache's reason to exist).
func TestClusterPeerCacheHit(t *testing.T) {
	servers := clusterServers(t, 2, false)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")

	seed := seedOwnedBy(t, a, a.fleet.Self(), 16)
	req := estimateRequest{Workload: "web", NumPaths: 16, Seed: seed}

	var est estimateResponse
	rec := do(t, a, "POST", "/v1/estimate", req, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Cached {
		t.Fatal("first estimate on the owner should compute")
	}

	rec = do(t, b, "POST", "/v1/estimate", req, &est)
	mustCode(t, rec, http.StatusOK)
	if !est.Cached {
		t.Fatal("B's local miss should have been served by owner A's cache")
	}
	stats := b.cache.Stats()
	if stats.PeerHits != 1 {
		t.Fatalf("peer hits = %d, want 1 (stats %+v)", stats.PeerHits, stats)
	}
	if b.metrics.estimates.Load() != 0 {
		t.Fatalf("B computed %d estimates, want 0", b.metrics.estimates.Load())
	}
}

// TestClusterPeerDownFallback: with the key's owner dead, the replica
// computes locally — a lost peer costs the cache tier, never availability —
// and the breaker keeps later requests from re-paying the probe.
func TestClusterPeerDownFallback(t *testing.T) {
	servers := clusterServers(t, 2, false)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")
	seed := seedOwnedBy(t, a, a.fleet.Self(), 16)

	// Kill A's listener: B's fetch now fails at the transport level.
	p := b.fleet.Peers()[0]
	req := estimateRequest{Workload: "web", NumPaths: 16, Seed: seed}
	var est estimateResponse
	aAddr := a.fleet.Self()
	// Closing the listener is done by reaching into the test fixture:
	// connect refusal is immediate, so the fallback path is fast.
	closeListener(t, aAddr)

	rec := do(t, b, "POST", "/v1/estimate", req, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Cached {
		t.Fatal("with the owner down the estimate must be computed locally")
	}
	if p.Up() {
		t.Fatal("transport failure should have tripped the peer's breaker")
	}
	// Repeat: the down peer is skipped without a probe, and the local cache
	// serves the repeat.
	rec = do(t, b, "POST", "/v1/estimate", req, &est)
	mustCode(t, rec, http.StatusOK)
	if !est.Cached {
		t.Fatal("repeat should hit B's local cache")
	}
}

// Transport fixtures by address, so tests can kill a replica the way a
// process death would: listener gone AND established connections torn down
// (a bare listener close leaves keep-alive connections serving).
var (
	testListenersMu sync.Mutex
	testListeners   = map[string]stdnet.Listener{}
	testHTTPServers = map[string]*http.Server{}
)

func closeListener(t *testing.T, addr string) {
	t.Helper()
	testListenersMu.Lock()
	l, lok := testListeners[addr]
	hsrv, hok := testHTTPServers[addr]
	delete(testListeners, addr)
	delete(testHTTPServers, addr)
	testListenersMu.Unlock()
	if !lok || !hok {
		t.Fatalf("no transport recorded for %s", addr)
	}
	hsrv.Close()
	l.Close()
}

// TestClusterSingleFlight: concurrent same-key requests across both
// replicas collapse onto at most one computation per replica (local
// single-flight plus the Wait join on the owner), instead of one per
// request.
func TestClusterSingleFlight(t *testing.T) {
	servers := clusterServers(t, 2, false)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")
	seed := seedOwnedBy(t, a, a.fleet.Self(), 16)
	req := estimateRequest{Workload: "web", NumPaths: 16, Seed: seed}

	const perServer = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*perServer)
	for i := 0; i < perServer; i++ {
		for _, s := range []*Server{a, b} {
			wg.Add(1)
			go func(s *Server) {
				defer wg.Done()
				var est estimateResponse
				rec := do(t, s, "POST", "/v1/estimate", req, &est)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
				}
			}(s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	computed := a.metrics.estimates.Load() + b.metrics.estimates.Load()
	if computed > 2 {
		t.Fatalf("%d requests computed %d estimates, want at most one per replica", 2*perServer, computed)
	}
}

// TestClusterInvalidateOnReload: a reload on one replica broadcasts the new
// fingerprint; peers drop stale cache entries and converge by reloading the
// same checkpoint.
func TestClusterInvalidateOnReload(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := tinyNet(t, 1).SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	servers := clusterServers(t, 2, false)
	a, b := servers[0], servers[1]
	a.opts.CheckpointPath = ckpt
	b.opts.CheckpointPath = ckpt
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")

	// Warm both caches under the current fingerprint.
	for i, s := range servers {
		var est estimateResponse
		rec := do(t, s, "POST", "/v1/estimate",
			estimateRequest{Workload: "web", NumPaths: 16, Seed: uint64(100 + i)}, &est)
		mustCode(t, rec, http.StatusOK)
	}
	if st := b.cache.Stats(); st.Entries == 0 {
		t.Fatal("B's cache should hold a model-keyed entry before the reload")
	}
	oldFP := b.modelFP.Load()

	// Let the warm-up's asynchronous owner puts land before invalidating,
	// so none can re-add a stale entry after the broadcast.
	time.Sleep(100 * time.Millisecond)

	// Swap the artifact on disk and reload through A only.
	if err := tinyNet(t, 2).SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	rec := do(t, a, "POST", "/v1/reload", reloadRequest{Checkpoint: ckpt}, nil)
	mustCode(t, rec, http.StatusOK)

	deadline := time.Now().Add(5 * time.Second)
	for b.modelFP.Load() == oldFP {
		if time.Now().After(deadline) {
			t.Fatal("B never converged on the broadcast fingerprint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, want := b.modelFP.Load(), a.modelFP.Load(); got != want {
		t.Fatalf("fingerprints diverged after invalidate: %x != %x", got, want)
	}
	if st := b.cache.Stats(); st.Entries != 0 || st.OwnedEntries != 0 {
		t.Fatalf("stale model entries survived invalidation: %+v", st)
	}
	if b.metrics.invalidations.Load() == 0 {
		t.Fatal("B should have counted the invalidate broadcast")
	}
}

// TestClusterScatterParity: a scatter-gathered estimate answers quantile
// queries byte-identically to a standalone single-process server — shipping
// shards across processes must not change a single bit of the result.
func TestClusterScatterParity(t *testing.T) {
	solo := testServer(t)
	uploadSpecWorkload(t, solo, "web", 300)

	servers := clusterServers(t, 2, true)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")

	const target = "/v1/quantiles?workload=web&paths=40&seed=3&q=0.5,0.9,0.99"
	recSolo := do(t, solo, "GET", target, nil, nil)
	mustCode(t, recSolo, http.StatusOK)
	recFleet := do(t, a, "GET", target, nil, nil)
	mustCode(t, recFleet, http.StatusOK)

	if solo.metrics.scatterEstimates.Load() != 0 {
		t.Fatal("standalone server must not scatter")
	}
	if a.metrics.scatterEstimates.Load() != 1 {
		t.Fatalf("fleet coordinator scattered %d estimates, want 1", a.metrics.scatterEstimates.Load())
	}
	if a.metrics.scatterRemoteShards.Load()+a.metrics.scatterFallbackShards.Load() == 0 {
		t.Fatal("scatter never left the coordinator (no remote or fallback shards)")
	}
	if recSolo.Body.String() != recFleet.Body.String() {
		t.Fatalf("scatter-gathered quantiles differ from single-process:\nsolo:  %s\nfleet: %s",
			recSolo.Body.String(), recFleet.Body.String())
	}
}

// TestClusterScatterPeerDeath: killing a replica mid-scatter degrades the
// estimate (local fallback, Degraded surfaced) but never fails it, and the
// answer is still correct.
func TestClusterScatterPeerDeath(t *testing.T) {
	servers := clusterServers(t, 2, true)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")
	// Steer the key to A: if dead B owned it, the tier-two fetch would trip
	// B's breaker before planning and the scatter would (correctly) never
	// assign B a shard — planned-around, not degraded. A-owned keys keep B
	// in the plan so its shard dies mid-scatter, the case under test.
	seed := seedOwnedBy(t, a, a.fleet.Self(), 40)
	closeListener(t, b.fleet.Self())

	var est estimateResponse
	rec := do(t, a, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 40, Seed: seed}, &est)
	mustCode(t, rec, http.StatusOK)
	if !est.Degraded {
		t.Fatal("losing a shard's peer should surface Degraded")
	}
	if a.metrics.scatterFallbackShards.Load() == 0 {
		t.Fatal("the dead peer's shard should have fallen back locally")
	}

	// The degraded answer still matches a standalone computation.
	solo := testServer(t)
	uploadSpecWorkload(t, solo, "web", 300)
	var soloEst estimateResponse
	mustCode(t, do(t, solo, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 40, Seed: seed}, &soloEst), http.StatusOK)
	soloJSON, _ := json.Marshal(soloEst.P99)
	fleetJSON, _ := json.Marshal(est.P99)
	if string(soloJSON) != string(fleetJSON) {
		t.Fatalf("degraded scatter changed the answer:\nsolo:  %s\nfleet: %s", soloJSON, fleetJSON)
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"m3/internal/cluster"
	"m3/internal/model"
)

// TestEstimateBackendSelection: the "backend" request field picks the
// inference backend, the response echoes it, and float and int8 estimates
// are separate cache entries under the same workload and seed.
func TestEstimateBackendSelection(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 400)

	var est estimateResponse
	rec := do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 20,
	}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Backend != model.KindNet {
		t.Fatalf("default backend = %q, want %q", est.Backend, model.KindNet)
	}
	if est.Cached {
		t.Fatal("first float estimate hit the cache")
	}

	// Same workload, paths, and seed on the int8 backend: a fresh compute
	// (per-backend cache keying), echoed as net-int8.
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 20, Backend: model.KindNetInt8,
	}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Backend != model.KindNetInt8 {
		t.Fatalf("backend = %q, want %q", est.Backend, model.KindNetInt8)
	}
	if est.Cached {
		t.Fatal("int8 estimate answered from the float entry: backend missing from the cache key")
	}

	// Repeats hit their own entries.
	for _, backend := range []string{model.KindNet, model.KindNetInt8} {
		rec = do(t, s, "POST", "/v1/estimate", estimateRequest{
			Workload: "web", NumPaths: 20, Backend: backend,
		}, &est)
		mustCode(t, rec, http.StatusOK)
		if !est.Cached || est.Backend != backend {
			t.Fatalf("repeat on %s = %+v, want cached hit on the same backend", backend, est)
		}
	}

	// A model-free method ignores the backend (no echo, no backend keying).
	est = estimateResponse{} // the echo is omitempty; don't inherit the last decode
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 20, Method: "flowsim",
	}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Backend != "" {
		t.Fatalf("flowsim estimate echoed backend %q, want none", est.Backend)
	}
}

// TestUnknownBackend: a backend kind this build does not register is a 400
// with the stable unknown_backend code, on every estimation endpoint.
func TestUnknownBackend(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 200)

	check := func(rec interface{ Result() *http.Response }, body []byte) {
		t.Helper()
		var eb cluster.ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("error body: %v (%s)", err, body)
		}
		if eb.Code != cluster.CodeUnknownBackend {
			t.Fatalf("code = %q, want %q (%s)", eb.Code, cluster.CodeUnknownBackend, body)
		}
		if cluster.Retryable(eb.Code) {
			t.Fatal("unknown_backend must not be retryable")
		}
	}

	rec := do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", Backend: "net-int4",
	}, nil)
	mustCode(t, rec, http.StatusBadRequest)
	check(rec, rec.Body.Bytes())

	rec = do(t, s, "GET", "/v1/quantiles?workload=web&backend=net-int4", nil, nil)
	mustCode(t, rec, http.StatusBadRequest)
	check(rec, rec.Body.Bytes())

	rec = do(t, s, "POST", "/v1/whatif", whatIfRequest{
		Workload: "web", Backend: "net-int4",
		Sweeps: []whatIfSweep{{Knobs: map[string]string{"cc": "timely"}}},
	}, nil)
	mustCode(t, rec, http.StatusBadRequest)
	check(rec, rec.Body.Bytes())
}

// TestQuantilesBackendByteStable: the int8 backend is integer arithmetic in
// a fixed order, so two fresh servers (no shared cache) must answer the same
// quantiles request with byte-identical bodies.
func TestQuantilesBackendByteStable(t *testing.T) {
	const target = "/v1/quantiles?workload=web&q=0.5,0.9,0.99&paths=30&backend=net-int8"
	bodies := make([]string, 2)
	for i := range bodies {
		s := testServer(t)
		uploadSpecWorkload(t, s, "web", 400)
		rec := do(t, s, "GET", target, nil, nil)
		mustCode(t, rec, http.StatusOK)
		bodies[i] = rec.Body.String()
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("int8 quantiles not byte-stable across runs:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestReloadQuantizedCheckpoint: reloading an int8-tagged checkpoint swaps
// the serving default to the quantized backend; a corrupt quantized artifact
// takes the same 422 rejection path as a corrupt float one and the serving
// set is untouched.
func TestReloadQuantizedCheckpoint(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 200)

	q, err := model.Quantize(tinyNet(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "int8.ckpt")
	if err := model.SavePredictorFile(q, path); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Backend string `json:"backend"`
	}
	rec := do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: path}, &out)
	mustCode(t, rec, http.StatusOK)
	if out.Backend != model.KindNetInt8 {
		t.Fatalf("reload default backend = %q, want %q", out.Backend, model.KindNetInt8)
	}
	if got := s.modelFP.Load(); got != q.Fingerprint() {
		t.Fatalf("serving fingerprint %x, want the quantized %x", got, q.Fingerprint())
	}

	// Requests naming no backend now run int8; the float sibling is still
	// servable by name (rebuilt from the checkpoint's float weights).
	var est estimateResponse
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 20}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Backend != model.KindNetInt8 {
		t.Fatalf("post-reload default backend = %q", est.Backend)
	}
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 20, Backend: model.KindNet,
	}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Backend != model.KindNet {
		t.Fatalf("float-by-name backend = %q", est.Backend)
	}

	// Corrupt quantized checkpoint: 422, serving set unchanged.
	fpBefore := s.modelFP.Load()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rec = do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: bad}, nil)
	mustCode(t, rec, http.StatusUnprocessableEntity)
	if s.modelFP.Load() != fpBefore {
		t.Fatal("corrupt quantized reload replaced the serving model")
	}
}

// TestMetricsBackendSplit: /metrics splits ML estimates by backend kind and
// reports the loaded backend set.
func TestMetricsBackendSplit(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 200)

	for _, backend := range []string{model.KindNet, model.KindNetInt8} {
		rec := do(t, s, "POST", "/v1/estimate", estimateRequest{
			Workload: "web", NumPaths: 16, Backend: backend,
		}, nil)
		mustCode(t, rec, http.StatusOK)
	}

	var snap struct {
		Backends map[string]struct {
			Estimates int64   `json:"estimates"`
			PredictMS float64 `json:"predict_ms"`
		} `json:"backends"`
		Model struct {
			Backend        string   `json:"backend"`
			BackendsLoaded []string `json:"backends_loaded"`
		} `json:"model"`
	}
	rec := do(t, s, "GET", "/metrics", nil, &snap)
	mustCode(t, rec, http.StatusOK)
	for _, kind := range []string{model.KindNet, model.KindNetInt8} {
		bs, ok := snap.Backends[kind]
		if !ok || bs.Estimates != 1 {
			t.Fatalf("backend %q stats = %+v (present=%v), want 1 estimate", kind, bs, ok)
		}
	}
	if snap.Model.Backend != model.KindNet {
		t.Fatalf("default backend = %q", snap.Model.Backend)
	}
	if len(snap.Model.BackendsLoaded) < 2 {
		t.Fatalf("backends_loaded = %v, want both kinds", snap.Model.BackendsLoaded)
	}
}

package serve

import (
	"bytes"
	"encoding/gob"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"m3/internal/faultinject"
	"m3/internal/model"
)

// TestReloadRejectsCorruptCheckpoint flips a bit in a checkpoint on disk and
// asks the server to reload it: the reload must be rejected as unprocessable
// while the old model keeps serving (fingerprint unchanged, estimates work).
func TestReloadRejectsCorruptCheckpoint(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 600)

	fpBefore := s.modelFP.Load()
	dir := t.TempDir()
	path := filepath.Join(dir, "m3.ckpt")
	if err := tinyNet(t, 9).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: path}, nil)
	mustCode(t, rec, http.StatusUnprocessableEntity)
	if got := s.modelFP.Load(); got != fpBefore {
		t.Fatalf("rejected reload still swapped the model: %016x -> %016x", fpBefore, got)
	}

	// The old model still serves.
	var est estimateResponse
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 20}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Degraded {
		t.Error("healthy model reported degraded after rejected reload")
	}

	// An intact checkpoint at the same path then succeeds.
	if err := tinyNet(t, 9).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	rec = do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: path}, nil)
	mustCode(t, rec, http.StatusOK)
	if s.modelFP.Load() == fpBefore {
		t.Error("valid reload did not swap the model")
	}
}

// TestReloadRejectsShapeMismatch writes a checkpoint whose gob payload
// carries a truncated weight vector under a valid CRC: the shape gate (not
// the CRC) must refuse it.
func TestReloadRejectsShapeMismatch(t *testing.T) {
	s := testServer(t)
	fpBefore := s.modelFP.Load()

	// Hand-roll a legacy (headerless) payload whose weight map is empty:
	// the CRC can't catch it, only the per-parameter shape gate can.
	net := tinyNet(t, 3)
	type ckpt struct {
		Cfg     model.Config
		Weights map[string][]float64
	}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(&ckpt{
		Cfg: net.Cfg, Weights: map[string][]float64{},
	}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(path, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: path}, nil)
	if rec.Code != http.StatusBadRequest && rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("shape-mismatched checkpoint: status %d, want 4xx; body %s", rec.Code, rec.Body.String())
	}
	if s.modelFP.Load() != fpBefore {
		t.Error("shape-mismatched reload swapped the model")
	}
}

// TestReloadUnderConcurrentEstimates hammers estimates while checkpoints are
// swapped in a loop; run under -race this proves reload and the estimate path
// share no unsynchronized state. Estimates must only ever see a complete
// model (every response 200 or 409/429, never 500).
func TestReloadUnderConcurrentEstimates(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 600)

	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.ckpt"), filepath.Join(dir, "b.ckpt")}
	for i, p := range paths {
		if err := tinyNet(t, uint64(20+i)).SaveFile(p); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seed++
				rec := do(t, s, "POST", "/v1/estimate", estimateRequest{
					Workload: "web", NumPaths: 10, Seed: seed,
				}, nil)
				if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
					t.Errorf("estimate during reload: status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		rec := do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: paths[i%2]}, nil)
		if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
			t.Errorf("reload %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	close(stop)
	wg.Wait()
}

// TestAdmissionControlSheds serves with one estimation slot and parks a
// request in it: the next estimate must be shed with 429 + Retry-After, and
// a slot release must let traffic through again.
func TestAdmissionControlSheds(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	s, err := New(Options{Net: tinyNet(t, 1), Workers: 2, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	uploadSpecWorkload(t, s, "web", 600)

	entered := make(chan struct{})
	unblock := make(chan struct{})
	var once sync.Once
	faultinject.Set("serve.estimate", func(any) {
		once.Do(func() { close(entered) })
		<-unblock
	})

	go func() {
		do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 10}, nil)
	}()
	<-entered

	rec := do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 10}, nil)
	mustCode(t, rec, http.StatusTooManyRequests)
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(unblock)
	faultinject.Clear()

	// Wait for the slot to free, then confirm service resumed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec = do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 10}, nil)
		if rec.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not recover after shed: status %d", rec.Code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedEstimateResponse poisons predictions with NaN: the response
// must carry finite p99 values, degraded=true, and the degraded counters
// must show up in /metrics.
func TestDegradedEstimateResponse(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 600)

	faultinject.Set("core.predict", func(detail any) {
		preds := detail.([][]float64)
		for _, p := range preds {
			for i := range p {
				p[i] = math.NaN()
			}
		}
	})
	var est estimateResponse
	rec := do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 20}, &est)
	mustCode(t, rec, http.StatusOK)
	if !est.Degraded || est.DegradedPaths != est.DistinctPaths {
		t.Errorf("degraded=%v degraded_paths=%d/%d", est.Degraded, est.DegradedPaths, est.DistinctPaths)
	}
	if v, ok := est.P99["combined"]; !ok || math.IsNaN(v) || v < 1 {
		t.Errorf("combined p99 = %v (present=%v)", v, ok)
	}

	var metrics struct {
		Degraded struct {
			Estimates int64 `json:"estimates"`
			Paths     int64 `json:"paths"`
		} `json:"degraded"`
	}
	rec = do(t, s, "GET", "/metrics", nil, &metrics)
	mustCode(t, rec, http.StatusOK)
	if metrics.Degraded.Estimates != 1 || metrics.Degraded.Paths != int64(est.DegradedPaths) {
		t.Errorf("metrics degraded = %+v, want 1 estimate / %d paths", metrics.Degraded, est.DegradedPaths)
	}
}

// TestHandlerPanicContained panics inside the estimation path via the fault
// hook: the request answers 500, the panic counter ticks, and the server
// keeps serving.
func TestHandlerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 600)

	faultinject.Set("serve.estimate", func(any) { panic("injected handler panic") })
	req := httptest.NewRequest("POST", "/v1/estimate",
		bytes.NewReader([]byte(`{"workload":"web","num_paths":10}`)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req) // must not propagate the panic
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicked request: status %d, want 500", rec.Code)
	}
	faultinject.Clear()

	var metrics struct {
		Panics int64 `json:"panics"`
	}
	rec2 := do(t, s, "GET", "/metrics", nil, &metrics)
	mustCode(t, rec2, http.StatusOK)
	if metrics.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", metrics.Panics)
	}

	var est estimateResponse
	rec2 = do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 10}, &est)
	mustCode(t, rec2, http.StatusOK)
	if s.Inflight() != 0 {
		t.Errorf("inflight gauge = %d after requests drained", s.Inflight())
	}
}

// TestRequestValidationBounds exercises the new request-shape gates.
func TestRequestValidationBounds(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 600)

	rec := do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: maxNumPaths + 1}, nil)
	mustCode(t, rec, http.StatusBadRequest)

	rec = do(t, s, "POST", "/v1/workloads", workloadRequest{
		Name: "bad name!", Spec: &specJSON{NumFlows: 10},
	}, nil)
	mustCode(t, rec, http.StatusBadRequest)

	rec = do(t, s, "POST", "/v1/workloads", workloadRequest{
		Name: "overload", Spec: &specJSON{NumFlows: 10, MaxLoad: 7},
	}, nil)
	mustCode(t, rec, http.StatusBadRequest)

	sweeps := make([]whatIfSweep, maxSweeps+1)
	for i := range sweeps {
		sweeps[i] = whatIfSweep{Knobs: map[string]string{"cc": "dctcp"}}
	}
	rec = do(t, s, "POST", "/v1/whatif", whatIfRequest{Workload: "web", Sweeps: sweeps}, nil)
	mustCode(t, rec, http.StatusBadRequest)
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"m3/internal/cluster"
	"m3/internal/core"
	"m3/internal/model"
)

// minRemoteBudget is the smallest propagated deadline budget worth starting
// work for. Below it, the caller's deadline will expire before any shard or
// cache answer could land, so the peer sheds immediately with the retryable
// timeout code instead of computing for a caller that already gave up.
const minRemoteBudget = 5 * time.Millisecond

// budgetContext applies a propagated deadline budget (deadline_ns wire
// field): ok=false means the budget is hopeless and the caller should shed
// now; otherwise the returned context carries min(estTimeout, budget).
func (s *Server) budgetContext(parent context.Context, deadlineNS int64) (context.Context, context.CancelFunc, bool) {
	limit := s.estTimeout
	if deadlineNS > 0 {
		budget := time.Duration(deadlineNS)
		if budget < minRemoteBudget {
			return nil, nil, false
		}
		if budget < limit {
			limit = budget
		}
	}
	ctx, cancel := context.WithTimeout(parent, limit)
	return ctx, cancel, true
}

// This file is the server side of the cluster protocol: the
// /internal/v1/* handlers every replica mounts when it runs as part of a
// fleet, plus the peer-tier hooks the estimate cache calls on local
// misses. All of it is plain JSON over HTTP between replicas that trust
// each other; the public API surface is unchanged.

// --- scatter-gather shard execution ----------------------------------------

// handleInternalPaths executes one shard of a peer's scatter-gathered
// estimate: a slice of the coordinator's sampled path indices, run under
// this replica's own pool, model, and admission control. Refusals are
// structured (shed, model_mismatch, conflict) so the coordinator can tell
// "healthy peer saying not now" from "peer in trouble".
func (s *Server) handleInternalPaths(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.release()
	var req cluster.PathsRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, ok := s.workload(req.Workload)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no workload %q", req.Workload))
		return
	}
	if uint64(wl.Hash) != req.Hash {
		// Registry skew: this replica's copy of the workload is not the one
		// the coordinator planned against. Running the shard anyway would
		// index into a different decomposition and silently compute wrong
		// paths, so refuse and let the coordinator compute it locally.
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: workload %q hash mismatch (have %x, shard wants %x)",
				req.Workload, uint64(wl.Hash), req.Hash))
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Resolve the coordinator's pinned backend kind (empty = float net, so
	// pre-backend coordinators keep working). A kind this build does not
	// register is a terminal defect, not skew.
	backend := req.Backend
	if backend == "" {
		backend = model.KindNet
	}
	pred, ok := s.backends.Load().byKind[backend]
	if !ok {
		writeErrorCode(w, http.StatusBadRequest, cluster.CodeUnknownBackend,
			&model.UnknownBackendError{Kind: backend})
		return
	}
	fp := pred.Fingerprint()
	if method == core.MethodML && req.ModelFP != 0 && req.ModelFP != fp {
		// A reload is propagating through the fleet; mixing model
		// generations (or backend arithmetic) inside one estimate would
		// produce answers no single process could. Retryable: the
		// coordinator recomputes locally now and the fleet converges via
		// the invalidate broadcast.
		writeErrorCode(w, http.StatusConflict, cluster.CodeModelMismatch,
			fmt.Errorf("serve: serving %s model %s, shard pinned %s",
				backend, fingerprintString(fp), fingerprintString(req.ModelFP)))
		return
	}
	d, err := wl.Decomposition()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel, ok := s.budgetContext(r.Context(), req.DeadlineNS)
	if !ok {
		writeErrorCode(w, http.StatusGatewayTimeout, cluster.CodeTimeout,
			fmt.Errorf("serve: %v of deadline budget left, below the %v floor; shedding shard",
				time.Duration(req.DeadlineNS), minRemoteBudget))
		return
	}
	defer cancel()
	est := core.NewEstimator(pred,
		core.WithMethod(method),
		core.WithBatchSize(s.opts.BatchSize),
		core.WithPool(s.pool),
		core.WithDecomposition(d),
		core.WithFlowSimFallback(true))
	sr, err := est.RunShard(ctx, d, req.Indices, req.Mults, req.Cfg)
	if err != nil {
		writeError(w, errorCode(r, err), err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.PathsResponse{
		Outs:          sr.Outs,
		PathSimNs:     sr.PathSimNs,
		PredictNs:     sr.PredictNs,
		PathSimWallNs: sr.PathSimWallNs,
		PredictWallNs: sr.PredictWallNs,
		OverlapNs:     sr.OverlapNs,
		DegradedPaths: sr.DegradedPaths,
	})
}

// --- two-tier cache: owner side --------------------------------------------

// handleInternalCacheFetch answers a peer's tier-two lookup for a key this
// replica owns. Wait joins an in-flight local computation (fleet-wide
// single-flight) instead of reporting a miss the peer would then recompute.
func (s *Server) handleInternalCacheFetch(w http.ResponseWriter, r *http.Request) {
	var req cluster.KeyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		res *core.Estimate
		hit bool
	)
	if req.Wait {
		ctx, cancel, ok := s.budgetContext(r.Context(), req.DeadlineNS)
		if !ok {
			writeErrorCode(w, http.StatusGatewayTimeout, cluster.CodeTimeout,
				fmt.Errorf("serve: %v of deadline budget left, below the %v floor; shedding cache wait",
					time.Duration(req.DeadlineNS), minRemoteBudget))
			return
		}
		defer cancel()
		var err error
		res, hit, err = s.cache.Fetch(ctx, req.Key)
		if err != nil {
			writeError(w, errorCode(r, err), err)
			return
		}
	} else {
		res, hit = s.cache.Get(req.Key)
	}
	resp := cluster.FetchResponse{Hit: hit}
	if hit {
		resp.Estimate = cluster.WireFromEstimate(res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInternalCachePut stores an estimate a peer computed for a key this
// replica owns. The wire snapshot is validated before it can enter the
// cache — a peer cannot poison the owned tier with malformed data.
func (s *Server) handleInternalCachePut(w http.ResponseWriter, r *http.Request) {
	var req cluster.PutRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Estimate == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: cacheput without estimate"))
		return
	}
	res, err := req.Estimate.Estimate()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.cache.PutOwned(req.Key, res)
	writeJSON(w, http.StatusOK, map[string]bool{"stored": true})
}

// peerFetch is the estimate cache's second tier: on a local miss, ask the
// key's rendezvous owner before paying for a compute. Any trouble — owner
// is self, owner down, transport error, clean miss — is simply "no", and
// the caller computes locally; the peer tier can only ever save work.
func (s *Server) peerFetch(ctx context.Context, key core.EstimateKey) (*core.Estimate, bool) {
	owner := s.fleet.OwnerOf(key.Digest())
	if owner == s.fleet.Self() {
		return nil, false
	}
	p := s.fleet.Peer(owner)
	if p == nil || !p.Up() {
		return nil, false
	}
	var (
		res *core.Estimate
		ok  bool
	)
	// Peer.Call supplies per-attempt timeouts, budget-gated retries, and
	// breaker bookkeeping; any residual error is simply "no".
	err := p.Call(ctx, func(ctx context.Context) error {
		var err error
		res, ok, err = p.Client.CacheFetch(ctx, key, true)
		return err
	})
	if err != nil {
		return nil, false
	}
	return res, ok
}

// peerPut offers a freshly computed estimate to its hash owner,
// asynchronously and best-effort: estimate latency never waits on cache
// placement, and a failed put costs nothing but a future peer miss.
func (s *Server) peerPut(key core.EstimateKey, res *core.Estimate) {
	owner := s.fleet.OwnerOf(key.Digest())
	if owner == s.fleet.Self() {
		s.cache.PutOwned(key, res)
		return
	}
	p := s.fleet.Peer(owner)
	if p == nil || !p.Up() {
		return
	}
	go func() {
		err := p.Call(context.Background(), func(ctx context.Context) error {
			return p.Client.CachePut(ctx, key, res)
		})
		if err != nil {
			s.metrics.syncErrors.Add(1)
		}
	}()
}

// --- registry replication ---------------------------------------------------

// handleInternalWorkloadSync applies a replicated registry mutation, or
// serves the full registry to a (re)joining replica. Mutations are
// idempotent and last-writer-wins: replicas rebuild the workload from the
// original creation request (deterministic spec seeds or raw trace bytes),
// so every member materializes bit-identical flows.
func (s *Server) handleInternalWorkloadSync(w http.ResponseWriter, r *http.Request) {
	var req cluster.SyncRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch req.Op {
	case "create":
		var wreq workloadRequest
		if err := json.Unmarshal(req.Request, &wreq); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		wl, err := buildWorkload(&wreq)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		wl.raw = req.Request
		s.mu.Lock()
		s.workloads[wl.Name] = wl
		s.mu.Unlock()
		s.metrics.workloadsSynced.Add(1)
		writeJSON(w, http.StatusOK, wl.info())
	case "delete":
		s.mu.Lock()
		delete(s.workloads, req.Name)
		s.mu.Unlock()
		s.metrics.workloadsSynced.Add(1)
		writeJSON(w, http.StatusOK, map[string]string{"deleted": req.Name})
	case "pull":
		s.mu.RLock()
		list := cluster.SyncList{Workloads: make([]json.RawMessage, 0, len(s.workloads))}
		for _, wl := range s.workloads {
			if wl.raw != nil {
				list.Workloads = append(list.Workloads, wl.raw)
			}
		}
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, list)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown sync op %q", req.Op))
	}
}

// Durable-replication retry schedule: enough attempts to outlive a breaker
// cooldown plus the prober's re-admission, then give up (a peer still dark
// after ~15s of backoff pulls the full registry when it rejoins).
const (
	replicateAttempts = 6
	replicateBackoff  = 500 * time.Millisecond
)

// replicate fans a registry mutation out to every peer, asynchronously:
// the client's create/delete answers at local speed. Delivery is durable
// against transient peer trouble: a peer whose breaker happens to be open
// when the mutation lands would otherwise miss it forever (it only pulls
// the full registry on an announced rejoin), so failed sends retry with
// backoff until the peer accepts, announces departure, or the server shuts
// down. raw is nil for deletes.
func (s *Server) replicate(op, name string, raw json.RawMessage) {
	if s.fleet == nil {
		return
	}
	req := &cluster.SyncRequest{Op: op, Name: name, Request: raw}
	for _, p := range s.fleet.Peers() {
		p := p
		go func() {
			for attempt := 0; ; attempt++ {
				err := p.Call(context.Background(), func(ctx context.Context) error {
					return p.Client.SyncWorkload(ctx, req)
				})
				if err == nil {
					return
				}
				s.metrics.syncErrors.Add(1)
				// A departed peer re-pulls the registry on rejoin — that
				// path owns convergence; retrying here would race it.
				if p.Left() || attempt >= replicateAttempts-1 {
					return
				}
				select {
				case <-s.stop:
					return
				case <-time.After(replicateBackoff << attempt):
				}
			}
		}()
	}
}

// --- model invalidation -----------------------------------------------------

// handleInternalInvalidate applies a peer's model-swap broadcast: drop
// every cached estimate keyed to another fingerprint, then converge on the
// same checkpoint if this replica is still serving a different model. The
// reload here never re-broadcasts (only the external /v1/reload handler
// originates invalidations), so broadcasts cannot loop.
func (s *Server) handleInternalInvalidate(w http.ResponseWriter, r *http.Request) {
	var req cluster.InvalidateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Count receipt before acting: anyone watching the fingerprint converge
	// must already see the broadcast that caused it.
	s.metrics.invalidations.Add(1)
	if s.modelFP.Load() != req.Fingerprint && req.Checkpoint != "" {
		// Best-effort: a failed reload keeps the current model serving (the
		// fingerprint pin on shard requests contains the damage to "this
		// replica computes fewer shards"), so it degrades, never errors.
		_ = s.Reload(req.Checkpoint)
	}
	// A successful reload already purged stale entries inside SwapPredictor
	// (before the fingerprint flipped, so a peer observing the new model
	// never finds them). This sweep covers the remaining cases: the replica
	// was already converged, the broadcast named no checkpoint, or the
	// reload failed — entries keyed to the set actually serving stay.
	dropped := s.cache.InvalidateModel(s.backends.Load().fingerprints()...)
	writeJSON(w, http.StatusOK, map[string]any{
		"dropped": dropped,
		"model":   fingerprintString(s.modelFP.Load()),
	})
}

// broadcastInvalidate tells every peer about a model swap (fire-and-forget;
// a peer that misses it still refuses mismatched shards via the
// fingerprint pin, then converges on its next broadcast or restart).
func (s *Server) broadcastInvalidate(fingerprint uint64, checkpoint string) {
	if s.fleet == nil {
		return
	}
	req := &cluster.InvalidateRequest{Fingerprint: fingerprint, Checkpoint: checkpoint}
	for _, p := range s.fleet.Peers() {
		p := p
		go func() {
			err := p.Call(context.Background(), func(ctx context.Context) error {
				return p.Client.Invalidate(ctx, req)
			})
			if err != nil {
				s.metrics.syncErrors.Add(1)
			}
		}()
	}
}

// --- membership -------------------------------------------------------------

// handleInternalMembership applies a join/leave announcement, flipping the
// peer's health immediately instead of waiting for a timeout to discover
// the change.
func (s *Server) handleInternalMembership(w http.ResponseWriter, r *http.Request) {
	var req cluster.MembershipUpdate
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p := s.fleet.Peer(req.Addr)
	if p == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: %q is not in this replica's peer list", req.Addr))
		return
	}
	switch req.Event {
	case "joining":
		p.MarkJoined()
	case "leaving":
		p.MarkLeft()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown membership event %q", req.Event))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"peer": req.Addr, "event": req.Event})
}

// JoinFleet announces this replica to its peers and pulls the full
// workload registry from the first peer that answers, so a replica joining
// (or restarting into) a running fleet serves the same registry as
// everyone else. Best-effort by design: at cold start every member joins
// simultaneously and nobody has anything to pull. Returns the number of
// workloads adopted.
func (s *Server) JoinFleet(ctx context.Context) int {
	if s.fleet == nil {
		return 0
	}
	for _, p := range s.fleet.Peers() {
		p := p
		_ = p.Call(ctx, func(ctx context.Context) error {
			return p.Client.Announce(ctx, s.fleet.Self(), "joining")
		})
	}
	adopted := 0
	for _, p := range s.fleet.Peers() {
		p := p
		var raws []json.RawMessage
		err := p.Call(ctx, func(ctx context.Context) error {
			var err error
			raws, err = p.Client.PullWorkloads(ctx)
			return err
		})
		if err != nil {
			continue
		}
		for _, raw := range raws {
			var wreq workloadRequest
			if err := json.Unmarshal(raw, &wreq); err != nil {
				continue
			}
			s.mu.RLock()
			_, exists := s.workloads[wreq.Name]
			s.mu.RUnlock()
			if exists {
				continue
			}
			wl, err := buildWorkload(&wreq)
			if err != nil {
				continue
			}
			wl.raw = raw
			s.mu.Lock()
			if _, exists := s.workloads[wl.Name]; !exists {
				s.workloads[wl.Name] = wl
				adopted++
			}
			s.mu.Unlock()
		}
		return adopted
	}
	return adopted
}

// LeaveFleet announces drain-aware shutdown to every peer so they stop
// scattering to (and fetching from) this replica immediately, instead of
// discovering the drain one timeout at a time.
func (s *Server) LeaveFleet(ctx context.Context) {
	if s.fleet == nil {
		return
	}
	for _, p := range s.fleet.Peers() {
		p := p
		_ = p.Call(ctx, func(ctx context.Context) error {
			return p.Client.Announce(ctx, s.fleet.Self(), "leaving")
		})
	}
}

// --- health ------------------------------------------------------------------

// handleInternalHealth answers active health probes: cheap proof the
// serving loop is alive, plus the model fingerprint and inflight count. No
// admission control — a saturated replica is still a healthy replica, and
// probes must be near-free (two atomic loads) so the prober can run hot.
func (s *Server) handleInternalHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cluster.HealthResponse{
		Fingerprint: s.modelFP.Load(),
		Inflight:    s.metrics.inflight.Load(),
	})
}

package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"m3/internal/core"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/trace"
	"m3/internal/validate"
	"m3/internal/workload"
)

// Workload is one named registry entry: a topology plus a flow set, with the
// path decomposition computed once and shared by every estimate against it.
type Workload struct {
	Name   string
	FT     *topo.FatTree
	Flows  []workload.Flow
	Hash   core.WorkloadHash
	Source string // "generated" or "trace"

	// raw is the original creation request body, retained for cluster
	// replication: peers rebuild the workload from the same deterministic
	// inputs (spec seeds, trace bytes) instead of shipping materialized
	// flows, so every replica's decomposition is bit-identical.
	raw json.RawMessage

	decompOnce sync.Once
	decomp     *pathsim.Decomposition
	decompErr  error
}

// Decomposition returns the workload's path decomposition, computing it on
// first use. Concurrent callers block on the single computation.
func (w *Workload) Decomposition() (*pathsim.Decomposition, error) {
	w.decompOnce.Do(func() {
		w.decomp, w.decompErr = pathsim.Decompose(w.FT.Topology, w.Flows)
	})
	return w.decomp, w.decompErr
}

// workloadRequest is the POST /v1/workloads body. Exactly one of Spec
// (synthetic generation) or Trace (uploaded flows) must be set.
type workloadRequest struct {
	Name    string     `json:"name"`
	Topo    string     `json:"topo,omitempty"`    // "small" (default) or "large"
	Oversub string     `json:"oversub,omitempty"` // small only; default "2-to-1"
	Spec    *specJSON  `json:"spec,omitempty"`
	Trace   *traceJSON `json:"trace,omitempty"`
}

// specJSON mirrors workload.Spec with serving defaults.
type specJSON struct {
	NumFlows   int     `json:"num_flows"`
	SizeDist   string  `json:"size_dist,omitempty"`  // default "WebServer"
	Matrix     string  `json:"matrix,omitempty"`     // default "B"
	MaxLoad    float64 `json:"max_load,omitempty"`   // default 0.5
	Burstiness float64 `json:"burstiness,omitempty"` // default 2
	Seed       uint64  `json:"seed,omitempty"`       // default 1
}

// traceJSON carries an inline flow trace (internal/trace schema).
type traceJSON struct {
	Format string `json:"format,omitempty"` // "csv" (default) or "jsonl"
	Data   string `json:"data"`
}

// validWorkloadName restricts registry names to short printable tokens that
// survive a URL path segment unescaped.
func validWorkloadName(name string) error {
	if name == "" {
		return validate.Errf("serve", "name", "is required")
	}
	if len(name) > maxWorkloadName {
		return validate.Errf("serve", "name", "%d bytes exceeds limit %d", len(name), maxWorkloadName)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return validate.Errf("serve", "name", "character %q not allowed (want [a-zA-Z0-9._-])", c)
		}
	}
	return nil
}

// buildWorkload materializes a registry entry from an upload request.
func buildWorkload(req *workloadRequest) (*Workload, error) {
	if err := validWorkloadName(req.Name); err != nil {
		return nil, err
	}
	if (req.Spec == nil) == (req.Trace == nil) {
		return nil, fmt.Errorf("serve: exactly one of spec or trace must be set")
	}
	if req.Spec != nil {
		sp := req.Spec
		if sp.NumFlows < 1 || sp.NumFlows > 10_000_000 {
			return nil, validate.Errf("serve", "spec.num_flows", "%d outside [1,10000000]", sp.NumFlows)
		}
		if sp.MaxLoad < 0 || sp.MaxLoad > 1 {
			return nil, validate.Errf("serve", "spec.max_load", "%v outside [0,1]", sp.MaxLoad)
		}
		if sp.Burstiness < 0 {
			return nil, validate.Errf("serve", "spec.burstiness", "must be non-negative, got %v", sp.Burstiness)
		}
	}

	var (
		ft  *topo.FatTree
		err error
	)
	switch req.Topo {
	case "", "small":
		o := topo.Oversub(req.Oversub)
		if req.Oversub == "" {
			o = topo.Oversub2to1
		}
		ft, err = topo.SmallFatTree(o)
	case "large":
		ft, err = topo.LargeFatTree()
	default:
		err = fmt.Errorf("serve: unknown topology %q", req.Topo)
	}
	if err != nil {
		return nil, err
	}
	router := routing.NewFatTreeRouter(ft)

	wl := &Workload{Name: req.Name, FT: ft}
	if req.Spec != nil {
		sp := *req.Spec
		if sp.SizeDist == "" {
			sp.SizeDist = "WebServer"
		}
		if sp.Matrix == "" {
			sp.Matrix = "B"
		}
		if sp.MaxLoad == 0 {
			sp.MaxLoad = 0.5
		}
		if sp.Burstiness == 0 {
			sp.Burstiness = 2
		}
		if sp.Seed == 0 {
			sp.Seed = 1
		}
		sizes, err := workload.MetaDist(sp.SizeDist)
		if err != nil {
			return nil, err
		}
		mat, err := workload.Matrix(sp.Matrix, ft.Cfg.NumRacks(), rng.New(sp.Seed))
		if err != nil {
			return nil, err
		}
		wl.Flows, err = workload.Generate(ft, router, workload.Spec{
			NumFlows: sp.NumFlows, Sizes: sizes, Matrix: mat,
			Burstiness: sp.Burstiness, MaxLoad: sp.MaxLoad, Seed: sp.Seed,
		})
		if err != nil {
			return nil, err
		}
		wl.Source = "generated"
	} else {
		format := trace.CSV
		if req.Trace.Format != "" {
			format, err = trace.ParseFormat(req.Trace.Format)
			if err != nil {
				return nil, err
			}
		}
		wl.Flows, err = trace.Load(strings.NewReader(req.Trace.Data), format,
			trace.LoadOptions{Router: router, Topo: ft.Topology})
		if err != nil {
			return nil, err
		}
		wl.Source = "trace"
	}
	// Registration is the API boundary: every estimate against this entry
	// reuses the cached decomposition and skips re-validation, so the
	// structural gate runs exactly once, here.
	if err := workload.ValidateFlows(ft.Topology, wl.Flows); err != nil {
		return nil, err
	}
	wl.Hash = core.HashWorkload(ft.Topology, wl.Flows)
	return wl, nil
}

// workloadInfo is the JSON summary of one registry entry.
type workloadInfo struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Flows  int    `json:"flows"`
	Hosts  int    `json:"hosts"`
	Racks  int    `json:"racks"`
	Hash   string `json:"hash"`
}

func (w *Workload) info() workloadInfo {
	return workloadInfo{
		Name:   w.Name,
		Source: w.Source,
		Flows:  len(w.Flows),
		Hosts:  len(w.FT.Hosts()),
		Racks:  w.FT.Cfg.NumRacks(),
		Hash:   fingerprintString(uint64(w.Hash)),
	}
}

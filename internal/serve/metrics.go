package serve

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/core"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the request
// latency histogram; the last bucket is +inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
	sumNs  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBucketsMS[:], ms)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

func (h *histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(h.counts))
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		label := "+inf"
		if i < len(latencyBucketsMS) {
			label = formatMS(latencyBucketsMS[i])
		}
		buckets["le_"+label] = c
	}
	n := h.n.Load()
	out := map[string]any{"count": n, "buckets_ms": buckets}
	if n > 0 {
		out["mean_ms"] = float64(h.sumNs.Load()) / float64(n) / float64(time.Millisecond)
	}
	return out
}

func formatMS(v float64) string {
	if v == float64(int64(v)) {
		return itoa(int64(v))
	}
	return itoa(int64(v)) + "." + itoa(int64(v*10)%10)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// routeStats tracks one route's request counters and latencies.
type routeStats struct {
	count   atomic.Int64
	errors  atomic.Int64
	latency histogram
}

// backendStats tracks one inference backend kind's usage: how many ML
// estimates it computed (cache misses only) and their cumulative predict
// stage time.
type backendStats struct {
	estimates atomic.Int64
	predictNs atomic.Int64
}

// Metrics aggregates server-wide counters exposed as expvar-style JSON by
// the /metrics endpoint.
type Metrics struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*routeStats

	// backendMu guards the per-backend-kind split (keys are Predictor.Kind
	// strings; values are created on first use).
	backendMu sync.Mutex
	backends  map[string]*backendStats

	inflight  atomic.Int64
	estimates atomic.Int64
	reloads   atomic.Int64

	// Fault-tolerance counters: requests shed by admission control,
	// reloads rejected by integrity checks, handler panics recovered, and
	// estimates (and their path counts) that fell back to flowSim.
	shed              atomic.Int64
	reloadRejected    atomic.Int64
	panics            atomic.Int64
	degradedEstimates atomic.Int64
	degradedPaths     atomic.Int64

	// estLatencyNs is an EWMA of computed-estimate wall latency; admission
	// control derives the Retry-After hint from it (drain time is one
	// estimate's latency, so clients back off proportionally to reality).
	estLatencyNs atomic.Int64

	// Cluster counters: estimates executed via scatter-gather, shards peers
	// actually computed, shards that fell back to local compute, registry
	// mutations applied from peers, fire-and-forget peer calls that failed
	// (replication, cache puts, invalidate broadcasts), and model
	// invalidation broadcasts received.
	scatterEstimates      atomic.Int64
	scatterRemoteShards   atomic.Int64
	scatterFallbackShards atomic.Int64
	workloadsSynced       atomic.Int64
	syncErrors            atomic.Int64
	invalidations         atomic.Int64

	// Cumulative per-stage estimator time (ns). The pathSim/predict pair is
	// CPU time summed across pool workers; the wall pair is per-estimate
	// elapsed time, and overlapNs how much of the two extents ran
	// concurrently under the streamed pipeline.
	decomposeNs   atomic.Int64
	sampleNs      atomic.Int64
	pathSimNs     atomic.Int64
	predictNs     atomic.Int64
	aggregateNs   atomic.Int64
	pathSimWallNs atomic.Int64
	predictWallNs atomic.Int64
	overlapNs     atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{
		start:    time.Now(),
		routes:   make(map[string]*routeStats),
		backends: make(map[string]*backendStats),
	}
}

func (m *Metrics) route(name string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[name]
	if !ok {
		rs = &routeStats{}
		m.routes[name] = rs
	}
	return rs
}

// recordBackend accumulates one ML estimate under its backend kind.
func (m *Metrics) recordBackend(kind string, predict time.Duration) {
	m.backendMu.Lock()
	bs, ok := m.backends[kind]
	if !ok {
		bs = &backendStats{}
		m.backends[kind] = bs
	}
	m.backendMu.Unlock()
	bs.estimates.Add(1)
	bs.predictNs.Add(int64(predict))
}

// recordStages accumulates an estimate's per-stage cost.
func (m *Metrics) recordStages(st core.StageTimings) {
	m.estimates.Add(1)
	m.decomposeNs.Add(int64(st.Decompose))
	m.sampleNs.Add(int64(st.Sample))
	m.pathSimNs.Add(int64(st.PathSim))
	m.predictNs.Add(int64(st.Predict))
	m.aggregateNs.Add(int64(st.Aggregate))
	m.pathSimWallNs.Add(int64(st.PathSimWall))
	m.predictWallNs.Add(int64(st.PredictWall))
	m.overlapNs.Add(int64(st.Overlap))
}

// observeEstimateLatency folds one computed estimate's wall latency into
// the EWMA (weight 1/4 — responsive to load shifts, stable against one
// outlier). Lock-free CAS loop; a lost race just means the other sample won.
func (m *Metrics) observeEstimateLatency(d time.Duration) {
	for {
		old := m.estLatencyNs.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/4
		}
		if m.estLatencyNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfterSeconds converts the latency EWMA into the Retry-After hint:
// ceil to whole seconds (the header's unit), clamped to [1, 30]. Before the
// first computed estimate it answers the floor.
func (m *Metrics) retryAfterSeconds() int {
	ns := m.estLatencyNs.Load()
	secs := int((ns + int64(time.Second) - 1) / int64(time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// snapshot renders all counters for the /metrics endpoint. defBackend and
// kinds describe the serving backend set; clusterInfo is the fleet section
// (nil when standalone).
func (m *Metrics) snapshot(cacheStats core.CacheStats, modelParams int, modelFP uint64,
	defBackend string, kinds []string, clusterInfo map[string]any) map[string]any {
	m.mu.Lock()
	routes := make(map[string]any, len(m.routes))
	for name, rs := range m.routes {
		routes[name] = map[string]any{
			"count":   rs.count.Load(),
			"errors":  rs.errors.Load(),
			"latency": rs.latency.snapshot(),
		}
	}
	m.mu.Unlock()

	m.backendMu.Lock()
	backends := make(map[string]any, len(m.backends))
	for kind, bs := range m.backends {
		backends[kind] = map[string]any{
			"estimates":  bs.estimates.Load(),
			"predict_ms": float64(bs.predictNs.Load()) / float64(time.Millisecond),
		}
	}
	m.backendMu.Unlock()

	ms := func(ns *atomic.Int64) float64 { return float64(ns.Load()) / float64(time.Millisecond) }
	hitRate := 0.0
	if total := cacheStats.Hits + cacheStats.Misses; total > 0 {
		hitRate = float64(cacheStats.Hits) / float64(total)
	}
	out := map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"inflight":       m.inflight.Load(),
		"shed":           m.shed.Load(),
		"retry_after_s":  m.retryAfterSeconds(),
		"panics":         m.panics.Load(),
		"degraded": map[string]any{
			"estimates": m.degradedEstimates.Load(),
			"paths":     m.degradedPaths.Load(),
		},
		"requests": routes,
		"cache": map[string]any{
			"hits":          cacheStats.Hits,
			"misses":        cacheStats.Misses,
			"entries":       cacheStats.Entries,
			"hit_rate":      hitRate,
			"peer_hits":     cacheStats.PeerHits,
			"peer_misses":   cacheStats.PeerMisses,
			"owned_entries": cacheStats.OwnedEntries,
		},
		"estimates": m.estimates.Load(),
		"stages_ms": map[string]any{
			"decompose":    ms(&m.decomposeNs),
			"sample":       ms(&m.sampleNs),
			"pathsim":      ms(&m.pathSimNs),
			"predict":      ms(&m.predictNs),
			"aggregate":    ms(&m.aggregateNs),
			"pathsim_wall": ms(&m.pathSimWallNs),
			"predict_wall": ms(&m.predictWallNs),
			"overlap":      ms(&m.overlapNs),
		},
		"overlap_ratio": overlapRatio(m.pathSimWallNs.Load(), m.predictWallNs.Load(), m.overlapNs.Load()),
		"model": map[string]any{
			"params":           modelParams,
			"fingerprint":      fingerprintString(modelFP),
			"backend":          defBackend,
			"backends_loaded":  kinds,
			"reloads":          m.reloads.Load(),
			"reloads_rejected": m.reloadRejected.Load(),
		},
		"backends": backends,
	}
	if clusterInfo != nil {
		clusterInfo["scatter"] = map[string]any{
			"estimates":       m.scatterEstimates.Load(),
			"remote_shards":   m.scatterRemoteShards.Load(),
			"fallback_shards": m.scatterFallbackShards.Load(),
		}
		clusterInfo["workloads_synced"] = m.workloadsSynced.Load()
		clusterInfo["sync_errors"] = m.syncErrors.Load()
		clusterInfo["invalidations"] = m.invalidations.Load()
		out["cluster"] = clusterInfo
	}
	return out
}

// overlapRatio mirrors core.Estimate.OverlapRatio over the cumulative
// counters: the fraction of the shorter stage extent that ran concurrently
// with the other stage, clamped to [0, 1]; 0 when either stage never ran.
func overlapRatio(pathSimWall, predictWall, overlap int64) float64 {
	shorter := pathSimWall
	if predictWall < shorter {
		shorter = predictWall
	}
	if shorter <= 0 || overlap <= 0 {
		return 0
	}
	r := float64(overlap) / float64(shorter)
	if r > 1 {
		r = 1
	}
	return r
}

func fingerprintString(fp uint64) string {
	const hex = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hex[fp&0xf]
		fp >>= 4
	}
	return string(buf[:])
}

// instrument wraps a handler with per-route counters, the in-flight gauge,
// the latency histogram, and last-resort panic containment: a handler that
// panics answers 500 (when no bytes have been written yet) and the server
// keeps serving — one poisoned request must never take the process down.
func (m *Metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	rs := m.route(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				m.panics.Add(1)
				if !sw.wrote {
					sw.status = http.StatusInternalServerError
					http.Error(sw.ResponseWriter, "internal error", http.StatusInternalServerError)
				}
			}
			m.inflight.Add(-1)
			rs.count.Add(1)
			if sw.status >= 400 {
				rs.errors.Add(1)
			}
			rs.latency.observe(time.Since(start))
		}()
		h(sw, r)
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

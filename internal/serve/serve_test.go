package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"m3/internal/model"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/trace"
	"m3/internal/workload"
)

// tinyNet builds a small untrained model — inference-valid, which is all
// the serving layer needs.
func tinyNet(t testing.TB, seed uint64) *model.Net {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 32
	cfg.Seed = seed
	net, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testServer(t testing.TB) *Server {
	t.Helper()
	s, err := New(Options{Net: tinyNet(t, 1), Workers: 4, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the handler and decodes the JSON response.
func do(t testing.TB, s *Server, method, target string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s %s: %v\nbody: %s", method, target, err, rec.Body.String())
		}
	}
	return rec
}

func mustCode(t testing.TB, rec *httptest.ResponseRecorder, want int) {
	t.Helper()
	if rec.Code != want {
		t.Fatalf("status = %d, want %d; body: %s", rec.Code, want, rec.Body.String())
	}
}

func uploadSpecWorkload(t testing.TB, s *Server, name string, flows int) {
	t.Helper()
	rec := do(t, s, "POST", "/v1/workloads", workloadRequest{
		Name: name,
		Spec: &specJSON{NumFlows: flows, MaxLoad: 0.5, Burstiness: 1.5, Seed: 7},
	}, nil)
	mustCode(t, rec, http.StatusCreated)
}

func TestServeRoundTrip(t *testing.T) {
	s := testServer(t)

	rec := do(t, s, "GET", "/healthz", nil, nil)
	mustCode(t, rec, http.StatusOK)

	uploadSpecWorkload(t, s, "web", 1000)

	// Duplicate name is a conflict.
	rec = do(t, s, "POST", "/v1/workloads", workloadRequest{
		Name: "web", Spec: &specJSON{NumFlows: 100},
	}, nil)
	mustCode(t, rec, http.StatusConflict)

	var list struct {
		Workloads []workloadInfo `json:"workloads"`
	}
	rec = do(t, s, "GET", "/v1/workloads", nil, &list)
	mustCode(t, rec, http.StatusOK)
	if len(list.Workloads) != 1 || list.Workloads[0].Name != "web" || list.Workloads[0].Flows != 1000 {
		t.Fatalf("list = %+v", list)
	}

	var est estimateResponse
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 40,
	}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Method != "m3" || est.Cached || est.DistinctPaths == 0 {
		t.Fatalf("estimate = %+v", est)
	}
	if p := est.P99["combined"]; p < 1 {
		t.Errorf("combined p99 = %v, want >= 1", p)
	}

	var quant struct {
		Cached    bool                          `json:"cached"`
		Quantiles map[string]map[string]float64 `json:"quantiles"`
	}
	rec = do(t, s, "GET", "/v1/quantiles?workload=web&q=0.5,0.99&paths=40", nil, &quant)
	mustCode(t, rec, http.StatusOK)
	if !quant.Cached {
		t.Error("quantiles should reuse the cached estimate")
	}
	if len(quant.Quantiles) != 2 {
		t.Fatalf("quantiles = %+v", quant.Quantiles)
	}
	if quant.Quantiles["0.99"]["combined"] < quant.Quantiles["0.5"]["combined"] {
		t.Error("p99 < p50")
	}

	var whatif struct {
		Results []struct {
			Name     string            `json:"name"`
			Knobs    map[string]string `json:"knobs"`
			Estimate estimateResponse  `json:"estimate"`
		} `json:"results"`
	}
	rec = do(t, s, "POST", "/v1/whatif", whatIfRequest{
		Workload: "web", NumPaths: 40,
		Sweeps: []whatIfSweep{
			{Name: "timely", Knobs: map[string]string{"cc": "timely"}},
			{Knobs: map[string]string{"initwnd": "30000"}},
		},
	}, &whatif)
	mustCode(t, rec, http.StatusOK)
	if len(whatif.Results) != 3 {
		t.Fatalf("whatif results = %d, want 3 (base + 2 sweeps)", len(whatif.Results))
	}
	if !whatif.Results[0].Estimate.Cached {
		t.Error("whatif base config should hit the cache")
	}
	if whatif.Results[1].Name != "timely" || whatif.Results[1].Estimate.Cached {
		t.Errorf("sweep 1 = %+v", whatif.Results[1])
	}
	if whatif.Results[2].Name != "sweep-1" {
		t.Errorf("sweep 2 name = %q", whatif.Results[2].Name)
	}

	var metrics map[string]any
	rec = do(t, s, "GET", "/metrics", nil, &metrics)
	mustCode(t, rec, http.StatusOK)
	cacheM, ok := metrics["cache"].(map[string]any)
	if !ok || cacheM["hits"].(float64) < 2 {
		t.Errorf("metrics cache = %+v", metrics["cache"])
	}
	if metrics["estimates"].(float64) < 3 {
		t.Errorf("metrics estimates = %v", metrics["estimates"])
	}
	stages, ok := metrics["stages_ms"].(map[string]any)
	if !ok || stages["pathsim"].(float64) <= 0 || stages["predict"].(float64) <= 0 {
		t.Errorf("metrics stages = %+v", metrics["stages_ms"])
	}

	rec = do(t, s, "DELETE", "/v1/workloads/web", nil, nil)
	mustCode(t, rec, http.StatusOK)
	rec = do(t, s, "GET", "/v1/workloads/web", nil, nil)
	mustCode(t, rec, http.StatusNotFound)
}

func TestServeTraceUpload(t *testing.T) {
	s := testServer(t)

	// Round-trip a generated workload through the CSV trace format.
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: 300, Sizes: workload.WebServer,
		Matrix:     workload.MatrixB(ft.Cfg.NumRacks(), rng.New(3)),
		Burstiness: 1.5, MaxLoad: 0.4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Save(&buf, flows, trace.CSV); err != nil {
		t.Fatal(err)
	}

	var info workloadInfo
	rec := do(t, s, "POST", "/v1/workloads", workloadRequest{
		Name:  "uploaded",
		Trace: &traceJSON{Format: "csv", Data: buf.String()},
	}, &info)
	mustCode(t, rec, http.StatusCreated)
	if info.Source != "trace" || info.Flows != 300 {
		t.Fatalf("info = %+v", info)
	}

	var est estimateResponse
	rec = do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "uploaded", Method: "flowsim", NumPaths: 30,
	}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.Method != "flowsim" {
		t.Fatalf("estimate = %+v", est)
	}
}

// TestServeEstimateCacheFaster asserts the acceptance criterion: a repeated
// identical estimate is served from the cache measurably faster than the
// cold computation.
func TestServeEstimateCacheFaster(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 1500)

	req := estimateRequest{Workload: "web", NumPaths: 60}

	coldStart := time.Now()
	var cold estimateResponse
	mustCode(t, do(t, s, "POST", "/v1/estimate", req, &cold), http.StatusOK)
	coldDur := time.Since(coldStart)
	if cold.Cached {
		t.Fatal("first estimate reported cached")
	}

	warmStart := time.Now()
	var warm estimateResponse
	mustCode(t, do(t, s, "POST", "/v1/estimate", req, &warm), http.StatusOK)
	warmDur := time.Since(warmStart)
	if !warm.Cached {
		t.Fatal("second estimate not served from cache")
	}
	if warmDur >= coldDur/2 {
		t.Errorf("warm request took %v, cold %v; want warm < cold/2", warmDur, coldDur)
	}

	stats := s.cache.Stats()
	if stats.Hits < 1 || stats.Misses != 1 {
		t.Errorf("cache stats = %+v", stats)
	}
}

// TestServeConcurrentClients hammers one estimate from many goroutines and
// asserts single-flight behavior: exactly one computation, everyone else a
// hit. Run under -race this also exercises model inference concurrency.
func TestServeConcurrentClients(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 1000)

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var est estimateResponse
			rec := do(t, s, "POST", "/v1/estimate", estimateRequest{
				Workload: "web", NumPaths: 40,
			}, &est)
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats := s.cache.Stats()
	if stats.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight)", stats.Misses)
	}
	if stats.Hits != clients-1 {
		t.Errorf("hits = %d, want %d", stats.Hits, clients-1)
	}

	// Different parameters are a different key: a fresh computation.
	var est estimateResponse
	mustCode(t, do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 40, Config: map[string]string{"cc": "timely"},
	}, &est), http.StatusOK)
	if est.Cached {
		t.Error("different config served from cache")
	}
}

// TestServeCancellation asserts that a closed request context aborts
// in-flight path simulations promptly instead of running them out.
func TestServeCancellation(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "big", 4000)
	// Warm the decomposition so the measured window is pure path work.
	wl, _ := s.workload("big")
	if _, err := wl.Decomposition(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(estimateRequest{
		Workload: "big", Method: "ns3-path", NumPaths: 200,
	})
	req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	start := time.Now()
	go func() {
		s.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after context cancellation")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("handler took %v after cancellation", elapsed)
	}
	if rec.Code != 499 {
		t.Errorf("status = %d, want 499; body: %s", rec.Code, rec.Body.String())
	}
}

func TestServeHotReload(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "m3.ckpt")
	if err := tinyNet(t, 1).SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Net: tinyNet(t, 1), CheckpointPath: ckpt, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	uploadSpecWorkload(t, s, "web", 800)

	var est estimateResponse
	mustCode(t, do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 30,
	}, &est), http.StatusOK)

	fpBefore := s.modelFP.Load()
	// Swap in a model with different weights and reload.
	if err := tinyNet(t, 99).SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	var reload struct {
		Model   string `json:"model"`
		Reloads int64  `json:"reloads"`
	}
	mustCode(t, do(t, s, "POST", "/v1/reload", nil, &reload), http.StatusOK)
	if s.modelFP.Load() == fpBefore {
		t.Fatal("fingerprint unchanged after reload of different weights")
	}
	if reload.Reloads != 1 {
		t.Errorf("reloads = %d", reload.Reloads)
	}

	// The old model's cached estimate must not be served for the new model.
	mustCode(t, do(t, s, "POST", "/v1/estimate", estimateRequest{
		Workload: "web", NumPaths: 30,
	}, &est), http.StatusOK)
	if est.Cached {
		t.Error("estimate from the pre-reload model served after hot-reload")
	}

	// Reload from a missing path fails without swapping the model.
	fp := s.modelFP.Load()
	rec := do(t, s, "POST", "/v1/reload", reloadRequest{Checkpoint: filepath.Join(dir, "nope.ckpt")}, nil)
	mustCode(t, rec, http.StatusBadRequest)
	if s.modelFP.Load() != fp {
		t.Error("failed reload swapped the model")
	}
}

func TestServeBadRequests(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 500)

	cases := []struct {
		method, target string
		body           any
		want           int
	}{
		{"POST", "/v1/estimate", estimateRequest{Workload: "nope"}, http.StatusNotFound},
		{"POST", "/v1/estimate", estimateRequest{Workload: "web", Method: "quantum"}, http.StatusBadRequest},
		{"POST", "/v1/estimate", estimateRequest{Workload: "web", Config: map[string]string{"bogus": "1"}}, http.StatusBadRequest},
		{"GET", "/v1/quantiles?workload=web&q=1.5", nil, http.StatusBadRequest},
		{"GET", "/v1/quantiles?workload=missing", nil, http.StatusNotFound},
		{"POST", "/v1/whatif", whatIfRequest{Workload: "web"}, http.StatusBadRequest},
		{"POST", "/v1/workloads", workloadRequest{Name: "x"}, http.StatusBadRequest},
		{"POST", "/v1/workloads", workloadRequest{Name: "x",
			Trace: &traceJSON{Data: "garbage,,,\n"}}, http.StatusBadRequest},
		{"DELETE", "/v1/workloads/none", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		rec := do(t, s, tc.method, tc.target, tc.body, nil)
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d (body %s)", tc.method, tc.target,
				rec.Code, tc.want, strings.TrimSpace(rec.Body.String()))
		}
	}
}

// Package serve exposes the m3 estimator as a concurrent HTTP service: a
// registry of named workloads, estimation under any of the three per-path
// backends, quantile queries, and configuration what-if sweeps. All requests
// share one bounded worker pool (so concurrent estimates divide the cores
// instead of oversubscribing them), one estimate LRU with single-flight
// semantics, and one hot-swappable model checkpoint.
//
// Endpoints:
//
//	GET  /healthz                readiness probe
//	GET  /metrics                expvar-style JSON counters
//	POST /v1/workloads           register a workload (spec or inline trace)
//	GET  /v1/workloads           list registered workloads
//	GET  /v1/workloads/{name}    one workload's summary
//	DELETE /v1/workloads/{name}  unregister
//	POST /v1/estimate            run (or fetch from cache) an estimate
//	GET  /v1/quantiles           slowdown quantiles for a workload
//	POST /v1/whatif              estimate a batch of config counterfactuals
//	POST /v1/reload              hot-reload the model checkpoint
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/cluster"
	"m3/internal/core"
	"m3/internal/faultinject"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/validate"
)

// Request-shape bounds: anything beyond these is a malformed request, not a
// bigger job.
const (
	// maxBodyBytes caps request bodies (trace uploads dominate).
	maxBodyBytes = 64 << 20
	// maxNumPaths bounds one estimate's sampled-path budget.
	maxNumPaths = 100_000
	// maxSweeps bounds one what-if batch.
	maxSweeps = 64
	// maxWorkloadName bounds registry entry names.
	maxWorkloadName = 128
	// DefaultEstimateTimeout bounds one estimate's wall clock when
	// Options.EstimateTimeout is zero.
	DefaultEstimateTimeout = 2 * time.Minute
)

// Options configures a Server.
type Options struct {
	// Net is the model serving MethodML estimates (required). Its float
	// weights seed every registered backend kind (net, net-int8, ...);
	// requests pick among them with the "backend" field.
	Net *model.Net
	// CheckpointPath, when set, is where POST /v1/reload (and SIGHUP in
	// cmd/m3serve) re-reads the model from.
	CheckpointPath string
	// Workers sizes the shared path-simulation pool (0 = GOMAXPROCS).
	Workers int
	// CacheSize bounds the estimate LRU (0 = 64).
	CacheSize int
	// BatchSize is the ML inference micro-batch size (0 = core default).
	BatchSize int
	// PredictParallelism bounds the intra-batch GEMM sharding inside each
	// PredictBatch call (0 or 1 = serial). Sharding splits output rows
	// across that many goroutines with per-row accumulation order
	// unchanged, so outputs stay bit-identical at every setting. Applied
	// to every backend kind and re-applied across reloads.
	PredictParallelism int
	// MaxInflight bounds concurrently admitted estimation requests
	// (estimate, quantiles, whatif); excess requests are shed immediately
	// with 429 + Retry-After instead of queueing until they time out.
	// 0 = 4× the pool's worker count; negative = unlimited.
	MaxInflight int
	// EstimateTimeout bounds one estimate's wall clock
	// (0 = DefaultEstimateTimeout).
	EstimateTimeout time.Duration

	// Advertise is this replica's address as peers dial it (host:port).
	// Setting it together with Peers runs the server as one replica of an
	// N-member fleet: the workload registry replicates on create/delete,
	// the estimate cache grows a peer tier partitioned by rendezvous hash,
	// and (with Scatter) big estimates fan their per-path work out across
	// the live members. Empty = standalone, exactly the pre-cluster server.
	Advertise string
	// Peers lists the other replicas' advertised addresses.
	Peers []string
	// PeerTimeout bounds each internal peer call (0 = cluster default).
	PeerTimeout time.Duration
	// PeerRetries bounds retries per peer call (0 = cluster default,
	// negative = no retries).
	PeerRetries int
	// RetryBudget is the per-peer retry token-bucket capacity (0 = cluster
	// default, negative = unlimited).
	RetryBudget int
	// ProbeInterval is the active health prober's cadence (0 = cluster
	// default, negative = prober disabled).
	ProbeInterval time.Duration
	// Scatter enables scatter-gather execution of estimates across the
	// fleet. Off, replicas still share the registry and the two-tier
	// cache but each computes its own estimates whole.
	Scatter bool
}

// backendSet is one checkpoint's worth of inference backends: every
// registered kind built from the same float weights, plus the kind served
// when a request names none. Swapped atomically as a unit so one estimate
// never mixes weight generations across backends.
type backendSet struct {
	// def is the kind served when a request's "backend" field is empty —
	// the kind of the loaded artifact.
	def string
	// byKind holds one ready Predictor per registered backend kind.
	byKind map[string]model.Predictor
}

// resolve maps a request's backend name ("" = default) to a Predictor.
// Unknown names return *model.UnknownBackendError.
func (bs *backendSet) resolve(kind string) (model.Predictor, error) {
	if kind == "" {
		kind = bs.def
	}
	p, ok := bs.byKind[kind]
	if !ok {
		return nil, &model.UnknownBackendError{Kind: kind}
	}
	return p, nil
}

// fingerprints lists every backend's fingerprint in the set — the "keep"
// list for model-swap cache invalidation (one checkpoint yields one
// fingerprint per kind).
func (bs *backendSet) fingerprints() []uint64 {
	fps := make([]uint64, 0, len(bs.byKind))
	for _, p := range bs.byKind {
		fps = append(fps, p.Fingerprint())
	}
	return fps
}

// Server is the m3 estimation service. Create with New, mount as an
// http.Handler, Close when done.
type Server struct {
	opts     Options
	backends atomic.Pointer[backendSet]
	// modelFP mirrors the default backend's fingerprint (healthz, reload
	// broadcasts, tests).
	modelFP atomic.Uint64
	pool    *core.Pool
	cache   *core.EstimateCache
	metrics *Metrics

	mu        sync.RWMutex
	workloads map[string]*Workload

	// sem is the admission-control semaphore for estimation endpoints;
	// nil means unlimited.
	sem chan struct{}
	// reloadMu serializes checkpoint reloads (TryLock: a concurrent reload
	// is rejected with 409, not queued).
	reloadMu   sync.Mutex
	estTimeout time.Duration

	// fleet is the cluster membership view; nil when standalone.
	fleet *cluster.Fleet

	// stop is closed by Close; background delivery loops (durable
	// replication retries) watch it so shutdown never waits on a backoff.
	stop     chan struct{}
	stopOnce sync.Once

	mux *http.ServeMux
}

// New builds a server around a loaded model.
func New(opts Options) (*Server, error) {
	if opts.Net == nil {
		return nil, fmt.Errorf("serve: Options.Net is required")
	}
	if opts.BatchSize < 0 {
		return nil, fmt.Errorf("serve: Options.BatchSize %d must be >= 0", opts.BatchSize)
	}
	if opts.PredictParallelism < 0 {
		return nil, fmt.Errorf("serve: Options.PredictParallelism %d must be >= 0", opts.PredictParallelism)
	}
	s := &Server{
		opts:      opts,
		pool:      core.NewPool(opts.Workers),
		cache:     core.NewEstimateCache(opts.CacheSize),
		metrics:   newMetrics(),
		workloads: make(map[string]*Workload),
		stop:      make(chan struct{}),
		mux:       http.NewServeMux(),
	}
	maxInflight := opts.MaxInflight
	if maxInflight == 0 {
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		maxInflight = 4 * workers
	}
	if maxInflight > 0 {
		s.sem = make(chan struct{}, maxInflight)
	}
	s.estTimeout = opts.EstimateTimeout
	if s.estTimeout <= 0 {
		s.estTimeout = DefaultEstimateTimeout
	}
	if opts.Advertise != "" || len(opts.Peers) > 0 {
		fleet, err := cluster.New(opts.Advertise, opts.Peers, cluster.Options{
			PeerTimeout:   opts.PeerTimeout,
			MaxRetries:    opts.PeerRetries,
			RetryBudget:   opts.RetryBudget,
			ProbeInterval: opts.ProbeInterval,
		})
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.fleet = fleet
		// The estimate cache becomes two-tier: local miss → ask the key's
		// rendezvous owner; local compute → offer the result to the owner.
		s.cache.SetPeerTier(s.peerFetch, s.peerPut)
	}
	s.SwapPredictor(opts.Net)
	s.routes()
	return s, nil
}

// Close releases the worker pool and the peer fan-out pool. In-flight Run
// calls must have finished (drain the HTTP server first).
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.pool.Close()
	if s.fleet != nil {
		s.fleet.Close()
	}
}

// Fleet returns the cluster membership view (nil when standalone).
func (s *Server) Fleet() *cluster.Fleet { return s.fleet }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// SwapModel atomically replaces the serving model.
//
// Deprecated: use SwapPredictor, which accepts any backend.
func (s *Server) SwapModel(net *model.Net) { s.SwapPredictor(net) }

// SwapPredictor atomically replaces the serving model with p, rebuilding
// every registered backend kind from p's float weights (so a float swap also
// refreshes the int8 backend, and vice versa). p's own kind becomes the
// default for requests that name no backend. Estimates keyed under
// fingerprints outside the new set are dropped before the serving
// fingerprint flips, so an observer of the new fingerprint never finds
// stale entries (they could never be served again anyway; holding them
// only wastes capacity).
func (s *Server) SwapPredictor(p model.Predictor) {
	set := &backendSet{def: p.Kind(), byKind: map[string]model.Predictor{p.Kind(): p}}
	if src := model.SourceNet(p); src != nil {
		for _, kind := range model.BackendKinds() {
			if _, ok := set.byKind[kind]; ok {
				continue
			}
			alt, err := model.BuildBackend(kind, src)
			if err != nil {
				// A sibling backend that fails to build is simply absent;
				// requests naming it get unknown_backend, and the loaded
				// artifact itself still serves.
				continue
			}
			set.byKind[kind] = alt
		}
	}
	// Re-apply the GEMM sharding knob on every swap so it survives reloads
	// (freshly built backends default to serial).
	if s.opts.PredictParallelism > 0 {
		for _, pred := range set.byKind {
			model.SetPredictParallelism(pred, s.opts.PredictParallelism)
		}
	}
	s.backends.Store(set)
	s.cache.InvalidateModel(set.fingerprints()...)
	s.modelFP.Store(p.Fingerprint())
}

// Model returns the float weights behind the serving model (nil for a
// foreign backend with no float source).
//
// Deprecated: use Predictor.
func (s *Server) Model() *model.Net { return model.SourceNet(s.Predictor()) }

// Predictor returns the default serving backend.
func (s *Server) Predictor() model.Predictor {
	bs := s.backends.Load()
	return bs.byKind[bs.def]
}

// Backends lists the backend kinds currently servable, sorted.
func (s *Server) Backends() []string {
	bs := s.backends.Load()
	kinds := make([]string, 0, len(bs.byKind))
	for k := range bs.byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// errReloadInProgress reports a reload racing another reload; the caller
// should retry after the winner finishes.
var errReloadInProgress = errors.New("serve: a reload is already in progress")

// Reload re-reads the checkpoint from path (empty = the configured
// CheckpointPath), vets it, and swaps it in. The checkpoint may be of any
// backend kind — its kind becomes the serving default. A candidate that
// fails to load, fails integrity checks, or cannot produce finite
// predictions is rejected through the Predictor's own SelfCheck (so a
// corrupt quantized checkpoint takes the same 422 path as a float one) and
// the current model keeps serving — a bad artifact on disk can degrade a
// reload, never the running service.
func (s *Server) Reload(path string) error {
	if !s.reloadMu.TryLock() {
		return errReloadInProgress
	}
	defer s.reloadMu.Unlock()
	if path == "" {
		path = s.opts.CheckpointPath
	}
	if path == "" {
		return fmt.Errorf("serve: no checkpoint path configured")
	}
	p, err := model.LoadPredictorFile(path)
	if err != nil {
		s.metrics.reloadRejected.Add(1)
		return fmt.Errorf("serve: reload rejected, keeping current model: %w", err)
	}
	if err := p.SelfCheck(); err != nil {
		s.metrics.reloadRejected.Add(1)
		return fmt.Errorf("serve: reload rejected, keeping current model: %w", err)
	}
	s.SwapPredictor(p)
	s.metrics.reloads.Add(1)
	return nil
}

// Inflight reports the number of requests currently being served (all
// routes); cmd/m3serve logs it when draining at shutdown.
func (s *Server) Inflight() int64 { return s.metrics.inflight.Load() }

func (s *Server) routes() {
	h := func(name string, fn http.HandlerFunc) http.HandlerFunc {
		return s.metrics.instrument(name, fn)
	}
	s.mux.HandleFunc("GET /healthz", h("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", h("metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/workloads", h("workloads_create", s.handleWorkloadCreate))
	s.mux.HandleFunc("GET /v1/workloads", h("workloads_list", s.handleWorkloadList))
	s.mux.HandleFunc("GET /v1/workloads/{name}", h("workloads_get", s.handleWorkloadGet))
	s.mux.HandleFunc("DELETE /v1/workloads/{name}", h("workloads_delete", s.handleWorkloadDelete))
	s.mux.HandleFunc("POST /v1/estimate", h("estimate", s.handleEstimate))
	s.mux.HandleFunc("GET /v1/quantiles", h("quantiles", s.handleQuantiles))
	s.mux.HandleFunc("POST /v1/whatif", h("whatif", s.handleWhatIf))
	s.mux.HandleFunc("POST /v1/reload", h("reload", s.handleReload))
	if s.fleet != nil {
		s.mux.HandleFunc("GET "+cluster.HealthEndpoint, h("internal_health", s.handleInternalHealth))
		s.mux.HandleFunc("POST "+cluster.PathsEndpoint, h("internal_paths", s.handleInternalPaths))
		s.mux.HandleFunc("POST "+cluster.CacheFetchEndpoint, h("internal_cachefetch", s.handleInternalCacheFetch))
		s.mux.HandleFunc("POST "+cluster.CachePutEndpoint, h("internal_cacheput", s.handleInternalCachePut))
		s.mux.HandleFunc("POST "+cluster.WorkloadSyncEndpoint, h("internal_workload_sync", s.handleInternalWorkloadSync))
		s.mux.HandleFunc("POST "+cluster.InvalidateEndpoint, h("internal_invalidate", s.handleInternalInvalidate))
		s.mux.HandleFunc("POST "+cluster.MembershipEndpoint, h("internal_membership", s.handleInternalMembership))
	}
}

// --- plumbing ---------------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError answers with the JSON error envelope {"error", "code"}: the
// human-readable message plus a stable machine-readable code, so cluster
// peers (and clients) distinguish retryable failures (shed, timeout) from
// terminal ones (validation) without matching message strings. The code is
// derived from the HTTP status; handlers with a sharper classification use
// writeErrorCode directly.
func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorCode(w, status, codeForStatus(status), err)
}

func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, cluster.ErrorBody{Error: err.Error(), Code: code})
}

// codeForStatus maps an HTTP status to the default machine-readable code.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return cluster.CodeValidation
	case http.StatusNotFound:
		return cluster.CodeNotFound
	case http.StatusConflict:
		return cluster.CodeConflict
	case http.StatusTooManyRequests:
		return cluster.CodeShed
	case http.StatusGatewayTimeout:
		return cluster.CodeTimeout
	case 499:
		return cluster.CodeCanceled
	case http.StatusUnprocessableEntity:
		return cluster.CodeUnprocessable
	}
	return cluster.CodeInternal
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// errorCode maps an estimation error to an HTTP status: a dead client
// context is 499-style (client closed request), a blown deadline 504, a
// validation failure 400, everything else 500 unless the handler classified
// it earlier.
func errorCode(r *http.Request, err error) int {
	if errors.Is(err, context.Canceled) || r.Context().Err() != nil {
		return 499 // client closed request (nginx convention)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if validate.IsValidation(err) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// admit reserves an estimation slot, shedding the request with 429 +
// Retry-After when MaxInflight slots are taken. Shedding immediately beats
// queueing: the client learns in microseconds that it should back off,
// instead of tying up a connection until the deadline kills it. Returns
// whether the caller may proceed (and must release()).
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.sem == nil {
		return true
	}
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		s.metrics.shed.Add(1)
		// Retry-After tracks observed estimate latency: a slot frees when
		// one estimate drains, so that EWMA (clamped to [1s, 30s]) is the
		// honest "come back when something might have changed" hint —
		// hardcoding 1s would invite hammering when estimates run long.
		w.Header().Set("Retry-After", strconv.Itoa(s.metrics.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("serve: estimation capacity exhausted (%d in flight); retry", cap(s.sem)))
		return false
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

func (s *Server) workload(name string) (*Workload, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wl, ok := s.workloads[name]
	return wl, ok
}

func parseMethod(name string) (core.Method, error) {
	switch strings.ToLower(name) {
	case "", "m3", "ml":
		return core.MethodML, nil
	case "flowsim":
		return core.MethodFlowSim, nil
	case "ns3-path", "ns3path", "ns3":
		return core.MethodNS3Path, nil
	}
	return 0, fmt.Errorf("serve: unknown method %q (want m3, flowsim, or ns3-path)", name)
}

// buildConfig applies knob overrides (packetsim.Config.Set names) over the
// default configuration.
func buildConfig(knobs map[string]string) (packetsim.Config, error) {
	cfg := packetsim.DefaultConfig()
	// Deterministic application order (irrelevant semantically, stable errors).
	names := make([]string, 0, len(knobs))
	for k := range knobs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if err := cfg.Set(k, knobs[k]); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// runEstimate serves one (workload, method, config) estimate through the
// shared cache and pool, under the resolved inference backend pred. The
// bool reports a cache hit.
func (s *Server) runEstimate(ctx context.Context, wl *Workload, method core.Method,
	numPaths int, seed uint64, cfg packetsim.Config, pred model.Predictor) (*core.Estimate, bool, error) {

	if numPaths == 0 {
		numPaths = 500
	}
	if numPaths < 0 || numPaths > maxNumPaths {
		return nil, false, validate.Errf("serve", "num_paths", "%d outside [1,%d]", numPaths, maxNumPaths)
	}
	if seed == 0 {
		seed = 1
	}
	faultinject.At("serve.estimate", nil)
	ctx, cancel := context.WithTimeout(ctx, s.estTimeout)
	defer cancel()
	d, err := wl.Decomposition()
	if err != nil {
		return nil, false, err
	}
	// Model identity (fingerprint + backend kind) keys the cache only for
	// the ML method: flowsim and ns3-path answers are model-free, and keying
	// them by backend would split identical entries.
	var fp uint64
	var backend string
	if method == core.MethodML {
		fp = pred.Fingerprint()
		backend = pred.Kind()
	}
	key := core.EstimateKey{
		Workload: wl.Hash,
		Cfg:      cfg,
		Method:   method,
		NumPaths: numPaths,
		Seed:     seed,
		Model:    fp,
		Backend:  backend,
	}
	res, cached, err := s.cache.Do(ctx, key, func() (*core.Estimate, error) {
		est := core.NewEstimator(pred,
			core.WithMethod(method),
			core.WithNumPaths(numPaths),
			core.WithSeed(seed),
			core.WithBatchSize(s.opts.BatchSize),
			core.WithPool(s.pool),
			core.WithDecomposition(d),
			core.WithFlowSimFallback(true))
		if s.fleet != nil && s.opts.Scatter {
			return s.scatterEstimate(ctx, est, wl, method, fp, backend, cfg)
		}
		return est.Estimate(ctx, wl.FT.Topology, wl.Flows, cfg)
	})
	if err == nil && !cached {
		s.metrics.recordStages(res.Stages)
		// Only computed estimates feed the Retry-After EWMA: drain time is
		// governed by compute latency, and cache hits would drag the
		// estimate toward microseconds.
		s.metrics.observeEstimateLatency(res.Elapsed)
		if method == core.MethodML {
			s.metrics.recordBackend(pred.Kind(), res.Stages.Predict)
		}
		if res.Degraded {
			s.metrics.degradedEstimates.Add(1)
			s.metrics.degradedPaths.Add(int64(res.DegradedPaths))
		}
	}
	return res, cached, err
}

// scatterMinPaths is the smallest sampled-path count worth scattering; a
// tiny estimate's HTTP overhead would dwarf the shard work.
const scatterMinPaths = 8

// scatterEstimate runs one estimate with its per-path work partitioned
// across the fleet's live members. The plan (decompose + sample) is
// computed here; peers receive bare path indices, valid because the
// replicated registry makes every member's decomposition identical (the
// request carries the workload hash so skew is refused, not silently
// miscomputed). A shard whose peer fails is recomputed locally and the
// estimate is marked Degraded — the fleet losing a member costs latency,
// never correctness or availability.
func (s *Server) scatterEstimate(ctx context.Context, est *core.Estimator,
	wl *Workload, method core.Method, fp uint64, backend string, cfg packetsim.Config) (*core.Estimate, error) {

	start := time.Now()
	plan, err := est.Plan(wl.FT.Topology, wl.Flows)
	if err != nil {
		return nil, err
	}
	local := func(ctx context.Context, distinct, mult []int) (*core.ShardResult, error) {
		return est.RunShard(ctx, plan.D, distinct, mult, cfg)
	}
	var sr *core.ShardResult
	var stats *cluster.ScatterStats
	if len(plan.Distinct) < scatterMinPaths {
		sr, err = local(ctx, plan.Distinct, plan.Mult)
	} else {
		tmpl := &cluster.PathsRequest{
			Workload: wl.Name,
			Hash:     uint64(wl.Hash),
			Method:   method.String(),
			ModelFP:  fp,
			Backend:  backend,
			Cfg:      cfg,
		}
		sr, stats, err = s.fleet.Scatter(ctx, tmpl, plan.Distinct, plan.Mult, local)
	}
	if err != nil {
		return nil, err
	}
	res, err := plan.Assemble(sr.Outs, core.StageTimings{
		PathSim:     time.Duration(sr.PathSimNs),
		Predict:     time.Duration(sr.PredictNs),
		PathSimWall: time.Duration(sr.PathSimWallNs),
		PredictWall: time.Duration(sr.PredictWallNs),
		Overlap:     time.Duration(sr.OverlapNs),
	}, sr.DegradedPaths)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	if stats != nil {
		s.metrics.scatterEstimates.Add(1)
		s.metrics.scatterRemoteShards.Add(int64(stats.RemoteShards))
		s.metrics.scatterFallbackShards.Add(int64(stats.FallbackShards))
		if stats.FallbackShards > 0 {
			// Surfaced exactly like a model fallback: the answer is valid
			// but the fleet did not execute as planned.
			res.Degraded = true
		}
	}
	return res, nil
}

// --- handlers ---------------------------------------------------------------

// resolveBackend maps a request's backend name to a Predictor, or writes
// the stable unknown_backend error (400) and returns false.
func (s *Server) resolveBackend(w http.ResponseWriter, name string) (model.Predictor, bool) {
	pred, err := s.backends.Load().resolve(name)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, cluster.CodeUnknownBackend, err)
		return nil, false
	}
	return pred, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bs := s.backends.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"model":   fingerprintString(s.modelFP.Load()),
		"backend": bs.def,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	bs := s.backends.Load()
	params := 0
	if src := model.SourceNet(bs.byKind[bs.def]); src != nil {
		params = src.NumParams()
	}
	var clusterInfo map[string]any
	if s.fleet != nil {
		clusterInfo = map[string]any{
			"self":    s.fleet.Self(),
			"members": len(s.fleet.Members()),
			"peers":   s.fleet.Status(),
		}
	}
	snap := s.metrics.snapshot(s.cache.Stats(), params, s.modelFP.Load(), bs.def, s.Backends(), clusterInfo)
	batch := s.opts.BatchSize
	if batch <= 0 {
		batch = core.DefaultBatchSize
	}
	snap["estimator"] = map[string]any{
		"batch_size":          batch,
		"predict_parallelism": s.opts.PredictParallelism,
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleWorkloadCreate(w http.ResponseWriter, r *http.Request) {
	// The body is read whole (bounded by MaxBytesReader) so the original
	// request bytes can be retained for cluster replication.
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req workloadRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, err := buildWorkload(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl.raw = raw
	s.mu.Lock()
	if _, exists := s.workloads[wl.Name]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("serve: workload %q already exists", wl.Name))
		return
	}
	s.workloads[wl.Name] = wl
	s.mu.Unlock()
	s.replicate("create", wl.Name, raw)
	writeJSON(w, http.StatusCreated, wl.info())
}

func (s *Server) handleWorkloadList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]workloadInfo, 0, len(s.workloads))
	for _, wl := range s.workloads {
		infos = append(infos, wl.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"workloads": infos})
}

func (s *Server) handleWorkloadGet(w http.ResponseWriter, r *http.Request) {
	wl, ok := s.workload(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no workload %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, wl.info())
}

func (s *Server) handleWorkloadDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.workloads[name]
	delete(s.workloads, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no workload %q", name))
		return
	}
	s.replicate("delete", name, nil)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// estimateRequest is the POST /v1/estimate body.
type estimateRequest struct {
	Workload string            `json:"workload"`
	Method   string            `json:"method,omitempty"`    // m3 (default) | flowsim | ns3-path
	Backend  string            `json:"backend,omitempty"`   // net | net-int8 (default: loaded artifact's kind)
	NumPaths int               `json:"num_paths,omitempty"` // default 500
	Seed     uint64            `json:"seed,omitempty"`      // default 1
	Config   map[string]string `json:"config,omitempty"`    // knob overrides
}

// estimateResponse reports one estimate.
type estimateResponse struct {
	Workload string `json:"workload"`
	Method   string `json:"method"`
	// Backend is the inference backend kind that computed (or keyed) the
	// estimate; empty for model-free methods.
	Backend       string  `json:"backend,omitempty"`
	Cached        bool    `json:"cached"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	DistinctPaths int     `json:"distinct_paths"`
	TotalPaths    int     `json:"total_paths"`
	// Degraded marks an estimate where some paths fell back from the ML
	// correction to raw flowSim numbers (model missing or emitting
	// non-finite slowdowns); DegradedPaths counts them.
	Degraded      bool               `json:"degraded,omitempty"`
	DegradedPaths int                `json:"degraded_paths,omitempty"`
	P99           map[string]float64 `json:"p99"`
	StagesMS      map[string]float64 `json:"stages_ms"`
	// OverlapRatio is the fraction of the shorter of the pathsim/predict
	// wall-clock extents that ran concurrently with the other stage — 0 for
	// a fully serialized (staged) pipeline, approaching 1 when the streamed
	// pipeline hides one stage entirely behind the other. Absent for cached
	// results and model-free methods (no predict stage ran).
	OverlapRatio float64 `json:"overlap_ratio,omitempty"`
}

// putFinite adds v to m unless it is NaN or infinite (empty buckets yield
// NaN quantiles, which JSON cannot carry — absent keys mean "no data").
func putFinite(m map[string]float64, k string, v float64) {
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		m[k] = v
	}
}

func estimateToResponse(wl *Workload, method core.Method, backend string, res *core.Estimate, cached bool) estimateResponse {
	p99 := make(map[string]float64, feature.NumOutputBuckets+1)
	per := res.P99PerBucket()
	for b, name := range bucketNames {
		putFinite(p99, name, per[b])
	}
	putFinite(p99, "combined", res.P99())
	if method != core.MethodML {
		backend = "" // model-free methods ran no backend
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return estimateResponse{
		Workload:      wl.Name,
		Method:        method.String(),
		Backend:       backend,
		Cached:        cached,
		ElapsedMS:     ms(res.Elapsed),
		DistinctPaths: res.DistinctPaths,
		TotalPaths:    res.TotalPaths,
		Degraded:      res.Degraded,
		DegradedPaths: res.DegradedPaths,
		P99:           p99,
		StagesMS: map[string]float64{
			"decompose": ms(res.Stages.Decompose),
			"sample":    ms(res.Stages.Sample),
			"pathsim":   ms(res.Stages.PathSim),
			"predict":   ms(res.Stages.Predict),
			"aggregate": ms(res.Stages.Aggregate),
			// Wall-clock extents: pathsim/predict above are CPU time summed
			// across pool workers (they double-count under parallelism); the
			// _wall keys are elapsed time per stage, and overlap is how much
			// of the two extents ran concurrently.
			"pathsim_wall": ms(res.Stages.PathSimWall),
			"predict_wall": ms(res.Stages.PredictWall),
			"overlap":      ms(res.Stages.Overlap),
		},
		OverlapRatio: res.OverlapRatio(),
	}
}

// bucketNames labels the four output size buckets in responses.
var bucketNames = [feature.NumOutputBuckets]string{
	"le_1kb", "1kb_10kb", "10kb_50kb", "gt_50kb",
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.release()
	var req estimateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, ok := s.workload(req.Workload)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no workload %q", req.Workload))
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, ok := s.resolveBackend(w, req.Backend)
	if !ok {
		return
	}
	cfg, err := buildConfig(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, cached, err := s.runEstimate(r.Context(), wl, method, req.NumPaths, req.Seed, cfg, pred)
	if err != nil {
		writeError(w, errorCode(r, err), err)
		return
	}
	writeJSON(w, http.StatusOK, estimateToResponse(wl, method, pred.Kind(), res, cached))
}

// quantilesReserved are GET /v1/quantiles query params that are not config
// knobs.
var quantilesReserved = map[string]bool{
	"workload": true, "q": true, "method": true, "paths": true, "seed": true,
	"backend": true,
}

// handleQuantiles answers GET /v1/quantiles?workload=NAME&q=0.5,0.99 with
// per-bucket and combined slowdown quantiles. Any other query parameter is
// treated as a config knob (cc, buffer, pfc, ...).
func (s *Server) handleQuantiles(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.release()
	qv := r.URL.Query()
	wl, ok := s.workload(qv.Get("workload"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no workload %q", qv.Get("workload")))
		return
	}
	method, err := parseMethod(qv.Get("method"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, ok := s.resolveBackend(w, qv.Get("backend"))
	if !ok {
		return
	}
	var qs []float64
	qSpec := qv.Get("q")
	if qSpec == "" {
		qSpec = "0.5,0.9,0.99"
	}
	for _, part := range strings.Split(qSpec, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || q <= 0 || q > 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad quantile %q (want q in (0,1])", part))
			return
		}
		qs = append(qs, q)
	}
	numPaths, _ := strconv.Atoi(qv.Get("paths"))
	seed, _ := strconv.ParseUint(qv.Get("seed"), 10, 64)
	knobs := make(map[string]string)
	for k, vs := range qv {
		if !quantilesReserved[k] && len(vs) > 0 {
			knobs[k] = vs[0]
		}
	}
	cfg, err := buildConfig(knobs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, cached, err := s.runEstimate(r.Context(), wl, method, numPaths, seed, cfg, pred)
	if err != nil {
		writeError(w, errorCode(r, err), err)
		return
	}
	quantiles := make(map[string]map[string]float64, len(qs))
	for _, q := range qs {
		row := make(map[string]float64, feature.NumOutputBuckets+1)
		for b, name := range bucketNames {
			putFinite(row, name, res.Agg.BucketQuantile(b, q))
		}
		putFinite(row, "combined", res.Agg.CombinedQuantile(q))
		quantiles[strconv.FormatFloat(q, 'g', -1, 64)] = row
	}
	out := map[string]any{
		"workload":  wl.Name,
		"method":    method.String(),
		"cached":    cached,
		"quantiles": quantiles,
	}
	if method == core.MethodML {
		out["backend"] = pred.Kind()
	}
	writeJSON(w, http.StatusOK, out)
}

// whatIfRequest is the POST /v1/whatif body: a batch of configuration
// counterfactuals over one workload (the REPL's "set" commands, served).
type whatIfRequest struct {
	Workload string            `json:"workload"`
	Method   string            `json:"method,omitempty"`
	Backend  string            `json:"backend,omitempty"`
	NumPaths int               `json:"num_paths,omitempty"`
	Seed     uint64            `json:"seed,omitempty"`
	Base     map[string]string `json:"base,omitempty"` // knobs shared by all sweeps
	Sweeps   []whatIfSweep     `json:"sweeps"`
}

type whatIfSweep struct {
	Name  string            `json:"name,omitempty"`
	Knobs map[string]string `json:"knobs"`
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.release()
	var req whatIfRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wl, ok := s.workload(req.Workload)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no workload %q", req.Workload))
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, ok := s.resolveBackend(w, req.Backend)
	if !ok {
		return
	}
	if len(req.Sweeps) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: whatif needs at least one sweep"))
		return
	}
	if len(req.Sweeps) > maxSweeps {
		writeError(w, http.StatusBadRequest,
			validate.Errf("serve", "sweeps", "%d sweeps exceed the limit of %d", len(req.Sweeps), maxSweeps))
		return
	}
	// The baseline plus each sweep, estimated sequentially: path-level
	// parallelism inside each estimate already saturates the shared pool.
	type sweepResult struct {
		Name     string            `json:"name"`
		Knobs    map[string]string `json:"knobs"`
		Estimate estimateResponse  `json:"estimate"`
	}
	run := func(name string, knobs map[string]string) (sweepResult, error) {
		merged := make(map[string]string, len(req.Base)+len(knobs))
		for k, v := range req.Base {
			merged[k] = v
		}
		for k, v := range knobs {
			merged[k] = v
		}
		cfg, err := buildConfig(merged)
		if err != nil {
			return sweepResult{}, err
		}
		res, cached, err := s.runEstimate(r.Context(), wl, method, req.NumPaths, req.Seed, cfg, pred)
		if err != nil {
			return sweepResult{}, err
		}
		return sweepResult{Name: name, Knobs: merged, Estimate: estimateToResponse(wl, method, pred.Kind(), res, cached)}, nil
	}
	results := make([]sweepResult, 0, len(req.Sweeps)+1)
	base, err := run("base", nil)
	if err == nil {
		results = append(results, base)
		for i, sweep := range req.Sweeps {
			name := sweep.Name
			if name == "" {
				name = fmt.Sprintf("sweep-%d", i)
			}
			var sr sweepResult
			sr, err = run(name, sweep.Knobs)
			if err != nil {
				break
			}
			results = append(results, sr)
		}
	}
	if err != nil {
		code := errorCode(r, err)
		if strings.Contains(err.Error(), "packetsim:") {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workload": wl.Name,
		"method":   method.String(),
		"results":  results,
	})
}

// reloadRequest is the POST /v1/reload body.
type reloadRequest struct {
	Checkpoint string `json:"checkpoint,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := s.Reload(req.Checkpoint); err != nil {
		// A damaged artifact (bad CRC, shapes, non-finite weights or
		// predictions) is 422; a racing reload is 409; everything else —
		// missing file, no path configured — is a plain bad request.
		code := http.StatusBadRequest
		var corrupt *model.CorruptError
		switch {
		case errors.Is(err, errReloadInProgress):
			code = http.StatusConflict
		case errors.As(err, &corrupt), validate.IsValidation(err),
			strings.Contains(err.Error(), "self-check"):
			code = http.StatusUnprocessableEntity
		}
		writeError(w, code, err)
		return
	}
	// SwapPredictor already dropped estimates keyed to older fingerprints;
	// broadcast the new model to the fleet so peers converge on the same
	// checkpoint. Only this external handler originates the broadcast; the
	// internal invalidate handler never re-broadcasts, so it cannot loop.
	bs := s.backends.Load()
	newFP := s.modelFP.Load()
	ckpt := req.Checkpoint
	if ckpt == "" {
		ckpt = s.opts.CheckpointPath
	}
	s.broadcastInvalidate(newFP, ckpt)
	params := 0
	if src := model.SourceNet(bs.byKind[bs.def]); src != nil {
		params = src.NumParams()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":   fingerprintString(newFP),
		"backend": bs.def,
		"params":  params,
		"reloads": s.metrics.reloads.Load(),
	})
}

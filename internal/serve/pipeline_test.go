package serve

import (
	"net/http"
	"testing"

	"m3/internal/model"
)

// TestServeWallTimingsAndEstimatorMetrics covers the PR 9 observability
// surface end to end: an ML estimate reports per-stage wall-clock extents and
// an overlap ratio, and /metrics carries both the cumulative wall counters
// and the estimator's configured batch size and predict parallelism.
func TestServeWallTimingsAndEstimatorMetrics(t *testing.T) {
	s, err := New(Options{
		Net: tinyNet(t, 1), Workers: 4, CacheSize: 8,
		BatchSize: 4, PredictParallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	uploadSpecWorkload(t, s, "web", 800)

	var est estimateResponse
	rec := do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web", NumPaths: 30}, &est)
	mustCode(t, rec, http.StatusOK)
	if est.StagesMS["pathsim_wall"] <= 0 || est.StagesMS["predict_wall"] <= 0 {
		t.Errorf("wall stages = %v/%v ms, want both > 0",
			est.StagesMS["pathsim_wall"], est.StagesMS["predict_wall"])
	}
	if ov := est.StagesMS["overlap"]; ov < 0 {
		t.Errorf("overlap = %v ms, want >= 0", ov)
	}
	if est.OverlapRatio < 0 || est.OverlapRatio > 1 {
		t.Errorf("overlap_ratio = %v, want [0,1]", est.OverlapRatio)
	}

	var m struct {
		StagesMS     map[string]float64 `json:"stages_ms"`
		OverlapRatio float64            `json:"overlap_ratio"`
		Estimator    struct {
			BatchSize          int `json:"batch_size"`
			PredictParallelism int `json:"predict_parallelism"`
		} `json:"estimator"`
	}
	rec = do(t, s, "GET", "/metrics", nil, &m)
	mustCode(t, rec, http.StatusOK)
	if m.Estimator.BatchSize != 4 || m.Estimator.PredictParallelism != 2 {
		t.Errorf("estimator = %+v, want batch_size 4 predict_parallelism 2", m.Estimator)
	}
	if m.StagesMS["pathsim_wall"] <= 0 || m.StagesMS["predict_wall"] <= 0 {
		t.Errorf("metrics wall stages = %v/%v ms, want both > 0",
			m.StagesMS["pathsim_wall"], m.StagesMS["predict_wall"])
	}
	if m.OverlapRatio < 0 || m.OverlapRatio > 1 {
		t.Errorf("metrics overlap_ratio = %v, want [0,1]", m.OverlapRatio)
	}
}

// TestPredictParallelismSurvivesReload: the sharding knob is a server option,
// not a backend property — a model swap builds fresh backends, and each must
// come up with the knob re-applied (for every registered kind).
func TestPredictParallelismSurvivesReload(t *testing.T) {
	s, err := New(Options{Net: tinyNet(t, 1), Workers: 2, PredictParallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	check := func(when string) {
		t.Helper()
		set := s.backends.Load()
		for kind, pred := range set.byKind {
			ps, ok := pred.(model.ParallelismSetter)
			if !ok {
				t.Fatalf("%s: backend %s lost the parallelism seam", when, kind)
			}
			if got := ps.PredictParallelism(); got != 3 {
				t.Errorf("%s: backend %s parallelism = %d, want 3", when, kind, got)
			}
		}
	}
	check("initial")
	s.SwapPredictor(tinyNet(t, 2))
	check("after swap")
}

// TestOptionsRejectNegativeKnobs: the serving layer validates the estimator
// knobs up front instead of letting a negative value reach the core.
func TestOptionsRejectNegativeKnobs(t *testing.T) {
	if _, err := New(Options{Net: tinyNet(t, 1), BatchSize: -1}); err == nil {
		t.Error("negative BatchSize accepted")
	}
	if _, err := New(Options{Net: tinyNet(t, 1), PredictParallelism: -2}); err == nil {
		t.Error("negative PredictParallelism accepted")
	}
}

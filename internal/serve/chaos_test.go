package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"m3/internal/cluster"
	"m3/internal/faultinject"
)

// This file is the chaos gate: a 3-replica in-process fleet driven through
// seeded transport faults and a flapping peer, asserting the resilience
// invariants end to end — every request answers correctly (byte-identical
// to a single process, explicitly degraded at worst), zero 5xx, and
// recovery is discovered by the background prober, never billed to a user
// request. check.sh runs it under -race.

// chaosFleet boots a 3-replica scatter fleet with fast probing, plus a solo
// reference server, both serving the same workload.
func chaosFleet(t *testing.T) (fleet []*Server, solo *Server) {
	t.Helper()
	solo = testServer(t)
	uploadSpecWorkload(t, solo, "web", 300)
	fleet = clusterServersOpts(t, 3, true, func(o *Options) {
		o.ProbeInterval = 25 * time.Millisecond
	})
	uploadSpecWorkload(t, fleet[0], "web", 300)
	waitWorkload(t, fleet[1], "web")
	waitWorkload(t, fleet[2], "web")
	return fleet, solo
}

// soloRefs computes the reference P99 answer per seed on the standalone
// server; fleet answers must match these byte for byte.
func soloRefs(t *testing.T, solo *Server, seeds []uint64, numPaths int) map[uint64]string {
	t.Helper()
	refs := make(map[uint64]string, len(seeds))
	for _, seed := range seeds {
		var est estimateResponse
		rec := do(t, solo, "POST", "/v1/estimate",
			estimateRequest{Workload: "web", NumPaths: numPaths, Seed: seed}, &est)
		mustCode(t, rec, http.StatusOK)
		b, err := json.Marshal(est.P99)
		if err != nil {
			t.Fatal(err)
		}
		refs[seed] = string(b)
	}
	return refs
}

// TestChaosFleetResilience is the gate proper.
func TestChaosFleetResilience(t *testing.T) {
	fleet, solo := chaosFleet(t)
	// Distinct seeds per phase: reusing a seed would serve later phases from
	// the estimate cache and never exercise the network.
	seeds := make([]uint64, 24)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	refs := soloRefs(t, solo, seeds, 40)

	// Deterministic 10% connection resets under everything the fleet sends,
	// plus a test-controlled flap switch that black-holes one replica.
	base := faultinject.Chaos(faultinject.ChaosConfig{Seed: 7, ResetRate: 0.10})
	var flapHost atomic.Value
	flapHost.Store("")
	faultinject.Set("cluster.rpc", func(detail any) {
		f, ok := detail.(*faultinject.RPCFault)
		if !ok {
			return
		}
		if h := flapHost.Load().(string); h != "" && f.Host == h {
			f.Err = faultinject.ErrInjectedReset
			return
		}
		base(detail)
	})
	t.Cleanup(faultinject.Clear)

	// Phase 1: 10% transport faults. Every request must answer 200 with the
	// solo-identical P99 — retries and local fallback absorb the faults.
	checkRequests := func(phase string, phaseSeeds []uint64, targets []*Server) {
		t.Helper()
		for i, seed := range phaseSeeds {
			s := targets[i%len(targets)]
			var est estimateResponse
			rec := do(t, s, "POST", "/v1/estimate",
				estimateRequest{Workload: "web", NumPaths: 40, Seed: seed}, &est)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s request %d: status %d (want 200, zero 5xx): %s",
					phase, i, rec.Code, rec.Body.String())
			}
			got, err := json.Marshal(est.P99)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != refs[seed] {
				t.Fatalf("%s request %d (seed %d): answer diverged from single-process\nsolo:  %s\nfleet: %s",
					phase, i, seed, refs[seed], got)
			}
		}
	}
	checkRequests("chaos", seeds[:12], fleet)

	// The schedule must actually have bitten: the fleet absorbed faults via
	// retries (or shard fallbacks), it didn't just get lucky.
	absorbed := int64(0)
	for _, s := range fleet {
		for _, ps := range s.fleet.Status() {
			absorbed += ps.Retries
		}
		absorbed += s.metrics.scatterFallbackShards.Load()
	}
	if absorbed == 0 {
		t.Fatal("no retries or fallbacks recorded; the chaos schedule never fired")
	}

	// Phase 2: flap one replica — every RPC to fleet[2] now resets. The
	// other two must keep answering correctly and open their breakers for it.
	flapped := fleet[2].fleet.Self()
	flapHost.Store(flapped)
	checkRequests("flap", seeds[12:18], fleet[:2])
	for i, s := range fleet[:2] {
		if p := s.fleet.Peer(flapped); p.Up() {
			t.Fatalf("replica %d never opened its breaker for the flapped peer", i)
		}
	}

	// Phase 3: flap ends. With NO user requests in flight, the background
	// prober alone must re-admit the peer on both replicas.
	probesBefore := []int64{
		fleet[0].fleet.Peer(flapped).Probes(),
		fleet[1].fleet.Peer(flapped).Probes(),
	}
	flapHost.Store("")
	deadline := time.Now().Add(10 * time.Second)
	for i, s := range fleet[:2] {
		p := s.fleet.Peer(flapped)
		for !p.Up() {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d: prober never re-admitted the recovered peer (state %s, probes %d)",
					i, p.BreakerState(), p.Probes())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if p.Probes() <= probesBefore[i] {
			t.Fatalf("replica %d re-admitted the peer without new probes — a user request paid for discovery", i)
		}
	}

	// Phase 4: the healed fleet still answers byte-identically everywhere.
	checkRequests("healed", seeds[18:], fleet)
}

// TestDeadlinePropagationShedsDoomedShard: a shard arriving with less
// remaining budget than the floor is refused up front with the retryable
// timeout code — the peer never computes work its caller cannot receive.
func TestDeadlinePropagationShedsDoomedShard(t *testing.T) {
	servers := clusterServers(t, 2, true)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")
	wl, ok := b.workload("web")
	if !ok {
		t.Fatal("workload never replicated")
	}
	cfg, err := buildConfig(nil)
	if err != nil {
		t.Fatal(err)
	}
	shard := cluster.PathsRequest{
		Workload: "web",
		Hash:     uint64(wl.Hash),
		Method:   "ml",
		Cfg:      cfg,
		Indices:  []int{0, 1},
		Mults:    []int{1, 1},
	}

	// 1ms of budget is under the floor: refuse, don't compute.
	shard.DeadlineNS = int64(time.Millisecond)
	rec := do(t, b, "POST", cluster.PathsEndpoint, shard, nil)
	mustCode(t, rec, http.StatusGatewayTimeout)
	var eb cluster.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if eb.Code != cluster.CodeTimeout {
		t.Fatalf("code %q, want %q (retryable, so the coordinator falls back locally)", eb.Code, cluster.CodeTimeout)
	}
	if !cluster.Retryable(eb.Code) {
		t.Fatal("deadline shed must be retryable")
	}

	// An honest budget computes normally.
	shard.DeadlineNS = int64(10 * time.Second)
	var resp cluster.PathsResponse
	rec = do(t, b, "POST", cluster.PathsEndpoint, shard, &resp)
	mustCode(t, rec, http.StatusOK)
	if len(resp.Outs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(resp.Outs))
	}
}

// TestDeadlinePropagationCacheWait: the cachefetch Wait path sheds doomed
// budgets the same way.
func TestDeadlinePropagationCacheWait(t *testing.T) {
	servers := clusterServers(t, 2, false)
	a, b := servers[0], servers[1]
	uploadSpecWorkload(t, a, "web", 300)
	waitWorkload(t, b, "web")

	req := cluster.KeyRequest{Wait: true, DeadlineNS: int64(time.Millisecond)}
	rec := do(t, b, "POST", cluster.CacheFetchEndpoint, req, nil)
	mustCode(t, rec, http.StatusGatewayTimeout)
	var eb cluster.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != cluster.CodeTimeout {
		t.Fatalf("code %q, want %q", eb.Code, cluster.CodeTimeout)
	}
}

// TestRetryAfterAdaptive: the 429 Retry-After header tracks observed
// estimate latency, clamped to [1, 30] seconds.
func TestRetryAfterAdaptive(t *testing.T) {
	s := testServer(t)
	uploadSpecWorkload(t, s, "web", 300)

	// Saturate admission so every estimate sheds.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(s.sem); i++ {
			<-s.sem
		}
	}()
	shed := func() string {
		t.Helper()
		rec := do(t, s, "POST", "/v1/estimate", estimateRequest{Workload: "web"}, nil)
		mustCode(t, rec, http.StatusTooManyRequests)
		return rec.Header().Get("Retry-After")
	}

	if got := shed(); got != "1" {
		t.Fatalf("Retry-After with no latency data = %q, want floor \"1\"", got)
	}
	s.metrics.observeEstimateLatency(5 * time.Second)
	if got := shed(); got != "5" {
		t.Fatalf("Retry-After after 5s estimates = %q, want \"5\"", got)
	}
	s.metrics.observeEstimateLatency(10 * time.Minute)
	if got := shed(); got != "30" {
		t.Fatalf("Retry-After after a 10m outlier = %q, want ceiling \"30\"", got)
	}
	if got := fmt.Sprint(s.metrics.retryAfterSeconds()); got != "30" {
		t.Fatalf("retry_after_s metric = %s, want 30", got)
	}
}

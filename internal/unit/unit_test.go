package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := Second.Seconds(); got != 1 {
		t.Errorf("Second.Seconds() = %v, want 1", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := FromSeconds(0); got != 0 {
		t.Errorf("FromSeconds(0) = %v, want 0", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000s"},
		{3 * Millisecond, "3.000ms"},
		{7 * Microsecond, "7.000us"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestByteSize(t *testing.T) {
	if got := (2 * KB).Bits(); got != 16000 {
		t.Errorf("2KB.Bits() = %d, want 16000", got)
	}
	cases := []struct {
		in   ByteSize
		want string
	}{
		{3 * GB, "3.00GB"},
		{5 * MB, "5.00MB"},
		{9 * KB, "9.00KB"},
		{17, "17B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{10 * Gbps, "10.00Gbps"},
		{40 * Mbps, "40.00Mbps"},
		{5 * Kbps, "5.00Kbps"},
		{100, "100.00bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestTxTime(t *testing.T) {
	// 1000 bytes at 10Gbps: 8000 bits / 1e10 bps = 800ns.
	if got := TxTime(1000, 10*Gbps); got != 800 {
		t.Errorf("TxTime(1000B, 10Gbps) = %v, want 800ns", got)
	}
	if got := TxTime(1000, 0); got != 0 {
		t.Errorf("TxTime at zero rate = %v, want 0", got)
	}
}

func TestPackets(t *testing.T) {
	cases := []struct {
		size ByteSize
		want int64
	}{
		{0, 1}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2}, {50000, 50}, {50001, 51},
	}
	for _, c := range cases {
		if got := Packets(c.size); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestIdealFCTSingleLink(t *testing.T) {
	rates := []Rate{10 * Gbps}
	delays := []Time{1 * Microsecond}
	// 1000B flow: prop 1us + tx of 1048B at 10G = 838ns (rounded).
	got := IdealFCT(1000, rates, delays)
	want := 1*Microsecond + TxTime(1000+HeaderBytes, 10*Gbps)
	if got != want {
		t.Errorf("IdealFCT = %v, want %v", got, want)
	}
}

func TestIdealFCTMultiHop(t *testing.T) {
	rates := []Rate{10 * Gbps, 40 * Gbps, 10 * Gbps}
	delays := []Time{1 * Microsecond, 1 * Microsecond, 1 * Microsecond}
	size := ByteSize(500)
	got := IdealFCT(size, rates, delays)
	want := 3*Microsecond +
		TxTime(size+HeaderBytes, 10*Gbps) + // bottleneck serialization
		TxTime(size+HeaderBytes, 40*Gbps) + // store-and-forward hop 2
		TxTime(size+HeaderBytes, 10*Gbps) // store-and-forward hop 3
	if got != want {
		t.Errorf("IdealFCT = %v, want %v", got, want)
	}
}

func TestIdealFCTEmptyPath(t *testing.T) {
	if got := IdealFCT(1000, nil, nil); got != 0 {
		t.Errorf("IdealFCT on empty path = %v, want 0", got)
	}
}

func TestSlowdownIdentity(t *testing.T) {
	rates := []Rate{10 * Gbps, 10 * Gbps}
	delays := []Time{1 * Microsecond, 1 * Microsecond}
	ideal := IdealFCT(5000, rates, delays)
	if got := Slowdown(ideal, 5000, rates, delays); math.Abs(got-1) > 1e-12 {
		t.Errorf("Slowdown(ideal) = %v, want 1", got)
	}
	if got := Slowdown(2*ideal, 5000, rates, delays); math.Abs(got-2) > 1e-12 {
		t.Errorf("Slowdown(2*ideal) = %v, want 2", got)
	}
}

// Property: ideal FCT is monotone in flow size and decreasing in bottleneck rate.
func TestIdealFCTMonotoneProperty(t *testing.T) {
	f := func(a, b uint32, rSel uint8) bool {
		s1 := ByteSize(a%1_000_000 + 1)
		s2 := s1 + ByteSize(b%1_000_000+1)
		r := []Rate{1 * Gbps, 10 * Gbps, 40 * Gbps}[rSel%3]
		rates := []Rate{r, r}
		delays := []Time{Microsecond, Microsecond}
		return IdealFCT(s2, rates, delays) >= IdealFCT(s1, rates, delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TxTime scales linearly with size, up to ceiling slack
// (ceil(2x) is at most 2*ceil(x) and at least 2*ceil(x)-2).
func TestTxTimeLinearProperty(t *testing.T) {
	f := func(a uint16) bool {
		s := ByteSize(a) + 1
		t1 := TxTime(s, 10*Gbps)
		t2 := TxTime(2*s, 10*Gbps)
		diff := int64(t2) - 2*int64(t1)
		return diff >= -2 && diff <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a flow's serialization split into MTU packets never beats the
// aggregate ideal serialization (the causality rounding invariant).
func TestTxTimePacketizationProperty(t *testing.T) {
	f := func(a uint32) bool {
		size := ByteSize(a%500_000 + 1)
		n := Packets(size)
		var per Time
		for p := int64(0); p < n; p++ {
			sz := MTU
			if p == n-1 {
				sz = size - ByteSize(n-1)*MTU
			}
			per += TxTime(sz+HeaderBytes, 10*Gbps)
		}
		return per >= TxTime(WireSize(size), 10*Gbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

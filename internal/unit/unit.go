// Package unit defines the physical units shared by every simulator in this
// repository: simulated time in nanoseconds, data sizes in bytes, and link
// rates in bits per second. Keeping a single definition of "ideal FCT" here
// guarantees that slowdowns computed by the packet-level simulator, flowSim,
// Parsimon, and m3 are directly comparable.
package unit

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1e3
	Millisecond Time = 1e6
	Second      Time = 1e9
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds into a Time, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// String renders the time using the most natural SI prefix.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// ByteSize is a data size in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1e3
	MB   ByteSize = 1e6
	GB   ByteSize = 1e9
)

// Bits returns the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

// String renders the size using the most natural SI prefix.
func (b ByteSize) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Rate is a link or flow rate in bits per second.
type Rate float64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps         Rate = 1e3
	Mbps         Rate = 1e6
	Gbps         Rate = 1e9
)

// BytesPerSecond returns the rate in bytes per second.
func (r Rate) BytesPerSecond() float64 { return float64(r) / 8 }

// String renders the rate using the most natural SI prefix.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%.2fbps", float64(r))
	}
}

// TxTime returns how long it takes to serialize b bytes onto a link of rate
// r, rounded up to the nanosecond. Rounding up (rather than to nearest)
// keeps simulated completion times at or above the ideal FCT: a flow's
// per-packet serializations each round up, while the ideal's aggregate
// serialization rounds up once, and ceil(a+b) <= ceil(a)+ceil(b).
func TxTime(b ByteSize, r Rate) Time {
	if r <= 0 {
		return 0
	}
	return Time(math.Ceil(float64(b.Bits()) / float64(r) * float64(Second)))
}

// MTU is the packet payload granularity used throughout the repository. Every
// simulator segments flows into MTU-sized packets (with a short final packet),
// matching the 1000-byte packets used in HPCC-style ns-3 setups.
const MTU ByteSize = 1000

// HeaderBytes approximates per-packet header overhead (Ethernet+IP+transport).
// It is charged on the wire but not counted toward flow size.
const HeaderBytes ByteSize = 48

// Packets returns the number of MTU-sized packets needed to carry size bytes.
func Packets(size ByteSize) int64 {
	if size <= 0 {
		return 1
	}
	return (int64(size) + int64(MTU) - 1) / int64(MTU)
}

// WireSize returns the bytes a flow of the given size occupies on the wire,
// including one header per MTU-sized packet. All simulators and the ideal
// FCT use this same accounting so slowdowns are comparable.
func WireSize(size ByteSize) ByteSize {
	return size + HeaderBytes*ByteSize(Packets(size))
}

// IdealFCT is the flow completion time of a flow of the given size on an
// otherwise idle path: total propagation delay, plus serialization of the
// whole flow at the bottleneck rate, plus store-and-forward of the flow's
// final packet at every additional hop. All simulators normalize against
// this same quantity, so slowdown numbers are mutually comparable.
//
// The final (possibly sub-MTU) packet is the right store-and-forward unit:
// on an idle path the flow completes when its last packet drains through the
// hops after the bottleneck, so this expression is exact for paths whose
// non-bottleneck links are faster than the bottleneck (the data center case:
// access-link bottleneck, faster fabric) and a lower bound otherwise —
// keeping simulated slowdowns >= 1 by construction.
//
// linkRates and linkDelays describe the hops in path order and must have equal
// length.
func IdealFCT(size ByteSize, linkRates []Rate, linkDelays []Time) Time {
	if len(linkRates) == 0 {
		return 0
	}
	bottleneck := linkRates[0]
	var prop Time
	for i, r := range linkRates {
		if r < bottleneck {
			bottleneck = r
		}
		prop += linkDelays[i]
	}
	last := size - ByteSize(Packets(size)-1)*MTU
	fct := prop + TxTime(WireSize(size), bottleneck)
	// Store-and-forward: the final packet is re-serialized at every hop
	// after the first. Charge it at each hop's own rate.
	for i := 1; i < len(linkRates); i++ {
		fct += TxTime(last+HeaderBytes, linkRates[i])
	}
	return fct
}

// Slowdown is fct normalized by the ideal FCT for the same size and path.
// It is at least 1 for any causally valid simulation; values below 1 indicate
// an estimator's optimism (flowSim produces them for short flows).
func Slowdown(fct Time, size ByteSize, linkRates []Rate, linkDelays []Time) float64 {
	ideal := IdealFCT(size, linkRates, linkDelays)
	if ideal <= 0 {
		return 1
	}
	return float64(fct) / float64(ideal)
}

package sampling

import (
	"math"
	"testing"

	"m3/internal/rng"
)

func TestWeightedProportions(t *testing.T) {
	r := rng.New(1)
	weights := []float64{1, 3, 0, 6}
	sample, err := Weighted(weights, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, i := range sample {
		counts[i]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight path sampled %d times", counts[2])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		got := float64(counts[i]) / 100000
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedErrors(t *testing.T) {
	r := rng.New(2)
	if _, err := Weighted(nil, 5, r); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := Weighted([]float64{1}, 0, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Weighted([]float64{0, 0}, 5, r); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := Weighted([]float64{1, -1}, 5, r); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedWithReplacement(t *testing.T) {
	r := rng.New(3)
	// One dominant weight: expect many repeats (sampling with replacement).
	sample, err := Weighted([]float64{100, 1}, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range sample {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 40 {
		t.Errorf("dominant path drawn only %d/50 times", zeros)
	}
}

func TestDedup(t *testing.T) {
	distinct, mult := Dedup([]int{5, 3, 5, 5, 3, 7})
	if len(distinct) != 3 {
		t.Fatalf("distinct = %v", distinct)
	}
	if distinct[0] != 5 || mult[0] != 3 {
		t.Errorf("first distinct = %d x%d, want 5 x3", distinct[0], mult[0])
	}
	if distinct[1] != 3 || mult[1] != 2 {
		t.Errorf("second distinct = %d x%d, want 3 x2", distinct[1], mult[1])
	}
	if distinct[2] != 7 || mult[2] != 1 {
		t.Errorf("third distinct = %d x%d, want 7 x1", distinct[2], mult[2])
	}
	var total int
	for _, m := range mult {
		total += m
	}
	if total != 6 {
		t.Errorf("multiplicities sum to %d, want 6", total)
	}
}

func TestDedupEmpty(t *testing.T) {
	d, m := Dedup(nil)
	if len(d) != 0 || len(m) != 0 {
		t.Error("empty dedup should be empty")
	}
}

// Package sampling implements the paper's weighted path sampling (§3.2):
// paths are drawn with replacement with probability proportional to their
// foreground flow count, so the sample is flow-weighted and per-path results
// can later be pooled uniformly (§3.5).
package sampling

import (
	"fmt"

	"m3/internal/rng"
)

// Weighted draws k indices with replacement, index i with probability
// proportional to weights[i]. Zero-weight entries are never drawn (unless
// every weight is zero, in which case an error is returned).
func Weighted(weights []float64, k int, r *rng.RNG) ([]int, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("sampling: no weights")
	}
	if k <= 0 {
		return nil, fmt.Errorf("sampling: k must be positive, got %d", k)
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("sampling: negative weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: all weights are zero")
	}
	s := rng.NewSampler(weights)
	out := make([]int, k)
	for i := range out {
		out[i] = s.Draw(r)
	}
	return out, nil
}

// Dedup returns the distinct values of sample with their multiplicities,
// preserving first-appearance order. Callers simulate each distinct path
// once and weight its contribution by the multiplicity.
func Dedup(sample []int) (distinct []int, multiplicity []int) {
	seen := make(map[int]int)
	for _, v := range sample {
		if i, ok := seen[v]; ok {
			multiplicity[i]++
			continue
		}
		seen[v] = len(distinct)
		distinct = append(distinct, v)
		multiplicity = append(multiplicity, 1)
	}
	return distinct, multiplicity
}

package agg

import (
	"math"
	"testing"

	"m3/internal/feature"
)

func constVec(v float64) []float64 {
	out := make([]float64, feature.NumPercentiles)
	for i := range out {
		out[i] = v
	}
	return out
}

func rampVec(lo, hi float64) []float64 {
	out := make([]float64, feature.NumPercentiles)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/99
	}
	return out
}

func output(mult int, bucketVals ...[]float64) PathOutput {
	o := PathOutput{
		Buckets: make([][]float64, feature.NumOutputBuckets),
		Counts:  make([]int, feature.NumOutputBuckets),
		Mult:    mult,
	}
	for b, v := range bucketVals {
		if v != nil {
			o.Buckets[b] = v
			o.Counts[b] = 10
		}
	}
	return o
}

func TestAggregateSingleBucket(t *testing.T) {
	e, err := Aggregate([]PathOutput{output(1, rampVec(1, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if q := e.BucketQuantile(0, 0.5); math.Abs(q-1.5) > 0.02 {
		t.Errorf("median = %v, want ~1.5", q)
	}
	if p99 := e.BucketP99(0); math.Abs(p99-1.99) > 0.02 {
		t.Errorf("p99 = %v, want ~1.99", p99)
	}
	if !math.IsNaN(e.BucketQuantile(1, 0.5)) {
		t.Error("empty bucket quantile should be NaN")
	}
}

func TestAggregateMultiplicityWeights(t *testing.T) {
	// Path A (slowdowns ~1) sampled 9 times; path B (~10) once. Pooled
	// distribution should be dominated by A: median ~1, p99 reaches B.
	a := output(9, constVec(1))
	b := output(1, constVec(10))
	e, err := Aggregate([]PathOutput{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if q := e.BucketQuantile(0, 0.5); q != 1 {
		t.Errorf("median = %v, want 1", q)
	}
	if q := e.BucketQuantile(0, 0.95); q != 10 {
		t.Errorf("p95 = %v, want 10 (B occupies top 10%%)", q)
	}
}

func TestCombinedWeightedByFlowCounts(t *testing.T) {
	// Bucket 0 has 990 flows at slowdown 1; bucket 3 has 10 flows at 100.
	o := PathOutput{
		Buckets: make([][]float64, feature.NumOutputBuckets),
		Counts:  make([]int, feature.NumOutputBuckets),
		Mult:    1,
	}
	o.Buckets[0] = constVec(1)
	o.Counts[0] = 990
	o.Buckets[3] = constVec(100)
	o.Counts[3] = 10
	e, err := Aggregate([]PathOutput{o})
	if err != nil {
		t.Fatal(err)
	}
	// 1% of flows are at 100: combined p99 lands exactly at the boundary;
	// p98 must be 1 and p99.5 must be 100.
	if q := e.CombinedQuantile(0.98); q != 1 {
		t.Errorf("p98 = %v, want 1", q)
	}
	if q := e.CombinedQuantile(0.995); q != 100 {
		t.Errorf("p99.5 = %v, want 100", q)
	}
	if w := e.BucketWeight(0); w != 990 {
		t.Errorf("bucket 0 weight = %v", w)
	}
}

func TestCombinedIgnoresEmpty(t *testing.T) {
	o := output(1, nil, rampVec(2, 4))
	e, err := Aggregate([]PathOutput{o})
	if err != nil {
		t.Fatal(err)
	}
	q := e.CombinedQuantile(0.5)
	if q < 2 || q > 4 {
		t.Errorf("combined median = %v, want in [2,4]", q)
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty aggregate accepted")
	}
	bad := output(0, constVec(1))
	if _, err := Aggregate([]PathOutput{bad}); err == nil {
		t.Error("zero multiplicity accepted")
	}
	short := output(1, []float64{1, 2, 3})
	if _, err := Aggregate([]PathOutput{short}); err == nil {
		t.Error("short percentile vector accepted")
	}
	wrongShape := PathOutput{Buckets: make([][]float64, 2), Counts: make([]int, 2), Mult: 1}
	if _, err := Aggregate([]PathOutput{wrongShape}); err == nil {
		t.Error("wrong bucket count accepted")
	}
}

func TestBucketSamplesSorted(t *testing.T) {
	// Descending input vectors still pool into a sorted sample list.
	e, err := Aggregate([]PathOutput{output(1, rampVec(5, 1)), output(1, rampVec(3, 2))})
	if err != nil {
		t.Fatal(err)
	}
	s := e.BucketSamples(0)
	if len(s) != 200 {
		t.Fatalf("pooled %d samples, want 200", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("pooled samples not sorted")
		}
	}
	if e.BucketSamples(99) != nil {
		t.Error("out-of-range bucket should be nil")
	}
}

// Package agg combines per-path slowdown distributions into network-wide
// estimates (§3.5, Fig. 8). Because paths were sampled with probability
// proportional to their foreground flow count, per-bucket pooling across
// paths is uniform (each sampled path contributes equally, repeated by its
// sampling multiplicity); buckets are then combined into a single
// distribution weighted by bucket flow counts.
package agg

import (
	"fmt"
	"math"
	"sort"

	"m3/internal/feature"
	"m3/internal/stats"
)

// PathOutput is one sampled path's contribution: a percentile vector and a
// foreground flow count per output bucket, plus the path's sampling
// multiplicity.
type PathOutput struct {
	// Buckets[b] is a 100-point percentile vector (nil/zeros if empty).
	Buckets [][]float64
	// Counts[b] is the number of foreground flows in bucket b.
	Counts []int
	// Mult is how many times the path was drawn in the weighted sample.
	Mult int
}

// Validate reports shape errors.
func (p *PathOutput) Validate() error {
	if len(p.Buckets) != feature.NumOutputBuckets || len(p.Counts) != feature.NumOutputBuckets {
		return fmt.Errorf("agg: path output has %d/%d buckets, want %d",
			len(p.Buckets), len(p.Counts), feature.NumOutputBuckets)
	}
	if p.Mult <= 0 {
		return fmt.Errorf("agg: multiplicity must be positive")
	}
	for b, v := range p.Buckets {
		if p.Counts[b] > 0 && len(v) != feature.NumPercentiles {
			return fmt.Errorf("agg: bucket %d vector has %d points", b, len(v))
		}
	}
	return nil
}

// NetworkEstimate is the aggregated result.
type NetworkEstimate struct {
	// pooled[b] holds the sorted pooled percentile samples of bucket b.
	pooled [][]float64
	// weight[b] is the total (multiplicity-weighted) flow count of bucket b.
	weight []float64
}

// Aggregate pools the sampled paths' outputs.
func Aggregate(outs []PathOutput) (*NetworkEstimate, error) {
	if len(outs) == 0 {
		return nil, fmt.Errorf("agg: no path outputs")
	}
	e := &NetworkEstimate{
		pooled: make([][]float64, feature.NumOutputBuckets),
		weight: make([]float64, feature.NumOutputBuckets),
	}
	for i := range outs {
		o := &outs[i]
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("agg: output %d: %w", i, err)
		}
		for b := 0; b < feature.NumOutputBuckets; b++ {
			if o.Counts[b] <= 0 {
				continue
			}
			for m := 0; m < o.Mult; m++ {
				e.pooled[b] = append(e.pooled[b], o.Buckets[b]...)
			}
			e.weight[b] += float64(o.Counts[b] * o.Mult)
		}
	}
	for b := range e.pooled {
		sort.Float64s(e.pooled[b])
	}
	return e, nil
}

// BucketQuantile returns the q-quantile (q in [0,1]) of bucket b's pooled
// distribution, or NaN if the bucket is empty network-wide.
func (e *NetworkEstimate) BucketQuantile(b int, q float64) float64 {
	if b < 0 || b >= len(e.pooled) || len(e.pooled[b]) == 0 {
		return math.NaN()
	}
	c := stats.NewCDF(e.pooled[b])
	return c.Quantile(q)
}

// BucketP99 returns the 99th-percentile slowdown of bucket b.
func (e *NetworkEstimate) BucketP99(b int) float64 { return e.BucketQuantile(b, 0.99) }

// BucketWeight returns bucket b's multiplicity-weighted flow count.
func (e *NetworkEstimate) BucketWeight(b int) float64 {
	if b < 0 || b >= len(e.weight) {
		return 0
	}
	return e.weight[b]
}

// BucketSamples returns bucket b's pooled sorted samples (callers must not
// modify). Useful for plotting full CDFs (Fig. 12).
func (e *NetworkEstimate) BucketSamples(b int) []float64 {
	if b < 0 || b >= len(e.pooled) {
		return nil
	}
	return e.pooled[b]
}

// CombinedQuantile merges the bucket distributions into one, weighting each
// bucket by its flow count (the paper's probabilistic bucket sampling, done
// deterministically via a weighted quantile), and returns the q-quantile.
func (e *NetworkEstimate) CombinedQuantile(q float64) float64 {
	type wv struct {
		v, w float64
	}
	var all []wv
	var total float64
	for b := range e.pooled {
		n := len(e.pooled[b])
		if n == 0 || e.weight[b] <= 0 {
			continue
		}
		w := e.weight[b] / float64(n)
		for _, v := range e.pooled[b] {
			all = append(all, wv{v, w})
		}
		total += e.weight[b]
	}
	if len(all) == 0 || total <= 0 {
		return math.NaN()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	target := q * total
	var cum float64
	for _, x := range all {
		cum += x.w
		if cum >= target {
			return x.v
		}
	}
	return all[len(all)-1].v
}

// CombinedP99 returns the network-wide p99 slowdown across all buckets.
func (e *NetworkEstimate) CombinedP99() float64 { return e.CombinedQuantile(0.99) }

// Snapshot exports the aggregated state — per-bucket pooled sorted samples
// and multiplicity-weighted flow counts — for serialization across process
// boundaries (the cluster's peer cache tier). The returned slices alias the
// estimate's internals; callers must not modify them.
func (e *NetworkEstimate) Snapshot() (pooled [][]float64, weight []float64) {
	return e.pooled, e.weight
}

// FromSnapshot rebuilds a NetworkEstimate from a Snapshot transported from
// another replica. Shapes are validated (one pooled slice and one weight per
// output bucket, finite non-negative weights, finite samples) so a damaged
// or hostile peer payload is rejected instead of poisoning quantile queries.
// Pooled samples are re-sorted defensively: quantile lookups assume order.
func FromSnapshot(pooled [][]float64, weight []float64) (*NetworkEstimate, error) {
	if len(pooled) != feature.NumOutputBuckets || len(weight) != feature.NumOutputBuckets {
		return nil, fmt.Errorf("agg: snapshot has %d/%d buckets, want %d",
			len(pooled), len(weight), feature.NumOutputBuckets)
	}
	e := &NetworkEstimate{
		pooled: make([][]float64, feature.NumOutputBuckets),
		weight: make([]float64, feature.NumOutputBuckets),
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if math.IsNaN(weight[b]) || math.IsInf(weight[b], 0) || weight[b] < 0 {
			return nil, fmt.Errorf("agg: snapshot bucket %d has bad weight %v", b, weight[b])
		}
		for _, v := range pooled[b] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("agg: snapshot bucket %d has non-finite sample", b)
			}
		}
		e.pooled[b] = append([]float64(nil), pooled[b]...)
		if !sort.Float64sAreSorted(e.pooled[b]) {
			sort.Float64s(e.pooled[b])
		}
		e.weight[b] = weight[b]
	}
	return e, nil
}

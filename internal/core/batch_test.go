package core

import (
	"context"
	"sync"
	"testing"

	"m3/internal/packetsim"
)

// TestEstimateBatchSizeInvariance: the micro-batch size is a performance
// knob, not a semantic one — batch 1 (degenerate per-path prediction),
// a ragged odd size, and the default must produce identical estimates.
func TestEstimateBatchSizeInvariance(t *testing.T) {
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 900, 21)
	cfg := packetsim.DefaultConfig()
	run := func(bs int) *Estimate {
		est := NewEstimator(net, WithNumPaths(60), WithSeed(2), WithBatchSize(bs))
		res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, bs := range []int{7, DefaultBatchSize, 1000} {
		got := run(bs)
		if got.P99() != want.P99() || got.DistinctPaths != want.DistinctPaths {
			t.Errorf("batch size %d changed the estimate: p99 %v vs %v",
				bs, got.P99(), want.P99())
		}
	}
}

// TestEstimateConcurrentSharedPool hammers one shared pool with concurrent
// batched ML estimates (run under -race by scripts/check.sh): interleaved
// micro-batches from different requests must not corrupt each other's
// results.
func TestEstimateConcurrentSharedPool(t *testing.T) {
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 900, 22)
	cfg := packetsim.DefaultConfig()
	pool := NewPool(4)
	defer pool.Close()

	seeds := []uint64{3, 4, 5, 6}
	want := make([]float64, len(seeds))
	for i, seed := range seeds {
		est := NewEstimator(net, WithNumPaths(40), WithSeed(seed), WithBatchSize(8))
		res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.P99()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*len(seeds))
	for g := 0; g < 2; g++ {
		for i, seed := range seeds {
			wg.Add(1)
			go func(i int, seed uint64) {
				defer wg.Done()
				est := NewEstimator(net, WithNumPaths(40), WithSeed(seed),
					WithBatchSize(8), WithPool(pool))
				res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
				if err != nil {
					errs <- err
					return
				}
				if res.P99() != want[i] {
					t.Errorf("seed %d: concurrent p99 %v, sequential %v", seed, res.P99(), want[i])
				}
			}(i, seed)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Package core is the m3 estimator itself (§3): it decomposes a
// full-network workload into paths, draws a flow-weighted path sample, runs
// flowSim on each sampled path to build feature maps, corrects them with the
// trained ML model, and aggregates the per-path outputs into network-wide
// slowdown distributions.
//
// For the paper's ablations the same pipeline can be driven by two
// alternative per-path backends: the raw flowSim estimates (the "no ML"
// ablation of Fig. 16) and the packet-level path simulation ns-3-path (the
// decomposition-only oracle of §2.1 / Fig. 15).
package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"m3/internal/agg"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/sampling"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Method selects the per-path backend.
type Method uint8

// Per-path estimation backends.
const (
	// MethodML is full m3: flowSim features refined by the trained model.
	MethodML Method = iota
	// MethodFlowSim reports flowSim's estimates directly (no-ML ablation).
	MethodFlowSim
	// MethodNS3Path simulates each sampled path at packet level (the
	// ns-3-path oracle; slow, used for ground-truth decomposition studies).
	MethodNS3Path
)

func (m Method) String() string {
	switch m {
	case MethodML:
		return "m3"
	case MethodFlowSim:
		return "flowsim"
	case MethodNS3Path:
		return "ns3-path"
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// Estimator runs the m3 pipeline.
type Estimator struct {
	// Net is the trained model (required for MethodML).
	Net *model.Net
	// NumPaths is the number of sampled paths (paper default: 500).
	NumPaths int
	// Workers bounds per-path parallelism (0 = GOMAXPROCS). Ignored when
	// Pool is set — the pool's size governs.
	Workers int
	// Method selects the backend (default MethodML).
	Method Method
	// Seed drives the path sampling.
	Seed uint64
	// Pool, when set, supplies the per-path workers. Long-lived callers
	// (the estimation service) share one Pool across estimators so
	// concurrent estimates divide the cores instead of oversubscribing
	// them. When nil, Estimate spins up a transient pool of Workers.
	Pool *Pool
	// Decomp, when set, must be the decomposition of exactly the
	// (topology, flows) passed to Estimate; the decompose stage is then
	// skipped. Callers that estimate the same workload repeatedly under
	// different configurations (sessions, the service) cache it.
	Decomp *pathsim.Decomposition
}

// NewEstimator returns an estimator with the paper's defaults.
func NewEstimator(net *model.Net) *Estimator {
	return &Estimator{Net: net, NumPaths: 500, Seed: 1}
}

// StageTimings breaks an estimation's cost down by pipeline stage.
// Decompose, Sample, and Aggregate are wall-clock; PathSim and Predict are
// summed across workers (CPU time spent in the per-path backends and in ML
// inference), feeding the serving layer's /metrics endpoint.
type StageTimings struct {
	Decompose time.Duration
	Sample    time.Duration
	PathSim   time.Duration
	Predict   time.Duration
	Aggregate time.Duration
}

// Estimate is the result of a network-wide estimation.
type Estimate struct {
	Agg *agg.NetworkEstimate
	// DistinctPaths is the number of unique paths simulated (after
	// deduplicating the weighted sample).
	DistinctPaths int
	// TotalPaths is the number of populated paths in the decomposition.
	TotalPaths int
	// Elapsed is the wall-clock estimation time (excluding workload
	// generation, matching how the paper reports simulation time).
	Elapsed time.Duration
	// Stages attributes the cost to pipeline stages.
	Stages StageTimings
}

// P99PerBucket returns the estimated p99 slowdown for the four output size
// buckets.
func (e *Estimate) P99PerBucket() [feature.NumOutputBuckets]float64 {
	var out [feature.NumOutputBuckets]float64
	for b := range out {
		out[b] = e.Agg.BucketP99(b)
	}
	return out
}

// P99 returns the network-wide combined p99 slowdown.
func (e *Estimate) P99() float64 { return e.Agg.CombinedP99() }

// Estimate runs the pipeline on the given workload and network config.
func (e *Estimator) Estimate(t *topo.Topology, flows []workload.Flow, cfg packetsim.Config) (*Estimate, error) {
	return e.EstimateContext(context.Background(), t, flows, cfg)
}

// EstimateContext is Estimate with cooperative cancellation threaded down
// to the per-path backends: when ctx ends (a client disconnect, a
// deadline), in-flight path simulations abort mid-run and the estimate
// returns ctx.Err() promptly instead of running every path to completion.
func (e *Estimator) EstimateContext(ctx context.Context, t *topo.Topology,
	flows []workload.Flow, cfg packetsim.Config) (*Estimate, error) {

	start := time.Now()
	if e.Method == MethodML && e.Net == nil {
		return nil, fmt.Errorf("core: MethodML requires a trained model")
	}
	if e.NumPaths <= 0 {
		return nil, fmt.Errorf("core: NumPaths must be positive")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var st StageTimings
	d := e.Decomp
	if d == nil {
		var err error
		d, err = pathsim.Decompose(t, flows)
		if err != nil {
			return nil, err
		}
	}
	st.Decompose = time.Since(start)

	sampleStart := time.Now()
	r := rng.New(e.Seed)
	sample, err := sampling.Weighted(d.FgWeights(), e.NumPaths, r)
	if err != nil {
		return nil, err
	}
	distinct, mult := sampling.Dedup(sample)
	st.Sample = time.Since(sampleStart)

	// Workers pull path indices from the pool; the first error (or a done
	// ctx) cancels the remaining paths instead of running them all out.
	pool := e.Pool
	if pool == nil {
		pool = NewPool(e.Workers)
		defer pool.Close()
	}
	outs := make([]agg.PathOutput, len(distinct))
	var pathSimNs, predictNs atomic.Int64
	err = pool.Run(ctx, len(distinct), func(ctx context.Context, i int) error {
		out, err := e.estimatePath(ctx, d, &d.Paths[distinct[i]], mult[i], cfg, &pathSimNs, &predictNs)
		if err != nil {
			return fmt.Errorf("core: path %d: %w", distinct[i], err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.PathSim = time.Duration(pathSimNs.Load())
	st.Predict = time.Duration(predictNs.Load())

	aggStart := time.Now()
	a, err := agg.Aggregate(outs)
	if err != nil {
		return nil, err
	}
	st.Aggregate = time.Since(aggStart)
	return &Estimate{
		Agg:           a,
		DistinctPaths: len(distinct),
		TotalPaths:    len(d.Paths),
		Elapsed:       time.Since(start),
		Stages:        st,
	}, nil
}

// estimatePath produces one sampled path's bucketed percentile vectors,
// accumulating backend and inference time into the stage counters.
func (e *Estimator) estimatePath(ctx context.Context, d *pathsim.Decomposition,
	p *pathsim.Path, mult int, cfg packetsim.Config,
	pathSimNs, predictNs *atomic.Int64) (agg.PathOutput, error) {

	sc, err := d.Scenario(p)
	if err != nil {
		return agg.PathOutput{}, err
	}
	simStart := time.Now()
	switch e.Method {
	case MethodNS3Path:
		fg, err := sc.RunPacketContext(ctx, cfg)
		pathSimNs.Add(int64(time.Since(simStart)))
		if err != nil {
			return agg.PathOutput{}, err
		}
		return outputFromSamples(fg.Sizes, fg.Slowdown, mult), nil
	case MethodFlowSim:
		fs, err := sc.RunFlowSimContext(ctx)
		pathSimNs.Add(int64(time.Since(simStart)))
		if err != nil {
			return agg.PathOutput{}, err
		}
		return outputFromSamples(fs.Fg.Sizes, fs.Fg.Slowdown, mult), nil
	case MethodML:
		fs, err := sc.RunFlowSimContext(ctx)
		pathSimNs.Add(int64(time.Since(simStart)))
		if err != nil {
			return agg.PathOutput{}, err
		}
		rates := d.T.RouteRates(p.Links)
		delays := d.T.RouteDelays(p.Links)
		in := model.BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, cfg, rates, delays)
		predStart := time.Now()
		pred, err := e.Net.Predict(in)
		predictNs.Add(int64(time.Since(predStart)))
		if err != nil {
			return agg.PathOutput{}, err
		}
		counts := feature.BuildOutput(fs.Fg.Sizes, fs.Fg.Slowdown).Counts
		out := agg.PathOutput{
			Buckets: make([][]float64, feature.NumOutputBuckets),
			Counts:  counts,
			Mult:    mult,
		}
		for b := 0; b < feature.NumOutputBuckets; b++ {
			if counts[b] > 0 {
				out.Buckets[b] = pred[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles]
			}
		}
		return out, nil
	}
	return agg.PathOutput{}, fmt.Errorf("core: unknown method %v", e.Method)
}

// outputFromSamples bucketizes raw per-flow slowdowns into a PathOutput.
func outputFromSamples(sizes []unit.ByteSize, sldn []float64, mult int) agg.PathOutput {
	m := feature.BuildOutput(sizes, sldn)
	out := agg.PathOutput{
		Buckets: make([][]float64, feature.NumOutputBuckets),
		Counts:  m.Counts,
		Mult:    mult,
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if m.Counts[b] > 0 {
			out.Buckets[b] = m.Row(b)
		}
	}
	return out
}

// GroundTruth holds full-network packet-level results bucketized the same
// way as estimates, for error computation.
type GroundTruth struct {
	Result   *packetsim.Result
	Sizes    []unit.ByteSize
	Slowdown []float64
	Elapsed  time.Duration
}

// RunGroundTruth executes the full-network packet simulation (the ns-3
// stand-in) and returns bucketizable results.
func RunGroundTruth(t *topo.Topology, flows []workload.Flow, cfg packetsim.Config) (*GroundTruth, error) {
	start := time.Now()
	res, err := packetsim.Run(t, flows, cfg)
	if err != nil {
		return nil, err
	}
	gt := &GroundTruth{Result: res, Elapsed: time.Since(start)}
	for i := range flows {
		gt.Sizes = append(gt.Sizes, flows[i].Size)
		gt.Slowdown = append(gt.Slowdown, res.Slowdown[flows[i].ID])
	}
	return gt, nil
}

// P99 returns the overall p99 slowdown of the ground truth.
func (g *GroundTruth) P99() float64 { return stats.P99(g.Slowdown) }

// P99PerBucket returns ground-truth p99 slowdowns per output bucket.
func (g *GroundTruth) P99PerBucket() [feature.NumOutputBuckets]float64 {
	var per [feature.NumOutputBuckets][]float64
	for i, s := range g.Sizes {
		b := feature.BucketOf(s, feature.OutputBucketBounds)
		per[b] = append(per[b], g.Slowdown[i])
	}
	var out [feature.NumOutputBuckets]float64
	for b := range out {
		out[b] = stats.P99(per[b])
	}
	return out
}

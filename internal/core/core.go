// Package core is the m3 estimator itself (§3): it decomposes a
// full-network workload into paths, draws a flow-weighted path sample, runs
// flowSim on each sampled path to build feature maps, corrects them with the
// trained ML model, and aggregates the per-path outputs into network-wide
// slowdown distributions.
//
// For the paper's ablations the same pipeline can be driven by two
// alternative per-path backends: the raw flowSim estimates (the "no ML"
// ablation of Fig. 16) and the packet-level path simulation ns-3-path (the
// decomposition-only oracle of §2.1 / Fig. 15).
package core

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/agg"
	"m3/internal/faultinject"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/sampling"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Method selects the per-path backend.
type Method uint8

// Per-path estimation backends.
const (
	// MethodML is full m3: flowSim features refined by the trained model.
	MethodML Method = iota
	// MethodFlowSim reports flowSim's estimates directly (no-ML ablation).
	MethodFlowSim
	// MethodNS3Path simulates each sampled path at packet level (the
	// ns-3-path oracle; slow, used for ground-truth decomposition studies).
	MethodNS3Path
)

func (m Method) String() string {
	switch m {
	case MethodML:
		return "m3"
	case MethodFlowSim:
		return "flowsim"
	case MethodNS3Path:
		return "ns3-path"
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// Defaults for NewEstimator.
const (
	// DefaultNumPaths is the paper's sampled-path budget.
	DefaultNumPaths = 500
	// DefaultBatchSize is the ML micro-batch size: large enough that the
	// per-batch fixed costs (scratch checkout, result slab) amortize, small
	// enough that batches from concurrent estimates interleave on a shared
	// pool.
	DefaultBatchSize = 32
)

// Estimator runs the m3 pipeline. Construct with NewEstimator; the
// configuration is fixed at construction (an Estimator is immutable and safe
// to share between goroutines).
type Estimator struct {
	pred       model.Predictor
	numPaths   int
	workers    int
	method     Method
	seed       uint64
	batchSize  int
	pool       *Pool
	decomp     *pathsim.Decomposition
	fallback   bool
	staged     bool
	predictPar int
}

// Option configures an Estimator at construction.
type Option func(*Estimator)

// WithNumPaths sets the sampled-path budget (default DefaultNumPaths).
func WithNumPaths(n int) Option { return func(e *Estimator) { e.numPaths = n } }

// WithWorkers bounds per-path parallelism (0 = GOMAXPROCS). Ignored when a
// shared pool is set — the pool's size governs.
func WithWorkers(n int) Option { return func(e *Estimator) { e.workers = n } }

// WithMethod selects the per-path backend (default MethodML).
func WithMethod(m Method) Option { return func(e *Estimator) { e.method = m } }

// WithSeed seeds the path sampling (default 1).
func WithSeed(seed uint64) Option { return func(e *Estimator) { e.seed = seed } }

// WithBatchSize sets the ML inference micro-batch size (default
// DefaultBatchSize; values < 1 fall back to the default). Batch 1 degrades
// to per-path prediction.
func WithBatchSize(n int) Option { return func(e *Estimator) { e.batchSize = n } }

// WithPool points the estimator at a shared worker pool. Long-lived callers
// (the estimation service) share one Pool across estimators so concurrent
// estimates divide the cores instead of oversubscribing them. Without it,
// Estimate spins up a transient pool per call.
func WithPool(p *Pool) Option { return func(e *Estimator) { e.pool = p } }

// WithFlowSimFallback enables graceful degradation for MethodML: when the
// model is missing, fails to predict, or emits non-finite slowdowns, the
// affected paths fall back to the raw flowSim estimate instead of failing the
// whole run. The result carries Degraded/DegradedPaths so callers can see the
// answer is the weaker no-ML estimate (Fig. 16's ablation), not full m3.
// Off by default: library callers get hard errors; the serving layer opts in.
func WithFlowSimFallback(on bool) Option { return func(e *Estimator) { e.fallback = on } }

// WithPredictor replaces the estimator's inference backend after
// construction options ran — useful when the backend is chosen per request
// (the serving layer's `"backend"` field) while the rest of the options stay
// fixed. A nil (or typed-nil) predictor clears the model.
func WithPredictor(p model.Predictor) Option {
	return func(e *Estimator) {
		if model.IsNil(p) {
			p = nil
		}
		e.pred = p
	}
}

// WithStagedPipeline forces the ML backend's original barrier-separated
// two-stage execution: featurize every sampled path, then predict in
// micro-batches. The default is the streaming pipeline, which launches each
// micro-batch the moment it fills so flowSim and inference overlap. The two
// produce bit-identical estimates — PredictBatch output per sample is
// independent of batch composition — so this knob exists for the parity
// gate in scripts/check.sh and for staged-vs-streamed benchmarking, not for
// correctness.
func WithStagedPipeline(on bool) Option { return func(e *Estimator) { e.staged = on } }

// WithPredictParallelism bounds how many worker goroutines one PredictBatch
// call may shard its GEMM kernels across (<= 1 or 0 means serial). Applied
// to the estimator's predictor at construction when the backend supports
// the knob (both built-in kinds do). Sharded kernels are bit-identical to
// serial, so this only moves wall-clock time. Note the knob lives on the
// (shared) predictor: handing one backend to several estimators with
// different values leaves the last writer's setting.
func WithPredictParallelism(n int) Option { return func(e *Estimator) { e.predictPar = n } }

// WithDecomposition supplies a precomputed decomposition, which must be of
// exactly the (topology, flows) passed to Estimate; the decompose stage is
// then skipped. Callers that estimate the same workload repeatedly under
// different configurations (sessions, the service) cache it.
func WithDecomposition(d *pathsim.Decomposition) Option {
	return func(e *Estimator) { e.decomp = d }
}

// NewEstimator returns an estimator for the given inference backend with
// the paper's defaults, adjusted by opts. Any model.Predictor works —
// *model.Net (the float transformer) and *model.QuantizedNet (int8) are the
// built-in kinds — and existing callers passing a *model.Net compile
// unchanged. p may be nil for the model-free backends
// (WithMethod(MethodFlowSim) or MethodNS3Path).
func NewEstimator(p model.Predictor, opts ...Option) *Estimator {
	if model.IsNil(p) {
		p = nil // a typed-nil *Net must read as "no model", like before the interface cut
	}
	e := &Estimator{
		pred:      p,
		numPaths:  DefaultNumPaths,
		seed:      1,
		batchSize: DefaultBatchSize,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.predictPar > 0 && e.pred != nil {
		model.SetPredictParallelism(e.pred, e.predictPar)
	}
	return e
}

// StageTimings breaks an estimation's cost down by pipeline stage.
// Decompose, Sample, and Aggregate are wall-clock; PathSim and Predict are
// summed across workers (CPU time spent in the per-path backends and in ML
// inference), feeding the serving layer's /metrics endpoint. Because the
// streaming pipeline overlaps the two stages, the summed PathSim + Predict
// can exceed the shard's wall clock — PathSimWall and PredictWall carry the
// per-stage wall-clock extents (first task start to last task end), and
// Overlap is the wall-clock span during which both stages were running at
// once (zero under the staged pipeline).
type StageTimings struct {
	Decompose time.Duration
	Sample    time.Duration
	PathSim   time.Duration
	Predict   time.Duration
	Aggregate time.Duration

	PathSimWall time.Duration
	PredictWall time.Duration
	Overlap     time.Duration
}

// Estimate is the result of a network-wide estimation.
type Estimate struct {
	Agg *agg.NetworkEstimate
	// DistinctPaths is the number of unique paths simulated (after
	// deduplicating the weighted sample).
	DistinctPaths int
	// TotalPaths is the number of populated paths in the decomposition.
	TotalPaths int
	// Elapsed is the wall-clock estimation time (excluding workload
	// generation, matching how the paper reports simulation time).
	Elapsed time.Duration
	// Stages attributes the cost to pipeline stages.
	Stages StageTimings
	// Degraded reports that at least one path fell back from the ML
	// correction to the raw flowSim estimate (see WithFlowSimFallback).
	Degraded bool
	// DegradedPaths counts the distinct paths that fell back.
	DegradedPaths int
}

// OverlapRatio reports how much of the shorter ML stage's wall clock was
// hidden under the longer one: Overlap / min(PathSimWall, PredictWall),
// in [0, 1]. 1 means the predict stage ran entirely inside the featurize
// window (or vice versa); 0 means the stages serialized — the staged
// pipeline, a model-free method, or a single-worker pool all report 0.
func (e *Estimate) OverlapRatio() float64 {
	shorter := min(e.Stages.PathSimWall, e.Stages.PredictWall)
	if shorter <= 0 || e.Stages.Overlap <= 0 {
		return 0
	}
	r := float64(e.Stages.Overlap) / float64(shorter)
	return min(r, 1)
}

// P99PerBucket returns the estimated p99 slowdown for the four output size
// buckets.
func (e *Estimate) P99PerBucket() [feature.NumOutputBuckets]float64 {
	var out [feature.NumOutputBuckets]float64
	for b := range out {
		out[b] = e.Agg.BucketP99(b)
	}
	return out
}

// P99 returns the network-wide combined p99 slowdown.
func (e *Estimate) P99() float64 { return e.Agg.CombinedP99() }

// Plan is the deterministic front half of an estimate: the path
// decomposition plus the deduplicated weighted path sample. Given the same
// (topology, flows, numPaths, seed), Plan is identical in every process —
// pathsim.Decompose orders paths by first appearance in the flow list and
// the sampler is seeded — which is what lets a cluster coordinator ship
// bare path indices to replicas and trust they name the same paths there.
type Plan struct {
	D *pathsim.Decomposition
	// Distinct holds the distinct sampled path indices (into D.Paths);
	// Mult[i] is how many times Distinct[i] was drawn.
	Distinct []int
	Mult     []int

	decomposeTime time.Duration
	sampleTime    time.Duration
}

// Plan decomposes and samples the workload without running any per-path
// backend. Callers that scatter the per-path work across processes run the
// plan's shards via RunShard and combine them with Assemble; Estimate does
// exactly that in-process.
func (e *Estimator) Plan(t *topo.Topology, flows []workload.Flow) (*Plan, error) {
	if e.numPaths <= 0 {
		return nil, fmt.Errorf("core: NumPaths must be positive")
	}
	start := time.Now()
	d := e.decomp
	if d == nil {
		// An injected decomposition was validated when it was built; a raw
		// (topology, flows) pair gets the full structural gate here, before
		// any simulator code can trip over it.
		if err := (workload.Workload{Topo: t, Flows: flows}).Validate(); err != nil {
			return nil, err
		}
		var err error
		d, err = pathsim.Decompose(t, flows)
		if err != nil {
			return nil, err
		}
	}
	p := &Plan{D: d}
	p.decomposeTime = time.Since(start)

	sampleStart := time.Now()
	r := rng.New(e.seed)
	sample, err := sampling.Weighted(d.FgWeights(), e.numPaths, r)
	if err != nil {
		return nil, err
	}
	p.Distinct, p.Mult = sampling.Dedup(sample)
	p.sampleTime = time.Since(sampleStart)
	return p, nil
}

// ShardResult is one shard's per-path outputs plus its backend cost, in the
// JSON-transportable form the cluster's /internal/v1/paths endpoint returns.
type ShardResult struct {
	// Outs[i] is the output of path distinct[i] (same order as the request).
	Outs []agg.PathOutput
	// PathSimNs and PredictNs are summed backend time across workers.
	PathSimNs int64
	PredictNs int64
	// PathSimWallNs and PredictWallNs are the wall-clock extents of the two
	// ML stages, and OverlapNs the span both ran concurrently (zero for
	// model-free methods and the staged pipeline). Old peers that predate
	// these fields simply report zero.
	PathSimWallNs int64
	PredictWallNs int64
	OverlapNs     int64
	// DegradedPaths counts paths that fell back from ML to flowSim.
	DegradedPaths int
}

// RunShard executes the per-path backends for one slice of a plan's
// distinct paths — distinct[i] indexes d.Paths and mult[i] is its sampling
// multiplicity. It is the unit of scatter-gather: a coordinator partitions
// a plan's paths into contiguous shards and runs each wherever it likes;
// concatenating the shard outputs in plan order reproduces exactly what a
// single-process Estimate computes.
func (e *Estimator) RunShard(ctx context.Context, d *pathsim.Decomposition,
	distinct, mult []int, cfg packetsim.Config) (*ShardResult, error) {

	if len(distinct) != len(mult) {
		return nil, fmt.Errorf("core: shard has %d paths but %d multiplicities", len(distinct), len(mult))
	}
	for i, pi := range distinct {
		if pi < 0 || pi >= len(d.Paths) {
			return nil, fmt.Errorf("core: shard path index %d out of range [0,%d)", pi, len(d.Paths))
		}
		if mult[i] <= 0 {
			return nil, fmt.Errorf("core: shard multiplicity %d must be positive", mult[i])
		}
	}
	method := e.method
	wholeDegraded := false
	if method == MethodML && e.pred == nil {
		if !e.fallback {
			return nil, fmt.Errorf("core: MethodML requires a trained model")
		}
		// No model at all: the entire shard degrades to the flowSim backend.
		method = MethodFlowSim
		wholeDegraded = true
	}
	// Workers pull path indices from the pool; the first error (or a done
	// ctx) cancels the remaining paths instead of running them all out.
	pool := e.pool
	if pool == nil {
		pool = NewPool(e.workers)
		defer pool.Close()
	}
	sr := &ShardResult{Outs: make([]agg.PathOutput, len(distinct))}
	var pathSimNs, predictNs atomic.Int64
	var degraded atomic.Int64
	var walls stageWalls
	var err error
	if method == MethodML {
		if e.staged {
			walls, err = e.estimateMLStaged(ctx, pool, d, distinct, mult, cfg, sr.Outs, &pathSimNs, &predictNs, &degraded)
		} else {
			walls, err = e.estimateMLStreamed(ctx, pool, d, distinct, mult, cfg, sr.Outs, &pathSimNs, &predictNs, &degraded)
		}
	} else {
		wallStart := time.Now()
		err = pool.Run(ctx, len(distinct), func(ctx context.Context, i int) error {
			faultinject.At("core.path", distinct[i])
			out, err := e.estimatePath(ctx, d, &d.Paths[distinct[i]], mult[i], cfg, method, &pathSimNs)
			if err != nil {
				return fmt.Errorf("core: path %d: %w", distinct[i], err)
			}
			sr.Outs[i] = out
			return nil
		})
		walls.pathSim = time.Since(wallStart)
	}
	if err != nil {
		return nil, err
	}
	sr.PathSimNs = pathSimNs.Load()
	sr.PredictNs = predictNs.Load()
	sr.PathSimWallNs = int64(walls.pathSim)
	sr.PredictWallNs = int64(walls.predict)
	sr.OverlapNs = int64(walls.overlap)
	sr.DegradedPaths = int(degraded.Load())
	if wholeDegraded {
		sr.DegradedPaths = len(distinct)
	}
	return sr, nil
}

// Assemble aggregates per-path outputs — ordered exactly as p.Distinct —
// into the final estimate. st carries the caller's PathSim/Predict totals;
// the plan's Decompose/Sample timings and the Aggregate stage are filled in
// here. Elapsed is left zero for the caller to stamp.
func (p *Plan) Assemble(outs []agg.PathOutput, st StageTimings, degradedPaths int) (*Estimate, error) {
	if len(outs) != len(p.Distinct) {
		return nil, fmt.Errorf("core: assemble got %d outputs for %d sampled paths", len(outs), len(p.Distinct))
	}
	st.Decompose = p.decomposeTime
	st.Sample = p.sampleTime
	aggStart := time.Now()
	a, err := agg.Aggregate(outs)
	if err != nil {
		return nil, err
	}
	st.Aggregate = time.Since(aggStart)
	return &Estimate{
		Agg:           a,
		DistinctPaths: len(p.Distinct),
		TotalPaths:    len(p.D.Paths),
		Stages:        st,
		Degraded:      degradedPaths > 0,
		DegradedPaths: degradedPaths,
	}, nil
}

// Estimate runs the pipeline on the given workload and network config, with
// cooperative cancellation threaded down to the per-path backends: when ctx
// ends (a client disconnect, a deadline), in-flight path simulations abort
// mid-run and the estimate returns ctx.Err() promptly instead of running
// every path to completion.
func (e *Estimator) Estimate(ctx context.Context, t *topo.Topology,
	flows []workload.Flow, cfg packetsim.Config) (*Estimate, error) {

	start := time.Now()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := e.Plan(t, flows)
	if err != nil {
		return nil, err
	}
	sr, err := e.RunShard(ctx, plan.D, plan.Distinct, plan.Mult, cfg)
	if err != nil {
		return nil, err
	}
	res, err := plan.Assemble(sr.Outs, StageTimings{
		PathSim:     time.Duration(sr.PathSimNs),
		Predict:     time.Duration(sr.PredictNs),
		PathSimWall: time.Duration(sr.PathSimWallNs),
		PredictWall: time.Duration(sr.PredictWallNs),
		Overlap:     time.Duration(sr.OverlapNs),
	}, sr.DegradedPaths)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// stageWalls carries the ML pipeline's wall-clock extents: pathSim and
// predict span first-task-start to last-task-end per stage, and overlap is
// the concurrent span (how much of the two stages ran at once).
type stageWalls struct {
	pathSim time.Duration
	predict time.Duration
	overlap time.Duration
}

// mlRun is the per-call state shared by the ML pipeline variants: the
// featurized samples, the fallback retention slabs, and the batch/predict
// plumbing that is identical whether batches form by completion order
// (streamed) or by contiguous index ranges (staged).
type mlRun struct {
	e        *Estimator
	d        *pathsim.Decomposition
	distinct []int
	mult     []int
	cfg      packetsim.Config
	samples  []*model.Sample
	outs     []agg.PathOutput
	// With fallback enabled, the featurize stage retains each path's raw
	// flowSim slowdowns (slices RunFlowSimContext already allocated) so a
	// failed or non-finite prediction can be bucketized per-path without
	// re-simulating. The happy path pays only the two slice stores —
	// bucketizing happens lazily, at failure time. When fallback is off the
	// slices stay nil and featurize is unchanged.
	fbSizes [][]unit.ByteSize
	fbSldn  [][]float64

	pathSimNs, predictNs, degraded *atomic.Int64
}

func (e *Estimator) newMLRun(d *pathsim.Decomposition, distinct, mult []int,
	cfg packetsim.Config, outs []agg.PathOutput,
	pathSimNs, predictNs, degraded *atomic.Int64) *mlRun {

	r := &mlRun{
		e: e, d: d, distinct: distinct, mult: mult, cfg: cfg,
		samples: make([]*model.Sample, len(distinct)), outs: outs,
		pathSimNs: pathSimNs, predictNs: predictNs, degraded: degraded,
	}
	if e.fallback {
		r.fbSizes = make([][]unit.ByteSize, len(distinct))
		r.fbSldn = make([][]float64, len(distinct))
	}
	return r
}

// featurize runs flowSim + feature building for sampled path i, storing the
// model inputs and the path's output skeleton.
func (r *mlRun) featurize(ctx context.Context, i int) error {
	faultinject.At("core.path", r.distinct[i])
	p := &r.d.Paths[r.distinct[i]]
	sc, err := r.d.Scenario(p)
	if err != nil {
		return fmt.Errorf("core: path %d: %w", r.distinct[i], err)
	}
	simStart := time.Now()
	fs, err := sc.RunFlowSimContext(ctx)
	r.pathSimNs.Add(int64(time.Since(simStart)))
	if err != nil {
		return fmt.Errorf("core: path %d: %w", r.distinct[i], err)
	}
	rates := r.d.T.RouteRates(p.Links)
	delays := r.d.T.RouteDelays(p.Links)
	r.samples[i] = model.BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, r.cfg, rates, delays)
	r.outs[i] = agg.PathOutput{
		Counts: feature.BucketCounts(fs.Fg.Sizes, feature.OutputBucketBounds),
		Mult:   r.mult[i],
	}
	if r.fbSizes != nil {
		r.fbSizes[i], r.fbSldn[i] = fs.Fg.Sizes, fs.Fg.Slowdown
	}
	return nil
}

// predict flushes the featurized paths named by idx (indices into distinct,
// in whatever order the batch formed) through PredictBatch, writing final
// bucket vectors — or flowSim fallbacks — into outs. A PredictBatch error
// degrades the whole batch when fallback is on; non-finite rows degrade
// per path. Per-sample outputs are independent of batch composition
// (PredictBatch agrees with per-sample prediction bitwise), so streamed
// completion-order batches reproduce staged contiguous batches exactly.
func (r *mlRun) predict(ctx context.Context, idx []int) error {
	batch := make([]*model.Sample, len(idx))
	for k, i := range idx {
		batch[k] = r.samples[i]
	}
	predStart := time.Now()
	preds, err := r.e.pred.PredictBatch(ctx, batch)
	r.predictNs.Add(int64(time.Since(predStart)))
	if err != nil {
		if r.fbSizes == nil {
			return fmt.Errorf("core: predict batch [path %d..]: %w", r.distinct[idx[0]], err)
		}
		// The model refused the whole batch; serve its paths from the
		// flowSim estimates instead of failing the run.
		for _, i := range idx {
			r.outs[i] = outputFromSamples(r.fbSizes[i], r.fbSldn[i], r.mult[i])
			r.samples[i] = nil
		}
		r.degraded.Add(int64(len(idx)))
		return nil
	}
	faultinject.At("core.predict", preds)
	for k, pred := range preds {
		i := idx[k]
		if r.fbSizes != nil && !finiteSlice(pred) {
			r.outs[i] = outputFromSamples(r.fbSizes[i], r.fbSldn[i], r.mult[i])
			r.samples[i] = nil
			r.degraded.Add(1)
			continue
		}
		out := &r.outs[i]
		out.Buckets = make([][]float64, feature.NumOutputBuckets)
		for b := 0; b < feature.NumOutputBuckets; b++ {
			if out.Counts[b] > 0 {
				out.Buckets[b] = pred[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles]
			}
		}
		r.samples[i] = nil // release featurized inputs as batches drain
	}
	return nil
}

// pprof labels for the ML pipeline's two stages, so a CPU profile of the
// serving layer shows featurize and predict as separate label sets and the
// overlap is visible in the profile timeline.
var (
	featurizeLabels = pprof.Labels("stage", "featurize")
	predictLabels   = pprof.Labels("stage", "predict")
)

// estimateMLStreamed is the ML backend's barrier-free pipeline: featurize
// tasks fan out over the pool and deliver completed samples to a batch
// accumulator; the moment a micro-batch fills — or the featurize stage
// drains — a predict task launches on the same pool via a Group, so flowSim
// and inference overlap instead of serializing and batches from concurrent
// estimates interleave exactly as before. Cancellation is shared both ways:
// a predict failure cancels in-flight featurize work (the featurize Run
// executes under the group's context) and a featurize failure cancels
// pending predicts. Estimates are bit-identical to estimateMLStaged.
func (e *Estimator) estimateMLStreamed(ctx context.Context, pool *Pool,
	d *pathsim.Decomposition, distinct, mult []int, cfg packetsim.Config,
	outs []agg.PathOutput, pathSimNs, predictNs, degraded *atomic.Int64) (stageWalls, error) {

	r := e.newMLRun(d, distinct, mult, cfg, outs, pathSimNs, predictNs, degraded)
	bs := e.batchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}

	g := pool.NewGroup(ctx)
	start := time.Now()
	// predFirst/predLast track the predict stage's wall extent: the earliest
	// task start and latest task end, as offsets from start.
	var predFirst, predLast atomic.Int64
	predFirst.Store(math.MaxInt64)
	launch := func(idx []int) {
		g.Go(func(ctx context.Context) error {
			var err error
			pprof.Do(ctx, predictLabels, func(ctx context.Context) {
				t0 := int64(time.Since(start))
				err = r.predict(ctx, idx)
				t1 := int64(time.Since(start))
				for {
					if first := predFirst.Load(); t0 >= first || predFirst.CompareAndSwap(first, t0) {
						break
					}
				}
				for {
					if last := predLast.Load(); t1 <= last || predLast.CompareAndSwap(last, t1) {
						break
					}
				}
			})
			return err
		})
	}
	var mu sync.Mutex
	pending := make([]int, 0, bs)
	ferr := pool.Run(g.Context(), len(distinct), func(ctx context.Context, i int) error {
		var err error
		pprof.Do(ctx, featurizeLabels, func(ctx context.Context) {
			err = r.featurize(ctx, i)
		})
		if err != nil {
			return err
		}
		mu.Lock()
		pending = append(pending, i)
		var full []int
		if len(pending) >= bs {
			full = pending
			pending = make([]int, 0, bs)
		}
		mu.Unlock()
		if full != nil {
			launch(full)
		}
		return nil
	})
	featWall := time.Since(start)
	if ferr != nil {
		// Fail keeps the earlier predict error when one already canceled the
		// run (ferr is then just the induced context.Canceled); otherwise the
		// featurize error cancels the pending predicts.
		g.Fail(ferr)
	} else {
		// Featurize drained: flush the partial tail batch.
		mu.Lock()
		tail := pending
		pending = nil
		mu.Unlock()
		if len(tail) > 0 {
			launch(tail)
		}
	}
	err := g.Wait()
	total := time.Since(start)
	walls := stageWalls{pathSim: featWall}
	if first, last := predFirst.Load(), predLast.Load(); last > first {
		walls.predict = time.Duration(last - first)
	}
	// Overlap: how much longer the two stages would have taken end-to-end
	// had they serialized, versus the wall clock they actually took.
	if over := walls.pathSim + walls.predict - total; over > 0 {
		walls.overlap = over
	}
	return walls, err
}

// estimateMLStaged is the original barrier-separated pipeline: featurize
// every sampled path, then flush contiguous micro-batches through
// PredictBatch, both as full pool.Run stages. Kept selectable (see
// WithStagedPipeline) as the parity baseline for the streamed pipeline and
// for staged-vs-streamed benchmarking.
func (e *Estimator) estimateMLStaged(ctx context.Context, pool *Pool,
	d *pathsim.Decomposition, distinct, mult []int, cfg packetsim.Config,
	outs []agg.PathOutput, pathSimNs, predictNs, degraded *atomic.Int64) (stageWalls, error) {

	r := e.newMLRun(d, distinct, mult, cfg, outs, pathSimNs, predictNs, degraded)
	var walls stageWalls
	featStart := time.Now()
	err := pool.Run(ctx, len(distinct), func(ctx context.Context, i int) error {
		var err error
		pprof.Do(ctx, featurizeLabels, func(ctx context.Context) {
			err = r.featurize(ctx, i)
		})
		return err
	})
	walls.pathSim = time.Since(featStart)
	if err != nil {
		return walls, err
	}
	bs := e.batchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	numBatches := (len(distinct) + bs - 1) / bs
	predStart := time.Now()
	err = pool.Run(ctx, numBatches, func(ctx context.Context, bi int) error {
		lo := bi * bs
		hi := min(lo+bs, len(distinct))
		idx := make([]int, hi-lo)
		for k := range idx {
			idx[k] = lo + k
		}
		var perr error
		pprof.Do(ctx, predictLabels, func(ctx context.Context) {
			perr = r.predict(ctx, idx)
		})
		return perr
	})
	walls.predict = time.Since(predStart)
	return walls, err
}

// finiteSlice reports whether every value is a usable slowdown — Predict
// clamps below-1 outputs but NaN and Inf pass through a broken model
// untouched, so they are the degradation signal.
func finiteSlice(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// estimatePath produces one sampled path's bucketed percentile vectors for
// the model-free backends, accumulating backend time into the stage counter.
func (e *Estimator) estimatePath(ctx context.Context, d *pathsim.Decomposition,
	p *pathsim.Path, mult int, cfg packetsim.Config, method Method,
	pathSimNs *atomic.Int64) (agg.PathOutput, error) {

	sc, err := d.Scenario(p)
	if err != nil {
		return agg.PathOutput{}, err
	}
	simStart := time.Now()
	switch method {
	case MethodNS3Path:
		fg, err := sc.RunPacketContext(ctx, cfg)
		pathSimNs.Add(int64(time.Since(simStart)))
		if err != nil {
			return agg.PathOutput{}, err
		}
		return outputFromSamples(fg.Sizes, fg.Slowdown, mult), nil
	case MethodFlowSim:
		fs, err := sc.RunFlowSimContext(ctx)
		pathSimNs.Add(int64(time.Since(simStart)))
		if err != nil {
			return agg.PathOutput{}, err
		}
		return outputFromSamples(fs.Fg.Sizes, fs.Fg.Slowdown, mult), nil
	}
	return agg.PathOutput{}, fmt.Errorf("core: unknown method %v", method)
}

// outputFromSamples bucketizes raw per-flow slowdowns into a PathOutput.
func outputFromSamples(sizes []unit.ByteSize, sldn []float64, mult int) agg.PathOutput {
	m := feature.BuildOutput(sizes, sldn)
	out := agg.PathOutput{
		Buckets: make([][]float64, feature.NumOutputBuckets),
		Counts:  m.Counts,
		Mult:    mult,
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if m.Counts[b] > 0 {
			out.Buckets[b] = m.Row(b)
		}
	}
	return out
}

// GroundTruth holds full-network packet-level results bucketized the same
// way as estimates, for error computation.
type GroundTruth struct {
	// Result is the full-network packet simulation output. Nil when the
	// ground truth came from the clustered Parsimon decomposition
	// (RunClusteredGroundTruth), which has no single network-wide run.
	Result   *packetsim.Result
	Sizes    []unit.ByteSize
	Slowdown []float64
	Elapsed  time.Duration
	// LinksSimulated/LinksTotal report the clustered decomposition's
	// coverage (zero for the full packet-level path).
	LinksSimulated int
	LinksTotal     int
}

// RunGroundTruth executes the full-network packet simulation (the ns-3
// stand-in) and returns bucketizable results. Cancelling ctx aborts the
// simulation mid-run with ctx.Err().
func RunGroundTruth(ctx context.Context, t *topo.Topology, flows []workload.Flow, cfg packetsim.Config) (*GroundTruth, error) {
	start := time.Now()
	res, err := packetsim.RunContext(ctx, t, flows, cfg)
	if err != nil {
		return nil, err
	}
	gt := &GroundTruth{Result: res, Elapsed: time.Since(start)}
	for i := range flows {
		gt.Sizes = append(gt.Sizes, flows[i].Size)
		gt.Slowdown = append(gt.Slowdown, res.Slowdown[flows[i].ID])
	}
	return gt, nil
}

// RunClusteredGroundTruth produces ground truth from the Parsimon link-level
// decomposition with clustering, on the caller's shared pool. This is the
// scale path: where RunGroundTruth's single packet simulation caps out
// around the 6144-host topology, the clustered decomposition simulates one
// representative per link cluster and stays tractable at O(100k) hosts. The
// exact tier is lossless relative to unclustered Parsimon; the distance tier
// (opts.ClusterThreshold > 0) trades accuracy for fewer simulations, bounded
// in EXPERIMENTS.md.
func RunClusteredGroundTruth(ctx context.Context, t *topo.Topology, flows []workload.Flow,
	cfg packetsim.Config, p *Pool, opts parsimon.Options) (*GroundTruth, error) {

	start := time.Now()
	res, err := parsimon.RunWithOptions(ctx, t, flows, cfg, p, opts)
	if err != nil {
		return nil, err
	}
	gt := &GroundTruth{
		Elapsed:        time.Since(start),
		LinksSimulated: res.LinksSimulated,
		LinksTotal:     res.LinksTotal,
	}
	for i := range flows {
		gt.Sizes = append(gt.Sizes, flows[i].Size)
		gt.Slowdown = append(gt.Slowdown, res.Slowdown[flows[i].ID])
	}
	return gt, nil
}

// P99 returns the overall p99 slowdown of the ground truth.
func (g *GroundTruth) P99() float64 { return stats.P99(g.Slowdown) }

// P99PerBucket returns ground-truth p99 slowdowns per output bucket.
func (g *GroundTruth) P99PerBucket() [feature.NumOutputBuckets]float64 {
	var per [feature.NumOutputBuckets][]float64
	for i, s := range g.Sizes {
		b := feature.BucketOf(s, feature.OutputBucketBounds)
		per[b] = append(per[b], g.Slowdown[i])
	}
	var out [feature.NumOutputBuckets]float64
	for b := range out {
		out[b] = stats.P99(per[b])
	}
	return out
}

// Package core is the m3 estimator itself (§3): it decomposes a
// full-network workload into paths, draws a flow-weighted path sample, runs
// flowSim on each sampled path to build feature maps, corrects them with the
// trained ML model, and aggregates the per-path outputs into network-wide
// slowdown distributions.
//
// For the paper's ablations the same pipeline can be driven by two
// alternative per-path backends: the raw flowSim estimates (the "no ML"
// ablation of Fig. 16) and the packet-level path simulation ns-3-path (the
// decomposition-only oracle of §2.1 / Fig. 15).
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"m3/internal/agg"
	"m3/internal/feature"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/pathsim"
	"m3/internal/rng"
	"m3/internal/sampling"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Method selects the per-path backend.
type Method uint8

// Per-path estimation backends.
const (
	// MethodML is full m3: flowSim features refined by the trained model.
	MethodML Method = iota
	// MethodFlowSim reports flowSim's estimates directly (no-ML ablation).
	MethodFlowSim
	// MethodNS3Path simulates each sampled path at packet level (the
	// ns-3-path oracle; slow, used for ground-truth decomposition studies).
	MethodNS3Path
)

func (m Method) String() string {
	switch m {
	case MethodML:
		return "m3"
	case MethodFlowSim:
		return "flowsim"
	case MethodNS3Path:
		return "ns3-path"
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// Estimator runs the m3 pipeline.
type Estimator struct {
	// Net is the trained model (required for MethodML).
	Net *model.Net
	// NumPaths is the number of sampled paths (paper default: 500).
	NumPaths int
	// Workers bounds per-path parallelism (0 = GOMAXPROCS).
	Workers int
	// Method selects the backend (default MethodML).
	Method Method
	// Seed drives the path sampling.
	Seed uint64
}

// NewEstimator returns an estimator with the paper's defaults.
func NewEstimator(net *model.Net) *Estimator {
	return &Estimator{Net: net, NumPaths: 500, Seed: 1}
}

// Estimate is the result of a network-wide estimation.
type Estimate struct {
	Agg *agg.NetworkEstimate
	// DistinctPaths is the number of unique paths simulated (after
	// deduplicating the weighted sample).
	DistinctPaths int
	// TotalPaths is the number of populated paths in the decomposition.
	TotalPaths int
	// Elapsed is the wall-clock estimation time (excluding workload
	// generation, matching how the paper reports simulation time).
	Elapsed time.Duration
}

// P99PerBucket returns the estimated p99 slowdown for the four output size
// buckets.
func (e *Estimate) P99PerBucket() [feature.NumOutputBuckets]float64 {
	var out [feature.NumOutputBuckets]float64
	for b := range out {
		out[b] = e.Agg.BucketP99(b)
	}
	return out
}

// P99 returns the network-wide combined p99 slowdown.
func (e *Estimate) P99() float64 { return e.Agg.CombinedP99() }

// Estimate runs the pipeline on the given workload and network config.
func (e *Estimator) Estimate(t *topo.Topology, flows []workload.Flow, cfg packetsim.Config) (*Estimate, error) {
	start := time.Now()
	if e.Method == MethodML && e.Net == nil {
		return nil, fmt.Errorf("core: MethodML requires a trained model")
	}
	if e.NumPaths <= 0 {
		return nil, fmt.Errorf("core: NumPaths must be positive")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d, err := pathsim.Decompose(t, flows)
	if err != nil {
		return nil, err
	}
	r := rng.New(e.Seed)
	sample, err := sampling.Weighted(d.FgWeights(), e.NumPaths, r)
	if err != nil {
		return nil, err
	}
	distinct, mult := sampling.Dedup(sample)

	outs := make([]agg.PathOutput, len(distinct))
	errs := make([]error, len(distinct))
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range distinct {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outs[i], errs[i] = e.estimatePath(d, &d.Paths[distinct[i]], mult[i], cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: path %d: %w", distinct[i], err)
		}
	}
	a, err := agg.Aggregate(outs)
	if err != nil {
		return nil, err
	}
	return &Estimate{
		Agg:           a,
		DistinctPaths: len(distinct),
		TotalPaths:    len(d.Paths),
		Elapsed:       time.Since(start),
	}, nil
}

// estimatePath produces one sampled path's bucketed percentile vectors.
func (e *Estimator) estimatePath(d *pathsim.Decomposition, p *pathsim.Path, mult int,
	cfg packetsim.Config) (agg.PathOutput, error) {

	sc, err := d.Scenario(p)
	if err != nil {
		return agg.PathOutput{}, err
	}
	switch e.Method {
	case MethodNS3Path:
		fg, err := sc.RunPacket(cfg)
		if err != nil {
			return agg.PathOutput{}, err
		}
		return outputFromSamples(fg.Sizes, fg.Slowdown, mult), nil
	case MethodFlowSim:
		fs, err := sc.RunFlowSim()
		if err != nil {
			return agg.PathOutput{}, err
		}
		return outputFromSamples(fs.Fg.Sizes, fs.Fg.Slowdown, mult), nil
	case MethodML:
		fs, err := sc.RunFlowSim()
		if err != nil {
			return agg.PathOutput{}, err
		}
		rates := d.T.RouteRates(p.Links)
		delays := d.T.RouteDelays(p.Links)
		in := model.BuildInputs(fs.Fg.Sizes, fs.Fg.Slowdown, fs.BgSizes, fs.BgSldn, cfg, rates, delays)
		pred, err := e.Net.Predict(in)
		if err != nil {
			return agg.PathOutput{}, err
		}
		counts := feature.BuildOutput(fs.Fg.Sizes, fs.Fg.Slowdown).Counts
		out := agg.PathOutput{
			Buckets: make([][]float64, feature.NumOutputBuckets),
			Counts:  counts,
			Mult:    mult,
		}
		for b := 0; b < feature.NumOutputBuckets; b++ {
			if counts[b] > 0 {
				out.Buckets[b] = pred[b*feature.NumPercentiles : (b+1)*feature.NumPercentiles]
			}
		}
		return out, nil
	}
	return agg.PathOutput{}, fmt.Errorf("core: unknown method %v", e.Method)
}

// outputFromSamples bucketizes raw per-flow slowdowns into a PathOutput.
func outputFromSamples(sizes []unit.ByteSize, sldn []float64, mult int) agg.PathOutput {
	m := feature.BuildOutput(sizes, sldn)
	out := agg.PathOutput{
		Buckets: make([][]float64, feature.NumOutputBuckets),
		Counts:  m.Counts,
		Mult:    mult,
	}
	for b := 0; b < feature.NumOutputBuckets; b++ {
		if m.Counts[b] > 0 {
			out.Buckets[b] = m.Row(b)
		}
	}
	return out
}

// GroundTruth holds full-network packet-level results bucketized the same
// way as estimates, for error computation.
type GroundTruth struct {
	Result   *packetsim.Result
	Sizes    []unit.ByteSize
	Slowdown []float64
	Elapsed  time.Duration
}

// RunGroundTruth executes the full-network packet simulation (the ns-3
// stand-in) and returns bucketizable results.
func RunGroundTruth(t *topo.Topology, flows []workload.Flow, cfg packetsim.Config) (*GroundTruth, error) {
	start := time.Now()
	res, err := packetsim.Run(t, flows, cfg)
	if err != nil {
		return nil, err
	}
	gt := &GroundTruth{Result: res, Elapsed: time.Since(start)}
	for i := range flows {
		gt.Sizes = append(gt.Sizes, flows[i].Size)
		gt.Slowdown = append(gt.Slowdown, res.Slowdown[flows[i].ID])
	}
	return gt, nil
}

// P99 returns the overall p99 slowdown of the ground truth.
func (g *GroundTruth) P99() float64 { return stats.P99(g.Slowdown) }

// P99PerBucket returns ground-truth p99 slowdowns per output bucket.
func (g *GroundTruth) P99PerBucket() [feature.NumOutputBuckets]float64 {
	var per [feature.NumOutputBuckets][]float64
	for i, s := range g.Sizes {
		b := feature.BucketOf(s, feature.OutputBucketBounds)
		per[b] = append(per[b], g.Slowdown[i])
	}
	var out [feature.NumOutputBuckets]float64
	for b := range out {
		out[b] = stats.P99(per[b])
	}
	return out
}

package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunAll(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	err := p.Run(context.Background(), 100, func(ctx context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 99*100/2 {
		t.Errorf("sum = %d", got)
	}
}

func TestPoolFirstErrorCancelsRemainder(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	var ran atomic.Int64
	err := p.Run(context.Background(), 1000, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("all %d tasks ran despite early error", got)
	}
}

func TestPoolCallerCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	start := time.Now()
	go func() {
		<-started
		cancel()
	}()
	err := p.Run(ctx, 1000, func(ctx context.Context, i int) error {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Run took %v after cancellation", elapsed)
	}
}

// TestPoolSharedAcrossRuns drives concurrent Run calls through one pool:
// total parallelism stays bounded by the pool size.
func TestPoolSharedAcrossRuns(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(context.Background(), 20, func(ctx context.Context, i int) error {
				n := inFlight.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Errorf("peak parallelism %d exceeds pool size %d", got, workers)
	}
}

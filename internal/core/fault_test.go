package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"m3/internal/faultinject"
	"m3/internal/packetsim"
	"m3/internal/pool"
)

// TestFallbackOnNaNPredictions poisons the model's batched predictions with
// NaN through the fault hook; with fallback enabled the estimate must come
// back finite (flowSim numbers) and flagged degraded.
func TestFallbackOnNaNPredictions(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	ft, flows := testWorkload(t, 1200, 1)
	net := tinyTrainedNet(t)

	faultinject.Set("core.predict", func(detail any) {
		preds := detail.([][]float64)
		for _, p := range preds {
			p[0] = math.NaN()
		}
	})
	est := NewEstimator(net, WithNumPaths(40), WithSeed(3), WithFlowSimFallback(true))
	res, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedPaths != res.DistinctPaths {
		t.Errorf("Degraded=%v DegradedPaths=%d, want all %d paths degraded",
			res.Degraded, res.DegradedPaths, res.DistinctPaths)
	}
	p99 := res.P99()
	if math.IsNaN(p99) || math.IsInf(p99, 0) || p99 < 1 {
		t.Errorf("degraded p99 = %v, want finite slowdown >= 1", p99)
	}
}

// TestFallbackNilModel proves the no-model case degrades to a whole-run
// flowSim estimate instead of erroring when fallback is on.
func TestFallbackNilModel(t *testing.T) {
	ft, flows := testWorkload(t, 1200, 1)
	est := NewEstimator(nil, WithNumPaths(40), WithSeed(3), WithFlowSimFallback(true))
	res, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedPaths != res.DistinctPaths {
		t.Errorf("Degraded=%v DegradedPaths=%d/%d", res.Degraded, res.DegradedPaths, res.DistinctPaths)
	}
	if p99 := res.P99(); math.IsNaN(p99) || p99 < 1 {
		t.Errorf("p99 = %v", p99)
	}
	// Must match a plain flowSim run exactly: same seed, same sample.
	fs := NewEstimator(nil, WithNumPaths(40), WithSeed(3), WithMethod(MethodFlowSim))
	want, err := fs.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.P99() != want.P99() {
		t.Errorf("degraded p99 %v != flowSim p99 %v", res.P99(), want.P99())
	}
}

// TestPathPanicIsolated injects a panic into one sampled path's simulation:
// the estimate must fail with a typed PanicError — not crash the process —
// and the estimator must still work afterwards.
func TestPathPanicIsolated(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	ft, flows := testWorkload(t, 1200, 1)
	net := tinyTrainedNet(t)

	fired := false
	faultinject.Set("core.path", func(detail any) {
		if !fired {
			fired = true
			panic("injected path-sim panic")
		}
	})
	est := NewEstimator(net, WithNumPaths(40), WithSeed(3), WithFlowSimFallback(true))
	_, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T (%v), want *pool.PanicError", err, err)
	}
	if pe.Value != "injected path-sim panic" {
		t.Errorf("panic value = %v", pe.Value)
	}

	faultinject.Clear()
	res, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatalf("estimator unusable after recovered panic: %v", err)
	}
	if res.Degraded {
		t.Error("healthy rerun reported degraded")
	}
}

// TestEstimateRejectsInvalidWorkload checks the boundary validation added to
// Estimate: corrupt flows surface as typed errors before any simulation.
func TestEstimateRejectsInvalidWorkload(t *testing.T) {
	ft, flows := testWorkload(t, 600, 1)
	flows[3].Route = nil
	est := NewEstimator(nil, WithNumPaths(20), WithMethod(MethodFlowSim))
	_, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err == nil {
		t.Fatal("workload with routeless flow accepted")
	}
}

package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"m3/internal/cache"
	"m3/internal/packetsim"
	"m3/internal/topo"
	"m3/internal/workload"
)

// WorkloadHash identifies a (topology, flows) pair for cache keying.
type WorkloadHash uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) mix(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	*h = fnv64(x)
}

// HashWorkload fingerprints a workload and the topology it runs on
// (FNV-1a over links and flows). Two workloads with the same hash share
// decompositions and estimates in the caches, so every field that affects
// estimation is folded in.
func HashWorkload(t *topo.Topology, flows []workload.Flow) WorkloadHash {
	h := fnv64(fnvOffset64)
	h.mix(uint64(len(t.Links)))
	for i := range t.Links {
		l := &t.Links[i]
		h.mix(uint64(l.Src)<<32 | uint64(uint32(l.Dst)))
		h.mix(uint64(l.Rate))
		h.mix(uint64(l.Delay))
	}
	h.mix(uint64(len(flows)))
	for i := range flows {
		f := &flows[i]
		h.mix(uint64(f.ID)<<32 | uint64(uint32(f.Src)))
		h.mix(uint64(uint32(f.Dst)))
		h.mix(uint64(f.Size))
		h.mix(uint64(f.Arrival))
		for _, l := range f.Route {
			h.mix(uint64(l))
		}
	}
	return WorkloadHash(h)
}

// EstimateKey names one finished estimate: the workload (and topology), the
// network configuration, the backend, the sampling budget and seed, and —
// for the ML backend — the model version, so checkpoint hot-reloads never
// serve estimates from an older model.
type EstimateKey struct {
	Workload WorkloadHash
	Cfg      packetsim.Config
	Method   Method
	NumPaths int
	Seed     uint64
	Model    uint64 // model fingerprint; 0 for model-free methods
}

// EstimateCache is a synchronized LRU of finished estimates with
// single-flight semantics: concurrent requests for the same key share one
// computation instead of duplicating work. It generalizes the one-entry
// per-config cache the query REPL used to keep, and is shared by the REPL
// and the estimation service.
type EstimateCache struct {
	mu       sync.Mutex
	lru      *cache.LRU[EstimateKey, *Estimate]
	inflight map[EstimateKey]*inflightEstimate

	hits   atomic.Int64
	misses atomic.Int64
}

type inflightEstimate struct {
	done chan struct{}
	res  *Estimate
	err  error
}

// NewEstimateCache returns a cache holding up to capacity finished
// estimates (capacity <= 0 defaults to 64).
func NewEstimateCache(capacity int) *EstimateCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &EstimateCache{
		lru:      cache.New[EstimateKey, *Estimate](capacity),
		inflight: make(map[EstimateKey]*inflightEstimate),
	}
}

// Do returns the cached estimate for key, or computes it via compute. The
// second result reports whether the value came from the cache (including
// joining another caller's in-flight computation). Errors are not cached;
// if an in-flight leader is cancelled, one waiter takes over and
// recomputes.
func (c *EstimateCache) Do(ctx context.Context, key EstimateKey,
	compute func() (*Estimate, error)) (*Estimate, bool, error) {

	for {
		c.mu.Lock()
		if res, ok := c.lru.Get(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return res, true, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if call.err == nil {
				c.hits.Add(1)
				return call.res, true, nil
			}
			if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
				// The leader's request was abandoned, not the work itself
				// failed — retry (possibly becoming the new leader).
				if ctx.Err() != nil {
					return nil, false, ctx.Err()
				}
				continue
			}
			return nil, false, call.err
		}
		call := &inflightEstimate{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()

		c.misses.Add(1)
		res, err := compute()
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.lru.Add(key, res)
		}
		c.mu.Unlock()
		call.res, call.err = res, err
		close(call.done)
		return res, false, err
	}
}

// Get returns the cached estimate for key without computing.
func (c *EstimateCache) Get(key EstimateKey) (*Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(key)
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// Stats snapshots hit/miss counters and the current entry count.
func (c *EstimateCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: entries}
}

package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"m3/internal/cache"
	"m3/internal/packetsim"
	"m3/internal/topo"
	"m3/internal/workload"
)

// WorkloadHash identifies a (topology, flows) pair for cache keying.
type WorkloadHash uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) mix(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime64
		v >>= 8
	}
	*h = fnv64(x)
}

// HashWorkload fingerprints a workload and the topology it runs on
// (FNV-1a over links and flows). Two workloads with the same hash share
// decompositions and estimates in the caches, so every field that affects
// estimation is folded in.
func HashWorkload(t *topo.Topology, flows []workload.Flow) WorkloadHash {
	h := fnv64(fnvOffset64)
	h.mix(uint64(len(t.Links)))
	for i := range t.Links {
		l := &t.Links[i]
		h.mix(uint64(l.Src)<<32 | uint64(uint32(l.Dst)))
		h.mix(uint64(l.Rate))
		h.mix(uint64(l.Delay))
	}
	h.mix(uint64(len(flows)))
	for i := range flows {
		f := &flows[i]
		h.mix(uint64(f.ID)<<32 | uint64(uint32(f.Src)))
		h.mix(uint64(uint32(f.Dst)))
		h.mix(uint64(f.Size))
		h.mix(uint64(f.Arrival))
		for _, l := range f.Route {
			h.mix(uint64(l))
		}
	}
	return WorkloadHash(h)
}

// EstimateKey names one finished estimate: the workload (and topology), the
// network configuration, the backend, the sampling budget and seed, and —
// for the ML backend — the model backend kind and version, so checkpoint
// hot-reloads never serve estimates from an older model and distinct
// inference backends (float vs int8) never share entries.
type EstimateKey struct {
	Workload WorkloadHash
	Cfg      packetsim.Config
	Method   Method
	NumPaths int
	Seed     uint64
	Model    uint64 // model fingerprint; 0 for model-free methods
	Backend  string // model backend kind; "" for model-free methods
}

// Digest folds every key field into one uint64, giving the cluster's
// rendezvous hash a stable byte string to place the key with. Float fields
// hash by bit pattern, so two keys compare equal iff their digest inputs
// match.
func (k EstimateKey) Digest() uint64 {
	h := fnv64(fnvOffset64)
	h.mix(uint64(k.Workload))
	h.mix(uint64(k.Cfg.CC))
	h.mix(uint64(k.Cfg.InitWindow))
	h.mix(uint64(k.Cfg.Buffer))
	if k.Cfg.PFC {
		h.mix(1)
	} else {
		h.mix(0)
	}
	h.mix(uint64(k.Cfg.RTO))
	h.mix(uint64(k.Cfg.DCTCPK))
	h.mix(uint64(k.Cfg.DCQCNKmin))
	h.mix(uint64(k.Cfg.DCQCNKmax))
	h.mix(math.Float64bits(k.Cfg.HPCCEta))
	h.mix(math.Float64bits(float64(k.Cfg.HPCCRateAI)))
	h.mix(uint64(k.Cfg.TimelyTLow))
	h.mix(uint64(k.Cfg.TimelyTHigh))
	h.mix(uint64(k.Method))
	h.mix(uint64(k.NumPaths))
	h.mix(k.Seed)
	h.mix(k.Model)
	h.mix(uint64(len(k.Backend)))
	for i := 0; i < len(k.Backend); i++ {
		h.mix(uint64(k.Backend[i]))
	}
	return uint64(h)
}

// PeerFetch is the cache's second tier: given a key this replica does not
// hold, fetch it from the key's hash owner elsewhere in the fleet. ok
// reports a hit; failures (peer down, timeout, miss) are all "no".
type PeerFetch func(ctx context.Context, key EstimateKey) (*Estimate, bool)

// PeerPut offers a freshly computed estimate to the key's hash owner so
// later misses anywhere in the fleet find it there. Implementations are
// expected to be asynchronous and best-effort.
type PeerPut func(key EstimateKey, res *Estimate)

// EstimateCache is a synchronized LRU of finished estimates with
// single-flight semantics: concurrent requests for the same key share one
// computation instead of duplicating work. It generalizes the one-entry
// per-config cache the query REPL used to keep, and is shared by the REPL
// and the estimation service.
//
// When the serving layer runs clustered, the cache becomes two-tier: tier
// one is the local LRU (plus an "owned" LRU holding entries this replica is
// the fleet-wide hash owner of), tier two is a peer fetch from the key's
// owner, consulted on local miss before computing. Computed entries are
// offered back to their owner via PeerPut, so the fleet's aggregate cache
// capacity scales with replica count instead of each replica thrashing its
// own LRU independently.
type EstimateCache struct {
	mu       sync.Mutex
	lru      *cache.LRU[EstimateKey, *Estimate]
	owned    *cache.LRU[EstimateKey, *Estimate]
	inflight map[EstimateKey]*inflightEstimate

	peerFetch PeerFetch
	peerPut   PeerPut

	hits       atomic.Int64
	misses     atomic.Int64
	peerHits   atomic.Int64
	peerMisses atomic.Int64
}

type inflightEstimate struct {
	done chan struct{}
	res  *Estimate
	err  error
}

// NewEstimateCache returns a cache holding up to capacity finished
// estimates (capacity <= 0 defaults to 64). The owned tier — populated only
// when a cluster peer tier is installed — holds up to the same again.
func NewEstimateCache(capacity int) *EstimateCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &EstimateCache{
		lru:      cache.New[EstimateKey, *Estimate](capacity),
		owned:    cache.New[EstimateKey, *Estimate](capacity),
		inflight: make(map[EstimateKey]*inflightEstimate),
	}
}

// SetPeerTier installs the cluster hooks that turn the cache two-tier:
// fetch consults a key's hash owner on local miss, put offers computed
// entries to their owner. Either may be nil. Install before serving;
// the hooks are read without synchronization on the miss path.
func (c *EstimateCache) SetPeerTier(fetch PeerFetch, put PeerPut) {
	c.mu.Lock()
	c.peerFetch = fetch
	c.peerPut = put
	c.mu.Unlock()
}

// Do returns the cached estimate for key, or computes it via compute. The
// second result reports whether the value came from a cache tier (including
// joining another caller's in-flight computation or a peer fetch). Errors
// are not cached; if an in-flight leader is cancelled, one waiter takes
// over and recomputes.
func (c *EstimateCache) Do(ctx context.Context, key EstimateKey,
	compute func() (*Estimate, error)) (*Estimate, bool, error) {

	for {
		c.mu.Lock()
		if res, ok := c.lru.Get(key); ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return res, true, nil
		}
		if res, ok := c.owned.Get(key); ok {
			// Promote: an entry this replica owns fleet-wide is as good as a
			// local hit; copying it into tier one keeps it hot for repeats.
			c.lru.Add(key, res)
			c.mu.Unlock()
			c.hits.Add(1)
			return res, true, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if call.err == nil {
				c.hits.Add(1)
				return call.res, true, nil
			}
			if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
				// The leader's request was abandoned, not the work itself
				// failed — retry (possibly becoming the new leader).
				if ctx.Err() != nil {
					return nil, false, ctx.Err()
				}
				continue
			}
			return nil, false, call.err
		}
		call := &inflightEstimate{done: make(chan struct{})}
		c.inflight[key] = call
		fetch, put := c.peerFetch, c.peerPut
		c.mu.Unlock()

		// Tier two: ask the key's hash owner before paying for a compute.
		// The fetch runs outside the lock (it is a network call) but inside
		// the single-flight window, so concurrent same-key requests wait on
		// this one fetch/compute rather than stampeding the owner.
		if fetch != nil {
			if res, ok := fetch(ctx, key); ok {
				c.peerHits.Add(1)
				c.mu.Lock()
				delete(c.inflight, key)
				c.lru.Add(key, res)
				c.mu.Unlock()
				call.res, call.err = res, nil
				close(call.done)
				return res, true, nil
			}
			c.peerMisses.Add(1)
			if ctx.Err() != nil {
				c.resolve(key, call, nil, ctx.Err())
				return nil, false, ctx.Err()
			}
		}

		c.misses.Add(1)
		res, err := compute()
		c.resolve(key, call, res, err)
		if err == nil && put != nil {
			put(key, res)
		}
		return res, false, err
	}
}

// resolve finishes an in-flight computation: caches a success and wakes the
// waiters with the outcome.
func (c *EstimateCache) resolve(key EstimateKey, call *inflightEstimate, res *Estimate, err error) {
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.lru.Add(key, res)
	}
	c.mu.Unlock()
	call.res, call.err = res, err
	close(call.done)
}

// Get returns the cached estimate for key without computing or touching the
// peer tier.
func (c *EstimateCache) Get(key EstimateKey) (*Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if res, ok := c.lru.Get(key); ok {
		return res, true
	}
	return c.owned.Get(key)
}

// Fetch answers a peer's cachefetch for a key this replica owns: a hit in
// either local tier returns immediately; if the key is currently being
// computed here, the caller joins that computation (bounded by ctx) instead
// of recomputing on its side — single-flight held across the fleet. A miss
// is (nil, false, nil).
func (c *EstimateCache) Fetch(ctx context.Context, key EstimateKey) (*Estimate, bool, error) {
	c.mu.Lock()
	if res, ok := c.owned.Get(key); ok {
		c.mu.Unlock()
		return res, true, nil
	}
	if res, ok := c.lru.Get(key); ok {
		c.mu.Unlock()
		return res, true, nil
	}
	call, ok := c.inflight[key]
	c.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	select {
	case <-call.done:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	if call.err != nil {
		return nil, false, nil
	}
	return call.res, true, nil
}

// PutOwned stores an entry this replica is the fleet-wide hash owner of
// (populated by peers after they compute, or by the owner itself). The
// owned tier is separate from the request-facing LRU so client traffic
// churning tier one cannot evict the fleet's partitioned working set.
func (c *EstimateCache) PutOwned(key EstimateKey, res *Estimate) {
	if res == nil {
		return
	}
	c.mu.Lock()
	c.owned.Add(key, res)
	c.mu.Unlock()
}

// InvalidateModel drops every cached estimate bound to a model fingerprint
// outside the keep set (0-model entries — the model-free backends — always
// survive). The keep set is variadic because one checkpoint now yields one
// fingerprint per backend kind (float, int8, ...), all of which stay valid
// across a reload to the same weights. Reload broadcasts call this on each
// replica so no tier can serve results from a checkpoint the fleet has
// moved off of. Returns the number of entries dropped.
func (c *EstimateCache) InvalidateModel(keep ...uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := func(fp uint64) bool {
		for _, k := range keep {
			if fp == k {
				return true
			}
		}
		return false
	}
	dropped := 0
	for _, lru := range [...]*cache.LRU[EstimateKey, *Estimate]{c.lru, c.owned} {
		for _, key := range lru.Keys() {
			if key.Model != 0 && !kept(key.Model) {
				lru.Remove(key)
				dropped++
			}
		}
	}
	return dropped
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
	// Two-tier counters: local misses answered by the key's hash owner
	// elsewhere in the fleet, and fetches that came back empty.
	PeerHits   int64
	PeerMisses int64
	// OwnedEntries counts entries held for the fleet as this key's owner.
	OwnedEntries int
}

// Stats snapshots hit/miss counters and the current entry count.
func (c *EstimateCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	ownedEntries := c.owned.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Entries:      entries,
		PeerHits:     c.peerHits.Load(),
		PeerMisses:   c.peerMisses.Load(),
		OwnedEntries: ownedEntries,
	}
}

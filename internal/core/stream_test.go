package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"m3/internal/faultinject"
	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/pool"
)

// failingPredictor wraps a real backend and starts returning errors after
// failAfter successful PredictBatch calls (0 = fail immediately). It stands
// in for a model that breaks mid-estimate, which the faultinject hooks can't
// express (they fire only after a successful predict).
type failingPredictor struct {
	inner     model.Predictor
	failAfter int32
	calls     atomic.Int32
}

func (f *failingPredictor) PredictBatch(ctx context.Context, samples []*model.Sample) ([][]float64, error) {
	if f.calls.Add(1) > f.failAfter {
		return nil, errors.New("injected predict failure")
	}
	return f.inner.PredictBatch(ctx, samples)
}

func (f *failingPredictor) Fingerprint() uint64 { return f.inner.Fingerprint() }
func (f *failingPredictor) SelfCheck() error    { return f.inner.SelfCheck() }
func (f *failingPredictor) Kind() string        { return f.inner.Kind() }

// TestStreamedMatchesStagedBitIdentical is the pipelined-parity property
// test (run with -count=2 under -race by scripts/check.sh): for both
// backends, across seeds and micro-batch sizes, the streaming pipeline must
// reproduce the staged pipeline's per-path outputs bit for bit — batch
// composition by completion order is invisible because PredictBatch output
// per sample is independent of its batchmates.
func TestStreamedMatchesStagedBitIdentical(t *testing.T) {
	net := tinyTrainedNet(t)
	q, err := model.Quantize(net)
	if err != nil {
		t.Fatal(err)
	}
	ft, flows := testWorkload(t, 900, 31)
	cfg := packetsim.DefaultConfig()
	p := NewPool(4)
	defer p.Close()
	for _, backend := range []model.Predictor{net, model.Predictor(q)} {
		for _, bs := range []int{1, 5, DefaultBatchSize} {
			for seed := uint64(1); seed <= 2; seed++ {
				name := fmt.Sprintf("%s/bs=%d/seed=%d", backend.Kind(), bs, seed)
				run := func(staged bool) *ShardResult {
					est := NewEstimator(backend, WithNumPaths(50), WithSeed(seed),
						WithBatchSize(bs), WithPool(p), WithStagedPipeline(staged))
					plan, err := est.Plan(ft.Topology, flows)
					if err != nil {
						t.Fatal(err)
					}
					sr, err := est.RunShard(context.Background(), plan.D, plan.Distinct, plan.Mult, cfg)
					if err != nil {
						t.Fatal(err)
					}
					return sr
				}
				want, got := run(true), run(false)
				if len(want.Outs) != len(got.Outs) {
					t.Fatalf("%s: %d vs %d outputs", name, len(want.Outs), len(got.Outs))
				}
				for i := range want.Outs {
					w, g := want.Outs[i], got.Outs[i]
					if w.Mult != g.Mult || fmt.Sprint(w.Counts) != fmt.Sprint(g.Counts) {
						t.Fatalf("%s: path %d skeleton differs", name, i)
					}
					for b := range w.Buckets {
						if len(w.Buckets[b]) != len(g.Buckets[b]) {
							t.Fatalf("%s: path %d bucket %d length differs", name, i, b)
						}
						for j := range w.Buckets[b] {
							if math.Float64bits(w.Buckets[b][j]) != math.Float64bits(g.Buckets[b][j]) {
								t.Fatalf("%s: path %d bucket %d[%d]: streamed %v != staged %v",
									name, i, b, j, g.Buckets[b][j], w.Buckets[b][j])
							}
						}
					}
				}
			}
		}
	}
}

// TestStreamedPredictErrorDegradesToFallback: a predictor that dies
// mid-stream must degrade the failed batches to the flowSim numbers (the
// whole run, here, since every call fails) and still produce the exact
// no-ML estimate, under the streaming pipeline.
func TestStreamedPredictErrorDegradesToFallback(t *testing.T) {
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 1200, 1)
	cfg := packetsim.DefaultConfig()
	fp := &failingPredictor{inner: net, failAfter: 0}
	est := NewEstimator(fp, WithNumPaths(40), WithSeed(3), WithBatchSize(8),
		WithFlowSimFallback(true))
	res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedPaths != res.DistinctPaths {
		t.Errorf("Degraded=%v DegradedPaths=%d/%d, want whole run degraded",
			res.Degraded, res.DegradedPaths, res.DistinctPaths)
	}
	fs := NewEstimator(nil, WithNumPaths(40), WithSeed(3), WithMethod(MethodFlowSim))
	want, err := fs.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99() != want.P99() {
		t.Errorf("degraded p99 %v != flowSim p99 %v", res.P99(), want.P99())
	}
}

// TestStreamedPredictErrorCancelsFeaturize: with fallback off, the first
// predict failure must cancel the in-flight featurize stage — the error
// comes back promptly with most of the sampled paths never simulated.
func TestStreamedPredictErrorCancelsFeaturize(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 1200, 1)
	cfg := packetsim.DefaultConfig()

	var featurized atomic.Int32
	faultinject.Set("core.path", func(any) { featurized.Add(1) })

	fp := &failingPredictor{inner: net, failAfter: 0}
	est := NewEstimator(fp, WithNumPaths(200), WithSeed(3), WithBatchSize(2))
	plan, err := est.Plan(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	_, err = est.RunShard(context.Background(), plan.D, plan.Distinct, plan.Mult, cfg)
	if err == nil || !strings.Contains(err.Error(), "injected predict failure") {
		t.Fatalf("RunShard = %v, want injected predict failure", err)
	}
	if n := int(featurized.Load()); n >= len(plan.Distinct) {
		t.Errorf("featurized %d of %d paths; predict failure did not cancel the featurize stage",
			n, len(plan.Distinct))
	}
}

// TestStreamedPredictPanicFailsRun: a panic in a streamed predict task is a
// bug, not a degradation — even with fallback enabled it must surface as a
// typed *pool.PanicError (and leave the estimator reusable), exactly like
// the staged pipeline always did.
func TestStreamedPredictPanicFailsRun(t *testing.T) {
	t.Cleanup(faultinject.Clear)
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 1200, 1)
	cfg := packetsim.DefaultConfig()

	fired := atomic.Bool{}
	faultinject.Set("core.predict", func(any) {
		if fired.CompareAndSwap(false, true) {
			panic("injected predict panic")
		}
	})
	est := NewEstimator(net, WithNumPaths(40), WithSeed(3), WithBatchSize(4),
		WithFlowSimFallback(true))
	_, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T (%v), want *pool.PanicError", err, err)
	}
	if pe.Value != "injected predict panic" {
		t.Errorf("panic value = %v", pe.Value)
	}

	faultinject.Clear()
	res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		t.Fatalf("estimator unusable after recovered predict panic: %v", err)
	}
	if res.Degraded {
		t.Error("healthy rerun reported degraded")
	}
}

// TestStreamedWallTimings: a successful streamed ML estimate must report
// wall-clock extents for both stages, an overlap no larger than the shorter
// stage's wall, and an OverlapRatio in [0, 1]; the staged pipeline must
// report zero overlap.
func TestStreamedWallTimings(t *testing.T) {
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 900, 7)
	cfg := packetsim.DefaultConfig()
	for _, staged := range []bool{false, true} {
		est := NewEstimator(net, WithNumPaths(40), WithSeed(2), WithBatchSize(4),
			WithStagedPipeline(staged))
		res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stages
		if st.PathSimWall <= 0 || st.PredictWall <= 0 {
			t.Errorf("staged=%v: walls PathSim=%v Predict=%v, want both > 0",
				staged, st.PathSimWall, st.PredictWall)
		}
		if st.Overlap < 0 || st.Overlap > min(st.PathSimWall, st.PredictWall) {
			t.Errorf("staged=%v: overlap %v out of range (walls %v/%v)",
				staged, st.Overlap, st.PathSimWall, st.PredictWall)
		}
		if r := res.OverlapRatio(); r < 0 || r > 1 {
			t.Errorf("staged=%v: OverlapRatio = %v, want [0,1]", staged, r)
		}
		if staged && st.Overlap != 0 {
			t.Errorf("staged pipeline reported overlap %v, want 0", st.Overlap)
		}
	}
}

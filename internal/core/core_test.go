package core

import (
	"context"
	"math"
	"testing"

	"m3/internal/model"
	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/stats"
	"m3/internal/topo"
	"m3/internal/workload"
)

func testWorkload(t *testing.T, n int, seed uint64) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: n, Sizes: workload.WebServer, Matrix: workload.MatrixB(32, r),
		Burstiness: 1.5, MaxLoad: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, flows
}

// tinyTrainedNet trains a very small model on a very small dataset — enough
// to exercise the full pipeline deterministically.
func tinyTrainedNet(t *testing.T) *model.Net {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Dim = 16
	cfg.Heads = 2
	cfg.Layers = 1
	cfg.Hidden = 32
	net, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := model.Generate(context.Background(), model.DataConfig{
		Scenarios: 12, FgPerScenario: 80, BgPerLink: 0.4,
		Hops: []int{2, 4}, Seed: 11, Workers: 4,
		CCs: []packetsim.CCType{packetsim.DCTCP},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Train(samples, model.TrainOptions{
		Epochs: 8, Batch: 4, LR: 2e-3, ValFrac: 0.1, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestEstimateFlowSimMethod(t *testing.T) {
	ft, flows := testWorkload(t, 1200, 1)
	est := NewEstimator(nil, WithNumPaths(100), WithMethod(MethodFlowSim), WithSeed(3))
	res, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctPaths == 0 || res.DistinctPaths > 100 {
		t.Errorf("distinct paths = %d", res.DistinctPaths)
	}
	if res.TotalPaths < res.DistinctPaths {
		t.Error("total < distinct")
	}
	p99 := res.P99()
	if math.IsNaN(p99) || p99 <= 0 {
		t.Errorf("combined p99 = %v", p99)
	}
}

func TestEstimateNS3PathTracksGroundTruth(t *testing.T) {
	// The decomposition oracle should land near the full simulation (§2.1
	// reports ~2% error at paper scale; allow a loose band at test scale).
	ft, flows := testWorkload(t, 1500, 2)
	cfg := packetsim.DefaultConfig()
	gt, err := RunGroundTruth(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(nil, WithNumPaths(150), WithMethod(MethodNS3Path), WithSeed(4))
	res, err := est.Estimate(context.Background(), ft.Topology, flows, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := stats.AbsRelError(res.P99(), gt.P99())
	if e > 0.5 {
		t.Errorf("ns-3-path p99 error = %v (est %v, truth %v)", e, res.P99(), gt.P99())
	}
}

func TestEstimateMLRuns(t *testing.T) {
	net := tinyTrainedNet(t)
	ft, flows := testWorkload(t, 1000, 5)
	est := NewEstimator(net, WithNumPaths(80), WithSeed(6))
	res, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p99 := res.P99()
	if math.IsNaN(p99) || p99 < 1 {
		t.Errorf("ML p99 = %v", p99)
	}
	per := res.P99PerBucket()
	any := false
	for _, v := range per {
		if !math.IsNaN(v) {
			any = true
			if v < 1 {
				t.Errorf("bucket p99 = %v < 1", v)
			}
		}
	}
	if !any {
		t.Error("all buckets empty")
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

func TestEstimateDeterministicAcrossParallelism(t *testing.T) {
	ft, flows := testWorkload(t, 800, 7)
	mk := func(workers int) float64 {
		est := NewEstimator(nil, WithNumPaths(60), WithMethod(MethodFlowSim), WithSeed(9), WithWorkers(workers))
		res, err := est.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.P99()
	}
	if a, b := mk(1), mk(8); a != b {
		t.Errorf("parallelism changed estimate: %v vs %v", a, b)
	}
}

func TestEstimateValidation(t *testing.T) {
	ft, flows := testWorkload(t, 50, 8)
	cfg := packetsim.DefaultConfig()
	ctx := context.Background()
	e := NewEstimator(nil, WithNumPaths(10)) // MethodML but no net
	if _, err := e.Estimate(ctx, ft.Topology, flows, cfg); err == nil {
		t.Error("MethodML without model accepted")
	}
	e = NewEstimator(nil, WithNumPaths(0), WithMethod(MethodFlowSim))
	if _, err := e.Estimate(ctx, ft.Topology, flows, cfg); err == nil {
		t.Error("zero paths accepted")
	}
	e = NewEstimator(nil, WithNumPaths(10), WithMethod(MethodFlowSim))
	bad := cfg
	bad.InitWindow = 0
	if _, err := e.Estimate(ctx, ft.Topology, flows, bad); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := e.Estimate(ctx, ft.Topology, nil, cfg); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestGroundTruthBuckets(t *testing.T) {
	ft, flows := testWorkload(t, 600, 10)
	gt, err := RunGroundTruth(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gt.P99() < 1 {
		t.Errorf("ground-truth p99 = %v", gt.P99())
	}
	per := gt.P99PerBucket()
	// WebServer workload must populate the small buckets.
	if math.IsNaN(per[0]) || per[0] < 1 {
		t.Errorf("bucket 0 p99 = %v", per[0])
	}
	if gt.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestMethodString(t *testing.T) {
	if MethodML.String() != "m3" || MethodFlowSim.String() != "flowsim" ||
		MethodNS3Path.String() != "ns3-path" {
		t.Error("method names wrong")
	}
}

package core

import (
	"context"
	"errors"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"m3/internal/packetsim"
	"m3/internal/parsimon"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/workload"
)

// Memory ceilings for the 100k-host smoke, in bytes. Live heap after the
// clustered ground-truth pass must stay under heapCeiling, and the process's
// total OS reservation (runtime high-water mark) under sysCeiling. Measured
// on the dense-slab topology: ~15 MB live heap for the built 102k-node
// graph, ~250 MB Sys across the whole run. A per-pair route index at this
// scale costs GBs (100k² pairs), so ceilings an order of magnitude above the
// measurement still catch any reintroduction of per-pair state.
const (
	smokeHeapCeiling = 512 << 20  // 512 MiB
	smokeSysCeiling  = 1536 << 20 // 1.5 GiB
)

func liveHeap() (heap, sys uint64) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc, ms.Sys
}

// TestScaleSmoke100k is the O(100k)-host end-to-end smoke (gated behind
// M3_SCALE_SMOKE=1; scripts/check.sh runs it under a time budget): build the
// 100,352-host fat-tree, validate it structurally, spot-check routing, run a
// short clustered ground-truth pass under a hard memory ceiling, and verify
// cancellation stays prompt and the pool reusable at this scale.
func TestScaleSmoke100k(t *testing.T) {
	if os.Getenv("M3_SCALE_SMOKE") == "" {
		t.Skip("set M3_SCALE_SMOKE=1 to run the 100k-host smoke")
	}

	ft, err := topo.HugeFatTree()
	if err != nil {
		t.Fatal(err)
	}
	if n := ft.Cfg.NumHosts(); n < 100_000 {
		t.Fatalf("topology has %d hosts, want >= 100k", n)
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("topology: %d nodes, %d links, %d hosts",
		ft.NumNodes(), ft.NumLinks(), ft.Cfg.NumHosts())

	// Routing spot-check: deterministic host pairs covering intra-rack,
	// intra-pod, and cross-pod cases; every route must be a connected chain.
	r := routing.NewFatTreeRouter(ft)
	racks := ft.Cfg.NumRacks()
	for i := 0; i < 512; i++ {
		srcRack := (i * 37) % racks
		dstRack := (i*151 + i/7) % racks
		src := ft.HostsByRack[srcRack][i%ft.Cfg.HostsPerRack]
		dst := ft.HostsByRack[dstRack][(i*13+1)%ft.Cfg.HostsPerRack]
		if src == dst {
			continue
		}
		route, err := r.Route(src, dst, uint64(i))
		if err != nil {
			t.Fatalf("pair %d (%d->%d): %v", i, src, dst, err)
		}
		if err := ft.ValidateRoute(src, dst, route); err != nil {
			t.Fatalf("pair %d (%d->%d): %v", i, src, dst, err)
		}
	}

	heap0, _ := liveHeap()
	t.Logf("live heap after topology build: %.2f MB", float64(heap0)/(1<<20))

	flows, err := workload.Generate(ft, r, workload.Spec{
		NumFlows: 30_000, Sizes: workload.WebServer,
		Matrix: workload.MatrixB(racks, rng.New(11)), Burstiness: 1.5,
		MaxLoad: 0.4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := packetsim.DefaultConfig()
	p := NewPool(0)
	defer p.Close()
	opts := parsimon.Options{Cluster: true, ClusterThreshold: 1}

	// Cancellation at scale: aborting mid-clustered-run must return promptly
	// with ctx.Err(), and the pool must stay usable for the real pass below.
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	if _, err := RunClusteredGroundTruth(cctx, ft.Topology, flows, cfg, p, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if d := time.Since(t0); d > 30*time.Second {
		t.Fatalf("cancellation took %v at 100k scale, want prompt return", d)
	}

	gt, err := RunClusteredGroundTruth(context.Background(), ft.Topology, flows, cfg, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clustered ground truth: %d/%d links simulated in %v",
		gt.LinksSimulated, gt.LinksTotal, gt.Elapsed)
	if gt.LinksSimulated == 0 || gt.LinksSimulated >= gt.LinksTotal {
		t.Fatalf("clustering ineffective: %d/%d links", gt.LinksSimulated, gt.LinksTotal)
	}
	for i, s := range gt.Slowdown {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 1 {
			t.Fatalf("flow %d slowdown %v", i, s)
		}
	}

	heap, sys := liveHeap()
	t.Logf("live heap after run: %.2f MB, Sys %.2f MB", float64(heap)/(1<<20), float64(sys)/(1<<20))
	if heap > smokeHeapCeiling {
		t.Fatalf("live heap %d exceeds ceiling %d", heap, smokeHeapCeiling)
	}
	if sys > smokeSysCeiling {
		t.Fatalf("runtime Sys %d exceeds ceiling %d", sys, smokeSysCeiling)
	}
}

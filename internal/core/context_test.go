package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"m3/internal/packetsim"
	"m3/internal/pathsim"
)

// TestEstimateContextCancellation: cancelling the context mid-estimate
// aborts the in-flight path simulations promptly instead of running every
// sampled path to completion.
func TestEstimateContextCancellation(t *testing.T) {
	ft, flows := testWorkload(t, 4000, 1)
	d, err := pathsim.Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	// ns3-path is the slow backend: per-path packet simulation.
	est := NewEstimator(nil, WithNumPaths(300), WithMethod(MethodNS3Path), WithSeed(3), WithDecomposition(d))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = est.Estimate(ctx, ft.Topology, flows, packetsim.DefaultConfig())
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("estimate returned %v after cancellation", elapsed)
	}
}

// TestEstimateDeadline: a deadline in the past fails immediately with
// DeadlineExceeded before any path work.
func TestEstimateDeadline(t *testing.T) {
	ft, flows := testWorkload(t, 800, 1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	est := NewEstimator(nil, WithNumPaths(50), WithMethod(MethodFlowSim), WithSeed(1))
	_, err := est.Estimate(ctx, ft.Topology, flows, packetsim.DefaultConfig())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEstimateSharedPoolAndDecomp: an estimator wired the way the serving
// layer wires it (shared pool, precomputed decomposition) matches the
// defaults path.
func TestEstimateSharedPoolAndDecomp(t *testing.T) {
	ft, flows := testWorkload(t, 1200, 1)
	d, err := pathsim.Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()

	plain := NewEstimator(nil, WithNumPaths(80), WithMethod(MethodFlowSim), WithSeed(3))
	wired := NewEstimator(nil, WithNumPaths(80), WithMethod(MethodFlowSim), WithSeed(3),
		WithPool(pool), WithDecomposition(d))
	a, err := plain.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := wired.Estimate(context.Background(), ft.Topology, flows, packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.P99() != b.P99() || a.DistinctPaths != b.DistinctPaths {
		t.Errorf("pool/decomp wiring changed results: %v vs %v", a.P99(), b.P99())
	}
	if b.Stages.Decompose >= a.Stages.Decompose && a.Stages.Decompose > 0 {
		// Precomputed decomposition should make that stage ~free.
		t.Logf("decompose stages: plain=%v wired=%v", a.Stages.Decompose, b.Stages.Decompose)
	}
}

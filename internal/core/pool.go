package core

import "m3/internal/pool"

// Pool is the shared fixed-size worker pool (see internal/pool). The alias
// keeps the estimator-facing API (WithPool, serve's pool wiring) in core
// while letting layers below core — Parsimon's per-link fan-out, training
// dataset generation — schedule on the same pool type without importing the
// estimator.
type Pool = pool.Pool

// NewPool starts a pool with the given worker count (<= 0 means
// GOMAXPROCS). Close it when done to release the worker goroutines.
func NewPool(workers int) *Pool { return pool.New(workers) }

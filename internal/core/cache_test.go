package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"m3/internal/packetsim"
)

func testKey(seed uint64) EstimateKey {
	return EstimateKey{
		Workload: 42, Cfg: packetsim.DefaultConfig(),
		Method: MethodML, NumPaths: 100, Seed: seed, Model: 7,
	}
}

func TestEstimateCacheHitMiss(t *testing.T) {
	c := NewEstimateCache(4)
	want := &Estimate{DistinctPaths: 1}
	got, cached, err := c.Do(context.Background(), testKey(1),
		func() (*Estimate, error) { return want, nil })
	if err != nil || cached || got != want {
		t.Fatalf("first Do = (%v, %v, %v)", got, cached, err)
	}
	got, cached, err = c.Do(context.Background(), testKey(1),
		func() (*Estimate, error) { t.Fatal("recomputed"); return nil, nil })
	if err != nil || !cached || got != want {
		t.Fatalf("second Do = (%v, %v, %v)", got, cached, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEstimateCacheErrorNotCached(t *testing.T) {
	c := NewEstimateCache(4)
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), testKey(1),
		func() (*Estimate, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	want := &Estimate{}
	got, cached, err := c.Do(context.Background(), testKey(1),
		func() (*Estimate, error) { return want, nil })
	if err != nil || cached || got != want {
		t.Fatalf("Do after error = (%v, %v, %v)", got, cached, err)
	}
}

// TestEstimateCacheSingleFlight launches many concurrent requests for one
// key: exactly one compute runs, every other caller joins it as a hit.
func TestEstimateCacheSingleFlight(t *testing.T) {
	c := NewEstimateCache(4)
	var computes atomic.Int64
	gate := make(chan struct{})
	want := &Estimate{DistinctPaths: 9}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]*Estimate, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.Do(context.Background(), testKey(1), func() (*Estimate, error) {
				computes.Add(1)
				<-gate // hold every follower in the wait path
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
	for i, res := range results {
		if res != want {
			t.Fatalf("caller %d got %v", i, res)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEstimateCacheLeaderCancelled: when the computing leader is cancelled,
// a waiting follower takes over and recomputes instead of failing.
func TestEstimateCacheLeaderCancelled(t *testing.T) {
	c := NewEstimateCache(4)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	want := &Estimate{DistinctPaths: 5}

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(leaderCtx, testKey(1), func() (*Estimate, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
	}()
	<-leaderIn
	followerDone := make(chan struct{})
	var followerRes *Estimate
	var followerErr error
	go func() {
		defer close(followerDone)
		followerRes, _, followerErr = c.Do(context.Background(), testKey(1),
			func() (*Estimate, error) { return want, nil })
	}()
	cancelLeader()
	wg.Wait()
	<-followerDone
	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader err = %v", leaderErr)
	}
	if followerErr != nil || followerRes != want {
		t.Errorf("follower = (%v, %v), want recomputed result", followerRes, followerErr)
	}
}

func TestEstimateCacheWaiterContext(t *testing.T) {
	c := NewEstimateCache(4)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), testKey(1), func() (*Estimate, error) {
			close(leaderIn)
			<-release
			return &Estimate{}, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, testKey(1),
		func() (*Estimate, error) { return &Estimate{}, nil })
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("waiter err = %v, want context.Canceled", err)
	}
}

func TestHashWorkloadSensitivity(t *testing.T) {
	ft, flows := testWorkload(t, 500, 1)
	h1 := HashWorkload(ft.Topology, flows)
	if h2 := HashWorkload(ft.Topology, flows); h2 != h1 {
		t.Error("hash not deterministic")
	}
	flows[250].Size++
	if h2 := HashWorkload(ft.Topology, flows); h2 == h1 {
		t.Error("hash ignores flow size")
	}
	flows[250].Size--
	_, other := testWorkload(t, 500, 2)
	if h2 := HashWorkload(ft.Topology, other); h2 == h1 {
		t.Error("distinct workloads share a hash")
	}
}

// TestEstimateCacheBackendKeying: two keys identical except for the backend
// kind are distinct cache entries with distinct digests — a float estimate
// must never answer an int8 request (different arithmetic, different
// numbers), even under the same model weights.
func TestEstimateCacheBackendKeying(t *testing.T) {
	kf := testKey(1)
	kf.Backend = "net"
	kq := testKey(1)
	kq.Backend = "net-int8"
	if kf.Digest() == kq.Digest() {
		t.Fatal("backend kind does not reach the key digest")
	}
	c := NewEstimateCache(4)
	float := &Estimate{DistinctPaths: 1}
	int8e := &Estimate{DistinctPaths: 2}
	if _, cached, _ := c.Do(context.Background(), kf,
		func() (*Estimate, error) { return float, nil }); cached {
		t.Fatal("first float Do hit")
	}
	got, cached, err := c.Do(context.Background(), kq,
		func() (*Estimate, error) { return int8e, nil })
	if err != nil || cached || got != int8e {
		t.Fatalf("int8 Do = (%v, %v, %v), want fresh compute", got, cached, err)
	}
	if got, cached, _ := c.Do(context.Background(), kf,
		func() (*Estimate, error) { t.Fatal("recomputed"); return nil, nil }); !cached || got != float {
		t.Fatalf("float repeat = (%v, %v), want hit on the float entry", got, cached)
	}
}

// TestInvalidateModelKeepSet: one model swap yields one fingerprint per
// backend kind; InvalidateModel keeps every listed fingerprint and drops the
// rest, and model-free entries (Model == 0) are never touched.
func TestInvalidateModelKeepSet(t *testing.T) {
	c := NewEstimateCache(8)
	put := func(model uint64, backend string, seed uint64) EstimateKey {
		k := testKey(seed)
		k.Model = model
		k.Backend = backend
		if model == 0 {
			k.Method = MethodFlowSim
		}
		_, _, _ = c.Do(context.Background(), k, func() (*Estimate, error) { return &Estimate{}, nil })
		return k
	}
	oldF := put(7, "net", 1)
	oldQ := put(8, "net-int8", 2)
	newF := put(100, "net", 3)
	newQ := put(200, "net-int8", 4)
	free := put(0, "", 5)
	if dropped := c.InvalidateModel(100, 200); dropped != 2 {
		t.Fatalf("dropped %d entries, want 2", dropped)
	}
	for _, tc := range []struct {
		key  EstimateKey
		want bool
		name string
	}{
		{oldF, false, "old float"},
		{oldQ, false, "old int8"},
		{newF, true, "new float"},
		{newQ, true, "new int8"},
		{free, true, "model-free"},
	} {
		if _, ok := c.Get(tc.key); ok != tc.want {
			t.Errorf("%s entry present=%v, want %v", tc.name, ok, tc.want)
		}
	}
}

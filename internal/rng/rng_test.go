package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split children correlated: %d/100 identical", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(9)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-4.0) > 0.05 {
		t.Errorf("exp mean = %v, want ~4", mean)
	}
}

func TestGaussMoments(t *testing.T) {
	r := New(13)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Gauss()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gauss mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gauss variance = %v, want ~1", variance)
	}
}

func TestLogNormalMean(t *testing.T) {
	sigma := 1.5
	targetMean := 1000.0
	mu := MuForMean(targetMean, sigma)
	if math.Abs(LogNormalMean(mu, sigma)-targetMean) > 1e-9 {
		t.Fatalf("MuForMean/LogNormalMean inconsistent")
	}
	r := New(17)
	var sum float64
	n := 2000000
	for i := 0; i < n; i++ {
		sum += r.LogNormal(mu, sigma)
	}
	mean := sum / float64(n)
	if math.Abs(mean-targetMean)/targetMean > 0.05 {
		t.Errorf("lognormal empirical mean = %v, want ~%v", mean, targetMean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(100, 1.5)
		if v < 100 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	r := New(23)
	scale, alpha := 100.0, 3.0
	want := scale * alpha / (alpha - 1)
	var sum float64
	n := 500000
	for i := 0; i < n; i++ {
		sum += r.Pareto(scale, alpha)
	}
	mean := sum / float64(n)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("pareto mean = %v, want ~%v", mean, want)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	r := New(31)
	weights := []float64{5, 1, 0, 4}
	s := NewSampler(weights)
	counts := make([]int, len(weights))
	n := 200000
	for i := 0; i < n; i++ {
		counts[s.Draw(r)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[2])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		got := float64(counts[i]) / float64(n)
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestSamplerUniformFallback(t *testing.T) {
	r := New(37)
	s := NewSampler([]float64{0, 0, 0})
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[s.Draw(r)]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Errorf("uniform fallback index %d drawn only %d times", i, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	f := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(43)
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	Shuffle(r, xs)
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("shuffle changed elements: %v", xs)
	}
}

// Package rng provides a small deterministic pseudo-random number generator
// and the samplers the m3 reproduction needs (lognormal inter-arrivals,
// Pareto/exponential/Gaussian/lognormal flow sizes, weighted choice).
//
// Every component of the repository takes an explicit *rng.RNG so that
// simulations, training-set generation, and experiments are reproducible from
// a single seed. The generator is PCG-XSH-RR (64-bit state, 32-bit output
// pairs combined into 64 bits), which is fast, tiny, and statistically solid
// for simulation use.
package rng

import "math"

// RNG is a deterministic random number generator. The zero value is not
// usable; construct with New.
type RNG struct {
	state uint64
	inc   uint64
	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = splitmix(seed + 0x9e3779b97f4a7c15)
	r.next32()
	return r
}

// Split derives an independent child generator. Children with distinct labels
// produce uncorrelated streams, which lets parallel path simulations stay
// deterministic regardless of execution order.
func (r *RNG) Split(label uint64) *RNG {
	return New(splitmix(r.state^splitmix(label)) ^ r.inc)
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next32())<<32 | uint64(r.next32())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Gauss returns a standard normal variate (Box-Muller with caching).
func (r *RNG) Gauss() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.Gauss()
}

// LogNormal returns a lognormal variate with the given log-space location mu
// and shape sigma. Its mean is exp(mu + sigma^2/2).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Gauss())
}

// LogNormalMean returns the mean of a LogNormal(mu, sigma) variate.
func LogNormalMean(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*sigma/2)
}

// MuForMean returns the mu that gives a LogNormal(mu, sigma) the target mean.
func MuForMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}

// Pareto returns a Pareto variate with the given scale (minimum) and shape
// alpha. Its mean is scale*alpha/(alpha-1) for alpha > 1.
func (r *RNG) Pareto(scale, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. All weights must be non-negative with a
// positive sum; otherwise it returns a uniform index.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Sampler builds an alias table for repeated weighted sampling in O(1) per
// draw. Use it when the same weight vector is sampled many times (e.g. path
// sampling with replacement).
type Sampler struct {
	prob  []float64
	alias []int
}

// NewSampler constructs the alias table for the given non-negative weights.
func NewSampler(weights []float64) *Sampler {
	n := len(weights)
	s := &Sampler{prob: make([]float64, n), alias: make([]int, n)}
	if n == 0 {
		return s
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		for i := range s.prob {
			s.prob[i] = 1
			s.alias[i] = i
		}
		return s
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s
}

// Draw returns a weighted random index.
func (s *Sampler) Draw(r *RNG) int {
	if len(s.prob) == 0 {
		panic("rng: Draw from empty Sampler")
	}
	i := r.Intn(len(s.prob))
	if r.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// Len returns the number of weights in the sampler.
func (s *Sampler) Len() int { return len(s.prob) }

// Shuffle permutes xs in place (Fisher-Yates).
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	Shuffle(r, p)
	return p
}

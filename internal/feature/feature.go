// Package feature converts flowSim outputs into the m3 model's inputs
// (§3.4): per-size-bucket slowdown percentile maps for foreground and
// per-link background traffic, and the normalized network-specification
// vector (Table 4) appended to the MLP input.
package feature

import (
	"math"
	"sync"

	"m3/internal/packetsim"
	"m3/internal/stats"
	"m3/internal/unit"
)

// NumPercentiles is the fixed percentile grid size (1%..100%).
const NumPercentiles = 100

// FeatureBucketBounds are the upper bounds of the 10 feature size buckets:
// (0,250], (250,500], ..., (50KB, inf). The paper: "10 flow size buckets,
// ranging from flows with a single packet under 250B to flows exceeding
// 50KB".
var FeatureBucketBounds = []unit.ByteSize{250, 500, 1000, 2000, 5000, 10000, 20000, 30000, 50000}

// OutputBucketBounds are the upper bounds of the 4 output buckets:
// (0,1KB], (1KB,10KB], (10KB,50KB], (50KB,inf) (§3.4).
var OutputBucketBounds = []unit.ByteSize{1000, 10000, 50000}

// NumFeatureBuckets is len(FeatureBucketBounds)+1 = 10.
const NumFeatureBuckets = 10

// NumOutputBuckets is len(OutputBucketBounds)+1 = 4.
const NumOutputBuckets = 4

// FeatureDim is the flattened size of one feature map.
const FeatureDim = NumFeatureBuckets * NumPercentiles

// OutputDim is the flattened size of the model output.
const OutputDim = NumOutputBuckets * NumPercentiles

// BucketOf returns the bucket index of size for the given bounds
// (len(bounds)+1 buckets).
func BucketOf(size unit.ByteSize, bounds []unit.ByteSize) int {
	for i, b := range bounds {
		if size <= b {
			return i
		}
	}
	return len(bounds)
}

// Map is a (buckets x NumPercentiles) slowdown percentile map, row-major.
// Empty buckets hold zeros (a value no real slowdown takes, letting the
// model distinguish absence from data).
type Map struct {
	Buckets int
	Data    []float64
	// Counts[b] is the number of flows that fell into bucket b.
	Counts []int
}

// Row returns bucket b's percentile vector.
func (m *Map) Row(b int) []float64 {
	return m.Data[b*NumPercentiles : (b+1)*NumPercentiles]
}

// buildScratch holds the per-bucket slowdown lists and the sort buffer that
// Build reuses across calls: the batched estimator featurizes hundreds of
// paths per estimate, and these intermediates dominated its garbage.
type buildScratch struct {
	perBucket [][]float64
	sortBuf   []float64
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// Build produces the percentile map of the given slowdowns bucketed by flow
// size.
func Build(sizes []unit.ByteSize, sldn []float64, bounds []unit.ByteSize) *Map {
	nb := len(bounds) + 1
	m := &Map{
		Buckets: nb,
		Data:    make([]float64, nb*NumPercentiles),
		Counts:  make([]int, nb),
	}
	sc := buildPool.Get().(*buildScratch)
	for len(sc.perBucket) < nb {
		sc.perBucket = append(sc.perBucket, nil)
	}
	perBucket := sc.perBucket[:nb]
	for b := range perBucket {
		perBucket[b] = perBucket[b][:0]
	}
	for i, s := range sizes {
		b := BucketOf(s, bounds)
		perBucket[b] = append(perBucket[b], sldn[i])
		m.Counts[b]++
	}
	for b, xs := range perBucket {
		if len(xs) == 0 {
			continue
		}
		sc.sortBuf = stats.PercentilesInto(xs, stats.PercentileGrid, m.Row(b), sc.sortBuf)
	}
	buildPool.Put(sc)
	return m
}

// BucketCounts tallies flows per size bucket without building percentile
// rows — the cheap path for callers that only need occupancy (the batched
// estimator, which gets its percentiles from the model).
func BucketCounts(sizes []unit.ByteSize, bounds []unit.ByteSize) []int {
	counts := make([]int, len(bounds)+1)
	for _, s := range sizes {
		counts[BucketOf(s, bounds)]++
	}
	return counts
}

// BuildFeature builds the standard 10-bucket feature map.
func BuildFeature(sizes []unit.ByteSize, sldn []float64) *Map {
	return Build(sizes, sldn, FeatureBucketBounds)
}

// BuildOutput builds the standard 4-bucket output/ground-truth map.
func BuildOutput(sizes []unit.ByteSize, sldn []float64) *Map {
	return Build(sizes, sldn, OutputBucketBounds)
}

// LogTransform returns log1p of every cell, the model-side input scaling
// (keeps heavy-tailed slowdowns in a trainable range; zeros stay zero so
// empty buckets remain distinguishable).
func (m *Map) LogTransform() []float64 {
	out := make([]float64, len(m.Data))
	for i, v := range m.Data {
		out[i] = math.Log1p(v)
	}
	return out
}

// SpecDim is the length of the network-specification vector.
const SpecDim = 16

// SpecVector encodes the network configuration and path BDP as the paper's
// spec input (§3.4): BDP, one-hot CC, and each Table 4 parameter normalized
// by the top of its sample-space range. Parameters of protocols other than
// the active one are zeroed so the model sees exactly the knobs in force.
func SpecVector(cfg packetsim.Config, bdp unit.ByteSize, baseRTT unit.Time) []float64 {
	v := make([]float64, SpecDim)
	v[0] = float64(bdp) / 30e3
	v[1] = baseRTT.Seconds() / 100e-6
	v[2+int(cfg.CC)] = 1 // one-hot over DCTCP, TIMELY, DCQCN, HPCC
	v[6] = float64(cfg.InitWindow) / 30e3
	v[7] = float64(cfg.Buffer) / 500e3
	if cfg.PFC {
		v[8] = 1
	}
	switch cfg.CC {
	case packetsim.DCTCP:
		v[9] = float64(cfg.DCTCPK) / 20e3
	case packetsim.DCQCN:
		v[10] = float64(cfg.DCQCNKmin) / 50e3
		v[11] = float64(cfg.DCQCNKmax) / 100e3
	case packetsim.HPCC:
		v[12] = cfg.HPCCEta
		v[13] = float64(cfg.HPCCRateAI) / float64(1000*unit.Mbps)
	case packetsim.TIMELY:
		v[14] = cfg.TimelyTLow.Seconds() / 60e-6
		v[15] = cfg.TimelyTHigh.Seconds() / 150e-6
	}
	return v
}

package feature

import (
	"math"
	"sort"
	"testing"

	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/unit"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		size unit.ByteSize
		want int
	}{
		{1, 0}, {250, 0}, {251, 1}, {500, 1}, {1000, 2}, {2000, 3},
		{5000, 4}, {10000, 5}, {20000, 6}, {30000, 7}, {50000, 8},
		{50001, 9}, {10 * unit.MB, 9},
	}
	for _, c := range cases {
		if got := BucketOf(c.size, FeatureBucketBounds); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if got := BucketOf(999, OutputBucketBounds); got != 0 {
		t.Errorf("output bucket of 999 = %d", got)
	}
	if got := BucketOf(60000, OutputBucketBounds); got != 3 {
		t.Errorf("output bucket of 60000 = %d", got)
	}
}

func TestBuildShapes(t *testing.T) {
	sizes := []unit.ByteSize{100, 600, 5 * unit.KB, 100 * unit.KB}
	sldn := []float64{1.5, 2.0, 3.0, 1.2}
	m := BuildFeature(sizes, sldn)
	if m.Buckets != NumFeatureBuckets || len(m.Data) != FeatureDim {
		t.Fatalf("feature map shape %dx%d", m.Buckets, len(m.Data))
	}
	o := BuildOutput(sizes, sldn)
	if o.Buckets != NumOutputBuckets || len(o.Data) != OutputDim {
		t.Fatalf("output map shape %dx%d", o.Buckets, len(o.Data))
	}
}

func TestBuildCountsAndRows(t *testing.T) {
	sizes := []unit.ByteSize{100, 150, 600}
	sldn := []float64{2, 4, 7}
	m := BuildFeature(sizes, sldn)
	if m.Counts[0] != 2 || m.Counts[1] != 0 || m.Counts[2] != 1 {
		t.Errorf("counts = %v", m.Counts[:3])
	}
	// Bucket 0 has {2,4}: percentile 1 ~ 2, percentile 100 = 4.
	row := m.Row(0)
	if row[0] < 2 || row[0] > 2.1 {
		t.Errorf("p1 = %v, want ~2", row[0])
	}
	if row[99] != 4 {
		t.Errorf("p100 = %v, want 4", row[99])
	}
	if !sort.Float64sAreSorted(row) {
		t.Error("percentile row not monotone")
	}
	// Single-flow bucket: constant row.
	row2 := m.Row(2)
	for _, v := range row2 {
		if v != 7 {
			t.Errorf("single-flow bucket row not constant: %v", v)
		}
	}
	// Empty bucket: zero row.
	for _, v := range m.Row(1) {
		if v != 0 {
			t.Errorf("empty bucket row not zero: %v", v)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	m := BuildFeature(nil, nil)
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("empty build should be all zeros")
		}
	}
	for _, c := range m.Counts {
		if c != 0 {
			t.Fatal("empty build should have zero counts")
		}
	}
}

func TestLogTransform(t *testing.T) {
	sizes := []unit.ByteSize{100}
	sldn := []float64{math.E - 1}
	m := BuildFeature(sizes, sldn)
	lt := m.LogTransform()
	if math.Abs(lt[0]-1) > 1e-12 {
		t.Errorf("log1p(e-1) = %v, want 1", lt[0])
	}
	// zeros stay zero
	if lt[NumPercentiles] != 0 {
		t.Error("empty cell transformed to non-zero")
	}
	if len(lt) != len(m.Data) {
		t.Error("transform changed length")
	}
}

func TestSpecVectorOneHot(t *testing.T) {
	for _, cc := range []packetsim.CCType{packetsim.DCTCP, packetsim.TIMELY, packetsim.DCQCN, packetsim.HPCC} {
		cfg := packetsim.DefaultConfig()
		cfg.CC = cc
		v := SpecVector(cfg, 15*unit.KB, 20*unit.Microsecond)
		if len(v) != SpecDim {
			t.Fatalf("spec dim %d", len(v))
		}
		hot := 0
		for i := 2; i < 6; i++ {
			if v[i] == 1 {
				hot++
				if i-2 != int(cc) {
					t.Errorf("wrong one-hot position for %v", cc)
				}
			} else if v[i] != 0 {
				t.Errorf("one-hot slot %d = %v", i, v[i])
			}
		}
		if hot != 1 {
			t.Errorf("%v: %d hot positions", cc, hot)
		}
	}
}

func TestSpecVectorParamsGated(t *testing.T) {
	cfg := packetsim.DefaultConfig()
	cfg.CC = packetsim.HPCC
	v := SpecVector(cfg, 15*unit.KB, 20*unit.Microsecond)
	if v[12] != cfg.HPCCEta {
		t.Errorf("eta = %v", v[12])
	}
	if v[9] != 0 || v[10] != 0 || v[14] != 0 {
		t.Error("inactive protocol params not zeroed")
	}
	cfg.CC = packetsim.DCTCP
	v = SpecVector(cfg, 15*unit.KB, 20*unit.Microsecond)
	if v[9] == 0 {
		t.Error("DCTCP K missing")
	}
	if v[12] != 0 {
		t.Error("HPCC eta not zeroed under DCTCP")
	}
}

func TestSpecVectorNormalizedRange(t *testing.T) {
	// Across the Table 4 sample space, encodings stay in [0, ~1.2].
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		cfg := packetsim.DefaultConfig()
		cfg.CC = packetsim.CCType(r.Intn(4))
		cfg.InitWindow = unit.ByteSize(5000 + r.Intn(25000))
		cfg.Buffer = unit.ByteSize(200000 + r.Intn(300000))
		cfg.PFC = r.Intn(2) == 0
		v := SpecVector(cfg, unit.ByteSize(r.Intn(30000)), unit.Time(r.Intn(100000)))
		for i, x := range v {
			if x < 0 || x > 1.3 || math.IsNaN(x) {
				t.Fatalf("spec[%d] = %v out of range", i, x)
			}
		}
	}
}

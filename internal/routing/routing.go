// Package routing computes static flow routes. The m3 paper assumes static
// routes known in advance (§3.6): each flow's route is fixed at arrival by
// ECMP hashing over equal-cost shortest paths.
//
// Two routers are provided: FatTreeRouter exploits fat-tree structure for
// O(path length) routing with zero per-destination state (needed for the
// 6144-host topology), and BFSRouter handles arbitrary graphs (used for
// parking lots and in tests as an oracle for the fat-tree router).
package routing

import (
	"fmt"
	"sync"

	"m3/internal/topo"
)

// Router assigns a route (a sequence of directed links) to a flow. The
// flowKey feeds the ECMP hash so that a given flow always takes the same
// path while distinct flows spread across equal-cost paths.
type Router interface {
	Route(src, dst topo.NodeID, flowKey uint64) ([]topo.LinkID, error)
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FatTreeRouter routes up-down through a three-tier fat-tree with ECMP over
// aggregation switches and spines.
type FatTreeRouter struct {
	FT *topo.FatTree
}

// NewFatTreeRouter returns a router for ft.
func NewFatTreeRouter(ft *topo.FatTree) *FatTreeRouter { return &FatTreeRouter{FT: ft} }

// Route implements Router.
func (r *FatTreeRouter) Route(src, dst topo.NodeID, flowKey uint64) ([]topo.LinkID, error) {
	ft := r.FT
	if src == dst {
		return nil, fmt.Errorf("routing: src == dst (%d)", src)
	}
	sn, dn := ft.Nodes[src], ft.Nodes[dst]
	if sn.Kind != topo.Host || dn.Kind != topo.Host {
		return nil, fmt.Errorf("routing: fat-tree routes host-to-host, got %v -> %v", sn.Kind, dn.Kind)
	}
	h := mix(flowKey)
	srcRack, dstRack := int(sn.Rack), int(dn.Rack)
	srcToR := ft.ToRByRack[srcRack]
	dstToR := ft.ToRByRack[dstRack]

	route := make([]topo.LinkID, 0, 6)
	push := func(a, b topo.NodeID) error {
		id := ft.LinkBetween(a, b)
		if id < 0 {
			return fmt.Errorf("routing: no link %d -> %d", a, b)
		}
		route = append(route, id)
		return nil
	}

	if err := push(src, srcToR); err != nil {
		return nil, err
	}
	switch {
	case srcRack == dstRack:
		// host -> ToR -> host (2 hops)
	case sn.Pod == dn.Pod:
		// host -> ToR -> Agg -> ToR -> host (4 hops)
		agg := ft.Aggs[sn.Pod][int(h%uint64(ft.Cfg.AggPerPod))]
		if err := push(srcToR, agg); err != nil {
			return nil, err
		}
		if err := push(agg, dstToR); err != nil {
			return nil, err
		}
	default:
		// host -> ToR -> Agg -> Spine -> Agg -> ToR -> host (6 hops)
		plane := int(h % uint64(ft.Cfg.AggPerPod))
		spineIdx := int((h / uint64(ft.Cfg.AggPerPod)) % uint64(ft.Cfg.SpinesPerPlane))
		aggUp := ft.Aggs[sn.Pod][plane]
		spine := ft.Spines[plane][spineIdx]
		aggDown := ft.Aggs[dn.Pod][plane]
		if err := push(srcToR, aggUp); err != nil {
			return nil, err
		}
		if err := push(aggUp, spine); err != nil {
			return nil, err
		}
		if err := push(spine, aggDown); err != nil {
			return nil, err
		}
		if err := push(aggDown, dstToR); err != nil {
			return nil, err
		}
	}
	if err := push(dstToR, dst); err != nil {
		return nil, err
	}
	return route, nil
}

// bfsDistCacheMax bounds the BFSRouter distance cache. Each cached vector is
// 4 bytes per node — ~400 KB on a 100k-node graph — so an unbounded
// per-destination cache is exactly the per-pair state the 100k-host regime
// cannot afford. 64 destinations keeps parking-lot and test workloads (few
// distinct destinations, heavy reuse) fully cached while capping worst-case
// memory at tens of MB; past that, vectors are recomputed on demand with
// FIFO eviction.
const bfsDistCacheMax = 64

// BFSRouter computes ECMP shortest paths on an arbitrary topology. Per-
// destination distance vectors are cached (bounded, FIFO-evicted); at each
// hop one of the next-hops on a shortest path is chosen by hashing
// (flowKey, hop).
type BFSRouter struct {
	T *topo.Topology

	mu    sync.Mutex
	dist  map[topo.NodeID][]int32 // dst -> distance from every node to dst
	order []topo.NodeID           // cached destinations, oldest first
	rev   [][]topo.NodeID         // reverse adjacency, built once on demand
}

// NewBFSRouter returns a router for t.
func NewBFSRouter(t *topo.Topology) *BFSRouter {
	return &BFSRouter{T: t, dist: make(map[topo.NodeID][]int32)}
}

func (r *BFSRouter) distTo(dst topo.NodeID) []int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.dist[dst]; ok {
		return d
	}
	t := r.T
	if r.rev == nil {
		// Reverse adjacency: a link a->b contributes an edge b->a here, so
		// BFS from dst over it yields each node's hop count *to* dst along
		// directed links. Built once and shared by every distTo call.
		r.rev = make([][]topo.NodeID, t.NumNodes())
		for _, l := range t.Links {
			r.rev[l.Dst] = append(r.rev[l.Dst], l.Src)
		}
	}
	d := make([]int32, t.NumNodes())
	for i := range d {
		d[i] = -1
	}
	queue := []topo.NodeID{dst}
	d[dst] = 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range r.rev[n] {
			if d[m] < 0 {
				d[m] = d[n] + 1
				queue = append(queue, m)
			}
		}
	}
	if len(r.order) >= bfsDistCacheMax {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.dist, evict)
	}
	r.dist[dst] = d
	r.order = append(r.order, dst)
	return d
}

// Route implements Router.
func (r *BFSRouter) Route(src, dst topo.NodeID, flowKey uint64) ([]topo.LinkID, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: src == dst (%d)", src)
	}
	t := r.T
	d := r.distTo(dst)
	if d[src] < 0 {
		return nil, fmt.Errorf("routing: no path %d -> %d", src, dst)
	}
	route := make([]topo.LinkID, 0, d[src])
	cur := src
	hop := 0
	for cur != dst {
		var candidates []topo.LinkID
		for _, id := range t.Out(cur) {
			if nd := t.Link(id).Dst; d[nd] == d[cur]-1 {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("routing: dead end at node %d toward %d", cur, dst)
		}
		pick := candidates[mix(flowKey^uint64(hop)*0x9e3779b97f4a7c15)%uint64(len(candidates))]
		route = append(route, pick)
		cur = t.Link(pick).Dst
		hop++
	}
	return route, nil
}

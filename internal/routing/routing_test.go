package routing

import (
	"testing"

	"m3/internal/rng"
	"m3/internal/topo"
	"m3/internal/unit"
)

func TestFatTreeRouteHopCounts(t *testing.T) {
	ft, err := topo.SmallFatTree(topo.Oversub1to1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewFatTreeRouter(ft)

	sameRackSrc := ft.HostsByRack[0][0]
	sameRackDst := ft.HostsByRack[0][1]
	samePodDst := ft.HostsByRack[1][0]   // rack 1 is in pod 0
	crossPodDst := ft.HostsByRack[16][0] // rack 16 is in pod 1

	cases := []struct {
		name string
		dst  topo.NodeID
		hops int
	}{
		{"same-rack", sameRackDst, 2},
		{"same-pod", samePodDst, 4},
		{"cross-pod", crossPodDst, 6},
	}
	for _, c := range cases {
		route, err := r.Route(sameRackSrc, c.dst, 12345)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(route) != c.hops {
			t.Errorf("%s: %d hops, want %d", c.name, len(route), c.hops)
		}
		if err := ft.ValidateRoute(sameRackSrc, c.dst, route); err != nil {
			t.Errorf("%s: invalid route: %v", c.name, err)
		}
	}
}

func TestFatTreeRouteDeterministic(t *testing.T) {
	ft, _ := topo.SmallFatTree(topo.Oversub1to1)
	r := NewFatTreeRouter(ft)
	src := ft.HostsByRack[0][0]
	dst := ft.HostsByRack[20][3]
	r1, _ := r.Route(src, dst, 777)
	r2, _ := r.Route(src, dst, 777)
	if len(r1) != len(r2) {
		t.Fatal("same key gave different route lengths")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same key gave different routes")
		}
	}
}

func TestFatTreeECMPSpreads(t *testing.T) {
	ft, _ := topo.SmallFatTree(topo.Oversub1to1) // 2 aggs/pod, 16 spines/plane
	r := NewFatTreeRouter(ft)
	src := ft.HostsByRack[0][0]
	dst := ft.HostsByRack[16][0]
	distinct := make(map[string]bool)
	for key := uint64(0); key < 256; key++ {
		route, err := r.Route(src, dst, key)
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for _, id := range route {
			sig += string(rune(id)) // cheap signature
		}
		distinct[sig] = true
	}
	// 2 planes x 16 spines = 32 distinct cross-pod paths; expect most used.
	if len(distinct) < 16 {
		t.Errorf("ECMP used only %d distinct paths", len(distinct))
	}
}

func TestFatTreeRouteErrors(t *testing.T) {
	ft, _ := topo.SmallFatTree(topo.Oversub1to1)
	r := NewFatTreeRouter(ft)
	h := ft.HostsByRack[0][0]
	if _, err := r.Route(h, h, 1); err == nil {
		t.Error("src == dst accepted")
	}
	if _, err := r.Route(ft.ToRByRack[0], h, 1); err == nil {
		t.Error("non-host source accepted")
	}
}

func TestBFSRouterOnParkingLot(t *testing.T) {
	p, _ := topo.NewParkingLot(
		[]unit.Rate{10 * unit.Gbps, 10 * unit.Gbps, 10 * unit.Gbps},
		[]unit.Time{unit.Microsecond, unit.Microsecond, unit.Microsecond})
	r := NewBFSRouter(p.Topology)
	route, err := r.Route(p.FgSrc(), p.FgDst(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 {
		t.Errorf("%d hops, want 3", len(route))
	}
	fg := p.FgRoute()
	for i := range route {
		if route[i] != fg[i] {
			t.Errorf("hop %d: got link %d, want %d", i, route[i], fg[i])
		}
	}
}

func TestBFSRouterMatchesFatTreeHopCount(t *testing.T) {
	ft, _ := topo.SmallFatTree(topo.Oversub2to1)
	bfs := NewBFSRouter(ft.Topology)
	ftr := NewFatTreeRouter(ft)
	r := rng.New(99)
	hosts := ft.Hosts()
	for i := 0; i < 50; i++ {
		src := hosts[r.Intn(len(hosts))]
		dst := hosts[r.Intn(len(hosts))]
		if src == dst {
			continue
		}
		key := r.Uint64()
		a, err := bfs.Route(src, dst, key)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ftr.Route(src, dst, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("hop count mismatch %d vs %d for %d->%d", len(a), len(b), src, dst)
		}
		if err := ft.ValidateRoute(src, dst, a); err != nil {
			t.Errorf("BFS route invalid: %v", err)
		}
	}
}

func TestBFSRouterNoPath(t *testing.T) {
	tp := topo.New()
	a := tp.AddHost(0, 0)
	b := tp.AddHost(0, 0)
	r := NewBFSRouter(tp)
	if _, err := r.Route(a, b, 1); err == nil {
		t.Error("disconnected route accepted")
	}
	if _, err := r.Route(a, a, 1); err == nil {
		t.Error("src == dst accepted")
	}
}

// Package faultinject provides test-only failure hooks for the estimation
// stack. Production code calls At at a handful of named injection points; in
// normal operation the call is a single atomic load and a branch. Tests
// install hooks with Set to force panics mid-simulation, slow a path sim
// down, or corrupt checkpoint bytes in flight, proving the fault-tolerance
// layer isolates each failure instead of taking the process down.
//
// Injection points currently wired:
//
//	core.path      per sampled path, before its simulation (detail: path index int)
//	core.predict   after each ML micro-batch (detail: [][]float64 predictions,
//	               mutable — tests poison them with NaN/Inf)
//	model.load     before checkpoint CRC verification (detail: *[]byte payload,
//	               mutable — tests corrupt it to exercise integrity checks)
//	serve.estimate per estimate request, before admission (detail: nil)
//	cluster.rpc    before every peer RPC leaves a replica (detail: *RPCFault,
//	               mutable — hooks inject latency spikes and connection
//	               resets; see Chaos for seeded deterministic schedules)
//
// Hooks are process-global; tests must Clear them when done (use
// t.Cleanup(faultinject.Clear)) and must not run in parallel with other
// tests that install hooks.
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	armed atomic.Bool
	mu    sync.Mutex
	hooks map[string]func(detail any)
)

// Set installs fn at the named injection point, replacing any previous hook
// there. The hook may sleep, mutate detail, or panic, depending on the fault
// being modeled.
func Set(point string, fn func(detail any)) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[string]func(any))
	}
	hooks[point] = fn
	armed.Store(true)
}

// Clear removes every installed hook, returning At to its zero-cost path.
func Clear() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	armed.Store(false)
}

// At fires the hook installed at point, if any. When no hooks are installed
// anywhere (the production state) it costs one atomic load.
func At(point string, detail any) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	fn := hooks[point]
	mu.Unlock()
	if fn != nil {
		fn(detail)
	}
}

package faultinject

import (
	"errors"
	"sync/atomic"
	"time"
)

// RPCFault is the mutable detail passed to the "cluster.rpc" injection
// point before every peer RPC leaves a replica. The cluster transport fills
// the descriptive fields; a hook injects a fault by setting Delay (latency
// spike, applied context-aware before the request is sent) and/or Err (the
// transport fails with this error instead of dialing — a connection reset,
// as far as the retry and breaker layers can tell).
type RPCFault struct {
	// Host is the target peer's host:port.
	Host string
	// Path is the internal endpoint being called.
	Path string
	// Probe marks health-probe traffic (GET /internal/v1/health), so chaos
	// schedules can flap a peer "up for requests, down for probes" and
	// vice versa.
	Probe bool

	// Delay, if set, stalls the call before it is sent.
	Delay time.Duration
	// Err, if set, fails the call with this transport-level error.
	Err error
}

// ErrInjectedReset is the transport error Chaos injects for a scheduled
// connection reset.
var ErrInjectedReset = errors.New("faultinject: injected connection reset")

// ChaosConfig describes a deterministic fault schedule for the
// "cluster.rpc" point. Rates are per-call probabilities drawn from a seeded
// counter-keyed generator: the nth RPC of a run sees the same fate on every
// run with the same seed, regardless of goroutine interleaving.
type ChaosConfig struct {
	// Seed keys the schedule; two configs with the same seed and rates
	// fault the same call sequence numbers.
	Seed uint64
	// ResetRate is the probability a call fails with ErrInjectedReset.
	ResetRate float64
	// DelayRate is the probability a call stalls for Delay first.
	DelayRate float64
	// Delay is the injected stall duration (default 5ms when DelayRate > 0).
	Delay time.Duration
	// FlapProbes fails every health probe (while leaving request traffic
	// to the rates above): the peer looks dead to the prober, modeling a
	// replica whose serving loop answers but whose health check is
	// black-holed — the breaker must keep it out of rotation.
	FlapProbes bool
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche of x, good
// enough to turn (seed, call#) into an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chance converts a draw to a [0,1) float and compares against rate.
func chance(draw uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(draw>>11)/float64(1<<53) < rate
}

// Chaos builds a hook for the "cluster.rpc" point that applies cfg's
// deterministic fault schedule. Install with
// faultinject.Set("cluster.rpc", faultinject.Chaos(cfg)) and remove with
// Clear. The returned hook is safe for concurrent calls.
func Chaos(cfg ChaosConfig) func(detail any) {
	if cfg.Delay <= 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	var calls atomic.Uint64
	return func(detail any) {
		f, ok := detail.(*RPCFault)
		if !ok {
			return
		}
		if cfg.FlapProbes && f.Probe {
			f.Err = ErrInjectedReset
			return
		}
		n := calls.Add(1)
		draw := splitmix64(cfg.Seed ^ n)
		if chance(draw, cfg.DelayRate) {
			f.Delay = cfg.Delay
		}
		// A second independent draw decides the reset, so delay and reset
		// faults compose instead of shadowing each other.
		if chance(splitmix64(draw), cfg.ResetRate) {
			f.Err = ErrInjectedReset
		}
	}
}

package faultinject

import (
	"sync"
	"testing"
)

func TestHookFires(t *testing.T) {
	t.Cleanup(Clear)
	var got any
	Set("x", func(detail any) { got = detail })
	At("x", 42)
	if got != 42 {
		t.Errorf("detail = %v, want 42", got)
	}
	At("other", 1) // no hook at this point: no-op
}

func TestHookClearDisarms(t *testing.T) {
	fired := false
	Set("x", func(any) { fired = true })
	Clear()
	At("x", nil)
	if fired {
		t.Error("hook fired after Clear")
	}
}

func TestHookSetReplaces(t *testing.T) {
	t.Cleanup(Clear)
	calls := 0
	Set("x", func(any) { calls += 100 })
	Set("x", func(any) { calls++ })
	At("x", nil)
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (second hook only)", calls)
	}
}

// TestHookConcurrent checks the fast path and hook dispatch race-free against
// Set/Clear (run under -race in scripts/check.sh).
func TestHookConcurrent(t *testing.T) {
	t.Cleanup(Clear)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					At("x", nil)
				}
			}
		}()
	}
	var n int64
	var mu sync.Mutex
	for i := 0; i < 1000; i++ {
		Set("x", func(any) { mu.Lock(); n++; mu.Unlock() })
		Clear()
	}
	close(stop)
	wg.Wait()
}

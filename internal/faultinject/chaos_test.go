package faultinject

import (
	"testing"
	"time"
)

// TestChaosDeterministic: two hooks built from the same config must fault
// the exact same call sequence numbers — the property that makes a chaos
// run reproducible from its seed.
func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, ResetRate: 0.1, DelayRate: 0.05}
	a, b := Chaos(cfg), Chaos(cfg)
	const n = 2000
	for i := 0; i < n; i++ {
		fa, fb := RPCFault{Path: "/x"}, RPCFault{Path: "/x"}
		a(&fa)
		b(&fb)
		if (fa.Err == nil) != (fb.Err == nil) || fa.Delay != fb.Delay {
			t.Fatalf("call %d diverged: a={err:%v delay:%v} b={err:%v delay:%v}",
				i, fa.Err, fa.Delay, fb.Err, fb.Delay)
		}
	}
}

// TestChaosSeedChangesSchedule: different seeds must produce different
// fault schedules (otherwise "seeded" is a lie).
func TestChaosSeedChangesSchedule(t *testing.T) {
	a := Chaos(ChaosConfig{Seed: 1, ResetRate: 0.5})
	b := Chaos(ChaosConfig{Seed: 2, ResetRate: 0.5})
	diverged := false
	for i := 0; i < 256 && !diverged; i++ {
		fa, fb := RPCFault{}, RPCFault{}
		a(&fa)
		b(&fb)
		diverged = (fa.Err == nil) != (fb.Err == nil)
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 produced identical 256-call schedules")
	}
}

// TestChaosRates: over many calls the observed fault fraction must track
// the configured rate.
func TestChaosRates(t *testing.T) {
	hook := Chaos(ChaosConfig{Seed: 99, ResetRate: 0.10, DelayRate: 0.20, Delay: time.Millisecond})
	const n = 20000
	resets, delays := 0, 0
	for i := 0; i < n; i++ {
		f := RPCFault{}
		hook(&f)
		if f.Err != nil {
			resets++
		}
		if f.Delay > 0 {
			delays++
		}
	}
	if frac := float64(resets) / n; frac < 0.08 || frac > 0.12 {
		t.Errorf("reset fraction %.3f, want ~0.10", frac)
	}
	if frac := float64(delays) / n; frac < 0.17 || frac > 0.23 {
		t.Errorf("delay fraction %.3f, want ~0.20", frac)
	}
}

// TestChaosFlapProbes: FlapProbes fails every probe and only probes;
// request traffic follows the (zero) rates untouched.
func TestChaosFlapProbes(t *testing.T) {
	hook := Chaos(ChaosConfig{FlapProbes: true})
	for i := 0; i < 100; i++ {
		probe := RPCFault{Probe: true}
		hook(&probe)
		if probe.Err == nil {
			t.Fatal("probe survived FlapProbes")
		}
		req := RPCFault{}
		hook(&req)
		if req.Err != nil || req.Delay != 0 {
			t.Fatal("request traffic faulted with zero rates")
		}
	}
}

// TestChaosZeroConfigInert: an all-zero config must never inject anything.
func TestChaosZeroConfigInert(t *testing.T) {
	hook := Chaos(ChaosConfig{})
	for i := 0; i < 1000; i++ {
		f := RPCFault{Probe: i%2 == 0}
		hook(&f)
		if f.Err != nil || f.Delay != 0 {
			t.Fatalf("call %d faulted under a zero config", i)
		}
	}
}

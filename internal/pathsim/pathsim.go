// Package pathsim implements the paper's path-level decomposition (§2.1,
// §3.2): it splits a full-network workload into per-path scenarios, each a
// parking-lot topology carrying the path's foreground flows (flows that
// traverse every link of the path, Eq. 1) and background flows (flows that
// intersect at least one link, Eq. 2).
//
// Scenarios can be executed at packet granularity (ns-3-path, the oracle of
// §2.1) or at fluid granularity (flowSim, the m3 feature extractor).
package pathsim

import (
	"context"
	"fmt"
	"hash/maphash"
	"sort"

	"m3/internal/flowsim"
	"m3/internal/packetsim"
	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Path is one distinct route together with the flows that traverse it
// end-to-end.
type Path struct {
	Links []topo.LinkID
	Fg    []workload.FlowID // flows whose route is exactly this path
}

// Hops returns the path length in links.
func (p *Path) Hops() int { return len(p.Links) }

// Decomposition indexes a workload by path and by link.
type Decomposition struct {
	T     *topo.Topology
	Flows []workload.Flow
	Paths []Path
	// linkFlows[l] lists flows crossing directed link l, ascending.
	linkFlows map[topo.LinkID][]workload.FlowID
}

// Decompose groups flows by route and builds the link index. Flow IDs must
// be dense in [0, len(flows)).
func Decompose(t *topo.Topology, flows []workload.Flow) (*Decomposition, error) {
	d := &Decomposition{
		T:         t,
		Flows:     flows,
		linkFlows: make(map[topo.LinkID][]workload.FlowID),
	}
	var h maphash.Hash
	seed := maphash.MakeSeed()
	byKey := make(map[uint64][]int) // route hash -> path indices (collision-safe)

	for i := range flows {
		f := &flows[i]
		if int(f.ID) < 0 || int(f.ID) >= len(flows) {
			return nil, fmt.Errorf("pathsim: flow ID %d out of range", f.ID)
		}
		if len(f.Route) == 0 {
			return nil, fmt.Errorf("pathsim: flow %d has no route", f.ID)
		}
		h.SetSeed(seed)
		for _, l := range f.Route {
			var b [4]byte
			b[0] = byte(l)
			b[1] = byte(l >> 8)
			b[2] = byte(l >> 16)
			b[3] = byte(l >> 24)
			h.Write(b[:])
		}
		key := h.Sum64()
		found := -1
		for _, pi := range byKey[key] {
			if sameRoute(d.Paths[pi].Links, f.Route) {
				found = pi
				break
			}
		}
		if found < 0 {
			found = len(d.Paths)
			d.Paths = append(d.Paths, Path{Links: f.Route})
			byKey[key] = append(byKey[key], found)
		}
		d.Paths[found].Fg = append(d.Paths[found].Fg, f.ID)
		for _, l := range f.Route {
			d.linkFlows[l] = append(d.linkFlows[l], f.ID)
		}
	}
	return d, nil
}

func sameRoute(a, b []topo.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FgWeights returns the per-path foreground flow counts, the weights used by
// the paper's path sampling (§3.2).
func (d *Decomposition) FgWeights() []float64 {
	w := make([]float64, len(d.Paths))
	for i := range d.Paths {
		w[i] = float64(len(d.Paths[i].Fg))
	}
	return w
}

// Background returns the IDs of flows that intersect the path on at least
// one link but are not foreground (Eq. 2), ascending.
func (d *Decomposition) Background(p *Path) []workload.FlowID {
	isFg := make(map[workload.FlowID]bool, len(p.Fg))
	for _, id := range p.Fg {
		isFg[id] = true
	}
	seen := make(map[workload.FlowID]bool)
	var bg []workload.FlowID
	for _, l := range p.Links {
		for _, id := range d.linkFlows[l] {
			if !isFg[id] && !seen[id] {
				seen[id] = true
				bg = append(bg, id)
			}
		}
	}
	sort.Slice(bg, func(i, j int) bool { return bg[i] < bg[j] })
	return bg
}

// ScenarioFlow describes one flow inside a path-level scenario.
type ScenarioFlow struct {
	// Orig is the flow's ID in the full workload.
	Orig workload.FlowID
	// Fg marks foreground flows.
	Fg bool
	// Join and Exit delimit the original path links this flow crosses:
	// links [Join, Exit). Foreground flows span the whole path.
	Join, Exit int
}

// Scenario is a materialized path-level simulation input: the parking-lot
// topology and the flows on it (with dense scenario-local IDs).
type Scenario struct {
	Path  *Path
	Lot   *topo.ParkingLot
	Flows []workload.Flow // scenario-local IDs
	Meta  []ScenarioFlow  // indexed by scenario-local ID
}

// Scenario materializes the parking lot for path p: foreground flows run the
// whole chain; every maximal contiguous run of path links a background flow
// crosses becomes one scenario flow entering and exiting through synthetic
// stubs (stubs are shared per original endpoint host, and carry that host's
// access capacity). Non-contiguous intersections (possible in fat-trees when
// a flow shares only the first and last hop of a path) are split into
// independent segment flows — each segment loads its links exactly as the
// original flow did; only the coupling between segments is dropped.
func (d *Decomposition) Scenario(p *Path) (*Scenario, error) {
	rates := d.T.RouteRates(p.Links)
	delays := d.T.RouteDelays(p.Links)
	lot, err := topo.NewParkingLot(rates, delays)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Path: p, Lot: lot}

	add := func(orig *workload.Flow, fg bool, join, exit int, route []topo.LinkID, src, dst topo.NodeID) {
		id := workload.FlowID(len(sc.Flows))
		sc.Flows = append(sc.Flows, workload.Flow{
			ID: id, Src: src, Dst: dst,
			Size: orig.Size, Arrival: orig.Arrival, Route: route,
		})
		sc.Meta = append(sc.Meta, ScenarioFlow{Orig: orig.ID, Fg: fg, Join: join, Exit: exit})
	}

	for _, id := range p.Fg {
		f := &d.Flows[id]
		add(f, true, 0, len(p.Links), lot.FgRoute(), lot.FgSrc(), lot.FgDst())
	}

	// Position of each path link within the path for intersection lookup.
	pos := make(map[topo.LinkID]int, len(p.Links))
	for i, l := range p.Links {
		pos[l] = i
	}
	for _, id := range d.Background(p) {
		f := &d.Flows[id]
		srcRate := d.T.Link(f.Route[0]).Rate
		dstRate := d.T.Link(f.Route[len(f.Route)-1]).Rate
		// Extract maximal contiguous runs of path positions, in the order
		// the flow traverses them.
		run := -1 // start position of current run on the path
		prev := -1
		flush := func(endExclusive int) error {
			if run < 0 {
				return nil
			}
			src, dst, route, err := lot.AttachBg(uint64(f.Src), uint64(f.Dst),
				run, endExclusive, srcRate, dstRate, unit.Microsecond)
			if err != nil {
				return err
			}
			add(f, false, run, endExclusive, route, src, dst)
			run = -1
			return nil
		}
		for _, l := range f.Route {
			pi, on := pos[l]
			if on && prev >= 0 && pi == prev+1 && run >= 0 {
				prev = pi
				continue
			}
			if err := flush(prev + 1); err != nil {
				return nil, err
			}
			if on {
				run, prev = pi, pi
			} else {
				prev = -1
			}
		}
		if err := flush(prev + 1); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// FgResult holds per-foreground-flow outcomes of a scenario simulation,
// aligned with Scenario foreground order (and carrying original IDs).
type FgResult struct {
	Orig     []workload.FlowID
	Sizes    []unit.ByteSize
	Slowdown []float64
}

// RunPacket executes the scenario at packet granularity (ns-3-path) and
// returns foreground slowdowns.
func (sc *Scenario) RunPacket(cfg packetsim.Config) (*FgResult, error) {
	return sc.RunPacketContext(context.Background(), cfg)
}

// RunPacketContext is RunPacket with cooperative cancellation: an expired
// or cancelled ctx aborts the packet simulation mid-run with ctx.Err().
func (sc *Scenario) RunPacketContext(ctx context.Context, cfg packetsim.Config) (*FgResult, error) {
	res, err := packetsim.RunContext(ctx, sc.Lot.Topology, sc.Flows, cfg)
	if err != nil {
		return nil, err
	}
	return sc.fgResult(res.Slowdown), nil
}

// FlowSimResult carries flowSim outcomes for the whole scenario: foreground
// slowdowns plus, for every original path link, the slowdowns and sizes of
// the background flows crossing it (the inputs to the feature maps of §3.4).
type FlowSimResult struct {
	Fg *FgResult
	// BgSizes[l] / BgSldn[l] describe background flows crossing path link l.
	BgSizes [][]unit.ByteSize
	BgSldn  [][]float64
}

// RunFlowSim executes the scenario in flowSim.
func (sc *Scenario) RunFlowSim() (*FlowSimResult, error) {
	return sc.RunFlowSimContext(context.Background())
}

// RunFlowSimContext is RunFlowSim with cooperative cancellation: an expired
// or cancelled ctx aborts the fluid simulation mid-run with ctx.Err().
func (sc *Scenario) RunFlowSimContext(ctx context.Context) (*FlowSimResult, error) {
	res, err := flowsim.RunContext(ctx, sc.Lot.Topology, sc.Flows)
	if err != nil {
		return nil, err
	}
	out := &FlowSimResult{
		Fg:      sc.fgResult(res.Slowdown),
		BgSizes: make([][]unit.ByteSize, sc.Lot.Hops()),
		BgSldn:  make([][]float64, sc.Lot.Hops()),
	}
	for i := range sc.Flows {
		m := &sc.Meta[i]
		if m.Fg {
			continue
		}
		for l := m.Join; l < m.Exit; l++ {
			out.BgSizes[l] = append(out.BgSizes[l], sc.Flows[i].Size)
			out.BgSldn[l] = append(out.BgSldn[l], res.Slowdown[i])
		}
	}
	return out, nil
}

func (sc *Scenario) fgResult(slowdown []float64) *FgResult {
	fr := &FgResult{}
	for i := range sc.Flows {
		if sc.Meta[i].Fg {
			fr.Orig = append(fr.Orig, sc.Meta[i].Orig)
			fr.Sizes = append(fr.Sizes, sc.Flows[i].Size)
			fr.Slowdown = append(fr.Slowdown, slowdown[i])
		}
	}
	return fr
}

// NumFg returns the scenario's foreground flow count.
func (sc *Scenario) NumFg() int {
	n := 0
	for i := range sc.Meta {
		if sc.Meta[i].Fg {
			n++
		}
	}
	return n
}

// NumBg returns the scenario's background (segment) flow count.
func (sc *Scenario) NumBg() int { return len(sc.Meta) - sc.NumFg() }

package pathsim

import (
	"math"
	"testing"

	"m3/internal/packetsim"
	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/workload"
)

func smallWorkload(t *testing.T, n int, seed uint64) (*topo.FatTree, []workload.Flow) {
	t.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	flows, err := workload.Generate(ft, routing.NewFatTreeRouter(ft), workload.Spec{
		NumFlows: n, Sizes: workload.WebServer, Matrix: workload.MatrixB(32, r),
		Burstiness: 1.5, MaxLoad: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, flows
}

func TestDecomposePartitionsFlows(t *testing.T) {
	ft, flows := smallWorkload(t, 2000, 1)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Every flow is foreground on exactly one path.
	count := 0
	seen := make(map[workload.FlowID]bool)
	for i := range d.Paths {
		for _, id := range d.Paths[i].Fg {
			if seen[id] {
				t.Fatalf("flow %d foreground on multiple paths", id)
			}
			seen[id] = true
			count++
		}
	}
	if count != len(flows) {
		t.Errorf("fg flows total %d, want %d", count, len(flows))
	}
	if len(d.Paths) < 100 {
		t.Errorf("only %d distinct paths for 2000 flows — suspicious", len(d.Paths))
	}
}

func TestDecomposeFgHaveIdenticalRoutes(t *testing.T) {
	ft, flows := smallWorkload(t, 1000, 2)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Paths {
		p := &d.Paths[i]
		for _, id := range p.Fg {
			if !sameRoute(flows[id].Route, p.Links) {
				t.Fatalf("fg flow %d route differs from path", id)
			}
		}
	}
}

func TestBackgroundDefinition(t *testing.T) {
	ft, flows := smallWorkload(t, 1000, 3)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the busiest path and verify Eq. 2 against a brute-force check.
	best := 0
	for i := range d.Paths {
		if len(d.Paths[i].Fg) > len(d.Paths[best].Fg) {
			best = i
		}
	}
	p := &d.Paths[best]
	bg := d.Background(p)
	onPath := make(map[topo.LinkID]bool)
	for _, l := range p.Links {
		onPath[l] = true
	}
	isFg := make(map[workload.FlowID]bool)
	for _, id := range p.Fg {
		isFg[id] = true
	}
	want := make(map[workload.FlowID]bool)
	for i := range flows {
		if isFg[flows[i].ID] {
			continue
		}
		for _, l := range flows[i].Route {
			if onPath[l] {
				want[flows[i].ID] = true
				break
			}
		}
	}
	if len(want) != len(bg) {
		t.Fatalf("bg count %d, brute force %d", len(bg), len(want))
	}
	for _, id := range bg {
		if !want[id] {
			t.Fatalf("flow %d wrongly classified background", id)
		}
	}
}

func TestScenarioConstruction(t *testing.T) {
	ft, flows := smallWorkload(t, 1500, 4)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range d.Paths {
		if len(d.Paths[i].Fg) > len(d.Paths[best].Fg) {
			best = i
		}
	}
	p := &d.Paths[best]
	sc, err := d.Scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumFg() != len(p.Fg) {
		t.Errorf("scenario fg = %d, path fg = %d", sc.NumFg(), len(p.Fg))
	}
	if sc.NumBg() == 0 {
		t.Error("busiest path has no background — suspicious")
	}
	// Routes are valid on the lot; sizes and arrivals preserved.
	for i := range sc.Flows {
		f := &sc.Flows[i]
		if err := sc.Lot.ValidateRoute(f.Src, f.Dst, f.Route); err != nil {
			t.Fatalf("scenario flow %d: %v", i, err)
		}
		orig := &flows[sc.Meta[i].Orig]
		if f.Size != orig.Size || f.Arrival != orig.Arrival {
			t.Fatalf("scenario flow %d lost size/arrival", i)
		}
		m := &sc.Meta[i]
		if m.Join < 0 || m.Exit > len(p.Links) || m.Join >= m.Exit {
			t.Fatalf("bad span [%d,%d)", m.Join, m.Exit)
		}
		if m.Fg && (m.Join != 0 || m.Exit != len(p.Links)) {
			t.Fatal("fg flow span must cover the path")
		}
	}
	// Parking-lot link parameters match the original path links.
	for i, l := range p.Links {
		orig := ft.Link(l)
		lotLink := sc.Lot.Link(sc.Lot.PathLinks[i])
		if orig.Rate != lotLink.Rate || orig.Delay != lotLink.Delay {
			t.Fatalf("lot link %d rate/delay mismatch", i)
		}
	}
}

func TestScenarioBgSegmentsCoverIntersection(t *testing.T) {
	ft, flows := smallWorkload(t, 1500, 5)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range d.Paths {
		if len(d.Paths[i].Fg) > len(d.Paths[best].Fg) {
			best = i
		}
	}
	p := &d.Paths[best]
	sc, err := d.Scenario(p)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[topo.LinkID]int)
	for i, l := range p.Links {
		pos[l] = i
	}
	// Union of scenario bg spans per original flow == its path intersection.
	spanOf := make(map[workload.FlowID]map[int]bool)
	for i := range sc.Meta {
		m := &sc.Meta[i]
		if m.Fg {
			continue
		}
		if spanOf[m.Orig] == nil {
			spanOf[m.Orig] = make(map[int]bool)
		}
		for l := m.Join; l < m.Exit; l++ {
			if spanOf[m.Orig][l] {
				t.Fatalf("flow %d covers link %d twice", m.Orig, l)
			}
			spanOf[m.Orig][l] = true
		}
	}
	for _, id := range d.Background(p) {
		want := make(map[int]bool)
		for _, l := range flows[id].Route {
			if pi, ok := pos[l]; ok {
				want[pi] = true
			}
		}
		got := spanOf[id]
		if len(got) != len(want) {
			t.Fatalf("flow %d: scenario covers %d path links, original crosses %d",
				id, len(got), len(want))
		}
		for pi := range want {
			if !got[pi] {
				t.Fatalf("flow %d: path link %d not covered", id, pi)
			}
		}
	}
}

func TestScenarioRunsBothSimulators(t *testing.T) {
	ft, flows := smallWorkload(t, 800, 6)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range d.Paths {
		if len(d.Paths[i].Fg) > len(d.Paths[best].Fg) {
			best = i
		}
	}
	sc, err := d.Scenario(&d.Paths[best])
	if err != nil {
		t.Fatal(err)
	}
	pk, err := sc.RunPacket(packetsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sc.RunFlowSim()
	if err != nil {
		t.Fatal(err)
	}
	if len(pk.Slowdown) != sc.NumFg() || len(fs.Fg.Slowdown) != sc.NumFg() {
		t.Fatal("fg result size mismatch")
	}
	for i, s := range pk.Slowdown {
		if math.IsNaN(s) || s < 0.98 {
			t.Errorf("packet fg slowdown[%d] = %v", i, s)
		}
	}
	for i, s := range fs.Fg.Slowdown {
		if math.IsNaN(s) || s <= 0 {
			t.Errorf("flowsim fg slowdown[%d] = %v", i, s)
		}
	}
	if len(fs.BgSldn) != sc.Lot.Hops() {
		t.Fatalf("bg per-link slices: %d, want %d", len(fs.BgSldn), sc.Lot.Hops())
	}
	// fg IDs round-trip to original flows.
	for i, orig := range pk.Orig {
		if flows[orig].Size != pk.Sizes[i] {
			t.Fatal("fg orig mapping broken")
		}
	}
}

func TestDecomposeErrors(t *testing.T) {
	ft, _ := smallWorkload(t, 10, 7)
	if _, err := Decompose(ft.Topology, []workload.Flow{{ID: 42}}); err == nil {
		t.Error("out-of-range ID accepted")
	}
	if _, err := Decompose(ft.Topology, []workload.Flow{{ID: 0}}); err == nil {
		t.Error("routeless flow accepted")
	}
}

func TestFgWeights(t *testing.T) {
	ft, flows := smallWorkload(t, 500, 8)
	d, err := Decompose(ft.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	w := d.FgWeights()
	var sum float64
	for _, v := range w {
		sum += v
	}
	if int(sum) != len(flows) {
		t.Errorf("weights sum to %v, want %d", sum, len(flows))
	}
}

package flowsim

import (
	"math"
	"testing"
	"testing/quick"

	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

func TestMaxMinSingleLink(t *testing.T) {
	caps := []float64{10}
	routes := [][]int32{{0}, {0}}
	rates := MaxMinRates(caps, routes)
	for i, r := range rates {
		if math.Abs(r-5) > 1e-9 {
			t.Errorf("flow %d rate = %v, want 5", i, r)
		}
	}
}

func TestMaxMinClassicParkingLot(t *testing.T) {
	// Two links of capacity 10. Flow 0 crosses both; flows 1 and 2 cross one
	// link each. Max-min: all get 5.
	caps := []float64{10, 10}
	routes := [][]int32{{0, 1}, {0}, {1}}
	rates := MaxMinRates(caps, routes)
	for i, r := range rates {
		if math.Abs(r-5) > 1e-9 {
			t.Errorf("flow %d rate = %v, want 5", i, r)
		}
	}
}

func TestMaxMinHeterogeneous(t *testing.T) {
	// Link 0 cap 10 shared by flows A (link 0 only) and B (links 0,1).
	// Link 1 cap 4 shared by B and C (link 1 only).
	// B and C bottleneck on link 1 at 2 each; A then gets 8 on link 0.
	caps := []float64{10, 4}
	routes := [][]int32{{0}, {0, 1}, {1}}
	rates := MaxMinRates(caps, routes)
	want := []float64{8, 2, 2}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Errorf("flow %d rate = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestMaxMinEmpty(t *testing.T) {
	rates := MaxMinRates([]float64{10}, nil)
	if len(rates) != 0 {
		t.Errorf("expected empty allocation")
	}
}

// Max-min properties: feasibility (no link over capacity) and that the
// allocation is max-min (no flow can increase without decreasing a flow
// with rate <= its own — checked via bottleneck condition: every flow has a
// saturated link where it has the max rate).
func TestMaxMinProperties(t *testing.T) {
	f := func(seed uint32) bool {
		// Build a random small scenario deterministically from seed.
		s := uint64(seed)
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(n))
		}
		nLinks := next(5) + 1
		nFlows := next(8) + 1
		caps := make([]float64, nLinks)
		for i := range caps {
			caps[i] = float64(next(100) + 1)
		}
		routes := make([][]int32, nFlows)
		for i := range routes {
			hops := next(nLinks) + 1
			start := next(nLinks - hops + 1)
			for h := 0; h < hops; h++ {
				routes[i] = append(routes[i], int32(start+h))
			}
		}
		rates := MaxMinRates(caps, routes)
		// Feasibility.
		used := make([]float64, nLinks)
		for i, route := range routes {
			for _, l := range route {
				used[l] += rates[i]
			}
		}
		for l := range caps {
			if used[l] > caps[l]+1e-6 {
				return false
			}
		}
		// Bottleneck condition.
		for i, route := range routes {
			ok := false
			for _, l := range route {
				if used[l] >= caps[l]-1e-6 {
					isMax := true
					for j, r2 := range routes {
						for _, l2 := range r2 {
							if l2 == l && rates[j] > rates[i]+1e-6 {
								isMax = false
							}
						}
					}
					if isMax {
						ok = true
						break
					}
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func singleLinkTopo(t *testing.T) (*topo.ParkingLot, []topo.LinkID) {
	t.Helper()
	p, err := topo.NewParkingLot([]unit.Rate{10 * unit.Gbps}, []unit.Time{unit.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	return p, p.FgRoute()
}

func TestRunSingleUncontendedFlow(t *testing.T) {
	p, route := singleLinkTopo(t)
	flows := []workload.Flow{{
		ID: 0, Src: p.FgSrc(), Dst: p.FgDst(), Size: 50000, Arrival: 0, Route: route,
	}}
	res, err := Run(p.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Slowdown[0]-1) > 1e-6 {
		t.Errorf("uncontended slowdown = %v, want 1", res.Slowdown[0])
	}
	ideal := p.IdealFCT(50000, route)
	if d := float64(res.FCT[0]-ideal) / float64(ideal); math.Abs(d) > 1e-6 {
		t.Errorf("FCT = %v, ideal %v", res.FCT[0], ideal)
	}
}

func TestRunTwoConcurrentFlowsShare(t *testing.T) {
	p, route := singleLinkTopo(t)
	// Two identical flows at t=0 share the link: each takes ~2x as long in
	// the fluid part.
	size := unit.ByteSize(100000)
	flows := []workload.Flow{
		{ID: 0, Src: p.FgSrc(), Dst: p.FgDst(), Size: size, Arrival: 0, Route: route},
		{ID: 1, Src: p.FgSrc(), Dst: p.FgDst(), Size: size, Arrival: 0, Route: route},
	}
	res, err := Run(p.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if res.Slowdown[i] < 1.8 || res.Slowdown[i] > 2.05 {
			t.Errorf("flow %d slowdown = %v, want ~2", i, res.Slowdown[i])
		}
	}
}

func TestRunSequentialFlowsNoInteraction(t *testing.T) {
	p, route := singleLinkTopo(t)
	// Second flow arrives long after the first finishes.
	flows := []workload.Flow{
		{ID: 0, Src: p.FgSrc(), Dst: p.FgDst(), Size: 10000, Arrival: 0, Route: route},
		{ID: 1, Src: p.FgSrc(), Dst: p.FgDst(), Size: 10000, Arrival: unit.Second, Route: route},
	}
	res, err := Run(p.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if math.Abs(res.Slowdown[i]-1) > 1e-6 {
			t.Errorf("flow %d slowdown = %v, want 1", i, res.Slowdown[i])
		}
	}
}

func TestRunLateArrivalSlowsFirst(t *testing.T) {
	p, route := singleLinkTopo(t)
	// Big flow starts alone; small flow arrives midway and shares.
	big := unit.ByteSize(1000000)
	flows := []workload.Flow{
		{ID: 0, Src: p.FgSrc(), Dst: p.FgDst(), Size: big, Arrival: 0, Route: route},
		{ID: 1, Src: p.FgSrc(), Dst: p.FgDst(), Size: 100000, Arrival: unit.FromSeconds(0.0002), Route: route},
	}
	res, err := Run(p.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown[0] <= 1.05 {
		t.Errorf("big flow slowdown = %v, want > 1.05", res.Slowdown[0])
	}
	if res.Slowdown[1] <= 1.5 {
		t.Errorf("small flow slowdown = %v, want ~2 while sharing", res.Slowdown[1])
	}
}

func TestRunMultiHopBottleneck(t *testing.T) {
	// 3-hop path 10G-40G-10G: fg flow plus a bg flow on the middle link only.
	p, err := topo.NewParkingLot(
		[]unit.Rate{10 * unit.Gbps, 40 * unit.Gbps, 10 * unit.Gbps},
		[]unit.Time{unit.Microsecond, unit.Microsecond, unit.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	src, dst, bgRoute, err := p.AttachBg(1, 2, 1, 2, 10*unit.Gbps, 10*unit.Gbps, unit.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	flows := []workload.Flow{
		{ID: 0, Src: p.FgSrc(), Dst: p.FgDst(), Size: 500000, Arrival: 0, Route: p.FgRoute()},
		{ID: 1, Src: src, Dst: dst, Size: 500000, Arrival: 0, Route: bgRoute},
	}
	res, err := Run(p.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Middle link is 40G with both flows needing <= 10G each: no contention.
	if res.Slowdown[0] > 1.05 {
		t.Errorf("fg slowdown = %v, want ~1 (no contention on 40G middle)", res.Slowdown[0])
	}
}

func TestRunErrors(t *testing.T) {
	p, route := singleLinkTopo(t)
	_, err := Run(p.Topology, []workload.Flow{{ID: 5, Route: route}})
	if err == nil {
		t.Error("out-of-range ID accepted")
	}
	_, err = Run(p.Topology, []workload.Flow{{ID: 0}})
	if err == nil {
		t.Error("missing route accepted")
	}
	res, err := Run(p.Topology, nil)
	if err != nil || len(res.FCT) != 0 {
		t.Error("empty input should succeed with empty result")
	}
}

func TestRunUnsortedInput(t *testing.T) {
	p, route := singleLinkTopo(t)
	flows := []workload.Flow{
		{ID: 0, Src: p.FgSrc(), Dst: p.FgDst(), Size: 10000, Arrival: unit.Second, Route: route},
		{ID: 1, Src: p.FgSrc(), Dst: p.FgDst(), Size: 10000, Arrival: 0, Route: route},
	}
	res, err := Run(p.Topology, flows)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if math.Abs(res.Slowdown[i]-1) > 1e-6 {
			t.Errorf("flow %d slowdown = %v", i, res.Slowdown[i])
		}
	}
}

func TestRunSyntheticWorkloadSane(t *testing.T) {
	syn, err := workload.GenerateSynthetic(workload.SynthSpec{
		Hops: 4, NumFg: 400, BgPerLink: 0.5,
		Sizes: workload.CacheFollower, Burstiness: 1.5, MaxLoad: 0.5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(syn.Lot.Topology, syn.Flows)
	if err != nil {
		t.Fatal(err)
	}
	var below, total int
	for _, s := range res.Slowdown {
		total++
		if s < 1-1e-6 {
			below++
		}
		if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
			t.Fatalf("bad slowdown %v", s)
		}
	}
	if below > 0 {
		t.Errorf("%d/%d slowdowns below 1", below, total)
	}
	// At 50% load with bursts there must be some contention.
	var contended int
	for _, s := range res.Slowdown {
		if s > 1.2 {
			contended++
		}
	}
	if contended == 0 {
		t.Error("no contention at 50% load — suspicious")
	}
}

// Property: fluid completion respects work conservation on a single link —
// total service time of n back-to-back flows is at least total size / rate.
func TestRunWorkConservationProperty(t *testing.T) {
	p, route := singleLinkTopo(t)
	f := func(sizes [4]uint16) bool {
		flows := make([]workload.Flow, 0, 4)
		var totalWire float64
		for i, s := range sizes {
			size := unit.ByteSize(int(s)%100000 + 1000)
			flows = append(flows, workload.Flow{
				ID: workload.FlowID(i), Src: p.FgSrc(), Dst: p.FgDst(),
				Size: size, Arrival: 0, Route: route,
			})
			totalWire += float64(unit.WireSize(size).Bits())
		}
		res, err := Run(p.Topology, flows)
		if err != nil {
			return false
		}
		var lastDone float64
		for i := range flows {
			done := flows[i].Arrival.Seconds() + res.FCT[i].Seconds()
			if done > lastDone {
				lastDone = done
			}
		}
		minTime := totalWire / float64(10*unit.Gbps)
		return lastDone >= minTime-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Package flowsim implements the paper's flowSim (Appendix A, Algorithm 1):
// a fluid flow-level simulator that assigns every active flow its max-min
// fair rate, recomputing the allocation whenever a flow arrives or
// completes. A flow finishes when its allocated rate has drained its wire
// size; the end-to-end latency factor of the unloaded path is then added so
// that an uncontended flow has slowdown exactly 1.
//
// flowSim deliberately ignores queueing dynamics, packet boundaries, and
// congestion control — that is what makes it fast, and what the m3 model is
// trained to correct (§3.3).
package flowsim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"m3/internal/topo"
	"m3/internal/unit"
	"m3/internal/workload"
)

// Result holds per-flow outcomes, indexed by FlowID.
type Result struct {
	// FCT is each flow's completion time minus its arrival time.
	FCT []unit.Time
	// Slowdown is FCT normalized by the unloaded-path ideal FCT.
	Slowdown []float64
}

// allocator computes max-min fair allocations by progressive filling with
// reusable buffers, touching only the links the active flows use (full
// topologies can have tens of thousands of links while a path scenario's
// active set uses a handful).
type allocator struct {
	caps     []float64
	residual []float64
	count    []int32
	stamp    []uint32
	epoch    uint32
	links    []int32 // links used by the current active set
	frozen   []bool
}

func newAllocator(caps []float64) *allocator {
	a := &allocator{}
	a.reset(caps)
	return a
}

// reset points the allocator at a (possibly different-sized) capacity vector,
// growing the per-link buffers as needed. Stale stamps from earlier runs are
// harmless: epoch only moves forward, so they never match a future epoch.
func (a *allocator) reset(caps []float64) {
	a.caps = caps
	if len(a.residual) < len(caps) {
		a.residual = make([]float64, len(caps))
		a.count = make([]int32, len(caps))
		a.stamp = make([]uint32, len(caps))
		a.epoch = 0
	}
}

// alloc writes each flow's max-min rate into rates (len(routes)).
func (a *allocator) alloc(routes [][]int32, rates []float64) {
	n := len(routes)
	if n == 0 {
		return
	}
	a.epoch++
	a.links = a.links[:0]
	for _, route := range routes {
		for _, l := range route {
			if a.stamp[l] != a.epoch {
				a.stamp[l] = a.epoch
				a.residual[l] = a.caps[l]
				a.count[l] = 0
				a.links = append(a.links, l)
			}
			a.count[l]++
		}
	}
	if cap(a.frozen) < n {
		a.frozen = make([]bool, n)
	}
	frozen := a.frozen[:n]
	for i := range frozen {
		frozen[i] = false
	}
	remaining := n
	for remaining > 0 {
		bottleneck := int32(-1)
		best := math.Inf(1)
		for _, l := range a.links {
			if a.count[l] <= 0 {
				continue
			}
			share := a.residual[l] / float64(a.count[l])
			if share < best {
				best = share
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			for i := range routes {
				if !frozen[i] {
					rates[i] = math.Inf(1)
					frozen[i] = true
					remaining--
				}
			}
			break
		}
		if best < 0 {
			best = 0
		}
		for i, route := range routes {
			if frozen[i] {
				continue
			}
			uses := false
			for _, l := range route {
				if l == bottleneck {
					uses = true
					break
				}
			}
			if !uses {
				continue
			}
			rates[i] = best
			frozen[i] = true
			remaining--
			for _, l := range route {
				a.residual[l] -= best
				a.count[l]--
			}
		}
	}
}

// MaxMinRates computes the max-min fair allocation by progressive filling:
// repeatedly find the link with the smallest fair share among its unfrozen
// flows, freeze those flows at that share, and remove their demand from the
// rest of the network. caps[l] is link l's capacity; routes[i] lists the
// links flow i uses. The returned rates use the same unit as caps.
func MaxMinRates(caps []float64, routes [][]int32) []float64 {
	rates := make([]float64, len(routes))
	newAllocator(caps).alloc(routes, rates)
	return rates
}

// Run simulates the flows on t and returns per-flow FCTs and slowdowns.
// Flows need not be sorted; results are indexed by FlowID, which must be
// dense in [0, len(flows)).
func Run(t *topo.Topology, flows []workload.Flow) (*Result, error) {
	return RunContext(context.Background(), t, flows)
}

// ctxPollInterval is how many event-loop iterations pass between
// cancellation checks; polling is O(1) but not free, so it is amortized.
const ctxPollInterval = 512

// active is one in-flight flow's fluid state.
type active struct {
	idx       int     // index into flows
	remaining float64 // wire bits left
	rate      float64 // bits/s
}

// runScratch bundles every intermediate a simulation run needs, recycled via
// a sync.Pool so steady-state callers (the estimator featurizing hundreds of
// paths per request) only allocate the returned Result.
type runScratch struct {
	order    []int
	caps     []float64
	routeIdx []int32 // all routes, flattened
	routeOff []int   // n+1 offsets into routeIdx
	routes32 [][]int32
	routes   [][]int32 // active-set views passed to the allocator
	act      []active
	rateBuf  []float64
	alloc    allocator
}

var runPool = sync.Pool{New: func() any { return new(runScratch) }}

// RunContext is Run with cooperative cancellation: the event loop polls ctx
// every few hundred iterations and aborts with ctx.Err() once it is done,
// so callers (the estimation service) can cut short abandoned simulations.
func RunContext(ctx context.Context, t *topo.Topology, flows []workload.Flow) (*Result, error) {
	n := len(flows)
	res := &Result{
		FCT:      make([]unit.Time, n),
		Slowdown: make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}
	sc := runPool.Get().(*runScratch)
	defer runPool.Put(sc)
	order := sc.order[:0]
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	sc.order = order
	sort.Slice(order, func(a, b int) bool {
		fa, fb := &flows[order[a]], &flows[order[b]]
		if fa.Arrival != fb.Arrival {
			return fa.Arrival < fb.Arrival
		}
		return fa.ID < fb.ID
	})
	for i := range flows {
		f := &flows[i]
		if int(f.ID) < 0 || int(f.ID) >= n {
			return nil, fmt.Errorf("flowsim: flow ID %d out of range [0,%d)", f.ID, n)
		}
		if len(f.Route) == 0 {
			return nil, fmt.Errorf("flowsim: flow %d has no route", f.ID)
		}
	}

	caps := sc.caps[:0]
	for i := range t.Links {
		caps = append(caps, float64(t.Links[i].Rate)) // bits/s
	}
	sc.caps = caps
	// Pre-convert routes once (into one flat slab) so the per-event recompute
	// allocates nothing.
	routeIdx, routeOff := sc.routeIdx[:0], sc.routeOff[:0]
	for i := range flows {
		routeOff = append(routeOff, len(routeIdx))
		for _, l := range flows[i].Route {
			routeIdx = append(routeIdx, int32(l))
		}
	}
	routeOff = append(routeOff, len(routeIdx))
	sc.routeIdx, sc.routeOff = routeIdx, routeOff
	routes32 := sc.routes32[:0]
	for i := 0; i < n; i++ {
		routes32 = append(routes32, routeIdx[routeOff[i]:routeOff[i+1]])
	}
	sc.routes32 = routes32

	act := sc.act[:0]
	routes := sc.routes[:0] // scratch for the allocator's active set

	const eps = 1e-6 // bits; completion tolerance
	// done reports whether an active flow should be considered complete. The
	// rate-relative term catches residuals so small that now + residual/rate
	// rounds to now in float64 (which would otherwise stall the event loop).
	done := func(remaining, rate float64) bool {
		return remaining <= eps || remaining <= rate*1e-12
	}

	now := 0.0 // seconds
	next := 0  // next arrival in order
	stalls := 0
	sc.alloc.reset(caps)
	alloc := &sc.alloc
	rateBuf := sc.rateBuf
	// Hand the (possibly re-grown) buffers back to the scratch on every exit
	// so the pool keeps their capacity.
	defer func() { sc.act, sc.routes, sc.rateBuf = act, routes, rateBuf }()
	recompute := func() {
		routes = routes[:0]
		for i := range act {
			routes = append(routes, routes32[act[i].idx])
		}
		if cap(rateBuf) < len(act) {
			rateBuf = make([]float64, len(act)*2)
		}
		rates := rateBuf[:len(act)]
		alloc.alloc(routes, rates)
		for i := range act {
			act[i].rate = rates[i]
		}
	}

	iter := 0
	for next < n || len(act) > 0 {
		if iter++; iter%ctxPollInterval == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		// Earliest completion among active flows.
		tc := math.Inf(1)
		for i := range act {
			if act[i].rate > 0 {
				c := now + act[i].remaining/act[i].rate
				if c < tc {
					tc = c
				}
			}
		}
		// Next arrival.
		ta := math.Inf(1)
		if next < n {
			ta = flows[order[next]].Arrival.Seconds()
		}
		tNext := math.Min(tc, ta)
		if math.IsInf(tNext, 1) {
			return nil, fmt.Errorf("flowsim: stalled with %d active flows (zero rates)", len(act))
		}
		dt := tNext - now
		if dt > 0 {
			for i := range act {
				act[i].remaining -= act[i].rate * dt
			}
			now = tNext
		} else {
			now = tNext
		}

		changed := false
		// Completions: remove drained flows (swap-remove).
		for i := 0; i < len(act); {
			if done(act[i].remaining, act[i].rate) {
				fi := act[i].idx
				f := &flows[fi]
				fluid := unit.FromSeconds(now - f.Arrival.Seconds())
				rates := t.RouteRates(f.Route)
				delays := t.RouteDelays(f.Route)
				ideal := unit.IdealFCT(f.Size, rates, delays)
				bottleneck := rates[0]
				for _, r := range rates {
					if r < bottleneck {
						bottleneck = r
					}
				}
				// Latency factor: everything in the ideal FCT except the
				// bottleneck serialization, which the fluid model covers.
				latency := ideal - unit.TxTime(unit.WireSize(f.Size), bottleneck)
				fct := fluid + latency
				if fct < ideal {
					// The fluid drain is continuous-time while the ideal
					// rounds serializations up to the nanosecond; clamp so
					// an uncontended flow has slowdown exactly 1.
					fct = ideal
				}
				res.FCT[f.ID] = fct
				res.Slowdown[f.ID] = float64(fct) / float64(ideal)
				act[i] = act[len(act)-1]
				act = act[:len(act)-1]
				changed = true
				continue
			}
			i++
		}
		// Arrivals at this instant.
		for next < n && flows[order[next]].Arrival.Seconds() <= now+1e-15 {
			f := &flows[order[next]]
			act = append(act, active{
				idx:       order[next],
				remaining: float64(f.WireSize().Bits()),
			})
			next++
			changed = true
		}
		if changed {
			stalls = 0
			if len(act) > 0 {
				recompute()
			}
		} else if dt <= 0 {
			if stalls++; stalls > 1000 {
				return nil, fmt.Errorf("flowsim: event loop stalled at t=%.9fs with %d active flows",
					now, len(act))
			}
		}
	}
	return res, nil
}

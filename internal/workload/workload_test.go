package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/unit"
)

func TestParametricSizeMeans(t *testing.T) {
	r := rng.New(1)
	dists := []SizeDist{
		ParetoSize{MeanBytes: 10000, Alpha: 2.5},
		ExpSize{MeanBytes: 10000},
		LogNormalSize{MeanBytes: 10000, Sigma: 1},
	}
	for _, d := range dists {
		var sum float64
		n := 200000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(r))
		}
		mean := sum / float64(n)
		if math.Abs(mean-d.Mean())/d.Mean() > 0.1 {
			t.Errorf("%s: empirical mean %v vs nominal %v", d.Name(), mean, d.Mean())
		}
	}
}

func TestGaussianSizeTruncation(t *testing.T) {
	r := rng.New(2)
	d := GaussianSize{MeanBytes: 1000}
	for i := 0; i < 10000; i++ {
		if d.Sample(r) < 1 {
			t.Fatal("sampled size below 1 byte")
		}
	}
}

func TestSizeSamplesPositive(t *testing.T) {
	r := rng.New(3)
	dists := []SizeDist{
		ParetoSize{MeanBytes: 100, Alpha: 1.2},
		ExpSize{MeanBytes: 100},
		GaussianSize{MeanBytes: 100},
		LogNormalSize{MeanBytes: 100, Sigma: 2},
		WebServer, CacheFollower, Hadoop,
	}
	for _, d := range dists {
		for i := 0; i < 5000; i++ {
			if s := d.Sample(r); s < 1 {
				t.Fatalf("%s sampled %d", d.Name(), s)
			}
		}
	}
}

func TestEmpiricalCDFShapes(t *testing.T) {
	// WebServer should be much smaller-bodied than Hadoop.
	r := rng.New(4)
	count := func(d SizeDist, thresh unit.ByteSize) float64 {
		small := 0
		n := 50000
		for i := 0; i < n; i++ {
			if d.Sample(r) <= thresh {
				small++
			}
		}
		return float64(small) / float64(n)
	}
	wsSmall := count(WebServer, 1000)
	hadoopSmall := count(Hadoop, 1000)
	cacheSmall := count(CacheFollower, 1000)
	if wsSmall < 0.7 {
		t.Errorf("WebServer P(size<=1KB) = %v, want > 0.7", wsSmall)
	}
	if !(wsSmall > hadoopSmall && hadoopSmall > cacheSmall) {
		t.Errorf("small-flow ordering violated: ws=%v hadoop=%v cache=%v",
			wsSmall, hadoopSmall, cacheSmall)
	}
}

func TestEmpiricalMeanConsistent(t *testing.T) {
	r := rng.New(5)
	for _, d := range []*EmpiricalSize{WebServer, CacheFollower, Hadoop} {
		var sum float64
		n := 300000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(r))
		}
		mean := sum / float64(n)
		if math.Abs(mean-d.Mean())/d.Mean() > 0.1 {
			t.Errorf("%s: empirical mean %v vs analytic %v", d.Name(), mean, d.Mean())
		}
	}
}

func TestNewEmpiricalSizeValidation(t *testing.T) {
	if _, err := NewEmpiricalSize("x", []float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewEmpiricalSize("x", []float64{2, 1}, []float64{0.5, 1}); err == nil {
		t.Error("descending sizes accepted")
	}
	if _, err := NewEmpiricalSize("x", []float64{1, 2}, []float64{0.5, 0.9}); err == nil {
		t.Error("CDF not reaching 1 accepted")
	}
}

func TestMetaDistLookup(t *testing.T) {
	for _, name := range []string{"WebServer", "CacheFollower", "Hadoop"} {
		d, err := MetaDist(name)
		if err != nil || d.Name() != name {
			t.Errorf("MetaDist(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := MetaDist("nope"); err == nil {
		t.Error("unknown dist accepted")
	}
}

func TestMatrixShapes(t *testing.T) {
	r := rng.New(6)
	for _, name := range []string{"A", "B", "C", "uniform"} {
		m, err := Matrix(name, 32, r)
		if err != nil {
			t.Fatal(err)
		}
		if m.Racks() != 32 {
			t.Errorf("%s: %d racks", name, m.Racks())
		}
		for i := 0; i < 32; i++ {
			if m.W[i][i] != 0 {
				t.Errorf("%s: diagonal not zero at %d", name, i)
			}
		}
	}
	if _, err := Matrix("Z", 32, r); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestMatrixSkewOrdering(t *testing.T) {
	r := rng.New(7)
	a := MatrixA(32, r.Split(1)).Skew()
	b := MatrixB(32, r.Split(2)).Skew()
	c := MatrixC(32, r.Split(3)).Skew()
	if !(c > a && a > b) {
		t.Errorf("skew ordering violated: C=%v A=%v B=%v (want C > A > B)", c, a, b)
	}
}

func smallTopoAndRouter(t *testing.T) (*topo.FatTree, routing.Router) {
	t.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	return ft, routing.NewFatTreeRouter(ft)
}

func TestGenerateBasics(t *testing.T) {
	ft, router := smallTopoAndRouter(t)
	r := rng.New(8)
	spec := Spec{
		NumFlows:   2000,
		Sizes:      WebServer,
		Matrix:     MatrixB(32, r),
		Burstiness: 1,
		MaxLoad:    0.5,
		Seed:       42,
	}
	flows, err := Generate(ft, router, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2000 {
		t.Fatalf("%d flows", len(flows))
	}
	for i := range flows {
		f := &flows[i]
		if f.Src == f.Dst {
			t.Fatal("flow with src == dst")
		}
		if f.Size < 1 {
			t.Fatal("flow with zero size")
		}
		if err := ft.ValidateRoute(f.Src, f.Dst, f.Route); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
		if i > 0 && f.Arrival < flows[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestGenerateLoadCalibration(t *testing.T) {
	ft, router := smallTopoAndRouter(t)
	r := rng.New(9)
	for _, load := range []float64{0.2, 0.5, 0.8} {
		spec := Spec{
			NumFlows: 3000, Sizes: CacheFollower, Matrix: MatrixA(32, r.Split(uint64(load*10))),
			Burstiness: 1.5, MaxLoad: load, Seed: 7,
		}
		flows, err := Generate(ft, router, spec)
		if err != nil {
			t.Fatal(err)
		}
		got := PeakUtilization(ft.Topology, flows)
		if math.Abs(got-load)/load > 0.01 {
			t.Errorf("MaxLoad %v: realized peak %v", load, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ft, router := smallTopoAndRouter(t)
	r1, r2 := rng.New(10), rng.New(10)
	spec := Spec{NumFlows: 500, Sizes: Hadoop, Burstiness: 2, MaxLoad: 0.4, Seed: 5}
	spec.Matrix = MatrixC(32, r1)
	a, err := Generate(ft, router, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Matrix = MatrixC(32, r2)
	b, err := Generate(ft, router, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Size != b[i].Size || a[i].Arrival != b[i].Arrival {
			t.Fatalf("flow %d differs between identical generations", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	ft, router := smallTopoAndRouter(t)
	r := rng.New(11)
	good := Spec{NumFlows: 10, Sizes: WebServer, Matrix: MatrixB(32, r), Burstiness: 1, MaxLoad: 0.5}
	bads := []func(*Spec){
		func(s *Spec) { s.NumFlows = 0 },
		func(s *Spec) { s.Sizes = nil },
		func(s *Spec) { s.Matrix = nil },
		func(s *Spec) { s.Burstiness = 0 },
		func(s *Spec) { s.MaxLoad = 0 },
		func(s *Spec) { s.MaxLoad = 1 },
		func(s *Spec) { s.Matrix = MatrixB(8, r) }, // rack mismatch
	}
	for i, mutate := range bads {
		s := good
		mutate(&s)
		if _, err := Generate(ft, router, s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestBurstinessIncreasesClumping(t *testing.T) {
	ft, router := smallTopoAndRouter(t)
	r := rng.New(12)
	cv := func(sigma float64) float64 {
		spec := Spec{NumFlows: 5000, Sizes: WebServer, Matrix: MatrixB(32, r.Split(uint64(sigma*100))),
			Burstiness: sigma, MaxLoad: 0.5, Seed: 3}
		flows, err := Generate(ft, router, spec)
		if err != nil {
			t.Fatal(err)
		}
		gaps := make([]float64, 0, len(flows)-1)
		for i := 1; i < len(flows); i++ {
			gaps = append(gaps, float64(flows[i].Arrival-flows[i-1].Arrival))
		}
		var sum, sumSq float64
		for _, g := range gaps {
			sum += g
		}
		mean := sum / float64(len(gaps))
		for _, g := range gaps {
			sumSq += (g - mean) * (g - mean)
		}
		return math.Sqrt(sumSq/float64(len(gaps))) / mean
	}
	low, high := cv(1.0), cv(2.0)
	if high <= low {
		t.Errorf("burstiness sigma=2 CV (%v) not above sigma=1 CV (%v)", high, low)
	}
}

func TestWireSize(t *testing.T) {
	f := Flow{Size: 2500}
	// 3 packets -> 3 headers
	want := unit.ByteSize(2500 + 3*48)
	if got := f.WireSize(); got != want {
		t.Errorf("WireSize = %v, want %v", got, want)
	}
}

func TestSortByArrival(t *testing.T) {
	flows := []Flow{
		{ID: 0, Arrival: 30},
		{ID: 1, Arrival: 10},
		{ID: 2, Arrival: 20},
	}
	SortByArrival(flows)
	if !sort.SliceIsSorted(flows, func(i, j int) bool { return flows[i].Arrival < flows[j].Arrival }) {
		t.Error("not sorted")
	}
	for i := range flows {
		if flows[i].ID != FlowID(i) {
			t.Error("IDs not reassigned densely")
		}
	}
}

func TestGenerateSynthetic(t *testing.T) {
	spec := SynthSpec{
		Hops: 4, NumFg: 300, BgPerLink: 0.5,
		Sizes: CacheFollower, Burstiness: 1.5, MaxLoad: 0.5, Seed: 1,
	}
	syn, err := GenerateSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumFg() != 300 {
		t.Errorf("NumFg = %d, want 300", syn.NumFg())
	}
	wantBg := int(4 * 0.5 * 300)
	if got := len(syn.Flows) - 300; got != wantBg {
		t.Errorf("bg count = %d, want %d", got, wantBg)
	}
	fgRoute := syn.Lot.FgRoute()
	for i := range syn.Flows {
		f := &syn.Flows[i]
		if err := syn.Lot.ValidateRoute(f.Src, f.Dst, f.Route); err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
		if syn.IsFg(f.ID) {
			if len(f.Route) != len(fgRoute) {
				t.Fatal("fg flow not on full path")
			}
		} else {
			// bg flows use at least one path link but never all of them
			// unless they're interior-spanning; they must include a stub.
			if len(f.Route) < 2 {
				t.Fatal("bg route too short to include stubs")
			}
		}
	}
	if got := len(syn.FgFlows()); got != 300 {
		t.Errorf("FgFlows returned %d", got)
	}
}

func TestGenerateSyntheticLoadTarget(t *testing.T) {
	spec := SynthSpec{
		Hops: 2, NumFg: 500, BgPerLink: 1,
		Sizes: WebServer, Burstiness: 1, MaxLoad: 0.6, Seed: 2,
	}
	syn, err := GenerateSynthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the most loaded *path* link is at 0.6.
	onPath := make(map[topo.LinkID]bool)
	for _, l := range syn.Lot.PathLinks {
		onPath[l] = true
	}
	var horizon unit.Time
	bits := make(map[topo.LinkID]float64)
	for i := range syn.Flows {
		f := &syn.Flows[i]
		if f.Arrival > horizon {
			horizon = f.Arrival
		}
		for _, l := range f.Route {
			if onPath[l] {
				bits[l] += float64(f.WireSize().Bits())
			}
		}
	}
	var peak float64
	for l, b := range bits {
		u := b / (float64(syn.Lot.Link(l).Rate) * horizon.Seconds())
		if u > peak {
			peak = u
		}
	}
	if math.Abs(peak-0.6) > 0.01 {
		t.Errorf("path peak load = %v, want 0.6", peak)
	}
}

func TestGenerateSyntheticValidation(t *testing.T) {
	good := SynthSpec{Hops: 2, NumFg: 10, Sizes: WebServer, Burstiness: 1, MaxLoad: 0.5}
	bads := []func(*SynthSpec){
		func(s *SynthSpec) { s.Hops = 0 },
		func(s *SynthSpec) { s.Hops = 17 },
		func(s *SynthSpec) { s.NumFg = 0 },
		func(s *SynthSpec) { s.BgPerLink = -1 },
		func(s *SynthSpec) { s.Sizes = nil },
		func(s *SynthSpec) { s.Burstiness = 0 },
		func(s *SynthSpec) { s.MaxLoad = 1.5 },
	}
	for i, mutate := range bads {
		s := good
		mutate(&s)
		if _, err := GenerateSynthetic(s); err == nil {
			t.Errorf("bad synth spec %d accepted", i)
		}
	}
}

func TestDefaultPathRates(t *testing.T) {
	r := DefaultPathRates(4)
	if r[0] != 10*unit.Gbps || r[3] != 10*unit.Gbps {
		t.Error("access links should be 10Gbps")
	}
	if r[1] != 40*unit.Gbps || r[2] != 40*unit.Gbps {
		t.Error("fabric links should be 40Gbps")
	}
	single := DefaultPathRates(1)
	if single[0] != 10*unit.Gbps {
		t.Error("single link should be 10Gbps")
	}
}

// Property: load calibration hits any target in (0,1) for arbitrary seeds.
func TestCalibrationProperty(t *testing.T) {
	ft, router := smallTopoAndRouter(t)
	r := rng.New(13)
	m := MatrixB(32, r)
	f := func(seed uint16, loadPct uint8) bool {
		load := 0.1 + 0.8*float64(loadPct)/255
		spec := Spec{NumFlows: 200, Sizes: WebServer, Matrix: m,
			Burstiness: 1, MaxLoad: load, Seed: uint64(seed)}
		flows, err := Generate(ft, router, spec)
		if err != nil {
			return false
		}
		got := PeakUtilization(ft.Topology, flows)
		return math.Abs(got-load)/load < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

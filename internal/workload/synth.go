package workload

import (
	"fmt"

	"m3/internal/rng"
	"m3/internal/topo"
	"m3/internal/unit"
)

// SynthSpec describes one synthetic parking-lot training scenario (the
// paper's Table 2 axes). Training scenarios are single paths of 1-6 hops
// with foreground flows along the whole path and background flows joining
// and leaving at interior nodes.
type SynthSpec struct {
	Hops       int      // path length in links (paper: 2, 4, 6; 1 for Fig. 3)
	NumFg      int      // number of foreground flows (paper: 20000)
	BgPerLink  float64  // mean background flows per link, as a multiple of NumFg
	Sizes      SizeDist // flow size distribution for both fg and bg
	Burstiness float64  // lognormal sigma of inter-arrival gaps
	MaxLoad    float64  // target utilization of the most loaded path link
	Seed       uint64
	// Rates optionally overrides the per-link rates (default
	// DefaultPathRates(Hops)); len must equal Hops when set.
	Rates []unit.Rate
}

// Validate reports specification errors.
func (s SynthSpec) Validate() error {
	switch {
	case s.Hops < 1 || s.Hops > 16:
		return fmt.Errorf("workload: Hops must be in [1,16], got %d", s.Hops)
	case s.NumFg <= 0:
		return fmt.Errorf("workload: NumFg must be positive")
	case s.BgPerLink < 0:
		return fmt.Errorf("workload: BgPerLink must be non-negative")
	case s.Sizes == nil:
		return fmt.Errorf("workload: Sizes is nil")
	case s.Burstiness <= 0:
		return fmt.Errorf("workload: Burstiness must be positive")
	case s.MaxLoad <= 0 || s.MaxLoad >= 1:
		return fmt.Errorf("workload: MaxLoad must be in (0,1)")
	}
	return nil
}

// DefaultPathRates returns the link rates of a hops-long data center path:
// 10 Gbps access links at both ends and 40 Gbps fabric links in between
// (a single link is a 10 Gbps host link).
func DefaultPathRates(hops int) []unit.Rate {
	rates := make([]unit.Rate, hops)
	for i := range rates {
		if i == 0 || i == hops-1 {
			rates[i] = 10 * unit.Gbps
		} else {
			rates[i] = 40 * unit.Gbps
		}
	}
	return rates
}

// DefaultPathDelays returns 1 microsecond of propagation per hop.
func DefaultPathDelays(hops int) []unit.Time {
	ds := make([]unit.Time, hops)
	for i := range ds {
		ds[i] = unit.Microsecond
	}
	return ds
}

// Synthetic is a generated parking-lot scenario: the topology, all flows
// (foreground first), and the count of foreground flows. Flows are sorted
// by arrival with dense IDs; the foreground flows are those with
// Route equal to the full path (use IsFg).
type Synthetic struct {
	Lot   *topo.ParkingLot
	Flows []Flow
	fgSet []bool
}

// IsFg reports whether flow id is a foreground flow.
func (s *Synthetic) IsFg(id FlowID) bool { return s.fgSet[id] }

// NumFg returns the number of foreground flows.
func (s *Synthetic) NumFg() int {
	n := 0
	for _, b := range s.fgSet {
		if b {
			n++
		}
	}
	return n
}

// FgFlows returns the foreground flows.
func (s *Synthetic) FgFlows() []Flow {
	var fg []Flow
	for i := range s.Flows {
		if s.fgSet[s.Flows[i].ID] {
			fg = append(fg, s.Flows[i])
		}
	}
	return fg
}

// GenerateSynthetic builds a parking-lot scenario per spec. Background flows
// span a contiguous run of path links: the span start is uniform and the
// length is geometric with mean ~1.6 links, so most background flows cross
// one or two hops (matching how DC paths intersect). Background flows from
// the same virtual origin host share a synthetic stub. Arrivals are
// calibrated so the most loaded original link hits MaxLoad.
func GenerateSynthetic(spec SynthSpec) (*Synthetic, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(spec.Seed)
	rates := spec.Rates
	if rates == nil {
		rates = DefaultPathRates(spec.Hops)
	} else if len(rates) != spec.Hops {
		return nil, fmt.Errorf("workload: %d rate overrides for %d hops", len(rates), spec.Hops)
	}
	delays := DefaultPathDelays(spec.Hops)
	lot, err := topo.NewParkingLot(rates, delays)
	if err != nil {
		return nil, err
	}

	mu := rng.MuForMean(1, spec.Burstiness)
	numBg := int(float64(spec.Hops) * spec.BgPerLink * float64(spec.NumFg))
	total := spec.NumFg + numBg
	flows := make([]Flow, 0, total)
	fgSet := make([]bool, total)

	// Virtual origin hosts for background stub sharing: several per junction.
	const originsPerJunction = 8
	hostRate := 10 * unit.Gbps

	var now float64
	fgLeft, bgLeft := spec.NumFg, numBg
	fgRoute := lot.FgRoute()
	for fgLeft+bgLeft > 0 {
		now += r.LogNormal(mu, spec.Burstiness)
		arrival := unit.FromSeconds(now)
		// Interleave fg and bg arrivals proportionally.
		isFg := r.Float64()*float64(fgLeft+bgLeft) < float64(fgLeft)
		id := FlowID(len(flows))
		if isFg {
			fgLeft--
			fgSet[id] = true
			flows = append(flows, Flow{
				ID: id, Src: lot.FgSrc(), Dst: lot.FgDst(),
				Size: spec.Sizes.Sample(r), Arrival: arrival,
				Route: fgRoute,
			})
			continue
		}
		bgLeft--
		join := r.Intn(spec.Hops)
		span := 1
		for span < spec.Hops-join && r.Float64() < 0.4 {
			span++
		}
		exit := join + span
		srcKey := uint64(join*originsPerJunction + r.Intn(originsPerJunction))
		dstKey := uint64(1<<32) | uint64(exit*originsPerJunction+r.Intn(originsPerJunction))
		src, dst, route, err := lot.AttachBg(srcKey, dstKey, join, exit,
			hostRate, hostRate, unit.Microsecond)
		if err != nil {
			return nil, err
		}
		flows = append(flows, Flow{
			ID: id, Src: src, Dst: dst,
			Size: spec.Sizes.Sample(r), Arrival: arrival,
			Route: route,
		})
	}

	// Calibrate against original path links only: stub links are synthetic
	// capacity and must not drive the load target.
	if err := calibratePathLoad(lot, flows, spec.MaxLoad); err != nil {
		return nil, err
	}
	return &Synthetic{Lot: lot, Flows: flows, fgSet: fgSet}, nil
}

func calibratePathLoad(lot *topo.ParkingLot, flows []Flow, maxLoad float64) error {
	if len(flows) == 0 {
		return fmt.Errorf("workload: no flows to calibrate")
	}
	onPath := make(map[topo.LinkID]bool, len(lot.PathLinks))
	for _, l := range lot.PathLinks {
		onPath[l] = true
	}
	var horizon unit.Time
	linkBits := make(map[topo.LinkID]float64, len(lot.PathLinks))
	for i := range flows {
		f := &flows[i]
		if f.Arrival > horizon {
			horizon = f.Arrival
		}
		bits := float64(f.WireSize().Bits())
		for _, l := range f.Route {
			if onPath[l] {
				linkBits[l] += bits
			}
		}
	}
	if horizon <= 0 {
		return fmt.Errorf("workload: degenerate horizon")
	}
	sec := horizon.Seconds()
	var peak float64
	for id, bits := range linkBits {
		u := bits / (float64(lot.Link(id).Rate) * sec)
		if u > peak {
			peak = u
		}
	}
	if peak <= 0 {
		return fmt.Errorf("workload: no bytes on path links")
	}
	scale := peak / maxLoad
	for i := range flows {
		flows[i].Arrival = unit.Time(float64(flows[i].Arrival) * scale)
	}
	return nil
}

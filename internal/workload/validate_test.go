package workload

import (
	"errors"
	"strings"
	"testing"

	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/validate"
)

func generatedWorkload(t *testing.T) (*topo.FatTree, []Flow) {
	t.Helper()
	ft, err := topo.SmallFatTree(topo.Oversub2to1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	flows, err := Generate(ft, routing.NewFatTreeRouter(ft), Spec{
		NumFlows: 200, Sizes: WebServer, Matrix: MatrixB(32, r),
		Burstiness: 1.5, MaxLoad: 0.4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, flows
}

func TestWorkloadValidateOK(t *testing.T) {
	ft, flows := generatedWorkload(t)
	if err := (Workload{Topo: ft.Topology, Flows: flows}).Validate(); err != nil {
		t.Fatalf("generated workload rejected: %v", err)
	}
	if err := ValidateFlows(ft.Topology, flows); err != nil {
		t.Fatalf("ValidateFlows: %v", err)
	}
}

func TestWorkloadValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(flows []Flow)
		field   string
	}{
		{"sparse id", func(fl []Flow) { fl[5].ID = 99 }, "Flows[5].ID"},
		{"zero size", func(fl []Flow) { fl[1].Size = 0 }, "Flows[1].Size"},
		{"huge size", func(fl []Flow) { fl[1].Size = MaxFlowSize + 1 }, "Flows[1].Size"},
		{"negative arrival", func(fl []Flow) { fl[2].Arrival = -5 }, "Flows[2].Arrival"},
		{"no route", func(fl []Flow) { fl[3].Route = nil }, "Flows[3].Route"},
		{"bad link", func(fl []Flow) { fl[4].Route = []topo.LinkID{-1} }, "Flows[4].Route"},
		{"src out of range", func(fl []Flow) { fl[6].Src = -2 }, "Flows[6].Src"},
		{"self flow", func(fl []Flow) { fl[7].Dst = fl[7].Src }, "Flows[7].Dst"},
		{"disconnected route", func(fl []Flow) {
			fl[8].Route = append([]topo.LinkID{}, fl[8].Route...)
			fl[8].Route[0], fl[8].Route[len(fl[8].Route)-1] =
				fl[8].Route[len(fl[8].Route)-1], fl[8].Route[0]
		}, "Flows[8].Route"},
	}
	for _, tc := range cases {
		ft, flows := generatedWorkload(t)
		tc.corrupt(flows)
		err := Workload{Topo: ft.Topology, Flows: flows}.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ve *validate.Error
		if !errors.As(err, &ve) {
			t.Errorf("%s: error %T is not *validate.Error: %v", tc.name, err, err)
			continue
		}
		if ve.Field != tc.field {
			t.Errorf("%s: field = %q, want %q (%v)", tc.name, ve.Field, tc.field, err)
		}
	}
	if err := (Workload{Topo: nil, Flows: nil}).Validate(); err == nil {
		t.Error("nil topology accepted")
	}
}

// TestMetaDistsValid proves the transcribed Meta CDF tables construct
// cleanly — the check that used to be an init-time panic.
func TestMetaDistsValid(t *testing.T) {
	if metaDistErr != nil {
		t.Fatalf("built-in Meta distributions failed to build: %v", metaDistErr)
	}
	for _, name := range []string{"WebServer", "CacheFollower", "Hadoop"} {
		d, err := MetaDist(name)
		if err != nil {
			t.Fatalf("MetaDist(%s): %v", name, err)
		}
		if d == nil || d.Mean() <= 0 {
			t.Errorf("%s: nil or degenerate distribution", name)
		}
	}
	if _, err := MetaDist("nope"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown name error = %v", err)
	}
}

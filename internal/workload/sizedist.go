package workload

import (
	"fmt"
	"math"
	"sort"

	"m3/internal/rng"
	"m3/internal/unit"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Sample draws one flow size (always >= 1 byte).
	Sample(r *rng.RNG) unit.ByteSize
	// Mean returns the distribution mean in bytes.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

func clampSize(v float64) unit.ByteSize {
	if v < 1 {
		return 1
	}
	if v > 1e9 {
		return 1e9
	}
	return unit.ByteSize(math.Round(v))
}

// ParetoSize is a Pareto flow size distribution with the given mean (the
// paper's size parameter theta) and tail shape alpha (> 1).
type ParetoSize struct {
	MeanBytes float64
	Alpha     float64
}

// Sample implements SizeDist.
func (p ParetoSize) Sample(r *rng.RNG) unit.ByteSize {
	scale := p.MeanBytes * (p.Alpha - 1) / p.Alpha
	return clampSize(r.Pareto(scale, p.Alpha))
}

// Mean implements SizeDist.
func (p ParetoSize) Mean() float64 { return p.MeanBytes }

// Name implements SizeDist.
func (p ParetoSize) Name() string { return fmt.Sprintf("pareto(%g,%g)", p.MeanBytes, p.Alpha) }

// ExpSize is an exponential flow size distribution.
type ExpSize struct{ MeanBytes float64 }

// Sample implements SizeDist.
func (e ExpSize) Sample(r *rng.RNG) unit.ByteSize { return clampSize(r.Exp(e.MeanBytes)) }

// Mean implements SizeDist.
func (e ExpSize) Mean() float64 { return e.MeanBytes }

// Name implements SizeDist.
func (e ExpSize) Name() string { return fmt.Sprintf("exp(%g)", e.MeanBytes) }

// GaussianSize is a truncated Gaussian flow size distribution with standard
// deviation MeanBytes/2 (truncation at 1 byte slightly raises the effective
// mean; Mean reports the nominal value used for load calibration, and the
// generator's realized-load calibration absorbs the difference).
type GaussianSize struct{ MeanBytes float64 }

// Sample implements SizeDist.
func (g GaussianSize) Sample(r *rng.RNG) unit.ByteSize {
	return clampSize(r.Normal(g.MeanBytes, g.MeanBytes/2))
}

// Mean implements SizeDist.
func (g GaussianSize) Mean() float64 { return g.MeanBytes }

// Name implements SizeDist.
func (g GaussianSize) Name() string { return fmt.Sprintf("gaussian(%g)", g.MeanBytes) }

// LogNormalSize is a lognormal flow size distribution with the given mean
// and log-space shape.
type LogNormalSize struct {
	MeanBytes float64
	Sigma     float64
}

// Sample implements SizeDist.
func (l LogNormalSize) Sample(r *rng.RNG) unit.ByteSize {
	mu := rng.MuForMean(l.MeanBytes, l.Sigma)
	return clampSize(r.LogNormal(mu, l.Sigma))
}

// Mean implements SizeDist.
func (l LogNormalSize) Mean() float64 { return l.MeanBytes }

// Name implements SizeDist.
func (l LogNormalSize) Name() string { return fmt.Sprintf("lognormal(%g,%g)", l.MeanBytes, l.Sigma) }

// EmpiricalSize samples from a piecewise-linear CDF given as (size,
// cumulative probability) points. It reproduces the Meta production
// distributions the paper evaluates on (Fig. 18b).
type EmpiricalSize struct {
	DistName string
	Sizes    []float64 // ascending
	Probs    []float64 // ascending, ending at 1
	mean     float64
}

// NewEmpiricalSize validates the points and precomputes the mean.
func NewEmpiricalSize(name string, sizes, probs []float64) (*EmpiricalSize, error) {
	if len(sizes) != len(probs) || len(sizes) < 2 {
		return nil, fmt.Errorf("empirical %q: need >= 2 matching points", name)
	}
	if !sort.Float64sAreSorted(sizes) || !sort.Float64sAreSorted(probs) {
		return nil, fmt.Errorf("empirical %q: points must be ascending", name)
	}
	if math.Abs(probs[len(probs)-1]-1) > 1e-9 {
		return nil, fmt.Errorf("empirical %q: last probability must be 1, got %v", name, probs[len(probs)-1])
	}
	e := &EmpiricalSize{DistName: name, Sizes: sizes, Probs: probs}
	// Mean of the piecewise-linear CDF: each segment contributes
	// (p_i - p_{i-1}) * (s_i + s_{i-1})/2, with the initial mass at sizes[0].
	mean := probs[0] * sizes[0]
	for i := 1; i < len(sizes); i++ {
		mean += (probs[i] - probs[i-1]) * (sizes[i] + sizes[i-1]) / 2
	}
	e.mean = mean
	return e, nil
}

// Sample implements SizeDist via inverse-CDF with linear interpolation.
func (e *EmpiricalSize) Sample(r *rng.RNG) unit.ByteSize {
	u := r.Float64()
	i := sort.SearchFloat64s(e.Probs, u)
	if i == 0 {
		return clampSize(e.Sizes[0])
	}
	if i >= len(e.Probs) {
		return clampSize(e.Sizes[len(e.Sizes)-1])
	}
	p0, p1 := e.Probs[i-1], e.Probs[i]
	s0, s1 := e.Sizes[i-1], e.Sizes[i]
	if p1 == p0 {
		return clampSize(s1)
	}
	frac := (u - p0) / (p1 - p0)
	return clampSize(s0 + frac*(s1-s0))
}

// Mean implements SizeDist.
func (e *EmpiricalSize) Mean() float64 { return e.mean }

// Name implements SizeDist.
func (e *EmpiricalSize) Name() string { return e.DistName }

// metaDistErr records the first construction error of the built-in Meta
// distributions. The transcribed CDF points are static and valid, but a bad
// edit surfaces here as a returned error from MetaDist (and a nil
// distribution that Spec.Validate rejects) instead of an init-time panic.
var metaDistErr error

func buildEmpirical(name string, pts [][2]float64) *EmpiricalSize {
	sizes := make([]float64, len(pts))
	probs := make([]float64, len(pts))
	for i, p := range pts {
		sizes[i], probs[i] = p[0], p[1]
	}
	e, err := NewEmpiricalSize(name, sizes, probs)
	if err != nil {
		if metaDistErr == nil {
			metaDistErr = err
		}
		return nil
	}
	return e
}

// The three Meta production size distributions (Roy et al., SIGCOMM'15) the
// paper evaluates on. The CDF points are transcriptions matching the
// published shapes (Fig. 18b): WebServer is dominated by sub-KB transfers,
// Hadoop mixes small RPCs with multi-MB shuffles, and CacheFollower sits in
// between with a heavier mid-range.
var (
	// WebServer: mostly small request/response traffic.
	WebServer = buildEmpirical("WebServer", [][2]float64{
		{100, 0.12}, {200, 0.30}, {300, 0.45}, {500, 0.60}, {700, 0.70},
		{1e3, 0.78}, {2e3, 0.87}, {5e3, 0.93}, {1e4, 0.96}, {5e4, 0.985},
		{1e5, 0.992}, {5e5, 0.998}, {1e6, 1.0},
	})
	// CacheFollower: cache read/write traffic with a heavier mid-range.
	CacheFollower = buildEmpirical("CacheFollower", [][2]float64{
		{250, 0.10}, {500, 0.18}, {1e3, 0.28}, {2e3, 0.40}, {5e3, 0.52},
		{1e4, 0.62}, {3e4, 0.74}, {5e4, 0.80}, {1e5, 0.87}, {5e5, 0.95},
		{1e6, 0.98}, {5e6, 1.0},
	})
	// Hadoop: RPC-heavy with a long shuffle tail.
	Hadoop = buildEmpirical("Hadoop", [][2]float64{
		{250, 0.20}, {500, 0.40}, {1e3, 0.55}, {2e3, 0.65}, {5e3, 0.75},
		{1e4, 0.82}, {5e4, 0.90}, {1e5, 0.93}, {5e5, 0.965}, {1e6, 0.98},
		{1e7, 1.0},
	})
)

// MetaDist returns one of the three Meta distributions by name. It reports
// any construction error of the built-in tables instead of serving a nil
// distribution.
func MetaDist(name string) (SizeDist, error) {
	if metaDistErr != nil {
		return nil, metaDistErr
	}
	switch name {
	case "WebServer":
		return WebServer, nil
	case "CacheFollower":
		return CacheFollower, nil
	case "Hadoop":
		return Hadoop, nil
	}
	return nil, fmt.Errorf("workload: unknown Meta distribution %q", name)
}

// Package workload generates traffic for the simulators: flows with arrival
// times, sizes, endpoints, and static routes. It implements the paper's
// workload machinery: parametric size distributions for training (Table 2),
// empirical Meta size distributions for evaluation (Fig. 18b), rack-to-rack
// traffic matrices (Fig. 18a), lognormal inter-arrival burstiness, and
// max-link-load calibration.
package workload

import (
	"m3/internal/topo"
	"m3/internal/unit"
)

// FlowID indexes a flow within one workload.
type FlowID int32

// Flow is one transfer: Size bytes from Src to Dst, arriving at Arrival, on
// a fixed Route (paper assumption: static routes known in advance).
type Flow struct {
	ID      FlowID
	Src     topo.NodeID
	Dst     topo.NodeID
	Size    unit.ByteSize
	Arrival unit.Time
	Route   []topo.LinkID
}

// WireSize returns the bytes the flow occupies on the wire including
// per-packet header overhead. All simulators account for this same quantity.
func (f *Flow) WireSize() unit.ByteSize { return unit.WireSize(f.Size) }

// ByArrival sorts flows in place by arrival time (stable in ID for ties).
func ByArrival(flows []Flow) func(i, j int) bool {
	return func(i, j int) bool {
		if flows[i].Arrival != flows[j].Arrival {
			return flows[i].Arrival < flows[j].Arrival
		}
		return flows[i].ID < flows[j].ID
	}
}

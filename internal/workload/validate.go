package workload

import (
	"fmt"

	"m3/internal/topo"
	"m3/internal/validate"
)

// Workload bundles a topology with the flows routed on it: the unit every
// estimation entry point (core.Estimator, the serving layer's registry,
// ground-truth runs) consumes. Validate is the API-boundary gate that makes
// simulator panics unreachable for user-supplied input.
type Workload struct {
	Topo  *topo.Topology
	Flows []Flow
}

// MaxFlowSize bounds one flow's size; it matches the size-distribution clamp
// in this package, so anything larger is malformed input, not traffic.
const MaxFlowSize = 1e9

// Validate checks the workload end to end with typed, field-naming errors:
// the topology's structural invariants, then every flow's ID density,
// size/arrival sanity, and route (in-range duplex links forming a connected
// src->dst chain). Cost is O(nodes + links + total hops), paid once per
// registration, never per estimate.
func (w Workload) Validate() error {
	if err := w.Topo.Validate(); err != nil {
		return err
	}
	if len(w.Flows) == 0 {
		return validate.Errf("workload", "Flows", "is empty")
	}
	nn := topo.NodeID(w.Topo.NumNodes())
	nl := w.Topo.NumLinks()
	for i := range w.Flows {
		f := &w.Flows[i]
		field := func(name string) string { return fmt.Sprintf("Flows[%d].%s", i, name) }
		switch {
		case int(f.ID) != i:
			return validate.Errf("workload", field("ID"),
				"is %d, want %d (IDs must be dense and in order)", f.ID, i)
		case f.Src < 0 || f.Src >= nn:
			return validate.Errf("workload", field("Src"), "node %d out of range [0,%d)", f.Src, nn)
		case f.Dst < 0 || f.Dst >= nn:
			return validate.Errf("workload", field("Dst"), "node %d out of range [0,%d)", f.Dst, nn)
		case f.Src == f.Dst:
			return validate.Errf("workload", field("Dst"), "equals Src (%d); flows need two endpoints", f.Src)
		case f.Size < 1 || f.Size > MaxFlowSize:
			return validate.Errf("workload", field("Size"), "%d outside [1,%d] bytes", f.Size, int64(MaxFlowSize))
		case f.Arrival < 0:
			return validate.Errf("workload", field("Arrival"), "must be non-negative, got %d", f.Arrival)
		case len(f.Route) == 0:
			return validate.Errf("workload", field("Route"), "is empty")
		}
		cur := f.Src
		for h, id := range f.Route {
			if int(id) < 0 || int(id) >= nl {
				return validate.Errf("workload", field("Route"),
					"hop %d: link %d out of range [0,%d)", h, id, nl)
			}
			l := w.Topo.Link(id)
			if l.Src != cur {
				return validate.Errf("workload", field("Route"),
					"hop %d: link %d starts at node %d, expected %d (disconnected route)", h, id, l.Src, cur)
			}
			if l.Reverse < 0 {
				return validate.Errf("workload", field("Route"),
					"hop %d: link %d has no reverse (simplex); ACKs need a duplex path", h, id)
			}
			cur = l.Dst
		}
		if cur != f.Dst {
			return validate.Errf("workload", field("Route"),
				"ends at node %d, expected Dst %d", cur, f.Dst)
		}
	}
	return nil
}

// ValidateFlows is Workload.Validate for callers holding the pieces
// separately.
func ValidateFlows(t *topo.Topology, flows []Flow) error {
	return Workload{Topo: t, Flows: flows}.Validate()
}

package workload

import (
	"fmt"
	"sort"

	"m3/internal/rng"
	"m3/internal/routing"
	"m3/internal/topo"
	"m3/internal/unit"
)

// Spec describes a full-network workload (the paper's Table 3 axes).
type Spec struct {
	NumFlows   int
	Sizes      SizeDist
	Matrix     *TrafficMatrix
	Burstiness float64 // lognormal shape sigma of inter-arrival gaps (1=low, 2=high)
	MaxLoad    float64 // target utilization of the most loaded link, in (0, 1)
	Seed       uint64
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	switch {
	case s.NumFlows <= 0:
		return fmt.Errorf("workload: NumFlows must be positive")
	case s.Sizes == nil:
		return fmt.Errorf("workload: Sizes is nil")
	case s.Matrix == nil:
		return fmt.Errorf("workload: Matrix is nil")
	case s.Burstiness <= 0:
		return fmt.Errorf("workload: Burstiness must be positive")
	case s.MaxLoad <= 0 || s.MaxLoad >= 1:
		return fmt.Errorf("workload: MaxLoad must be in (0,1), got %v", s.MaxLoad)
	}
	return nil
}

// Generate draws a workload on the fat-tree: rack pairs from the traffic
// matrix, hosts uniform within racks, sizes from the size distribution,
// lognormal inter-arrival gaps with shape Burstiness, and ECMP routes fixed
// at generation time. Arrival times are then rescaled so the most loaded
// link's long-run utilization equals MaxLoad exactly for the realized flows
// and routes (the paper picks loads "such that no link exceeds its
// capacity"; this realized-load calibration makes the load axis exact).
func Generate(ft *topo.FatTree, router routing.Router, spec Spec) ([]Flow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	racks := spec.Matrix.Racks()
	if racks != ft.Cfg.NumRacks() {
		return nil, fmt.Errorf("workload: matrix covers %d racks, topology has %d",
			racks, ft.Cfg.NumRacks())
	}
	r := rng.New(spec.Seed)
	pairSampler := rng.NewSampler(spec.Matrix.Flatten())

	mu := rng.MuForMean(1, spec.Burstiness) // unit-mean gaps; rescaled below
	flows := make([]Flow, spec.NumFlows)
	var now float64
	for i := range flows {
		pair := pairSampler.Draw(r)
		si, di := pair/racks, pair%racks
		src, dst, err := pickHosts(ft, r, si, di)
		if err != nil {
			return nil, err
		}
		now += r.LogNormal(mu, spec.Burstiness)
		f := &flows[i]
		f.ID = FlowID(i)
		f.Src, f.Dst = src, dst
		f.Size = spec.Sizes.Sample(r)
		f.Arrival = unit.FromSeconds(now) // provisional; rescaled below
		route, err := router.Route(src, dst, uint64(i)|spec.Seed<<32)
		if err != nil {
			return nil, err
		}
		f.Route = route
	}
	if err := CalibrateLoad(ft.Topology, flows, spec.MaxLoad); err != nil {
		return nil, err
	}
	return flows, nil
}

func pickHosts(ft *topo.FatTree, r *rng.RNG, srcRack, dstRack int) (topo.NodeID, topo.NodeID, error) {
	sh := ft.HostsByRack[srcRack]
	dh := ft.HostsByRack[dstRack]
	if srcRack == dstRack {
		if len(sh) < 2 {
			return 0, 0, fmt.Errorf("workload: intra-rack traffic needs >= 2 hosts in rack %d", srcRack)
		}
		i := r.Intn(len(sh))
		j := r.Intn(len(sh) - 1)
		if j >= i {
			j++
		}
		return sh[i], sh[j], nil
	}
	return sh[r.Intn(len(sh))], dh[r.Intn(len(dh))], nil
}

// CalibrateLoad rescales the arrival times of flows in place so that the
// most loaded link's utilization over the workload's duration equals
// maxLoad. It returns an error when the workload carries no bytes.
func CalibrateLoad(t *topo.Topology, flows []Flow, maxLoad float64) error {
	if len(flows) == 0 {
		return fmt.Errorf("workload: no flows to calibrate")
	}
	peak := PeakUtilization(t, flows)
	if peak <= 0 {
		return fmt.Errorf("workload: zero realized load; cannot calibrate")
	}
	scale := peak / maxLoad
	for i := range flows {
		flows[i].Arrival = unit.Time(float64(flows[i].Arrival) * scale)
	}
	return nil
}

// PeakUtilization returns the highest per-link utilization realized by the
// flows over the span of their arrivals (bytes on link / (rate x horizon)).
func PeakUtilization(t *topo.Topology, flows []Flow) float64 {
	var horizon unit.Time
	linkBits := make([]float64, t.NumLinks())
	for i := range flows {
		f := &flows[i]
		if f.Arrival > horizon {
			horizon = f.Arrival
		}
		bits := float64(f.WireSize().Bits())
		for _, l := range f.Route {
			linkBits[l] += bits
		}
	}
	if horizon <= 0 {
		// All flows arrive at t=0: define the horizon as the time the most
		// loaded link needs to drain everything, i.e. utilization 1.
		return 1
	}
	sec := horizon.Seconds()
	var peak float64
	for id, bits := range linkBits {
		if bits == 0 {
			continue
		}
		u := bits / (float64(t.Link(topo.LinkID(id)).Rate) * sec)
		if u > peak {
			peak = u
		}
	}
	return peak
}

// SortByArrival orders flows by arrival time, reassigning IDs to keep them
// dense and arrival-ordered (simulators rely on this for determinism).
func SortByArrival(flows []Flow) {
	sort.SliceStable(flows, ByArrival(flows))
	for i := range flows {
		flows[i].ID = FlowID(i)
	}
}

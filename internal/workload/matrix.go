package workload

import (
	"fmt"

	"m3/internal/rng"
)

// TrafficMatrix gives the relative volume of traffic between rack pairs.
// W[i][j] is the weight of traffic from rack i to rack j; the diagonal may
// be non-zero (intra-rack traffic picks two distinct hosts in the rack).
type TrafficMatrix struct {
	MatName string
	W       [][]float64
}

// Racks returns the number of racks the matrix covers.
func (m *TrafficMatrix) Racks() int { return len(m.W) }

// Name identifies the matrix in reports.
func (m *TrafficMatrix) Name() string { return m.MatName }

// Flatten returns the weights as a single slice (row-major) for sampling.
func (m *TrafficMatrix) Flatten() []float64 {
	n := len(m.W)
	out := make([]float64, 0, n*n)
	for i := 0; i < n; i++ {
		out = append(out, m.W[i]...)
	}
	return out
}

// Skew summarizes how concentrated the matrix is: the fraction of total
// weight carried by the top 1% of rack pairs. Uniform ~= 0.01; hot-spotted
// matrices approach 1.
func (m *TrafficMatrix) Skew() float64 {
	flat := m.Flatten()
	var total float64
	for _, w := range flat {
		total += w
	}
	if total == 0 {
		return 0
	}
	// partial selection of top 1% via simple sort (matrices are small)
	top := len(flat) / 100
	if top < 1 {
		top = 1
	}
	sorted := append([]float64(nil), flat...)
	for i := 0; i < top; i++ { // selection sort prefix; top is tiny
		maxJ := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[maxJ] {
				maxJ = j
			}
		}
		sorted[i], sorted[maxJ] = sorted[maxJ], sorted[i]
	}
	var topSum float64
	for i := 0; i < top; i++ {
		topSum += sorted[i]
	}
	return topSum / total
}

// UniformMatrix gives equal weight to every ordered rack pair (i != j).
func UniformMatrix(racks int) *TrafficMatrix {
	m := &TrafficMatrix{MatName: "uniform", W: zeroMatrix(racks)}
	for i := 0; i < racks; i++ {
		for j := 0; j < racks; j++ {
			if i != j {
				m.W[i][j] = 1
			}
		}
	}
	return m
}

func zeroMatrix(n int) [][]float64 {
	w := make([][]float64, n)
	cells := make([]float64, n*n)
	for i := range w {
		w[i], cells = cells[:n], cells[n:]
	}
	return w
}

// The paper evaluates on three rack-to-rack matrices extracted from Meta's
// dataset (Fig. 18a). The dataset itself is proprietary; these constructors
// synthesize matrices with the skew structure the paper describes:
//
//	MatrixA — moderately skewed (lognormal weights, sigma 1) with a band of
//	          preferred partners, the CacheFollower-style pattern;
//	MatrixB — near-uniform all-to-all, the WebServer-style pattern;
//	MatrixC — highly skewed (lognormal weights, sigma 2) plus hot rack rows,
//	          producing many sparsely-populated paths (the case the paper
//	          notes m3 suffers slightly on).
func MatrixA(racks int, r *rng.RNG) *TrafficMatrix {
	m := &TrafficMatrix{MatName: "A", W: zeroMatrix(racks)}
	for i := 0; i < racks; i++ {
		for j := 0; j < racks; j++ {
			if i == j {
				continue
			}
			w := r.LogNormal(0, 1)
			// preferred partners: a band of nearby racks gets extra weight
			d := i - j
			if d < 0 {
				d = -d
			}
			if d <= 4 {
				w *= 4
			}
			m.W[i][j] = w
		}
	}
	return m
}

// MatrixB builds the near-uniform matrix (see MatrixA).
func MatrixB(racks int, r *rng.RNG) *TrafficMatrix {
	m := &TrafficMatrix{MatName: "B", W: zeroMatrix(racks)}
	for i := 0; i < racks; i++ {
		for j := 0; j < racks; j++ {
			if i != j {
				m.W[i][j] = 1 + 0.2*r.Float64()
			}
		}
	}
	return m
}

// MatrixC builds the highly skewed matrix (see MatrixA).
func MatrixC(racks int, r *rng.RNG) *TrafficMatrix {
	m := &TrafficMatrix{MatName: "C", W: zeroMatrix(racks)}
	hot := make(map[int]bool)
	for len(hot) < max(1, racks/8) {
		hot[r.Intn(racks)] = true
	}
	for i := 0; i < racks; i++ {
		for j := 0; j < racks; j++ {
			if i == j {
				continue
			}
			w := r.LogNormal(0, 2)
			if hot[i] || hot[j] {
				w *= 16
			}
			m.W[i][j] = w
		}
	}
	return m
}

// Matrix returns matrix A, B, or C by name for the given rack count.
func Matrix(name string, racks int, r *rng.RNG) (*TrafficMatrix, error) {
	switch name {
	case "A":
		return MatrixA(racks, r), nil
	case "B":
		return MatrixB(racks, r), nil
	case "C":
		return MatrixC(racks, r), nil
	case "uniform":
		return UniformMatrix(racks), nil
	}
	return nil, fmt.Errorf("workload: unknown traffic matrix %q", name)
}
